"""Tile-streamed map oracle vs the materialized path: exact equivalence.

The streaming contract is *bit*-identity, not closeness: each streamed
tile must carry exactly the values of the corresponding slab of the
materialized ``(n_ue, ny, nx)`` stack, for every tiling — including
row counts that do not divide the grid height and UE chunks that do
not divide the population.  The folds (min, counts, placement) must
then commute with the tiling, and the IDW row-band interpolation must
equal the sliced full interpolation.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel.groundtruth import ground_truth_stack, iter_ground_truth_tiles
from repro.core.placement import max_min_placement, uncertainty_penalty_db
from repro.geo.grid import GridSpec
from repro.rem.aggregate import aggregate_rem, min_snr_map
from repro.rem.idw import idw_interpolate, idw_interpolate_rows
from repro.rem.interpolate import (
    IDWInterpolator,
    available_interpolators,
    make_interpolator,
)
from repro.rem.map import REM
from repro.rem.streaming import (
    interpolate_tile,
    row_bands,
    streamed_aggregate_rem,
    streamed_coverage_counts,
    streamed_discounted_max_min_placement,
    streamed_discounted_min_map,
    streamed_max_min_placement,
    streamed_min_snr_map,
)

ALTITUDE = 60.0


@pytest.fixture()
def ues(box_terrain):
    """Five UEs scattered over the one-building world."""
    rng = np.random.default_rng(7)
    g = box_terrain.grid
    xy = rng.uniform(5.0, 95.0, size=(5, 2))
    z = box_terrain.heights_at_xy(xy[:, 0], xy[:, 1]) + 1.5
    return np.column_stack([xy, z])


def _reassemble(tiles, n_ue, shape):
    out = np.full((n_ue,) + shape, np.nan)
    for ue_sl, row_sl, block in tiles:
        assert np.all(np.isnan(out[ue_sl, row_sl])), "tiles overlap"
        out[ue_sl, row_sl] = block
    return out


# -- tile generator vs materialized stack ---------------------------------------


@pytest.mark.parametrize("tile_rows", [7, 13, 50])
@pytest.mark.parametrize("ue_chunk", [None, 1, 2])
def test_snr_tiles_bit_identical_to_snr_maps(box_channel, ues, tile_rows, ue_chunk):
    """Every tiling reassembles to exactly the materialized stack.

    50 rows is the full grid height of the 100 m / 2 m world; 7 and 13
    do not divide it, exercising the ragged last band.
    """
    grid = box_channel.terrain.grid
    stack = box_channel.snr_maps(ues, ALTITUDE, use_cache=False)
    tiles = box_channel.iter_snr_map_tiles(
        ues, ALTITUDE, tile_rows=tile_rows, ue_chunk=ue_chunk
    )
    rebuilt = _reassemble(tiles, len(ues), grid.shape)
    assert np.array_equal(rebuilt, stack)


def test_ground_truth_tiles_match_stack(box_channel, ues):
    stack = ground_truth_stack(box_channel, ues, ALTITUDE, use_cache=False)
    tiles = iter_ground_truth_tiles(box_channel, ues, ALTITUDE, tile_rows=9)
    rebuilt = _reassemble(tiles, len(ues), box_channel.terrain.grid.shape)
    assert np.array_equal(rebuilt, stack)


def test_tiles_on_coarse_grid(box_channel, ues):
    grid = box_channel.terrain.grid.coarsen(4)
    stack = box_channel.snr_maps(ues, ALTITUDE, grid, use_cache=False)
    tiles = box_channel.iter_snr_map_tiles(ues, ALTITUDE, grid, tile_rows=5)
    rebuilt = _reassemble(tiles, len(ues), grid.shape)
    assert np.array_equal(rebuilt, stack)


def test_empty_population_yields_no_tiles(box_channel):
    assert list(box_channel.iter_snr_map_tiles([], ALTITUDE)) == []


def test_tile_rows_validation(box_channel, ues):
    with pytest.raises(ValueError, match="tile_rows"):
        list(box_channel.iter_snr_map_tiles(ues, ALTITUDE, tile_rows=0))
    with pytest.raises(ValueError, match="ue_chunk"):
        list(box_channel.iter_snr_map_tiles(ues, ALTITUDE, ue_chunk=0))


# -- streamed folds vs materialized aggregations --------------------------------


@pytest.mark.parametrize("tile_rows,ue_chunk", [(7, None), (13, 1), (50, 2)])
def test_streamed_min_map_and_placement(box_channel, ues, tile_rows, ue_chunk):
    grid = box_channel.terrain.grid
    stack = box_channel.snr_maps(ues, ALTITUDE, use_cache=False)

    def tiles():
        return box_channel.iter_snr_map_tiles(
            ues, ALTITUDE, tile_rows=tile_rows, ue_chunk=ue_chunk
        )

    mm = streamed_min_snr_map(tiles(), grid.shape)
    assert np.array_equal(mm, min_snr_map(stack))

    placed = streamed_max_min_placement(grid, tiles(), ALTITUDE)
    reference = max_min_placement(grid, list(stack), ALTITUDE)
    assert placed.cell == reference.cell
    assert placed.min_snr_db == reference.min_snr_db
    assert np.array_equal(
        placed.position.as_array(), reference.position.as_array()
    )


def test_streamed_coverage_counts(box_channel, ues):
    grid = box_channel.terrain.grid
    stack = box_channel.snr_maps(ues, ALTITUDE, use_cache=False)
    threshold = float(np.median(stack))
    counts = streamed_coverage_counts(
        box_channel.iter_snr_map_tiles(ues, ALTITUDE, tile_rows=13, ue_chunk=2),
        grid.shape,
        threshold,
    )
    assert np.array_equal(counts, (stack >= threshold).sum(axis=0))


def test_streamed_aggregate_rem_exact_with_full_ue_tiles(box_channel, ues):
    """Full-UE tiles keep the float sum's association: bit-identical."""
    grid = box_channel.terrain.grid
    stack = box_channel.snr_maps(ues, ALTITUDE, use_cache=False)
    agg = streamed_aggregate_rem(
        box_channel.iter_snr_map_tiles(
            ues, ALTITUDE, tile_rows=13, ue_chunk=len(ues)
        ),
        grid.shape,
    )
    assert np.array_equal(agg, aggregate_rem(stack))


def test_streamed_folds_reject_empty():
    with pytest.raises(ValueError, match="at least one tile"):
        streamed_min_snr_map(iter([]), (4, 4))
    with pytest.raises(ValueError, match="at least one tile"):
        streamed_aggregate_rem(iter([]), (4, 4))


def test_streamed_min_map_nan_poisons_cell():
    block = np.ones((2, 2, 3))
    block[1, 0, 1] = np.nan
    out = streamed_min_snr_map([(slice(0, 2), slice(0, 2), block)], (2, 3))
    assert np.isnan(out[0, 1])
    assert out[1, 2] == 1.0


# -- row-band interpolation -----------------------------------------------------


def _sparse_map(grid: GridSpec, seed: int = 3) -> np.ndarray:
    rng = np.random.default_rng(seed)
    values = np.full(grid.shape, np.nan)
    ny, nx = grid.shape
    n_meas = (ny * nx) // 5
    iy = rng.integers(0, ny, n_meas)
    ix = rng.integers(0, nx, n_meas)
    values[iy, ix] = rng.normal(10.0, 4.0, n_meas)
    return values


@pytest.mark.parametrize("rows", [slice(0, 7), slice(7, 20), slice(40, 50)])
def test_idw_rows_match_full_interpolation(small_grid, rows):
    values = _sparse_map(small_grid)
    full = idw_interpolate(small_grid, values)
    band = idw_interpolate_rows(small_grid, values, rows)
    assert np.array_equal(band, full[rows])


def test_idw_rows_with_max_distance_and_fallback(small_grid):
    values = _sparse_map(small_grid, seed=9)
    fallback = np.full(small_grid.shape, -3.25)
    kw = dict(max_distance_m=6.0, fallback=fallback)
    full = idw_interpolate(small_grid, values, **kw)
    rows = slice(3, 31)
    band = idw_interpolate_rows(small_grid, values, rows, **kw)
    assert np.array_equal(band, full[rows])


def test_interpolate_tile_uses_idw_fast_path(small_grid):
    values = _sparse_map(small_grid, seed=5)
    interp = IDWInterpolator()
    rows = slice(11, 29)
    band = interpolate_tile(interp, small_grid, values, rows)
    assert np.array_equal(band, interp.interpolate(small_grid, values)[rows])


def test_interpolate_tile_generic_fallback(small_grid):
    """Interpolators without a tile method get the slice-of-full path."""

    class Nearest:
        def interpolate(self, grid, values, measured_mask=None, fallback=None):
            return np.nan_to_num(values, nan=-1.0)

    values = _sparse_map(small_grid, seed=11)
    rows = slice(2, 9)
    band = interpolate_tile(Nearest(), small_grid, values, rows)
    assert np.array_equal(band, np.nan_to_num(values, nan=-1.0)[rows])


# -- streamed uncertainty-discounted fold vs the materialized path --------------

#: A 10x10 grid keeps every registry interpolator (kriging included)
#: fast enough for the property sweep.
_FOLD_GRID = GridSpec.from_extent(40.0, 40.0, cell_size=4.0)
_FOLD_ALT = 60.0


@st.composite
def _rem_sets(draw):
    """1-3 REMs: sparse measurement sets (possibly empty) over priors."""
    n_rems = draw(st.integers(min_value=1, max_value=3))
    rems = []
    for i in range(n_rems):
        prior = np.full(_FOLD_GRID.shape, -5.0 + 2.0 * i)
        rem = REM(_FOLD_GRID, np.array([5.0 + 10.0 * i, 12.0, 1.5]), _FOLD_ALT, prior=prior)
        n_meas = draw(st.integers(min_value=0, max_value=12))
        if n_meas:
            rng = np.random.default_rng(draw(st.integers(0, 2**16)))
            xy = rng.uniform(0.5, 39.5, size=(n_meas, 2))
            rem.add_measurements(xy, rng.normal(5.0, 6.0, n_meas))
        rems.append(rem)
    return rems


@st.composite
def _ragged_bands(draw):
    """Row slices cutting the grid height at arbitrary interior points."""
    ny = _FOLD_GRID.ny
    cuts = draw(
        st.lists(st.integers(min_value=1, max_value=ny - 1), max_size=4, unique=True)
    )
    edges = [0] + sorted(cuts) + [ny]
    return [slice(a, b) for a, b in zip(edges, edges[1:])]


def _materialized_discounted(rems, interp, rate, cap):
    """The controller's materialized Step 8: interpolate, discount, min."""
    maps, discounted = [], []
    for rem in rems:
        full = interp.interpolate(
            _FOLD_GRID, rem.measured_values(), fallback=rem.prior
        )
        maps.append(full)
        penalty = uncertainty_penalty_db(_FOLD_GRID, rem.measured_mask, rate, cap)
        discounted.append(full if penalty is None else full - penalty)
    return np.min(np.stack(discounted), axis=0), maps, discounted


class TestStreamedDiscountedFold:
    @given(
        _rem_sets(),
        _ragged_bands(),
        st.sampled_from(available_interpolators()),
        st.sampled_from([0.0, 0.4]),
        st.sampled_from([float("inf"), 3.0]),
    )
    @settings(max_examples=25, deadline=None)
    def test_min_map_matches_materialized_bitwise(self, rems, bands, name, rate, cap):
        interp = make_interpolator(name)
        mm, maps = streamed_discounted_min_map(
            _FOLD_GRID,
            rems,
            interp,
            penalty_rate_db_per_m=rate,
            penalty_cap_db=cap,
            row_slices=bands,
            collect_maps=True,
        )
        ref_mm, ref_maps, _ = _materialized_discounted(rems, interp, rate, cap)
        assert np.array_equal(mm, ref_mm, equal_nan=True)
        assert len(maps) == len(ref_maps)
        for got, want in zip(maps, ref_maps):
            assert np.array_equal(got, want, equal_nan=True)

    @given(
        _rem_sets(),
        _ragged_bands(),
        st.sampled_from(available_interpolators()),
    )
    @settings(max_examples=15, deadline=None)
    def test_placement_matches_materialized(self, rems, bands, name):
        interp = make_interpolator(name)
        placed, _ = streamed_discounted_max_min_placement(
            _FOLD_GRID,
            rems,
            interp,
            _FOLD_ALT,
            penalty_rate_db_per_m=0.4,
            penalty_cap_db=3.0,
            row_slices=bands,
        )
        _, _, discounted = _materialized_discounted(rems, interp, 0.4, 3.0)
        reference = max_min_placement(_FOLD_GRID, discounted, _FOLD_ALT)
        assert placed.cell == reference.cell
        assert placed.min_snr_db == reference.min_snr_db
        assert np.array_equal(
            placed.position.as_array(), reference.position.as_array()
        )

    def test_empty_measurement_rem_uses_prior(self):
        prior = np.full(_FOLD_GRID.shape, -7.5)
        rem = REM(_FOLD_GRID, np.array([10.0, 10.0, 1.5]), _FOLD_ALT, prior=prior)
        mm, maps = streamed_discounted_min_map(
            _FOLD_GRID,
            [rem],
            IDWInterpolator(),
            penalty_rate_db_per_m=0.5,
            collect_maps=True,
        )
        # Nothing measured: no discount, map is exactly the prior.
        assert np.array_equal(mm, prior)
        assert np.array_equal(maps[0], prior)

    def test_rejects_empty_rem_sequence(self):
        with pytest.raises(ValueError, match="at least one REM"):
            streamed_discounted_min_map(_FOLD_GRID, [], IDWInterpolator())

    @pytest.mark.parametrize("tile_rows,n_bands", [(1, 10), (3, 4), (10, 1), (64, 1)])
    def test_row_bands_cover_exactly(self, tile_rows, n_bands):
        bands = row_bands(_FOLD_GRID.ny, tile_rows)
        assert len(bands) == n_bands
        covered = [r for sl in bands for r in range(sl.start, sl.stop)]
        assert covered == list(range(_FOLD_GRID.ny))

    def test_row_bands_validation(self):
        with pytest.raises(ValueError, match="tile_rows"):
            row_bands(10, 0)

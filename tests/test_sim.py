"""Unit tests for scenario construction and metrics."""

import numpy as np
import pytest

from repro.geo.points import Point3D
from repro.sim.metrics import median_rem_error, relative_series, summarize
from repro.sim.scenario import Scenario


class TestScenario:
    def test_create_registers_ues(self, small_scenario):
        assert len(small_scenario.ues) == 3
        assert len(small_scenario.enodeb.connected_ues()) == 3

    def test_ues_on_walkable_ground(self, small_scenario):
        for ue in small_scenario.ues:
            surface = small_scenario.terrain.height_at(ue.position.x, ue.position.y)
            assert surface < 2.0
            assert ue.position.z == pytest.approx(surface + 1.5)

    def test_layouts(self):
        uni = Scenario.create("campus", 6, layout="uniform", cell_size=4.0, seed=1)
        clu = Scenario.create("campus", 6, layout="clustered", cell_size=4.0, seed=1)
        ring = Scenario.create("campus", 6, layout="ring", cell_size=4.0, seed=1)
        pock = Scenario.create("campus", 6, layout="pockets", cell_size=4.0, seed=1)

        def spread(s):
            pts = np.array([[u.position.x, u.position.y] for u in s.ues])
            return np.mean(np.hypot(*(pts - pts.mean(axis=0)).T))

        assert spread(clu) < spread(uni)
        assert len(ring.ues) == len(pock.ues) == 6

    def test_unknown_layout(self):
        with pytest.raises(ValueError):
            Scenario.create("campus", 3, layout="swarm", cell_size=4.0)

    def test_truth_maps_cached_and_mobility_aware(self, small_scenario):
        a = small_scenario.truth_maps(60.0)
        b = small_scenario.truth_maps(60.0)
        assert a is b  # cache hit
        small_scenario.ues[0].move_to(10.0, 10.0)
        c = small_scenario.truth_maps(60.0)
        assert c is not a  # UE moved: fresh oracle

    def test_evaluate_aggregates(self, small_scenario):
        ev = small_scenario.evaluate(Point3D(60.0, 60.0, 60.0))
        assert set(ev.snr_db) == {u.ue_id for u in small_scenario.ues}
        assert ev.min_throughput_mbps <= ev.avg_throughput_mbps

    def test_optimal_position_objectives(self, small_scenario):
        pos_avg, val_avg = small_scenario.optimal_position(60.0, "avg")
        pos_mm, val_mm = small_scenario.optimal_position(60.0, "maxmin")
        assert small_scenario.grid.contains(pos_avg.x, pos_avg.y)
        # The avg objective's value is the best achievable average.
        assert small_scenario.evaluate(pos_mm).avg_throughput_mbps <= val_avg + 1e-6
        with pytest.raises(ValueError):
            small_scenario.optimal_position(60.0, "entropy")

    def test_relative_throughput_bounds(self, small_scenario):
        pos, _ = small_scenario.optimal_position(60.0, "maxmin")
        rel = small_scenario.relative_throughput(pos)
        assert rel == pytest.approx(1.0)


class TestMetrics:
    def test_median_rem_error(self):
        truth = np.stack([np.zeros((4, 4)), np.zeros((4, 4))])
        maps = {1: np.full((4, 4), 2.0), 2: np.full((4, 4), 6.0)}
        assert median_rem_error(maps, truth) == pytest.approx(4.0)

    def test_median_rem_error_validates(self):
        with pytest.raises(ValueError):
            median_rem_error({1: np.zeros((2, 2))}, np.zeros((2, 2, 2)))

    def test_relative_series(self):
        assert relative_series([5.0, 10.0], 10.0) == [0.5, 1.0]
        assert relative_series([5.0], 0.0) == [0.0]

    def test_summarize(self):
        s = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        assert s["median"] == 3.0
        assert s["min"] == 1.0 and s["max"] == 5.0
        with pytest.raises(ValueError):
            summarize([])

"""Unit tests for shadowing fields and small-scale fading."""

import numpy as np
import pytest

from repro.channel.fading import (
    K_LOS,
    K_NLOS,
    rician_envelope_power,
    sample_fading_db,
)
from repro.channel.shadowing import ShadowingField
from repro.geo.grid import GridSpec


class TestShadowing:
    def test_marginal_std_matches(self, small_grid):
        f = ShadowingField.generate(small_grid, sigma_db=4.0, correlation_m=10.0, seed=0)
        assert f.values_db.std() == pytest.approx(4.0, rel=0.05)

    def test_zero_sigma_is_flat(self, small_grid):
        f = ShadowingField.generate(small_grid, sigma_db=0.0, seed=0)
        assert np.all(f.values_db == 0.0)

    def test_spatial_correlation(self, small_grid):
        f = ShadowingField.generate(small_grid, sigma_db=3.0, correlation_m=30.0, seed=1)
        v = f.values_db
        # Neighbouring cells nearly identical; far cells decorrelated.
        d_near = np.abs(np.diff(v, axis=1)).mean()
        assert d_near < 1.0

    def test_same_ue_same_field(self, small_grid):
        ue = np.array([10.0, 20.0, 1.5])
        a = ShadowingField.generate(small_grid, seed=5, ue_xyz=ue)
        b = ShadowingField.generate(small_grid, seed=5, ue_xyz=ue)
        np.testing.assert_array_equal(a.values_db, b.values_db)

    def test_different_ues_different_fields(self, small_grid):
        a = ShadowingField.generate(small_grid, seed=5, ue_xyz=np.array([10.0, 20.0, 1.5]))
        b = ShadowingField.generate(small_grid, seed=5, ue_xyz=np.array([11.0, 20.0, 1.5]))
        assert not np.allclose(a.values_db, b.values_db)

    def test_lookup_consistency(self, small_grid):
        f = ShadowingField.generate(small_grid, seed=2)
        pts = np.array([[5.0, 7.0], [50.0, 50.0]])
        many = f.at_many(pts)
        assert many[0] == pytest.approx(f.at(5.0, 7.0))
        assert many[1] == pytest.approx(f.at(50.0, 50.0))

    def test_invalid_params(self, small_grid):
        with pytest.raises(ValueError):
            ShadowingField.generate(small_grid, sigma_db=-1.0)
        with pytest.raises(ValueError):
            ShadowingField.generate(small_grid, correlation_m=0.0)


class TestFading:
    def test_envelope_mean_power_is_unity(self, rng):
        for k in (0.0, 1.0, 10.0):
            p = rician_envelope_power(k, 200_000, rng)
            assert p.mean() == pytest.approx(1.0, rel=0.02)

    def test_high_k_low_variance(self, rng):
        p_los = rician_envelope_power(K_LOS, 50_000, rng)
        p_nlos = rician_envelope_power(K_NLOS, 50_000, rng)
        assert p_los.std() < p_nlos.std()

    def test_negative_k_rejected(self, rng):
        with pytest.raises(ValueError):
            rician_envelope_power(-1.0, 10, rng)

    def test_sample_fading_mixture(self, rng):
        los = np.array([True] * 5000 + [False] * 5000)
        fading = sample_fading_db(los, rng)
        assert fading.shape == (10000,)
        # NLOS fading swings much harder.
        assert fading[~los].std() > 1.5 * fading[los].std()

    def test_sample_fading_all_los(self, rng):
        fading = sample_fading_db(np.ones(100, dtype=bool), rng)
        assert np.all(np.isfinite(fading))

"""Unit tests for mobility models."""

import numpy as np
import pytest

from repro.geo.grid import GridSpec
from repro.lte.enodeb import ENodeB
from repro.lte.ue import UE
from repro.mobility.models import (
    ClusterMobility,
    RandomWaypoint,
    ScriptedRoute,
    Static,
    relocate_fraction,
)
from repro.perf import perf


@pytest.fixture()
def grid():
    return GridSpec.from_extent(100, 100, 2.0)


def _ue(i, x=50.0, y=50.0):
    ue = UE(ue_id=i)
    ue.move_to(x, y)
    return ue


class TestStatic:
    def test_never_moves(self, rng):
        ue = _ue(1)
        Static().step(ue, 3600.0, rng)
        assert (ue.position.x, ue.position.y) == (50.0, 50.0)


class TestRandomWaypoint:
    def test_moves_at_configured_speed(self, grid, rng):
        model = RandomWaypoint(grid, speed_mps=1.0, pause_s=0.0)
        ue = _ue(1)
        model.step(ue, 5.0, rng)
        d = np.hypot(ue.position.x - 50.0, ue.position.y - 50.0)
        assert d <= 5.0 + 1e-6
        assert d > 0.0

    def test_stays_in_grid(self, grid, rng):
        model = RandomWaypoint(grid, speed_mps=5.0, pause_s=0.0)
        ue = _ue(1)
        for _ in range(50):
            model.step(ue, 10.0, rng)
            assert 0.0 <= ue.position.x <= 100.0
            assert 0.0 <= ue.position.y <= 100.0

    def test_pause_holds_position(self, grid, rng):
        model = RandomWaypoint(grid, speed_mps=1000.0, pause_s=1e9)
        ue = _ue(1)
        model.step(ue, 1.0, rng)  # reaches a waypoint, starts pausing
        x, y = ue.position.x, ue.position.y
        model.step(ue, 100.0, rng)
        assert (ue.position.x, ue.position.y) == (x, y)

    def test_negative_dt_rejected(self, grid, rng):
        with pytest.raises(ValueError):
            RandomWaypoint(grid).step(_ue(1), -1.0, rng)


class TestScriptedRoute:
    def test_follows_route(self, rng):
        route = np.array([[0.0, 0.0], [10.0, 0.0]])
        model = ScriptedRoute(route, speed_mps=1.0)
        ue = _ue(1, 0.0, 0.0)
        model.step(ue, 5.0, rng)
        assert ue.position.x == pytest.approx(5.0)
        assert ue.position.y == pytest.approx(0.0)

    def test_ping_pong(self, rng):
        route = np.array([[0.0, 0.0], [10.0, 0.0]])
        model = ScriptedRoute(route, speed_mps=1.0)
        ue = _ue(1, 0.0, 0.0)
        model.step(ue, 15.0, rng)  # 10 out + 5 back
        assert ue.position.x == pytest.approx(5.0)
        model.step(ue, 5.0, rng)  # back at start
        assert ue.position.x == pytest.approx(0.0)

    def test_independent_progress_per_ue(self, rng):
        route = np.array([[0.0, 0.0], [100.0, 0.0]])
        model = ScriptedRoute(route, speed_mps=1.0)
        a, b = _ue(1, 0, 0), _ue(2, 0, 0)
        model.step(a, 10.0, rng)
        model.step(b, 20.0, rng)
        assert a.position.x == pytest.approx(10.0)
        assert b.position.x == pytest.approx(20.0)

    def test_route_validation(self):
        with pytest.raises(ValueError):
            ScriptedRoute(np.array([[0.0, 0.0]]))
        with pytest.raises(ValueError):
            ScriptedRoute(np.array([[0.0, 0.0], [0.0, 0.0]]))


class TestClusterMobility:
    def test_snaps_to_spots(self, rng):
        spots = np.array([[10.0, 10.0], [90.0, 90.0]])
        model = ClusterMobility(spots, dwell_mean_s=1e9, jitter_m=1.0)
        ue = _ue(1)
        model.step(ue, 1.0, rng)
        d = min(
            np.hypot(ue.position.x - sx, ue.position.y - sy) for sx, sy in spots
        )
        assert d < 5.0

    def test_dwell_prevents_rehop(self, rng):
        spots = np.array([[10.0, 10.0], [90.0, 90.0]])
        model = ClusterMobility(spots, dwell_mean_s=1e9, jitter_m=0.0)
        ue = _ue(1)
        model.step(ue, 1.0, rng)
        pos = (ue.position.x, ue.position.y)
        model.step(ue, 1.0, rng)
        assert (ue.position.x, ue.position.y) == pos

    def test_requires_spots(self):
        with pytest.raises(ValueError):
            ClusterMobility(np.empty((0, 2)))


class TestRelocate:
    def test_moves_requested_fraction(self, grid, rng):
        ues = [_ue(i) for i in range(10)]
        moved = relocate_fraction(ues, 0.5, grid, rng)
        assert len(moved) == 5
        for ue in ues:
            if ue.ue_id in moved:
                assert (ue.position.x, ue.position.y) != (50.0, 50.0)

    def test_zero_fraction_noop(self, grid, rng):
        ues = [_ue(i) for i in range(4)]
        assert relocate_fraction(ues, 0.0, grid, rng) == []

    def test_clearance_veto(self, grid, rng):
        ues = [_ue(i) for i in range(5)]
        relocate_fraction(ues, 1.0, grid, rng, clearance_check=lambda x, y: x < 50.0)
        for ue in ues:
            assert ue.position.x < 50.0

    def test_invalid_fraction(self, grid, rng):
        with pytest.raises(ValueError):
            relocate_fraction([_ue(1)], 1.5, grid, rng)

    def test_all_draws_vetoed_keeps_ue_in_place(self, grid, rng):
        """Regression: a UE whose every draw is vetoed used to be
        teleported to the last *rejected* position (e.g. inside a
        building); it must stay where it is instead."""
        ues = [_ue(i) for i in range(3)]
        before = perf.counters()
        moved = relocate_fraction(
            ues, 1.0, grid, rng, clearance_check=lambda x, y: False
        )
        assert moved == []
        for ue in ues:
            assert (ue.position.x, ue.position.y) == (50.0, 50.0)
        deltas = perf.counters_since(before)
        assert deltas.get("mobility.clearance_giveup", 0) == 3

    def test_giveup_same_draw_schedule_as_success(self, grid):
        """The give-up branch must not change the RNG draw schedule:
        UEs after a fully-vetoed one land exactly where they would
        have if the vetoed UE had been movable."""
        rng_a = np.random.default_rng(11)
        rng_b = np.random.default_rng(11)
        ues_a = [_ue(i) for i in range(4)]
        ues_b = [_ue(i) for i in range(4)]
        relocate_fraction(ues_a, 1.0, grid, rng_a)
        relocate_fraction(ues_b, 1.0, grid, rng_b, clearance_check=lambda x, y: True)
        for a, b in zip(ues_a, ues_b):
            assert (a.position.x, a.position.y) == (b.position.x, b.position.y)


class TestForget:
    def test_static_forget_is_noop(self):
        Static().forget(1)  # must not raise

    def test_random_waypoint_forget_clears_state(self, grid, rng):
        model = RandomWaypoint(grid, speed_mps=1000.0, pause_s=10.0)
        ue = _ue(1)
        model.step(ue, 1.0, rng)  # reaches a waypoint -> pause recorded
        model.step(_ue(2), 0.5, rng)  # second UE holds state too
        assert 1 in model._pauses or 1 in model._targets
        assert 2 in model._pauses or 2 in model._targets
        model.forget(1)
        assert 1 not in model._targets and 1 not in model._pauses
        assert 2 in model._pauses or 2 in model._targets  # others untouched

    def test_scripted_route_forget_resets_progress(self, rng):
        route = np.array([[0.0, 0.0], [100.0, 0.0]])
        model = ScriptedRoute(route, speed_mps=1.0)
        ue = _ue(1, 0, 0)
        model.step(ue, 10.0, rng)
        assert 1 in model._progress
        model.forget(1)
        assert 1 not in model._progress
        # A re-attached id starts its route fresh.
        model.step(ue, 10.0, rng)
        assert ue.position.x == pytest.approx(10.0)

    def test_cluster_forget_clears_dwell(self, rng):
        spots = np.array([[10.0, 10.0]])
        model = ClusterMobility(spots, dwell_mean_s=1e9)
        ue = _ue(1)
        model.step(ue, 1.0, rng)
        assert 1 in model._until
        model.forget(1)
        assert 1 not in model._until

    def test_enodeb_deregister_forgets_mobility_state(self, grid, rng):
        """Deregistration must clean mobility state exactly like the
        OLLA offsets: detached UEs cannot pin waypoints forever."""
        model = RandomWaypoint(grid, speed_mps=1.0, pause_s=0.0)
        enodeb = ENodeB(mobility=model)
        ue = _ue(1)
        enodeb.register_ue(ue)
        model.step(ue, 0.5, rng)
        assert 1 in model._targets
        enodeb.deregister_ue(1)
        assert 1 not in model._targets and 1 not in model._pauses

    def test_enodeb_without_mobility_still_deregisters(self):
        enodeb = ENodeB()
        ue = _ue(1)
        enodeb.register_ue(ue)
        enodeb.deregister_ue(1)  # must not raise
        assert enodeb.ues == []


class TestValidation:
    def test_random_waypoint_rejects_nonpositive_speed(self, grid):
        with pytest.raises(ValueError, match="speed_mps"):
            RandomWaypoint(grid, speed_mps=0.0)
        with pytest.raises(ValueError, match="speed_mps"):
            RandomWaypoint(grid, speed_mps=-1.4)

    def test_random_waypoint_rejects_negative_pause(self, grid):
        with pytest.raises(ValueError, match="pause_s"):
            RandomWaypoint(grid, pause_s=-1.0)

    def test_scripted_route_rejects_nonpositive_speed(self):
        route = np.array([[0.0, 0.0], [10.0, 0.0]])
        with pytest.raises(ValueError, match="speed_mps"):
            ScriptedRoute(route, speed_mps=0.0)

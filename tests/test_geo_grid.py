"""Unit tests for the grid quantization substrate."""

import numpy as np
import pytest

from repro.geo.grid import GridSpec


class TestConstruction:
    def test_from_extent_counts_cells(self):
        g = GridSpec.from_extent(250.0, 250.0, cell_size=1.0)
        assert g.nx == 250 and g.ny == 250
        assert g.shape == (250, 250)
        assert g.num_cells == 62500

    def test_from_extent_rounds_to_nearest_cell(self):
        g = GridSpec.from_extent(10.5, 9.4, cell_size=1.0)
        assert (g.nx, g.ny) == (10, 9)

    def test_rejects_bad_cell_size(self):
        with pytest.raises(ValueError):
            GridSpec(0.0, 0.0, 0.0, 10, 10)
        with pytest.raises(ValueError):
            GridSpec(0.0, 0.0, -1.0, 10, 10)

    def test_rejects_empty_grid(self):
        with pytest.raises(ValueError):
            GridSpec(0.0, 0.0, 1.0, 0, 10)

    def test_extent_properties(self):
        g = GridSpec(10.0, 20.0, 2.0, 5, 4)
        assert g.width == 10.0
        assert g.height == 8.0
        assert g.max_x == 20.0
        assert g.max_y == 28.0


class TestIndexing:
    def test_cell_of_interior_point(self):
        g = GridSpec(0.0, 0.0, 1.0, 10, 10)
        assert g.cell_of(3.5, 7.2) == (3, 7)

    def test_cell_of_respects_origin(self):
        g = GridSpec(100.0, 200.0, 2.0, 10, 10)
        assert g.cell_of(101.0, 203.9) == (0, 1)

    def test_cell_of_clamps_outside_points(self):
        g = GridSpec(0.0, 0.0, 1.0, 10, 10)
        assert g.cell_of(-5.0, -5.0) == (0, 0)
        assert g.cell_of(100.0, 100.0) == (9, 9)

    def test_center_roundtrip(self):
        g = GridSpec(0.0, 0.0, 1.0, 20, 30)
        for ix, iy in [(0, 0), (5, 7), (19, 29)]:
            x, y = g.center_of(ix, iy)
            assert g.cell_of(x, y) == (ix, iy)

    def test_cells_of_matches_scalar_version(self, rng):
        g = GridSpec(0.0, 0.0, 2.5, 13, 17)
        pts = rng.uniform(-5, 50, (100, 2))
        ix, iy = g.cells_of(pts)
        for k in range(len(pts)):
            assert (ix[k], iy[k]) == g.cell_of(pts[k, 0], pts[k, 1])

    def test_contains_half_open(self):
        g = GridSpec(0.0, 0.0, 1.0, 10, 10)
        assert g.contains(0.0, 0.0)
        assert g.contains(9.999, 9.999)
        assert not g.contains(10.0, 5.0)
        assert not g.contains(-0.001, 5.0)


class TestCenters:
    def test_centers_shapes(self):
        g = GridSpec(0.0, 0.0, 1.0, 4, 3)
        gx, gy = g.centers()
        assert gx.shape == (3, 4)
        assert gy.shape == (3, 4)

    def test_centers_flat_row_major(self):
        g = GridSpec(0.0, 0.0, 1.0, 3, 2)
        flat = g.centers_flat()
        assert flat.shape == (6, 2)
        # Row-major: first row is iy=0, ix=0..2.
        np.testing.assert_allclose(flat[0], [0.5, 0.5])
        np.testing.assert_allclose(flat[2], [2.5, 0.5])
        np.testing.assert_allclose(flat[3], [0.5, 1.5])

    def test_iter_cells_covers_everything(self):
        g = GridSpec(0.0, 0.0, 1.0, 4, 5)
        cells = list(g.iter_cells())
        assert len(cells) == 20
        assert len(set(cells)) == 20


class TestCoarsen:
    def test_coarsen_shrinks(self):
        g = GridSpec(0.0, 0.0, 1.0, 100, 100)
        c = g.coarsen(4)
        assert c.cell_size == 4.0
        assert (c.nx, c.ny) == (25, 25)

    def test_coarsen_identity(self):
        g = GridSpec(0.0, 0.0, 1.0, 10, 10)
        c = g.coarsen(1)
        assert c == g

    def test_coarsen_rejects_zero(self):
        g = GridSpec(0.0, 0.0, 1.0, 10, 10)
        with pytest.raises(ValueError):
            g.coarsen(0)

    def test_clamp_keeps_points_inside(self):
        g = GridSpec(0.0, 0.0, 1.0, 10, 10)
        x, y = g.clamp(50.0, -3.0)
        assert g.contains(x, y)
        x, y = g.clamp(5.0, 5.0)
        assert (x, y) == (5.0, 5.0)

"""Cross-module edge cases: degenerate worlds, single entities, limits."""

import numpy as np
import pytest

from repro.channel.model import ChannelModel
from repro.core.config import SkyRANConfig
from repro.core.controller import SkyRANController
from repro.core.placement import max_min_placement
from repro.geo.grid import GridSpec
from repro.lte.enodeb import ENodeB
from repro.lte.ue import UE
from repro.rem.map import REM
from repro.sim.scenario import Scenario
from repro.terrain.generators import make_flat
from repro.terrain.heightmap import Terrain
from repro.trajectory.base import Trajectory
from repro.trajectory.skyran import SkyRANPlanner
from repro.trajectory.information import TrajectoryHistory


class TestDegenerateWorlds:
    def test_single_cell_grid(self):
        g = GridSpec(0.0, 0.0, 10.0, 1, 1)
        assert g.cell_of(5.0, 5.0) == (0, 0)
        assert g.centers_flat().shape == (1, 2)

    def test_single_cell_placement(self):
        g = GridSpec(0.0, 0.0, 10.0, 1, 1)
        result = max_min_placement(g, [np.array([[7.0]])], altitude=50.0)
        assert result.cell == (0, 0)
        assert result.min_snr_db == 7.0

    def test_tiny_terrain_channel(self):
        t = make_flat(size=20.0, cell_size=2.0)
        ch = ChannelModel(t, shadowing_sigma_db=0.0, common_sigma_db=0.0)
        snr = ch.snr_db(np.array([10.0, 10.0, 30.0]), np.array([10.0, 10.0, 1.5]))
        assert np.isfinite(snr)

    def test_rem_on_tiny_grid(self):
        g = GridSpec(0.0, 0.0, 5.0, 2, 2)
        rem = REM(g, np.array([5.0, 5.0, 1.5]), 50.0)
        rem.add_measurements(np.array([[2.0, 2.0]]), np.array([10.0]))
        out = rem.interpolated()
        assert np.isfinite(out).all()


class TestSingleEntities:
    def test_single_ue_epoch(self):
        scenario = Scenario.create("flat", n_ues=1, cell_size=4.0, seed=1)
        cfg = SkyRANConfig(rem_cell_size_m=8.0)
        ctrl = SkyRANController(scenario.channel, scenario.enodeb, cfg, seed=1)
        ctrl.altitude = 50.0
        result = ctrl.run_epoch(budget_m=150.0)
        assert len(result.ue_estimates) == 1
        # With one UE on flat ground, the best spot is near overhead.
        ue = scenario.ues[0]
        d = np.hypot(
            result.placement.position.x - ue.position.x,
            result.placement.position.y - ue.position.y,
        )
        assert d < scenario.grid.width / 2

    def test_controller_requires_ues(self):
        t = make_flat(size=100.0, cell_size=4.0)
        ch = ChannelModel(t)
        ctrl = SkyRANController(ch, ENodeB(), SkyRANConfig(rem_cell_size_m=8.0))
        with pytest.raises(RuntimeError):
            ctrl.run_epoch(budget_m=100.0)

    def test_planner_single_ue_single_map(self):
        g = GridSpec.from_extent(100, 100, 4.0)
        m = np.random.default_rng(0).uniform(0, 20, g.shape)
        plan = SkyRANPlanner(seed=0).plan(
            g, [m], [np.array([50.0, 50.0, 1.5])], np.array([50.0, 50.0]), 50.0, 200.0,
            TrajectoryHistory(),
        )
        assert plan.trajectory.length_m <= 200.0 + 1e-6


class TestExtremeParameters:
    def test_trajectory_single_waypoint(self):
        t = Trajectory(np.array([[5.0, 5.0]]), altitude=40.0)
        assert t.length_m == 0.0
        assert len(t.sample(1.0)) == 1
        assert t.truncated(10.0).length_m == 0.0

    def test_zero_shadowing_channel_is_deterministic(self):
        t = make_flat(size=50.0, cell_size=2.0)
        a = ChannelModel(t, shadowing_sigma_db=0.0, common_sigma_db=0.0, seed=1)
        b = ChannelModel(t, shadowing_sigma_db=0.0, common_sigma_db=0.0, seed=2)
        uav = np.array([25.0, 25.0, 40.0])
        ue = np.array([10.0, 10.0, 1.5])
        assert a.path_loss_db(uav, ue) == pytest.approx(b.path_loss_db(uav, ue))

    def test_terrain_all_building(self):
        g = GridSpec.from_extent(20, 20, 2.0)
        t = Terrain(g, np.full(g.shape, 50.0))
        iy, ix = t.free_cells()
        assert len(iy) == 0
        with pytest.raises(ValueError):
            Scenario._draw_ue_positions(t, 1, "uniform", np.random.default_rng(0))

    def test_ue_max_altitude_equals_min(self):
        cfg = SkyRANConfig(min_altitude_m=60.0, max_altitude_m=60.0)
        assert cfg.min_altitude_m == cfg.max_altitude_m

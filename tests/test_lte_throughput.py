"""Unit tests for the SNR -> CQI -> throughput mapping."""

import numpy as np
import pytest

from repro.lte.throughput import (
    CQI_TABLE,
    DEFAULT_OVERHEAD,
    PRB_BANDWIDTH_HZ,
    PRB_PER_10MHZ,
    cqi_from_snr,
    spectral_efficiency,
    throughput_mbps,
)


class TestCqi:
    def test_out_of_range_is_zero(self):
        assert cqi_from_snr(-10.0) == 0

    def test_top_cqi(self):
        assert cqi_from_snr(30.0) == 15

    def test_thresholds_are_inclusive_edges(self):
        # Just above the CQI-1 threshold.
        assert cqi_from_snr(-6.69) == 1
        assert cqi_from_snr(-6.71) == 0

    def test_monotone(self):
        snrs = np.linspace(-10, 30, 200)
        cqis = cqi_from_snr(snrs)
        assert np.all(np.diff(cqis) >= 0)

    def test_array_shape(self):
        out = cqi_from_snr(np.zeros((3, 4)))
        assert out.shape == (3, 4)


class TestEfficiency:
    def test_zero_below_cqi1(self):
        assert spectral_efficiency(-20.0) == 0.0

    def test_peak_efficiency(self):
        assert spectral_efficiency(40.0) == pytest.approx(5.5547)

    def test_matches_table(self):
        for thresh, _, eff in CQI_TABLE:
            assert spectral_efficiency(thresh + 0.01) == pytest.approx(eff)

    def test_monotone(self):
        snrs = np.linspace(-10, 30, 500)
        eff = spectral_efficiency(snrs)
        assert np.all(np.diff(eff) >= 0)


class TestThroughput:
    def test_peak_10mhz(self):
        peak = throughput_mbps(40.0)
        expected = 5.5547 * PRB_PER_10MHZ * PRB_BANDWIDTH_HZ * (1 - DEFAULT_OVERHEAD) / 1e6
        assert peak == pytest.approx(expected)
        assert 30.0 < peak < 45.0  # the paper's ~30 Mb/s scale

    def test_outage_is_zero(self):
        assert throughput_mbps(-15.0) == 0.0

    def test_scales_with_prb(self):
        assert throughput_mbps(20.0, n_prb=25) == pytest.approx(
            throughput_mbps(20.0, n_prb=50) / 2
        )

    def test_overhead_bounds(self):
        with pytest.raises(ValueError):
            throughput_mbps(10.0, overhead=1.0)
        with pytest.raises(ValueError):
            throughput_mbps(10.0, n_prb=0)

    def test_array_input(self):
        out = throughput_mbps(np.array([-20.0, 10.0, 30.0]))
        assert out[0] == 0.0
        assert out[2] > out[1] > 0.0

"""Golden-equivalence and structural tests for the batched map oracle.

The batched/cached/parallel :meth:`ChannelModel.path_loss_maps` oracle
must produce exactly the maps the direct serial per-UE reference
(:meth:`ChannelModel.path_loss_map`) produces — bit-identical, across
terrains, altitudes, chunk boundaries and worker counts.  The perf
counters additionally pin structural properties the timings cannot:
one ray trace per sample batch, cache hits on re-query, and recompute
limited to UEs that actually moved.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.channel.model as model_mod
import repro.channel.raytrace as raytrace_mod
from repro.channel.groundtruth import ground_truth_stack
from repro.channel.model import ChannelModel
from repro.channel.raytrace import obstructed_lengths, ray_profile_batch
from repro.channel.shadowing import ShadowingField
from repro.core.config import SkyRANConfig
from repro.core.controller import SkyRANController
from repro.perf import perf
from repro.sim.scenario import Scenario


def _ues_on(terrain, n=4, seed=0):
    """A few UE positions on walkable cells of a terrain."""
    rng = np.random.default_rng(seed)
    iy, ix = terrain.free_cells()
    pick = rng.choice(len(ix), size=n, replace=False)
    gx, gy = terrain.grid.centers()
    return [
        np.array([gx[iy[p], ix[p]], gy[iy[p], ix[p]], 1.5], dtype=float)
        for p in pick
    ]


# -- golden equivalence: batched == serial reference ----------------------------


@pytest.mark.parametrize("altitude", [40.0, 60.0, 118.0])
def test_batched_maps_match_serial_reference_box(box_channel, altitude):
    ues = _ues_on(box_channel.terrain)
    batched = box_channel.path_loss_maps(ues, altitude, use_cache=False)
    for i, ue in enumerate(ues):
        reference = box_channel.path_loss_map(ue, altitude)
        np.testing.assert_array_equal(batched[i], reference)


def test_batched_maps_match_serial_reference_flat(flat_channel):
    ues = _ues_on(flat_channel.terrain)
    batched = flat_channel.path_loss_maps(ues, 60.0, use_cache=False)
    for i, ue in enumerate(ues):
        np.testing.assert_array_equal(
            batched[i], flat_channel.path_loss_map(ue, 60.0)
        )


def test_batched_maps_match_serial_reference_campus_with_shadowing(campus_terrain):
    # Shadowing on: the full production configuration.
    channel = ChannelModel(campus_terrain, seed=5)
    ues = _ues_on(campus_terrain, n=3, seed=2)
    grid = campus_terrain.grid.coarsen(2)
    batched = channel.path_loss_maps(ues, 60.0, grid, use_cache=False)
    for i, ue in enumerate(ues):
        np.testing.assert_array_equal(batched[i], channel.path_loss_map(ue, 60.0, grid))


def test_results_invariant_to_chunk_boundaries(box_channel, monkeypatch):
    ues = _ues_on(box_channel.terrain, n=5)
    full = box_channel.path_loss_maps(ues, 55.0, use_cache=False)
    # Force the UE-axis chunking to one UE per batch and the ray
    # tracer's internal sample chunking to tiny blocks.
    monkeypatch.setattr(model_mod, "_MAP_CHUNK_RAYS", 1)
    monkeypatch.setattr(raytrace_mod, "_CHUNK_SAMPLES", 512)
    chunked = box_channel.path_loss_maps(ues, 55.0, use_cache=False)
    np.testing.assert_array_equal(chunked, full)


def test_obstructed_lengths_batch_invariant(box_channel):
    # A ray's result must not depend on what else is in the batch
    # (per-ray bucketed sampling) — the property that makes chunked,
    # cached and parallel paths interchangeable.
    terrain = box_channel.terrain
    rng = np.random.default_rng(3)
    tx = np.column_stack(
        [rng.uniform(0, 100, 16), rng.uniform(0, 100, 16), rng.uniform(30, 120, 16)]
    )
    ue = np.array([50.0, 30.0, 1.5])
    full = obstructed_lengths(terrain, tx, ue)
    for sl in (slice(0, 1), slice(3, 7), slice(10, 16)):
        np.testing.assert_array_equal(obstructed_lengths(terrain, tx[sl], ue), full[sl])


def test_parallel_workers_match_serial(box_channel):
    ues = _ues_on(box_channel.terrain, n=3)
    serial = box_channel.path_loss_maps(ues, 60.0, use_cache=False)
    parallel = box_channel.path_loss_maps(ues, 60.0, use_cache=False, workers=2)
    np.testing.assert_array_equal(parallel, serial)


def test_ground_truth_stack_matches_per_ue_snr_maps(box_channel):
    ues = _ues_on(box_channel.terrain, n=3)
    stack = ground_truth_stack(box_channel, ues, 60.0)
    for i, ue in enumerate(ues):
        np.testing.assert_array_equal(stack[i], box_channel.snr_map(ue, 60.0))


# -- structural perf properties -------------------------------------------------


def test_sample_snr_db_traces_once_per_batch(box_channel, rng):
    uav = np.column_stack(
        [np.linspace(10, 90, 50), np.linspace(20, 80, 50), np.full(50, 60.0)]
    )
    ue = np.array([50.0, 30.0, 1.5])
    before = perf.counter("raytrace.calls")
    box_channel.sample_snr_db(uav, ue, rng)
    assert perf.counter("raytrace.calls") == before + 1


def test_path_loss_and_los_traces_once(box_channel):
    uav = np.array([[20.0, 20.0, 60.0], [50.0, 50.0, 80.0]])
    ue = np.array([50.0, 30.0, 1.5])
    before = perf.counter("raytrace.calls")
    loss, los = box_channel.path_loss_and_los(uav, ue)
    assert perf.counter("raytrace.calls") == before + 1
    # And it agrees with the two-call path it replaces.
    np.testing.assert_array_equal(loss, box_channel.path_loss_db(uav, ue))
    np.testing.assert_array_equal(los, box_channel.is_los(uav, ue))


def test_ray_profile_batch_los_consistent_with_obstruction(box_channel):
    terrain = box_channel.terrain
    tx = np.array([[50.0, 20.0, 5.0], [50.0, 20.0, 119.0]])
    ue = np.array([50.0, 80.0, 1.5])  # across the building
    state = ray_profile_batch(terrain, tx, ue)
    np.testing.assert_array_equal(state.los, state.obstructed_m <= 0.0)
    assert not state.los[0]  # grazing ray through the box
    assert state.obstructed_m[0] > 0.0


# -- LRU map cache --------------------------------------------------------------


def test_map_cache_hits_on_requery(box_channel):
    ues = _ues_on(box_channel.terrain, n=3)
    perf.reset()
    box_channel.path_loss_maps(ues, 60.0)
    assert perf.counter("oracle.map_cache.miss") == 3
    assert perf.counter("oracle.map_cache.hit") == 0
    box_channel.path_loss_maps(ues, 60.0)
    assert perf.counter("oracle.map_cache.hit") == 3
    # A different altitude is a different key.
    box_channel.path_loss_maps(ues, 80.0)
    assert perf.counter("oracle.map_cache.miss") == 6


def test_map_cache_recomputes_only_moved_ues(box_channel):
    ues = _ues_on(box_channel.terrain, n=4)
    first = box_channel.path_loss_maps(ues, 60.0)
    moved = [u.copy() for u in ues]
    moved[1] = moved[1] + np.array([8.0, 0.0, 0.0])
    perf.reset()
    second = box_channel.path_loss_maps(moved, 60.0)
    assert perf.counter("oracle.map_cache.hit") == 3
    assert perf.counter("oracle.map_cache.miss") == 1
    for i in (0, 2, 3):
        np.testing.assert_array_equal(second[i], first[i])
    np.testing.assert_array_equal(
        second[1], box_channel.path_loss_maps([moved[1]], 60.0, use_cache=False)[0]
    )


def test_map_cache_bounded_lru_eviction(box_terrain):
    channel = ChannelModel(
        box_terrain, shadowing_sigma_db=0.0, common_sigma_db=0.0, map_cache_size=2
    )
    ues = _ues_on(box_terrain, n=4)
    perf.reset()
    channel.path_loss_maps(ues, 60.0)
    assert len(channel._map_cache) == 2
    assert perf.counter("oracle.map_cache.evict") == 2


def test_fspl_prior_map_cached_and_copy_safe(box_channel, small_grid):
    ue = np.array([30.0, 30.0, 1.5])
    perf.reset()
    a = box_channel.fspl_prior_map(ue, 60.0, small_grid)
    b = box_channel.fspl_prior_map(ue, 60.0, small_grid)
    assert perf.counter("oracle.map_cache.hit") == 1
    np.testing.assert_array_equal(a, b)
    a[:] = 0.0  # mutating the returned map must not poison the cache
    np.testing.assert_array_equal(b, box_channel.fspl_prior_map(ue, 60.0, small_grid))


# -- shadowing seed handling ----------------------------------------------------


def test_shadowing_seed_zero_and_none_differ(small_grid):
    ue = np.array([10.0, 20.0, 1.5])
    seeded = ShadowingField.generate(small_grid, seed=0, ue_xyz=ue)
    unseeded = ShadowingField.generate(small_grid, seed=None, ue_xyz=ue)
    assert not np.array_equal(seeded.values_db, unseeded.values_db)
    # Determinism within each spelling is preserved.
    np.testing.assert_array_equal(
        seeded.values_db, ShadowingField.generate(small_grid, seed=0, ue_xyz=ue).values_db
    )
    np.testing.assert_array_equal(
        unseeded.values_db,
        ShadowingField.generate(small_grid, seed=None, ue_xyz=ue).values_db,
    )


# -- altitude-search flight accounting ------------------------------------------


def test_altitude_search_distance_matches_flown_time():
    # The charged search distance must equal the physically flown path:
    # clock advance x cruise speed.  The seed double-charged the
    # ceiling-to-optimum leg (analytic descent + repositioning flight).
    scenario = Scenario.create("campus", n_ues=3, cell_size=4.0, seed=3)
    ctrl = SkyRANController(
        scenario.channel, scenario.enodeb, SkyRANConfig(rem_cell_size_m=8.0), seed=1
    )
    centroid = np.mean([ue.xyz[:2] for ue in scenario.ues], axis=0)
    altitude, distance, duration = ctrl._search_altitude(centroid)
    assert ctrl.config.min_altitude_m <= altitude <= ctrl.config.max_altitude_m
    assert distance == pytest.approx(duration * ctrl.uav.speed_mps, rel=1e-9)
    # The UAV physically ends at the altitude it reports.
    assert float(ctrl.uav.position[2]) == pytest.approx(altitude)

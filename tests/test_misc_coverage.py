"""Coverage for smaller behaviors not exercised elsewhere."""

import numpy as np
import pytest

from repro.core.config import SkyRANConfig
from repro.core.controller import SkyRANController
from repro.geo.grid import GridSpec
from repro.rem.map import REM
from repro.sim.runner import run_epochs
from repro.sim.scenario import Scenario
from repro.trajectory.base import Trajectory


class TestREMMethods:
    def test_interpolated_method_dispatch(self):
        g = GridSpec.from_extent(20, 20, 2.0)
        rem = REM(g, np.array([10.0, 10.0, 1.5]), 50.0)
        rem.add_measurements(
            np.array([[4.0, 4.0], [16.0, 16.0]]), np.array([5.0, 15.0])
        )
        idw = rem.interpolated(method="idw")
        krig = rem.interpolated(method="kriging")
        assert np.isfinite(idw).all() and np.isfinite(krig).all()
        with pytest.raises(ValueError):
            rem.interpolated(method="spline")

    def test_kriging_respects_prior_when_empty(self):
        g = GridSpec.from_extent(10, 10, 1.0)
        rem = REM(g, np.zeros(3), 50.0, prior=np.full(g.shape, 2.5))
        np.testing.assert_allclose(rem.interpolated(method="kriging"), 2.5)


class TestRunnerCallbacks:
    def test_on_epoch_called_in_order(self):
        scenario = Scenario.create("campus", n_ues=3, cell_size=4.0, seed=7)
        cfg = SkyRANConfig(rem_cell_size_m=8.0)
        ctrl = SkyRANController(scenario.channel, scenario.enodeb, cfg, seed=1)
        ctrl.altitude = 60.0
        seen = []
        run_epochs(
            scenario,
            ctrl,
            2,
            budget_per_epoch_m=150.0,
            on_epoch=lambda rec: seen.append(rec.epoch),
        )
        assert seen == [0, 1]


class TestTrajectoryAltitude:
    def test_sample_spacing_monotone_arclength(self):
        t = Trajectory(np.array([[0, 0], [30, 0], [30, 40]]), altitude=25.0)
        pts = t.sample_xyz(5.0)
        seg = np.diff(pts[:, :2], axis=0)
        steps = np.hypot(seg[:, 0], seg[:, 1])
        assert np.all(steps <= 5.0 + 1e-6)


class TestControllerBookkeeping:
    def test_epoch_index_advances(self):
        scenario = Scenario.create("campus", n_ues=3, cell_size=4.0, seed=7)
        cfg = SkyRANConfig(rem_cell_size_m=8.0)
        ctrl = SkyRANController(scenario.channel, scenario.enodeb, cfg, seed=1)
        ctrl.altitude = 60.0
        assert ctrl.epoch_index == 0
        r0 = ctrl.run_epoch(budget_m=150.0)
        r1 = ctrl.run_epoch(budget_m=150.0)
        assert (r0.epoch_index, r1.epoch_index) == (0, 1)
        assert ctrl.epoch_index == 2

    def test_offset_calibrator_learns(self):
        scenario = Scenario.create("campus", n_ues=3, cell_size=4.0, seed=7)
        cfg = SkyRANConfig(rem_cell_size_m=8.0)
        ctrl = SkyRANController(scenario.channel, scenario.enodeb, cfg, seed=1)
        ctrl.altitude = 60.0
        ctrl.run_epoch(budget_m=150.0)
        assert ctrl.offset_calibrator.n_epochs == 1
        prior = ctrl.offset_calibrator.prior()
        assert prior is not None
        # The true injected offset is 137 m; one epoch should land in
        # the right neighbourhood.
        assert abs(prior[0] - 137.0) < 40.0

"""Tests for trace persistence."""

import json

import pytest

from repro.sim.records import TRACE_VERSION, load_records, save_records
from repro.sim.runner import EpochRecord


def _rec(i):
    return EpochRecord(
        epoch=i,
        flight_distance_m=100.0 * (i + 1),
        flight_time_s=10.0,
        cumulative_distance_m=100.0 * (i + 1),
        cumulative_time_s=10.0 * (i + 1),
        relative_throughput=0.8 + 0.01 * i,
        rem_error_db=4.0,
        moved_ues=(1, 2) if i else (),
    )


class TestRoundtrip:
    def test_save_and_load(self, tmp_path):
        path = tmp_path / "trace.json"
        records = [_rec(0), _rec(1)]
        save_records(path, records, metadata={"terrain": "nyc", "seed": 3})
        loaded, meta = load_records(path)
        assert loaded == records
        assert meta == {"terrain": "nyc", "seed": 3}

    def test_moved_ues_roundtrip_as_tuple(self, tmp_path):
        path = tmp_path / "trace.json"
        save_records(path, [_rec(1)])
        loaded, _ = load_records(path)
        assert loaded[0].moved_ues == (1, 2)

    def test_version_checked(self, tmp_path):
        path = tmp_path / "trace.json"
        path.write_text(json.dumps({"version": 999, "records": []}))
        with pytest.raises(ValueError):
            load_records(path)

    def test_file_is_valid_json_with_version(self, tmp_path):
        path = tmp_path / "trace.json"
        save_records(path, [_rec(0)])
        payload = json.loads(path.read_text())
        assert payload["version"] == TRACE_VERSION
        assert len(payload["records"]) == 1

"""Event-driven attach/churn control-plane tests.

Covers the deterministic event heap, the arrival-process registry, the
RACH contention primitives, the :class:`AttachSimulation` lifecycle
invariants (conservation, no starvation, replay determinism, churn,
storms, barring), the two :class:`EpochTrigger` regressions fixed
alongside (debounce re-fire, unbounded history), and the
``scheme="events"`` runner integration.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.epoch import EpochTrigger
from repro.events.arrivals import (
    available_arrival_processes,
    make_arrival_process,
)
from repro.events.heap import EventQueue
from repro.events.rach import (
    backoff_wait_s,
    barring_wait_s,
    resolve_contention,
)
from repro.events.simulate import AttachSimulation, EventConfig
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.lte.enodeb import ENodeB
from repro.lte.ue import UE

pytestmark = pytest.mark.events


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        q.push(2.0, "b")
        q.push(1.0, "a")
        q.push(3.0, "c")
        assert [q.pop().kind for _ in range(3)] == ["a", "b", "c"]

    def test_ties_pop_in_push_order(self):
        q = EventQueue()
        for kind in ("first", "second", "third"):
            q.push(1.0, kind)
        assert [q.pop().kind for _ in range(3)] == ["first", "second", "third"]

    def test_payload_never_compared(self):
        q = EventQueue()
        q.push(1.0, "a", {"unorderable": object()})
        q.push(1.0, "b", {"unorderable": object()})
        assert q.pop().kind == "a"

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-0.1, "x")

    def test_peek_and_len(self):
        q = EventQueue()
        assert q.peek_time() is None
        assert not q
        q.push(5.0, "x")
        assert q.peek_time() == 5.0
        assert len(q) == 1


class TestArrivals:
    def test_registry_names(self):
        assert set(available_arrival_processes()) >= {
            "uniform",
            "poisson",
            "stadium",
            "flash_crowd",
        }

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown arrival process"):
            make_arrival_process("nope")

    def test_unknown_params_ignored(self):
        p = make_arrival_process("uniform", burst_s=99.0)
        assert p is not None

    @pytest.mark.parametrize("name", ["uniform", "poisson", "stadium", "flash_crowd"])
    def test_times_in_window_and_sorted(self, name, rng):
        times = make_arrival_process(name).times(40, 30.0, rng)
        assert len(times) == 40
        assert np.all(times >= 0.0) and np.all(times <= 30.0)
        assert np.all(np.diff(times) >= 0.0)

    def test_uniform_draws_no_rng(self):
        rng_a = np.random.default_rng(7)
        before = rng_a.bit_generator.state
        make_arrival_process("uniform").times(10, 5.0, rng_a)
        assert rng_a.bit_generator.state == before

    def test_zero_ues(self, rng):
        assert len(make_arrival_process("poisson").times(0, 5.0, rng)) == 0

    def test_flash_crowd_is_compressed(self, rng):
        times = make_arrival_process("flash_crowd", burst_s=0.5).times(30, 60.0, rng)
        assert times.max() - times.min() <= 0.5

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            make_arrival_process("stadium", peak_frac=1.5)
        with pytest.raises(ValueError):
            make_arrival_process("flash_crowd", burst_s=0.0)
        with pytest.raises(ValueError):
            make_arrival_process("uniform").times(5, 0.0, rng)


class TestRachContention:
    def test_singletons_win(self):
        out = resolve_contention([1, 2, 3], {1: 0, 2: 1, 3: 2}, rar_window_grants=8)
        assert out.winners == (1, 2, 3)
        assert out.collided == ()
        assert out.starved == ()

    def test_same_preamble_collides(self):
        out = resolve_contention([1, 2, 3], {1: 5, 2: 5, 3: 2}, rar_window_grants=8)
        assert out.winners == (3,)
        assert out.collided == (1, 2)

    def test_rar_capacity_starves(self):
        draws = {i: i for i in range(1, 6)}
        out = resolve_contention(list(draws), draws, rar_window_grants=2)
        assert len(out.winners) == 2
        assert len(out.starved) == 3
        # Grants go in preamble-index order.
        assert out.winners == (1, 2)

    def test_everyone_collides(self):
        out = resolve_contention([4, 7], {4: 0, 7: 0}, rar_window_grants=8)
        assert out.winners == ()
        assert set(out.collided) == {4, 7}

    def test_grant_validation(self):
        with pytest.raises(ValueError):
            resolve_contention([1], {1: 0}, rar_window_grants=0)

    def test_barring_open_cell_never_waits(self, rng):
        for _ in range(20):
            assert barring_wait_s(rng, 1.0, 4.0) == 0.0

    def test_barring_wait_bounds(self, rng):
        waits = [barring_wait_s(rng, 0.01, 4.0) for _ in range(200)]
        barred = [w for w in waits if w > 0]
        assert barred, "factor 0.01 should bar most draws"
        for w in barred:
            assert 0.7 * 4.0 <= w <= 1.3 * 4.0

    def test_barring_validation(self, rng):
        with pytest.raises(ValueError):
            barring_wait_s(rng, 0.0, 4.0)
        with pytest.raises(ValueError):
            barring_wait_s(rng, 0.5, -1.0)

    def test_backoff_grows_with_attempts_and_caps(self, rng):
        assert 0.0 <= backoff_wait_s(rng, 0.01, 0) <= 0.01
        assert backoff_wait_s(rng, 0.01, 3) <= 0.01 * 8
        # Exponent caps at 8 regardless of attempt count.
        assert backoff_wait_s(rng, 0.01, 100) <= 0.01 * 256

    def test_backoff_validation(self, rng):
        with pytest.raises(ValueError):
            backoff_wait_s(rng, 0.0, 1)
        with pytest.raises(ValueError):
            backoff_wait_s(rng, 0.1, -1)


def _sim(
    n_ues: int,
    seed: int = 0,
    faults: FaultPlan = None,
    mobility=None,
    arrival_params=None,
    **cfg,
) -> AttachSimulation:
    defaults = dict(
        arrival_process="poisson",
        arrival_window_s=5.0,
        n_preambles=8,
        rar_window_grants=4,
        kpi_period_s=10.0,
    )
    defaults.update(cfg)
    enodeb = ENodeB(mobility=mobility)
    ues = [UE(ue_id=i) for i in range(1, n_ues + 1)]
    injector = FaultInjector(faults) if faults is not None else None
    return AttachSimulation(
        enodeb,
        ues,
        EventConfig(**defaults),
        seed=seed,
        arrival_params=arrival_params,
        faults=injector,
    )


class TestAttachSimulation:
    def test_everyone_attaches_in_open_cell(self):
        sim = _sim(10)
        counters = sim.run(30.0)
        assert counters["attaches"] == 10
        pop = sim.population()
        assert pop["attached"] == 10
        assert pop["waiting"] == pop["pending"] == pop["failed"] == 0
        assert len(sim.enodeb.connected_ues()) == 10

    def test_churn_detaches_and_cleans_state(self):
        mobility_forgotten = []

        class SpyModel:
            def step(self, ue, dt_s, rng):
                pass

            def forget(self, ue_id):
                mobility_forgotten.append(ue_id)

        sim = _sim(8, session_mean_s=3.0, mobility=SpyModel())
        sim.run(120.0)
        pop = sim.population()
        assert pop["detached"] > 0
        # Deregistration reached the mobility model for every detach.
        assert len(mobility_forgotten) >= pop["detached"]

    def test_storm_knocks_off_and_reattaches(self):
        plan = FaultPlan(seed=1, storm_rate_per_s=0.2, storm_burst_ues=3)
        sim = _sim(6, seed=2, faults=plan)
        counters = sim.run(60.0)
        assert counters["storm_onsets"] > 0
        assert counters["storm_knockoffs"] > 0
        # Knocked-off UEs re-ran the RACH: more attaches than arrivals.
        assert counters["attaches"] > counters["arrivals"]
        assert sum(sim.population().values()) == 6

    def test_stale_detach_is_dropped_after_storm(self):
        # With churn AND storms, a knocked-off UE's old session detach
        # must not fire against its new session: a UE that re-attached
        # after a storm stays attached until its *new* session ends.
        plan = FaultPlan(seed=3, storm_rate_per_s=0.1, storm_burst_ues=4)
        sim = _sim(6, seed=4, faults=plan, session_mean_s=40.0)
        counters = sim.run(80.0)
        # Every detach is from a live generation: detaches can never
        # exceed attaches.
        assert counters["detaches"] <= counters["attaches"]
        assert sum(sim.population().values()) == 6

    def test_barring_engages_under_overload(self):
        sim = _sim(
            20,
            arrival_process="flash_crowd",
            arrival_params={"burst_s": 0.02},
            acb_threshold=2,
            barring_factor=0.3,
            barring_time_s=0.5,
            rar_window_grants=2,
        )
        counters = sim.run(60.0)
        assert counters["barred"] > 0
        assert sim.population()["attached"] == 20  # everyone gets in eventually

    def test_collisions_happen_under_simultaneous_access(self):
        sim = _sim(
            16,
            arrival_process="flash_crowd",
            arrival_params={"burst_s": 0.004},  # within one PRACH period
            n_preambles=4,
        )
        counters = sim.run(30.0)
        assert counters["rach_collisions"] > 0
        assert sim.population()["attached"] == 16

    def test_exhausted_attempts_fail(self):
        # One preamble, everyone collides forever except lone stragglers.
        sim = _sim(
            6,
            arrival_process="flash_crowd",
            arrival_params={"burst_s": 0.004},
            n_preambles=1,
            max_attach_attempts=2,
            backoff_max_s=0.001,
        )
        counters = sim.run(30.0)
        pop = sim.population()
        assert counters["failed"] == pop["failed"]
        assert sum(pop.values()) == 6

    def test_replay_determinism(self):
        plan = FaultPlan(seed=9, storm_rate_per_s=0.1)
        a = _sim(10, seed=7, faults=plan, session_mean_s=15.0)
        b = _sim(10, seed=7, faults=plan, session_mean_s=15.0)
        assert a.run(60.0) == b.run(60.0)
        assert a.population() == b.population()

    def test_seed_changes_history(self):
        a = _sim(10, seed=1)
        b = _sim(10, seed=2)
        ca, cb = a.run(30.0), b.run(30.0)
        # Same totals, different micro-history is fine; but identical
        # runs with different seeds would mean seeds are ignored.
        assert a._arrival_times is not None and b._arrival_times is not None
        assert not np.array_equal(a._arrival_times, b._arrival_times)
        del ca, cb

    def test_kpi_callback_fires(self):
        ticks = []
        sim = _sim(4)
        sim.on_kpi = ticks.append
        sim.run(30.0)
        assert ticks == [10.0, 20.0, 30.0]

    def test_population_change_callback(self):
        changes = []
        sim = _sim(4)
        sim.on_population_change = lambda t: changes.append(
            len(sim.enodeb.connected_ues())
        )
        sim.run(30.0)
        assert changes == [1, 2, 3, 4]

    def test_duplicate_ue_ids_rejected(self):
        enodeb = ENodeB()
        ues = [UE(ue_id=1), UE(ue_id=1)]
        with pytest.raises(ValueError, match="duplicate"):
            AttachSimulation(enodeb, ues, EventConfig())

    def test_config_validation(self):
        with pytest.raises(ValueError):
            EventConfig(rach_period_s=0.0)
        with pytest.raises(ValueError):
            EventConfig(barring_factor=0.0)
        with pytest.raises(ValueError):
            EventConfig(max_attach_attempts=0)


class TestLifecycleProperties:
    @given(
        seed=st.integers(0, 2**16),
        n_ues=st.integers(1, 24),
        process=st.sampled_from(["uniform", "poisson", "stadium", "flash_crowd"]),
        stormy=st.booleans(),
    )
    @settings(max_examples=25, deadline=None)
    def test_conservation(self, seed, n_ues, process, stormy):
        """attached + waiting + pending + detached + failed == spawned."""
        plan = (
            FaultPlan(seed=seed, storm_rate_per_s=0.1, storm_burst_ues=3)
            if stormy
            else None
        )
        sim = _sim(
            n_ues,
            seed=seed,
            faults=plan,
            arrival_process=process,
            session_mean_s=10.0,
            acb_threshold=4,
            barring_factor=0.5,
            barring_time_s=0.5,
        )
        sim.run(30.0)
        pop = sim.population()
        assert sum(pop.values()) == n_ues
        assert len(sim.enodeb.connected_ues()) == pop["attached"]

    @given(seed=st.integers(0, 2**16), n_ues=st.integers(1, 16))
    @settings(max_examples=15, deadline=None)
    def test_no_starvation_without_churn(self, seed, n_ues):
        """An open cell with enough retries eventually attaches everyone."""
        sim = _sim(n_ues, seed=seed, arrival_window_s=2.0, max_attach_attempts=50)
        sim.run(60.0)
        assert sim.population()["attached"] == n_ues

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=10, deadline=None)
    def test_replay_property(self, seed):
        a = _sim(8, seed=seed, session_mean_s=5.0)
        b = _sim(8, seed=seed, session_mean_s=5.0)
        assert a.run(20.0) == b.run(20.0)


class TestEpochTriggerRegressions:
    def test_fire_clears_debounce_streak(self):
        """Regression: after a fire without reset, the streak must
        restart — the old code re-fired on every subsequent breach,
        making ``debounce`` meaningless in the event-driven loop."""
        t = EpochTrigger(margin=0.1, debounce=2)
        t.reset(100.0)
        assert t.update(50.0) is False  # breach 1 of 2
        assert t.update(50.0) is True  # fires
        assert t.update(50.0) is False  # must debounce again
        assert t.update(50.0) is True

    def test_recovery_still_clears_streak(self):
        t = EpochTrigger(margin=0.1, debounce=2)
        t.reset(100.0)
        assert t.update(50.0) is False
        assert t.update(99.0) is False  # recovered
        assert t.update(50.0) is False  # streak restarted
        assert t.update(50.0) is True

    def test_history_is_bounded(self):
        """Regression: hours of KPI ticks must not grow memory."""
        t = EpochTrigger(margin=0.1, history_maxlen=10)
        t.reset(100.0)
        for i in range(25):
            t.update(99.0, t_s=float(i))
        assert len(t.history) == 10
        assert t.history_dropped == 15
        assert t.history[0] == (15.0, 99.0)
        assert t.history[-1] == (24.0, 99.0)

    def test_reset_clears_drop_counter(self):
        t = EpochTrigger(margin=0.1, history_maxlen=2)
        t.reset(10.0)
        for i in range(5):
            t.update(9.5, t_s=float(i))
        assert t.history_dropped == 3
        t.reset(10.0)
        assert t.history_dropped == 0
        assert t.history == []

    def test_maxlen_validation(self):
        with pytest.raises(ValueError):
            EpochTrigger(history_maxlen=0)


class TestRunnerIntegration:
    @pytest.fixture(scope="class")
    def event_result(self):
        from repro.core.config import SkyRANConfig
        from repro.sim.runner import run_simulation
        from repro.sim.scenario import Scenario

        scenario = Scenario.create("campus", n_ues=3, cell_size=8.0, seed=3)
        cfg = SkyRANConfig(rem_cell_size_m=16.0, measurement_budget_m=250.0)
        return run_simulation(
            scenario,
            cfg,
            scheme="events",
            n_epochs=2,
            budget_per_epoch_m=250.0,
            seed=5,
            altitude=60.0,
            events=EventConfig(
                arrival_process="uniform", arrival_window_s=10.0, kpi_period_s=10.0
            ),
            serve_time_s=40.0,
        )

    def test_records_carry_event_fields(self, event_result):
        assert event_result.records, "at least one epoch planned"
        rec = event_result.records[0]
        assert rec.attached_ues is not None and rec.attached_ues > 0
        assert rec.attaches is not None and rec.attaches > 0
        assert rec.rach_collisions is not None
        assert rec.barred is not None

    def test_counters_and_population(self, event_result):
        assert event_result.event_counters["arrivals"] == 3
        assert sum(event_result.population.values()) == 3

    def test_default_scheme_has_no_event_fields(self):
        from repro.core.config import SkyRANConfig
        from repro.sim.runner import run_simulation
        from repro.sim.scenario import Scenario

        scenario = Scenario.create("campus", n_ues=3, cell_size=8.0, seed=3)
        cfg = SkyRANConfig(rem_cell_size_m=16.0, measurement_budget_m=250.0)
        result = run_simulation(
            scenario,
            cfg,
            scheme="skyran",
            n_epochs=1,
            budget_per_epoch_m=250.0,
            seed=5,
            altitude=60.0,
        )
        rec = result.records[0]
        assert rec.attached_ues is None
        assert rec.attaches is None
        assert rec.detaches is None
        assert rec.rach_collisions is None
        assert rec.barred is None
        assert result.event_counters == {}
        assert result.population == {}

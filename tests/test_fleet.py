"""Fleet control plane: handover hysteresis, SINR tiles, invariances.

The fleet promises three things worth pinning down hard:

* the hysteresis knob prevents boundary UEs from ping-ponging between
  cells under SINR jitter smaller than the hysteresis margin;
* streamed SINR tiles assemble bit-identically to the materialized
  stack for *every* tiling, interferers or not;
* nothing physical depends on the arbitrary order cells are listed in
  — permuting the fleet permutes the labels and changes no SINR.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel.interference import sinr_db_from_rx_stack
from repro.channel.linkbudget import LinkBudget
from repro.core.association import (
    UNATTACHED,
    available_associations,
    make_association,
)
from repro.core.config import SkyRANConfig
from repro.core.controller import SkyRANController
from repro.core.fleet import FleetController
from repro.sim.scenario import Scenario

pytestmark = pytest.mark.fleet


# -- handover hysteresis -------------------------------------------------------


class TestHandoverHysteresis:
    def _jittered_scores(self, n_epochs=20):
        """A boundary UE: cells 0/1 alternate being better by 1 dB."""
        scores = []
        for t in range(n_epochs):
            edge = 1.0 if t % 2 == 0 else -1.0
            scores.append(np.array([[10.0 + edge], [10.0 - edge]]))
        return scores

    def test_no_ping_pong_with_hysteresis(self):
        policy = make_association("best_sinr", hysteresis_db=3.0)
        serving = np.array([UNATTACHED])
        handovers = 0
        for candidate in self._jittered_scores():
            new = policy.associate(candidate, serving)
            handovers += int(serving[0] != UNATTACHED and new[0] != serving[0])
            serving = new
        # Attach once, then hold: 2 dB of jitter never clears 3 dB.
        assert handovers == 0
        assert serving[0] == 0  # the first epoch's best cell

    def test_zero_hysteresis_ping_pongs(self):
        policy = make_association("best_sinr", hysteresis_db=0.0)
        serving = np.array([UNATTACHED])
        handovers = 0
        for candidate in self._jittered_scores():
            new = policy.associate(candidate, serving)
            handovers += int(serving[0] != UNATTACHED and new[0] != serving[0])
            serving = new
        # Without the margin the same jitter flips the UE every epoch.
        assert handovers == 19

    def test_large_gain_still_hands_over(self):
        policy = make_association("best_sinr", hysteresis_db=3.0)
        serving = np.array([0])
        candidate = np.array([[5.0], [15.0]])  # 10 dB gain clears 3 dB
        assert policy.associate(candidate, serving)[0] == 1

    def test_sticky_never_hands_over(self):
        policy = make_association("sticky")
        serving = np.array([0])
        candidate = np.array([[5.0], [50.0]])
        assert policy.associate(candidate, serving)[0] == 0

    def test_registry_lists_policies(self):
        names = available_associations()
        assert {"best_sinr", "sticky", "load_aware"} <= set(names)


# -- streamed SINR tiles vs the materialized stack -----------------------------


class TestSinrTiles:
    @pytest.fixture(scope="class")
    def world(self):
        scenario = Scenario.create("campus", n_ues=3, cell_size=4.0, seed=21)
        interferers = [
            np.array([60.0, 80.0, 60.0]),
            np.array([240.0, 220.0, 60.0]),
        ]
        return scenario, interferers

    @pytest.mark.parametrize("tile_rows", [7, 13, 50])
    @pytest.mark.parametrize("ue_chunk", [None, 1, 2])
    def test_tiles_match_materialized(self, world, tile_rows, ue_chunk):
        scenario, interferers = world
        ues = scenario.ue_positions()
        grid = scenario.eval_grid
        stack = scenario.channel.sinr_maps(
            ues, 60.0, grid, interferer_positions=interferers
        )
        assembled = np.full_like(stack, np.nan)
        for ue_sl, row_sl, block in scenario.channel.iter_sinr_map_tiles(
            ues,
            60.0,
            grid,
            interferer_positions=interferers,
            tile_rows=tile_rows,
            ue_chunk=ue_chunk,
        ):
            assembled[ue_sl, row_sl] = block
        assert not np.isnan(assembled).any()
        assert np.array_equal(assembled, stack)

    def test_no_interferers_is_exactly_snr(self, world):
        scenario, _ = world
        ues = scenario.ue_positions()
        grid = scenario.eval_grid
        sinr = scenario.channel.sinr_maps(ues, 60.0, grid)
        snr = scenario.channel.snr_maps(ues, 60.0, grid)
        assert np.array_equal(sinr, snr)

    def test_interference_only_costs(self, world):
        scenario, interferers = world
        ues = scenario.ue_positions()
        grid = scenario.eval_grid
        sinr = scenario.channel.sinr_maps(
            ues, 60.0, grid, interferer_positions=interferers
        )
        snr = scenario.channel.snr_maps(ues, 60.0, grid)
        assert (sinr <= snr + 1e-12).all()


# -- cell-order invariance -----------------------------------------------------


@st.composite
def rx_stacks(draw):
    n_uav = draw(st.integers(min_value=2, max_value=4))
    n_ue = draw(st.integers(min_value=1, max_value=6))
    rx = draw(
        st.lists(
            st.floats(min_value=-120.0, max_value=-40.0),
            min_size=n_uav * n_ue,
            max_size=n_uav * n_ue,
        )
    )
    serving = draw(
        st.lists(
            st.integers(min_value=0, max_value=n_uav - 1),
            min_size=n_ue,
            max_size=n_ue,
        )
    )
    perm = draw(st.permutations(range(n_uav)))
    return (
        np.array(rx).reshape(n_uav, n_ue),
        np.array(serving),
        np.array(perm),
    )


class TestCellOrderInvariance:
    @given(rx_stacks())
    @settings(max_examples=60, deadline=None)
    def test_sinr_invariant_under_cell_relabeling(self, case):
        rx, serving, perm = case
        link = LinkBudget()
        base = sinr_db_from_rx_stack(link, rx, serving)
        # Relabel cells by perm: row i of the permuted stack is old
        # cell perm[i], so old serving cell s becomes inverse[s].
        inverse = np.argsort(perm)
        permuted = sinr_db_from_rx_stack(link, rx[perm], inverse[serving])
        # Interference terms accumulate in a different order, so the
        # sums may differ in the last ulp — but nothing more.
        np.testing.assert_allclose(permuted, base, rtol=1e-12, atol=0.0)

    @given(rx_stacks())
    @settings(max_examples=60, deadline=None)
    def test_best_cell_choice_invariant(self, case):
        rx, _serving, perm = case
        cols = np.arange(rx.shape[1])
        best = np.argmax(rx, axis=0)
        best_permuted = np.argmax(rx[perm], axis=0)
        # The winning *link* is invariant under relabeling (ties may
        # resolve to a different but equally-good cell, so compare the
        # received power, not the label).
        assert np.array_equal(rx[perm[best_permuted], cols], rx[best, cols])


# -- city-scale fleet SINR via REM-key dedup -----------------------------------


class TestCityFleetSinr:
    def test_fine_key_pitch_matches_exact_tracing(self):
        from repro.channel.interference import (
            fleet_rx_power_dbm,
            sinr_db_from_rx_stack,
        )
        from repro.city import CityScenario

        # Key pitch == terrain cell: every UE is its own representative,
        # so the dedup path must be bit-identical to tracing all UEs.
        city = CityScenario.create(
            terrain_name="campus", cell_size_m=4.0, n_ues=30, seed=5,
            rem_cell_m=4.0,
        )
        uavs = [np.array([80.0, 80.0, 60.0]), np.array([220.0, 220.0, 60.0])]
        rng = np.random.default_rng(1)
        serving = rng.integers(0, 2, size=city.population.n_ues)
        dedup = city.fleet_sinr_db(uavs, serving)
        rx = fleet_rx_power_dbm(city.channel, uavs, [p for p in city.population.xyz])
        exact = sinr_db_from_rx_stack(city.channel.link, rx, serving)
        assert np.array_equal(dedup, exact)

    def test_interference_aware_place_costs_min_snr(self):
        from repro.city import CityScenario

        city = CityScenario.create(
            terrain_name="campus", cell_size_m=4.0, n_ues=30, seed=5
        )
        plain = city.place()
        jammed = city.place(
            interferer_positions=[np.array([150.0, 150.0, 60.0])]
        )
        # The penalized surface can only be lower, and no interferers
        # must take the exact SNR path.
        assert jammed.min_snr_db <= plain.min_snr_db + 1e-12
        assert city.place(interferer_positions=[]) == plain

    def test_serving_validation(self):
        from repro.city import CityScenario

        city = CityScenario.create(
            terrain_name="campus", cell_size_m=4.0, n_ues=10, seed=5
        )
        uavs = [np.array([80.0, 80.0, 60.0])]
        with pytest.raises(ValueError):
            city.fleet_sinr_db(uavs, np.zeros(3, dtype=int))
        with pytest.raises(ValueError):
            city.fleet_sinr_db(uavs, np.full(10, 2))


# -- the degenerate fleet ------------------------------------------------------


class TestDegenerateFleet:
    def test_single_uav_fleet_flies_like_skyran(self):
        cfg = SkyRANConfig(rem_cell_size_m=8.0)

        scenario = Scenario.create("campus", n_ues=4, cell_size=4.0, seed=9)
        solo = SkyRANController(scenario.channel, scenario.enodeb, cfg, seed=3)
        solo_results = [solo.run_epoch(budget_m=250.0) for _ in range(2)]

        scenario2 = Scenario.create("campus", n_ues=4, cell_size=4.0, seed=9)
        for ue in list(scenario2.enodeb.ues):
            scenario2.enodeb.deregister_ue(ue.ue_id)
        fleet = FleetController(
            channel=scenario2.channel,
            ues=list(scenario2.ues),
            n_uavs=1,
            config=cfg,
            seed=3,
        )
        fleet_results = [fleet.run_epoch(budget_per_uav_m=250.0) for _ in range(2)]

        # One cell, no co-channel neighbours: the refinement pass is a
        # no-op and the fleet's flight is exactly the standalone
        # controller's (same seed, same RNG draw schedule).
        for solo_res, fleet_res in zip(solo_results, fleet_results):
            cell = fleet_res.per_uav[0]
            assert cell.flight_distance_m == solo_res.flight_distance_m
            assert cell.flight_time_s == solo_res.flight_time_s
            assert cell.placement.position == solo_res.placement.position

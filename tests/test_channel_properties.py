"""Property-style invariants of the channel stack."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.channel.fspl import fspl_db
from repro.channel.linkbudget import LinkBudget
from repro.channel.model import ChannelModel
from repro.terrain.generators import make_flat


@pytest.fixture(scope="module")
def det_channel():
    t = make_flat(size=120.0, cell_size=2.0)
    t = t.with_box(50.0, 50.0, 70.0, 70.0, 25.0)
    return ChannelModel(t, shadowing_sigma_db=0.0, common_sigma_db=0.0)


class TestChannelInvariants:
    def test_path_loss_at_least_fspl(self, det_channel):
        """Obstruction and diffraction only ever add loss."""
        rng = np.random.default_rng(0)
        ue = np.array([90.0, 60.0, 1.5])
        for _ in range(40):
            uav = np.array(
                [rng.uniform(5, 115), rng.uniform(5, 115), rng.uniform(15, 120)]
            )
            d = np.linalg.norm(uav - ue)
            pl = float(det_channel.path_loss_db(uav, ue))
            assert pl >= fspl_db(d, det_channel.freq_hz) - 1e-9

    def test_excess_bounded_by_cap_plus_fspl(self, det_channel):
        rng = np.random.default_rng(1)
        ue = np.array([90.0, 60.0, 1.5])
        for _ in range(40):
            uav = np.array(
                [rng.uniform(5, 115), rng.uniform(5, 115), rng.uniform(15, 120)]
            )
            d = np.linalg.norm(uav - ue)
            pl = float(det_channel.path_loss_db(uav, ue))
            assert pl <= fspl_db(d, det_channel.freq_hz) + det_channel.excess_cap_db + 1e-9

    def test_map_consistent_with_pointwise(self, det_channel):
        ue = np.array([30.0, 30.0, 1.5])
        m = det_channel.snr_map(ue, altitude=70.0)
        grid = det_channel.terrain.grid
        for ix, iy in ((3, 4), (20, 31), (50, 12)):
            x, y = grid.center_of(ix, iy)
            point = float(det_channel.snr_db(np.array([x, y, 70.0]), ue))
            assert m[iy, ix] == pytest.approx(point, abs=1e-6)

    def test_symmetric_geometry_symmetric_loss(self):
        """Without shadowing, mirrored UAV positions see equal loss."""
        t = make_flat(size=100.0, cell_size=2.0)
        ch = ChannelModel(t, shadowing_sigma_db=0.0, common_sigma_db=0.0)
        ue = np.array([50.0, 50.0, 1.5])
        a = float(ch.path_loss_db(np.array([20.0, 50.0, 60.0]), ue))
        b = float(ch.path_loss_db(np.array([80.0, 50.0, 60.0]), ue))
        assert a == pytest.approx(b, abs=1e-9)


class TestLinkBudgetProperties:
    @given(st.floats(60.0, 160.0))
    @settings(max_examples=60, deadline=None)
    def test_snr_affine_in_path_loss(self, pl):
        lb = LinkBudget()
        assert lb.snr_db(pl) - lb.snr_db(pl + 10.0) == pytest.approx(10.0)

    @given(
        st.floats(-10.0, 30.0),
        st.floats(0.0, 10.0),
        st.floats(0.0, 10.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_gains_add_linearly(self, tx, g_tx, g_rx):
        base = LinkBudget(tx_power_dbm=tx, tx_gain_dbi=g_tx, rx_gain_dbi=g_rx)
        ref = LinkBudget(tx_power_dbm=0.0, tx_gain_dbi=0.0, rx_gain_dbi=0.0)
        assert base.snr_db(100.0) - ref.snr_db(100.0) == pytest.approx(tx + g_tx + g_rx)

    @given(st.floats(1e6, 40e6))
    @settings(max_examples=40, deadline=None)
    def test_wider_band_raises_noise_floor(self, bw):
        narrow = LinkBudget(bandwidth_hz=bw)
        wide = LinkBudget(bandwidth_hz=2.0 * bw)
        assert wide.noise_floor_dbm - narrow.noise_floor_dbm == pytest.approx(
            10.0 * np.log10(2.0)
        )

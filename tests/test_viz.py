"""Tests for the visualization helpers."""

import numpy as np
import pytest

from repro.geo.grid import GridSpec
from repro.viz.ascii_art import SHADES, ascii_heatmap, ascii_overlay
from repro.viz.images import save_heatmap_ppm, save_pgm


class TestAsciiHeatmap:
    def test_gradient_uses_full_ramp(self):
        field = np.tile(np.linspace(0, 1, 40), (10, 1))
        art = ascii_heatmap(field, width=40)
        assert SHADES[0] in art
        assert SHADES[-1] in art

    def test_north_up_orientation(self):
        field = np.zeros((10, 10))
        field[-1, :] = 1.0  # north edge hot
        art = ascii_heatmap(field, width=10)
        first_line = art.split("\n")[0]
        assert SHADES[-1] in first_line

    def test_nan_marked(self):
        field = np.full((4, 4), np.nan)
        field[0, 0] = 1.0
        art = ascii_heatmap(field, width=4)
        assert "?" in art

    def test_downsamples_wide_fields(self):
        field = np.zeros((20, 200))
        art = ascii_heatmap(field, width=50)
        assert max(len(line) for line in art.split("\n")) <= 50

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_heatmap(np.zeros(5))
        with pytest.raises(ValueError):
            ascii_heatmap(np.zeros((3, 3)), width=0)


class TestAsciiOverlay:
    def test_trajectory_painted(self):
        grid = GridSpec.from_extent(100, 100, 1.0)
        field = np.zeros(grid.shape)
        poly = np.array([[10.0, 50.0], [90.0, 50.0]])
        art = ascii_overlay(field, grid, [poly], width=50)
        assert "A" in art

    def test_multiple_marks(self):
        grid = GridSpec.from_extent(100, 100, 1.0)
        field = np.zeros(grid.shape)
        a = np.array([[10.0, 20.0], [90.0, 20.0]])
        b = np.array([[10.0, 80.0], [90.0, 80.0]])
        art = ascii_overlay(field, grid, [a, b], width=50)
        assert "A" in art and "B" in art
        # North-up: B (y=80) should appear above A (y=20).
        lines = art.split("\n")
        row_a = next(i for i, l in enumerate(lines) if "A" in l)
        row_b = next(i for i, l in enumerate(lines) if "B" in l)
        assert row_b < row_a


class TestImages:
    def test_pgm_roundtrip_header(self, tmp_path):
        path = tmp_path / "map.pgm"
        save_pgm(path, np.random.default_rng(0).uniform(0, 1, (16, 24)))
        data = path.read_bytes()
        assert data.startswith(b"P5\n24 16\n255\n")
        assert len(data) == len(b"P5\n24 16\n255\n") + 16 * 24

    def test_ppm_header_and_size(self, tmp_path):
        path = tmp_path / "map.ppm"
        save_heatmap_ppm(path, np.zeros((8, 10)))
        data = path.read_bytes()
        assert data.startswith(b"P6\n10 8\n255\n")
        assert len(data) == len(b"P6\n10 8\n255\n") + 8 * 10 * 3

    def test_extremes_map_to_ramp_ends(self, tmp_path):
        path = tmp_path / "map.pgm"
        field = np.array([[0.0, 1.0]])
        save_pgm(path, field, vmin=0.0, vmax=1.0)
        body = path.read_bytes().split(b"255\n", 1)[1]
        assert body[0] == 0 and body[1] == 255

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            save_pgm(tmp_path / "x.pgm", np.zeros(5))
        with pytest.raises(ValueError):
            save_heatmap_ppm(tmp_path / "x.ppm", np.zeros(5))

"""Unit tests for the ray/terrain intersection."""

import numpy as np
import pytest

from repro.channel.raytrace import is_los, obstructed_lengths, trace_profile


class TestObstruction:
    def test_clear_ray_over_flat_ground(self, flat_terrain):
        tx = np.array([10.0, 10.0, 50.0])
        rx = np.array([90.0, 90.0, 1.5])
        assert obstructed_lengths(flat_terrain, tx, rx)[0] == pytest.approx(0.0)

    def test_building_blocks_grazing_ray(self, box_terrain):
        # Low ray passing straight through the 20 m building.
        tx = np.array([10.0, 50.0, 5.0])
        rx = np.array([90.0, 50.0, 1.5])
        blocked = obstructed_lengths(box_terrain, tx, rx)[0]
        # Building spans x in [40, 60]: ~20 m horizontal obstruction.
        assert 12.0 < blocked < 28.0

    def test_high_ray_clears_building(self, box_terrain):
        tx = np.array([10.0, 50.0, 80.0])
        rx = np.array([90.0, 50.0, 60.0])
        assert obstructed_lengths(box_terrain, tx, rx)[0] == pytest.approx(0.0)

    def test_vertical_ray_uses_slant_floor(self, box_terrain):
        # Straight down onto the UE through the building: the
        # obstruction is charged at the 15% slant-length floor, not
        # the full 3D depth.
        tx = np.array([50.0, 50.0, 60.0])
        rx = np.array([50.0, 50.0, 1.5])
        blocked = obstructed_lengths(box_terrain, tx, rx)[0]
        assert 0.0 < blocked < 0.2 * 58.5

    def test_batch_matches_single(self, box_terrain):
        txs = np.array(
            [[10.0, 50.0, 5.0], [10.0, 50.0, 80.0], [10.0, 10.0, 40.0]]
        )
        rx = np.array([90.0, 50.0, 1.5])
        batch = obstructed_lengths(box_terrain, txs, rx)
        for i in range(3):
            single = obstructed_lengths(box_terrain, txs[i], rx)[0]
            # Batched rays share one sampling density (set by the
            # longest ray), so results agree to sampling tolerance.
            assert batch[i] == pytest.approx(single, abs=1.5)

    def test_zero_length_ray(self, flat_terrain):
        p = np.array([50.0, 50.0, 10.0])
        assert obstructed_lengths(flat_terrain, p, p)[0] == 0.0

    def test_rejects_bad_step(self, flat_terrain):
        with pytest.raises(ValueError):
            obstructed_lengths(
                flat_terrain, np.zeros(3), np.array([1.0, 1.0, 1.0]), step=0.0
            )

    def test_shape_mismatch_rejected(self, flat_terrain):
        with pytest.raises(ValueError):
            obstructed_lengths(
                flat_terrain, np.zeros((3, 3)), np.zeros((2, 3))
            )


class TestLosAndProfile:
    def test_is_los(self, box_terrain):
        tx_clear = np.array([10.0, 10.0, 50.0])
        tx_blocked = np.array([10.0, 50.0, 5.0])
        rx = np.array([90.0, 50.0, 1.5])
        assert is_los(box_terrain, tx_clear, rx)[0]
        assert not is_los(box_terrain, tx_blocked, rx)[0]

    def test_trace_profile_shapes(self, box_terrain):
        arc, ray_z, surf = trace_profile(
            box_terrain, np.array([0.0, 50.0, 40.0]), np.array([99.0, 50.0, 1.5])
        )
        assert arc.shape == ray_z.shape == surf.shape
        assert arc[0] == 0.0
        assert arc[-1] == pytest.approx(np.sqrt(99.0**2 + 38.5**2))
        # Surface profile shows the building bump.
        assert surf.max() == pytest.approx(20.0)

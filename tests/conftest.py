"""Shared fixtures for the test suite.

The scenario fixtures are deliberately small (coarse grids, few UEs)
so the whole suite runs in well under a minute; the benchmarks — not
the tests — exercise paper-scale runs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.model import ChannelModel
from repro.geo.grid import GridSpec
from repro.sim.scenario import Scenario
from repro.terrain.generators import make_campus, make_flat
from repro.terrain.heightmap import Terrain


@pytest.fixture(scope="session")
def flat_terrain() -> Terrain:
    """A 100 m x 100 m flat world at 2 m pitch."""
    return make_flat(size=100.0, cell_size=2.0)


@pytest.fixture(scope="session")
def box_terrain() -> Terrain:
    """Flat world with one 20 m building in the middle."""
    t = make_flat(size=100.0, cell_size=2.0, name="box")
    return t.with_box(40.0, 40.0, 60.0, 60.0, 20.0)


@pytest.fixture(scope="session")
def campus_terrain() -> Terrain:
    """The paper's campus at coarse pitch."""
    return make_campus(cell_size=4.0)


@pytest.fixture()
def flat_channel(flat_terrain) -> ChannelModel:
    """Channel over flat ground with shadowing/fading disabled.

    Deterministic: path loss is pure FSPL, which tests can verify in
    closed form.
    """
    return ChannelModel(
        flat_terrain, shadowing_sigma_db=0.0, common_sigma_db=0.0
    )


@pytest.fixture()
def box_channel(box_terrain) -> ChannelModel:
    """Deterministic channel over the one-building world."""
    return ChannelModel(box_terrain, shadowing_sigma_db=0.0, common_sigma_db=0.0)


@pytest.fixture()
def small_scenario() -> Scenario:
    """A tiny 3-UE campus scenario for integration tests."""
    return Scenario.create("campus", n_ues=3, cell_size=4.0, seed=3)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture()
def small_grid() -> GridSpec:
    return GridSpec.from_extent(100.0, 100.0, cell_size=2.0)

"""Unit tests for SRS synthesis and the synthetic channel."""

import numpy as np
import pytest

from repro.lte.srs import (
    SRSConfig,
    apply_channel,
    make_srs_symbol,
    zadoff_chu,
    _largest_prime_at_most,
)


class TestZadoffChu:
    def test_constant_amplitude(self):
        zc = zadoff_chu(25, 839)
        np.testing.assert_allclose(np.abs(zc), 1.0, atol=1e-12)

    def test_ideal_autocorrelation(self):
        zc = zadoff_chu(7, 139)
        # Circular autocorrelation: delta at zero lag.
        corr = np.fft.ifft(np.fft.fft(zc) * np.conj(np.fft.fft(zc)))
        peak = np.abs(corr[0])
        sidelobes = np.abs(corr[1:])
        assert peak == pytest.approx(139.0, rel=1e-9)
        assert sidelobes.max() < 1e-9 * peak

    def test_rejects_bad_root(self):
        with pytest.raises(ValueError):
            zadoff_chu(0, 139)
        with pytest.raises(ValueError):
            zadoff_chu(139, 139)

    def test_rejects_non_coprime(self):
        with pytest.raises(ValueError):
            zadoff_chu(10, 100)

    def test_largest_prime(self):
        assert _largest_prime_at_most(576) == 571
        assert _largest_prime_at_most(2) == 2
        assert _largest_prime_at_most(10) == 7


class TestSRSConfig:
    def test_defaults_are_10mhz_lte(self):
        cfg = SRSConfig()
        assert cfg.n_fft == 1024
        assert cfg.sample_rate_hz == pytest.approx(15.36e6)
        assert cfg.meters_per_sample == pytest.approx(19.5, abs=0.1)

    def test_subcarrier_bins_avoid_dc(self):
        cfg = SRSConfig(n_fft=64, n_subcarriers=32)
        bins = cfg.subcarrier_bins()
        assert 0 not in bins
        assert len(bins) == 32
        assert np.all((bins >= 0) & (bins < 64))

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            SRSConfig(n_fft=1000)  # not a power of two
        with pytest.raises(ValueError):
            SRSConfig(n_subcarriers=0)
        with pytest.raises(ValueError):
            SRSConfig(sample_rate_hz=0.0)


class TestSymbolAndChannel:
    def test_symbol_occupies_configured_bins(self):
        cfg = SRSConfig()
        sym = make_srs_symbol(cfg)
        active = np.abs(sym) > 0
        assert active.sum() == cfg.n_subcarriers

    def test_different_roots_low_cross_correlation(self):
        cfg = SRSConfig()
        a = make_srs_symbol(cfg, root=25)
        b = make_srs_symbol(cfg, root=29)
        cross = np.abs(np.fft.ifft(a * np.conj(b))).max()
        auto = np.abs(np.fft.ifft(a * np.conj(a))).max()
        assert cross < 0.3 * auto

    def test_integer_delay_shifts_peak(self, rng):
        cfg = SRSConfig()
        sym = make_srs_symbol(cfg)
        rx = apply_channel(sym, cfg, delay_samples=12.0, snr_db=40.0, rng=rng)
        corr = np.abs(np.fft.ifft(rx * np.conj(sym)))
        assert int(np.argmax(corr)) == 12

    def test_noise_scales_with_snr(self, rng):
        cfg = SRSConfig()
        sym = make_srs_symbol(cfg)
        quiet = apply_channel(sym, cfg, 0.0, snr_db=40.0, rng=rng)
        loud = apply_channel(sym, cfg, 0.0, snr_db=-10.0, rng=rng)
        err_quiet = np.abs(quiet - sym).mean()
        err_loud = np.abs(loud - sym).mean()
        assert err_loud > 10 * err_quiet

    def test_multipath_negative_excess_rejected(self, rng):
        cfg = SRSConfig()
        sym = make_srs_symbol(cfg)
        with pytest.raises(ValueError):
            apply_channel(sym, cfg, 0.0, 10.0, rng, multipath=((-1.0, -3.0),))

    def test_wrong_symbol_shape_rejected(self, rng):
        cfg = SRSConfig()
        with pytest.raises(ValueError):
            apply_channel(np.zeros(10, dtype=complex), cfg, 0.0, 10.0, rng)

"""Unit tests for the eNodeB scheduler and the minimal EPC."""

import numpy as np
import pytest

from repro.lte.enodeb import ENodeB
from repro.lte.epc import EPC, BearerState
from repro.lte.ue import UE, UEState


def _ue(i):
    return UE(ue_id=i)


class TestEPC:
    def test_attach_provisioned(self):
        epc = EPC()
        ue = _ue(1)
        epc.provision(ue.imsi)
        record = epc.attach(ue)
        assert ue.state is UEState.CONNECTED
        assert record.state is BearerState.ACTIVE
        assert record.bearer_id == 5

    def test_attach_unknown_imsi_rejected(self):
        epc = EPC()
        ue = _ue(2)
        with pytest.raises(PermissionError):
            epc.attach(ue)
        assert ue.state is UEState.DETACHED

    def test_detach_releases_bearer(self):
        epc = EPC()
        ue = _ue(3)
        epc.provision(ue.imsi)
        epc.attach(ue)
        epc.detach(ue)
        assert ue.state is UEState.DETACHED
        assert epc.session_of(ue.imsi).state is BearerState.RELEASED
        assert epc.active_sessions() == []

    def test_traffic_accounting(self):
        epc = EPC()
        ue = _ue(4)
        epc.provision(ue.imsi)
        epc.attach(ue)
        epc.account_traffic(ue.imsi, down_bytes=1000, up_bytes=200)
        epc.account_traffic(ue.imsi, down_bytes=500)
        record = epc.session_of(ue.imsi)
        assert record.bytes_down == 1500
        assert record.bytes_up == 200

    def test_traffic_requires_active_session(self):
        epc = EPC()
        with pytest.raises(KeyError):
            epc.account_traffic("000000", down_bytes=1)

    def test_negative_traffic_rejected(self):
        epc = EPC()
        ue = _ue(5)
        epc.provision(ue.imsi)
        epc.attach(ue)
        with pytest.raises(ValueError):
            epc.account_traffic(ue.imsi, down_bytes=-1)

    def test_empty_imsi_rejected(self):
        with pytest.raises(ValueError):
            EPC().provision("")


class TestENodeB:
    def test_register_attaches_via_epc(self):
        enb = ENodeB()
        ue = _ue(1)
        enb.register_ue(ue)
        assert ue.state is UEState.CONNECTED
        assert enb.epc.is_provisioned(ue.imsi)
        assert enb.connected_ues() == [ue]

    def test_duplicate_id_rejected(self):
        enb = ENodeB()
        enb.register_ue(_ue(1))
        with pytest.raises(ValueError):
            enb.register_ue(_ue(1))

    def test_deregister(self):
        enb = ENodeB()
        ue = _ue(1)
        enb.register_ue(ue)
        enb.deregister_ue(1)
        assert enb.ues == []
        assert ue.state is UEState.DETACHED

    def test_rr_scheduler_splits_prbs(self):
        enb = ENodeB()
        for i in (1, 2, 3):
            enb.register_ue(_ue(i))
        result = enb.schedule({1: 20.0, 2: 20.0, 3: 20.0})
        assert sum(result.prb_share.values()) == enb.n_prb
        shares = sorted(result.prb_share.values())
        assert shares[-1] - shares[0] <= 1  # near-equal split

    def test_scheduler_skips_unreported_ues(self):
        enb = ENodeB()
        enb.register_ue(_ue(1))
        enb.register_ue(_ue(2))
        result = enb.schedule({1: 15.0})
        assert set(result.prb_share) == {1}
        assert result.prb_share[1] == enb.n_prb

    def test_shared_vs_full_cell(self):
        enb = ENodeB()
        enb.register_ue(_ue(1))
        enb.register_ue(_ue(2))
        shared = enb.schedule({1: 20.0, 2: 20.0}).throughput_mbps
        full = enb.full_cell_throughput({1: 20.0, 2: 20.0})
        assert shared[1] == pytest.approx(full[1] / 2, rel=0.1)

    def test_srs_roundtrip(self, rng):
        enb = ENodeB()
        ue = _ue(1)
        enb.register_ue(ue)
        rx = enb.receive_srs(ue, true_delay_samples=7.0, snr_db=30.0, rng=rng)
        known = enb.known_srs_symbol(ue)
        corr = np.abs(np.fft.ifft(rx * np.conj(known)))
        assert int(np.argmax(corr)) == 7

    def test_ue_auto_imsi(self):
        ue = UE(ue_id=42)
        assert ue.imsi.startswith("00101")
        assert ue.imsi.endswith("42")

    def test_ue_move(self):
        ue = _ue(1)
        ue.move_to(10.0, 20.0)
        assert ue.position.x == 10.0
        assert ue.position.z == pytest.approx(1.5)
        ue.move_to(1.0, 2.0, 3.0)
        assert ue.position.z == 3.0

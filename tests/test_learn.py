"""Tests of the learned-control subsystem (``repro.learn``).

The contracts under test, in order of importance:

1. the zero/absent-model ``learned`` interpolator is **bitwise**
   identical to plain IDW — on ragged random tilings, not just neat
   ones (hypothesis);
2. dataset export -> train -> serialize is byte-for-byte deterministic
   across repeat runs;
3. the registry ``override`` guard: duplicate registrations raise
   unless ``override=True``;
4. the learned epoch trigger never fires later than the reactive rule,
   and every trust gate (fault injector, cold start, corrupt window,
   missing model) falls back with a counted ``learn.fallback.*``;
5. model serialization round-trips exactly and refuses schema drift.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.learn  # noqa: F401  (registers the "learned" interpolator)
from repro.core.epoch import EpochTrigger
from repro.geo.grid import GridSpec
from repro.learn import io as lio
from repro.learn.adapters import clear_model_cache
from repro.learn.constants import (
    REM_FEATURE_NAMES,
    TRIGGER_FEATURE_NAMES,
    TRIGGER_WINDOW,
)
from repro.learn.features import rem_features, trace_to_windows, trigger_features
from repro.learn.models import (
    ModelSchemaError,
    RidgeModel,
    TinyMLP,
    load_model,
    make_model,
    save_model,
    zero_model,
)
from repro.learn.trigger import CollapsePredictor, make_predictor
from repro.perf import perf
from repro.rem.interpolate import (
    available_interpolators,
    make_interpolator,
    register_interpolator,
)
from repro.rem.interpolate import _REGISTRY as _INTERP_REGISTRY
from repro.traffic.schedulers import _REGISTRY as _SCHED_REGISTRY
from repro.traffic.schedulers import register_scheduler

pytestmark = pytest.mark.learn


# -- registry override guards (satellite a) -----------------------------------


class TestRegistryOverride:
    def test_interpolator_duplicate_raises(self):
        with pytest.raises(ValueError, match="already registered"):
            register_interpolator("idw", lambda **kw: None)

    def test_interpolator_override_replaces_and_restores(self):
        original = _INTERP_REGISTRY["idw"]
        try:
            register_interpolator("idw", lambda **kw: "sentinel", override=True)
            assert _INTERP_REGISTRY["idw"] is not original
        finally:
            register_interpolator("idw", original, override=True)
        assert _INTERP_REGISTRY["idw"] is original

    def test_scheduler_duplicate_raises(self):
        with pytest.raises(ValueError, match="already registered"):
            register_scheduler("round_robin", lambda **kw: None)

    def test_scheduler_override_replaces_and_restores(self):
        original = _SCHED_REGISTRY["round_robin"]
        try:
            register_scheduler("round_robin", lambda **kw: None, override=True)
        finally:
            register_scheduler("round_robin", original, override=True)
        assert _SCHED_REGISTRY["round_robin"] is original

    def test_learned_is_registered(self):
        assert "learned" in available_interpolators()


# -- bitwise degeneration to IDW (hypothesis, satellite c) --------------------


def _random_map(draw):
    nx = draw(st.integers(min_value=2, max_value=14))
    ny = draw(st.integers(min_value=2, max_value=14))
    cell = draw(st.floats(min_value=0.5, max_value=30.0))
    grid = GridSpec(
        draw(st.floats(min_value=-50.0, max_value=50.0)),
        draw(st.floats(min_value=-50.0, max_value=50.0)),
        cell,
        nx,
        ny,
    )
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    values = rng.normal(0.0, 10.0, (ny, nx))
    n_measured = draw(st.integers(min_value=1, max_value=nx * ny))
    mask = np.zeros(nx * ny, dtype=bool)
    mask[rng.choice(nx * ny, size=n_measured, replace=False)] = True
    values[~mask.reshape(ny, nx)] = np.nan
    return grid, values, rng


class TestBitwiseDegeneration:
    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_no_model_is_bitwise_idw_on_ragged_tilings(self, data):
        """model_path=None must return the very IDW result object."""
        grid, values, rng = _random_map(data.draw)
        idw = make_interpolator("idw")
        learned = make_interpolator("learned")
        fallback = rng.normal(0.0, 10.0, grid.shape)
        for fb in (None, fallback):
            a = idw.interpolate(grid, values, fallback=fb)
            b = learned.interpolate(grid, values, fallback=fb)
            np.testing.assert_array_equal(a, b)

    @settings(max_examples=15, deadline=None)
    @given(st.data())
    def test_zero_model_is_bitwise_idw(self, tmp_path_factory, data):
        grid, values, _ = _random_map(data.draw)
        td = tmp_path_factory.mktemp("zero")
        path = td / "zero.npz"
        save_model(
            zero_model(len(REM_FEATURE_NAMES)),
            path,
            feature_names=REM_FEATURE_NAMES,
            target_name="residual_db",
        )
        clear_model_cache()
        try:
            a = make_interpolator("idw").interpolate(grid, values)
            b = make_interpolator("learned", model_path=str(path)).interpolate(
                grid, values
            )
            np.testing.assert_array_equal(a, b)
        finally:
            clear_model_cache()

    def test_broken_model_path_degrades_with_counter(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"not a model")
        (tmp_path / "junk.json").write_text("{}")
        clear_model_cache()
        grid = GridSpec(0.0, 0.0, 4.0, 6, 5)
        values = np.full(grid.shape, np.nan)
        values[0, 0] = 3.0
        before = perf.counters()
        try:
            with pytest.warns(RuntimeWarning, match="cannot load model"):
                b = make_interpolator("learned", model_path=str(path)).interpolate(
                    grid, values
                )
        finally:
            clear_model_cache()
        a = make_interpolator("idw").interpolate(grid, values)
        np.testing.assert_array_equal(a, b)
        deltas = perf.counters_since(before)
        assert deltas.get("learn.fallback.model_load") == 1

    def test_trained_model_changes_only_missing_cells(self, tmp_path):
        rng = np.random.default_rng(5)
        X = rng.normal(size=(60, len(REM_FEATURE_NAMES)))
        y = X[:, 0] * 3.0 + 5.0
        model = RidgeModel().fit(X, y)
        path = save_model(
            model,
            tmp_path / "m.npz",
            feature_names=REM_FEATURE_NAMES,
            target_name="residual_db",
        )
        grid = GridSpec(0.0, 0.0, 4.0, 8, 8)
        values = rng.normal(0.0, 10.0, grid.shape)
        missing = rng.random(grid.shape) < 0.7
        values[missing] = np.nan
        clear_model_cache()
        try:
            a = make_interpolator("idw").interpolate(grid, values)
            b = make_interpolator("learned", model_path=str(path)).interpolate(
                grid, values
            )
        finally:
            clear_model_cache()
        np.testing.assert_array_equal(a[~missing], b[~missing])
        assert not np.array_equal(a[missing], b[missing])


# -- deterministic artifacts (satellite c) ------------------------------------


class TestDeterministicArtifacts:
    def test_save_arrays_byte_stable(self, tmp_path):
        arrays = {
            "b": np.arange(12, dtype=np.float64).reshape(3, 4),
            "a": np.float64(2.5),
            "c": np.arange(5, dtype=np.int64),
        }
        p1, p2 = tmp_path / "x1.npz", tmp_path / "x2.npz"
        lio.save_arrays(p1, arrays)
        lio.save_arrays(p2, arrays)
        assert p1.read_bytes() == p2.read_bytes()
        back = lio.load_arrays(p1)
        assert set(back) == set(arrays)
        np.testing.assert_array_equal(back["b"], arrays["b"])
        assert float(back["a"]) == 2.5

    def test_save_arrays_preserves_zero_d(self, tmp_path):
        lio.save_arrays(tmp_path / "s.npz", {"v": np.float64(7.0)})
        assert lio.load_arrays(tmp_path / "s.npz")["v"].shape == ()

    def test_model_serialization_deterministic(self, tmp_path):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(40, 5))
        y = rng.normal(size=40)
        blobs = []
        for i in range(2):
            model = TinyMLP(n_iter=20).fit(X, y)
            p = tmp_path / f"m{i}.npz"
            save_model(model, p, feature_names=list("abcde"), target_name="t")
            blobs.append(p.read_bytes() + p.with_suffix(".json").read_bytes())
        assert blobs[0] == blobs[1]

    def test_fit_is_deterministic(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(50, 4))
        y = rng.normal(size=50)
        m1 = TinyMLP(n_iter=30).fit(X, y)
        m2 = TinyMLP(n_iter=30).fit(X, y)
        np.testing.assert_array_equal(m1.predict(X), m2.predict(X))

    def test_export_train_rerun_identical(self, tmp_path):
        """export -> train over a tiny synthetic table, twice, same bytes."""
        from repro.learn.dataset import Dataset, export_dataset

        rng = np.random.default_rng(1)
        ds = Dataset(
            "rem_residual",
            rng.normal(size=(30, len(REM_FEATURE_NAMES))),
            rng.normal(size=30),
            REM_FEATURE_NAMES,
            "residual_db",
            {"synthetic": True},
        )
        blobs = []
        for i in range(2):
            out = tmp_path / f"run{i}"
            p = export_dataset(ds, out, fingerprint="pinned")
            model = RidgeModel().fit(ds.X, ds.y)
            mp = out / "model.npz"
            save_model(
                model, mp, feature_names=ds.feature_names, target_name="residual_db"
            )
            blobs.append(
                p.read_bytes()
                + p.with_suffix(".json").read_bytes()
                + mp.read_bytes()
                + mp.with_suffix(".json").read_bytes()
            )
        assert blobs[0] == blobs[1]


# -- model zoo ----------------------------------------------------------------


class TestModels:
    def test_ridge_learns_linear(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(200, 3))
        y = X @ np.array([2.0, -1.0, 0.5]) + 4.0
        m = RidgeModel().fit(X, y)
        assert float(np.mean((m.predict(X) - y) ** 2)) < 1e-3

    def test_mlp_beats_mean_on_nonlinear(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(300, 2))
        y = np.tanh(X[:, 0]) * 3.0 + X[:, 1] ** 2
        m = TinyMLP().fit(X, y)
        assert float(np.mean((m.predict(X) - y) ** 2)) < float(y.var())

    def test_zero_model_predicts_zero(self):
        z = zero_model(6)
        assert z.is_zero
        assert not np.any(z.predict(np.ones((7, 6))))

    def test_make_model_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown model kind"):
            make_model("forest")

    def test_roundtrip_predicts_identically(self, tmp_path):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(60, 4))
        y = rng.normal(size=60)
        for model in (RidgeModel().fit(X, y), TinyMLP(n_iter=25).fit(X, y)):
            p = tmp_path / f"{model.kind}.npz"
            save_model(model, p, feature_names=list("wxyz"), target_name="t")
            back = load_model(p)
            np.testing.assert_array_equal(model.predict(X), back.predict(X))
            assert back.feature_names == ("w", "x", "y", "z")

    def test_load_refuses_schema_drift(self, tmp_path):
        m = zero_model(3)
        p = tmp_path / "m.npz"
        save_model(m, p, feature_names=list("abc"), target_name="t")
        sidecar = p.with_suffix(".json")
        meta = lio.load_json(sidecar)
        meta["feature_schema_version"] = 99
        lio.save_json(sidecar, meta)
        with pytest.raises(ModelSchemaError, match="feature schema"):
            load_model(p)


# -- features -----------------------------------------------------------------


class TestFeatures:
    def test_rem_features_shapes_and_order(self):
        grid = GridSpec(0.0, 0.0, 2.0, 6, 4)
        rng = np.random.default_rng(0)
        values = rng.normal(size=grid.shape)
        values[1:, :] = np.nan
        base = np.nan_to_num(values, nan=1.0)
        X, missing = rem_features(grid, values, base)
        assert X.shape == (int(missing.sum()), len(REM_FEATURE_NAMES))
        assert missing.sum() == 3 * 6
        assert np.isfinite(X).all()

    def test_rem_features_requires_measurement(self):
        grid = GridSpec(0.0, 0.0, 2.0, 3, 3)
        values = np.full(grid.shape, np.nan)
        with pytest.raises(ValueError, match="at least one measured"):
            rem_features(grid, values, np.zeros(grid.shape))

    def test_trigger_features_window_shape(self):
        X = trigger_features(np.linspace(1.0, 0.8, TRIGGER_WINDOW))
        assert X.shape == (1, len(TRIGGER_FEATURE_NAMES))
        # r_last, r_mean, r_min, slope<0, drop<0 for a decaying window
        assert X[0, 3] < 0 and X[0, 4] < 0

    def test_trace_to_windows_targets_are_min_ahead(self):
        trace = np.array([1.0] * TRIGGER_WINDOW + [0.5, 0.9, 0.8, 0.7])
        X, y = trace_to_windows(trace)
        assert len(y) == 1
        assert y[0] == 0.5

    def test_trace_too_short_yields_empty(self):
        X, y = trace_to_windows(np.ones(3))
        assert X.shape == (0, len(TRIGGER_FEATURE_NAMES)) and len(y) == 0


# -- learned epoch trigger ----------------------------------------------------


def _run_trigger(ratios, predictor=None, margin=0.1, debounce=1):
    trig = EpochTrigger(
        margin,
        debounce=debounce,
        metric="learned" if predictor is not None else "capacity",
    )
    trig.predictor = predictor
    trig.reset(1.0)
    for i, r in enumerate(ratios):
        if trig.update(float(r), t_s=float(i)):
            return i
    return None


class _ConstantModel:
    """Predicts the same min-ratio-ahead for any window."""

    def __init__(self, value):
        self.value = value

    def predict(self, X):
        return np.full(len(np.atleast_2d(X)), self.value)


class _FlagInjector:
    def __init__(self, active):
        self.active = active


class TestLearnedTrigger:
    def test_no_predictor_matches_reactive_exactly(self):
        rng = np.random.default_rng(0)
        ratios = 1.0 - np.cumsum(rng.uniform(0.0, 0.02, 40))
        assert _run_trigger(ratios) == _run_trigger(ratios, predictor=None)

    def test_predictive_fire_is_never_later(self):
        # Slow decay that stays above the reactive threshold for a
        # while: a pessimistic model fires as soon as the window fills.
        ratios = np.linspace(1.0, 0.905, 20)
        pred = CollapsePredictor(model=_ConstantModel(0.5), threshold=0.9)
        reactive = _run_trigger(ratios)
        learned = _run_trigger(ratios, predictor=pred)
        assert learned == TRIGGER_WINDOW - 1
        assert reactive is None or learned <= reactive

    def test_optimistic_model_never_suppresses_reactive(self):
        ratios = np.linspace(1.0, 0.5, 20)
        pred = CollapsePredictor(model=_ConstantModel(2.0), threshold=0.9)
        assert _run_trigger(ratios, predictor=pred) == _run_trigger(ratios)

    def test_fault_gate_refuses_and_counts(self):
        ratios = np.linspace(1.0, 0.905, 20)
        pred = CollapsePredictor(
            model=_ConstantModel(0.5),
            threshold=0.9,
            faults=_FlagInjector(active=True),
        )
        before = perf.counters()
        assert _run_trigger(ratios, predictor=pred) == _run_trigger(ratios)
        deltas = perf.counters_since(before)
        assert deltas.get("learn.fallback.fault_gate", 0) > 0
        assert "learn.trigger.predictive_fire" not in deltas

    def test_cold_start_refuses_and_counts(self):
        pred = CollapsePredictor(model=_ConstantModel(0.0), threshold=0.9)
        before = perf.counters()
        assert _run_trigger(np.ones(TRIGGER_WINDOW - 1), predictor=pred) is None
        assert perf.counters_since(before).get("learn.fallback.cold_start", 0) > 0

    def test_corrupt_window_refuses_and_counts(self):
        ratios = np.ones(TRIGGER_WINDOW + 4)
        ratios[TRIGGER_WINDOW] = np.inf  # corrupted KPI sample
        # Optimistic model: never fires, so sampling reaches (and must
        # refuse) the windows containing the corrupted ratio.
        pred = CollapsePredictor(model=_ConstantModel(2.0), threshold=0.9)
        before = perf.counters()
        _run_trigger(ratios, predictor=pred)
        assert perf.counters_since(before).get("learn.fallback.untrusted", 0) > 0

    def test_make_predictor_missing_model_refuses(self, tmp_path):
        with pytest.warns(RuntimeWarning, match="cannot load model"):
            pred = make_predictor(str(tmp_path / "absent.npz"), 0.1, None)
        before = perf.counters()
        assert not pred.should_fire(list(np.linspace(1.0, 0.9, TRIGGER_WINDOW)))
        assert perf.counters_since(before).get("learn.fallback.no_model") == 1

    def test_predictive_fire_counts(self):
        ratios = np.linspace(1.0, 0.905, 20)
        pred = CollapsePredictor(model=_ConstantModel(0.5), threshold=0.9)
        before = perf.counters()
        _run_trigger(ratios, predictor=pred)
        assert perf.counters_since(before).get("learn.trigger.predictive_fire") == 1

    def test_config_accepts_learned_metric(self):
        from repro.core.config import SkyRANConfig

        cfg = SkyRANConfig(epoch_trigger_metric="learned")
        assert cfg.learn_trigger_model_path is None
        with pytest.raises(ValueError, match="epoch_trigger_metric"):
            SkyRANConfig(epoch_trigger_metric="psychic")


# -- fingerprint coverage (satellite b) ---------------------------------------


class TestFingerprint:
    def test_code_fingerprint_covers_learn_constants(self, monkeypatch):
        from repro.experiments.artifacts import code_fingerprint
        from repro.learn import constants

        base = code_fingerprint()
        assert base == code_fingerprint()  # stable within a build
        monkeypatch.setattr(constants, "RESIDUAL_CAP_DB", 99.0)
        assert code_fingerprint() != base

    def test_dataset_key_depends_on_fingerprint(self):
        from repro.learn.dataset import dataset_key

        k1 = dataset_key("rem_residual", {"a": 1}, "fp1")
        k2 = dataset_key("rem_residual", {"a": 1}, "fp2")
        k3 = dataset_key("rem_residual", {"a": 2}, "fp1")
        assert len({k1, k2, k3}) == 3

"""Unit tests for the SkyRAN trajectory planner."""

import numpy as np
import pytest

from repro.channel.fspl import fspl_map
from repro.channel.linkbudget import LinkBudget
from repro.geo.grid import GridSpec
from repro.trajectory.information import TrajectoryHistory
from repro.trajectory.skyran import SkyRANPlanner


@pytest.fixture()
def grid200():
    return GridSpec.from_extent(200, 200, 4.0)


def _fspl_maps(grid, ue_positions, altitude=60.0):
    lb = LinkBudget()
    return [
        lb.snr_db(fspl_map(grid, ue, altitude)) for ue in ue_positions
    ]


class TestPlanner:
    def test_plan_respects_budget(self, grid200):
        ues = [np.array([50.0, 50.0, 1.5]), np.array([150.0, 150.0, 1.5])]
        maps = _fspl_maps(grid200, ues)
        planner = SkyRANPlanner(seed=0)
        plan = planner.plan(
            grid200, maps, ues, np.array([100.0, 100.0]), 60.0, budget_m=300.0
        )
        assert plan.trajectory.length_m <= 300.0 + 1e-6

    def test_larger_budget_longer_path(self, grid200):
        ues = [np.array([50.0, 50.0, 1.5]), np.array([150.0, 150.0, 1.5])]
        maps = _fspl_maps(grid200, ues)
        planner = SkyRANPlanner(seed=0)
        short = planner.plan(grid200, maps, ues, np.array([100.0, 100.0]), 60.0, 150.0)
        long = planner.plan(grid200, maps, ues, np.array([100.0, 100.0]), 60.0, 900.0)
        assert long.trajectory.length_m > short.trajectory.length_m

    def test_path_starts_at_uav(self, grid200):
        ues = [np.array([50.0, 50.0, 1.5])]
        maps = _fspl_maps(grid200, ues)
        plan = SkyRANPlanner(seed=1).plan(
            grid200, maps, ues, np.array([20.0, 180.0]), 60.0, 400.0
        )
        np.testing.assert_allclose(plan.trajectory.waypoints[0], [20.0, 180.0])

    def test_bias_towards_high_gradient(self, grid200):
        # A map with all its gradient in the south-west quadrant must
        # produce a plan that spends its waypoints there.
        m = np.zeros(grid200.shape)
        rng = np.random.default_rng(0)
        m[:20, :20] = rng.uniform(0.0, 30.0, (20, 20))
        plan = SkyRANPlanner(seed=0).plan(
            grid200, [m], [np.array([10.0, 10.0, 1.5])], np.array([10.0, 10.0]), 60.0, 600.0
        )
        wp = plan.trajectory.waypoints
        inside = (wp[:, 0] < 100.0) & (wp[:, 1] < 100.0)
        assert inside.mean() > 0.8

    def test_history_changes_choice(self, grid200):
        ues = [np.array([60.0, 60.0, 1.5]), np.array([140.0, 140.0, 1.5])]
        maps = _fspl_maps(grid200, ues)
        planner = SkyRANPlanner(seed=0)
        fresh = planner.plan(grid200, maps, ues, np.array([100.0, 100.0]), 60.0, 500.0)
        history = TrajectoryHistory()
        for ue in ues:
            history.record(ue, fresh.trajectory)
        replay = planner.plan(
            grid200, maps, ues, np.array([100.0, 100.0]), 60.0, 500.0, history
        )
        # A fresh candidate set scored against the flown path cannot
        # claim the i_max gain the first plan had.
        assert replay.info_gain < fresh.info_gain

    def test_diagnostics_populated(self, grid200):
        ues = [np.array([50.0, 50.0, 1.5])]
        maps = _fspl_maps(grid200, ues)
        plan = SkyRANPlanner(seed=0).plan(
            grid200, maps, ues, np.array([100.0, 100.0]), 60.0, 500.0
        )
        assert plan.k >= 1
        assert plan.ratio > 0
        assert len(plan.candidates) >= 1
        ks = [c[0] for c in plan.candidates]
        assert plan.k in ks

    def test_flat_map_falls_back_to_whole_grid(self, grid200):
        maps = [np.full(grid200.shape, 5.0)]
        plan = SkyRANPlanner(seed=0).plan(
            grid200, maps, [np.array([50.0, 50.0, 1.5])], np.array([100.0, 100.0]), 60.0, 300.0
        )
        assert plan.trajectory.length_m > 0

    def test_validates_inputs(self, grid200):
        with pytest.raises(ValueError):
            SkyRANPlanner(k_min=0)
        with pytest.raises(ValueError):
            SkyRANPlanner(k_min=5, k_max=3)
        planner = SkyRANPlanner()
        with pytest.raises(ValueError):
            planner.plan(grid200, [], [], np.zeros(2), 60.0, 100.0)
        with pytest.raises(ValueError):
            planner.plan(
                grid200,
                [np.zeros(grid200.shape)],
                [np.zeros(3)],
                np.zeros(2),
                60.0,
                0.0,
            )

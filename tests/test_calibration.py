"""Tests for cross-epoch offset calibration."""

import numpy as np
import pytest

from repro.localization.calibration import OffsetCalibrator
from repro.localization.joint import solve_joint_multilateration
from repro.localization.ranging import GpsRange


def _obs(ue, radius, n, alt, offset, noise, rng):
    angles = np.linspace(0, 2 * np.pi, n, endpoint=False)
    anchors = np.column_stack(
        [
            ue[0] + radius * np.cos(angles),
            ue[1] + radius * np.sin(angles),
            np.full(n, alt),
        ]
    )
    d = np.linalg.norm(anchors - ue, axis=1)
    r = d + offset + rng.normal(0, noise, n)
    return [GpsRange(a, float(ri), float(i)) for i, (a, ri) in enumerate(zip(anchors, r))]


class TestCalibrator:
    def test_empty_has_no_prior(self):
        assert OffsetCalibrator().prior() is None

    def test_median_of_updates(self):
        cal = OffsetCalibrator()
        for v in (140.0, 130.0, 137.0):
            cal.update(v)
        prior = cal.prior()
        assert prior[0] == pytest.approx(137.0)
        assert prior[1] == pytest.approx(600.0)

    def test_weight_capped(self):
        cal = OffsetCalibrator(weight_per_epoch=400.0, max_weight=1000.0)
        for _ in range(10):
            cal.update(137.0)
        assert cal.prior()[1] == 1000.0

    def test_history_bounded(self):
        cal = OffsetCalibrator(max_history=3)
        for v in (1.0, 2.0, 3.0, 100.0):
            cal.update(v)
        assert cal.n_epochs == 3
        assert cal.prior()[0] == pytest.approx(3.0)

    def test_robust_to_one_bad_epoch(self):
        cal = OffsetCalibrator()
        for v in (137.0, 136.5, 137.5, 190.0):
            cal.update(v)
        assert abs(cal.prior()[0] - 137.0) < 1.0


class TestPriorInSolve:
    def test_prior_pins_degenerate_offset(self, rng):
        # A tiny-aperture flight cannot separate range from offset; a
        # calibrated prior must rescue the solve.
        ue = np.array([40.0, 0.0, 1.5])
        obs = {1: _obs(ue, 6.0, 40, 50.0, 137.0, 1.0, rng)}
        blind = solve_joint_multilateration(obs)
        primed = solve_joint_multilateration(obs, offset_prior=(137.0, 500.0))
        err_blind = np.hypot(blind.per_ue[1].position[0] - 40.0, blind.per_ue[1].position[1])
        err_primed = np.hypot(primed.per_ue[1].position[0] - 40.0, primed.per_ue[1].position[1])
        assert err_primed < err_blind + 1.0
        assert primed.offset_m == pytest.approx(137.0, abs=2.0)

    def test_zero_weight_prior_is_noop(self, rng):
        ue = np.array([20.0, 10.0, 1.5])
        obs = {1: _obs(ue, 80.0, 50, 50.0, 137.0, 0.5, rng)}
        a = solve_joint_multilateration(obs)
        b = solve_joint_multilateration(obs, offset_prior=(500.0, 0.0))
        assert a.offset_m == pytest.approx(b.offset_m, abs=1e-6)

    def test_negative_weight_rejected(self, rng):
        ue = np.array([20.0, 10.0, 1.5])
        obs = {1: _obs(ue, 80.0, 10, 50.0, 137.0, 0.5, rng)}
        with pytest.raises(ValueError):
            solve_joint_multilateration(obs, offset_prior=(137.0, -1.0))

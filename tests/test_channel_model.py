"""Unit tests for the composite channel model and link budget."""

import numpy as np
import pytest

from repro.channel.fspl import fspl_db
from repro.channel.groundtruth import ground_truth_rem, ground_truth_stack
from repro.channel.linkbudget import LinkBudget
from repro.channel.model import ChannelModel


class TestLinkBudget:
    def test_noise_floor_10mhz(self):
        lb = LinkBudget(bandwidth_hz=10e6, noise_figure_db=7.0)
        assert lb.noise_floor_dbm == pytest.approx(-96.975, abs=0.1)

    def test_snr_roundtrip(self):
        lb = LinkBudget()
        for pl in (80.0, 100.0, 120.0):
            assert lb.path_loss_db(lb.snr_db(pl)) == pytest.approx(pl)

    def test_snr_array(self):
        lb = LinkBudget()
        pl = np.array([80.0, 90.0])
        snr = lb.snr_db(pl)
        assert snr.shape == (2,)
        assert snr[0] - snr[1] == pytest.approx(10.0)

    def test_rx_power(self):
        lb = LinkBudget(tx_power_dbm=10.0, tx_gain_dbi=5.0, rx_gain_dbi=0.0)
        assert lb.rx_power_dbm(100.0) == pytest.approx(-85.0)

    def test_rejects_bad_bandwidth(self):
        with pytest.raises(ValueError):
            LinkBudget(bandwidth_hz=0.0)


class TestChannelModel:
    def test_los_path_loss_is_fspl(self, flat_channel):
        uav = np.array([10.0, 10.0, 50.0])
        ue = np.array([60.0, 60.0, 1.5])
        d = np.linalg.norm(uav - ue)
        assert flat_channel.path_loss_db(uav, ue) == pytest.approx(
            fspl_db(d, flat_channel.freq_hz)
        )

    def test_nlos_adds_excess(self, box_channel):
        ue = np.array([90.0, 50.0, 1.5])
        clear = box_channel.path_loss_db(np.array([80.0, 50.0, 50.0]), ue)
        blocked = box_channel.path_loss_db(np.array([10.0, 50.0, 5.0]), ue)
        assert blocked > clear + box_channel.diffraction_db - 3.0

    def test_excess_capped(self, box_terrain):
        ch = ChannelModel(
            box_terrain,
            shadowing_sigma_db=0.0,
            common_sigma_db=0.0,
            excess_cap_db=20.0,
        )
        ue = np.array([95.0, 50.0, 1.5])
        uav = np.array([5.0, 50.0, 3.0])  # grazes the whole building
        d = np.linalg.norm(uav - ue)
        pl = ch.path_loss_db(uav, ue)
        assert pl <= fspl_db(d, ch.freq_hz) + 20.0 + 1e-6

    def test_shadowing_reproducible(self, campus_terrain):
        ch = ChannelModel(campus_terrain, seed=3)
        uav = np.array([100.0, 100.0, 60.0])
        ue = np.array([40.0, 40.0, 1.5])
        assert ch.path_loss_db(uav, ue) == pytest.approx(ch.path_loss_db(uav, ue))

    def test_snr_map_shape_and_peak(self, flat_channel):
        ue = np.array([50.0, 50.0, 1.5])
        m = flat_channel.snr_map(ue, altitude=40.0)
        assert m.shape == flat_channel.terrain.grid.shape
        iy, ix = np.unravel_index(np.argmax(m), m.shape)
        x, y = flat_channel.terrain.grid.center_of(ix, iy)
        assert abs(x - 50.0) <= 2.0 and abs(y - 50.0) <= 2.0

    def test_sample_snr_scatter_around_mean(self, flat_channel, rng):
        ue = np.array([50.0, 50.0, 1.5])
        uav = np.tile(np.array([30.0, 30.0, 50.0]), (4000, 1))
        mean = float(flat_channel.snr_db(np.array([30.0, 30.0, 50.0]), ue))
        samples = flat_channel.sample_snr_db(uav, ue, rng)
        # Rician K=12 LOS fading: small spread around the mean.
        assert abs(np.median(samples) - mean) < 1.0
        assert 0.3 < samples.std() < 4.0

    def test_is_los_vector(self, box_channel):
        ue = np.array([90.0, 50.0, 1.5])
        uavs = np.array([[80.0, 50.0, 50.0], [10.0, 50.0, 5.0]])
        los = box_channel.is_los(uavs, ue)
        assert los[0] and not los[1]


class TestGroundTruth:
    def test_stack_shape(self, flat_channel):
        ues = [np.array([20.0, 20.0, 1.5]), np.array([80.0, 80.0, 1.5])]
        stack = ground_truth_stack(flat_channel, ues, altitude=50.0)
        assert stack.shape == (2,) + flat_channel.terrain.grid.shape

    def test_single_matches_stack(self, flat_channel):
        ue = np.array([20.0, 20.0, 1.5])
        single = ground_truth_rem(flat_channel, ue, 50.0)
        stack = ground_truth_stack(flat_channel, [ue], 50.0)
        np.testing.assert_allclose(single, stack[0])

    def test_empty_stack(self, flat_channel):
        stack = ground_truth_stack(flat_channel, [], 50.0)
        assert stack.shape[0] == 0

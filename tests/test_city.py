"""City-scale kernels: sharded state bit-identical to the global kernels.

The load-bearing claim of the city layer is decomposition exactness:
running the population shard-by-shard (MAC, OLLA) or streaming the map
oracle by REM cell must reproduce the unsharded reference **bit for
bit**, for any shard size.  These tests pin that, plus the struct-of-
array population contracts (deterministic sampling, key dedup, slab
eligibility) the decomposition rests on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.city import (
    DEFAULT_SHARD_UES,
    SHARD_ENV,
    CityScenario,
    ShardRoundRobin,
    UEPopulation,
    run_city_mac,
    shard_size,
)
from repro.city.mac import city_schedulable
from repro.lte.linkadapt import OLLABank, OuterLoopLinkAdaptation
from repro.terrain.generators import make_campus
from repro.traffic import QueueBank, make_scheduler, run_tti_batch

pytestmark = pytest.mark.city

N_UES = 233  # prime-ish, so shard widths 7 and 97 leave ragged tails


@pytest.fixture(scope="module")
def terrain():
    return make_campus(cell_size=4.0)


@pytest.fixture()
def population(terrain):
    return UEPopulation.sample(terrain, N_UES, seed=5)


@pytest.fixture()
def rates(population):
    """Deliverable bytes/PRB with a few dead links sprinkled in."""
    rng = np.random.default_rng(11)
    r = rng.uniform(200.0, 2000.0, size=population.n_ues)
    r[rng.random(population.n_ues) < 0.05] = 0.0
    return r


# -- shard sizing ----------------------------------------------------------------


def test_shard_size_sources(monkeypatch):
    monkeypatch.delenv(SHARD_ENV, raising=False)
    assert shard_size() == DEFAULT_SHARD_UES
    assert shard_size(7) == 7
    monkeypatch.setenv(SHARD_ENV, "512")
    assert shard_size() == 512
    assert shard_size(3) == 3  # explicit override beats the env
    monkeypatch.setenv(SHARD_ENV, "not-a-number")
    assert shard_size() == DEFAULT_SHARD_UES
    with pytest.raises(ValueError, match="shard size"):
        shard_size(0)


# -- population ------------------------------------------------------------------


def test_sample_is_deterministic(terrain):
    a = UEPopulation.sample(terrain, 50, seed=3)
    b = UEPopulation.sample(terrain, 50, seed=3)
    assert np.array_equal(a.xyz, b.xyz)
    assert np.array_equal(a.full_buffer, b.full_buffer)
    assert np.array_equal(a.rem_key, b.rem_key)
    c = UEPopulation.sample(terrain, 50, seed=4)
    assert not np.array_equal(a.xyz, c.xyz)


def test_sample_state_invariants(terrain, population):
    pop = population
    assert pop.n_ues == N_UES
    assert np.array_equal(pop.ue_ids, np.arange(N_UES))
    assert np.array_equal(pop.spawn_keys, pop.ue_ids)
    # Full-buffer rows: infinite backlog, no CBR offer; CBR rows the dual.
    assert np.all(np.isinf(pop.backlog_bytes[pop.full_buffer]))
    assert np.all(pop.cbr_rate_mbps[pop.full_buffer] == 0.0)
    assert np.all(pop.backlog_bytes[~pop.full_buffer] == 0.0)
    assert np.all(pop.cbr_rate_mbps[~pop.full_buffer] > 0.0)
    # Positions sit at ground height plus the standard antenna height.
    want = terrain.heights_at_xy(population.xyz[:, 0], population.xyz[:, 1]) + 1.5
    assert np.array_equal(population.xyz[:, 2], want)


def test_shard_iteration_covers_population(population):
    slices = list(population.iter_shards(7))
    assert slices[0].start == 0
    assert slices[-1].stop == population.n_ues
    covered = np.concatenate([np.arange(s.start, s.stop) for s in slices])
    assert np.array_equal(covered, np.arange(population.n_ues))
    assert all(s.stop - s.start <= 7 for s in slices)


def test_unique_rem_cells_dedup(population):
    keys, reps, inverse = population.unique_rem_cells()
    assert np.array_equal(keys, np.unique(population.rem_key))
    assert reps.shape == (len(keys), 3)
    # inverse maps every UE back to its key.
    assert np.array_equal(keys[inverse], population.rem_key)
    # Representatives saturate: more UEs, not (proportionally) more cells.
    assert len(keys) <= population.n_ues


# -- sharded MAC vs the global kernel -------------------------------------------


def _unsharded_reference(pop, rates, n_tti, n_prb=50):
    queues = QueueBank(
        tuple(int(u) for u in pop.ue_ids),
        limit_bytes=0.0,
        full_buffer=pop.full_buffer,
    )
    carry = ~pop.full_buffer
    queues.backlog_bytes[carry] = pop.backlog_bytes[carry]
    from repro.traffic.generators import BYTES_PER_TTI_PER_MBPS

    offered = np.broadcast_to(
        (pop.cbr_rate_mbps * BYTES_PER_TTI_PER_MBPS)[:, None], (pop.n_ues, n_tti)
    )
    return run_tti_batch(
        bytes_per_prb=rates,
        offered_bytes=offered,
        scheduler=make_scheduler("round_robin"),
        queues=queues,
        n_prb=n_prb,
    )


@pytest.mark.parametrize("shard_ues", [1, 7, 97, N_UES])
def test_sharded_mac_bit_identical_to_global(terrain, rates, shard_ues):
    n_tti = 50
    pop_ref = UEPopulation.sample(terrain, N_UES, seed=5)
    pop_shard = UEPopulation.sample(terrain, N_UES, seed=5)

    ref = _unsharded_reference(pop_ref, rates, n_tti)
    city = run_city_mac(pop_shard, rates, n_tti, shard_ues=shard_ues)

    assert np.array_equal(city.served_bytes, ref.served_bytes.sum(axis=1))
    assert np.array_equal(city.offered_bytes, ref.offered_bytes.sum(axis=1))
    assert np.array_equal(city.dropped_bytes, ref.dropped_bytes.sum(axis=1))
    assert np.array_equal(city.grants, ref.grants.sum(axis=1))
    assert np.array_equal(city.backlog_end_bytes, ref.backlog_end_bytes)
    # The population carries the post-epoch backlogs.
    assert np.array_equal(pop_shard.backlog_bytes, ref.backlog_end_bytes)


def test_sharded_mac_consecutive_epochs(terrain, rates):
    """Backlog carry-over across epochs matches one long unsharded run."""
    pop_ref = UEPopulation.sample(terrain, N_UES, seed=5)
    pop_shard = UEPopulation.sample(terrain, N_UES, seed=5)
    ref = _unsharded_reference(pop_ref, rates, 60)

    a = run_city_mac(pop_shard, rates, 30, shard_ues=13, tti0=0)
    b = run_city_mac(pop_shard, rates, 30, shard_ues=13, tti0=30)
    # Sum the reference per half-epoch: one 60-TTI np.sum associates
    # the floats differently than two 30-TTI sums added together.
    assert np.array_equal(a.served_bytes, ref.served_bytes[:, :30].sum(axis=1))
    assert np.array_equal(b.served_bytes, ref.served_bytes[:, 30:].sum(axis=1))
    assert np.array_equal(a.grants + b.grants, ref.grants.sum(axis=1))
    assert np.array_equal(b.backlog_end_bytes, ref.backlog_end_bytes)


def test_shard_round_robin_matches_global_scheduler(rates):
    """ShardRoundRobin rows == global RoundRobinScheduler rows, per TTI."""
    rng = np.random.default_rng(2)
    schedulable = rng.random(N_UES) < 0.8
    ranks = np.where(schedulable, np.cumsum(schedulable) - 1, -1).astype(np.int64)
    n_active = int(schedulable.sum())
    global_sched = make_scheduler("round_robin")
    global_sched.reset(N_UES)
    for tti in (0, 1, 5, 17):
        want = global_sched.grants(schedulable, rates, 50, tti)
        sl = slice(40, 103)
        shard = ShardRoundRobin(ranks=ranks[sl], n_active_global=n_active)
        got = shard.grants(schedulable[sl], rates[sl], 50, tti)
        assert np.array_equal(got, np.asarray(want)[sl])
        slab = shard.grants_slab(schedulable[sl], rates[sl], 50, tti, 1)
        assert np.array_equal(slab[:, 0], got)


def test_shard_round_robin_rejects_diverged_set():
    shard = ShardRoundRobin(ranks=np.array([0, -1, 1]), n_active_global=2)
    with pytest.raises(ValueError, match="diverged"):
        shard.grants(np.array([True, True, True]), np.ones(3), 50, 0)


def test_city_schedulable_rejects_draining_backlog(population, rates):
    idx = int(np.flatnonzero(~population.full_buffer)[0])
    population.backlog_bytes[idx] = 5000.0
    population.cbr_rate_mbps[idx] = 0.0  # backlog drains, nothing arrives
    with pytest.raises(ValueError, match="not slab-eligible"):
        city_schedulable(population, rates)


def test_city_schedulable_classes(population, rates):
    sched = city_schedulable(population, rates)
    rate_ok = rates > 0.0
    assert np.array_equal(
        sched, rate_ok & (population.full_buffer | (population.cbr_rate_mbps > 0.0))
    )


# -- vectorized OLLA bank vs the scalar controller ------------------------------


def test_olla_bank_bit_identical_to_scalar():
    rng = np.random.default_rng(4)
    n, rounds = 53, 40
    bank = OLLABank(n_ues=n)
    scalar = OuterLoopLinkAdaptation()
    acks = rng.random((rounds, n)) < 0.85
    for r in range(rounds):
        bank.report_batch(acks[r])
        for u in range(n):
            scalar.report(u, bool(acks[r, u]))
    scalar_offsets = np.array([scalar.offset_db(u) for u in range(n)])
    assert np.array_equal(bank.offsets_db, scalar_offsets)
    scalar_bler = np.array([scalar.realized_bler(u) for u in range(n)])
    assert np.array_equal(bank.realized_bler(), scalar_bler)


def test_olla_bank_sel_updates_are_shard_order_invariant():
    """Partial updates fold identically regardless of shard partition."""
    rng = np.random.default_rng(6)
    n, rounds = 64, 25
    whole = OLLABank(n_ues=n)
    sharded = OLLABank(n_ues=n)
    for _ in range(rounds):
        sel = np.flatnonzero(rng.random(n) < 0.7)
        ack = rng.random(len(sel)) < 0.8
        whole.report_batch(ack, sel=sel)
        # Same outcomes, folded shard by shard (and back shard first).
        mid = len(sel) // 2
        sharded.report_batch(ack[mid:], sel=sel[mid:])
        sharded.report_batch(ack[:mid], sel=sel[:mid])
    assert np.array_equal(whole.offsets_db, sharded.offsets_db)
    assert np.array_equal(whole.acks, sharded.acks)
    assert np.array_equal(whole.nacks, sharded.nacks)


def test_olla_bank_clamps_and_tallies():
    bank = OLLABank(n_ues=2, step_db=4.0, min_offset_db=-6.0, max_offset_db=6.0)
    for _ in range(5):
        bank.report_batch(np.array([False, True]))
    assert bank.offsets_db[0] == -6.0  # clamped at the floor
    assert bank.nacks[0] == 5 and bank.acks[1] == 5
    assert np.isnan(OLLABank(n_ues=1).realized_bler()[0])


# -- the scenario end to end ----------------------------------------------------


@pytest.fixture(scope="module")
def city():
    return CityScenario.create(
        terrain_name="campus", cell_size_m=8.0, n_ues=120, seed=1, eval_cell_m=32.0
    )


def test_city_epoch_runs_and_is_shard_invariant(city):
    out_a = city.run_epoch(n_tti=20, shard_ues=7)
    # Reset mutable state so the second run sees identical inputs.
    fresh = CityScenario.create(
        terrain_name="campus", cell_size_m=8.0, n_ues=120, seed=1, eval_cell_m=32.0
    )
    out_b = fresh.run_epoch(n_tti=20, shard_ues=120)
    assert out_a["placement"].cell == out_b["placement"].cell
    assert out_a["min_snr_db"] == out_b["min_snr_db"]
    assert out_a["mean_snr_db"] == out_b["mean_snr_db"]
    assert out_a["aggregate_served_mbps"] == out_b["aggregate_served_mbps"]
    assert np.array_equal(
        out_a["mac"].served_bytes, out_b["mac"].served_bytes
    )


def test_city_placement_matches_materialized_max_min(city):
    """Streamed placement over REM reps == materialized max–min placement."""
    from repro.core.placement import max_min_placement

    _keys, reps, _inv = city.population.unique_rem_cells()
    placed = city.place(tile_rows=5)
    stack = city.channel.snr_maps(
        list(reps), city.altitude_m, city.eval_grid, use_cache=False
    )
    reference = max_min_placement(city.eval_grid, list(stack), city.altitude_m)
    assert placed.cell == reference.cell
    assert placed.min_snr_db == reference.min_snr_db


def test_serving_snr_matches_per_ue_channel(city):
    placed = city.place()
    snr = city.serving_snr_db(placed.position.as_array())
    assert snr.shape == (city.population.n_ues,)
    # Spot-check a few UEs against the scalar path.
    for i in (0, 57, 119):
        want = city.channel.snr_db(
            placed.position.as_array(), city.population.xyz[i]
        )
        assert snr[i] == want


def test_population_validation(terrain):
    with pytest.raises(ValueError, match="n must be >= 1"):
        UEPopulation.sample(terrain, 0)
    with pytest.raises(ValueError, match="full_buffer_fraction"):
        UEPopulation.sample(terrain, 5, full_buffer_fraction=1.5)
    with pytest.raises(ValueError, match="rem_cell_m"):
        UEPopulation.sample(terrain, 5, rem_cell_m=0.0)


# -- full controller epochs over the city population ------------------------------


def test_controller_epoch_streams_and_serves(city):
    out = city.run_controller_epoch(budget_m=120.0, n_tti=10, loc_sample=2)
    assert out["streamed"] is True
    keys, _reps, _inv = city.population.unique_rem_cells()
    # One registered representative per occupied REM key cell; a
    # *localized* rep's estimate can stray into a neighbouring cell
    # (possibly colliding), so the group count is bounded, not pinned.
    assert len(keys) - 2 <= out["n_rem_groups"] <= len(keys)
    assert np.isfinite(out["min_snr_db"])
    assert np.isfinite(out["altitude_m"])
    assert out["aggregate_served_mbps"] >= 0.0
    assert out["mac"].served_bytes.shape == (city.population.n_ues,)


def test_controller_epoch_known_positions_cover_non_sampled_reps(city):
    ctrl = city._controller_for(per_ue=False, loc_sample=2, seed=0)
    keys, _reps, _inv = city.population.unique_rem_cells()
    n_reps = len(keys)
    assert len(ctrl.enodeb.connected_ues()) == n_reps
    assert len(ctrl._ues_to_localize()) == 2
    assert len(ctrl.known_positions) == n_reps - 2


def test_controller_epoch_per_ue_reference_is_materialized():
    small = CityScenario.create(
        terrain_name="campus", cell_size_m=8.0, n_ues=12, seed=1, eval_cell_m=32.0
    )
    out = small.run_controller_epoch(
        budget_m=80.0, n_tti=5, loc_sample=2, per_ue=True
    )
    assert out["streamed"] is False
    assert out["n_rem_groups"] is None
    assert len(out["epoch"].rem_maps) == 12
    assert np.isfinite(out["min_snr_db"])

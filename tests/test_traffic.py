"""Traffic subsystem tests: generators, queues, schedulers, integration.

Marked ``traffic`` (tier-1; select just these with ``-m traffic``).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SkyRANConfig
from repro.core.epoch import EpochTrigger
from repro.faults import FaultInjector, FaultPlan
from repro.lte.enodeb import ENodeB
from repro.lte.linkadapt import OuterLoopLinkAdaptation
from repro.lte.throughput import _THRESHOLDS, throughput_mbps
from repro.lte.ue import UE
from repro.sim.metrics import jain_fairness
from repro.traffic import (
    MACSimulation,
    QueueBank,
    available_schedulers,
    available_traffic_models,
    make_scheduler,
    make_traffic_model,
    run_tti_batch,
)
from repro.traffic.generators import BYTES_PER_TTI_PER_MBPS
from repro.traffic.simulate import rate_per_prb_bytes

pytestmark = pytest.mark.traffic

RESULT_FIELDS = ("grants", "served_bytes", "dropped_bytes", "backlog_end_bytes")


# -- registries -----------------------------------------------------------------


class TestRegistries:
    def test_traffic_models_registered(self):
        assert set(available_traffic_models()) >= {
            "full_buffer",
            "cbr",
            "poisson",
            "onoff_video",
        }

    def test_schedulers_registered(self):
        assert set(available_schedulers()) == {
            "round_robin",
            "proportional_fair",
            "max_min",
        }

    def test_unknown_names_rejected(self):
        with pytest.raises(ValueError, match="unknown traffic model"):
            make_traffic_model("nope")
        with pytest.raises(ValueError, match="unknown scheduler"):
            make_scheduler("nope")

    def test_kwargs_filtered_like_interpolator_registry(self):
        # One config can carry the union of every model's knobs.
        cbr = make_traffic_model("cbr", rate_mbps=3.0, packet_bytes=100.0)
        assert cbr.rate_mbps == 3.0
        rr = make_scheduler("round_robin", time_constant_tti=7)
        assert rr.name == "round_robin"
        pf = make_scheduler("proportional_fair", time_constant_tti=7)
        assert pf.time_constant_tti == 7


# -- generators -----------------------------------------------------------------


class TestGenerators:
    def test_deterministic_per_seed_and_ue(self):
        model = make_traffic_model("poisson", rate_mbps=3.0)
        a = model.source(4, seed=1).offered_bytes(500)
        b = model.source(4, seed=1).offered_bytes(500)
        c = model.source(5, seed=1).offered_bytes(500)
        d = model.source(4, seed=2).offered_bytes(500)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)
        assert not np.array_equal(a, d)

    @pytest.mark.parametrize("name", ["poisson", "onoff_video"])
    def test_chunked_draws_continue_the_stream(self, name):
        model = make_traffic_model(name)
        chunked = model.source(2, seed=3)
        parts = np.concatenate([chunked.offered_bytes(137), chunked.offered_bytes(263)])
        whole = model.source(2, seed=3).offered_bytes(400)
        assert np.array_equal(parts, whole)

    def test_deterministic_sources_draw_no_entropy(self):
        # full_buffer and cbr must not even own a generator.
        for name in ("full_buffer", "cbr"):
            src = make_traffic_model(name).source(1, seed=0)
            assert not hasattr(src, "_rng")
        cbr = make_traffic_model("cbr", rate_mbps=2.0).source(1)
        assert np.all(cbr.offered_bytes(10) == 2.0 * BYTES_PER_TTI_PER_MBPS)
        fb = make_traffic_model("full_buffer").source(1)
        assert fb.full_buffer
        assert np.all(fb.offered_bytes(10) == 0.0)

    def test_poisson_mean_matches_rate(self):
        src = make_traffic_model("poisson", rate_mbps=4.0).source(1, seed=0)
        bytes_per_tti = src.offered_bytes(20000).mean()
        assert bytes_per_tti == pytest.approx(4.0 * BYTES_PER_TTI_PER_MBPS, rel=0.05)

    def test_onoff_duty_cycle(self):
        src = make_traffic_model(
            "onoff_video", rate_mbps=4.0, mean_on_s=2.0, mean_off_s=2.0
        ).source(1, seed=0)
        offered = src.offered_bytes(60000)
        duty = (offered > 0).mean()
        assert 0.3 < duty < 0.7

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            make_traffic_model("cbr", rate_mbps=0.0)
        with pytest.raises(ValueError):
            make_traffic_model("poisson", rate_mbps=-1.0)
        with pytest.raises(ValueError):
            make_traffic_model("onoff_video", mean_on_s=0.0)


# -- queues ---------------------------------------------------------------------


class TestQueueBank:
    def test_requires_sorted_unique_ids(self):
        with pytest.raises(ValueError):
            QueueBank((3, 1))
        with pytest.raises(ValueError):
            QueueBank((1, 1))
        with pytest.raises(ValueError):
            QueueBank(())

    def test_tail_drop_admission(self):
        q = QueueBank((1, 2), limit_bytes=100.0)
        q.backlog_bytes[:] = [90.0, 0.0]
        accepted, dropped = q.admit(np.array([50.0, 50.0]))
        assert np.array_equal(accepted, [10.0, 50.0])
        assert np.array_equal(dropped, [40.0, 0.0])
        # Pure function: admit() must not mutate the backlog.
        assert np.array_equal(q.backlog_bytes, [90.0, 0.0])

    def test_full_buffer_seeds_infinite_backlog(self):
        q = QueueBank((1,), full_buffer=True)
        assert np.isinf(q.backlog_bytes[0])
        assert q.total_backlog_bytes() == np.inf


# -- kernel vs reference --------------------------------------------------------


def _batch(scheduler_name, *, limit=0.0, full_buffer=False, n_tti=300, reference=False):
    ue_ids = (1, 2, 3, 4, 5)
    rates = rate_per_prb_bytes(np.array([3.0, 8.0, 14.0, 20.0, -10.0]))
    model = make_traffic_model("poisson", rate_mbps=5.0)
    if full_buffer:
        offered = np.zeros((len(ue_ids), n_tti))
    else:
        offered = np.stack(
            [model.source(u, seed=9).offered_bytes(n_tti) for u in ue_ids]
        )
    queues = QueueBank(ue_ids, limit_bytes=limit, full_buffer=full_buffer)
    result = run_tti_batch(
        bytes_per_prb=rates,
        offered_bytes=offered,
        scheduler=make_scheduler(scheduler_name),
        queues=queues,
        reference=reference,
    )
    return result, queues


class TestKernelEquivalence:
    @pytest.mark.parametrize("name", ["round_robin", "proportional_fair", "max_min"])
    @pytest.mark.parametrize("limit", [0.0, 4000.0])
    def test_kernel_bit_identical_to_reference(self, name, limit):
        kernel, qk = _batch(name, limit=limit)
        reference, qr = _batch(name, limit=limit, reference=True)
        for f in RESULT_FIELDS:
            assert np.array_equal(getattr(kernel, f), getattr(reference, f)), f
        assert np.array_equal(qk.backlog_bytes, qr.backlog_bytes)
        assert np.array_equal(qk.dropped_bytes, qr.dropped_bytes)

    @pytest.mark.parametrize("name", ["round_robin", "max_min"])
    def test_full_buffer_slab_bit_identical(self, name):
        kernel, _ = _batch(name, full_buffer=True)
        reference, _ = _batch(name, full_buffer=True, reference=True)
        for f in RESULT_FIELDS:
            assert np.array_equal(getattr(kernel, f), getattr(reference, f)), f

    def test_zero_rate_ue_never_granted_or_served(self):
        kernel, _ = _batch("round_robin")
        assert kernel.grants[-1].sum() == 0  # UE 5 is at -10 dB
        assert kernel.served_bytes[-1].sum() == 0.0

    def test_finite_buffer_drops_are_counted(self):
        kernel, queues = _batch("round_robin", limit=2000.0)
        assert kernel.total_dropped_bytes() > 0.0
        assert np.all(queues.backlog_bytes <= 2000.0 + 1e-9)
        # Conservation: arrivals = served + dropped + final backlog.
        total_in = kernel.offered_bytes.sum()
        total_out = (
            kernel.served_bytes.sum()
            + kernel.dropped_bytes.sum()
            + queues.backlog_bytes.sum()
        )
        assert total_in == pytest.approx(total_out)

    def test_chunked_run_matches_single_batch(self):
        snr = {1: 6.0, 2: 12.0, 3: 18.0}

        def run(chunks):
            sim = MACSimulation(
                [1, 2, 3],
                traffic_model="poisson",
                scheduler="proportional_fair",
                seed=11,
                traffic_params={"rate_mbps": 6.0},
            )
            return [sim.run(snr, n) for n in chunks]

        whole = run([600])[0]
        parts = run([250, 350])
        assert np.array_equal(
            whole.served_bytes, np.concatenate([p.served_bytes for p in parts], axis=1)
        )
        assert np.array_equal(whole.backlog_end_bytes, parts[-1].backlog_end_bytes)


# -- scheduler properties (hypothesis) ------------------------------------------


snr_arrays = st.lists(
    st.floats(min_value=-20.0, max_value=30.0, allow_nan=False), min_size=1, max_size=8
)


class TestSchedulerProperties:
    @given(snr_arrays, st.integers(min_value=0, max_value=200))
    @settings(max_examples=60, deadline=None)
    def test_prb_conservation(self, snrs, tti):
        rates = rate_per_prb_bytes(np.array(snrs))
        schedulable = rates > 0.0
        for name in available_schedulers():
            grants = make_scheduler(name).grants(schedulable, rates, 50, tti)
            if schedulable.any():
                assert grants.sum() == 50
            else:
                assert grants.sum() == 0
            assert np.all(grants[~schedulable] == 0)
            assert np.all(grants >= 0)

    @given(
        st.floats(min_value=-5.0, max_value=25.0, allow_nan=False),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=60, deadline=None)
    def test_pf_equals_rr_under_symmetry(self, snr, n_ues, tti0):
        # Identical rates, backlogs AND served-rate averages: PF's
        # greedy (with the within-TTI virtual update) must reproduce
        # RR's rotated split exactly, at every rotation phase.  The
        # symmetry is per-TTI: one EWMA update after an uneven
        # remainder split legitimately breaks it.
        rates = rate_per_prb_bytes(np.full(n_ues, snr))
        schedulable = rates > 0.0
        rr = make_scheduler("round_robin")
        for tti in range(tti0, tti0 + max(n_ues, 2)):
            g_pf = make_scheduler("proportional_fair").grants(
                schedulable, rates, 50, tti
            )
            g_rr = rr.grants(schedulable, rates, 50, tti)
            assert np.array_equal(g_pf, g_rr), (tti, rates)

    @given(
        st.floats(min_value=-10.0, max_value=35.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    )
    @settings(max_examples=80, deadline=None)
    def test_throughput_monotone_in_snr(self, snr, delta):
        assert throughput_mbps(snr + delta) >= throughput_mbps(snr)

    def test_cqi_thresholds_strictly_increasing(self):
        assert np.all(np.diff(_THRESHOLDS) > 0)

    def test_max_min_favors_weak_ue(self):
        rates = rate_per_prb_bytes(np.array([2.0, 22.0]))
        grants = make_scheduler("max_min").grants(rates > 0, rates, 50, 0)
        assert grants[0] > grants[1]
        # Granted capacity is as equal as integer PRBs allow.
        cap = grants * rates
        assert abs(cap[0] - cap[1]) <= rates.max()


# -- eNodeB scheduler rotation and OLLA forget ----------------------------------


class TestENodeBScheduling:
    def _enodeb(self, n_ues):
        enb = ENodeB()
        for i in range(1, n_ues + 1):
            enb.register_ue(UE(ue_id=i))
        return enb

    def test_legacy_call_equals_tti_zero(self):
        enb = self._enodeb(3)
        snrs = {1: 10.0, 2: 12.0, 3: 14.0}
        legacy = enb.schedule(snrs)
        assert legacy.prb_share == enb.schedule(snrs, tti=0).prb_share
        # The old bias: remainder PRBs land on the lowest ids.
        assert legacy.prb_share == {1: 17, 2: 17, 3: 16}

    def test_rotation_is_long_run_fair(self):
        enb = self._enodeb(3)
        snrs = {1: 10.0, 2: 12.0, 3: 14.0}
        totals = {1: 0, 2: 0, 3: 0}
        for tti in range(3 * 40):
            for ue_id, prb in enb.schedule(snrs, tti=tti).prb_share.items():
                totals[ue_id] += prb
        assert len(set(totals.values())) == 1

    def test_deregister_forgets_olla_state(self):
        enb = ENodeB(olla=OuterLoopLinkAdaptation())
        enb.register_ue(UE(ue_id=7))
        for _ in range(5):
            enb.olla.report(7, ack=False)
        assert enb.olla.offset_db(7) < 0.0
        enb.deregister_ue(7)
        assert enb.olla.offset_db(7) == 0.0
        assert enb.olla.realized_bler(7) is None


# -- config / trigger validation ------------------------------------------------


class TestConfigValidation:
    def test_unknown_traffic_model_rejected(self):
        with pytest.raises(ValueError, match="unknown traffic model"):
            SkyRANConfig(traffic_model="nope")

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError, match="scheduler"):
            SkyRANConfig(scheduler="nope")

    def test_bad_trigger_metric_rejected(self):
        with pytest.raises(ValueError):
            SkyRANConfig(epoch_trigger_metric="bogus")
        with pytest.raises(ValueError):
            EpochTrigger(metric="bogus")

    def test_positive_knobs_enforced(self):
        with pytest.raises(ValueError):
            SkyRANConfig(tti_batch=0)
        with pytest.raises(ValueError):
            SkyRANConfig(traffic_rate_mbps=0.0)
        with pytest.raises(ValueError):
            SkyRANConfig(traffic_buffer_bytes=-1.0)
        with pytest.raises(ValueError):
            SkyRANConfig(pf_time_constant_tti=0)


# -- traffic-burst fault channel ------------------------------------------------


class TestTrafficBurstFault:
    def test_bursts_amplify_offered_load(self):
        plan = FaultPlan(seed=3, traffic_burst_rate=0.5, traffic_burst_factor=4.0)
        inj = FaultInjector(plan)
        offered = np.full((4, 200), 100.0)
        burst = inj.traffic_bursts(offered)
        assert burst.shape == offered.shape
        assert set(np.unique(burst)) == {100.0, 400.0}
        frac = (burst == 400.0).mean()
        assert 0.3 < frac < 0.7

    def test_zero_rate_is_inert_and_draws_no_rng(self):
        inj = FaultInjector(FaultPlan(seed=3))
        state_before = inj._rng["traffic"].bit_generator.state
        offered = np.full((2, 50), 10.0)
        out = inj.traffic_bursts(offered)
        assert np.array_equal(out, offered)
        assert inj._rng["traffic"].bit_generator.state == state_before

    def test_deterministic_per_plan_seed(self):
        plan = FaultPlan(seed=5, traffic_burst_rate=0.2)
        offered = np.full((3, 100), 50.0)
        a = FaultInjector(plan).traffic_bursts(offered)
        b = FaultInjector(plan).traffic_bursts(offered)
        assert np.array_equal(a, b)


# -- metrics --------------------------------------------------------------------


class TestJainFairness:
    def test_equal_rates_are_perfectly_fair(self):
        assert jain_fairness(np.array([3.0, 3.0, 3.0])) == pytest.approx(1.0)

    def test_single_active_ue_is_minimal(self):
        assert jain_fairness(np.array([5.0, 0.0, 0.0, 0.0])) == pytest.approx(0.25)

    def test_degenerate_inputs(self):
        assert jain_fairness(np.array([])) == 1.0
        assert jain_fairness(np.zeros(4)) == 1.0


# -- end-to-end runner integration ----------------------------------------------


class TestRunnerIntegration:
    def _run(self, **cfg_overrides):
        from repro.sim.runner import run_simulation
        from repro.sim.scenario import Scenario

        scenario = Scenario.create("campus", n_ues=3, cell_size=8.0, seed=3)
        cfg = SkyRANConfig(
            rem_cell_size_m=16.0, measurement_budget_m=250.0, **cfg_overrides
        )
        return run_simulation(
            scenario,
            cfg,
            scheme="skyran",
            n_epochs=1,
            budget_per_epoch_m=250.0,
            seed=0,
            altitude=60.0,
        )

    def test_default_config_has_no_traffic_fields(self):
        rec = self._run().records[-1]
        assert rec.offered_mbps is None
        assert rec.served_mbps is None
        assert rec.backlog_bytes is None
        assert rec.dropped_bytes is None

    def test_traffic_config_populates_records(self):
        rec = self._run(
            traffic_model="poisson",
            scheduler="proportional_fair",
            traffic_rate_mbps=3.0,
            epoch_trigger_metric="served",
            tti_batch=300,
        ).records[-1]
        assert rec.offered_mbps is not None and rec.offered_mbps > 0.0
        assert rec.served_mbps is not None
        assert rec.served_mbps <= rec.offered_mbps + 1e-9
        assert rec.backlog_bytes >= 0.0
        assert rec.dropped_bytes >= 0.0

"""Unit tests for point helpers and polyline operations."""

import numpy as np
import pytest

from repro.geo.paths import (
    point_to_polyline_distance,
    polyline_to_polyline_distance,
    resample_polyline,
    truncate_polyline,
)
from repro.geo.points import (
    Point2D,
    Point3D,
    as_xy_array,
    as_xyz_array,
    pairwise_distances,
    polyline_length,
)


class TestPoints:
    def test_point2d_distance(self):
        assert Point2D(0, 0).distance_to(Point2D(3, 4)) == pytest.approx(5.0)

    def test_point3d_distance(self):
        assert Point3D(0, 0, 0).distance_to(Point3D(2, 3, 6)) == pytest.approx(7.0)

    def test_ground_projection(self):
        p = Point3D(1.0, 2.0, 30.0)
        assert p.ground() == Point2D(1.0, 2.0)

    def test_as_xy_array_mixed_inputs(self):
        arr = as_xy_array([Point2D(1, 2), Point3D(3, 4, 5), (6, 7), [8, 9, 10]])
        np.testing.assert_allclose(arr, [[1, 2], [3, 4], [6, 7], [8, 9]])

    def test_as_xyz_array_lifts_2d(self):
        arr = as_xyz_array([(1, 2), Point2D(3, 4)])
        np.testing.assert_allclose(arr, [[1, 2, 0], [3, 4, 0]])

    def test_empty_inputs(self):
        assert as_xy_array([]).shape == (0, 2)
        assert as_xyz_array([]).shape == (0, 3)

    def test_pairwise_distances(self):
        a = np.array([[0.0, 0.0], [1.0, 0.0]])
        b = np.array([[0.0, 1.0]])
        d = pairwise_distances(a, b)
        assert d.shape == (2, 1)
        assert d[0, 0] == pytest.approx(1.0)
        assert d[1, 0] == pytest.approx(np.sqrt(2))

    def test_polyline_length(self):
        assert polyline_length([(0, 0), (3, 0), (3, 4)]) == pytest.approx(7.0)
        assert polyline_length([(0, 0)]) == 0.0
        assert polyline_length([]) == 0.0


class TestResample:
    def test_resample_endpoints_preserved(self):
        pts = resample_polyline([(0, 0), (10, 0)], spacing=3.0)
        np.testing.assert_allclose(pts[0], [0, 0])
        np.testing.assert_allclose(pts[-1], [10, 0])

    def test_resample_spacing_approximate(self):
        pts = resample_polyline([(0, 0), (100, 0)], spacing=10.0)
        gaps = np.diff(pts[:, 0])
        assert np.allclose(gaps, gaps[0])
        assert abs(gaps[0] - 10.0) < 1.0

    def test_resample_multi_segment(self):
        pts = resample_polyline([(0, 0), (10, 0), (10, 10)], spacing=1.0)
        assert len(pts) == 21
        # All samples on the L-shaped path.
        on_horizontal = np.isclose(pts[:, 1], 0.0)
        on_vertical = np.isclose(pts[:, 0], 10.0)
        assert np.all(on_horizontal | on_vertical)

    def test_resample_degenerate(self):
        assert len(resample_polyline([(5, 5)], 1.0)) == 1
        assert len(resample_polyline([(5, 5), (5, 5)], 1.0)) == 1

    def test_resample_rejects_bad_spacing(self):
        with pytest.raises(ValueError):
            resample_polyline([(0, 0), (1, 1)], 0.0)


class TestTruncate:
    def test_truncate_midsegment(self):
        out = truncate_polyline([(0, 0), (10, 0)], budget=4.0)
        np.testing.assert_allclose(out[-1], [4, 0])
        assert polyline_length(out) == pytest.approx(4.0)

    def test_truncate_longer_than_path(self):
        path = [(0, 0), (3, 0), (3, 4)]
        out = truncate_polyline(path, budget=100.0)
        assert polyline_length(out) == pytest.approx(7.0)

    def test_truncate_zero(self):
        out = truncate_polyline([(1, 1), (5, 5)], budget=0.0)
        assert len(out) == 1

    def test_truncate_negative_rejected(self):
        with pytest.raises(ValueError):
            truncate_polyline([(0, 0), (1, 0)], -1.0)


class TestDistances:
    def test_point_to_segment_perpendicular(self):
        d = point_to_polyline_distance((5, 3), [(0, 0), (10, 0)])
        assert d == pytest.approx(3.0)

    def test_point_beyond_segment_end(self):
        d = point_to_polyline_distance((13, 4), [(0, 0), (10, 0)])
        assert d == pytest.approx(5.0)

    def test_point_on_polyline(self):
        d = point_to_polyline_distance((5, 0), [(0, 0), (10, 0)])
        assert d == pytest.approx(0.0)

    def test_polyline_distance_identical_is_zero(self):
        poly = [(0, 0), (10, 0), (10, 10)]
        assert polyline_to_polyline_distance(poly, poly) == pytest.approx(0.0, abs=1e-9)

    def test_polyline_distance_parallel_lines(self):
        a = [(0, 0), (10, 0)]
        b = [(0, 5), (10, 5)]
        assert polyline_to_polyline_distance(a, b) == pytest.approx(5.0)

    def test_polyline_distance_symmetric(self):
        a = [(0, 0), (10, 0)]
        b = [(3, 7), (20, 7)]
        d_ab = polyline_to_polyline_distance(a, b)
        d_ba = polyline_to_polyline_distance(b, a)
        assert d_ab == pytest.approx(d_ba)

"""Streamed controller epochs vs the materialized path.

The streamed pipeline's contract mirrors the repo-wide
two-implementations discipline: with a key pitch fine enough that
every REM-key dedup group is a singleton, a streamed epoch must be
*bit*-identical to a materialized one — same RNG draw schedule, same
plan, same placement, same maps.  Collapse (a coarse pitch) is the
perf mode: work saturates at the number of occupied key cells and
group members share one map object.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SkyRANConfig
from repro.core.controller import SkyRANController
from repro.core.rem_store import REMStore
from repro.geo.grid import GridSpec
from repro.lte.throughput import throughput_mbps
from repro.rem.map import REM
from repro.sim.scenario import Scenario


def _controller(monkeypatch=None, *, pitch=0.25, seed=1, n_ues=4, known=None):
    scenario = Scenario.create("campus", n_ues=n_ues, cell_size=4.0, seed=5)
    cfg = SkyRANConfig(rem_cell_size_m=8.0, rem_key_pitch_m=pitch)
    ctrl = SkyRANController(
        scenario.channel,
        scenario.enodeb,
        cfg,
        seed=seed,
        known_positions=known,
    )
    return scenario, ctrl


class TestPathSelection:
    def test_env_forces_streamed(self, monkeypatch):
        _, ctrl = _controller()
        monkeypatch.setenv("REPRO_STREAM_EPOCH", "1")
        assert ctrl._stream_epoch(1) is True

    def test_env_forces_materialized(self, monkeypatch):
        _, ctrl = _controller()
        monkeypatch.setenv("REPRO_STREAM_EPOCH", "0")
        assert ctrl._stream_epoch(10**6) is False

    def test_threshold_selects(self, monkeypatch):
        monkeypatch.delenv("REPRO_STREAM_EPOCH", raising=False)
        _, ctrl = _controller()
        thresh = ctrl.config.stream_epoch_threshold
        assert ctrl._stream_epoch(thresh - 1) is False
        assert ctrl._stream_epoch(thresh) is True

    def test_default_small_scenario_is_materialized(self, monkeypatch):
        """Paper-scale populations stay on the legacy byte-identical path."""
        monkeypatch.delenv("REPRO_STREAM_EPOCH", raising=False)
        _, ctrl = _controller()
        result = ctrl.run_epoch(budget_m=300.0)
        assert result.streamed is False
        assert result.n_rem_groups is None


class TestStreamedBitIdentity:
    """Singleton groups: the streamed epoch IS the materialized epoch."""

    @pytest.fixture(scope="class")
    def pair(self):
        import os

        results = {}
        for mode in ("0", "1"):
            os.environ["REPRO_STREAM_EPOCH"] = mode
            try:
                # A 0.25 m key pitch makes every estimate its own group.
                _, ctrl = _controller(pitch=0.25, seed=1)
                results[mode] = (ctrl, ctrl.run_epoch(budget_m=300.0))
            finally:
                os.environ.pop("REPRO_STREAM_EPOCH", None)
        return results["0"][1], results["1"][1]

    def test_modes_took_intended_paths(self, pair):
        mat, streamed = pair
        assert mat.streamed is False
        assert streamed.streamed is True
        assert streamed.n_rem_groups == len(streamed.ue_estimates)

    def test_estimates_identical(self, pair):
        mat, streamed = pair
        assert set(mat.ue_estimates) == set(streamed.ue_estimates)
        for ue_id in mat.ue_estimates:
            assert np.array_equal(
                mat.ue_estimates[ue_id], streamed.ue_estimates[ue_id]
            )
        assert mat.localization_errors_m == streamed.localization_errors_m

    def test_altitude_and_flight_identical(self, pair):
        mat, streamed = pair
        assert mat.altitude_m == streamed.altitude_m
        assert mat.flight_distance_m == streamed.flight_distance_m
        assert mat.flight_time_s == streamed.flight_time_s

    def test_plan_identical(self, pair):
        mat, streamed = pair
        assert np.array_equal(
            mat.plan.trajectory.waypoints, streamed.plan.trajectory.waypoints
        )

    def test_placement_identical(self, pair):
        mat, streamed = pair
        assert mat.placement.cell == streamed.placement.cell
        assert mat.placement.min_snr_db == streamed.placement.min_snr_db
        assert np.array_equal(
            mat.placement.position.as_array(),
            streamed.placement.position.as_array(),
        )

    def test_rem_maps_identical(self, pair):
        mat, streamed = pair
        assert set(mat.rem_maps) == set(streamed.rem_maps)
        for ue_id in mat.rem_maps:
            assert np.array_equal(
                mat.rem_maps[ue_id], streamed.rem_maps[ue_id], equal_nan=True
            )


class TestCollapse:
    def test_coarse_pitch_collapses_to_one_group(self, monkeypatch):
        monkeypatch.setenv("REPRO_STREAM_EPOCH", "1")
        # Pitch wider than the campus: every UE lands in one key cell.
        _, ctrl = _controller(pitch=10_000.0, seed=1)
        result = ctrl.run_epoch(budget_m=300.0)
        assert result.streamed is True
        assert result.n_rem_groups == 1
        maps = list(result.rem_maps.values())
        assert len(maps) == len(result.ue_estimates)
        # Members share the group's map *object*, not copies of it.
        assert all(m is maps[0] for m in maps)
        assert np.isfinite(result.placement.min_snr_db)

    def test_group_count_tracks_pitch(self, monkeypatch):
        monkeypatch.setenv("REPRO_STREAM_EPOCH", "1")
        _, fine = _controller(pitch=0.25, seed=1)
        fine_result = fine.run_epoch(budget_m=300.0)
        _, coarse = _controller(pitch=10_000.0, seed=1)
        coarse_result = coarse.run_epoch(budget_m=300.0)
        assert coarse_result.n_rem_groups < fine_result.n_rem_groups
        assert fine_result.n_rem_groups == len(fine_result.ue_estimates)


class TestKnownPositions:
    def test_all_known_skips_localization_flight(self):
        scenario, _ = _controller()
        known = {
            ue.ue_id: np.array([ue.position.x, ue.position.y, ue.position.z])
            for ue in scenario.ues
        }
        scenario2 = Scenario.create("campus", n_ues=4, cell_size=4.0, seed=5)
        ctrl = SkyRANController(
            scenario2.channel,
            scenario2.enodeb,
            SkyRANConfig(rem_cell_size_m=8.0),
            seed=1,
            known_positions=known,
        )
        assert ctrl._ues_to_localize() == []
        estimates, errors, dist, t = ctrl._localization_flight()
        assert (estimates, errors, dist, t) == ({}, {}, 0.0, 0.0)

    def test_known_positions_enter_epoch_as_estimates(self):
        scenario = Scenario.create("campus", n_ues=4, cell_size=4.0, seed=5)
        known = {
            ue.ue_id: np.array([ue.position.x, ue.position.y, ue.position.z])
            for ue in scenario.ues
        }
        ctrl = SkyRANController(
            scenario.channel,
            scenario.enodeb,
            SkyRANConfig(rem_cell_size_m=8.0),
            seed=1,
            known_positions=known,
        )
        result = ctrl.run_epoch(budget_m=300.0)
        assert set(result.ue_estimates) == set(known)
        for ue_id, pos in known.items():
            assert np.array_equal(result.ue_estimates[ue_id], pos)
            # Ground truth in, so reported error is exactly zero.
            assert result.localization_errors_m[ue_id] == 0.0

    def test_partial_knowledge_localizes_the_rest(self):
        scenario = Scenario.create("campus", n_ues=4, cell_size=4.0, seed=5)
        first = scenario.ues[0]
        known = {
            first.ue_id: np.array(
                [first.position.x, first.position.y, first.position.z]
            )
        }
        ctrl = SkyRANController(
            scenario.channel,
            scenario.enodeb,
            SkyRANConfig(rem_cell_size_m=8.0),
            seed=1,
            known_positions=known,
        )
        assert {u.ue_id for u in ctrl._ues_to_localize()} == {
            u.ue_id for u in scenario.ues[1:]
        }
        result = ctrl.run_epoch(budget_m=300.0)
        assert set(result.ue_estimates) == {u.ue_id for u in scenario.ues}
        assert result.localization_errors_m[first.ue_id] == 0.0

    def test_none_is_inert(self):
        _, ctrl = _controller(known=None)
        assert len(ctrl._ues_to_localize()) == 4
        estimates, errors = {1: np.zeros(3)}, {1: 2.0}
        ctrl._merge_known_positions(estimates, errors)
        assert list(estimates) == [1] and np.array_equal(estimates[1], np.zeros(3))
        assert errors == {1: 2.0}


class TestAggregateThroughputVectorized:
    @pytest.mark.parametrize("shadowing", [0.0, 6.0])
    def test_matches_scalar_loop(self, shadowing):
        """snr_to_many keeps the KPI bit-identical to the per-UE loop."""
        scenario = Scenario.create(
            "campus",
            n_ues=4,
            cell_size=4.0,
            seed=5,
            channel_kwargs={"shadowing_sigma_db": shadowing, "common_sigma_db": 0.0},
        )
        cfg = SkyRANConfig(rem_cell_size_m=8.0)
        ctrl = SkyRANController(scenario.channel, scenario.enodeb, cfg, seed=1)
        ctrl.run_epoch(budget_m=300.0)
        got = ctrl.aggregate_throughput_mbps()
        rates = [
            float(
                throughput_mbps(
                    float(ctrl.channel.snr_db(ctrl.uav.position, ue.xyz))
                )
            )
            for ue in ctrl.enodeb.connected_ues()
        ]
        assert got == float(np.mean(rates))


class TestREMStoreBucketedLookup:
    """The bucket grid must reproduce the linear scan exactly."""

    @staticmethod
    def _linear_lookup(store: REMStore, p: np.ndarray):
        best, best_d = None, store.reuse_radius_m
        for rem in store._store.values():
            d = rem.distance_to_position(p)
            if d <= best_d:
                best, best_d = rem, d
        return best

    def _filled_store(self, n=60, seed=11, radius=10.0):
        grid = GridSpec.from_extent(100.0, 100.0, cell_size=4.0)
        store = REMStore(grid, reuse_radius_m=radius)
        rng = np.random.default_rng(seed)
        for _ in range(n):
            xyz = np.append(rng.uniform(0.0, 100.0, 2), 1.5)
            store.commit(REM(grid, xyz, 60.0))
        return store, rng

    def test_random_queries_match_linear_scan(self):
        store, rng = self._filled_store()
        for _ in range(200):
            q = np.append(rng.uniform(-10.0, 110.0, 2), 1.5)
            assert store.lookup(q) is self._linear_lookup(store, q)

    def test_equidistant_tie_goes_to_latest_inserted(self):
        grid = GridSpec.from_extent(100.0, 100.0, cell_size=4.0)
        store = REMStore(grid, reuse_radius_m=10.0)
        first = REM(grid, np.array([0.0, 0.0, 1.5]), 60.0)
        second = REM(grid, np.array([10.0, 0.0, 1.5]), 60.0)
        store.commit(first)
        store.commit(second)
        # Query equidistant (5 m) from both: the linear scan's
        # ``d <= best_d`` rule hands the tie to the later insertion.
        got = store.lookup(np.array([5.0, 0.0, 1.5]))
        assert got is second

    def test_recommit_keeps_scan_position(self):
        store, rng = self._filled_store(n=20, seed=3)
        rems = store.all_rems()
        # Re-commit an early REM; like dict reassignment, its scan
        # order must not move, so every query still matches the scan.
        store.commit(rems[2])
        for _ in range(50):
            q = np.append(rng.uniform(0.0, 100.0, 2), 1.5)
            assert store.lookup(q) is self._linear_lookup(store, q)

    def test_out_of_radius_returns_none(self):
        grid = GridSpec.from_extent(100.0, 100.0, cell_size=4.0)
        store = REMStore(grid, reuse_radius_m=5.0)
        store.commit(REM(grid, np.array([0.0, 0.0, 1.5]), 60.0))
        assert store.lookup(np.array([50.0, 50.0, 1.5])) is None


class TestInterpolatedTile:
    def test_band_matches_sliced_full_map(self):
        grid = GridSpec.from_extent(40.0, 40.0, cell_size=2.0)
        rem = REM(grid, np.array([10.0, 10.0, 1.5]), 60.0,
                  prior=np.full(grid.shape, -4.0))
        rng = np.random.default_rng(2)
        rem.add_measurements(
            rng.uniform(0.0, 40.0, (25, 2)), rng.normal(5.0, 4.0, 25)
        )
        full = rem.interpolated()
        for rows in (slice(0, 7), slice(7, 20), slice(13, 17)):
            assert np.array_equal(rem.interpolated_tile(rows), full[rows])

    def test_band_resolves_registry_params(self):
        grid = GridSpec.from_extent(40.0, 40.0, cell_size=2.0)
        rem = REM(grid, np.array([10.0, 10.0, 1.5]), 60.0)
        rng = np.random.default_rng(4)
        rem.add_measurements(
            rng.uniform(0.0, 40.0, (25, 2)), rng.normal(5.0, 4.0, 25)
        )
        full = rem.interpolated(method="kriging", k_neighbors=8)
        band = rem.interpolated_tile(slice(3, 12), method="kriging", k_neighbors=8)
        assert np.array_equal(band, full[slice(3, 12)])

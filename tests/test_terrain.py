"""Unit tests for terrain heightmaps and generators."""

import numpy as np
import pytest

from repro.geo.grid import GridSpec
from repro.terrain.generators import (
    make_campus,
    make_fig4_terrain,
    make_flat,
    make_large,
    make_nyc,
    make_rural,
    make_terrain,
)
from repro.terrain.heightmap import Terrain


class TestTerrain:
    def test_shape_must_match_grid(self):
        g = GridSpec.from_extent(10, 10, 1.0)
        with pytest.raises(ValueError):
            Terrain(g, np.zeros((5, 5)))

    def test_height_lookups(self, box_terrain):
        assert box_terrain.height_at(50.0, 50.0) == pytest.approx(20.0)
        assert box_terrain.height_at(10.0, 10.0) == pytest.approx(0.0)

    def test_heights_at_vectorized(self, box_terrain):
        pts = np.array([[50.0, 50.0], [10.0, 10.0]])
        h = box_terrain.heights_at(pts)
        np.testing.assert_allclose(h, [20.0, 0.0])

    def test_heights_at_xy_broadcast(self, box_terrain):
        xs = np.array([[50.0, 10.0], [50.0, 10.0]])
        ys = np.array([[50.0, 10.0], [10.0, 50.0]])
        h = box_terrain.heights_at_xy(xs, ys)
        assert h.shape == (2, 2)
        assert h[0, 0] == 20.0 and h[0, 1] == 0.0

    def test_with_box_never_digs(self, flat_terrain):
        t = flat_terrain.with_box(0, 0, 50, 50, 10.0)
        t2 = t.with_box(0, 0, 50, 50, 2.0)
        assert t2.height_at(25, 25) == pytest.approx(10.0)

    def test_coarsened_takes_block_maxima(self):
        g = GridSpec.from_extent(8, 8, 1.0)
        h = np.zeros(g.shape)
        h[3, 3] = 30.0
        t = Terrain(g, h).coarsened(4)
        assert t.grid.cell_size == 4.0
        assert t.max_height == 30.0

    def test_coarsened_identity(self, flat_terrain):
        assert flat_terrain.coarsened(1) is flat_terrain

    def test_built_fraction_flat_is_zero(self, flat_terrain):
        assert flat_terrain.built_fraction() == 0.0

    def test_roughness_flat_is_zero(self, flat_terrain):
        assert flat_terrain.roughness() == 0.0

    def test_free_cells_excludes_buildings(self, box_terrain):
        iy, ix = box_terrain.free_cells(clearance=1.0)
        heights = box_terrain.heights[iy, ix]
        assert np.all(heights < 1.0)


class TestGenerators:
    def test_campus_has_building_and_forest(self):
        t = make_campus(cell_size=4.0)
        assert t.max_height >= 30.0  # 35 m trees
        assert 0.05 < t.built_fraction() < 0.6
        assert t.name == "campus"

    def test_nyc_is_dense_and_tall(self):
        t = make_nyc(cell_size=4.0)
        assert t.max_height > 40.0
        assert t.built_fraction() > 0.3

    def test_rural_is_mostly_open(self):
        t = make_rural(cell_size=4.0)
        assert t.built_fraction(threshold=3.0) < 0.25

    def test_large_extent(self):
        t = make_large(cell_size=16.0)
        assert t.grid.width == pytest.approx(1000.0, rel=0.05)

    def test_fig4_terrains_increase_in_complexity(self):
        frac = [
            make_fig4_terrain(i, cell_size=4.0).built_fraction(threshold=3.0)
            for i in (1, 2, 3, 4)
        ]
        assert frac[0] <= frac[1] <= frac[3]
        assert frac[3] > frac[0]

    def test_fig4_invalid_index(self):
        with pytest.raises(ValueError):
            make_fig4_terrain(5)

    def test_generators_deterministic(self):
        a = make_nyc(cell_size=4.0, seed=9)
        b = make_nyc(cell_size=4.0, seed=9)
        np.testing.assert_array_equal(a.heights, b.heights)

    def test_make_terrain_by_name(self):
        assert make_terrain("flat").name == "flat"
        assert make_terrain("terrain-2", cell_size=4.0).name == "terrain-2"
        with pytest.raises(KeyError):
            make_terrain("atlantis")

    def test_make_flat(self):
        t = make_flat(size=50.0, cell_size=2.0)
        assert t.max_height == 0.0
        assert t.grid.shape == (25, 25)

"""Unit tests for ranging aggregation and multilateration."""

import numpy as np
import pytest

from repro.localization.joint import solve_joint_multilateration
from repro.localization.multilateration import solve_multilateration
from repro.localization.ranging import (
    GpsRange,
    aggregate_tof_to_gps,
    mad_filter,
    ranges_from_delays,
)
from repro.lte.srs import SRSConfig


def _circle_obs(ue, radius, n, alt, offset, noise, rng):
    angles = np.linspace(0, 2 * np.pi, n, endpoint=False)
    anchors = np.column_stack(
        [
            ue[0] + radius * np.cos(angles),
            ue[1] + radius * np.sin(angles),
            np.full(n, alt),
        ]
    )
    d = np.linalg.norm(anchors - ue, axis=1)
    r = d + offset + rng.normal(0, noise, n)
    return [GpsRange(a, float(ri), float(i)) for i, (a, ri) in enumerate(zip(anchors, r))]


class TestRanging:
    def test_ranges_from_delays(self):
        cfg = SRSConfig()
        out = ranges_from_delays(np.array([1.0, 2.0]), cfg)
        np.testing.assert_allclose(out, [cfg.meters_per_sample, 2 * cfg.meters_per_sample])

    def test_aggregate_assigns_means(self):
        gps_t = [0.0, 1.0, 2.0]
        gps_xyz = np.zeros((3, 3))
        tof_t = [0.1, 0.5, 1.2, 2.5]
        ranges = [10.0, 20.0, 30.0, 40.0]
        obs = aggregate_tof_to_gps(gps_t, gps_xyz, tof_t, ranges)
        assert len(obs) == 3
        assert obs[0].range_m == pytest.approx(15.0)
        assert obs[1].range_m == pytest.approx(30.0)
        assert obs[2].range_m == pytest.approx(40.0)

    def test_aggregate_drops_empty_windows(self):
        obs = aggregate_tof_to_gps(
            [0.0, 1.0], np.zeros((2, 3)), [1.5], [99.0]
        )
        assert len(obs) == 1
        assert obs[0].t_s == 1.0

    def test_aggregate_shape_checks(self):
        with pytest.raises(ValueError):
            aggregate_tof_to_gps([0.0], np.zeros((2, 3)), [0.0], [1.0])
        with pytest.raises(ValueError):
            aggregate_tof_to_gps([0.0], np.zeros((1, 3)), [0.0, 1.0], [1.0])

    def test_mad_filter_drops_spike(self, rng):
        obs = _circle_obs(np.array([0.0, 0.0, 1.5]), 80.0, 50, 40.0, 100.0, 0.5, rng)
        spike = GpsRange(obs[10].gps_xyz, obs[10].range_m + 60.0, obs[10].t_s)
        noisy = obs[:10] + [spike] + obs[10:]
        kept = mad_filter(noisy, k=4.0)
        assert len(kept) == len(noisy) - 1

    def test_mad_filter_keeps_short_series(self):
        obs = [GpsRange(np.zeros(3), 10.0, float(i)) for i in range(4)]
        assert mad_filter(obs) == obs

    def test_mad_filter_validates_k(self):
        with pytest.raises(ValueError):
            mad_filter([], k=0.0)


class TestSingleUE:
    def test_recovers_position_and_offset(self, rng):
        ue = np.array([30.0, -20.0, 1.5])
        obs = _circle_obs(ue, 100.0, 60, 50.0, 137.0, 0.0, rng)
        res = solve_multilateration(obs)
        np.testing.assert_allclose(res.position[:2], ue[:2], atol=0.5)
        assert res.offset_m == pytest.approx(137.0, abs=0.5)
        assert res.residual_rms_m < 0.5

    def test_noise_degrades_gracefully(self, rng):
        ue = np.array([30.0, -20.0, 1.5])
        obs = _circle_obs(ue, 100.0, 60, 50.0, 137.0, 2.0, rng)
        res = solve_multilateration(obs)
        err = np.hypot(res.position[0] - ue[0], res.position[1] - ue[1])
        assert err < 10.0

    def test_requires_three_observations(self):
        with pytest.raises(ValueError):
            solve_multilateration([GpsRange(np.zeros(3), 1.0, 0.0)] * 2)


class TestJoint:
    def test_multiple_ues_shared_offset(self, rng):
        ues = {1: np.array([20.0, 20.0, 1.5]), 2: np.array([-40.0, 10.0, 1.5])}
        obs = {
            k: _circle_obs(v, 90.0, 50, 45.0, 137.0, 0.5, rng) for k, v in ues.items()
        }
        res = solve_joint_multilateration(obs)
        assert res.offset_m == pytest.approx(137.0, abs=1.0)
        for k, v in ues.items():
            err = np.hypot(res.per_ue[k].position[0] - v[0], res.per_ue[k].position[1] - v[1])
            assert err < 2.0

    def test_bounds_keep_solution_in_box(self, rng):
        ue = np.array([20.0, 20.0, 1.5])
        obs = {1: _circle_obs(ue, 15.0, 40, 45.0, 137.0, 8.0, rng)}
        res = solve_joint_multilateration(
            obs, bounds_xy=((0.0, 100.0), (0.0, 100.0))
        )
        x, y = res.per_ue[1].position[:2]
        assert 0.0 <= x <= 100.0 and 0.0 <= y <= 100.0

    def test_nlos_bias_trimmed(self, rng):
        ue = np.array([10.0, 10.0, 1.5])
        obs = _circle_obs(ue, 90.0, 60, 45.0, 137.0, 0.3, rng)
        # Bias one third of the ranges late (NLOS spikes).
        biased = [
            GpsRange(o.gps_xyz, o.range_m + (25.0 if i % 3 == 0 else 0.0), o.t_s)
            for i, o in enumerate(obs)
        ]
        res = solve_joint_multilateration({1: biased})
        err = np.hypot(res.per_ue[1].position[0] - 10.0, res.per_ue[1].position[1] - 10.0)
        # Far better than swallowing the 25 m bias whole; the trim +
        # Huber keep the damage to a fraction of it.
        assert err < 12.0

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            solve_joint_multilateration({})

    def test_too_few_obs_rejected(self):
        with pytest.raises(ValueError):
            solve_joint_multilateration({1: [GpsRange(np.zeros(3), 1.0, 0.0)]})

"""Unit tests for trajectories: container, zigzag, random flight, info gain."""

import numpy as np
import pytest

from repro.geo.grid import GridSpec
from repro.trajectory.base import Trajectory
from repro.trajectory.information import (
    DEFAULT_I_MAX,
    TrajectoryHistory,
    information_gain,
)
from repro.trajectory.random_flight import random_flight
from repro.trajectory.uniform import zigzag_for_budget, zigzag_trajectory


@pytest.fixture()
def grid100():
    return GridSpec.from_extent(100, 100, 2.0)


class TestTrajectory:
    def test_length(self):
        t = Trajectory(np.array([[0, 0], [3, 0], [3, 4]]), altitude=50.0)
        assert t.length_m == pytest.approx(7.0)

    def test_duration(self):
        t = Trajectory(np.array([[0, 0], [100, 0]]), altitude=50.0)
        assert t.duration_s(10.0) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            t.duration_s(0.0)

    def test_sample_xyz_carries_altitude(self):
        t = Trajectory(np.array([[0, 0], [10, 0]]), altitude=42.0)
        pts = t.sample_xyz(2.0)
        assert np.all(pts[:, 2] == 42.0)

    def test_truncated(self):
        t = Trajectory(np.array([[0, 0], [100, 0]]), altitude=10.0)
        assert t.truncated(30.0).length_m == pytest.approx(30.0)

    def test_with_prefix(self):
        t = Trajectory(np.array([[10, 0], [20, 0]]), altitude=10.0)
        t2 = t.with_prefix((0, 0))
        assert t2.length_m == pytest.approx(20.0)
        np.testing.assert_allclose(t2.start(), [0, 0])

    def test_requires_waypoints(self):
        with pytest.raises(ValueError):
            Trajectory(np.empty((0, 2)), altitude=10.0)

    def test_negative_altitude_rejected(self):
        with pytest.raises(ValueError):
            Trajectory(np.array([[0, 0]]), altitude=-1.0)


class TestZigzag:
    def test_covers_area(self, grid100):
        t = zigzag_trajectory(grid100, row_spacing_m=20.0, altitude=50.0)
        wp = t.waypoints
        assert wp[:, 1].min() <= 1.0
        assert wp[:, 1].max() >= 99.0
        assert wp[:, 0].min() <= 1.0 and wp[:, 0].max() >= 99.0

    def test_starts_at_corner(self, grid100):
        t = zigzag_trajectory(grid100, 20.0, 50.0)
        np.testing.assert_allclose(t.waypoints[0], [0.0, 0.0])

    def test_alternating_direction(self, grid100):
        t = zigzag_trajectory(grid100, 25.0, 50.0)
        # Row 0 goes east, row 1 returns west.
        assert t.waypoints[1][0] > t.waypoints[0][0]
        assert t.waypoints[3][0] < t.waypoints[2][0]

    def test_row_offset_shifts_rows(self, grid100):
        base = zigzag_trajectory(grid100, 20.0, 50.0)
        shifted = zigzag_trajectory(grid100, 20.0, 50.0, row_offset_m=7.0)
        assert shifted.waypoints[0][1] == pytest.approx(7.0)
        assert base.waypoints[0][1] == pytest.approx(0.0)

    def test_budget_respected(self, grid100):
        for budget in (150.0, 400.0, 900.0):
            t = zigzag_for_budget(grid100, budget, 50.0)
            assert t.length_m <= budget + 1e-6
            assert t.length_m >= 0.8 * min(budget, 1e9)

    def test_invalid_params(self, grid100):
        with pytest.raises(ValueError):
            zigzag_trajectory(grid100, 0.0, 50.0)
        with pytest.raises(ValueError):
            zigzag_for_budget(grid100, 0.0, 50.0)
        with pytest.raises(ValueError):
            zigzag_trajectory(grid100, 10.0, 50.0, margin_m=60.0)


class TestRandomFlight:
    def test_length_matches_request(self, grid100, rng):
        t = random_flight(grid100, (50.0, 50.0), 30.0, 60.0, rng)
        assert t.length_m == pytest.approx(30.0, abs=1e-6)

    def test_stays_in_grid(self, grid100, rng):
        t = random_flight(grid100, (2.0, 2.0), 80.0, 60.0, rng)
        wp = t.waypoints
        assert wp[:, 0].min() >= grid100.origin_x - 1e-9
        assert wp[:, 1].max() <= grid100.max_y + 1e-9

    def test_stays_near_start(self, grid100, rng):
        t = random_flight(grid100, (50.0, 50.0), 60.0, 60.0, rng, box_m=10.0)
        d = np.hypot(t.waypoints[:, 0] - 50.0, t.waypoints[:, 1] - 50.0)
        assert d.max() <= 10.0 * np.sqrt(2) + 1e-6

    def test_has_turns(self, grid100, rng):
        t = random_flight(grid100, (50.0, 50.0), 40.0, 60.0, rng)
        assert len(t.waypoints) >= 4

    def test_invalid_length(self, grid100, rng):
        with pytest.raises(ValueError):
            random_flight(grid100, (50.0, 50.0), 0.0, 60.0, rng)


class TestInformation:
    def test_empty_history_gets_imax(self):
        t = Trajectory(np.array([[0, 0], [10, 0]]), 50.0)
        assert information_gain(t, []) == DEFAULT_I_MAX

    def test_gain_is_min_over_history(self):
        cand = Trajectory(np.array([[0, 0], [10, 0]]), 50.0)
        near = Trajectory(np.array([[0, 1], [10, 1]]), 50.0)
        far = Trajectory(np.array([[0, 50], [10, 50]]), 50.0)
        gain = information_gain(cand, [near, far])
        assert gain == pytest.approx(1.0, abs=0.2)

    def test_gain_capped_at_imax(self):
        cand = Trajectory(np.array([[0, 0], [1, 0]]), 50.0)
        far = Trajectory(np.array([[0, 1e6], [1, 1e6]]), 50.0)
        assert information_gain(cand, [far], i_max=100.0) == 100.0

    def test_history_reuse_radius(self):
        h = TrajectoryHistory(reuse_radius_m=10.0)
        t = Trajectory(np.array([[0, 0], [10, 0]]), 50.0)
        h.record(np.array([100.0, 100.0, 1.5]), t)
        # A UE within R of the recorded position sees the history.
        assert len(h.trajectories_for(np.array([105.0, 100.0, 1.5]))) == 1
        # A UE far away sees none.
        assert len(h.trajectories_for(np.array([200.0, 200.0, 1.5]))) == 0

    def test_history_nonunit_quantum(self):
        # Regression: stored keys are in key-index units; the reuse
        # lookup used to compare them against raw meter coordinates,
        # which only coincided for quantum_m=1.
        h = TrajectoryHistory(reuse_radius_m=10.0, quantum_m=5.0)
        t = Trajectory(np.array([[0, 0], [10, 0]]), 50.0)
        h.record(np.array([100.0, 100.0, 1.5]), t)
        # 7 m away: within R, must see the history despite the coarse key.
        assert len(h.trajectories_for(np.array([107.0, 100.0, 1.5]))) == 1
        # 20 m away: outside R (pre-fix code, comparing meters against
        # key indices ~ (20, 20), matched nothing near (100, 100) and
        # everything near the origin).
        assert len(h.trajectories_for(np.array([120.0, 100.0, 1.5]))) == 0
        assert len(h.trajectories_for(np.array([20.0, 20.0, 1.5]))) == 0

    def test_history_quantum_buckets_nearby_records(self):
        h = TrajectoryHistory(quantum_m=5.0)
        t = Trajectory(np.array([[0, 0], [10, 0]]), 50.0)
        # Both positions quantize to the same 5 m key.
        h.record(np.array([99.0, 100.0, 1.5]), t)
        h.record(np.array([101.0, 100.0, 1.5]), t)
        assert len(h._store) == 1
        assert len(h) == 2

    def test_mean_gain_over_ues(self):
        h = TrajectoryHistory()
        cand = Trajectory(np.array([[0, 0], [10, 0]]), 50.0)
        h.record(np.array([0.0, 0.0, 1.5]), cand)
        gain = h.mean_gain(
            cand, [np.array([0.0, 0.0, 1.5]), np.array([500.0, 500.0, 1.5])]
        )
        # One UE has seen this exact path (gain ~0), the other is new
        # (gain i_max): the mean sits halfway.
        assert gain == pytest.approx(h.i_max / 2, rel=0.05)

    def test_mean_gain_requires_ues(self):
        h = TrajectoryHistory()
        cand = Trajectory(np.array([[0, 0], [10, 0]]), 50.0)
        with pytest.raises(ValueError):
            h.mean_gain(cand, [])

    def test_len_counts_records(self):
        h = TrajectoryHistory()
        t = Trajectory(np.array([[0, 0], [10, 0]]), 50.0)
        h.record(np.array([0.0, 0.0, 1.5]), t)
        h.record(np.array([0.0, 0.0, 1.5]), t)
        h.record(np.array([90.0, 0.0, 1.5]), t)
        assert len(h) == 3

"""Unit tests for placement, REM store, epoch trigger and config."""

import numpy as np
import pytest

from repro.core.config import SkyRANConfig
from repro.core.epoch import EpochTrigger
from repro.core.placement import find_optimal_altitude, max_min_placement
from repro.core.rem_store import REMStore
from repro.geo.grid import GridSpec


@pytest.fixture()
def grid():
    return GridSpec.from_extent(20, 20, 1.0)


class TestConfig:
    def test_defaults_match_paper(self):
        cfg = SkyRANConfig()
        assert cfg.max_altitude_m == 120.0  # FAA ceiling
        assert cfg.reuse_radius_m == 10.0  # R from Fig. 9
        assert cfg.epoch_margin == 0.1
        assert cfg.tof_upsampling == 4
        assert cfg.idw_power == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SkyRANConfig(localization_flight_m=0.0)
        with pytest.raises(ValueError):
            SkyRANConfig(min_altitude_m=200.0)
        with pytest.raises(ValueError):
            SkyRANConfig(epoch_margin=0.0)
        with pytest.raises(ValueError):
            SkyRANConfig(reuse_radius_m=-1.0)


class TestPlacement:
    def test_max_min_picks_joint_best(self, grid):
        a = np.zeros(grid.shape)
        b = np.zeros(grid.shape)
        a[5, 5] = 30.0
        b[5, 5] = 1.0  # great for A, poor for B
        a[10, 10] = 10.0
        b[10, 10] = 10.0  # decent for both
        result = max_min_placement(grid, [a, b], altitude=50.0)
        assert result.cell == (10, 10)
        assert result.min_snr_db == pytest.approx(10.0)
        assert result.position.z == 50.0

    def test_single_map_is_argmax(self, grid, rng):
        m = rng.uniform(0, 20, grid.shape)
        result = max_min_placement(grid, [m], altitude=40.0)
        iy, ix = np.unravel_index(np.argmax(m), m.shape)
        assert result.cell == (iy, ix)

    def test_requires_maps(self, grid):
        with pytest.raises(ValueError):
            max_min_placement(grid, [], 50.0)


class TestAltitudeSearch:
    def test_finds_interior_minimum(self):
        losses = {a: abs(a - 60.0) * 0.5 + 80.0 for a in range(20, 121, 10)}
        alt = find_optimal_altitude(lambda a: losses[int(a)], 120.0, 20.0, 10.0)
        assert alt == 60.0

    def test_monotone_decreasing_reaches_floor(self):
        alt = find_optimal_altitude(lambda a: a, 120.0, 20.0, 10.0)
        assert alt == 20.0

    def test_monotone_increasing_stays_at_ceiling(self):
        alt = find_optimal_altitude(lambda a: -a, 120.0, 20.0, 10.0)
        assert alt == 120.0

    def test_patience_skips_noise_bump(self):
        # A one-step bump at 100 must not stop the descent.
        def loss(a):
            base = abs(a - 40.0) * 0.5 + 80.0
            return base + (5.0 if int(a) == 100 else 0.0)

        alt = find_optimal_altitude(loss, 120.0, 20.0, 10.0, patience=3)
        assert alt == 40.0

    def test_validation(self):
        with pytest.raises(ValueError):
            find_optimal_altitude(lambda a: a, 50.0, 100.0)
        with pytest.raises(ValueError):
            find_optimal_altitude(lambda a: a, 100.0, 50.0, step_m=0.0)
        with pytest.raises(ValueError):
            find_optimal_altitude(lambda a: a, 100.0, 50.0, patience=0)


class TestREMStore:
    def _prior(self, grid):
        return lambda ue_xyz: np.zeros(grid.shape)

    def test_miss_creates_with_prior(self, grid):
        store = REMStore(grid, reuse_radius_m=10.0)
        rem = store.get_or_create(np.array([5.0, 5.0, 1.5]), 50.0, self._prior(grid))
        assert store.misses == 1 and store.hits == 0
        assert rem.prior is not None

    def test_hit_within_radius_shares_data(self, grid):
        store = REMStore(grid, reuse_radius_m=10.0)
        rem = store.get_or_create(np.array([5.0, 5.0, 1.5]), 50.0, self._prior(grid))
        rem.add_measurements(np.array([[3.0, 3.0]]), np.array([12.0]))
        store.commit(rem)
        again = store.get_or_create(np.array([9.0, 5.0, 1.5]), 50.0, self._prior(grid))
        assert store.hits == 1
        assert again.n_measured_cells == 1

    def test_miss_beyond_radius(self, grid):
        store = REMStore(grid, reuse_radius_m=5.0)
        store.get_or_create(np.array([0.0, 0.0, 1.5]), 50.0, self._prior(grid))
        store.get_or_create(np.array([15.0, 15.0, 1.5]), 50.0, self._prior(grid))
        assert store.misses == 2
        assert len(store) == 2

    def test_lookup_returns_closest(self, grid):
        store = REMStore(grid, reuse_radius_m=10.0)
        a = store.get_or_create(np.array([0.0, 0.0, 1.5]), 50.0, self._prior(grid))
        b = store.get_or_create(np.array([19.0, 19.0, 1.5]), 50.0, self._prior(grid))
        found = store.lookup(np.array([18.0, 18.0, 1.5]))
        assert found is not None
        np.testing.assert_allclose(found.ue_xyz[:2], b.ue_xyz[:2])

    def test_lookup_miss_is_none(self, grid):
        store = REMStore(grid, reuse_radius_m=2.0)
        assert store.lookup(np.array([10.0, 10.0, 1.5])) is None


class TestEpochTrigger:
    def test_cold_start_triggers(self):
        t = EpochTrigger(margin=0.1)
        assert t.update(10.0)

    def test_within_margin_holds(self):
        t = EpochTrigger(margin=0.1)
        t.reset(20.0)
        assert not t.update(19.0)
        assert not t.update(18.01)

    def test_drop_beyond_margin_triggers(self):
        t = EpochTrigger(margin=0.1)
        t.reset(20.0)
        assert t.update(17.9)

    def test_history_recorded(self):
        t = EpochTrigger(margin=0.1)
        t.reset(20.0)
        t.update(19.0, t_s=1.0)
        t.update(18.0, t_s=2.0)
        assert len(t.history) == 2
        assert t.history[1] == (2.0, 18.0)

    def test_reset_clears_history(self):
        t = EpochTrigger(margin=0.1)
        t.reset(20.0)
        t.update(19.0)
        t.reset(19.0)
        assert t.history == []

    def test_dead_reference_triggers(self):
        t = EpochTrigger(margin=0.1)
        t.reset(0.0)
        assert t.update(0.0)

    def test_margin_validated(self):
        with pytest.raises(ValueError):
            EpochTrigger(margin=1.0)
        t = EpochTrigger()
        with pytest.raises(ValueError):
            t.reset(-1.0)

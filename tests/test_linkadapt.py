"""Tests for outer-loop link adaptation."""

import numpy as np
import pytest

from repro.lte.linkadapt import OuterLoopLinkAdaptation, simulate_link


class TestOLLA:
    def test_offset_starts_at_zero(self):
        olla = OuterLoopLinkAdaptation()
        assert olla.offset_db(1) == 0.0
        assert olla.realized_bler(1) is None

    def test_nack_drops_offset(self):
        olla = OuterLoopLinkAdaptation(step_db=0.5)
        olla.report(1, ack=False)
        assert olla.offset_db(1) == pytest.approx(-0.5)

    def test_ack_step_sets_equilibrium(self):
        olla = OuterLoopLinkAdaptation(target_bler=0.1, step_db=0.9)
        up = olla.report(1, ack=True)
        assert up == pytest.approx(0.9 * 0.1 / 0.9)

    def test_offset_clamped(self):
        olla = OuterLoopLinkAdaptation(step_db=5.0, min_offset_db=-10.0)
        for _ in range(10):
            olla.report(1, ack=False)
        assert olla.offset_db(1) == -10.0

    def test_per_ue_independence(self):
        olla = OuterLoopLinkAdaptation()
        olla.report(1, ack=False)
        assert olla.offset_db(2) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            OuterLoopLinkAdaptation(target_bler=0.0)
        with pytest.raises(ValueError):
            OuterLoopLinkAdaptation(step_db=0.0)


class TestSimulatedLink:
    def test_bler_converges_to_target(self, rng):
        olla = OuterLoopLinkAdaptation(target_bler=0.1)
        stats = simulate_link(olla, 1, mean_snr_db=15.0, n_tti=8000, rng=rng)
        assert stats["bler"] == pytest.approx(0.1, abs=0.05)

    def test_optimistic_channel_learns_negative_offset(self, rng):
        # Heavy fading makes raw CQI optimistic: the loop must back off.
        olla = OuterLoopLinkAdaptation(target_bler=0.1)
        stats = simulate_link(
            olla, 1, mean_snr_db=15.0, n_tti=5000, rng=rng, fading_std_db=6.0
        )
        assert stats["final_offset_db"] < 0.0

    def test_goodput_positive_at_good_snr(self, rng):
        olla = OuterLoopLinkAdaptation()
        stats = simulate_link(olla, 1, mean_snr_db=20.0, n_tti=2000, rng=rng)
        assert stats["mean_goodput_mbps"] > 5.0

    def test_dead_link_schedules_nothing(self, rng):
        olla = OuterLoopLinkAdaptation()
        stats = simulate_link(olla, 1, mean_snr_db=-20.0, n_tti=500, rng=rng)
        assert stats["mean_goodput_mbps"] == 0.0

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            simulate_link(OuterLoopLinkAdaptation(), 1, 10.0, 0, rng)

"""Tests for the ordinary kriging interpolator."""

import numpy as np
import pytest

from repro.geo.grid import GridSpec
from repro.rem.kriging import (
    exponential_variogram,
    fit_variogram,
    kriging_interpolate,
)


@pytest.fixture()
def grid():
    return GridSpec.from_extent(20, 20, 1.0)


class TestVariogram:
    def test_exponential_shape(self):
        gamma = exponential_variogram(np.array([0.0, 10.0, 1e6]), sill=4.0, range_m=10.0, nugget=0.5)
        assert gamma[0] == pytest.approx(0.5)
        assert gamma[1] == pytest.approx(0.5 + 4.0 * (1 - np.exp(-3)), rel=1e-6)
        assert gamma[2] == pytest.approx(4.5, rel=1e-3)

    def test_fit_recovers_scale(self, rng):
        # A smooth field with ~unit variance: fitted sill is O(var).
        pts = rng.uniform(0, 100, (400, 2))
        vals = np.sin(pts[:, 0] / 15.0) + 0.1 * rng.standard_normal(400)
        sill, range_m, nugget = fit_variogram(pts, vals)
        assert 0.05 < sill < 5.0
        assert 1.0 <= range_m <= 150.0
        assert 0.0 <= nugget <= sill

    def test_fit_degenerate_inputs(self):
        sill, range_m, nugget = fit_variogram(np.zeros((2, 2)), np.zeros(2))
        assert sill > 0 and range_m > 0


class TestKriging:
    def test_exact_cells_preserved(self, grid):
        values = np.full(grid.shape, np.nan)
        values[3, 3] = 7.0
        values[10, 10] = 9.0
        out = kriging_interpolate(grid, values)
        assert out[3, 3] == 7.0
        assert out[10, 10] == 9.0

    def test_fills_everything(self, grid, rng):
        values = np.full(grid.shape, np.nan)
        idx = rng.choice(grid.num_cells, 30, replace=False)
        values.flat[idx] = rng.uniform(0, 10, 30)
        out = kriging_interpolate(grid, values)
        assert np.isfinite(out).all()

    def test_constant_field_reproduced(self, grid, rng):
        values = np.full(grid.shape, np.nan)
        idx = rng.choice(grid.num_cells, 25, replace=False)
        values.flat[idx] = 5.0
        out = kriging_interpolate(grid, values)
        np.testing.assert_allclose(out, 5.0, atol=1e-6)

    def test_smooth_field_accuracy_comparable_to_idw(self, grid, rng):
        # The paper's footnote: kriging offers marginal improvement
        # over IDW on radio-map-like fields.
        from repro.rem.idw import idw_interpolate

        gx, gy = grid.centers()
        truth = 10.0 * np.sin(gx / 6.0) + 5.0 * np.cos(gy / 8.0)
        values = np.full(grid.shape, np.nan)
        idx = rng.choice(grid.num_cells, 80, replace=False)
        values.flat[idx] = truth.flat[idx]
        krig = kriging_interpolate(grid, values)
        idw = idw_interpolate(grid, values)
        err_k = np.median(np.abs(krig - truth))
        err_i = np.median(np.abs(idw - truth))
        # Same ballpark: within a factor of two of each other.
        assert err_k < 2.0 * err_i + 0.5

    def test_no_measurements_uses_fallback(self, grid):
        values = np.full(grid.shape, np.nan)
        prior = np.full(grid.shape, 3.0)
        out = kriging_interpolate(grid, values, fallback=prior)
        np.testing.assert_allclose(out, 3.0)

    def test_validation(self, grid):
        with pytest.raises(ValueError):
            kriging_interpolate(grid, np.zeros(grid.shape), k_neighbors=0)
        with pytest.raises(ValueError):
            kriging_interpolate(grid, np.zeros((3, 3)))


class TestKrigingRows:
    """Row-band kriging must equal the sliced full interpolation."""

    def _sparse(self, grid, rng, n=30):
        values = np.full(grid.shape, np.nan)
        idx = rng.choice(grid.num_cells, n, replace=False)
        values.flat[idx] = rng.uniform(0, 10, n)
        return values

    @pytest.mark.parametrize("rows", [slice(0, 5), slice(5, 13), slice(17, 20)])
    def test_rows_match_full(self, grid, rng, rows):
        from repro.rem.kriging import kriging_interpolate_rows

        values = self._sparse(grid, rng)
        full = kriging_interpolate(grid, values)
        band = kriging_interpolate_rows(grid, values, rows)
        assert np.array_equal(band, full[rows])

    def test_rows_with_fallback_and_no_measurements(self, grid):
        from repro.rem.kriging import kriging_interpolate_rows

        values = np.full(grid.shape, np.nan)
        prior = np.arange(grid.num_cells, dtype=float).reshape(grid.shape)
        rows = slice(3, 9)
        band = kriging_interpolate_rows(grid, values, rows, fallback=prior)
        assert np.array_equal(band, prior[rows])

    def test_rows_via_interpolator_tile_protocol(self, grid, rng):
        from repro.rem.interpolate import KrigingInterpolator

        values = self._sparse(grid, rng, n=20)
        interp = KrigingInterpolator()
        rows = slice(4, 16)
        band = interp.interpolate_tile(grid, values, rows)
        assert np.array_equal(band, interp.interpolate(grid, values)[rows])

"""Tests for the experiment-harness helpers."""

import numpy as np
import pytest

from repro.experiments.common import (
    UAV_SPEED_MPS,
    budget_to_time_s,
    centroid_for,
    config_for,
    empirical_cdf,
    print_rows,
    scenario_for,
    skyran_for,
    uniform_for,
)
from repro.experiments.placement_common import TESTBED_ALTITUDE_M, run_scheme


class TestHelpers:
    def test_budget_time_conversion(self):
        assert budget_to_time_s(UAV_SPEED_MPS * 60.0) == pytest.approx(60.0)

    def test_empirical_cdf_monotone(self, rng):
        cdf = empirical_cdf(rng.uniform(0, 10, 50))
        assert np.all(np.diff(cdf["values"]) >= 0)
        assert cdf["cdf"][0] == pytest.approx(1 / 50)
        assert cdf["cdf"][-1] == pytest.approx(1.0)
        with pytest.raises(ValueError):
            empirical_cdf([])

    def test_print_rows_smoke(self, capsys):
        print_rows("title", [{"a": 1.5, "b": "x"}], "claim")
        out = capsys.readouterr().out
        assert "title" in out and "claim" in out and "1.500" in out
        print_rows("empty", [])
        assert "(no rows)" in capsys.readouterr().out

    def test_config_for_overrides(self):
        cfg = config_for(quick=True, reuse_radius_m=25.0)
        assert cfg.rem_cell_size_m == 4.0
        assert cfg.reuse_radius_m == 25.0


class TestFactories:
    def test_scenario_factory_terrains(self):
        sc = scenario_for("campus", n_ues=2, seed=0, quick=True)
        assert sc.terrain.name == "campus"
        assert len(sc.ues) == 2

    def test_controller_factories_bind_scenario(self):
        sc = scenario_for("campus", n_ues=2, seed=0, quick=True)
        ctrl = skyran_for(sc, seed=1, quick=True)
        assert ctrl.channel is sc.channel
        uni = uniform_for(sc, altitude=60.0, seed=1, quick=True)
        assert uni.altitude == 60.0
        cen = centroid_for(sc, altitude=55.0, seed=1, quick=True)
        assert cen.altitude == 55.0


class TestRunScheme:
    @pytest.fixture(scope="class")
    def scenario(self):
        return scenario_for("campus", n_ues=3, seed=2, quick=True)

    def test_skyran_contract(self, scenario):
        out = run_scheme(scenario, "skyran", budget_m=200.0, seed=0, quick=True)
        assert out["scheme"] == "skyran"
        assert out["altitude_m"] == TESTBED_ALTITUDE_M
        assert 0.0 <= out["relative_throughput"] <= 1.5
        assert np.isfinite(out["rem_error_db"])

    def test_centroid_has_no_rem(self, scenario):
        out = run_scheme(scenario, "centroid", budget_m=0.0, seed=0, quick=True)
        assert np.isnan(out["rem_error_db"])

    def test_unknown_scheme(self, scenario):
        with pytest.raises(ValueError):
            run_scheme(scenario, "oracle", budget_m=100.0)

"""Integration tests: full epochs of SkyRAN and the baselines.

These exercise the whole stack — scenario construction, flights, SRS
ranging, multilateration, REM estimation, planning, placement — on a
small world, asserting system-level invariants rather than exact
numbers.
"""

import numpy as np
import pytest

from repro.baselines.centroid import CentroidController
from repro.baselines.random_placement import RandomPlacementController
from repro.baselines.uniform import UniformController
from repro.core.config import SkyRANConfig
from repro.core.controller import SkyRANController
from repro.sim.runner import overhead_to_target, run_epochs
from repro.sim.scenario import Scenario


@pytest.fixture(scope="module")
def scenario():
    return Scenario.create("campus", n_ues=4, cell_size=4.0, seed=5)


@pytest.fixture()
def config():
    return SkyRANConfig(rem_cell_size_m=8.0, measurement_budget_m=300.0)


class TestSkyRANEpoch:
    @pytest.fixture(scope="class")
    def epoch(self):
        scenario = Scenario.create("campus", n_ues=4, cell_size=4.0, seed=5)
        cfg = SkyRANConfig(rem_cell_size_m=8.0)
        ctrl = SkyRANController(scenario.channel, scenario.enodeb, cfg, seed=1)
        result = ctrl.run_epoch(budget_m=300.0)
        return scenario, ctrl, result

    def test_localizes_every_ue(self, epoch):
        scenario, _, result = epoch
        assert set(result.ue_estimates) == {u.ue_id for u in scenario.ues}

    def test_localization_reasonable(self, epoch):
        _, _, result = epoch
        med = np.median(list(result.localization_errors_m.values()))
        assert med < 40.0

    def test_altitude_in_legal_band(self, epoch):
        _, ctrl, result = epoch
        assert ctrl.config.min_altitude_m <= result.altitude_m <= ctrl.config.max_altitude_m

    def test_placement_inside_area(self, epoch):
        scenario, _, result = epoch
        pos = result.placement.position
        assert scenario.grid.contains(pos.x, pos.y)

    def test_rem_maps_finite(self, epoch):
        _, ctrl, result = epoch
        for m in result.rem_maps.values():
            assert m.shape == ctrl.rem_grid.shape
            assert np.isfinite(m).all()

    def test_overhead_accounted(self, epoch):
        _, _, result = epoch
        assert result.flight_distance_m > result.plan.trajectory.length_m * 0.5
        assert result.flight_time_s > 0

    def test_placement_better_than_random(self, epoch):
        scenario, _, result = epoch
        rel = scenario.relative_throughput(result.placement.position)
        rng = np.random.default_rng(0)
        random_rels = []
        for _ in range(20):
            x = rng.uniform(0, scenario.grid.width)
            y = rng.uniform(0, scenario.grid.height)
            random_rels.append(
                scenario.relative_throughput(
                    np.array([x, y, result.altitude_m])
                )
            )
        assert rel > np.mean(random_rels)

    def test_trigger_armed_after_epoch(self, epoch):
        _, ctrl, _ = epoch
        assert ctrl.trigger.reference is not None
        assert not ctrl.needs_new_epoch()  # UEs have not moved

    def test_second_epoch_reuses_rems(self, epoch):
        _, ctrl, _ = epoch
        before = len(ctrl.rem_store)
        ctrl.run_epoch(budget_m=200.0)
        assert ctrl.rem_store.hits >= 1 or len(ctrl.rem_store) > before


class TestBaselines:
    def test_uniform_epoch(self, scenario, config):
        ctrl = UniformController(
            scenario.channel, scenario.enodeb, config, altitude=60.0, seed=2
        )
        result = ctrl.run_epoch(budget_m=400.0)
        assert scenario.grid.contains(result.placement.position.x, result.placement.position.y)
        assert len(result.rem_maps) == len(scenario.ues)
        assert result.flight_distance_m >= 400.0 * 0.9

    def test_uniform_epochs_interleave(self, scenario, config):
        ctrl = UniformController(
            scenario.channel, scenario.enodeb, config, altitude=60.0, seed=2
        )
        r1 = ctrl.run_epoch(budget_m=300.0)
        n1 = ctrl._rems[scenario.ues[0].ue_id].n_measured_cells
        ctrl.run_epoch(budget_m=300.0)
        n2 = ctrl._rems[scenario.ues[0].ue_id].n_measured_cells
        assert n2 > n1  # the second sweep visits new cells

    def test_centroid_epoch(self, scenario, config):
        ctrl = CentroidController(
            scenario.channel, scenario.enodeb, config, altitude=60.0, seed=3
        )
        result = ctrl.run_epoch()
        true_centroid = np.mean([u.xyz[:2] for u in scenario.ues], axis=0)
        d = np.hypot(
            result.position.x - true_centroid[0], result.position.y - true_centroid[1]
        )
        assert d < 40.0  # centroid of estimates near true centroid

    def test_random_placement(self):
        from repro.geo.grid import GridSpec

        ctrl = RandomPlacementController(GridSpec.from_extent(100, 100, 2.0), seed=4)
        p = ctrl.run_epoch()
        assert 0 <= p.x <= 100 and 0 <= p.y <= 100


class TestRunner:
    def test_run_epochs_records(self):
        scenario = Scenario.create("campus", n_ues=3, cell_size=4.0, seed=6)
        cfg = SkyRANConfig(rem_cell_size_m=8.0)
        ctrl = SkyRANController(scenario.channel, scenario.enodeb, cfg, seed=1)
        records = run_epochs(
            scenario, ctrl, n_epochs=2, budget_per_epoch_m=250.0, move_fraction=0.5, seed=0
        )
        assert len(records) == 2
        assert records[1].cumulative_time_s > records[0].cumulative_time_s
        assert records[0].moved_ues == ()
        assert len(records[1].moved_ues) >= 1
        assert 0.0 <= records[0].relative_throughput <= 1.5
        assert np.isfinite(records[0].rem_error_db)

    def test_overhead_to_target(self):
        from repro.sim.runner import EpochRecord

        recs = [
            EpochRecord(0, 100, 10, 100, 10, 0.5, 8.0, ()),
            EpochRecord(1, 100, 10, 200, 20, 0.95, 4.0, ()),
        ]
        assert overhead_to_target(recs, 0.9) == 20
        assert overhead_to_target(recs, 0.99) is None
        assert overhead_to_target(recs, metric="rem", target_rem_db=5.0) == 20

"""Unit tests for the Eq. 1-3 ToF estimator."""

import numpy as np
import pytest

from repro.lte.srs import SRSConfig, apply_channel, make_srs_symbol
from repro.lte.tof import ToFEstimator, estimate_delay_samples, upsample_freq


def _delayed(cfg, sym, delay):
    freqs = np.fft.fftfreq(cfg.n_fft) * cfg.n_fft
    return sym * np.exp(-2j * np.pi * freqs * delay / cfg.n_fft)


class TestUpsample:
    def test_factor_one_is_copy(self):
        x = np.arange(8, dtype=complex)
        out = upsample_freq(x, 1)
        np.testing.assert_array_equal(out, x)
        assert out is not x

    def test_length_scales(self):
        x = np.ones(16, dtype=complex)
        assert len(upsample_freq(x, 4)) == 64

    def test_zeros_in_middle(self):
        x = np.ones(8, dtype=complex)
        out = upsample_freq(x, 2)
        np.testing.assert_array_equal(out[:4], 1.0)
        np.testing.assert_array_equal(out[4:12], 0.0)
        np.testing.assert_array_equal(out[12:], 1.0)

    def test_interpolates_time_domain(self):
        # Upsampling the spectrum of a delta reproduces a sinc whose
        # every K-th sample matches the original IFFT.
        rng = np.random.default_rng(0)
        x = rng.standard_normal(32) + 1j * rng.standard_normal(32)
        orig = np.fft.ifft(x)
        up = np.fft.ifft(upsample_freq(x, 4))
        np.testing.assert_allclose(up[::4] * 4, orig, atol=1e-9)

    def test_rejects_bad_factor(self):
        with pytest.raises(ValueError):
            upsample_freq(np.ones(4, dtype=complex), 0)


class TestDelayEstimation:
    def test_integer_delay_exact(self):
        cfg = SRSConfig()
        sym = make_srs_symbol(cfg)
        for d in (0.0, 3.0, 17.0):
            rx = _delayed(cfg, sym, d)
            assert estimate_delay_samples(rx, sym, 4) == pytest.approx(d, abs=0.05)

    def test_fractional_delay_with_refinement(self):
        cfg = SRSConfig()
        sym = make_srs_symbol(cfg)
        for d in (2.3, 5.55, 9.8):
            rx = _delayed(cfg, sym, d)
            est = estimate_delay_samples(rx, sym, 4, refine=True)
            assert est == pytest.approx(d, abs=0.05)

    def test_raw_argmax_quantizes(self):
        cfg = SRSConfig()
        sym = make_srs_symbol(cfg)
        rx = _delayed(cfg, sym, 5.1)
        est = estimate_delay_samples(rx, sym, 4, refine=False)
        assert est == pytest.approx(round(5.1 * 4) / 4, abs=1e-9)

    def test_upsampling_improves_resolution(self):
        cfg = SRSConfig()
        sym = make_srs_symbol(cfg)
        rx = _delayed(cfg, sym, 4.4)
        coarse = estimate_delay_samples(rx, sym, 1, refine=False)
        fine = estimate_delay_samples(rx, sym, 8, refine=False)
        assert abs(fine - 4.4) < abs(coarse - 4.4) + 1e-9

    def test_negative_delay_wraps(self):
        cfg = SRSConfig()
        sym = make_srs_symbol(cfg)
        rx = _delayed(cfg, sym, -3.0)
        assert estimate_delay_samples(rx, sym, 4) == pytest.approx(-3.0, abs=0.05)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            estimate_delay_samples(np.ones(8, dtype=complex), np.ones(4, dtype=complex))

    def test_robust_to_noise(self, rng):
        cfg = SRSConfig()
        sym = make_srs_symbol(cfg)
        errs = []
        for d in np.linspace(2, 20, 12):
            rx = apply_channel(sym, cfg, d, snr_db=5.0, rng=rng)
            errs.append(abs(estimate_delay_samples(rx, sym, 4) - d))
        assert np.median(errs) < 0.15  # ~3 m at 10 MHz


class TestEstimatorWrapper:
    def test_range_resolution(self):
        est = ToFEstimator(SRSConfig(), upsampling=4)
        assert est.range_resolution_m == pytest.approx(19.5 / 4, abs=0.05)

    def test_range_conversion(self, rng):
        cfg = SRSConfig()
        est = ToFEstimator(cfg, upsampling=4)
        sym = make_srs_symbol(cfg)
        true_range = 150.0
        rx = apply_channel(sym, cfg, true_range / cfg.meters_per_sample, 20.0, rng)
        assert est.range_m(rx, sym) == pytest.approx(true_range, abs=3.0)

    def test_invalid_upsampling(self):
        with pytest.raises(ValueError):
            ToFEstimator(SRSConfig(), upsampling=0)

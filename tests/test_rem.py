"""Unit tests for the REM data structure, IDW, gradients and reductions."""

import numpy as np
import pytest

from repro.geo.grid import GridSpec
from repro.rem.accuracy import mean_abs_error_db, median_abs_error_db, rem_error_map
from repro.rem.aggregate import aggregate_rem, argmax_cell, min_snr_map
from repro.rem.gradient import gradient_map, high_gradient_cells
from repro.rem.idw import idw_interpolate
from repro.rem.map import REM


@pytest.fixture()
def grid10():
    return GridSpec.from_extent(10, 10, 1.0)


class TestREM:
    def test_measurements_average_per_cell(self, grid10):
        rem = REM(grid10, np.array([5.0, 5.0, 1.5]), altitude=50.0)
        xy = np.array([[2.2, 3.3], [2.4, 3.6], [7.0, 7.0]])
        rem.add_measurements(xy, np.array([10.0, 20.0, 5.0]))
        vals = rem.measured_values()
        assert vals[3, 2] == pytest.approx(15.0)
        assert vals[7, 7] == pytest.approx(5.0)
        assert rem.n_measured_cells == 2

    def test_unmeasured_cells_nan(self, grid10):
        rem = REM(grid10, np.array([5.0, 5.0, 1.5]), altitude=50.0)
        assert np.isnan(rem.measured_values()).all()

    def test_mismatched_lengths_rejected(self, grid10):
        rem = REM(grid10, np.zeros(3), altitude=50.0)
        with pytest.raises(ValueError):
            rem.add_measurements(np.zeros((2, 2)), np.zeros(3))

    def test_prior_shape_checked(self, grid10):
        with pytest.raises(ValueError):
            REM(grid10, np.zeros(3), 50.0, prior=np.zeros((5, 5)))

    def test_interpolated_uses_prior_when_empty(self, grid10):
        prior = np.full(grid10.shape, 7.0)
        rem = REM(grid10, np.zeros(3), 50.0, prior=prior)
        np.testing.assert_allclose(rem.interpolated(), 7.0)

    def test_rekeyed_shares_measurements(self, grid10):
        rem = REM(grid10, np.array([5.0, 5.0, 1.5]), 50.0)
        rem.add_measurements(np.array([[1.0, 1.0]]), np.array([3.0]))
        clone = rem.rekeyed(np.array([6.0, 6.0, 1.5]))
        assert clone.n_measured_cells == 1
        # ... by copy: mutating the clone must not touch the original.
        clone.add_measurements(np.array([[2.0, 2.0]]), np.array([4.0]))
        assert rem.n_measured_cells == 1

    def test_distance_to_position(self, grid10):
        rem = REM(grid10, np.array([0.0, 0.0, 1.5]), 50.0)
        assert rem.distance_to_position(np.array([3.0, 4.0, 1.5])) == pytest.approx(5.0)


class TestIDW:
    def test_exact_cells_preserved(self, grid10):
        values = np.full(grid10.shape, np.nan)
        values[2, 2] = 11.0
        out = idw_interpolate(grid10, values)
        assert out[2, 2] == 11.0

    def test_fills_all_nans(self, grid10):
        values = np.full(grid10.shape, np.nan)
        values[0, 0] = 1.0
        values[9, 9] = 9.0
        out = idw_interpolate(grid10, values)
        assert np.isfinite(out).all()

    def test_interpolation_within_bounds(self, grid10, rng):
        values = np.full(grid10.shape, np.nan)
        idx = rng.choice(100, 20, replace=False)
        values.flat[idx] = rng.uniform(0.0, 10.0, 20)
        out = idw_interpolate(grid10, values)
        assert out.min() >= np.nanmin(values) - 1e-9
        assert out.max() <= np.nanmax(values) + 1e-9

    def test_nearest_dominates(self, grid10):
        values = np.full(grid10.shape, np.nan)
        values[0, 0] = 0.0
        values[0, 1] = 100.0
        out = idw_interpolate(grid10, values, k_neighbors=2)
        # Cell (0, 2) is 1 cell from the 100 and 2 cells from the 0:
        # inverse-square weights give exactly (100/1 + 0/4)/(1 + 1/4).
        assert out[0, 2] == pytest.approx(80.0)

    def test_max_distance_falls_back_to_prior(self, grid10):
        values = np.full(grid10.shape, np.nan)
        values[0, 0] = 5.0
        prior = np.full(grid10.shape, -3.0)
        out = idw_interpolate(grid10, values, max_distance_m=2.0, fallback=prior)
        assert out[9, 9] == pytest.approx(-3.0)
        assert out[0, 1] != pytest.approx(-3.0)

    def test_no_measurements_no_prior_stays_nan(self, grid10):
        values = np.full(grid10.shape, np.nan)
        out = idw_interpolate(grid10, values)
        assert np.isnan(out).all()

    def test_invalid_params(self, grid10):
        values = np.zeros(grid10.shape)
        with pytest.raises(ValueError):
            idw_interpolate(grid10, values, power=0.0)
        with pytest.raises(ValueError):
            idw_interpolate(grid10, values, k_neighbors=0)
        with pytest.raises(ValueError):
            idw_interpolate(grid10, np.zeros((3, 3)))


class TestGradient:
    def test_flat_map_zero_gradient(self):
        g = gradient_map(np.full((5, 5), 3.0))
        np.testing.assert_allclose(g, 0.0)

    def test_step_edge_detected(self):
        m = np.zeros((6, 6))
        m[:, 3:] = 10.0
        g = gradient_map(m)
        assert g[2, 2] == pytest.approx(10.0)
        assert g[2, 3] == pytest.approx(10.0)
        assert g[2, 0] == pytest.approx(0.0)

    def test_diagonal_neighbours_counted(self):
        m = np.zeros((3, 3))
        m[0, 0] = 5.0
        g = gradient_map(m, diagonal=True)
        assert g[1, 1] == pytest.approx(5.0)
        g4 = gradient_map(m, diagonal=False)
        assert g4[1, 1] == pytest.approx(0.0)

    def test_nan_propagates(self):
        m = np.zeros((4, 4))
        m[1, 1] = np.nan
        g = gradient_map(m)
        assert np.isnan(g[1, 1])

    def test_high_gradient_median_threshold(self, rng):
        m = rng.uniform(0, 1, (20, 20))
        g = gradient_map(m)
        iy, ix = high_gradient_cells(g, 0.5)
        assert 0 < len(iy) <= 200 + 40  # about half, borders vary

    def test_threshold_quantile_validated(self):
        with pytest.raises(ValueError):
            high_gradient_cells(np.zeros((3, 3)), 1.0)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            gradient_map(np.zeros(5))


class TestAggregate:
    def test_sum_and_min(self):
        a = np.array([[1.0, 2.0], [3.0, 4.0]])
        b = np.array([[4.0, 3.0], [2.0, 1.0]])
        np.testing.assert_allclose(aggregate_rem([a, b]), [[5, 5], [5, 5]])
        np.testing.assert_allclose(min_snr_map([a, b]), [[1, 2], [2, 1]])

    def test_aggregate_ignores_nan(self):
        a = np.array([[1.0, np.nan]])
        b = np.array([[2.0, np.nan]])
        out = aggregate_rem([a, b])
        assert out[0, 0] == 3.0
        assert np.isnan(out[0, 1])

    def test_min_map_propagates_nan(self):
        a = np.array([[1.0, 2.0]])
        b = np.array([[np.nan, 1.0]])
        out = min_snr_map([a, b])
        assert np.isnan(out[0, 0])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            aggregate_rem([np.zeros((2, 2)), np.zeros((3, 3))])
        with pytest.raises(ValueError):
            aggregate_rem([])

    def test_argmax_cell(self):
        m = np.array([[1.0, 2.0], [5.0, 0.0]])
        assert argmax_cell(m) == (1, 0)

    def test_argmax_skips_nan(self):
        m = np.array([[np.nan, 2.0], [np.nan, np.nan]])
        assert argmax_cell(m) == (0, 1)
        with pytest.raises(ValueError):
            argmax_cell(np.full((2, 2), np.nan))


class TestAccuracy:
    def test_perfect_estimate_zero_error(self):
        m = np.random.default_rng(0).uniform(0, 10, (5, 5))
        assert median_abs_error_db(m, m) == 0.0

    def test_constant_bias(self):
        truth = np.zeros((4, 4))
        est = truth + 3.0
        assert median_abs_error_db(est, truth) == pytest.approx(3.0)
        assert mean_abs_error_db(est, truth) == pytest.approx(3.0)

    def test_nan_cells_ignored(self):
        truth = np.zeros((2, 2))
        est = np.array([[1.0, np.nan], [1.0, np.nan]])
        assert median_abs_error_db(est, truth) == pytest.approx(1.0)

    def test_all_nan_is_inf(self):
        truth = np.zeros((2, 2))
        est = np.full((2, 2), np.nan)
        assert median_abs_error_db(est, truth) == float("inf")

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            rem_error_map(np.zeros((2, 2)), np.zeros((3, 3)))

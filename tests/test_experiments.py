"""Smoke tests for the per-figure experiment modules and the CLI.

Heavy experiments run in the benchmark suite; here we execute the
light ones end to end and check the result contract (``rows`` +
``paper``) that the bench harness and EXPERIMENTS.md generator rely
on.
"""

import numpy as np
import pytest

from repro.experiments import REGISTRY
from repro.experiments.artifacts import roundtrip
from repro.experiments import (
    fig01_motivation,
    fig03_centroid_vs_optimal,
    fig07_pathloss_variation,
    fig08_altitude,
    fig12_epoch_length,
)
from repro.__main__ import main as cli_main


class TestRegistry:
    def test_every_paper_figure_registered(self):
        expected = {
            "fig1", "fig3", "fig4", "fig6", "fig7", "fig8", "fig9",
            "fig12", "fig14", "fig17", "fig18", "fig19", "fig20",
            "fig21", "fig23", "fig24", "fig26", "fig27", "fig28",
            "fig29", "fig30", "fig31", "headline",
        }
        assert expected <= set(REGISTRY)

    def test_ablations_registered(self):
        assert {k for k in REGISTRY if k.startswith("ablation-")} == {
            "ablation-upsampling",
            "ablation-interpolation",
            "ablation-gradient-threshold",
            "ablation-reuse-radius",
            "ablation-k-window",
        }


class TestLightExperiments:
    def test_fig01_contract(self):
        result = fig01_motivation.run(quick=True)
        assert "rows" in result and "paper" in result
        assert result["avg_map"].ndim == 2
        assert np.all(np.diff(result["cdf_values"]) >= 0)

    def test_fig03_contract(self):
        result = fig03_centroid_vs_optimal.run(quick=True, seeds=(0, 1))
        assert 0.0 <= result["mean_ratio"] <= 1.5
        assert result["rows"][-1]["seed"] == "mean"

    def test_fig07_swing(self):
        result = fig07_pathloss_variation.run(quick=True)
        row = result["rows"][0]
        assert row["max_pl_db"] > row["min_pl_db"]
        assert len(result["arc_m"]) == len(result["path_loss_db"])

    def test_fig08_interior_minimum(self):
        result = fig08_altitude.run(quick=True)
        row = result["rows"][0]
        assert row["loss_at_best_db"] <= row["loss_at_120m_db"]
        assert row["loss_at_best_db"] <= row["loss_at_10m_db"]

    def test_fig12_decay(self):
        result = fig12_epoch_length.run(
            quick=True, fractions=(0.5,), duration_min=20.0, step_min=10.0
        )
        row = result["rows"][0]
        assert row["epoch_at_10pct_min"] >= 0.0
        times, rel = result["curves"][0.5]
        assert rel[0] == pytest.approx(1.0)


@pytest.mark.experiments
class TestArtifactCache:
    """End-to-end runner contract: caching and parallelism change
    nothing about the results, byte for byte."""

    def test_warm_rerun_is_bit_identical_and_skips_compute(self, tmp_path):
        from repro.experiments.artifacts import ArtifactStore
        from repro.experiments.registry import run_experiment

        store = ArtifactStore(tmp_path)
        cold = run_experiment("fig7", quick=True, store=store)
        assert cold.computed == len(cold.params) and cold.cached == 0
        assert cold.perf_delta["counters"]["experiments.point.computed"] == len(
            cold.params
        )
        cold_bytes = cold.artifact_path.read_bytes()

        warm = run_experiment("fig7", quick=True, store=store)
        # Every point comes from disk: no point computation at all,
        # verified through the perf counters the runner itself keeps.
        assert warm.computed == 0 and warm.cached == len(warm.params)
        counters = warm.perf_delta["counters"]
        assert counters["experiments.point.cache_hit"] == len(warm.params)
        assert "experiments.point.computed" not in counters
        assert warm.records == cold.records
        assert roundtrip(warm.result) == roundtrip(cold.result)
        assert warm.artifact_path.read_bytes() == cold_bytes

    def test_force_recomputes_cached_points(self, tmp_path):
        from repro.experiments.artifacts import ArtifactStore
        from repro.experiments.registry import run_experiment

        store = ArtifactStore(tmp_path)
        run_experiment("fig7", quick=True, store=store)
        forced = run_experiment("fig7", quick=True, store=store, force=True)
        assert forced.computed == len(forced.params) and forced.cached == 0

    def test_parallel_matches_serial(self, tmp_path):
        from repro.experiments.artifacts import ArtifactStore
        from repro.experiments.registry import run_experiment

        serial = run_experiment(
            "fig3",
            quick=True,
            overrides={"seeds": (0, 1)},
            workers=1,
            store=ArtifactStore(tmp_path / "serial"),
        )
        parallel = run_experiment(
            "fig3",
            quick=True,
            overrides={"seeds": (0, 1)},
            workers=2,
            store=ArtifactStore(tmp_path / "parallel"),
        )
        assert parallel.workers == 2 and serial.workers == 1
        assert parallel.records == serial.records
        assert roundtrip(parallel.result) == roundtrip(serial.result)
        assert (
            parallel.artifact_path.read_bytes() == serial.artifact_path.read_bytes()
        )


class TestCLI:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig20" in out and "headline" in out

    def test_run_known(self, capsys):
        assert cli_main(["run", "fig7"]) == 0
        out = capsys.readouterr().out
        assert "swing_db" in out

    def test_run_unknown(self, capsys):
        assert cli_main(["run", "fig99"]) == 2

"""The array-backend seam: registry semantics and op bit-identity.

The contract under test is narrow but strict: whatever backend is
selected (env var, explicit name, fallback), every kernel result must
be bit-identical to the numpy reference.  On this container numba is
not installed, so the numba tests split in two: the fallback behavior
(warning + counter + numpy instance) is tested unconditionally, and
the real JIT equivalence test gates on ``importorskip``.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend import (
    BACKEND_ENV,
    available_backends,
    get_backend,
    reset_backend_cache,
)
from repro.backend.numpy_backend import NumpyBackend
from repro.perf import perf

pytestmark = pytest.mark.backend


def _has_numba() -> bool:
    try:
        import numba  # noqa: F401

        return True
    except ImportError:
        return False


@pytest.fixture(autouse=True)
def _fresh_registry(monkeypatch):
    """Isolate each test from cached instances and the env knob."""
    monkeypatch.delenv(BACKEND_ENV, raising=False)
    reset_backend_cache()
    yield
    reset_backend_cache()


# -- registry -------------------------------------------------------------------


def test_default_is_numpy():
    b = get_backend()
    assert b.name == "numpy"
    assert isinstance(b, NumpyBackend)


def test_available_names_resolve_or_fall_back():
    for name in available_backends():
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            assert get_backend(name) is not None


def test_unknown_backend_raises():
    with pytest.raises(ValueError, match="unknown backend"):
        get_backend("cupy")


def test_env_var_selects_backend(monkeypatch):
    monkeypatch.setenv(BACKEND_ENV, "numpy")
    assert get_backend().name == "numpy"


def test_resolution_is_cached():
    assert get_backend("numpy") is get_backend("numpy")
    reset_backend_cache()
    # A fresh instance after a cache reset, but still the same type.
    assert isinstance(get_backend("numpy"), NumpyBackend)


def test_numba_fallback_warns_once_and_counts(monkeypatch):
    if _has_numba():
        pytest.skip("numba installed; fallback path unreachable")
    monkeypatch.setenv(BACKEND_ENV, "numba")
    before = perf.counter("backend.fallback")
    with pytest.warns(RuntimeWarning, match="falling back"):
        b = get_backend()
    assert isinstance(b, NumpyBackend)
    assert perf.counter("backend.fallback") == before + 1
    # Second resolution: cached instance, no second warning.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert get_backend() is b


# -- op reference semantics -----------------------------------------------------


def test_count_below_matches_inline_reference():
    rng = np.random.default_rng(0)
    zs = rng.normal(10.0, 5.0, size=(37, 19))
    surface = rng.normal(10.0, 5.0, size=(37, 19))
    got = get_backend("numpy").count_below(zs, surface)
    expected = np.count_nonzero(zs < surface, axis=1)
    assert got.dtype == np.int64
    assert np.array_equal(got, expected)


def test_cis_matches_inline_reference_including_views():
    rng = np.random.default_rng(1)
    theta = rng.uniform(-np.pi, np.pi, size=24)
    buf = np.zeros(48, dtype=complex)
    out = get_backend("numpy").cis(theta, buf[:24])  # view, as the SRS kernel does
    expected = np.cos(theta) + 1j * np.sin(theta)
    assert np.array_equal(out, expected)
    assert np.array_equal(buf[:24], expected)
    assert np.all(buf[24:] == 0)


def test_mac_slab_serve_matches_scalar_recurrence():
    rng = np.random.default_rng(2)
    n, t = 11, 23
    grants = rng.integers(0, 5, size=(n, t))
    rates = rng.uniform(0.0, 2000.0, size=n)
    backlog0 = np.where(rng.random(n) < 0.5, np.inf, rng.uniform(0, 1e5, n))
    accepted = rng.uniform(0.0, 3000.0, size=(n, t))
    served, backlog_end = get_backend("numpy").mac_slab_serve(
        grants, rates, backlog0, accepted
    )
    exp_served = np.empty((n, t))
    exp_backlog = backlog0.copy()
    for i in range(n):
        b = backlog0[i]
        for j in range(t):
            avail = b + accepted[i, j]
            cap = grants[i, j] * rates[i]
            s = min(avail, cap)
            exp_served[i, j] = s
            b = avail - s
        exp_backlog[i] = b
    # The scalar drain above carries backlog across TTIs; the slab op
    # is only valid when the backlog is invariant (full-buffer inf, or
    # arrivals exactly drained).  Use the full-buffer rows for the
    # carried comparison and all rows for the per-TTI service.
    fb = np.isinf(backlog0)
    assert np.array_equal(served[fb], exp_served[fb])
    assert np.array_equal(backlog_end[fb], exp_backlog[fb])
    # Per-TTI service with an invariant backlog is the documented
    # independent form: min(b0 + accepted, cap).
    cap = grants * rates[:, None]
    assert np.array_equal(served, np.minimum(backlog0[:, None] + accepted, cap))


def test_mac_slab_serve_zero_tti():
    backlog0 = np.array([np.inf, 123.0])
    served, backlog_end = get_backend("numpy").mac_slab_serve(
        np.zeros((2, 0), dtype=np.int64),
        np.array([100.0, 50.0]),
        backlog0,
        np.zeros((2, 0)),
    )
    assert served.shape == (2, 0)
    assert np.array_equal(backlog_end, backlog0)
    assert backlog_end is not backlog0


# -- env invariance (the fallback makes numba == numpy on this machine) ---------


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    n_rays=st.integers(1, 16),
    n_samples=st.integers(1, 32),
)
def test_results_invariant_to_backend_env_without_numba(seed, n_rays, n_samples):
    """With numba absent, every env value yields numpy-identical results."""
    if _has_numba():
        pytest.skip("numba installed; the env genuinely changes backends")
    rng = np.random.default_rng(seed)
    zs = rng.normal(0.0, 3.0, size=(n_rays, n_samples))
    surface = rng.normal(0.0, 3.0, size=(n_rays, n_samples))
    theta = rng.uniform(-4.0, 4.0, size=n_samples)
    results = {}
    for env in ("numpy", "numba"):
        reset_backend_cache()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            b = get_backend(env)
        out = np.zeros(n_samples, dtype=complex)
        results[env] = (b.count_below(zs, surface).copy(), b.cis(theta, out).copy())
    assert np.array_equal(results["numpy"][0], results["numba"][0])
    assert np.array_equal(results["numpy"][1], results["numba"][1])


# -- real numba equivalence (runs only where numba exists) ----------------------


@pytest.mark.skipif(not _has_numba(), reason="numba not installed")
def test_numba_ops_bit_identical_to_numpy():
    from repro.backend.numba_backend import NumbaBackend

    rng = np.random.default_rng(3)
    zs = rng.normal(10.0, 5.0, size=(29, 41))
    surface = rng.normal(10.0, 5.0, size=(29, 41))
    grants = rng.integers(0, 6, size=(13, 17))
    rates = rng.uniform(0.0, 2000.0, size=13)
    backlog0 = np.where(rng.random(13) < 0.5, np.inf, 0.0)
    accepted = rng.uniform(0.0, 3000.0, size=(13, 17))

    ref = NumpyBackend()
    jit = NumbaBackend()
    assert np.array_equal(
        jit.count_below(zs, surface), ref.count_below(zs, surface)
    )
    s_jit, b_jit = jit.mac_slab_serve(grants, rates, backlog0, accepted)
    s_ref, b_ref = ref.mac_slab_serve(grants, rates, backlog0, accepted)
    assert np.array_equal(s_jit, s_ref)
    assert np.array_equal(b_jit, b_ref)


# -- the seam end to end: a kernel result does not depend on the env knob -------


def test_raytrace_result_invariant_to_backend_env(box_terrain, monkeypatch):
    from repro.channel.raytrace import obstructed_lengths

    tx = np.array([[50.0, 50.0, 80.0]])
    rx = np.array([[10.0, 90.0, 1.5]])

    monkeypatch.setenv(BACKEND_ENV, "numpy")
    reset_backend_cache()
    a = obstructed_lengths(box_terrain, tx, rx, 1.0)
    monkeypatch.setenv(BACKEND_ENV, "numba")
    reset_backend_cache()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        b = obstructed_lengths(box_terrain, tx, rx, 1.0)
    assert np.array_equal(a, b)

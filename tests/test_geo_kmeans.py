"""Unit tests for the K-means implementation."""

import numpy as np
import pytest

from repro.geo.kmeans import kmeans


def _blobs(rng, centers, n_per=50, spread=0.5):
    pts = []
    for c in centers:
        pts.append(rng.normal(c, spread, (n_per, len(c))))
    return np.vstack(pts)


class TestKMeans:
    def test_recovers_separated_blobs(self, rng):
        truth = [(0.0, 0.0), (20.0, 0.0), (0.0, 20.0)]
        pts = _blobs(rng, truth)
        result = kmeans(pts, 3, seed=0)
        # Each true center should have a recovered center nearby.
        for c in truth:
            d = np.min(np.hypot(*(result.centers - np.array(c)).T))
            assert d < 2.0

    def test_labels_match_nearest_center(self, rng):
        pts = rng.uniform(0, 10, (60, 2))
        result = kmeans(pts, 4, seed=1)
        d = np.hypot(
            pts[:, 0][:, None] - result.centers[:, 0][None, :],
            pts[:, 1][:, None] - result.centers[:, 1][None, :],
        )
        np.testing.assert_array_equal(result.labels, np.argmin(d, axis=1))

    def test_k_equals_n(self, rng):
        pts = rng.uniform(0, 10, (5, 2))
        result = kmeans(pts, 5, seed=0)
        assert result.inertia == pytest.approx(0.0, abs=1e-9)

    def test_k_one_gives_mean(self, rng):
        pts = rng.uniform(0, 10, (40, 2))
        result = kmeans(pts, 1, seed=0)
        np.testing.assert_allclose(result.centers[0], pts.mean(axis=0), atol=1e-8)

    def test_deterministic_given_seed(self, rng):
        pts = rng.uniform(0, 10, (50, 2))
        a = kmeans(pts, 3, seed=42)
        b = kmeans(pts, 3, seed=42)
        np.testing.assert_allclose(a.centers, b.centers)

    def test_weights_pull_centroids(self, rng):
        pts = np.array([[0.0, 0.0], [10.0, 0.0]] * 10)
        w = np.array([10.0, 0.1] * 10)
        result = kmeans(pts, 1, seed=0, weights=w)
        # Heavy points at x=0 dominate.
        assert result.centers[0, 0] < 1.0

    def test_invalid_k(self, rng):
        pts = rng.uniform(0, 1, (5, 2))
        with pytest.raises(ValueError):
            kmeans(pts, 0)
        with pytest.raises(ValueError):
            kmeans(pts, 6)

    def test_negative_weights_rejected(self, rng):
        pts = rng.uniform(0, 1, (5, 2))
        with pytest.raises(ValueError):
            kmeans(pts, 2, weights=np.array([1, 1, 1, 1, -1.0]))

    def test_duplicate_points_handled(self):
        pts = np.zeros((20, 2))
        result = kmeans(pts, 3, seed=0)
        assert result.inertia == pytest.approx(0.0, abs=1e-12)

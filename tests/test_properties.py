"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.grid import GridSpec
from repro.geo.paths import resample_polyline, truncate_polyline
from repro.geo.points import polyline_length
from repro.geo.tsp import solve_tsp, tour_length
from repro.lte.srs import zadoff_chu
from repro.lte.throughput import spectral_efficiency, throughput_mbps
from repro.lte.tof import upsample_freq
from repro.rem.aggregate import min_snr_map
from repro.rem.idw import idw_interpolate

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def grids(draw):
    nx = draw(st.integers(min_value=1, max_value=40))
    ny = draw(st.integers(min_value=1, max_value=40))
    cell = draw(st.floats(min_value=0.1, max_value=25.0))
    ox = draw(st.floats(min_value=-1e4, max_value=1e4))
    oy = draw(st.floats(min_value=-1e4, max_value=1e4))
    return GridSpec(ox, oy, cell, nx, ny)


@st.composite
def polylines(draw):
    n = draw(st.integers(min_value=2, max_value=12))
    pts = draw(
        st.lists(
            st.tuples(
                st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
                st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
            ),
            min_size=n,
            max_size=n,
        )
    )
    return np.asarray(pts)


class TestGridProperties:
    @given(grids(), st.floats(-2e4, 2e4), st.floats(-2e4, 2e4))
    @settings(max_examples=80, deadline=None)
    def test_cell_of_always_valid(self, grid, x, y):
        ix, iy = grid.cell_of(x, y)
        assert 0 <= ix < grid.nx
        assert 0 <= iy < grid.ny

    @given(grids())
    @settings(max_examples=40, deadline=None)
    def test_center_roundtrip(self, grid):
        ix, iy = grid.nx - 1, grid.ny - 1
        x, y = grid.center_of(ix, iy)
        assert grid.cell_of(x, y) == (ix, iy)

    @given(grids(), st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_coarsen_preserves_extent_lower_bound(self, grid, factor):
        c = grid.coarsen(factor)
        assert c.num_cells <= grid.num_cells
        assert c.width <= grid.width + grid.cell_size * factor


class TestPolylineProperties:
    @given(polylines(), st.floats(min_value=0.0, max_value=5e3))
    @settings(max_examples=80, deadline=None)
    def test_truncate_never_exceeds_budget(self, poly, budget):
        out = truncate_polyline(poly, budget)
        assert polyline_length(out) <= budget + 1e-6

    @given(polylines(), st.floats(min_value=0.5, max_value=100.0))
    @settings(max_examples=80, deadline=None)
    def test_resample_preserves_endpoints_and_length(self, poly, spacing):
        out = resample_polyline(poly, spacing)
        np.testing.assert_allclose(out[0], poly[0], atol=1e-9)
        total = polyline_length(poly)
        if total > 0:
            np.testing.assert_allclose(out[-1], poly[-1], atol=1e-9)
            # Resampling a polyline can only shorten it (chords).
            assert polyline_length(out) <= total + 1e-6


class TestTSPProperties:
    @given(st.integers(2, 9), st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_solution_is_permutation(self, n, seed):
        pts = np.random.default_rng(seed).uniform(0, 100, (n, 2))
        order = solve_tsp(pts)
        assert sorted(order) == list(range(n))

    @given(st.integers(3, 9), st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_tour_no_longer_than_input_order(self, n, seed):
        pts = np.random.default_rng(seed).uniform(0, 100, (n, 2))
        order = solve_tsp(pts, start=0)
        assert tour_length(pts, order) <= tour_length(pts, list(range(n))) + 1e-9


class TestLTEProperties:
    @given(st.integers(1, 100))
    @settings(max_examples=50, deadline=None)
    def test_zadoff_chu_unit_modulus(self, root):
        length = 139
        if np.gcd(root, length) != 1 or not 0 < root < length:
            return
        zc = zadoff_chu(root, length)
        np.testing.assert_allclose(np.abs(zc), 1.0, atol=1e-10)

    @given(st.integers(1, 6), st.integers(0, 500))
    @settings(max_examples=40, deadline=None)
    def test_upsample_preserves_energy(self, factor, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(32) + 1j * rng.standard_normal(32)
        up = upsample_freq(x, factor)
        np.testing.assert_allclose(
            np.sum(np.abs(up) ** 2), np.sum(np.abs(x) ** 2), rtol=1e-12
        )
        assert len(up) == 32 * factor

    @given(st.floats(-30.0, 40.0), st.floats(-30.0, 40.0))
    @settings(max_examples=80, deadline=None)
    def test_throughput_monotone_in_snr(self, a, b):
        lo, hi = min(a, b), max(a, b)
        assert throughput_mbps(lo) <= throughput_mbps(hi) + 1e-9
        assert spectral_efficiency(lo) <= spectral_efficiency(hi) + 1e-9

    @given(st.floats(-30.0, 40.0))
    @settings(max_examples=50, deadline=None)
    def test_throughput_non_negative(self, snr):
        assert throughput_mbps(snr) >= 0.0


class TestREMProperties:
    @given(st.integers(0, 200), st.integers(1, 99))
    @settings(max_examples=40, deadline=None)
    def test_idw_bounded_by_measured_extremes(self, seed, n_measured):
        rng = np.random.default_rng(seed)
        grid = GridSpec.from_extent(20, 20, 2.0)
        values = np.full(grid.shape, np.nan)
        idx = rng.choice(grid.num_cells, size=min(n_measured, grid.num_cells), replace=False)
        values.flat[idx] = rng.uniform(-20.0, 40.0, len(idx))
        out = idw_interpolate(grid, values)
        assert np.nanmin(out) >= np.nanmin(values) - 1e-9
        assert np.nanmax(out) <= np.nanmax(values) + 1e-9

    @given(st.integers(0, 100), st.integers(1, 5))
    @settings(max_examples=40, deadline=None)
    def test_min_map_lower_bounds_every_ue(self, seed, n_ues):
        rng = np.random.default_rng(seed)
        maps = [rng.uniform(-10, 30, (8, 8)) for _ in range(n_ues)]
        mm = min_snr_map(maps)
        for m in maps:
            assert np.all(mm <= m + 1e-12)

"""Unit tests for free-space path loss."""

import numpy as np
import pytest

from repro.channel.fspl import (
    DEFAULT_FREQ_HZ,
    MIN_DISTANCE_M,
    SPEED_OF_LIGHT,
    fspl_db,
    fspl_map,
)
from repro.geo.grid import GridSpec


class TestFsplDb:
    def test_known_value(self):
        # FSPL at 1 km, 2.6 GHz: 20 log10(4 pi 1000 f / c) ~ 100.75 dB.
        expected = 20 * np.log10(4 * np.pi * 1000.0 * 2.6e9 / SPEED_OF_LIGHT)
        assert fspl_db(1000.0, 2.6e9) == pytest.approx(expected)

    def test_six_db_per_distance_doubling(self):
        assert fspl_db(200.0) - fspl_db(100.0) == pytest.approx(20 * np.log10(2))

    def test_frequency_scaling(self):
        assert fspl_db(100.0, 5.2e9) - fspl_db(100.0, 2.6e9) == pytest.approx(
            20 * np.log10(2)
        )

    def test_clamps_tiny_distance(self):
        assert fspl_db(0.0) == fspl_db(MIN_DISTANCE_M)

    def test_scalar_returns_float(self):
        assert isinstance(fspl_db(10.0), float)

    def test_array_input(self):
        d = np.array([10.0, 100.0, 1000.0])
        out = fspl_db(d)
        assert out.shape == (3,)
        assert np.all(np.diff(out) > 0)

    def test_rejects_bad_freq(self):
        with pytest.raises(ValueError):
            fspl_db(10.0, 0.0)


class TestFsplMap:
    def test_minimum_above_ue(self):
        g = GridSpec.from_extent(100, 100, 2.0)
        ue = np.array([50.0, 50.0, 1.5])
        m = fspl_map(g, ue, altitude=60.0)
        iy, ix = np.unravel_index(np.argmin(m), m.shape)
        x, y = g.center_of(ix, iy)
        assert abs(x - 50.0) <= 2.0 and abs(y - 50.0) <= 2.0

    def test_map_shape(self):
        g = GridSpec.from_extent(100, 80, 2.0)
        m = fspl_map(g, np.array([0.0, 0.0, 0.0]), altitude=50.0)
        assert m.shape == g.shape

    def test_map_matches_pointwise(self):
        g = GridSpec.from_extent(40, 40, 4.0)
        ue = np.array([10.0, 10.0, 1.5])
        m = fspl_map(g, ue, altitude=30.0, freq_hz=DEFAULT_FREQ_HZ)
        x, y = g.center_of(3, 7)
        d = np.sqrt((x - 10) ** 2 + (y - 10) ** 2 + (30 - 1.5) ** 2)
        assert m[7, 3] == pytest.approx(fspl_db(d))

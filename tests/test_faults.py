"""Fault injection and degraded-mode control (the chaos suite).

Three guarantees are pinned here:

1. **Bit-identity off**: with no faults (or an all-zero plan) every
   epoch record equals the fault-free run exactly — the fault subsystem
   is invisible until armed.
2. **Determinism on**: the same :class:`FaultPlan` seed reproduces a
   chaos run bit-for-bit.
3. **Graceful degradation**: each fault kind, injected into the phase
   it attacks (localization / REM measurement / serving), never raises;
   every fault fired and every fallback taken shows up in the
   ``faults.*`` / ``fallback.*`` perf counters.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import SkyRANConfig
from repro.core.epoch import EpochTrigger
from repro.faults import FaultInjector, FaultPlan, as_injector
from repro.localization.multilateration import (
    ransac_inlier_mask,
    solve_multilateration,
)
from repro.localization.ranging import GpsRange
from repro.perf import perf
from repro.rem.idw import idw_interpolate
from repro.rem.interpolate import (
    available_interpolators,
    make_interpolator,
    register_interpolator,
)
from repro.sim.runner import RunResult, run_simulation
from repro.sim.scenario import Scenario

pytestmark = pytest.mark.chaos


@pytest.fixture(scope="module")
def chaos_scenario() -> Scenario:
    """Small campus world shared by the chaos-matrix runs."""
    return Scenario.create("campus", n_ues=3, cell_size=8.0, seed=3)


def _cfg() -> SkyRANConfig:
    return SkyRANConfig(rem_cell_size_m=16.0, measurement_budget_m=250.0)


def _run(scenario, faults=None, scheme: str = "skyran", n_epochs: int = 2) -> RunResult:
    return run_simulation(
        scenario,
        _cfg(),
        faults,
        scheme=scheme,
        n_epochs=n_epochs,
        budget_per_epoch_m=250.0,
        seed=7,
        altitude=60.0,
    )


# -- config/plan validation -------------------------------------------------------


class TestValidation:
    def test_config_is_keyword_only(self):
        with pytest.raises(TypeError):
            SkyRANConfig(30.0)

    def test_plan_is_keyword_only(self):
        with pytest.raises(TypeError):
            FaultPlan(3)

    @pytest.mark.parametrize(
        "bad",
        [
            {"srs_drop_rate": -0.1},
            {"srs_drop_rate": 1.5},
            {"snr_corrupt_rate": 2.0},
            {"gps_blackout_duration_s": -1.0},
            {"wind_speed_mps": -2.0},
            {"tof_outlier_bias_m": -5.0},
        ],
    )
    def test_plan_rejects_bad_rates(self, bad):
        with pytest.raises(ValueError):
            FaultPlan(**bad)

    @pytest.mark.parametrize(
        "bad",
        [
            {"measurement_budget_m": -1.0},
            {"rem_cell_size_m": 0.0},
            {"reuse_radius_m": -1.0},
            {"epoch_debounce": 0},
            {"localization_max_retries": -1},
            {"min_inlier_fraction": 1.5},
            {"interpolator": "spline-of-mystery"},
        ],
    )
    def test_config_rejects_bad_values(self, bad):
        with pytest.raises(ValueError):
            SkyRANConfig(**bad)

    def test_unknown_interpolator_message_lists_known(self):
        with pytest.raises(ValueError, match="idw"):
            SkyRANConfig(interpolator="nope")

    def test_as_injector_coercion(self):
        assert as_injector(None) is None
        plan = FaultPlan(seed=1)
        inj = as_injector(plan)
        assert isinstance(inj, FaultInjector)
        assert as_injector(inj) is inj
        with pytest.raises(TypeError):
            as_injector("storm")

    def test_plan_activity_flags(self):
        assert not FaultPlan.none().active
        assert FaultPlan(srs_drop_rate=0.1).srs_active
        assert FaultPlan(wind_speed_mps=1.0).wind_active
        assert "srs_drop_rate" in FaultPlan(srs_drop_rate=0.1).describe()


# -- the chaos matrix -------------------------------------------------------------

#: Each fault kind with the phase of the epoch it attacks.
CHAOS_MATRIX = [
    ("srs_drop", "localization", FaultPlan(seed=5, srs_drop_rate=0.5)),
    ("srs_delay", "localization", FaultPlan(seed=5, srs_delay_rate=0.5, srs_delay_max_s=0.05)),
    ("tof_outlier", "localization", FaultPlan(seed=5, tof_outlier_rate=0.15)),
    ("gps_blackout", "rem", FaultPlan(seed=5, gps_blackout_rate_per_s=0.08, gps_blackout_duration_s=2.0)),
    ("snr_drop", "rem", FaultPlan(seed=5, snr_drop_rate=0.5)),
    ("snr_corrupt", "rem", FaultPlan(seed=5, snr_corrupt_rate=0.3)),
    ("wind", "serve", FaultPlan(seed=5, wind_speed_mps=1.5)),
]


class TestChaosMatrix:
    @pytest.mark.parametrize(
        "kind,phase,plan", CHAOS_MATRIX, ids=[m[0] for m in CHAOS_MATRIX]
    )
    def test_fault_kind_never_raises_and_counts(self, chaos_scenario, kind, phase, plan):
        out = _run(chaos_scenario, plan, n_epochs=1)
        assert out.total_faults > 0, f"{kind} fired no faults.* counter"
        rec = out.final
        assert np.isfinite(rec.relative_throughput)
        assert 0.0 <= rec.relative_throughput <= 1.0 + 1e-9
        assert np.isfinite(rec.flight_distance_m)
        assert rec.altitude_m == 60.0

    def test_everything_at_once(self, chaos_scenario):
        plan = FaultPlan(
            seed=11,
            srs_drop_rate=0.6,
            srs_delay_rate=0.2,
            gps_blackout_rate_per_s=0.05,
            tof_outlier_rate=0.1,
            wind_speed_mps=1.0,
            snr_drop_rate=0.3,
            snr_corrupt_rate=0.1,
        )
        out = _run(chaos_scenario, plan)
        assert len(out.records) == 2
        assert out.total_faults > 0
        for rec in out.records:
            assert np.isfinite(rec.relative_throughput)

    @pytest.mark.parametrize("scheme", ["uniform", "centroid"])
    def test_baselines_survive_chaos(self, chaos_scenario, scheme):
        plan = FaultPlan(
            seed=4, srs_drop_rate=0.5, snr_drop_rate=0.5, wind_speed_mps=1.0
        )
        out = _run(chaos_scenario, plan, scheme=scheme, n_epochs=1)
        assert out.scheme == scheme
        assert np.isfinite(out.final.relative_throughput)

    def test_starved_localization_falls_back(self, chaos_scenario):
        # Total SRS loss: the solver starves and the controller must
        # fall back (retry / reuse / blind) instead of raising.
        plan = FaultPlan(seed=2, srs_drop_rate=1.0)
        out = _run(chaos_scenario, plan, n_epochs=1)
        assert np.isfinite(out.final.relative_throughput)
        assert out.total_fallbacks > 0


# -- determinism and bit-identity -------------------------------------------------


class TestDeterminism:
    def test_same_plan_reproduces_bit_for_bit(self, chaos_scenario):
        plan = FaultPlan(seed=13, srs_drop_rate=0.4, snr_corrupt_rate=0.2, wind_speed_mps=0.8)
        a = _run(Scenario.create("campus", n_ues=3, cell_size=8.0, seed=3), plan)
        b = _run(Scenario.create("campus", n_ues=3, cell_size=8.0, seed=3), plan)
        assert a.records == b.records
        assert a.fault_counters == b.fault_counters
        assert a.fallback_counters == b.fallback_counters

    def test_zero_plan_is_bit_identical_to_no_plan(self):
        a = _run(Scenario.create("campus", n_ues=3, cell_size=8.0, seed=3), None)
        b = _run(Scenario.create("campus", n_ues=3, cell_size=8.0, seed=3), FaultPlan.none(seed=99))
        assert a.records == b.records
        assert b.fault_counters == {}

    def test_fault_free_counters_empty(self, chaos_scenario):
        out = _run(chaos_scenario, None, n_epochs=1)
        assert out.fault_counters == {}
        assert out.fallback_counters == {}

    def test_channel_streams_independent(self):
        # Raising the SNR rates must not change which SRS bursts drop.
        t = np.linspace(0.0, 5.0, 400)
        a = FaultInjector(FaultPlan(seed=21, srs_drop_rate=0.3))
        b = FaultInjector(FaultPlan(seed=21, srs_drop_rate=0.3, snr_drop_rate=0.9))
        keep_a, _ = a.srs_faults(t)
        keep_b, _ = b.srs_faults(t)
        assert np.array_equal(keep_a, keep_b)


# -- interpolator registry --------------------------------------------------------


class TestInterpolatorRegistry:
    def test_registry_lists_builtins(self):
        names = available_interpolators()
        assert "idw" in names and "kriging" in names

    def test_idw_matches_direct_call(self, chaos_scenario):
        grid = chaos_scenario.grid.coarsen(4)
        rng = np.random.default_rng(0)
        values = np.full(grid.shape, np.nan)
        idx = rng.choice(grid.num_cells, size=30, replace=False)
        values.flat[idx] = rng.normal(10.0, 5.0, 30)
        via_registry = make_interpolator("idw", power=2.0, k_neighbors=8).interpolate(
            grid, values
        )
        direct = idw_interpolate(grid, values, power=2.0, k_neighbors=8)
        assert np.array_equal(via_registry, direct)

    def test_unknown_params_filtered(self):
        interp = make_interpolator("kriging", power=2.0, k_neighbors=6)
        assert interp.k_neighbors == 6  # power silently dropped

    def test_register_and_resolve_custom(self):
        class Mean:
            def interpolate(self, grid, values, measured_mask=None, fallback=None):
                out = np.asarray(values, dtype=float).copy()
                out[np.isnan(out)] = np.nanmean(out)
                return out

        register_interpolator("mean-test", lambda **kw: Mean())
        try:
            assert "mean-test" in available_interpolators()
            cfg = SkyRANConfig(interpolator="mean-test")
            assert cfg.interpolator == "mean-test"
        finally:
            from repro.rem.interpolate import _REGISTRY

            _REGISTRY.pop("mean-test", None)

    def test_measured_mask_equivalent_to_nan(self):
        grid = Scenario.create("campus", n_ues=1, cell_size=8.0, seed=0).grid.coarsen(4)
        rng = np.random.default_rng(1)
        full = rng.normal(0.0, 3.0, grid.shape)
        mask = rng.random(grid.shape) < 0.2
        nanned = np.where(mask, full, np.nan)
        interp = make_interpolator("idw")
        a = interp.interpolate(grid, nanned)
        b = interp.interpolate(grid, full, measured_mask=mask)
        assert np.array_equal(a, b)


# -- unit-level hardening ---------------------------------------------------------


class TestEpochDebounce:
    def test_single_transient_breach_suppressed(self):
        trig = EpochTrigger(margin=0.1, debounce=2)
        trig.reset(10.0)
        before = perf.counter("fallback.epoch_debounced")
        assert trig.update(1.0) is False  # first breach debounced
        assert perf.counter("fallback.epoch_debounced") == before + 1
        assert trig.update(9.5) is False  # recovery resets the streak
        assert trig.update(1.0) is False
        assert trig.update(1.0) is True  # sustained breach fires

    def test_debounce_one_is_instant(self):
        trig = EpochTrigger(margin=0.1, debounce=1)
        trig.reset(10.0)
        assert trig.update(1.0) is True

    def test_debounce_validation(self):
        with pytest.raises(ValueError):
            EpochTrigger(margin=0.1, debounce=0)


class TestRansac:
    def _make_obs(self, n_outliers: int):
        rng = np.random.default_rng(3)
        ue = np.array([50.0, 40.0, 1.5])
        t = np.linspace(0.0, 10.0, 40)
        anchors = np.column_stack(
            [20.0 + 6.0 * t, 30.0 + 2.0 * np.sin(t), np.full_like(t, 60.0)]
        )
        ranges = np.linalg.norm(anchors - ue, axis=1) + rng.normal(0.0, 0.5, len(t))
        ranges[:n_outliers] += 300.0  # gross multipath spikes
        return [
            GpsRange(t_s=float(tt), gps_xyz=a, range_m=float(r))
            for tt, a, r in zip(t, anchors, ranges)
        ], ue

    def test_mask_rejects_gross_outliers(self):
        obs, _ = self._make_obs(n_outliers=6)
        anchors = np.array([o.gps_xyz for o in obs])
        ranges = np.array([o.range_m for o in obs])
        mask = ransac_inlier_mask(anchors, ranges, iters=16, seed=1)
        assert not mask[:6].any()
        assert mask[6:].sum() >= 30

    def test_solver_recovers_with_ransac(self):
        obs, ue = self._make_obs(n_outliers=6)
        hardened = solve_multilateration(obs, ransac_iters=16)
        err_hard = np.hypot(hardened.position[0] - ue[0], hardened.position[1] - ue[1])
        assert hardened.inlier_fraction < 1.0
        assert err_hard < 10.0

    def test_default_path_untouched(self):
        obs, _ = self._make_obs(n_outliers=0)
        res = solve_multilateration(obs)
        assert res.inlier_fraction == 1.0
        assert res.quality_ok

"""Tests for the :mod:`repro.perf` timer/counter registry."""

from __future__ import annotations

import json

from repro.perf import PerfRegistry, SpanStat, perf


def test_span_accumulates_calls_and_time():
    reg = PerfRegistry()
    for _ in range(3):
        with reg.span("work"):
            pass
    spans = reg.spans()
    assert spans["work"].calls == 3
    assert spans["work"].total_s >= 0.0
    assert spans["work"].mean_s == spans["work"].total_s / 3


def test_span_records_on_exception():
    reg = PerfRegistry()
    try:
        with reg.span("boom"):
            raise ValueError("x")
    except ValueError:
        pass
    assert reg.spans()["boom"].calls == 1


def test_counters_accumulate_and_default_to_zero():
    reg = PerfRegistry()
    assert reg.counter("never") == 0
    reg.count("hits")
    reg.count("hits", 4)
    assert reg.counter("hits") == 5
    assert reg.counters() == {"hits": 5}


def test_snapshot_is_json_ready():
    reg = PerfRegistry()
    with reg.span("a"):
        reg.count("c", 2)
    snap = reg.snapshot()
    json.dumps(snap)  # must not raise
    assert snap["spans"]["a"]["calls"] == 1
    assert snap["counters"]["c"] == 2


def test_reset_clears_everything():
    reg = PerfRegistry()
    with reg.span("a"):
        pass
    reg.count("c")
    reg.reset()
    assert reg.spans() == {}
    assert reg.counters() == {}


def test_disabled_registry_records_nothing():
    reg = PerfRegistry(enabled=False)
    with reg.span("a"):
        reg.count("c")
    assert reg.spans() == {}
    assert reg.counters() == {}


def test_dump_writes_snapshot_json(tmp_path):
    reg = PerfRegistry()
    reg.count("c", 7)
    path = tmp_path / "perf.json"
    reg.dump(str(path))
    data = json.loads(path.read_text())
    assert data["counters"]["c"] == 7


def test_report_lines_mention_spans_and_counters():
    reg = PerfRegistry()
    with reg.span("raytrace"):
        pass
    reg.count("cache.hit", 3)
    text = "\n".join(reg.report_lines())
    assert "raytrace" in text
    assert "cache.hit" in text


def test_spanstat_mean_of_empty_is_zero():
    assert SpanStat().mean_s == 0.0


def test_module_singleton_exists_and_works():
    before = perf.counter("test_perf.selfcheck")
    perf.count("test_perf.selfcheck")
    assert perf.counter("test_perf.selfcheck") == before + 1

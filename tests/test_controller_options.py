"""Tests for controller options: energy-aware budgets, fleet SINR."""

import numpy as np
import pytest

from repro.core.config import SkyRANConfig
from repro.core.controller import SkyRANController
from repro.core.fleet import FleetController
from repro.flight.energy import EnergyBudget
from repro.sim.scenario import Scenario


class TestEnergyAwareEpoch:
    def test_drained_battery_shrinks_flight(self):
        scenario = Scenario.create("campus", n_ues=3, cell_size=4.0, seed=15)
        cfg = SkyRANConfig(rem_cell_size_m=8.0)
        ctrl = SkyRANController(scenario.channel, scenario.enodeb, cfg, seed=1)
        ctrl.altitude = 60.0
        # Nearly drained: only the landing reserve and a sliver left.
        ctrl.uav.battery.used_wh = ctrl.uav.battery.capacity_wh * 0.80
        eb = EnergyBudget(min_service_s=120.0)
        affordable = eb.affordable_budget_m(ctrl.uav.battery)
        result = ctrl.run_epoch(budget_m=2000.0, energy_budget=eb)
        assert result.plan.trajectory.length_m <= max(affordable, 1.0) + 1e-6

    def test_full_battery_unconstrained(self):
        scenario = Scenario.create("campus", n_ues=3, cell_size=4.0, seed=15)
        cfg = SkyRANConfig(rem_cell_size_m=8.0)
        ctrl = SkyRANController(scenario.channel, scenario.enodeb, cfg, seed=1)
        ctrl.altitude = 60.0
        result = ctrl.run_epoch(budget_m=300.0, energy_budget=EnergyBudget())
        assert result.plan.trajectory.length_m <= 300.0 + 1e-6


class TestFleetSinr:
    def test_sinr_leq_snr(self):
        scenario = Scenario.create("campus", n_ues=4, cell_size=4.0, seed=16)
        for ue in list(scenario.enodeb.ues):
            scenario.enodeb.deregister_ue(ue.ue_id)
        coord = FleetController(
            channel=scenario.channel,
            ues=scenario.ues,
            n_uavs=2,
            config=SkyRANConfig(rem_cell_size_m=8.0),
            seed=2,
        )
        result = coord.run_epoch(budget_per_uav_m=200.0)
        snr = coord.per_ue_snr_db()
        sinr = coord.per_ue_sinr_db(result.serving)
        for ue_id in sinr:
            # Interference can only cost; best-UAV SNR upper-bounds
            # the serving SINR.
            assert sinr[ue_id] <= snr[ue_id] + 1e-6

    def test_idle_interferers_recover_snr(self):
        scenario = Scenario.create("campus", n_ues=4, cell_size=4.0, seed=16)
        for ue in list(scenario.enodeb.ues):
            scenario.enodeb.deregister_ue(ue.ue_id)
        coord = FleetController(
            channel=scenario.channel,
            ues=scenario.ues,
            n_uavs=2,
            config=SkyRANConfig(rem_cell_size_m=8.0),
            seed=2,
        )
        result = coord.run_epoch(budget_per_uav_m=200.0)
        busy = coord.per_ue_sinr_db(result.serving, activity=[1.0, 1.0])
        idle = coord.per_ue_sinr_db(result.serving, activity=[0.0, 0.0])
        assert all(idle[k] >= busy[k] for k in busy)

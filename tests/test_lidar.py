"""Unit tests for the synthetic LiDAR pipeline."""

import numpy as np
import pytest

from repro.geo.grid import GridSpec
from repro.terrain.lidar import (
    PointCloud,
    rasterize_point_cloud,
    synthesize_point_cloud,
)


class TestPointCloud:
    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            PointCloud(np.zeros((10, 2)))

    def test_len(self):
        pc = PointCloud(np.zeros((7, 3)))
        assert len(pc) == 7


class TestSynthesize:
    def test_density_controls_count(self, flat_terrain, rng):
        lo = synthesize_point_cloud(flat_terrain, density=1.0, seed=0)
        hi = synthesize_point_cloud(flat_terrain, density=4.0, seed=0)
        assert len(hi) > 2 * len(lo)

    def test_dropout_reduces_returns(self, flat_terrain):
        full = synthesize_point_cloud(flat_terrain, density=2.0, dropout=0.0, seed=0)
        holey = synthesize_point_cloud(flat_terrain, density=2.0, dropout=0.5, seed=0)
        assert len(holey) < 0.7 * len(full)

    def test_rejects_bad_density(self, flat_terrain):
        with pytest.raises(ValueError):
            synthesize_point_cloud(flat_terrain, density=0.0)

    def test_returns_track_surface(self, box_terrain):
        pc = synthesize_point_cloud(box_terrain, density=4.0, noise_std=0.05, seed=1)
        inside = (
            (pc.points[:, 0] > 45)
            & (pc.points[:, 0] < 55)
            & (pc.points[:, 1] > 45)
            & (pc.points[:, 1] < 55)
        )
        assert np.median(pc.points[inside, 2]) == pytest.approx(20.0, abs=0.5)


class TestRasterize:
    def test_roundtrip_recovers_surface(self, box_terrain):
        pc = synthesize_point_cloud(box_terrain, density=6.0, noise_std=0.1, seed=2)
        recon = rasterize_point_cloud(pc, box_terrain.grid)
        err = np.abs(recon.heights - box_terrain.heights)
        # Most cells within half a metre; building edges may smear.
        assert np.median(err) < 0.5
        assert recon.height_at(50, 50) == pytest.approx(20.0, abs=1.0)

    def test_empty_cloud_fills_value(self, small_grid):
        recon = rasterize_point_cloud(PointCloud(np.empty((0, 3))), small_grid, fill_value=0.0)
        assert np.all(recon.heights == 0.0)

    def test_holes_filled_from_neighbours(self, small_grid):
        # Returns only in the west half; the east half must be filled.
        pts = np.column_stack(
            [
                np.random.default_rng(0).uniform(0, 50, 500),
                np.random.default_rng(1).uniform(0, 100, 500),
                np.full(500, 5.0),
            ]
        )
        recon = rasterize_point_cloud(PointCloud(pts), small_grid)
        assert np.all(np.isfinite(recon.heights))
        assert recon.height_at(90, 50) == pytest.approx(5.0, abs=0.5)

    def test_invalid_percentile(self, small_grid):
        with pytest.raises(ValueError):
            rasterize_point_cloud(PointCloud(np.zeros((1, 3))), small_grid, percentile=0.0)

    def test_never_below_datum(self, flat_terrain):
        pc = synthesize_point_cloud(flat_terrain, density=3.0, noise_std=0.5, seed=3)
        recon = rasterize_point_cloud(pc, flat_terrain.grid)
        assert recon.heights.min() >= 0.0

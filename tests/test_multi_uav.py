"""Tests for the multi-UAV cooperative extension."""

import numpy as np
import pytest

from repro.core.config import SkyRANConfig
from repro.core.multi_uav import MultiUAVCoordinator
from repro.lte.throughput import throughput_mbps
from repro.sim.scenario import Scenario


@pytest.fixture()
def world():
    scenario = Scenario.create("campus", n_ues=6, cell_size=4.0, seed=12)
    # Detach from the scenario's own eNodeB: the coordinator re-homes
    # UEs onto per-UAV cells.
    for ue in list(scenario.enodeb.ues):
        scenario.enodeb.deregister_ue(ue.ue_id)
    return scenario


class TestSectorization:
    def test_every_ue_assigned_once(self, world):
        coord = MultiUAVCoordinator(
            world.channel, world.ues, n_uavs=2, config=SkyRANConfig(rem_cell_size_m=8.0)
        )
        assignment = coord.assign_sectors()
        all_ids = sorted(i for ids in assignment.ue_ids_by_uav.values() for i in ids)
        assert all_ids == sorted(u.ue_id for u in world.ues)

    def test_no_empty_sectors(self, world):
        coord = MultiUAVCoordinator(
            world.channel, world.ues, n_uavs=3, config=SkyRANConfig(rem_cell_size_m=8.0)
        )
        assignment = coord.assign_sectors()
        for ids in assignment.ue_ids_by_uav.values():
            assert len(ids) >= 1

    def test_validates_fleet_size(self, world):
        with pytest.raises(ValueError):
            MultiUAVCoordinator(world.channel, world.ues, n_uavs=0)
        with pytest.raises(ValueError):
            MultiUAVCoordinator(world.channel, world.ues, n_uavs=99)


class TestFleetEpoch:
    def test_epoch_runs_all_uavs(self, world):
        coord = MultiUAVCoordinator(
            world.channel, world.ues, n_uavs=2, config=SkyRANConfig(rem_cell_size_m=8.0), seed=1
        )
        result = coord.run_epoch(budget_per_uav_m=250.0)
        assert len(result.per_uav) == 2
        assert result.total_flight_distance_m > 0

    def test_shared_rem_store(self, world):
        coord = MultiUAVCoordinator(
            world.channel, world.ues, n_uavs=2, config=SkyRANConfig(rem_cell_size_m=8.0), seed=1
        )
        assert coord.controllers[0].rem_store is coord.controllers[1].rem_store
        coord.run_epoch(budget_per_uav_m=200.0)
        # Both UAVs' UEs land in the one store.
        assert len(coord.rem_store) == len(world.ues)

    def test_fleet_beats_single_uav_min_snr(self, world):
        cfg = SkyRANConfig(rem_cell_size_m=8.0)
        coord = MultiUAVCoordinator(world.channel, world.ues, n_uavs=2, config=cfg, seed=1)
        coord.run_epoch(budget_per_uav_m=250.0)
        fleet_snr = coord.per_ue_snr_db()
        fleet_min_tput = min(throughput_mbps(s) for s in fleet_snr.values())

        # Single-UAV best possible (oracle) min throughput:
        stack = world.truth_maps(coord.controllers[0].altitude or 60.0)
        single_best_min = throughput_mbps(float(stack.min(axis=0).max()))
        # Two UAVs serving sectors should match or beat the single
        # UAV's oracle worst-UE throughput (modulo estimation noise).
        assert fleet_min_tput >= 0.5 * single_best_min

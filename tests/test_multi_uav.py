"""Tests for the fleet control plane."""

import numpy as np
import pytest

from repro.core.config import SkyRANConfig
from repro.core.fleet import FleetController
from repro.lte.throughput import throughput_mbps
from repro.sim.scenario import Scenario


@pytest.fixture()
def world():
    scenario = Scenario.create("campus", n_ues=6, cell_size=4.0, seed=12)
    # Detach from the scenario's own eNodeB: the fleet re-homes UEs
    # onto per-cell eNodeBs.
    for ue in list(scenario.enodeb.ues):
        scenario.enodeb.deregister_ue(ue.ue_id)
    return scenario


class TestSectorization:
    def test_every_ue_assigned_once(self, world):
        fleet = FleetController(
            channel=world.channel,
            ues=world.ues,
            n_uavs=2,
            config=SkyRANConfig(rem_cell_size_m=8.0),
        )
        assignment = fleet.assign_sectors()
        all_ids = sorted(i for ids in assignment.ue_ids_by_uav.values() for i in ids)
        assert all_ids == sorted(u.ue_id for u in world.ues)

    def test_no_empty_sectors(self, world):
        fleet = FleetController(
            channel=world.channel,
            ues=world.ues,
            n_uavs=3,
            config=SkyRANConfig(rem_cell_size_m=8.0),
        )
        assignment = fleet.assign_sectors()
        for ids in assignment.ue_ids_by_uav.values():
            assert len(ids) >= 1

    def test_validates_fleet_size(self, world):
        with pytest.raises(ValueError):
            FleetController(channel=world.channel, ues=world.ues, n_uavs=0)
        with pytest.raises(ValueError):
            FleetController(channel=world.channel, ues=world.ues, n_uavs=99)

    def test_validates_knobs(self, world):
        with pytest.raises(ValueError):
            FleetController(
                channel=world.channel, ues=world.ues, n_uavs=2, reuse_factor=0
            )
        with pytest.raises(ValueError):
            FleetController(
                channel=world.channel,
                ues=world.ues,
                n_uavs=2,
                handover_hysteresis_db=-1.0,
            )
        with pytest.raises(ValueError):
            FleetController(
                channel=world.channel, ues=world.ues, n_uavs=2, association="nope"
            )
        with pytest.raises(ValueError):
            FleetController(
                channel=world.channel, ues=world.ues, n_uavs=2, activity=[1.0]
            )


class TestFleetEpoch:
    def test_epoch_runs_all_uavs(self, world):
        fleet = FleetController(
            channel=world.channel,
            ues=world.ues,
            n_uavs=2,
            config=SkyRANConfig(rem_cell_size_m=8.0),
            seed=1,
        )
        result = fleet.run_epoch(budget_per_uav_m=250.0)
        assert len(result.per_uav) == 2
        assert result.total_flight_distance_m > 0
        # Every UE has a serving cell and an SINR.
        assert sorted(result.serving) == sorted(u.ue_id for u in world.ues)
        assert sorted(result.sinr_db) == sorted(result.serving)
        assert result.attaches == len(world.ues)
        assert result.handovers == 0  # nothing to hand over from on epoch 0

    def test_shared_rem_store(self, world):
        fleet = FleetController(
            channel=world.channel,
            ues=world.ues,
            n_uavs=2,
            config=SkyRANConfig(rem_cell_size_m=8.0),
            seed=1,
        )
        assert fleet.controllers[0].rem_store is fleet.controllers[1].rem_store
        fleet.run_epoch(budget_per_uav_m=200.0)
        # Both UAVs' UEs land in the one store.
        assert len(fleet.rem_store) == len(world.ues)

    def test_fleet_beats_single_uav_min_snr(self, world):
        cfg = SkyRANConfig(rem_cell_size_m=8.0)
        fleet = FleetController(
            channel=world.channel, ues=world.ues, n_uavs=2, config=cfg, seed=1
        )
        fleet.run_epoch(budget_per_uav_m=250.0)
        fleet_snr = fleet.per_ue_snr_db()
        fleet_min_tput = min(throughput_mbps(s) for s in fleet_snr.values())

        # Single-UAV best possible (oracle) min throughput:
        stack = world.truth_maps(fleet.controllers[0].altitude or 60.0)
        single_best_min = throughput_mbps(float(stack.min(axis=0).max()))
        # Two UAVs serving sectors should match or beat the single
        # UAV's oracle worst-UE throughput (modulo estimation noise).
        assert fleet_min_tput >= 0.5 * single_best_min

    def test_per_cell_kpi_properties(self, world):
        fleet = FleetController(
            channel=world.channel,
            ues=world.ues,
            n_uavs=2,
            config=SkyRANConfig(rem_cell_size_m=8.0),
            seed=1,
        )
        result = fleet.run_epoch(budget_per_uav_m=200.0)
        agg = result.per_cell_aggregate_throughput_mbps
        mn = result.per_cell_min_throughput_mbps
        assert sorted(agg) == sorted(result.per_uav)
        for cell in agg:
            assert mn[cell] <= agg[cell] + 1e-12
        assert result.min_throughput_mbps == min(mn.values())
        counts = result.ue_counts
        assert sum(counts.values()) == len(world.ues)


class TestBatchedKPIs:
    def test_snr_and_sinr_match_references(self, world):
        fleet = FleetController(
            channel=world.channel,
            ues=world.ues,
            n_uavs=3,
            config=SkyRANConfig(rem_cell_size_m=8.0),
            seed=2,
            reuse_factor=2,
        )
        fleet.run_epoch(budget_per_uav_m=150.0)
        assert fleet.per_ue_snr_db() == fleet.per_ue_snr_db_reference()
        assert fleet.per_ue_sinr_db() == fleet.per_ue_sinr_db_reference()

    def test_sinr_leq_snr(self, world):
        fleet = FleetController(
            channel=world.channel,
            ues=world.ues,
            n_uavs=2,
            config=SkyRANConfig(rem_cell_size_m=8.0),
            seed=2,
        )
        fleet.run_epoch(budget_per_uav_m=150.0)
        snr = fleet.per_ue_snr_db()
        sinr = fleet.per_ue_sinr_db()
        for ue_id in sinr:
            # Interference can only hurt, and the serving cell is at
            # best the strongest cell.
            assert sinr[ue_id] <= snr[ue_id] + 1e-9

    def test_reuse_sweep_monotonic(self, world):
        fleet = FleetController(
            channel=world.channel,
            ues=world.ues,
            n_uavs=3,
            config=SkyRANConfig(rem_cell_size_m=8.0),
            seed=2,
        )
        fleet.run_epoch(budget_per_uav_m=150.0)
        evals = [fleet.evaluate(reuse_factor=k) for k in (1, 2, 3)]
        for lo, hi in zip(evals, evals[1:]):
            assert lo.min_throughput_mbps <= hi.min_throughput_mbps + 1e-12
            assert (
                lo.aggregate_throughput_mbps <= hi.aggregate_throughput_mbps + 1e-12
            )


class TestShimRemoved:
    def test_deprecated_coordinator_is_gone(self):
        # PR 7 turned MultiUAVCoordinator into a warn-once shim; this
        # PR removes it.  The import path must be dead so stragglers
        # fail loudly at import time instead of silently diverging
        # from FleetController.
        with pytest.raises(ImportError):
            from repro.core.multi_uav import MultiUAVCoordinator  # noqa: F401
        import repro.core

        assert "MultiUAVCoordinator" not in repro.core.__all__
        assert not hasattr(repro.core, "MultiUAVCoordinator")

"""Unit tests for the TSP heuristics."""

import itertools

import numpy as np
import pytest

from repro.geo.tsp import solve_tsp, tour_length


def _brute_force_open(points):
    n = len(points)
    best, best_len = None, np.inf
    for perm in itertools.permutations(range(n)):
        length = tour_length(points, perm)
        if length < best_len:
            best, best_len = list(perm), length
    return best, best_len


class TestTourLength:
    def test_simple_path(self):
        pts = np.array([[0, 0], [3, 0], [3, 4]], dtype=float)
        assert tour_length(pts, [0, 1, 2]) == pytest.approx(7.0)

    def test_closed_tour_adds_return_leg(self):
        pts = np.array([[0, 0], [3, 0], [3, 4]], dtype=float)
        assert tour_length(pts, [0, 1, 2], closed=True) == pytest.approx(12.0)

    def test_short_tours(self):
        pts = np.array([[0, 0]], dtype=float)
        assert tour_length(pts, [0]) == 0.0


class TestSolve:
    def test_returns_permutation(self, rng):
        pts = rng.uniform(0, 100, (12, 2))
        order = solve_tsp(pts)
        assert sorted(order) == list(range(12))

    def test_matches_brute_force_small(self, rng):
        pts = rng.uniform(0, 100, (7, 2))
        order = solve_tsp(pts)
        _, best_len = _brute_force_open(pts)
        assert tour_length(pts, order) <= best_len * 1.05

    def test_collinear_points_ordered(self):
        pts = np.array([[float(x), 0.0] for x in [5, 1, 9, 3, 7]])
        order = solve_tsp(pts)
        xs = pts[order, 0]
        assert np.all(np.diff(xs) > 0) or np.all(np.diff(xs) < 0)

    def test_start_respected(self, rng):
        pts = rng.uniform(0, 100, (8, 2))
        order = solve_tsp(pts, start=3)
        assert order[0] == 3

    def test_start_out_of_range(self, rng):
        pts = rng.uniform(0, 1, (4, 2))
        with pytest.raises(ValueError):
            solve_tsp(pts, start=4)

    def test_trivial_sizes(self):
        assert solve_tsp(np.empty((0, 2))) == []
        assert solve_tsp(np.array([[1.0, 2.0]])) == [0]
        assert sorted(solve_tsp(np.array([[0.0, 0.0], [1.0, 1.0]]))) == [0, 1]

    def test_two_opt_improves_or_matches_greedy(self, rng):
        pts = rng.uniform(0, 100, (15, 2))
        greedy = solve_tsp(pts, start=0, two_opt=False)
        refined = solve_tsp(pts, start=0, two_opt=True)
        assert tour_length(pts, refined) <= tour_length(pts, greedy) + 1e-9

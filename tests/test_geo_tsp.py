"""Unit tests for the TSP heuristics."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo.points import pairwise_distances
from repro.geo.tsp import _two_opt, solve_tsp, tour_length


def _brute_force_open(points):
    n = len(points)
    best, best_len = None, np.inf
    for perm in itertools.permutations(range(n)):
        length = tour_length(points, perm)
        if length < best_len:
            best, best_len = list(perm), length
    return best, best_len


class TestTourLength:
    def test_simple_path(self):
        pts = np.array([[0, 0], [3, 0], [3, 4]], dtype=float)
        assert tour_length(pts, [0, 1, 2]) == pytest.approx(7.0)

    def test_closed_tour_adds_return_leg(self):
        pts = np.array([[0, 0], [3, 0], [3, 4]], dtype=float)
        assert tour_length(pts, [0, 1, 2], closed=True) == pytest.approx(12.0)

    def test_short_tours(self):
        pts = np.array([[0, 0]], dtype=float)
        assert tour_length(pts, [0]) == 0.0


class TestSolve:
    def test_returns_permutation(self, rng):
        pts = rng.uniform(0, 100, (12, 2))
        order = solve_tsp(pts)
        assert sorted(order) == list(range(12))

    def test_matches_brute_force_small(self, rng):
        pts = rng.uniform(0, 100, (7, 2))
        order = solve_tsp(pts)
        _, best_len = _brute_force_open(pts)
        assert tour_length(pts, order) <= best_len * 1.05

    def test_collinear_points_ordered(self):
        pts = np.array([[float(x), 0.0] for x in [5, 1, 9, 3, 7]])
        order = solve_tsp(pts)
        xs = pts[order, 0]
        assert np.all(np.diff(xs) > 0) or np.all(np.diff(xs) < 0)

    def test_start_respected(self, rng):
        pts = rng.uniform(0, 100, (8, 2))
        order = solve_tsp(pts, start=3)
        assert order[0] == 3

    def test_start_out_of_range(self, rng):
        pts = rng.uniform(0, 1, (4, 2))
        with pytest.raises(ValueError):
            solve_tsp(pts, start=4)

    def test_trivial_sizes(self):
        assert solve_tsp(np.empty((0, 2))) == []
        assert solve_tsp(np.array([[1.0, 2.0]])) == [0]
        assert sorted(solve_tsp(np.array([[0.0, 0.0], [1.0, 1.0]]))) == [0, 1]

    def test_two_opt_improves_or_matches_greedy(self, rng):
        pts = rng.uniform(0, 100, (15, 2))
        greedy = solve_tsp(pts, start=0, two_opt=False)
        refined = solve_tsp(pts, start=0, two_opt=True)
        assert tour_length(pts, refined) <= tour_length(pts, greedy) + 1e-9


class TestTwoOptFixes:
    """Regression tests for two bugs the 2-opt pass used to have.

    1. After an in-pass segment reversal the anchor edge ``(a, b)``
       changed, but later deltas in the same pass were still scored
       against the removed edge — accepting "improvements" that could
       lengthen the tour.
    2. Open tours never tried reversing the tail segment, a move that
       only swaps one edge and that the closed-tour neighbourhood
       cannot express.
    """

    # Differential search against the pre-fix implementation found
    # this 7-node instance: dropping either fix lands 3-5% above the
    # optimum, the fixed pass reaches it exactly.
    REGRESSION_PTS = np.array(
        [
            [27.0, 4.1],
            [1.7, 81.3],
            [91.3, 60.7],
            [72.9, 54.4],
            [93.5, 81.6],
            [0.3, 85.7],
            [3.4, 73.0],
        ]
    )

    def test_regression_instance_reaches_start0_optimum(self):
        pts = self.REGRESSION_PTS
        dist = pairwise_distances(pts, pts)
        order = _two_opt(list(range(len(pts))), dist)
        best = min(
            tour_length(pts, (0,) + perm)
            for perm in itertools.permutations(range(1, len(pts)))
        )
        assert tour_length(pts, order) == pytest.approx(best)

    def test_tail_reversal_on_open_tour(self):
        # n=3 leaves no interior (j) moves at all, so only the tail
        # flip can repair A->B->C into the shorter A->C->B.
        pts = np.array([[0.0, 0.0], [5.0, 0.0], [1.0, 0.0]])
        dist = pairwise_distances(pts, pts)
        assert _two_opt([0, 1, 2], dist) == [0, 2, 1]

    @given(st.integers(3, 8), st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_two_opt_never_lengthens_any_input(self, n, seed):
        rng = np.random.default_rng(seed)
        pts = rng.uniform(0, 100, (n, 2))
        order0 = rng.permutation(n).tolist()
        dist = pairwise_distances(pts, pts)
        order = _two_opt(list(order0), dist)
        assert sorted(order) == list(range(n))
        assert tour_length(pts, order) <= tour_length(pts, order0) + 1e-9

    @given(st.integers(3, 7), st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_near_optimal_vs_brute_force_small(self, n, seed):
        pts = np.random.default_rng(seed).uniform(0, 100, (n, 2))
        order = solve_tsp(pts)
        best = min(
            tour_length(pts, perm) for perm in itertools.permutations(range(n))
        )
        # Greedy + 2-opt over all starts is near-optimal on tiny
        # instances but not exact (local optima); observed worst case
        # over 3k instances is ~1.09x.
        assert tour_length(pts, order) <= best * 1.15 + 1e-9

    @given(st.integers(3, 10), st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_two_opt_never_lengthens_vs_greedy(self, n, seed):
        pts = np.random.default_rng(seed).uniform(0, 100, (n, 2))
        greedy = solve_tsp(pts, start=0, two_opt=False)
        refined = solve_tsp(pts, start=0, two_opt=True)
        assert tour_length(pts, refined) <= tour_length(pts, greedy) + 1e-9

"""Tests for energy budgeting and inter-cell interference."""

import numpy as np
import pytest

from repro.channel.interference import fleet_sinr_db, sinr_db
from repro.channel.model import ChannelModel
from repro.flight.energy import EnergyBudget
from repro.flight.uav import Battery


class TestEnergyBudget:
    def test_full_battery_affords_plenty(self):
        eb = EnergyBudget(min_service_s=600.0)
        budget = eb.affordable_budget_m(Battery())
        assert budget > 1000.0

    def test_drained_battery_affords_nothing(self):
        b = Battery()
        b.used_wh = b.capacity_wh * 0.9
        eb = EnergyBudget(min_service_s=600.0)
        assert eb.affordable_budget_m(b) == 0.0

    def test_service_reservation_reduces_budget(self):
        b = Battery()
        short = EnergyBudget(min_service_s=60.0).affordable_budget_m(b)
        long = EnergyBudget(min_service_s=1200.0).affordable_budget_m(b)
        assert long < short

    def test_clamp(self):
        eb = EnergyBudget()
        b = Battery()
        assert eb.clamp(10.0, b) == 10.0
        b.used_wh = b.capacity_wh
        assert eb.clamp(10.0, b) == 0.0
        with pytest.raises(ValueError):
            eb.clamp(-1.0, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            EnergyBudget(min_service_s=-1.0)
        with pytest.raises(ValueError):
            EnergyBudget(reserve_fraction=1.0)
        with pytest.raises(ValueError):
            EnergyBudget(speed_mps=0.0)


class TestInterference:
    @pytest.fixture()
    def channel(self, flat_terrain):
        return ChannelModel(flat_terrain, shadowing_sigma_db=0.0, common_sigma_db=0.0)

    def test_single_uav_sinr_equals_snr(self, channel):
        uav = np.array([30.0, 30.0, 50.0])
        ue = np.array([50.0, 50.0, 1.5])
        assert sinr_db(channel, [uav], ue, 0) == pytest.approx(
            float(channel.snr_db(uav, ue)), abs=1e-6
        )

    def test_interferer_reduces_sinr(self, channel):
        serving = np.array([45.0, 50.0, 50.0])
        interferer = np.array([60.0, 50.0, 50.0])
        ue = np.array([50.0, 50.0, 1.5])
        alone = sinr_db(channel, [serving], ue, 0)
        crowded = sinr_db(channel, [serving, interferer], ue, 0)
        assert crowded < alone - 3.0

    def test_activity_scales_interference(self, channel):
        serving = np.array([45.0, 50.0, 50.0])
        interferer = np.array([60.0, 50.0, 50.0])
        ue = np.array([50.0, 50.0, 1.5])
        idle = sinr_db(channel, [serving, interferer], ue, 0, activity=[1.0, 0.0])
        busy = sinr_db(channel, [serving, interferer], ue, 0, activity=[1.0, 1.0])
        assert idle > busy
        assert idle == pytest.approx(sinr_db(channel, [serving], ue, 0), abs=1e-6)

    def test_farther_interferer_hurts_less(self, channel):
        serving = np.array([45.0, 50.0, 50.0])
        near = np.array([60.0, 50.0, 50.0])
        far = np.array([5.0, 5.0, 50.0])
        ue = np.array([50.0, 50.0, 1.5])
        with_near = sinr_db(channel, [serving, near], ue, 0)
        with_far = sinr_db(channel, [serving, far], ue, 0)
        assert with_far > with_near

    def test_fleet_helper(self, channel):
        uavs = [np.array([30.0, 30.0, 50.0]), np.array([70.0, 70.0, 50.0])]
        ues = {1: np.array([30.0, 35.0, 1.5]), 2: np.array([70.0, 65.0, 1.5])}
        serving = {1: 0, 2: 1}
        out = fleet_sinr_db(channel, uavs, ues, serving)
        assert set(out) == {1, 2}
        assert all(np.isfinite(v) for v in out.values())

    def test_validation(self, channel):
        ue = np.array([50.0, 50.0, 1.5])
        with pytest.raises(ValueError):
            sinr_db(channel, [np.zeros(3)], ue, 1)
        with pytest.raises(ValueError):
            sinr_db(channel, [np.zeros(3)], ue, 0, activity=[2.0])

"""Unit tests for UAV kinematics, GPS, battery and samplers."""

import numpy as np
import pytest

from repro.channel.model import ChannelModel
from repro.flight.sampler import (
    collect_gps_ranges,
    collect_snr_samples,
    localize_all_ues,
)
from repro.flight.uav import UAV, Battery, GPS_RATE_HZ
from repro.lte.enodeb import ENodeB
from repro.lte.tof import ToFEstimator
from repro.lte.ue import UE
from repro.trajectory.base import Trajectory


class TestBattery:
    def test_hover_drain(self):
        b = Battery(capacity_wh=600.0, hover_power_w=1500.0)
        b.drain_hover(600.0)
        assert b.remaining_wh == pytest.approx(600.0 - 250.0)
        b.drain_hover(3600.0)
        assert b.remaining_wh == 0.0  # clamped at empty

    def test_forward_costs_more(self):
        a = Battery()
        b = Battery()
        a.drain_hover(600.0)
        b.drain_forward(600.0)
        assert b.used_wh > a.used_wh

    def test_endurance(self):
        b = Battery(capacity_wh=300.0, hover_power_w=1500.0)
        assert b.endurance_hover_s() == pytest.approx(720.0)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            Battery().drain_hover(-1.0)


class TestUAV:
    def test_fly_reaches_endpoint(self, rng):
        uav = UAV(position=np.array([0.0, 0.0, 50.0]))
        traj = Trajectory(np.array([[100.0, 0.0]]), altitude=50.0)
        log = uav.fly(traj, rng)
        np.testing.assert_allclose(uav.position, [100.0, 0.0, 50.0])
        assert log.distance_m == pytest.approx(100.0)

    def test_fix_rate(self, rng):
        uav = UAV(position=np.array([0.0, 0.0, 50.0]), speed_mps=10.0)
        traj = Trajectory(np.array([[100.0, 0.0]]), altitude=50.0)
        log = uav.fly(traj, rng)
        assert len(log) == pytest.approx(10.0 * GPS_RATE_HZ, rel=0.05)

    def test_clock_and_battery_advance(self, rng):
        uav = UAV(position=np.array([0.0, 0.0, 50.0]), speed_mps=10.0)
        uav.fly(Trajectory(np.array([[100.0, 0.0]]), 50.0), rng)
        assert uav.clock_s == pytest.approx(10.0)
        assert uav.battery.used_wh > 0
        uav.hover(60.0)
        assert uav.clock_s == pytest.approx(70.0)

    def test_gps_noise_correlated(self, rng):
        uav = UAV(position=np.array([0.0, 0.0, 50.0]), gps_noise_std_m=2.0)
        log = uav.fly(Trajectory(np.array([[50.0, 0.0]]), 50.0), rng)
        err = log.gps_xyz - log.true_xyz
        # Successive fix errors nearly identical (OU, tau >> flight).
        step = np.abs(np.diff(err[:, 0]))
        assert np.median(step) < 0.1
        # But the offset itself is metre-scale.
        assert np.abs(err[:, 0]).max() > 0.1

    def test_goto(self, rng):
        uav = UAV(position=np.array([0.0, 0.0, 50.0]))
        log = uav.goto(np.array([30.0, 40.0, 50.0]), rng)
        assert log.distance_m == pytest.approx(50.0)

    def test_validates_speed(self):
        with pytest.raises(ValueError):
            UAV(speed_mps=0.0)


class TestSamplers:
    @pytest.fixture()
    def setup(self, flat_terrain, rng):
        channel = ChannelModel(flat_terrain, shadowing_sigma_db=0.0, common_sigma_db=0.0)
        enodeb = ENodeB()
        ue = UE(ue_id=1)
        ue.move_to(50.0, 50.0)
        enodeb.register_ue(ue)
        uav = UAV(position=np.array([20.0, 20.0, 50.0]), speed_mps=3.0)
        log = uav.fly(Trajectory(np.array([[20.0, 40.0], [40.0, 40.0]]), 50.0), rng)
        return channel, enodeb, ue, log

    def test_snr_samples_near_truth(self, setup, rng):
        channel, enodeb, ue, log = setup
        xy, snr = collect_snr_samples(log, ue, channel, rng)
        assert len(xy) == len(snr)
        mid_true = channel.snr_db(log.true_xyz[len(log) // 2], ue.xyz)
        assert abs(np.median(snr) - mid_true) < 5.0

    def test_gps_ranges_offset_visible(self, setup, rng):
        channel, enodeb, ue, log = setup
        est = ToFEstimator(enodeb.srs_config, 4)
        obs = collect_gps_ranges(log, ue, channel, enodeb, est, rng, processing_offset_m=137.0)
        assert len(obs) > 10
        d_true = np.array([np.linalg.norm(o.gps_xyz - ue.xyz) for o in obs])
        meas = np.array([o.range_m for o in obs])
        assert np.median(meas - d_true) == pytest.approx(137.0, abs=5.0)

    def test_localize_all_ues_accuracy(self, setup, rng):
        channel, enodeb, ue, log = setup
        est = ToFEstimator(enodeb.srs_config, 4)
        result = localize_all_ues(
            log, [ue], channel, enodeb, est, rng,
            bounds_xy=((0.0, 100.0), (0.0, 100.0)),
        )
        err = np.hypot(
            result.per_ue[1].position[0] - 50.0, result.per_ue[1].position[1] - 50.0
        )
        assert err < 15.0

"""Batched SRS/ToF localization kernel vs. per-symbol reference.

The batch kernels promise *bit-identical* results to the retained
per-symbol/per-fix reference implementations under the documented RNG
draw schedule; these tests hold them to it, end to end: channel,
Eq. 1-3 estimator, flight collection (including fault injection and
quality gating), ToF-to-GPS aggregation, MAD filtering, and the
analytic-Jacobian joint solve against its finite-difference oracle.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultInjector, FaultPlan
from repro.flight.sampler import collect_gps_ranges, collect_gps_ranges_reference
from repro.flight.uav import UAV
from repro.localization.joint import solve_joint_multilateration
from repro.localization.multilateration import solve_multilateration
from repro.localization.ranging import (
    GpsRange,
    aggregate_tof_to_gps,
    aggregate_tof_to_gps_reference,
    mad_filter,
    mad_filter_reference,
)
from repro.lte.srs import (
    SRSConfig,
    _largest_prime_at_most,
    apply_channel,
    apply_channel_batch,
    make_srs_symbol,
    pack_taps,
    synthesize_srs_symbol,
)
from repro.lte.tof import (
    ToFEstimator,
    correlation_quality,
    estimate_delay_and_quality,
    estimate_delays_batch,
)
from repro.perf import perf
from repro.sim.scenario import Scenario
from repro.trajectory.random_flight import random_flight

pytestmark = pytest.mark.localization

CFG = SRSConfig()

# A representative mix of per-symbol channels: LOS (single weak tap),
# NLOS (two strong excess-delay taps), and a clean no-multipath row.
TAP_SETS = [
    [(0.1, -9.0)],
    [(0.5, -3.0), (1.2, -6.0)],
    [],
    [(0.3, -4.0), (2.0, -8.0)],
    [],
    [(0.1, -9.0)],
]
DELAYS = np.array([20.4, 33.1, 5.0, 47.9, 12.25, 28.0])
SNRS = np.array([18.0, 6.0, 25.0, 3.5, 15.0, 10.0])


def _batch_vs_loop(symbol, delays, snrs, tap_sets, seed=3):
    """Run the batch kernel and the apply_channel loop off twin RNGs."""
    excess, power, mask = pack_taps(tap_sets)
    rng_a = np.random.default_rng(seed)
    rng_b = np.random.default_rng(seed)
    batched = apply_channel_batch(symbol, CFG, delays, snrs, rng_a, excess, power, mask)
    looped = np.stack(
        [
            apply_channel(symbol, CFG, d, s, rng_b, taps)
            for d, s, taps in zip(delays, snrs, tap_sets)
        ]
    )
    return batched, looped, rng_a, rng_b


class TestChannelBatch:
    def test_bit_identical_to_loop(self):
        symbol = make_srs_symbol(CFG)
        batched, looped, rng_a, rng_b = _batch_vs_loop(symbol, DELAYS, SNRS, TAP_SETS)
        assert np.array_equal(batched, looped)
        # Same draw count: the generators end in the same state, so a
        # caller interleaving other draws stays reproducible.
        assert rng_a.bit_generator.state == rng_b.bit_generator.state

    def test_no_taps_bit_identical(self):
        symbol = make_srs_symbol(CFG)
        rng_a = np.random.default_rng(11)
        rng_b = np.random.default_rng(11)
        batched = apply_channel_batch(symbol, CFG, DELAYS, SNRS, rng_a)
        looped = np.stack(
            [apply_channel(symbol, CFG, d, s, rng_b) for d, s in zip(DELAYS, SNRS)]
        )
        assert np.array_equal(batched, looped)

    def test_dropped_symbols_consume_no_draws(self):
        # Fault-dropping symbol i from the batch must reproduce the
        # loop that never calls apply_channel for symbol i.
        symbol = make_srs_symbol(CFG)
        keep = np.array([True, False, True, True, False, True])
        kept_taps = [t for t, k in zip(TAP_SETS, keep) if k]
        batched, looped, _, _ = _batch_vs_loop(
            symbol, DELAYS[keep], SNRS[keep], kept_taps, seed=5
        )
        assert np.array_equal(batched, looped)

    def test_left_pack_enforced(self):
        symbol = make_srs_symbol(CFG)
        mask = np.array([[False, True]])  # active tap not left-packed
        with pytest.raises(ValueError, match="left-packed"):
            apply_channel_batch(
                symbol,
                CFG,
                np.array([10.0]),
                np.array([10.0]),
                np.random.default_rng(0),
                np.zeros((1, 2)),
                np.zeros((1, 2)),
                mask,
            )


class TestEstimatorBatch:
    def test_bit_identical_to_scalar(self):
        symbol = make_srs_symbol(CFG)
        batched_rx, _, _, _ = _batch_vs_loop(symbol, DELAYS, SNRS, TAP_SETS, seed=9)
        delays, qualities = estimate_delays_batch(batched_rx, symbol, 4)
        for i, row in enumerate(batched_rx):
            d, q = estimate_delay_and_quality(row, symbol, 4)
            assert delays[i] == d
            assert qualities[i] == q

    def test_empty_batch(self):
        symbol = make_srs_symbol(CFG)
        delays, qualities = estimate_delays_batch(np.zeros((0, CFG.n_fft)), symbol)
        assert delays.shape == (0,) and qualities.shape == (0,)

    def test_shape_validation(self):
        symbol = make_srs_symbol(CFG)
        with pytest.raises(ValueError):
            estimate_delays_batch(np.zeros((2, 7), dtype=complex), symbol)
        with pytest.raises(ValueError):
            estimate_delays_batch(
                np.zeros((2, CFG.n_fft), dtype=complex), symbol, upsampling=0
            )


class TestCorrelationQuality:
    def test_sharp_peak_guard_excludes_main_lobe(self):
        # A sinc-like peak whose main lobe spans several bins: without
        # the guard the lobe shoulders would inflate the background
        # median and depress the ratio.
        total = 4096
        mag = np.full(total, 0.01)
        peak = 137
        lobe = np.array([0.2, 0.6, 1.0, 0.6, 0.2])
        mag[peak - 2 : peak + 3] = lobe
        q = correlation_quality(mag, peak)
        assert q == pytest.approx(1.0 / 0.01)
        # Shrinking the guard to zero leaves the shoulders in the
        # background window; the ratio must not *increase*.
        assert correlation_quality(mag, peak, guard=0) <= q

    def test_flat_profile_near_one(self):
        mag = np.full(1024, 0.5)
        assert correlation_quality(mag, 10) == pytest.approx(1.0)

    def test_wraps_circularly(self):
        mag = np.full(1024, 0.01)
        mag[0] = 1.0  # peak at the wrap point
        mag[-1] = mag[1] = 0.5  # lobe shoulders straddle the boundary
        q = correlation_quality(mag, 0, guard=1)
        assert q == pytest.approx(1.0 / 0.01)


class TestSRSSymbolCache:
    def test_memoized_per_config_and_root(self):
        perf.reset()
        a = make_srs_symbol(CFG, 25)
        hits0 = perf.counters().get("srs.symbol_cache.hit", 0)
        b = make_srs_symbol(CFG, 25)
        assert b is a  # shared array, not a copy
        assert perf.counters().get("srs.symbol_cache.hit", 0) == hits0 + 1
        assert not a.flags.writeable
        with pytest.raises((ValueError, RuntimeError)):
            a[0] = 0
        assert np.array_equal(a, synthesize_srs_symbol(CFG, 25))
        assert make_srs_symbol(CFG, 29) is not a

    def test_prime_search_cached(self):
        _largest_prime_at_most.cache_clear()
        assert _largest_prime_at_most(CFG.n_subcarriers) == 571
        info = _largest_prime_at_most.cache_info()
        assert info.misses == 1
        _largest_prime_at_most(CFG.n_subcarriers)
        assert _largest_prime_at_most.cache_info().hits == info.hits + 1


@pytest.fixture(scope="module")
def campus_flight():
    scenario = Scenario.create("campus", n_ues=5, seed=0)
    grid = scenario.grid
    start = np.array(
        [grid.origin_x + grid.width / 2, grid.origin_y + grid.height / 2]
    )
    fly_rng = np.random.default_rng(0)
    uav = UAV(position=np.array([start[0], start[1], 100.0]), speed_mps=3.0)
    traj = random_flight(grid, start, 20.0, 100.0, fly_rng)
    log = uav.fly(traj, fly_rng)
    estimator = ToFEstimator(scenario.enodeb.srs_config, 4)
    margin = 20.0
    bounds = (
        (grid.origin_x - margin, grid.max_x + margin),
        (grid.origin_y - margin, grid.max_y + margin),
    )
    return scenario, log, estimator, bounds


def _obs_equal(a, b):
    return len(a) == len(b) and all(
        x.range_m == y.range_m
        and x.t_s == y.t_s
        and np.array_equal(x.gps_xyz, y.gps_xyz)
        for x, y in zip(a, b)
    )


class TestCollectEquivalence:
    def _compare(self, campus_flight, **kw):
        scenario, log, estimator, _ = campus_flight
        ref_kw = dict(kw)
        if "faults" in kw:
            # Fresh injectors with the same plan: the injector draws
            # from its own streams, so each side must start cold.
            plan = kw["faults"]
            kw = dict(kw, faults=FaultInjector(plan))
            ref_kw = dict(ref_kw, faults=FaultInjector(plan))
        for ue in scenario.ues[:2]:
            a = collect_gps_ranges(
                log,
                ue,
                scenario.channel,
                scenario.enodeb,
                estimator,
                np.random.default_rng(1),
                **kw,
            )
            b = collect_gps_ranges_reference(
                log,
                ue,
                scenario.channel,
                scenario.enodeb,
                estimator,
                np.random.default_rng(1),
                resynthesize=True,
                **ref_kw,
            )
            assert _obs_equal(a, b)
            assert len(a) > 0

    def test_plain(self, campus_flight):
        self._compare(campus_flight)

    def test_quality_gated(self, campus_flight):
        self._compare(campus_flight, min_quality=3.0)

    def test_faulted(self, campus_flight):
        self._compare(
            campus_flight,
            faults=FaultPlan(seed=7, srs_drop_rate=0.1, tof_outlier_rate=0.05),
        )


class TestJointSolver:
    def test_analytic_matches_finite_difference(self, campus_flight):
        # The Fig. 18-style acceptance check: the analytic Jacobian
        # joint solve must land within 1e-6 m of the 3-point
        # finite-difference oracle on a real campus flight (2-point FD
        # truncation error floors around 1e-5 m and is benchmarked
        # separately).
        scenario, log, estimator, bounds = campus_flight
        obs = {}
        for ue in scenario.ues:
            o = mad_filter(
                collect_gps_ranges(
                    log,
                    ue,
                    scenario.channel,
                    scenario.enodeb,
                    estimator,
                    np.random.default_rng(1),
                )
            )
            if len(o) >= 3:
                obs[ue.ue_id] = o
        assert len(obs) >= 3
        res_a = solve_joint_multilateration(
            obs, bounds_xy=bounds, jac="analytic", tol=1e-12
        )
        res_fd = solve_joint_multilateration(
            obs, bounds_xy=bounds, jac="3-point", tol=1e-12
        )
        for u in res_a.per_ue:
            delta = np.linalg.norm(
                res_a.per_ue[u].position - res_fd.per_ue[u].position
            )
            assert delta < 1e-6
        assert res_a.offset_m == pytest.approx(res_fd.offset_m, abs=1e-6)

    def test_reference_model_matches_vectorized(self, rng):
        # Both residual models are bit-identical functions of theta, so
        # the same finite-difference solve lands on the same answer.
        ues = {1: np.array([20.0, 20.0, 1.5]), 2: np.array([-40.0, 10.0, 1.5])}
        obs = {
            k: _circle_obs(v, 90.0, 40, 45.0, 137.0, 0.5, rng)
            for k, v in ues.items()
        }
        res_vec = solve_joint_multilateration(obs, jac="2-point")
        res_ref = solve_joint_multilateration(obs, jac="2-point", model="reference")
        for k in res_vec.per_ue:
            assert np.array_equal(
                res_vec.per_ue[k].position, res_ref.per_ue[k].position
            )
        assert res_vec.offset_m == res_ref.offset_m

    def test_sparse_jacobian_well_conditioned(self, rng):
        ue = np.array([10.0, -15.0, 1.5])
        obs = {1: _circle_obs(ue, 100.0, 60, 50.0, 137.0, 0.0, rng)}
        res = solve_joint_multilateration(obs, jac="sparse-2-point")
        assert np.hypot(*(res.per_ue[1].position[:2] - ue[:2])) < 0.5

    def test_mode_validation(self):
        obs = {1: [GpsRange(np.zeros(3), 1.0, float(i)) for i in range(3)]}
        with pytest.raises(ValueError, match="jac"):
            solve_joint_multilateration(obs, jac="4-point")
        with pytest.raises(ValueError, match="model"):
            solve_joint_multilateration(obs, model="looped")
        with pytest.raises(ValueError, match="finite-difference"):
            solve_joint_multilateration(obs, jac="analytic", model="reference")

    def test_single_ue_jac_modes_agree(self, rng):
        ue = np.array([30.0, -20.0, 1.5])
        obs = _circle_obs(ue, 100.0, 60, 50.0, 137.0, 0.0, rng)
        res_a = solve_multilateration(obs, jac="analytic", tol=1e-12)
        res_fd = solve_multilateration(obs, jac="3-point", tol=1e-12)
        assert np.linalg.norm(res_a.position - res_fd.position) < 1e-6


def _circle_obs(ue, radius, n, alt, offset, noise, rng):
    angles = np.linspace(0, 2 * np.pi, n, endpoint=False)
    anchors = np.column_stack(
        [
            ue[0] + radius * np.cos(angles),
            ue[1] + radius * np.sin(angles),
            np.full(n, alt),
        ]
    )
    d = np.linalg.norm(anchors - ue, axis=1)
    r = d + offset + rng.normal(0, noise, n)
    return [GpsRange(a, float(ri), float(i)) for i, (a, ri) in enumerate(zip(anchors, r))]


ranges_lists = st.lists(
    st.floats(min_value=0.0, max_value=1e3, allow_nan=False), min_size=0, max_size=40
)


class TestAggregationProperties:
    @given(
        st.lists(st.floats(0.0, 100.0, allow_nan=False), min_size=0, max_size=25),
        st.lists(st.floats(-5.0, 105.0, allow_nan=False), min_size=0, max_size=60),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_vectorized_aggregate_matches_loop(self, gps_t, tof_t, pyrandom):
        gps_t = sorted(gps_t)
        gps_xyz = np.array(
            [[pyrandom.uniform(-50, 50) for _ in range(3)] for _ in gps_t]
        ).reshape(len(gps_t), 3)
        ranges = [pyrandom.uniform(50.0, 500.0) for _ in tof_t]
        fast = aggregate_tof_to_gps(gps_t, gps_xyz, tof_t, ranges)
        slow = aggregate_tof_to_gps_reference(gps_t, gps_xyz, tof_t, ranges)
        assert _obs_equal(fast, slow)

    @given(ranges_lists, st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_vectorized_mad_filter_matches_loop(self, base, seed):
        noise = np.random.default_rng(seed).normal(0, 1.0, len(base))
        obs = [
            GpsRange(np.array([float(i), 0.0, 50.0]), float(r + dn), float(i))
            for i, (r, dn) in enumerate(zip(base, noise))
        ]
        fast = mad_filter(obs)
        slow = mad_filter_reference(obs)
        assert _obs_equal(fast, slow)

    def test_aggregate_rejects_non_monotone_times(self):
        xyz = np.zeros((2, 3))
        for fn in (aggregate_tof_to_gps, aggregate_tof_to_gps_reference):
            with pytest.raises(ValueError, match="non-decreasing"):
                fn([1.0, 0.0], xyz, [0.5], [10.0])

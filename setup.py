"""Setup shim for legacy (non-PEP 517) editable installs.

The offline environment lacks the ``wheel`` package, so
``pip install -e . --no-use-pep517 --no-build-isolation`` goes through
this file; configuration lives in pyproject.toml.
"""

from setuptools import setup

setup()

"""Bench for Fig. 30 — REM accuracy at the 5000 m budget, by terrain."""

from common import run_figure

from repro.experiments.fig30_rem_budget_terrains import run


def test_fig30_rem_budget_terrains(benchmark):
    result = run_figure(
        benchmark, run, "Fig. 30 — REM accuracy at 5000 m budget", seeds=(0,)
    )
    # Shape: SkyRAN's maps are at least as accurate as Uniform's on
    # the complex terrains (paper: several dB better).
    rows = {r["terrain"]: r for r in result["rows"]}
    for terrain in ("nyc", "large"):
        assert rows[terrain]["skyran_rem_db"] <= rows[terrain]["uniform_rem_db"] + 1.5

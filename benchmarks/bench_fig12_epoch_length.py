"""Bench for Fig. 12 — throughput decay without repositioning."""

from common import run_figure

from repro.experiments.fig12_epoch_length import run


def test_fig12_epoch_length(benchmark):
    result = run_figure(benchmark, run, "Fig. 12 — decay under UE mobility")
    rows = result["rows"]
    # Shape: throughput decays over the hour for every moving
    # fraction, and a 10% threshold buys a non-trivial epoch.
    for row in rows:
        assert row["rel_at_60min"] <= 1.05
        assert row["epoch_at_10pct_min"] > 0.0
    # More movers lose at least as much by the end of the hour.
    assert rows[-1]["rel_at_60min"] <= rows[0]["rel_at_60min"] + 0.15

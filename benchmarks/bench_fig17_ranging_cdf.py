"""Bench for Fig. 17 — SRS/ToF ranging error CDF."""

from common import run_figure

from repro.experiments.fig17_ranging_cdf import run


def test_fig17_ranging_cdf(benchmark):
    result = run_figure(benchmark, run, "Fig. 17 — ranging error CDF", seeds=(0, 1, 2))
    all_row = next(r for r in result["rows"] if r["ue"] == "all")
    # Shape: metre-scale ranging from a 20 m flight (paper: 4-5 m
    # median; our refined correlator sits slightly below).
    assert all_row["median_m"] < 6.0
    assert all_row["p90_m"] < 25.0

"""Bench for Figs. 29 — throughput at a 5000 m total budget, by terrain."""

from common import run_figure

from repro.experiments.fig29_budget_terrains import run


def test_fig29_budget_terrains(benchmark):
    result = run_figure(
        benchmark, run, "Fig. 29 — 5000 m budget across terrains", seeds=(0,)
    )
    rows = {r["terrain"]: r for r in result["rows"]}
    # Shape: SkyRAN at least matches Uniform everywhere and wins
    # clearly on the complex terrains (paper: ~1.4x on NYC/LARGE,
    # parity on RURAL).
    for terrain in ("nyc", "large"):
        assert rows[terrain]["skyran_over_uniform"] > 0.95
    assert rows["rural"]["skyran_over_uniform"] > 0.7

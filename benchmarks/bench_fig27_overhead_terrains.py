"""Bench for Fig. 27 — overhead to 0.9x optimal across terrains."""

from common import run_figure

from repro.experiments.fig27_overhead_terrains import run


def test_fig27_overhead_terrains(benchmark):
    result = run_figure(
        benchmark, run, "Fig. 27 — overhead per terrain", seeds=(0,)
    )
    rows = {r["terrain"]: r for r in result["rows"]}
    # Shape: the 16x-larger LARGE terrain costs more flight time than
    # the small ones, for both schemes.
    assert rows["large"]["skyran_time_min"] > rows["rural"]["skyran_time_min"]
    assert rows["large"]["uniform_time_min"] > rows["rural"]["uniform_time_min"]

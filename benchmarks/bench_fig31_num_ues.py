"""Bench for Fig. 31 — relative throughput vs number of UEs."""

import numpy as np
from common import run_figure

from repro.experiments.fig31_num_ues import run


def test_fig31_num_ues(benchmark):
    result = run_figure(
        benchmark, run, "Fig. 31 — throughput vs #UEs (NYC)", ue_counts=(2, 6, 10), seeds=(0,)
    )
    rows = result["rows"]
    # Shape: SkyRAN stays at or above Uniform across UE counts (the
    # paper shows SkyRAN above Uniform throughout, improving to ~8).
    sky = np.mean([r["skyran_rel"] for r in rows])
    uni = np.mean([r["uniform_rel"] for r in rows])
    assert sky >= uni - 0.1

"""Bench for Fig. 21 — Centroid placement quality vs UE count."""

import numpy as np
from common import run_figure

from repro.experiments.fig21_centroid_by_ues import run


def test_fig21_centroid_by_ues(benchmark):
    result = run_figure(
        benchmark,
        run,
        "Fig. 21 — Centroid relative throughput",
        ue_counts=(2, 4, 7),
        seeds=(0, 1, 2, 3),
    )
    rows = result["rows"]
    # Shape: Centroid leaves a large gap to optimal at every UE count
    # (paper: 0.4-0.6x of optimal).
    mean_rel = np.mean([r["centroid_relative"] for r in rows])
    assert mean_rel < 0.85
    for row in rows:
        assert row["centroid_relative"] < 1.0

"""Shared helper for the figure benches.

Every bench runs its figure's experiment exactly once under
pytest-benchmark (the experiments are whole-system simulations, not
microbenchmarks — one round is the honest measurement), prints the
reproduced rows next to the paper's claim, and asserts the *shape*
assertions that make the reproduction meaningful.

Each run also snapshots the :mod:`repro.perf` registry (raytrace spans,
oracle cache hit/miss counters, ...) together with the wall time into a
``BENCH_<slug>.json`` artifact under ``benchmarks/artifacts/`` (or
``$REPRO_BENCH_DIR``), so every bench leaves a measurable perf baseline
for the next optimization PR to beat.
"""

from __future__ import annotations

import json
import os
import re
import time
from pathlib import Path
from typing import Callable, Dict, Optional

from repro.experiments.common import print_rows
from repro.perf import perf


def _slugify(title: str) -> str:
    slug = re.sub(r"[^a-z0-9]+", "_", title.lower()).strip("_")
    return slug or "bench"


def artifact_dir() -> Path:
    """Directory bench artifacts are written to (created on demand)."""
    default = Path(__file__).parent / "artifacts"
    return Path(os.environ.get("REPRO_BENCH_DIR", str(default)))


def _jsonable(value):
    """Best-effort conversion of experiment rows to JSON-safe values."""
    try:
        json.dumps(value)
        return value
    except TypeError:
        if isinstance(value, dict):
            return {str(k): _jsonable(v) for k, v in value.items()}
        if isinstance(value, (list, tuple)):
            return [_jsonable(v) for v in value]
        if hasattr(value, "item"):  # numpy scalar
            return value.item()
        if hasattr(value, "tolist"):  # numpy array
            return value.tolist()
        return str(value)


def write_artifact(
    name: str, wall_time_s: float, result: Optional[Dict] = None
) -> Path:
    """Write a ``BENCH_<name>.json`` perf artifact and return its path."""
    out_dir = artifact_dir()
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{name}.json"
    payload = {
        "bench": name,
        "wall_time_s": wall_time_s,
        "perf": perf.snapshot(),
    }
    if result is not None:
        payload["rows"] = _jsonable(result.get("rows"))
        if result.get("paper"):
            payload["paper"] = result["paper"]
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def run_figure(benchmark, run_fn: Callable[..., Dict], title: str, **kwargs) -> Dict:
    """Run a figure experiment once under the benchmark fixture.

    Resets the perf registry first so the emitted artifact reflects
    this figure's run alone.
    """
    perf.reset()
    t0 = time.perf_counter()
    result = benchmark.pedantic(
        lambda: run_fn(quick=True, **kwargs), rounds=1, iterations=1
    )
    wall = time.perf_counter() - t0
    print_rows(title, result["rows"], result.get("paper"))
    path = write_artifact(_slugify(title), wall, result)
    print(f"[perf] artifact: {path}")
    return result

"""Shared helper for the figure benches.

Every bench runs its figure's experiment exactly once under
pytest-benchmark (the experiments are whole-system simulations, not
microbenchmarks — one round is the honest measurement), prints the
reproduced rows next to the paper's claim, and asserts the *shape*
assertions that make the reproduction meaningful.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.experiments.common import print_rows


def run_figure(benchmark, run_fn: Callable[..., Dict], title: str, **kwargs) -> Dict:
    """Run a figure experiment once under the benchmark fixture."""
    result = benchmark.pedantic(
        lambda: run_fn(quick=True, **kwargs), rounds=1, iterations=1
    )
    print_rows(title, result["rows"], result.get("paper"))
    return result

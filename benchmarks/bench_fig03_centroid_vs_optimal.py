"""Bench for Fig. 3 — centroid placement is suboptimal."""

from common import run_figure

from repro.experiments.fig03_centroid_vs_optimal import run


def test_fig03_centroid_vs_optimal(benchmark):
    result = run_figure(benchmark, run, "Fig. 3 — centroid vs optimal (campus, 3 UEs)")
    # Shape: the centroid leaves a large fraction of the optimal
    # throughput on the table (paper: 30-50%).
    assert result["mean_ratio"] < 0.85

"""Bench for Fig. 14 — per-UE SNR distributions during a flight."""

from common import run_figure

from repro.experiments.fig14_snr_distributions import run


def test_fig14_snr_distributions(benchmark):
    result = run_figure(benchmark, run, "Fig. 14 — per-UE SNR distributions")
    rows = result["rows"]
    # Shape: every UE sees highly varying channel conditions over the
    # flight (the paper's histograms span tens of dB).
    for row in rows:
        assert row["snr_spread_db"] > 8.0
    spreads = [row["snr_spread_db"] for row in rows]
    # And the deployment mixes mild and harsh UEs.
    assert max(spreads) > 1.5 * min(spreads)

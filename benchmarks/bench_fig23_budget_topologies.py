"""Bench for Fig. 23 — relative throughput vs budget, two topologies."""

from common import run_figure

from repro.experiments.fig23_budget_topologies import run


def test_fig23_budget_topologies(benchmark):
    result = run_figure(
        benchmark,
        run,
        "Fig. 23 — throughput vs measurement budget",
        budgets=(200.0, 600.0, 1000.0),
        seeds=(0, 1),
    )
    rows = result["rows"]
    clustered = [r for r in rows if r["topology"] == "B-clustered"]
    uniform_topo = [r for r in rows if r["topology"] == "A-uniform"]
    # Shape: in the clustered topology SkyRAN dominates Uniform at
    # every budget (paper: ~2x at small budgets, 0.95 vs 0.7 at 1 km).
    for row in clustered:
        assert row["skyran_rel"] > row["uniform_rel"]
    # And SkyRAN improves (or holds) as the budget grows.
    assert uniform_topo[-1]["skyran_rel"] >= uniform_topo[0]["skyran_rel"] - 0.05
    assert clustered[-1]["skyran_rel"] >= 0.7

"""Benchmark-suite configuration.

Makes ``common.py`` importable when pytest is invoked from the repo
root (the benchmarks directory is not a package on purpose — each
bench is a standalone reproduction script).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

"""Benchmark-suite configuration.

Makes ``common.py`` importable when pytest is invoked from the repo
root (the benchmarks directory is not a package on purpose — each
bench is a standalone reproduction script).
"""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))


def pytest_collection_modifyitems(items):
    """Mark every bench so ``-m 'not bench'`` keeps mixed runs fast."""
    for item in items:
        if Path(item.fspath).name.startswith("bench_"):
            item.add_marker(pytest.mark.bench)

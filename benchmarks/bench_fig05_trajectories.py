"""Bench for Figs. 5/16 — trajectory coverage of informative regions."""

from common import run_figure

from repro.experiments.fig05_trajectories import run


def test_fig05_trajectories(benchmark):
    result = run_figure(benchmark, run, "Figs. 5/16 — trajectory coverage")
    rows = {r["trajectory"]: r for r in result["rows"]}
    # Shape: SkyRAN collects informative cells more efficiently per
    # kilometre than the uniform sweep; the exhaustive flight covers
    # everything but at several times the cost.
    assert rows["skyran-800m"]["coverage_per_km"] > rows["uniform-800m"]["coverage_per_km"]
    assert rows["exhaustive"]["hot_coverage"] > 0.95
    assert rows["exhaustive"]["length_m"] > 4 * rows["skyran-800m"]["length_m"]

"""Bench for Fig. 4 — data-driven REMs vs propagation models."""

from common import run_figure

from repro.experiments.fig04_rem_vs_model import run


def test_fig04_rem_vs_model(benchmark):
    result = run_figure(benchmark, run, "Fig. 4 — data-driven vs model REM error")
    rows = result["rows"]
    # Shape: the model's error grows with terrain complexity...
    assert rows[-1]["model_based_db"] > rows[0]["model_based_db"]
    # ... and the data-driven map beats the model everywhere, by a
    # growing factor (paper: up to ~4x).
    for row in rows:
        assert row["data_driven_db"] < row["model_based_db"]
    assert rows[-1]["model_over_data"] > 2.0

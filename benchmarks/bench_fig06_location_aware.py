"""Bench for Fig. 6 — location-aware vs naive probing efficiency."""

from common import run_figure

from repro.experiments.fig06_location_aware import run


def test_fig06_location_aware(benchmark):
    result = run_figure(benchmark, run, "Fig. 6 — location-aware vs naive probing")
    rows = result["rows"]
    # Shape: at small probing fractions, location-aware probing is
    # far more accurate than the naive sweep (paper: 5 vs 16 dB).
    assert rows[0]["aware_err_db"] < rows[0]["naive_err_db"]
    assert rows[1]["aware_err_db"] < rows[1]["naive_err_db"]
    # And the aware curve improves monotonically-ish with budget.
    assert rows[-1]["aware_err_db"] <= rows[0]["aware_err_db"]

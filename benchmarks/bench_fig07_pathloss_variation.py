"""Bench for Fig. 7 — path loss variation along a flight segment."""

from common import run_figure

from repro.experiments.fig07_pathloss_variation import run


def test_fig07_pathloss_variation(benchmark):
    result = run_figure(benchmark, run, "Fig. 7 — path loss along a 50 m segment")
    row = result["rows"][0]
    # Shape: the 50 m segment swings by tens of dB (paper: ~20 dB).
    assert row["swing_db"] > 15.0

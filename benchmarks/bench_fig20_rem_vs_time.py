"""Bench for Fig. 20 — REM error vs measurement flight time."""

from common import run_figure

from repro.experiments.fig20_rem_vs_time import run


def test_fig20_rem_vs_time(benchmark):
    result = run_figure(
        benchmark,
        run,
        "Fig. 20 — REM error vs flight time",
        times_s=(20.0, 60.0, 120.0),
        seeds=(0, 1),
    )
    rows = result["rows"]
    # Shape: both schemes improve with time; SkyRAN converges faster
    # and sits below Uniform at every budget (paper: 3 dB by 82 s vs
    # Uniform still ~7 dB at 120 s).
    assert rows[-1]["skyran_err_db"] <= rows[0]["skyran_err_db"]
    for row in rows:
        assert row["skyran_err_db"] <= row["uniform_err_db"] + 0.5
    assert rows[0]["skyran_err_db"] < rows[0]["uniform_err_db"]

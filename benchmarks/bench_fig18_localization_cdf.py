"""Bench for Fig. 18 — UE localization error CDF."""

from common import run_figure

from repro.experiments.fig18_localization_cdf import run

#: The macro-cell strawman the paper compares against (50-100 m).
MACRO_M = 50.0


def test_fig18_localization_cdf(benchmark):
    result = run_figure(
        benchmark, run, "Fig. 18 — localization error CDF", seeds=(0, 1, 2, 3)
    )
    # Shape: single-eNodeB localization lands an order of magnitude
    # below macro-cell techniques (paper: 5-7 m vs 50-100 m; our
    # pipeline sits near 10 m — see EXPERIMENTS.md).
    assert result["median_m"] < MACRO_M / 2.5

"""Bench for Fig. 1 — the UAV positioning motivation map."""

from common import run_figure

from repro.experiments.fig01_motivation import run


def test_fig01_motivation(benchmark):
    result = run_figure(benchmark, run, "Fig. 1 — positioning motivation (NYC, 20 UEs)")
    row = result["rows"][0]
    # Shape: favorable positions are rare and far above the median.
    assert row["frac_ge_26mbps"] < 0.15
    assert row["optimal_mbps"] > 25.0
    assert row["optimal_mbps"] > 2.0 * row["median_mbps"]

"""Benches for the design-choice ablations DESIGN.md calls out."""

from common import run_figure

from repro.experiments.ablations import (
    ablation_gradient_threshold,
    ablation_interpolation,
    ablation_k_window,
    ablation_reuse_radius,
    ablation_upsampling,
)


def test_ablation_upsampling(benchmark):
    result = run_figure(benchmark, ablation_upsampling, "Ablation — ToF upsampling K")
    rows = {r["K"]: r for r in result["rows"]}
    # K=4 beats K=1 on ranging error (finer resolution)...
    assert rows[4]["median_err_m"] <= rows[1]["median_err_m"] + 0.5
    # ... while K=8 buys almost nothing over K=4 (the paper's point).
    assert rows[8]["median_err_m"] >= rows[4]["median_err_m"] - 1.0


def test_ablation_interpolation(benchmark):
    result = run_figure(benchmark, ablation_interpolation, "Ablation — REM interpolation")
    errs = {r["interp"]: r["median_err_db"] for r in result["rows"]}
    # The paper's IDW beats nearest-cell, and the power/neighbour
    # variations stay within a small band (footnote 3's claim).
    assert errs["idw-p2-k12 (paper)"] <= errs["nearest"] + 0.25
    band = [v for k, v in errs.items() if k.startswith("idw")]
    assert max(band) - min(band) < 3.0


def test_ablation_gradient_threshold(benchmark):
    result = run_figure(
        benchmark, ablation_gradient_threshold, "Ablation — gradient threshold", seeds=(0,)
    )
    rows = result["rows"]
    # All quantiles produce a working system; the median is not a
    # cliff-edge choice.
    for row in rows:
        assert row["relative_throughput"] > 0.25


def test_ablation_reuse_radius(benchmark):
    result = run_figure(
        benchmark, ablation_reuse_radius, "Ablation — reuse radius R", seeds=(0,)
    )
    rows = {r["radius_m"]: r for r in result["rows"]}
    # A nonzero radius produces store hits under mobility; R=0 cannot.
    assert rows[0.0]["store_hits"] == 0
    assert rows[25.0]["store_hits"] >= rows[5.0]["store_hits"]


def test_ablation_k_window(benchmark):
    result = run_figure(
        benchmark, ablation_k_window, "Ablation — planner K window", seeds=(0,)
    )
    for row in result["rows"]:
        assert row["relative_throughput"] > 0.25

"""Bench for Fig. 26 — overhead to 0.9x optimal, STATIC vs DYNAMIC."""

from common import run_figure

from repro.experiments.fig26_overhead_static_dynamic import run


def test_fig26_overhead_static_dynamic(benchmark):
    result = run_figure(
        benchmark, run, "Fig. 26 — overhead to 0.9x optimal (NYC)", seeds=(0, 1)
    )
    rows = {r["mode"]: r for r in result["rows"]}
    # Shape: dynamics cost extra flight time, and SkyRAN needs no more
    # overhead than Uniform in either mode (paper: about half).
    assert rows["DYNAMIC"]["skyran_time_s"] >= rows["STATIC"]["skyran_time_s"] * 0.5
    for row in result["rows"]:
        assert row["skyran_time_s"] <= row["uniform_time_s"] * 1.35

"""Bench for Fig. 8 — optimal-altitude interior minimum."""

import numpy as np
from common import run_figure

from repro.experiments.fig08_altitude import run


def test_fig08_altitude(benchmark):
    result = run_figure(benchmark, run, "Fig. 8 — path loss vs altitude")
    row = result["rows"][0]
    # Shape: an interior minimum — both the ceiling and the floor are
    # worse than the best altitude.
    assert row["loss_at_best_db"] < row["loss_at_120m_db"]
    assert row["loss_at_best_db"] < row["loss_at_10m_db"]
    assert 10.0 < row["best_altitude_m"] < 120.0
    # The paper's descend-and-track procedure lands near the true best.
    assert abs(row["tracked_altitude_m"] - row["best_altitude_m"]) <= 15.0
    # The full profile rises steeply below the optimum.
    losses = np.asarray(result["path_loss_db"])
    assert losses[0] > losses.min() + 5.0

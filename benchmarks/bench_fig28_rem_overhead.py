"""Bench for Fig. 28 — overhead to a 5 dB REM, STATIC vs DYNAMIC."""

from common import run_figure

from repro.experiments.fig28_rem_overhead import run


def test_fig28_rem_overhead(benchmark):
    result = run_figure(
        benchmark, run, "Fig. 28 — overhead to 5 dB REMs (NYC)", seeds=(0, 1)
    )
    # Shape: SkyRAN reaches accurate maps in no more flight time than
    # Uniform (paper: about half), in both dynamics modes.
    for row in result["rows"]:
        assert row["skyran_time_min"] <= row["uniform_time_min"] * 1.35

"""Bench for the Section 2.3 argument — REMs over throughput maps."""

from common import run_figure

from repro.experiments.rem_vs_throughput_map import run


def test_rem_vs_throughput_map(benchmark):
    result = run_figure(benchmark, run, "Section 2.3 — REM vs throughput map")
    # Shape: predicting throughput via the SNR map beats interpolating
    # throughput directly, at every sampling density.
    for row in result["rows"]:
        assert row["rem_path_err_mbps"] <= row["tputmap_path_err_mbps"] + 1e-9

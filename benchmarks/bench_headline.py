"""Bench for the paper's headline claims (abstract / Section 4.5)."""

from common import run_figure

from repro.experiments.headline import run


def test_headline(benchmark):
    result = run_figure(
        benchmark,
        run,
        "Headline — SkyRAN vs baselines",
        seeds=(0, 1, 2),
        budget_m=450.0,
    )
    row = result["rows"][0]
    # Shape: SkyRAN lands most of the optimal throughput with a short
    # measurement flight and beats both baselines (paper: 0.9-0.95x,
    # ~2x Uniform, ~1.5x Centroid).
    assert row["skyran_rel"] > 0.75
    assert row["sky_over_uniform"] > 1.0
    assert row["sky_over_centroid"] > 1.0

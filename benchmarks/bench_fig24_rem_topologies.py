"""Bench for Fig. 24 — REM accuracy at the full budget, two topologies."""

from common import run_figure

from repro.experiments.fig24_rem_topologies import run


def test_fig24_rem_topologies(benchmark):
    result = run_figure(
        benchmark, run, "Fig. 24 — REM accuracy at 1000 m budget", seeds=(0, 1)
    )
    # Shape: SkyRAN's maps are at least as accurate as Uniform's in
    # both topologies (the paper shows < 3 dB in absolute terms on its
    # testbed; our synthetic shadowing floor sits higher — see
    # EXPERIMENTS.md — so the bench asserts the ordering plus a loose
    # absolute sanity bound).
    for row in result["rows"]:
        assert row["skyran_err_db"] <= row["uniform_err_db"] + 0.5
        assert row["skyran_err_db"] < 9.0

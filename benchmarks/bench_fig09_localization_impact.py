"""Bench for Fig. 9 — localization error vs placement quality."""

from common import run_figure

from repro.experiments.fig09_localization_impact import run


def test_fig09_localization_impact(benchmark):
    result = run_figure(
        benchmark, run, "Fig. 9 — impact of localization error", errors=(0.0, 10.0, 25.0)
    )
    rows = result["rows"]
    # Shape: performance degrades as the injected error grows, and
    # small errors keep most of the optimal throughput.
    assert rows[0]["relative_throughput"] >= rows[-1]["relative_throughput"] - 0.05
    assert rows[0]["relative_throughput"] > 0.6

"""Bench for Fig. 19 — localization accuracy vs flight length."""

from common import run_figure

from repro.experiments.fig19_loc_vs_flightlen import run


def test_fig19_loc_vs_flightlen(benchmark):
    result = run_figure(
        benchmark,
        run,
        "Fig. 19 — localization vs flight length",
        lengths=(5.0, 15.0, 30.0),
        seeds=(0, 1, 2),
    )
    rows = result["rows"]
    # Shape: very short flights are catastrophically worse; accuracy
    # saturates once the flight reaches a few tens of meters.
    assert rows[0]["median_err_m"] > 2.0 * rows[-1]["median_err_m"]

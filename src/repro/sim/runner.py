"""Multi-epoch experiment runner.

Drives a SkyRAN (or Uniform) controller through successive epochs with
UE dynamics between them, accounting flight distance/time, relative
throughput and REM accuracy per epoch — the engine behind the
Section 5 scale-up figures (26-31).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.mobility.models import relocate_fraction
from repro.perf import perf
from repro.sim.metrics import median_rem_error
from repro.sim.scenario import Scenario

#: Fixed operating altitude for schemes without an altitude search
#: (and for pinned like-for-like comparisons).
DEFAULT_FIXED_ALTITUDE_M = 60.0


@dataclass(frozen=True)
class EpochRecord:
    """Per-epoch outcome of a runner pass.

    Attributes
    ----------
    epoch:
        Epoch index.
    flight_distance_m / flight_time_s:
        Overhead spent this epoch.
    cumulative_distance_m / cumulative_time_s:
        Overhead spent so far, across epochs.
    relative_throughput:
        True mean-UE throughput at the chosen position over the
        optimum at the same altitude.
    rem_error_db:
        Median REM error vs ground truth (NaN for schemes without
        REMs).
    moved_ues:
        UE ids relocated before this epoch.
    altitude_m:
        Operating altitude served at after this epoch (None in traces
        saved before the field existed).
    min_throughput_mbps:
        True worst-UE throughput at the served position — the KPI the
        chaos smoke watches for graceful degradation (None in old
        traces).
    offered_mbps / served_mbps:
        Aggregate offered and served rates from the epoch's traffic
        MAC batch (None for legacy full-buffer/capacity configs and in
        old traces — the controller builds no MAC simulation then).
    backlog_bytes / dropped_bytes:
        End-of-batch aggregate RLC backlog (inf under full-buffer
        workloads) and cumulative tail-dropped bytes (None as above).
    attached_ues:
        UEs attached when this epoch was planned (None outside
        ``scheme="events"`` — the epoch loop then serves a fixed
        population).
    attaches / detaches / rach_collisions / barred:
        Event-layer control-plane counters accumulated since the
        previous epoch (None outside ``scheme="events"``).
    streamed / rem_groups:
        Whether the controller ran the streamed REM-key-deduplicated
        epoch pipeline (False on its materialized path), and how many
        dedup groups it used (None on materialized epochs).  Both None
        for controllers without the streamed path and in old traces.
    """

    epoch: int
    flight_distance_m: float
    flight_time_s: float
    cumulative_distance_m: float
    cumulative_time_s: float
    relative_throughput: float
    rem_error_db: float
    moved_ues: tuple
    altitude_m: Optional[float] = None
    min_throughput_mbps: Optional[float] = None
    offered_mbps: Optional[float] = None
    served_mbps: Optional[float] = None
    backlog_bytes: Optional[float] = None
    dropped_bytes: Optional[float] = None
    attached_ues: Optional[int] = None
    attaches: Optional[int] = None
    detaches: Optional[int] = None
    rach_collisions: Optional[int] = None
    barred: Optional[int] = None
    streamed: Optional[bool] = None
    rem_groups: Optional[int] = None


@dataclass(frozen=True)
class FleetEpochRecord:
    """Per-epoch outcome of a fleet runner pass.

    The fleet analogue of :class:`EpochRecord`: KPIs are SINR-based
    (co-channel cells interfere under the run's frequency plan) and
    reported per cell as well as fleet-wide.

    Attributes
    ----------
    epoch:
        Epoch index.
    n_uavs / reuse_factor:
        Fleet size and frequency plan of the run.
    flight_distance_m / flight_time_s:
        Overhead summed over every cell this epoch.
    cumulative_distance_m / cumulative_time_s:
        Overhead so far, across epochs.
    aggregate_throughput_mbps / min_throughput_mbps:
        Mean and worst per-UE full-cell throughput from the true-SINR
        evaluation of the epoch's final deployment.
    cells:
        Cell indices that served UEs this epoch, ascending; the
        ``per_cell_*`` and ``ue_counts`` tuples align with it.
    per_cell_aggregate_mbps / per_cell_min_mbps:
        Mean / worst per-UE throughput inside each cell.
    ue_counts:
        UEs served per cell.
    handovers / attaches:
        Sky-cell handovers and first-time attaches this epoch.
    moved_ues:
        UE ids relocated before this epoch.
    """

    epoch: int
    n_uavs: int
    reuse_factor: int
    flight_distance_m: float
    flight_time_s: float
    cumulative_distance_m: float
    cumulative_time_s: float
    aggregate_throughput_mbps: float
    min_throughput_mbps: float
    cells: tuple
    per_cell_aggregate_mbps: tuple
    per_cell_min_mbps: tuple
    ue_counts: tuple
    handovers: int
    attaches: int
    moved_ues: tuple


def _evaluate_epoch(
    scenario: Scenario, controller, result, rem_grid
) -> tuple:
    """Relative/min throughput + REM error + altitude for one epoch result."""
    position = getattr(result, "placement", None)
    if position is not None:
        pos = position.position
    else:
        pos = result.position  # Centroid-style results
    rel = scenario.relative_throughput(pos)
    min_tput = scenario.evaluate(pos).min_throughput_mbps
    rem_maps = getattr(result, "rem_maps", None)
    if rem_maps:
        altitude = float(pos.z)
        truth = scenario.truth_maps(altitude, rem_grid)
        order = sorted(rem_maps)
        # Rows of truth follow scenario.ues order (by construction ids
        # are 1..n sorted), matching sorted map keys.  Under the events
        # scheme only the attached subset has maps, so pick its rows.
        all_ids = sorted(ue.ue_id for ue in scenario.ues)
        if len(order) != len(all_ids):
            truth = truth[[all_ids.index(k) for k in order]]
        err = median_rem_error(rem_maps, truth, ue_order=order)
    else:
        err = float("nan")
    return rel, err, float(pos.z), min_tput


def run_epochs(
    scenario: Scenario,
    controller,
    n_epochs: int,
    budget_per_epoch_m: Optional[float] = None,
    move_fraction: float = 0.0,
    seed: int = 0,
    on_epoch: Optional[Callable[[EpochRecord], None]] = None,
) -> List[EpochRecord]:
    """Run a controller for several epochs with optional UE dynamics.

    Before every epoch after the first, ``move_fraction`` of the UEs
    teleport to fresh walkable positions (the Section 5.2 dynamics
    model).  Works with SkyRAN and Uniform controllers (both expose
    ``run_epoch(budget_m)``).
    """
    rng = np.random.default_rng(seed)
    records: List[EpochRecord] = []
    cum_d = 0.0
    cum_t = 0.0
    terrain = scenario.terrain

    def walkable(x: float, y: float) -> bool:
        return terrain.height_at(x, y) < 2.0

    rem_grid = getattr(controller, "rem_grid", scenario.eval_grid)
    for epoch in range(n_epochs):
        moved: tuple = ()
        if epoch > 0 and move_fraction > 0:
            moved_ids = relocate_fraction(
                scenario.ues, move_fraction, scenario.grid, rng, walkable
            )
            # Keep UE antenna heights on the local ground.
            for ue in scenario.ues:
                if ue.ue_id in moved_ids:
                    ue.move_to(
                        ue.position.x,
                        ue.position.y,
                        terrain.height_at(ue.position.x, ue.position.y) + 1.5,
                    )
            moved = tuple(moved_ids)
        with perf.span("runner.epoch"):
            if budget_per_epoch_m is not None:
                result = controller.run_epoch(budget_per_epoch_m)
            else:
                result = controller.run_epoch()
        with perf.span("runner.evaluate"):
            rel, err, alt, min_tput = _evaluate_epoch(
                scenario, controller, result, rem_grid
            )
        cum_d += result.flight_distance_m
        cum_t += result.flight_time_s
        mac = getattr(controller, "last_mac_summary", None)
        record = EpochRecord(
            epoch=epoch,
            flight_distance_m=result.flight_distance_m,
            flight_time_s=result.flight_time_s,
            cumulative_distance_m=cum_d,
            cumulative_time_s=cum_t,
            relative_throughput=rel,
            rem_error_db=err,
            moved_ues=moved,
            altitude_m=alt,
            min_throughput_mbps=min_tput,
            offered_mbps=None if mac is None else mac["offered_mbps"],
            served_mbps=None if mac is None else mac["served_mbps"],
            backlog_bytes=None if mac is None else mac["backlog_bytes"],
            dropped_bytes=None if mac is None else mac["dropped_bytes"],
            streamed=getattr(result, "streamed", None),
            rem_groups=getattr(result, "n_rem_groups", None),
        )
        records.append(record)
        if on_epoch is not None:
            on_epoch(record)
    return records


def _run_fleet_epochs(
    scenario: Scenario,
    fleet,
    n_epochs: int,
    budget_per_uav_m: Optional[float] = None,
    move_fraction: float = 0.0,
    seed: int = 0,
    on_epoch: Optional[Callable[[FleetEpochRecord], None]] = None,
) -> List[FleetEpochRecord]:
    """Drive a :class:`~repro.core.fleet.FleetController` through epochs.

    Mirrors :func:`run_epochs` exactly on the dynamics side — same
    seeded mobility RNG, same walkability rule, same re-heighting — so
    fleet and single-UAV runs see identical UE motion for a given
    seed.
    """
    rng = np.random.default_rng(seed)
    records: List[FleetEpochRecord] = []
    cum_d = 0.0
    cum_t = 0.0
    terrain = scenario.terrain

    def walkable(x: float, y: float) -> bool:
        return terrain.height_at(x, y) < 2.0

    for epoch in range(n_epochs):
        moved: tuple = ()
        if epoch > 0 and move_fraction > 0:
            moved_ids = relocate_fraction(
                scenario.ues, move_fraction, scenario.grid, rng, walkable
            )
            for ue in scenario.ues:
                if ue.ue_id in moved_ids:
                    ue.move_to(
                        ue.position.x,
                        ue.position.y,
                        terrain.height_at(ue.position.x, ue.position.y) + 1.5,
                    )
            moved = tuple(moved_ids)
        with perf.span("runner.epoch"):
            result = fleet.run_epoch(budget_per_uav_m)
        per_cell_agg = result.per_cell_aggregate_throughput_mbps
        per_cell_min = result.per_cell_min_throughput_mbps
        counts = result.ue_counts
        cells = tuple(sorted(per_cell_agg))
        cum_d += result.total_flight_distance_m
        cum_t += result.total_flight_time_s
        record = FleetEpochRecord(
            epoch=epoch,
            n_uavs=fleet.n_uavs,
            reuse_factor=result.reuse_factor,
            flight_distance_m=result.total_flight_distance_m,
            flight_time_s=result.total_flight_time_s,
            cumulative_distance_m=cum_d,
            cumulative_time_s=cum_t,
            aggregate_throughput_mbps=result.aggregate_throughput_mbps,
            min_throughput_mbps=result.min_throughput_mbps,
            cells=cells,
            per_cell_aggregate_mbps=tuple(per_cell_agg[c] for c in cells),
            per_cell_min_mbps=tuple(per_cell_min[c] for c in cells),
            ue_counts=tuple(counts[c] for c in cells),
            handovers=result.handovers,
            attaches=result.attaches,
            moved_ues=moved,
        )
        records.append(record)
        if on_epoch is not None:
            on_epoch(record)
    return records


def _run_event_epochs(
    scenario: Scenario,
    controller,
    events_config,
    serve_time_s: float,
    n_epochs: int,
    budget_per_epoch_m: Optional[float] = None,
    arrival_params: Optional[Dict] = None,
    seed: int = 0,
    on_epoch: Optional[Callable[[EpochRecord], None]] = None,
    faults=None,
):
    """Drive a controller from the event-driven attach/churn layer.

    The inversion of :func:`run_epochs`: instead of a fixed population
    and a fixed epoch count, the :class:`~repro.events.simulate.
    AttachSimulation` owns time.  UEs arrive, fight through the RACH
    and attach; every registration change rebuilds the controller's
    serving-time MAC state; every KPI heartbeat feeds the epoch
    trigger, and a re-plan runs the moment the first UE attaches and
    again whenever the trigger fires — up to ``n_epochs`` re-plans in
    ``serve_time_s`` simulated seconds.

    Returns ``(records, sim)`` so callers can inspect the final
    population census and counters.
    """
    from repro.events.simulate import AttachSimulation

    # The event layer owns attachment for the run: UEs start detached
    # and must earn their registration through the RACH.
    for ue in list(scenario.enodeb.ues):
        scenario.enodeb.deregister_ue(ue.ue_id)

    records: List[EpochRecord] = []
    cum = {"d": 0.0, "t": 0.0}
    rem_grid = getattr(controller, "rem_grid", scenario.eval_grid)
    counter_mark: Dict[str, int] = {}

    def run_one_epoch() -> None:
        with perf.span("runner.epoch"):
            if budget_per_epoch_m is not None:
                result = controller.run_epoch(budget_per_epoch_m)
            else:
                result = controller.run_epoch()
        with perf.span("runner.evaluate"):
            rel, err, alt, min_tput = _evaluate_epoch(
                scenario, controller, result, rem_grid
            )
        cum["d"] += result.flight_distance_m
        cum["t"] += result.flight_time_s
        mac = getattr(controller, "last_mac_summary", None)
        delta = {
            k: sim.counters[k] - counter_mark.get(k, 0) for k in sim.counters
        }
        counter_mark.update(sim.counters)
        record = EpochRecord(
            epoch=len(records),
            flight_distance_m=result.flight_distance_m,
            flight_time_s=result.flight_time_s,
            cumulative_distance_m=cum["d"],
            cumulative_time_s=cum["t"],
            relative_throughput=rel,
            rem_error_db=err,
            moved_ues=(),
            altitude_m=alt,
            min_throughput_mbps=min_tput,
            offered_mbps=None if mac is None else mac["offered_mbps"],
            served_mbps=None if mac is None else mac["served_mbps"],
            backlog_bytes=None if mac is None else mac["backlog_bytes"],
            dropped_bytes=None if mac is None else mac["dropped_bytes"],
            attached_ues=len(scenario.enodeb.connected_ues()),
            attaches=delta["attaches"],
            detaches=delta["detaches"],
            rach_collisions=delta["rach_collisions"],
            barred=delta["barred"],
        )
        records.append(record)
        if on_epoch is not None:
            on_epoch(record)

    def on_population_change(t_s: float) -> None:
        del t_s
        controller.refresh_population()

    def on_kpi(t_s: float) -> None:
        if len(records) >= n_epochs:
            return
        if not scenario.enodeb.connected_ues():
            return
        if controller.epoch_index == 0:
            # First UEs are in: plan the initial deployment.
            run_one_epoch()
            return
        if controller.needs_new_epoch(t_s):
            perf.count("events.trigger_replan")
            run_one_epoch()

    sim = AttachSimulation(
        scenario.enodeb,
        list(scenario.ues),
        events_config,
        seed=seed,
        arrival_params=arrival_params,
        faults=faults,
        on_population_change=on_population_change,
        on_kpi=on_kpi,
    )
    sim.run(serve_time_s)
    return records, sim


def overhead_to_target(
    records: List[EpochRecord],
    target_relative: float = 0.9,
    metric: str = "throughput",
    target_rem_db: float = 5.0,
    value: str = "time",
) -> Optional[float]:
    """Cumulative overhead when a target was first met.

    ``metric="throughput"``: first epoch with relative throughput >=
    ``target_relative``.  ``metric="rem"``: first epoch with REM error
    <= ``target_rem_db``.  None if never met.

    ``value`` selects the overhead unit: ``"time"`` returns cumulative
    flight seconds (wall clock, including slow localization flights);
    ``"distance"`` returns cumulative meters flown — the paper's
    overhead axes are measurement-flight time at cruise speed, which
    distance/cruise-speed matches more faithfully than wall clock.
    """
    if value not in ("time", "distance"):
        raise ValueError(f"unknown value kind {value!r}")
    for rec in records:
        hit = (
            metric == "throughput" and rec.relative_throughput >= target_relative
        ) or (metric == "rem" and rec.rem_error_db <= target_rem_db)
        if hit:
            return rec.cumulative_time_s if value == "time" else rec.cumulative_distance_m
    return None


# -- the one-call entrypoint ------------------------------------------------------


@dataclass(frozen=True)
class RunResult:
    """Typed outcome of :func:`run_simulation`.

    Attributes
    ----------
    scheme:
        Which controller ran
        (``"skyran"``/``"uniform"``/``"centroid"``/``"fleet"``).
    records:
        One :class:`EpochRecord` per epoch, in order (empty for fleet
        runs, which fill ``fleet_records`` instead).
    fault_counters / fallback_counters:
        ``faults.*`` / ``fallback.*`` perf-counter deltas accumulated
        over this run (empty for fault-free runs).
    learn_counters:
        ``learn.*`` perf-counter deltas (predictive fires,
        ``learn.fallback.*`` refusals, residual applications) for runs
        using :mod:`repro.learn` components; empty otherwise.
    fleet_records:
        One :class:`FleetEpochRecord` per epoch for ``scheme="fleet"``
        runs; empty otherwise.
    event_counters:
        The attach/churn layer's control-plane counters (arrivals,
        attaches, collisions, barring, storms) for ``scheme="events"``
        runs; empty otherwise.
    population:
        End-of-run lifecycle census (state name -> UE count, summing
        to the spawned population) for ``scheme="events"`` runs; empty
        otherwise.
    """

    scheme: str
    records: Tuple[EpochRecord, ...]
    fault_counters: Dict[str, int] = field(default_factory=dict)
    fallback_counters: Dict[str, int] = field(default_factory=dict)
    learn_counters: Dict[str, int] = field(default_factory=dict)
    fleet_records: Tuple[FleetEpochRecord, ...] = ()
    event_counters: Dict[str, int] = field(default_factory=dict)
    population: Dict[str, int] = field(default_factory=dict)

    @property
    def final(self) -> EpochRecord:
        """The last epoch's record."""
        return self.records[-1]

    @property
    def relative_throughput(self) -> float:
        """Relative throughput achieved after the final epoch."""
        return self.final.relative_throughput

    @property
    def total_distance_m(self) -> float:
        return self.final.cumulative_distance_m

    @property
    def total_time_s(self) -> float:
        return self.final.cumulative_time_s

    @property
    def total_faults(self) -> int:
        return sum(self.fault_counters.values())

    @property
    def total_fallbacks(self) -> int:
        return sum(self.fallback_counters.values())

    @property
    def final_fleet(self) -> FleetEpochRecord:
        """The last epoch's fleet record (fleet runs only)."""
        return self.fleet_records[-1]

    @property
    def total_handovers(self) -> int:
        """Sky-cell handovers across the whole run (0 for non-fleet)."""
        return sum(r.handovers for r in self.fleet_records)


def run_simulation(
    scenario: Scenario,
    config=None,
    faults=None,
    *,
    scheme: str = "skyran",
    n_epochs: int = 1,
    budget_per_epoch_m: Optional[float] = None,
    move_fraction: float = 0.0,
    seed: int = 0,
    altitude: Optional[float] = None,
    on_epoch: Optional[Callable[[EpochRecord], None]] = None,
    n_uavs: int = 1,
    association: str = "best_sinr",
    reuse_factor: int = 1,
    handover_hysteresis_db: float = 3.0,
    events=None,
    arrival_params: Optional[Dict] = None,
    serve_time_s: float = 120.0,
    mobility=None,
) -> RunResult:
    """Build a controller, run it for ``n_epochs``, return a :class:`RunResult`.

    The one public entrypoint experiments and smoke scripts share: it
    owns controller construction (so every caller wires faults and
    config the same way) and snapshots the ``faults.*``/``fallback.*``
    perf counters around the run.

    Parameters
    ----------
    scenario:
        The radio world to run against.
    config:
        :class:`~repro.core.config.SkyRANConfig` (defaults to paper
        defaults).
    faults:
        Optional :class:`~repro.faults.plan.FaultPlan` (or prepared
        :class:`~repro.faults.injector.FaultInjector`); None runs
        fault-free, bit-identical to a controller built directly.
    scheme:
        ``"skyran"``, ``"uniform"``, ``"centroid"``, ``"fleet"`` or
        ``"events"``.
    altitude:
        Pin the operating altitude (required semantics for the
        fixed-altitude baselines, optional for SkyRAN, which otherwise
        runs its own first-epoch search).
    n_uavs / association / reuse_factor / handover_hysteresis_db:
        Fleet knobs, used by ``scheme="fleet"`` only: fleet size,
        association-policy name
        (:func:`repro.core.association.available_associations`),
        frequency reuse factor and handover hysteresis.  The fleet
        scheme takes over cell attachment — UEs are moved off the
        scenario's eNodeB onto per-cell eNodeBs — and reports
        SINR-based :class:`FleetEpochRecord` rows under
        ``RunResult.fleet_records``.  ``n_uavs=1`` is the degenerate
        fleet: the single cell flies exactly the standalone SkyRAN
        controller's path.
    events / arrival_params / serve_time_s / mobility:
        Event-layer knobs, used by ``scheme="events"`` only.
        ``events`` is an :class:`~repro.events.simulate.EventConfig`
        (defaults to one with paper-ish RACH numerology);
        ``arrival_params`` feeds the arrival-process factory;
        ``serve_time_s`` is the simulated serving window the event
        loop runs for; ``mobility`` is an optional
        :class:`~repro.mobility.models.MobilityModel` stepping
        attached UEs.  The events scheme takes over attachment — UEs
        start detached and earn registration through the RACH — and
        ``n_epochs`` becomes a *cap* on trigger-driven re-plans rather
        than an exact count.
    """
    from repro.baselines.centroid import CentroidController
    from repro.baselines.uniform import UniformController
    from repro.core.config import SkyRANConfig
    from repro.core.controller import SkyRANController
    from repro.faults.injector import as_injector

    cfg = config if config is not None else SkyRANConfig()
    injector = as_injector(faults)
    if scheme == "skyran":
        controller = SkyRANController(
            scenario.channel, scenario.enodeb, cfg, seed=seed, faults=injector
        )
        if altitude is not None:
            controller.altitude = float(altitude)
    elif scheme == "uniform":
        controller = UniformController(
            scenario.channel,
            scenario.enodeb,
            cfg,
            altitude=float(altitude if altitude is not None else DEFAULT_FIXED_ALTITUDE_M),
            seed=seed,
            faults=injector,
        )
    elif scheme == "centroid":
        controller = CentroidController(
            scenario.channel,
            scenario.enodeb,
            cfg,
            altitude=float(altitude if altitude is not None else DEFAULT_FIXED_ALTITUDE_M),
            seed=seed,
            faults=injector,
        )
    elif scheme == "events":
        from repro.events.simulate import EventConfig

        controller = SkyRANController(
            scenario.channel, scenario.enodeb, cfg, seed=seed, faults=injector
        )
        if altitude is not None:
            controller.altitude = float(altitude)
        if mobility is not None:
            scenario.enodeb.mobility = mobility
        events_config = events if events is not None else EventConfig()
        before = perf.counters()
        records, sim = _run_event_epochs(
            scenario,
            controller,
            events_config,
            serve_time_s=serve_time_s,
            n_epochs=n_epochs,
            budget_per_epoch_m=budget_per_epoch_m,
            arrival_params=arrival_params,
            seed=seed,
            on_epoch=on_epoch,
            faults=injector,
        )
        deltas = perf.counters_since(before)
        return RunResult(
            scheme=scheme,
            records=tuple(records),
            fault_counters={k: v for k, v in deltas.items() if k.startswith("faults.")},
            fallback_counters={
                k: v for k, v in deltas.items() if k.startswith("fallback.")
            },
            learn_counters={k: v for k, v in deltas.items() if k.startswith("learn.")},
            event_counters=dict(sim.counters),
            population=sim.population(),
        )
    elif scheme == "fleet":
        from repro.core.fleet import FleetController

        # The fleet owns cell attachment: detach every UE from the
        # scenario's (single-cell) eNodeB so association can hand them
        # to per-cell eNodeBs.
        for ue in list(scenario.enodeb.ues):
            scenario.enodeb.deregister_ue(ue.ue_id)
        fleet = FleetController(
            channel=scenario.channel,
            ues=list(scenario.ues),
            n_uavs=n_uavs,
            config=cfg,
            seed=seed,
            association=association,
            reuse_factor=reuse_factor,
            handover_hysteresis_db=handover_hysteresis_db,
            faults=injector,
        )
        if altitude is not None:
            for ctrl in fleet.controllers:
                ctrl.altitude = float(altitude)
        before = perf.counters()
        fleet_records = _run_fleet_epochs(
            scenario,
            fleet,
            n_epochs,
            budget_per_uav_m=budget_per_epoch_m,
            move_fraction=move_fraction,
            seed=seed,
            on_epoch=on_epoch,
        )
        deltas = perf.counters_since(before)
        return RunResult(
            scheme=scheme,
            records=(),
            fault_counters={k: v for k, v in deltas.items() if k.startswith("faults.")},
            fallback_counters={
                k: v for k, v in deltas.items() if k.startswith("fallback.")
            },
            learn_counters={k: v for k, v in deltas.items() if k.startswith("learn.")},
            fleet_records=tuple(fleet_records),
        )
    else:
        raise ValueError(f"unknown scheme {scheme!r}")

    before = perf.counters()
    records = run_epochs(
        scenario,
        controller,
        n_epochs,
        budget_per_epoch_m=budget_per_epoch_m,
        move_fraction=move_fraction,
        seed=seed,
        on_epoch=on_epoch,
    )
    deltas = perf.counters_since(before)
    return RunResult(
        scheme=scheme,
        records=tuple(records),
        fault_counters={k: v for k, v in deltas.items() if k.startswith("faults.")},
        fallback_counters={k: v for k, v in deltas.items() if k.startswith("fallback.")},
        learn_counters={k: v for k, v in deltas.items() if k.startswith("learn.")},
    )

"""Multi-epoch experiment runner.

Drives a SkyRAN (or Uniform) controller through successive epochs with
UE dynamics between them, accounting flight distance/time, relative
throughput and REM accuracy per epoch — the engine behind the
Section 5 scale-up figures (26-31).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.mobility.models import relocate_fraction
from repro.perf import perf
from repro.sim.metrics import median_rem_error
from repro.sim.scenario import Scenario


@dataclass(frozen=True)
class EpochRecord:
    """Per-epoch outcome of a runner pass.

    Attributes
    ----------
    epoch:
        Epoch index.
    flight_distance_m / flight_time_s:
        Overhead spent this epoch.
    cumulative_distance_m / cumulative_time_s:
        Overhead spent so far, across epochs.
    relative_throughput:
        True mean-UE throughput at the chosen position over the
        optimum at the same altitude.
    rem_error_db:
        Median REM error vs ground truth (NaN for schemes without
        REMs).
    moved_ues:
        UE ids relocated before this epoch.
    """

    epoch: int
    flight_distance_m: float
    flight_time_s: float
    cumulative_distance_m: float
    cumulative_time_s: float
    relative_throughput: float
    rem_error_db: float
    moved_ues: tuple


def _evaluate_epoch(
    scenario: Scenario, controller, result, rem_grid
) -> tuple:
    """Relative throughput + REM error for one epoch result."""
    position = getattr(result, "placement", None)
    if position is not None:
        pos = position.position
    else:
        pos = result.position  # Centroid-style results
    rel = scenario.relative_throughput(pos)
    rem_maps = getattr(result, "rem_maps", None)
    if rem_maps:
        altitude = float(pos.z)
        truth = scenario.truth_maps(altitude, rem_grid)
        order = sorted(rem_maps)
        # Rows of truth follow scenario.ues order (by construction ids
        # are 1..n sorted), matching sorted map keys.
        err = median_rem_error(rem_maps, truth, ue_order=order)
    else:
        err = float("nan")
    return rel, err


def run_epochs(
    scenario: Scenario,
    controller,
    n_epochs: int,
    budget_per_epoch_m: Optional[float] = None,
    move_fraction: float = 0.0,
    seed: int = 0,
    on_epoch: Optional[Callable[[EpochRecord], None]] = None,
) -> List[EpochRecord]:
    """Run a controller for several epochs with optional UE dynamics.

    Before every epoch after the first, ``move_fraction`` of the UEs
    teleport to fresh walkable positions (the Section 5.2 dynamics
    model).  Works with SkyRAN and Uniform controllers (both expose
    ``run_epoch(budget_m)``).
    """
    rng = np.random.default_rng(seed)
    records: List[EpochRecord] = []
    cum_d = 0.0
    cum_t = 0.0
    terrain = scenario.terrain

    def walkable(x: float, y: float) -> bool:
        return terrain.height_at(x, y) < 2.0

    rem_grid = getattr(controller, "rem_grid", scenario.eval_grid)
    for epoch in range(n_epochs):
        moved: tuple = ()
        if epoch > 0 and move_fraction > 0:
            moved_ids = relocate_fraction(
                scenario.ues, move_fraction, scenario.grid, rng, walkable
            )
            # Keep UE antenna heights on the local ground.
            for ue in scenario.ues:
                if ue.ue_id in moved_ids:
                    ue.move_to(
                        ue.position.x,
                        ue.position.y,
                        terrain.height_at(ue.position.x, ue.position.y) + 1.5,
                    )
            moved = tuple(moved_ids)
        with perf.span("runner.epoch"):
            if budget_per_epoch_m is not None:
                result = controller.run_epoch(budget_per_epoch_m)
            else:
                result = controller.run_epoch()
        with perf.span("runner.evaluate"):
            rel, err = _evaluate_epoch(scenario, controller, result, rem_grid)
        cum_d += result.flight_distance_m
        cum_t += result.flight_time_s
        record = EpochRecord(
            epoch=epoch,
            flight_distance_m=result.flight_distance_m,
            flight_time_s=result.flight_time_s,
            cumulative_distance_m=cum_d,
            cumulative_time_s=cum_t,
            relative_throughput=rel,
            rem_error_db=err,
            moved_ues=moved,
        )
        records.append(record)
        if on_epoch is not None:
            on_epoch(record)
    return records


def overhead_to_target(
    records: List[EpochRecord],
    target_relative: float = 0.9,
    metric: str = "throughput",
    target_rem_db: float = 5.0,
    value: str = "time",
) -> Optional[float]:
    """Cumulative overhead when a target was first met.

    ``metric="throughput"``: first epoch with relative throughput >=
    ``target_relative``.  ``metric="rem"``: first epoch with REM error
    <= ``target_rem_db``.  None if never met.

    ``value`` selects the overhead unit: ``"time"`` returns cumulative
    flight seconds (wall clock, including slow localization flights);
    ``"distance"`` returns cumulative meters flown — the paper's
    overhead axes are measurement-flight time at cruise speed, which
    distance/cruise-speed matches more faithfully than wall clock.
    """
    if value not in ("time", "distance"):
        raise ValueError(f"unknown value kind {value!r}")
    for rec in records:
        hit = (
            metric == "throughput" and rec.relative_throughput >= target_relative
        ) or (metric == "rem" and rec.rem_error_db <= target_rem_db)
        if hit:
            return rec.cumulative_time_s if value == "time" else rec.cumulative_distance_m
    return None

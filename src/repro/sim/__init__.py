"""Simulation harness.

:class:`~repro.sim.scenario.Scenario` bundles a terrain, a channel, a
UE deployment and the ground-truth oracle (optimal position, relative
throughput).  :mod:`repro.sim.runner` drives controllers through
multi-epoch runs with UE dynamics and budget accounting — the engine
behind the Section 5 scale-up benches.
"""

from repro.sim.scenario import PlacementEvaluation, Scenario
from repro.sim.runner import (
    EpochRecord,
    RunResult,
    overhead_to_target,
    run_epochs,
    run_simulation,
)
from repro.sim.metrics import (
    median_rem_error,
    relative_series,
    summarize,
)
from repro.sim.records import load_records, save_records

__all__ = [
    "Scenario",
    "PlacementEvaluation",
    "EpochRecord",
    "RunResult",
    "run_epochs",
    "run_simulation",
    "overhead_to_target",
    "median_rem_error",
    "relative_series",
    "summarize",
    "load_records",
    "save_records",
]

"""Persisting experiment traces.

Long runs (the Section 5 scale-up sweeps) are expensive; this module
serializes :class:`~repro.sim.runner.EpochRecord` sequences — plus
arbitrary metadata — to JSON so results can be archived, diffed across
model revisions, and re-plotted without re-simulating.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.sim.runner import EpochRecord

#: Format version written into every trace file.
TRACE_VERSION = 1


def save_records(
    path: "str | Path",
    records: Sequence[EpochRecord],
    metadata: Optional[Dict] = None,
) -> None:
    """Write epoch records (and metadata) as a JSON trace file."""
    payload = {
        "version": TRACE_VERSION,
        "metadata": dict(metadata or {}),
        "records": [asdict(r) for r in records],
    }
    Path(path).write_text(json.dumps(payload, indent=2, default=_coerce))


def _coerce(obj):
    """JSON fallback for numpy scalars and tuples."""
    if hasattr(obj, "item"):
        return obj.item()
    if isinstance(obj, tuple):
        return list(obj)
    raise TypeError(f"cannot serialize {type(obj).__name__}")


def load_records(path: "str | Path"):
    """Read a trace file back into (records, metadata).

    Raises
    ------
    ValueError
        If the file's format version is unknown.
    """
    payload = json.loads(Path(path).read_text())
    version = payload.get("version")
    if version != TRACE_VERSION:
        raise ValueError(f"unsupported trace version {version!r}")
    records: List[EpochRecord] = []
    for row in payload["records"]:
        row = dict(row)
        row["moved_ues"] = tuple(row.get("moved_ues", ()))
        records.append(EpochRecord(**row))
    return records, payload.get("metadata", {})

"""Scenario construction and the ground-truth oracle.

A scenario is one radio world: terrain + channel + UE deployment +
the LTE stack serving them.  It also owns the *oracle*: ground-truth
SNR maps (what an exhaustive measurement flight would find, Fig. 15),
the true optimal UAV position, and the relative-throughput metric
every figure reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.channel.groundtruth import ground_truth_stack
from repro.channel.model import ChannelModel
from repro.geo.grid import GridSpec
from repro.geo.points import Point3D
from repro.lte.enodeb import ENodeB
from repro.lte.throughput import throughput_mbps
from repro.lte.ue import UE, UE_ANTENNA_HEIGHT_M
from repro.terrain.generators import make_terrain
from repro.terrain.heightmap import Terrain


@dataclass(frozen=True)
class PlacementEvaluation:
    """True performance of one UAV position.

    Attributes
    ----------
    snr_db:
        True mean SNR per UE id.
    throughput_mbps:
        Full-cell throughput per UE id.
    avg_throughput_mbps / min_throughput_mbps:
        The two aggregate objectives the paper discusses.
    """

    snr_db: Dict[int, float]
    throughput_mbps: Dict[int, float]
    avg_throughput_mbps: float
    min_throughput_mbps: float


@dataclass
class Scenario:
    """One radio world with its evaluation oracle.

    Build with :meth:`create` rather than the constructor; the oracle
    caches ground-truth maps per (altitude, grid) because they are
    expensive.
    """

    terrain: Terrain
    channel: ChannelModel
    ues: List[UE]
    enodeb: ENodeB
    eval_grid: GridSpec
    _truth_cache: Dict[tuple, np.ndarray] = field(default_factory=dict, repr=False)

    #: Bound on stack-level truth cache entries (the per-UE maps
    #: underneath live in the channel's LRU oracle cache).
    _TRUTH_CACHE_MAX = 32

    # -- construction ------------------------------------------------------------

    @classmethod
    def create(
        cls,
        terrain: "Terrain | str",
        n_ues: int,
        layout: str = "uniform",
        cell_size: float = 1.0,
        eval_cell_size: Optional[float] = None,
        seed: int = 0,
        channel_kwargs: Optional[dict] = None,
        channel: Optional[ChannelModel] = None,
    ) -> "Scenario":
        """Build a scenario.

        Parameters
        ----------
        terrain:
            A :class:`Terrain` or a generator name
            (``campus``/``rural``/``nyc``/``large``/``terrain-N``).
        n_ues:
            Number of UEs to deploy (all attached to the eNodeB).
        layout:
            ``"uniform"`` — UEs uniform over walkable cells (paper
            Topology A); ``"clustered"`` — most UEs packed around one
            spot (Topology B).
        cell_size:
            Terrain raster cell size when building by name.
        eval_cell_size:
            Grid pitch for ground-truth maps (defaults to 4x the
            terrain cell — the oracle does not need 1 m pitch).
        seed:
            Seed for UE placement.
        channel_kwargs:
            Extra :class:`ChannelModel` parameters.
        channel:
            A prebuilt :class:`ChannelModel` to use instead of
            constructing one.  Lets callers (the experiment runner)
            share one channel — and its LRU map-oracle caches — across
            scenarios that differ only in UE seed/layout.  The
            scenario's terrain is taken from the channel; ``terrain``
            and ``channel_kwargs`` are ignored.
        """
        if channel is not None:
            terrain = channel.terrain
        else:
            if isinstance(terrain, str):
                terrain = make_terrain(terrain, cell_size=cell_size)
            channel = ChannelModel(terrain, **(channel_kwargs or {}))
        rng = np.random.default_rng(seed)
        positions = cls._draw_ue_positions(terrain, n_ues, layout, rng)
        enodeb = ENodeB()
        ues = []
        for i, (x, y) in enumerate(positions, start=1):
            ground = terrain.height_at(x, y)
            ue = UE(ue_id=i, srs_root=(25 + i) % 100 or 25)
            ue.move_to(x, y, ground + UE_ANTENNA_HEIGHT_M)
            enodeb.register_ue(ue)
            ues.append(ue)
        factor = max(
            1,
            int(round((eval_cell_size or 4 * terrain.grid.cell_size) / terrain.grid.cell_size)),
        )
        eval_grid = terrain.grid.coarsen(factor)
        return cls(terrain, channel, ues, enodeb, eval_grid)

    @staticmethod
    def _draw_ue_positions(
        terrain: Terrain, n_ues: int, layout: str, rng: np.random.Generator
    ) -> List[Tuple[float, float]]:
        """Drop UEs on walkable (non-rooftop) cells."""
        if n_ues < 1:
            raise ValueError(f"need at least one UE, got {n_ues}")
        iy, ix = terrain.free_cells(clearance=2.0)
        if len(iy) == 0:
            raise ValueError("terrain has no walkable cells")
        grid = terrain.grid
        free_xy = np.column_stack(
            [
                grid.origin_x + (ix + 0.5) * grid.cell_size,
                grid.origin_y + (iy + 0.5) * grid.cell_size,
            ]
        )
        if layout == "uniform":
            picks = rng.choice(len(free_xy), size=n_ues, replace=False)
            return [tuple(free_xy[i]) for i in picks]
        if layout == "ring":
            # UEs ringing the area center (the paper's testbed: UEs
            # placed around the campus building so each experiences
            # both LOS and NLOS over a flight; the centroid then falls
            # on/near the building).
            cx = grid.origin_x + grid.width / 2
            cy = grid.origin_y + grid.height / 2
            r_min = 0.18 * min(grid.width, grid.height)
            r_max = 0.42 * min(grid.width, grid.height)
            d = np.hypot(free_xy[:, 0] - cx, free_xy[:, 1] - cy)
            band = np.flatnonzero((d >= r_min) & (d <= r_max))
            if len(band) < n_ues:
                band = np.argsort(np.abs(d - (r_min + r_max) / 2))[: 4 * n_ues]
            # Spread around the ring: pick the candidate nearest each
            # of n_ues evenly spaced bearings (jittered).
            angles = np.arctan2(free_xy[band, 1] - cy, free_xy[band, 0] - cx)
            out = []
            for i in range(n_ues):
                target = 2 * np.pi * i / n_ues + rng.uniform(-0.25, 0.25)
                target = (target + np.pi) % (2 * np.pi) - np.pi
                diff = np.abs((angles - target + np.pi) % (2 * np.pi) - np.pi)
                pick = band[int(np.argmin(diff + rng.uniform(0, 1e-3, len(diff))))]
                out.append(tuple(free_xy[pick]))
            return out
        if layout == "pockets":
            # UEs concentrated in a few road-pocket clusters (the
            # Fig. 1 deployment: "concentrated in few pockets of
            # locations/roads").
            n_pockets = 3
            centers = free_xy[rng.choice(len(free_xy), size=n_pockets, replace=False)]
            radius = 0.10 * min(grid.width, grid.height)
            out = []
            for i in range(n_ues):
                center = centers[i % n_pockets]
                d = np.hypot(*(free_xy - center).T)
                near = np.flatnonzero(d <= radius)
                if len(near) == 0:
                    near = np.argsort(d)[:20]
                out.append(tuple(free_xy[rng.choice(near)]))
            return out
        if layout == "clustered":
            # One anchor UE cluster holding ~2/3 of UEs, rest scattered.
            center = free_xy[rng.integers(len(free_xy))]
            radius = 0.12 * min(grid.width, grid.height)
            d = np.hypot(*(free_xy - center).T)
            near = np.flatnonzero(d <= radius)
            if len(near) == 0:
                near = np.argsort(d)[: max(2 * n_ues, 10)]
            n_cluster = max(1, (2 * n_ues) // 3)
            n_far = n_ues - n_cluster
            picks_near = rng.choice(near, size=min(n_cluster, len(near)), replace=False)
            far = np.setdiff1d(np.arange(len(free_xy)), near)
            picks_far = (
                rng.choice(far, size=n_far, replace=False) if n_far > 0 else np.array([], dtype=int)
            )
            picks = np.concatenate([picks_near, picks_far])
            return [tuple(free_xy[int(i)]) for i in picks]
        raise ValueError(f"unknown layout {layout!r}")

    # -- oracle -------------------------------------------------------------------

    @property
    def grid(self) -> GridSpec:
        return self.terrain.grid

    def ue_positions(self) -> List[np.ndarray]:
        return [ue.xyz for ue in self.ues]

    def truth_maps(
        self,
        altitude: float,
        grid: Optional[GridSpec] = None,
        workers: Optional[int] = None,
    ) -> np.ndarray:
        """Ground-truth SNR maps, ``(n_ue, ny, nx)``, cached.

        The stack-level cache keys on altitude, grid and the UE
        positions so repeated queries return the identical array.
        When a UE moves the stack is rebuilt, but the heavy lifting is
        per-UE memoized inside the channel's map oracle — only the
        moved UEs are actually re-traced.
        """
        g = grid or self.eval_grid
        pos_key = tuple(
            (round(ue.position.x, 2), round(ue.position.y, 2)) for ue in self.ues
        )
        key = (round(altitude, 2), g, pos_key)
        if key not in self._truth_cache:
            self._truth_cache[key] = ground_truth_stack(
                self.channel, self.ue_positions(), altitude, g, workers=workers
            )
            while len(self._truth_cache) > self._TRUTH_CACHE_MAX:
                self._truth_cache.pop(next(iter(self._truth_cache)))
        return self._truth_cache[key]

    def evaluate(self, position) -> PlacementEvaluation:
        """True performance of a UAV position (exact, not gridded)."""
        pos = position.as_array() if isinstance(position, Point3D) else np.asarray(position, dtype=float)
        snrs: Dict[int, float] = {}
        tputs: Dict[int, float] = {}
        for ue in self.ues:
            snr = float(self.channel.snr_db(pos, ue.xyz))
            snrs[ue.ue_id] = snr
            tputs[ue.ue_id] = throughput_mbps(snr)
        values = list(tputs.values())
        return PlacementEvaluation(
            snr_db=snrs,
            throughput_mbps=tputs,
            avg_throughput_mbps=float(np.mean(values)),
            min_throughput_mbps=float(np.min(values)),
        )

    def optimal_position(
        self,
        altitude: float,
        objective: str = "avg",
        grid: Optional[GridSpec] = None,
    ) -> Tuple[Point3D, float]:
        """True optimal UAV position at an altitude.

        ``objective="avg"`` maximizes mean UE throughput (what the
        figures normalize by); ``"maxmin"`` maximizes the worst UE's
        SNR (SkyRAN's own placement objective).
        """
        g = grid or self.eval_grid
        stack = self.truth_maps(altitude, g)
        if objective == "avg":
            tput = throughput_mbps(stack)
            score = tput.mean(axis=0)
        elif objective == "maxmin":
            score = stack.min(axis=0)
        else:
            raise ValueError(f"unknown objective {objective!r}")
        iy, ix = np.unravel_index(int(np.argmax(score)), score.shape)
        x, y = g.center_of(ix, iy)
        pos = Point3D(x, y, altitude)
        if objective == "avg":
            return pos, self.evaluate(pos).avg_throughput_mbps
        return pos, float(score[iy, ix])

    def relative_throughput(
        self, position, altitude: Optional[float] = None
    ) -> float:
        """Mean UE throughput at ``position`` / at the true optimum.

        The reference optimum is the position the paper's methodology
        would call optimal: the *max-min-SNR* argmax over the
        ground-truth REMs (Section 4.2 determines "the true optimal
        UAV operating point" from the exhaustively measured REM with
        the same placement criterion SkyRAN uses).  The optimum is
        searched at the same altitude as the queried position unless
        overridden, isolating horizontal placement quality ("we
        present results for UAV positioning at a given altitude").
        """
        pos = position.as_array() if isinstance(position, Point3D) else np.asarray(position, dtype=float)
        alt = float(pos[2]) if altitude is None else altitude
        opt_pos, _ = self.optimal_position(alt, "maxmin")
        best = self.evaluate(opt_pos).avg_throughput_mbps
        if best <= 0:
            return 0.0
        return self.evaluate(pos).avg_throughput_mbps / best

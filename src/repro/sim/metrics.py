"""Metric helpers shared by benches and tests."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from repro.rem.accuracy import median_abs_error_db


def median_rem_error(
    estimated_maps: Mapping[int, np.ndarray],
    truth_stack: np.ndarray,
    ue_order: Optional[Sequence[int]] = None,
) -> float:
    """Median REM error over UEs, in dB.

    ``truth_stack`` rows must correspond to ``ue_order`` (or the sorted
    keys of ``estimated_maps`` when omitted).  The per-UE error is the
    median absolute per-cell error; the reported value is the median of
    those across UEs — matching the "Median REM Accuracy (dB)" axis of
    Figs. 4, 20, 24, 28 and 30.
    """
    keys = list(ue_order) if ue_order is not None else sorted(estimated_maps)
    if len(keys) != len(truth_stack):
        raise ValueError(
            f"{len(keys)} estimated maps vs {len(truth_stack)} truth maps"
        )
    errors = [
        median_abs_error_db(estimated_maps[k], truth_stack[i])
        for i, k in enumerate(keys)
    ]
    return float(np.median(errors))


def relative_series(values: Iterable[float], reference: float) -> List[float]:
    """Normalize a series by a reference (0 if the reference is 0)."""
    if reference <= 0:
        return [0.0 for _ in values]
    return [v / reference for v in values]


def jain_fairness(values: Sequence[float]) -> float:
    """Jain's fairness index ``(sum x)^2 / (n * sum x^2)``.

    1.0 means perfectly equal allocation; ``1/n`` means one user gets
    everything.  Defined as 1.0 for an empty or all-zero allocation
    (nothing is unfairly shared).
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return 1.0
    denom = float(arr.size * np.sum(arr * arr))
    if denom == 0.0:
        return 1.0
    return float(np.sum(arr) ** 2 / denom)


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Five-number-ish summary used in bench printouts."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sequence")
    return {
        "mean": float(np.mean(arr)),
        "median": float(np.median(arr)),
        "p10": float(np.percentile(arr, 10)),
        "p90": float(np.percentile(arr, 90)),
        "min": float(np.min(arr)),
        "max": float(np.max(arr)),
    }

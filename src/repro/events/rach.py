"""LTE random-access (RACH) contention primitives.

The attach storm lives or dies on the RACH: every UE that wants in
draws one of ``n_preambles`` Zadoff-Chu preambles and transmits it in
the next PRACH opportunity.  Two UEs picking the same preamble in the
same opportunity collide — the eNodeB sees one (garbled) preamble,
neither gets past contention resolution, and both back off and retry.
Survivors still compete for the RAR window's grant capacity
(``rar_window_grants`` msg2 uplink grants per opportunity); overflow
also retries.  Under a true storm the cell sheds load *before* the
preamble draw with access-class barring (ACB, TS 36.331): each UE
draws a uniform, proceeds only if it falls under ``barring_factor``,
otherwise waits a randomized spell of the barring time.

Everything here is pure computation over a caller-provided RNG — the
event layer owns time, state, and the per-UE stream discipline.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Sequence, Tuple

import numpy as np

#: Contention-based preambles per PRACH opportunity (64 minus the 10
#: typically reserved for contention-free handover access).
DEFAULT_N_PREAMBLES = 54


class AccessState(Enum):
    """Where a UE is in its attach lifecycle."""

    PENDING = "pending"  # not yet arrived
    WAITING = "waiting"  # arrived; barred, backing off, or queued for PRACH
    ATTACHED = "attached"
    DETACHED = "detached"  # completed its session and left
    FAILED = "failed"  # exhausted max attach attempts


@dataclass(frozen=True)
class RachOutcome:
    """One PRACH opportunity's contention result.

    Attributes
    ----------
    winners:
        UE ids that picked a singleton preamble *and* got a RAR grant,
        in grant order (preamble index order — the eNodeB answers
        preambles low to high).
    collided:
        UE ids whose preamble was also picked by someone else.
    starved:
        UE ids with a clean preamble but no RAR grant left.
    """

    winners: Tuple[int, ...]
    collided: Tuple[int, ...]
    starved: Tuple[int, ...]


def resolve_contention(
    contenders: Sequence[int],
    preamble_draws: Dict[int, int],
    rar_window_grants: int,
) -> RachOutcome:
    """Resolve one PRACH opportunity.

    ``preamble_draws`` maps each contender to its drawn preamble index
    (the event layer draws these from per-UE streams).  Singleton
    preambles win contention; of those, the first ``rar_window_grants``
    in preamble-index order receive msg2 grants, the rest are starved
    and must retry.
    """
    if rar_window_grants < 1:
        raise ValueError(f"rar_window_grants must be >= 1, got {rar_window_grants}")
    by_preamble: Dict[int, List[int]] = {}
    for ue_id in contenders:
        by_preamble.setdefault(preamble_draws[ue_id], []).append(ue_id)
    winners: List[int] = []
    collided: List[int] = []
    starved: List[int] = []
    for preamble in sorted(by_preamble):
        group = by_preamble[preamble]
        if len(group) > 1:
            collided.extend(sorted(group))
        elif len(winners) < rar_window_grants:
            winners.append(group[0])
        else:
            starved.append(group[0])
    return RachOutcome(
        winners=tuple(winners), collided=tuple(collided), starved=tuple(starved)
    )


def barring_wait_s(
    rng: np.random.Generator, barring_factor: float, barring_time_s: float
) -> float:
    """One ACB draw: 0.0 to proceed now, else the wait before retrying.

    TS 36.331 §5.3.3.11: draw ``u``; if ``u < barring_factor`` access
    proceeds, otherwise the UE is barred for
    ``(0.7 + 0.6 * u2) * barring_time_s`` with a second uniform draw.
    Two draws happen on the barred path only, so a fully-open cell
    (factor 1.0) consumes exactly one uniform per access attempt.
    """
    if not 0.0 < barring_factor <= 1.0:
        raise ValueError(f"barring_factor must be in (0, 1], got {barring_factor}")
    if barring_time_s < 0:
        raise ValueError(f"barring_time_s must be >= 0, got {barring_time_s}")
    if float(rng.uniform()) < barring_factor:
        return 0.0
    return (0.7 + 0.6 * float(rng.uniform())) * barring_time_s


def backoff_wait_s(
    rng: np.random.Generator, backoff_max_s: float, attempt: int
) -> float:
    """Capped exponential backoff after a collision or RAR starvation.

    Uniform over ``[0, backoff_max_s * 2**min(attempt, 8)]`` — the
    binary-exponential spread that drains a synchronized collision
    burst, with the exponent capped so waits stay bounded.
    """
    if backoff_max_s <= 0:
        raise ValueError(f"backoff_max_s must be positive, got {backoff_max_s}")
    if attempt < 0:
        raise ValueError(f"attempt must be >= 0, got {attempt}")
    return float(rng.uniform(0.0, backoff_max_s * float(2 ** min(attempt, 8))))

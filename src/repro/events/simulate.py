"""Event-driven UE attach/churn simulation.

:class:`AttachSimulation` drives the control plane the epoch loop has
so far taken for granted: UEs *arrive* (per an arrival process), fight
through the RACH (preamble contention, RAR grants, access-class
barring, exponential backoff), attach to the eNodeB, hold a session,
move (per a mobility model), and detach — while attach storms from the
fault layer knock attached populations back into simultaneous
re-access.  The eNodeB's registration set therefore *changes under*
the controller, which is exactly what the ``EpochTrigger`` needs to
react to.

Time is a deterministic event heap (:mod:`repro.events.heap`) — no
simpy, no wall clock.  Event kinds:

``arrival``   a UE first requests service
``access``    an access attempt (possibly barred) queueing for PRACH
``rach``      one PRACH opportunity: contention over the queued UEs
``attach``    contention winner completes msg3/msg4 and registers
``detach``    a session ends and the UE deregisters
``storm``     a fault-plan onset knocks attached UEs into re-access
``move``      periodic mobility step over attached UEs
``kpi``       periodic serving-KPI sample (the trigger's heartbeat)

RNG contract
------------

Three stream families spawn from the run seed, all tagged with
:data:`~repro.events.arrivals.EVENTS_SPAWN_KEY` so they can never
collide with traffic, fault, or controller randomness:

* ``(KEY, 0)`` — the arrival process's draws;
* ``(KEY, 1)`` — mobility steps;
* ``(KEY, 2, ue_id)`` — per-UE access randomness (preambles, ACB,
  backoff, session length).  Streams depend only on ``(seed, ue_id)``,
  so one UE's draws never reshuffle another's, and a replay with the
  same seed is bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import floor
from typing import Callable, Dict, List, Optional, Set

import numpy as np

from repro.events.arrivals import EVENTS_SPAWN_KEY, make_arrival_process
from repro.events.heap import EventQueue
from repro.events.rach import (
    DEFAULT_N_PREAMBLES,
    AccessState,
    backoff_wait_s,
    barring_wait_s,
    resolve_contention,
)
from repro.faults.injector import FaultInjector
from repro.lte.enodeb import ENodeB
from repro.lte.ue import UE
from repro.perf import perf


@dataclass(frozen=True, kw_only=True)
class EventConfig:
    """Knobs of the attach/churn control plane.

    Attributes
    ----------
    arrival_process:
        Registered arrival-process name (``uniform``, ``poisson``,
        ``stadium``, ``flash_crowd``).
    arrival_window_s:
        Window the arrival process spreads first arrivals over.
    session_mean_s:
        Mean (exponential) session length; 0 disables churn — attached
        UEs stay for the whole run.
    rach_period_s:
        PRACH opportunity spacing (config index 3: one per 5 ms frame
        pair is common; the default 5 ms keeps storms sharp).
    n_preambles:
        Contention preambles per opportunity.
    rar_window_grants:
        msg2 grants the RAR window can carry per opportunity; clean
        preambles beyond this starve and retry.
    attach_delay_s:
        msg3/msg4 latency between winning contention and registering.
    max_attach_attempts:
        Access attempts before a UE gives up (counts as ``failed``).
    backoff_max_s:
        Base of the capped binary-exponential backoff spread.
    acb_threshold:
        Access-class barring engages while more than this many UEs are
        simultaneously waiting for access (an overload-triggered SIB2
        rewrite).  Barring never engages with ``barring_factor`` 1.0.
    barring_factor / barring_time_s:
        TS 36.331 ACB parameters used while barring is engaged.
    move_period_s:
        Mobility step period (0 disables stepping even with a model).
    kpi_period_s:
        Serving-KPI sampling period — how often the epoch trigger sees
        a fresh sample.
    """

    arrival_process: str = "poisson"
    arrival_window_s: float = 60.0
    session_mean_s: float = 0.0
    rach_period_s: float = 0.005
    n_preambles: int = DEFAULT_N_PREAMBLES
    rar_window_grants: int = 8
    attach_delay_s: float = 0.03
    max_attach_attempts: int = 10
    backoff_max_s: float = 0.02
    acb_threshold: int = 64
    barring_factor: float = 0.5
    barring_time_s: float = 4.0
    move_period_s: float = 1.0
    kpi_period_s: float = 5.0

    def __post_init__(self) -> None:
        if self.arrival_window_s <= 0:
            raise ValueError(f"arrival_window_s must be positive, got {self.arrival_window_s}")
        if self.session_mean_s < 0:
            raise ValueError(f"session_mean_s must be >= 0, got {self.session_mean_s}")
        if self.rach_period_s <= 0:
            raise ValueError(f"rach_period_s must be positive, got {self.rach_period_s}")
        if self.n_preambles < 1:
            raise ValueError(f"n_preambles must be >= 1, got {self.n_preambles}")
        if self.rar_window_grants < 1:
            raise ValueError(f"rar_window_grants must be >= 1, got {self.rar_window_grants}")
        if self.attach_delay_s < 0:
            raise ValueError(f"attach_delay_s must be >= 0, got {self.attach_delay_s}")
        if self.max_attach_attempts < 1:
            raise ValueError(f"max_attach_attempts must be >= 1, got {self.max_attach_attempts}")
        if self.backoff_max_s <= 0:
            raise ValueError(f"backoff_max_s must be positive, got {self.backoff_max_s}")
        if self.acb_threshold < 0:
            raise ValueError(f"acb_threshold must be >= 0, got {self.acb_threshold}")
        if not 0.0 < self.barring_factor <= 1.0:
            raise ValueError(f"barring_factor must be in (0, 1], got {self.barring_factor}")
        if self.barring_time_s < 0:
            raise ValueError(f"barring_time_s must be >= 0, got {self.barring_time_s}")
        if self.move_period_s < 0:
            raise ValueError(f"move_period_s must be >= 0, got {self.move_period_s}")
        if self.kpi_period_s <= 0:
            raise ValueError(f"kpi_period_s must be positive, got {self.kpi_period_s}")


class AttachSimulation:
    """Runs the attach/churn control plane over an eNodeB.

    The eNodeB should start with *no* registered UEs; the simulation
    owns registration for the run.  ``on_population_change(t_s)`` fires
    after every registration-set change (attach, detach, storm
    knock-off) and ``on_kpi(t_s)`` at every KPI heartbeat — the runner
    wires these to the controller's MAC rebuild and epoch trigger.
    """

    def __init__(
        self,
        enodeb: ENodeB,
        ues: List[UE],
        config: EventConfig,
        seed: int = 0,
        arrival_params: Optional[Dict] = None,
        faults: Optional[FaultInjector] = None,
        on_population_change: Optional[Callable[[float], None]] = None,
        on_kpi: Optional[Callable[[float], None]] = None,
    ) -> None:
        ids = [ue.ue_id for ue in ues]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate UE ids")
        self.enodeb = enodeb
        self.ues = {ue.ue_id: ue for ue in ues}
        self.config = config
        self.seed = int(seed)
        self.arrival_params = dict(arrival_params or {})
        self.faults = faults
        self.on_population_change = on_population_change
        self.on_kpi = on_kpi
        self.queue = EventQueue()
        self.now_s = 0.0
        self.state: Dict[int, AccessState] = {
            ue_id: AccessState.PENDING for ue_id in self.ues
        }
        self.counters: Dict[str, int] = {
            "arrivals": 0,
            "attaches": 0,
            "detaches": 0,
            "rach_attempts": 0,
            "rach_collisions": 0,
            "rach_starved": 0,
            "barred": 0,
            "backoffs": 0,
            "failed": 0,
            "storm_onsets": 0,
            "storm_knockoffs": 0,
        }
        self._arrivals_rng = np.random.default_rng(
            np.random.SeedSequence(self.seed, spawn_key=(EVENTS_SPAWN_KEY, 0))
        )
        self._mobility_rng = np.random.default_rng(
            np.random.SeedSequence(self.seed, spawn_key=(EVENTS_SPAWN_KEY, 1))
        )
        self._ue_rng: Dict[int, np.random.Generator] = {}
        self._attempts: Dict[int, int] = {ue_id: 0 for ue_id in self.ues}
        #: Session generation per UE: bumped on every storm knock-off
        #: and re-attach so a detach scheduled for a *previous* session
        #: is recognized as stale and dropped.
        self._generation: Dict[int, int] = {ue_id: 0 for ue_id in self.ues}
        self._rach_queue: Set[int] = set()
        self._rach_scheduled: Set[float] = set()
        self._arrival_times: Optional[np.ndarray] = None

    # -- per-UE streams -----------------------------------------------------------

    def _rng_for(self, ue_id: int) -> np.random.Generator:
        rng = self._ue_rng.get(ue_id)
        if rng is None:
            rng = np.random.default_rng(
                np.random.SeedSequence(
                    self.seed, spawn_key=(EVENTS_SPAWN_KEY, 2, int(ue_id))
                )
            )
            self._ue_rng[ue_id] = rng
        return rng

    # -- bookkeeping ---------------------------------------------------------------

    def population(self) -> Dict[str, int]:
        """Lifecycle census; values always sum to the spawned UE count."""
        counts = {s.value: 0 for s in AccessState}
        for s in self.state.values():
            counts[s.value] += 1
        return counts

    def attached_ids(self) -> List[int]:
        return sorted(
            ue_id
            for ue_id, s in self.state.items()
            if s is AccessState.ATTACHED
        )

    def _waiting_count(self) -> int:
        return sum(1 for s in self.state.values() if s is AccessState.WAITING)

    def _count(self, name: str, n: int = 1) -> None:
        self.counters[name] += n
        perf.count(f"events.{name}", n)

    def _notify_population(self) -> None:
        if self.on_population_change is not None:
            self.on_population_change(self.now_s)

    # -- scheduling helpers --------------------------------------------------------

    def _schedule_access(self, ue_id: int, t_s: float) -> None:
        self.queue.push(t_s, "access", ue_id)

    def _schedule_rach_opportunity(self, after_s: float) -> None:
        """Ensure a PRACH opportunity event exists at the next boundary."""
        period = self.config.rach_period_s
        t_op = (floor(after_s / period + 1e-9) + 1) * period
        if t_op not in self._rach_scheduled:
            self._rach_scheduled.add(t_op)
            self.queue.push(t_op, "rach", None)

    # -- event handlers ------------------------------------------------------------

    def _handle_arrival(self, ue_id: int) -> None:
        self.state[ue_id] = AccessState.WAITING
        self._count("arrivals")
        self._schedule_access(ue_id, self.now_s)

    def _handle_access(self, ue_id: int) -> None:
        if self.state[ue_id] is not AccessState.WAITING:
            return  # attached by an earlier event at this timestamp
        cfg = self.config
        barring_engaged = (
            cfg.barring_factor < 1.0 and self._waiting_count() > cfg.acb_threshold
        )
        if barring_engaged:
            wait = barring_wait_s(
                self._rng_for(ue_id), cfg.barring_factor, cfg.barring_time_s
            )
            if wait > 0.0:
                self._count("barred")
                self._schedule_access(ue_id, self.now_s + wait)
                return
        self._rach_queue.add(ue_id)
        self._schedule_rach_opportunity(self.now_s)

    def _handle_rach(self) -> None:
        self._rach_scheduled.discard(self.now_s)
        contenders = sorted(
            ue_id
            for ue_id in self._rach_queue
            if self.state[ue_id] is AccessState.WAITING
        )
        self._rach_queue.clear()
        if not contenders:
            return
        cfg = self.config
        draws = {
            ue_id: int(self._rng_for(ue_id).integers(cfg.n_preambles))
            for ue_id in contenders
        }
        outcome = resolve_contention(contenders, draws, cfg.rar_window_grants)
        self._count("rach_attempts", len(contenders))
        if outcome.collided:
            self._count("rach_collisions", len(outcome.collided))
        if outcome.starved:
            self._count("rach_starved", len(outcome.starved))
        for ue_id in outcome.winners:
            self.queue.push(
                self.now_s + cfg.attach_delay_s,
                "attach",
                (ue_id, self._generation[ue_id]),
            )
        for ue_id in (*outcome.collided, *outcome.starved):
            self._attempts[ue_id] += 1
            if self._attempts[ue_id] >= cfg.max_attach_attempts:
                self.state[ue_id] = AccessState.FAILED
                self._count("failed")
                continue
            self._count("backoffs")
            wait = backoff_wait_s(
                self._rng_for(ue_id), cfg.backoff_max_s, self._attempts[ue_id]
            )
            self._schedule_access(ue_id, self.now_s + wait)

    def _handle_attach(self, ue_id: int, generation: int) -> None:
        if generation != self._generation[ue_id]:
            return  # a storm knocked this UE off between msg2 and msg4
        if self.state[ue_id] is not AccessState.WAITING:
            return
        self.state[ue_id] = AccessState.ATTACHED
        self._attempts[ue_id] = 0
        self.enodeb.register_ue(self.ues[ue_id], provision=True, now_s=self.now_s)
        self._count("attaches")
        if self.config.session_mean_s > 0:
            session = float(
                self._rng_for(ue_id).exponential(self.config.session_mean_s)
            )
            self.queue.push(
                self.now_s + session, "detach", (ue_id, self._generation[ue_id])
            )
        self._notify_population()

    def _handle_detach(self, ue_id: int, generation: int) -> None:
        if generation != self._generation[ue_id]:
            return  # stale: the session this detach belonged to is gone
        if self.state[ue_id] is not AccessState.ATTACHED:
            return
        self.state[ue_id] = AccessState.DETACHED
        self._generation[ue_id] += 1
        self.enodeb.deregister_ue(ue_id)
        self._count("detaches")
        self._notify_population()

    def _handle_storm(self) -> None:
        """One storm onset: knock attached UEs into simultaneous re-access.

        Models a cell-wide radio-link-failure burst: the affected UEs
        (lowest ids first, a deterministic choice) lose their session,
        deregister, and all hit the very next PRACH opportunity at
        once — the collision storm ACB exists to absorb.
        """
        self._count("storm_onsets")
        attached = self.attached_ids()
        victims = attached[: self.faults.plan.storm_burst_ues]
        if not victims:
            return
        for ue_id in victims:
            self.state[ue_id] = AccessState.WAITING
            self._generation[ue_id] += 1  # orphans the pending detach
            self._attempts[ue_id] = 0
            self.enodeb.deregister_ue(ue_id)
            self._schedule_access(ue_id, self.now_s)
        self._count("storm_knockoffs", len(victims))
        self._notify_population()

    def _handle_move(self) -> None:
        mobility = self.enodeb.mobility
        if mobility is None:
            return
        dt = self.config.move_period_s
        for ue_id in self.attached_ids():
            mobility.step(self.ues[ue_id], dt, self._mobility_rng)

    # -- the run -------------------------------------------------------------------

    def run(self, duration_s: float) -> Dict[str, int]:
        """Run the event loop for ``duration_s`` simulated seconds.

        Returns the counter dict.  Callbacks (`on_kpi`,
        ``on_population_change``) execute at their event's timestamp;
        whatever real work they do (an epoch re-plan, a MAC rebuild)
        does not advance event time.
        """
        if duration_s <= 0:
            raise ValueError(f"duration_s must be positive, got {duration_s}")
        cfg = self.config
        process = make_arrival_process(cfg.arrival_process, **self.arrival_params)
        window = min(cfg.arrival_window_s, duration_s)
        times = process.times(len(self.ues), window, self._arrivals_rng)
        self._arrival_times = times
        for ue_id, t in zip(sorted(self.ues), times):
            self.queue.push(float(t), "arrival", ue_id)
        if self.faults is not None:
            for onset in self.faults.storm_onsets(duration_s):
                self.queue.push(float(onset), "storm", None)
        if cfg.move_period_s > 0 and self.enodeb.mobility is not None:
            t = cfg.move_period_s
            while t <= duration_s:
                self.queue.push(t, "move", None)
                t += cfg.move_period_s
        t = cfg.kpi_period_s
        while t <= duration_s:
            self.queue.push(t, "kpi", None)
            t += cfg.kpi_period_s

        handlers = {
            "arrival": lambda p: self._handle_arrival(p),
            "access": lambda p: self._handle_access(p),
            "rach": lambda p: self._handle_rach(),
            "attach": lambda p: self._handle_attach(*p),
            "detach": lambda p: self._handle_detach(*p),
            "storm": lambda p: self._handle_storm(),
            "move": lambda p: self._handle_move(),
            "kpi": lambda p: self.on_kpi(self.now_s) if self.on_kpi else None,
        }
        while self.queue:
            if self.queue.peek_time() > duration_s:
                break
            event = self.queue.pop()
            self.now_s = event.time_s
            handlers[event.kind](event.payload)
        self.now_s = duration_s
        return dict(self.counters)

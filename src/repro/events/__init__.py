"""Event-driven attach/churn control plane.

A deterministic discrete-event layer (no simpy) simulating the UE
lifecycle the epoch loop previously took for granted: arrivals, RACH
contention, access-class barring, attach/detach churn, attach storms,
and mobility stepping — all feeding the eNodeB registration set and
the controller's epoch trigger.
"""

from repro.events.arrivals import (
    EVENTS_SPAWN_KEY,
    ArrivalProcess,
    available_arrival_processes,
    make_arrival_process,
    register_arrival_process,
)
from repro.events.heap import Event, EventQueue
from repro.events.rach import (
    DEFAULT_N_PREAMBLES,
    AccessState,
    RachOutcome,
    backoff_wait_s,
    barring_wait_s,
    resolve_contention,
)
from repro.events.simulate import AttachSimulation, EventConfig

__all__ = [
    "EVENTS_SPAWN_KEY",
    "ArrivalProcess",
    "available_arrival_processes",
    "make_arrival_process",
    "register_arrival_process",
    "Event",
    "EventQueue",
    "DEFAULT_N_PREAMBLES",
    "AccessState",
    "RachOutcome",
    "backoff_wait_s",
    "barring_wait_s",
    "resolve_contention",
    "AttachSimulation",
    "EventConfig",
]

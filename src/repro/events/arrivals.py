"""Arrival processes for the attach/churn event layer.

An arrival process decides *when* each UE first shows up and asks for
service.  The registry mirrors :mod:`repro.traffic.generators`: frozen
keyword-only dataclass factories under string names, so experiment
configs carry the choice as plain data and unknown knobs are silently
unused by models they don't apply to.

Four processes cover the paper's deployment stories:

* ``uniform`` — arrivals spread evenly over the window (steady trickle).
* ``poisson`` — memoryless arrivals (exponential spacing, renormalized
  to the window so every UE does arrive).
* ``stadium`` — the event-venue profile: arrivals pile up toward a
  gate-opening instant (beta-shaped ramp), the flash crowd SkyRAN's
  Section 5.2 "gathering" dynamics describe.
* ``flash_crowd`` — everyone inside one short burst window; the
  worst-case RACH storm.

RNG contract
------------

``times(n_ues, duration_s, rng)`` consumes the *caller's* generator —
the event layer passes a dedicated stream spawned from
``SeedSequence(seed, spawn_key=(EVENTS_SPAWN_KEY, 0))``, so arrival
draws never touch controller, traffic, or fault randomness.
Deterministic processes (``uniform``) draw nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Protocol, Tuple, runtime_checkable

import numpy as np

#: Spawn-key tag isolating event-layer streams from every other
#: consumer of the run seed (traffic uses 0x7452, faults use the plan
#: seed's own spawn tree).
EVENTS_SPAWN_KEY = 0x7261  # "ra" — random access


@runtime_checkable
class ArrivalProcess(Protocol):
    """When each of ``n_ues`` UEs first requests attach."""

    def times(
        self, n_ues: int, duration_s: float, rng: np.random.Generator
    ) -> np.ndarray: ...


def _check_window(n_ues: int, duration_s: float) -> None:
    if n_ues < 0:
        raise ValueError(f"n_ues must be >= 0, got {n_ues}")
    if duration_s <= 0:
        raise ValueError(f"duration_s must be positive, got {duration_s}")


@dataclass(frozen=True, kw_only=True)
class UniformArrivals:
    """Evenly spaced arrivals over the window; draws no RNG."""

    def times(
        self, n_ues: int, duration_s: float, rng: np.random.Generator
    ) -> np.ndarray:
        _check_window(n_ues, duration_s)
        del rng
        if n_ues == 0:
            return np.empty(0, dtype=float)
        # Midpoints of n equal slots: no arrival exactly at t=0 or t=T.
        return (np.arange(n_ues) + 0.5) * (float(duration_s) / n_ues)


@dataclass(frozen=True, kw_only=True)
class PoissonArrivals:
    """Memoryless arrivals, renormalized so all UEs land in-window.

    Draws i.i.d. uniforms over the window — the order statistics of a
    conditioned Poisson process — then sorts.  Every UE arrives.
    """

    def times(
        self, n_ues: int, duration_s: float, rng: np.random.Generator
    ) -> np.ndarray:
        _check_window(n_ues, duration_s)
        if n_ues == 0:
            return np.empty(0, dtype=float)
        return np.sort(rng.uniform(0.0, float(duration_s), n_ues))


@dataclass(frozen=True, kw_only=True)
class StadiumArrivals:
    """Gate-opening ramp: arrivals concentrate around ``peak_frac``.

    A Beta(a, b) profile over the window with its mode at
    ``peak_frac`` — a trickle early, a surge at the peak, stragglers
    after.  ``sharpness`` scales how concentrated the surge is.
    """

    peak_frac: float = 0.3
    sharpness: float = 8.0

    def __post_init__(self) -> None:
        if not 0.0 < self.peak_frac < 1.0:
            raise ValueError(f"peak_frac must be in (0, 1), got {self.peak_frac}")
        if self.sharpness <= 0:
            raise ValueError(f"sharpness must be positive, got {self.sharpness}")

    def times(
        self, n_ues: int, duration_s: float, rng: np.random.Generator
    ) -> np.ndarray:
        _check_window(n_ues, duration_s)
        if n_ues == 0:
            return np.empty(0, dtype=float)
        # Mode of Beta(a, b) is (a-1)/(a+b-2): solve for a at fixed
        # concentration a+b = sharpness + 2.
        a = 1.0 + self.sharpness * self.peak_frac
        b = 1.0 + self.sharpness * (1.0 - self.peak_frac)
        return np.sort(rng.beta(a, b, n_ues)) * float(duration_s)


@dataclass(frozen=True, kw_only=True)
class FlashCrowdArrivals:
    """Everyone inside one short burst: the worst-case RACH storm.

    All UEs arrive uniformly within ``burst_s`` seconds starting at
    ``start_frac`` of the window.
    """

    start_frac: float = 0.1
    burst_s: float = 2.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.start_frac < 1.0:
            raise ValueError(f"start_frac must be in [0, 1), got {self.start_frac}")
        if self.burst_s <= 0:
            raise ValueError(f"burst_s must be positive, got {self.burst_s}")

    def times(
        self, n_ues: int, duration_s: float, rng: np.random.Generator
    ) -> np.ndarray:
        _check_window(n_ues, duration_s)
        if n_ues == 0:
            return np.empty(0, dtype=float)
        start = self.start_frac * float(duration_s)
        width = min(self.burst_s, float(duration_s) - start)
        return np.sort(start + rng.uniform(0.0, width, n_ues))


_REGISTRY: Dict[str, Callable[..., object]] = {}


def register_arrival_process(name: str, factory: Callable[..., object]) -> None:
    """Register an arrival-process factory under a string name."""
    if not name:
        raise ValueError("arrival process name must be non-empty")
    _REGISTRY[name] = factory


def available_arrival_processes() -> Tuple[str, ...]:
    """Registered arrival-process names, sorted."""
    return tuple(sorted(_REGISTRY))


def make_arrival_process(name: str, **params):
    """Instantiate a registered arrival process by name.

    Unknown keyword parameters are dropped for dataclass factories, so
    one experiment config can carry the union of every process's knobs.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(available_arrival_processes())
        raise ValueError(
            f"unknown arrival process {name!r} (known: {known})"
        ) from None
    accepted = getattr(factory, "__dataclass_fields__", None)
    if accepted is not None:
        params = {k: v for k, v in params.items() if k in accepted}
    return factory(**params)


register_arrival_process("uniform", UniformArrivals)
register_arrival_process("poisson", PoissonArrivals)
register_arrival_process("stadium", StadiumArrivals)
register_arrival_process("flash_crowd", FlashCrowdArrivals)

"""A deterministic discrete-event heap.

The event layer needs exactly one scheduling primitive: "run this at
time t".  :class:`EventQueue` is a thin wrapper over :mod:`heapq` with
a monotone insertion sequence breaking time ties, so two events pushed
at the same timestamp always pop in push order — replay of the same
push sequence is bit-identical, which is what the determinism
properties (and the pinned RNG contract built on top) rely on.  No
simpy, no threads, no wall clock.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple


@dataclass(frozen=True)
class Event:
    """One scheduled occurrence.

    Attributes
    ----------
    time_s:
        Simulated time the event fires at.
    seq:
        Global push order; the deterministic tie-break (two events at
        the same time fire in push order).
    kind:
        Event type tag (``"arrival"``, ``"rach"``, ``"attach"``, ...).
    payload:
        Kind-specific data (a UE id, a RACH slot index, ...).
    """

    time_s: float
    seq: int
    kind: str
    payload: Any = None


class EventQueue:
    """Min-heap of :class:`Event` ordered by ``(time_s, seq)``.

    ``seq`` is unique per push, so heap comparisons never reach the
    ``kind``/``payload`` fields — payloads may be any type.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, str, Any]] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, time_s: float, kind: str, payload: Any = None) -> None:
        """Schedule ``kind`` at ``time_s`` (ties fire in push order)."""
        t = float(time_s)
        if t < 0:
            raise ValueError(f"event time must be >= 0, got {t}")
        heapq.heappush(self._heap, (t, self._seq, kind, payload))
        self._seq += 1

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        t, seq, kind, payload = heapq.heappop(self._heap)
        return Event(time_s=t, seq=seq, kind=kind, payload=payload)

    def peek_time(self) -> Optional[float]:
        """Time of the earliest pending event, or None when empty."""
        return self._heap[0][0] if self._heap else None

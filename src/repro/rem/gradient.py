"""SNR gradient maps (paper Step 6.2).

The gradient of a grid cell is the greatest difference between its SNR
and the SNR of its directly adjacent neighbours.  High-gradient cells
mark terrain-driven SNR discontinuities (building shadows, canyon
edges) — the places where a measurement is worth the flight.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def gradient_map(snr_map: np.ndarray, diagonal: bool = True) -> np.ndarray:
    """Per-cell maximum absolute difference to adjacent cells.

    Parameters
    ----------
    snr_map:
        ``(ny, nx)`` SNR (or aggregate SNR) map; NaN cells propagate
        NaN gradients.
    diagonal:
        Include the 4 diagonal neighbours (8-connectivity) as the
        paper's "directly adjacent, neighboring cells" suggests.
    """
    m = np.asarray(snr_map, dtype=float)
    if m.ndim != 2:
        raise ValueError(f"snr_map must be 2D, got shape {m.shape}")
    shifts = [(-1, 0), (1, 0), (0, -1), (0, 1)]
    if diagonal:
        shifts += [(-1, -1), (-1, 1), (1, -1), (1, 1)]
    out = np.zeros_like(m)
    for dy, dx in shifts:
        shifted = np.full_like(m, np.nan)
        ys = slice(max(dy, 0), m.shape[0] + min(dy, 0))
        yd = slice(max(-dy, 0), m.shape[0] + min(-dy, 0))
        xs = slice(max(dx, 0), m.shape[1] + min(dx, 0))
        xd = slice(max(-dx, 0), m.shape[1] + min(-dx, 0))
        shifted[yd, xd] = m[ys, xs]
        diff = np.abs(m - shifted)
        out = np.fmax(out, np.nan_to_num(diff, nan=0.0))
    out[np.isnan(m)] = np.nan
    return out


def high_gradient_cells(
    grad: np.ndarray, threshold_quantile: float = 0.5
) -> Tuple[np.ndarray, np.ndarray]:
    """Indices ``(iy, ix)`` of cells above the gradient threshold.

    The paper thresholds at the *median* of the gradient map (Step
    6.3); ``threshold_quantile`` exposes that knob for the ablation
    bench.
    """
    if not 0.0 <= threshold_quantile < 1.0:
        raise ValueError(
            f"threshold_quantile must be in [0, 1), got {threshold_quantile}"
        )
    g = np.asarray(grad, dtype=float)
    finite = g[np.isfinite(g)]
    if finite.size == 0:
        return np.array([], dtype=int), np.array([], dtype=int)
    thresh = np.quantile(finite, threshold_quantile)
    mask = np.isfinite(g) & (g > thresh)
    if not mask.any():
        # Degenerate flat map: every finite cell ties at the threshold.
        mask = np.isfinite(g) & (g >= thresh)
    return np.where(mask)

"""REM accuracy metrics.

The paper scores an estimated REM by the *median* absolute error in dB
against the exhaustively measured ground truth (Figs. 4, 6, 20, 24,
28, 30).
"""

from __future__ import annotations

import numpy as np


def rem_error_map(estimated: np.ndarray, truth: np.ndarray) -> np.ndarray:
    """Per-cell absolute error in dB; NaN where either map is NaN."""
    est = np.asarray(estimated, dtype=float)
    tru = np.asarray(truth, dtype=float)
    if est.shape != tru.shape:
        raise ValueError(f"shape mismatch: {est.shape} vs {tru.shape}")
    return np.abs(est - tru)


def median_abs_error_db(estimated: np.ndarray, truth: np.ndarray) -> float:
    """Median absolute per-cell error in dB, ignoring NaN cells.

    Returns ``inf`` if no cell is comparable (an estimate with no
    information is infinitely wrong, which keeps optimizers honest).
    """
    err = rem_error_map(estimated, truth)
    finite = err[np.isfinite(err)]
    if finite.size == 0:
        return float("inf")
    return float(np.median(finite))


def mean_abs_error_db(estimated: np.ndarray, truth: np.ndarray) -> float:
    """Mean absolute per-cell error in dB, ignoring NaN cells."""
    err = rem_error_map(estimated, truth)
    finite = err[np.isfinite(err)]
    if finite.size == 0:
        return float("inf")
    return float(np.mean(finite))

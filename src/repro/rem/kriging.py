"""Ordinary kriging interpolation.

The paper's footnote 3 notes that "sophisticated and more
computationally intensive interpolation techniques like Gaussian
Process Regression or Ordinary Kriging have been used to interpolate
radio maps but it has been shown to offer marginal improvement over
IDW".  This module implements ordinary kriging with an exponential
variogram so the reproduction can *test* that claim (see the
interpolation ablation) instead of taking it on faith.

The implementation solves the standard OK system

    | G  1 | | w |   | g |
    | 1' 0 | | m | = | 1 |

per target cell, with ``G`` the semivariogram between measured points
and ``g`` between the target and the measured points.  To keep the
cost practical on map-sized problems, each cell is interpolated from
its ``k`` nearest measured neighbours (local kriging), the same
neighbourhood structure the IDW path uses.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.spatial import cKDTree

from repro.geo.grid import GridSpec


def exponential_variogram(h: np.ndarray, sill: float, range_m: float, nugget: float) -> np.ndarray:
    """Exponential semivariogram ``nugget + sill (1 - exp(-3h/range))``."""
    return nugget + sill * (1.0 - np.exp(-3.0 * np.asarray(h, dtype=float) / range_m))


def fit_variogram(
    points: np.ndarray, values: np.ndarray, n_bins: int = 12
) -> tuple:
    """Crude empirical variogram fit: returns ``(sill, range_m, nugget)``.

    Bins squared half-differences by pair distance and reads the sill
    as the high-distance plateau, the range as where the curve reaches
    ~95% of it.  Robust enough for radio maps; not a geostatistics
    package.
    """
    points = np.asarray(points, dtype=float)
    values = np.asarray(values, dtype=float)
    n = len(points)
    if n < 4:
        return (max(float(np.var(values)), 1e-6), 30.0, 1e-3)
    # Subsample pairs for large inputs.
    rng = np.random.default_rng(0)
    max_pairs = 4000
    idx_a = rng.integers(0, n, max_pairs)
    idx_b = rng.integers(0, n, max_pairs)
    keep = idx_a != idx_b
    idx_a, idx_b = idx_a[keep], idx_b[keep]
    d = np.hypot(*(points[idx_a] - points[idx_b]).T)
    gamma = 0.5 * (values[idx_a] - values[idx_b]) ** 2
    if d.max() <= 0:
        return (max(float(np.var(values)), 1e-6), 30.0, 1e-3)
    bins = np.linspace(0.0, float(d.max()), n_bins + 1)
    centers, means = [], []
    for lo, hi in zip(bins[:-1], bins[1:]):
        mask = (d >= lo) & (d < hi)
        if mask.sum() >= 5:
            centers.append(0.5 * (lo + hi))
            means.append(float(gamma[mask].mean()))
    if len(means) < 3:
        return (max(float(np.var(values)), 1e-6), 30.0, 1e-3)
    means_arr = np.array(means)
    sill = float(np.median(means_arr[len(means_arr) // 2 :]))
    sill = max(sill, 1e-6)
    reach = next(
        (c for c, m in zip(centers, means) if m >= 0.95 * sill), centers[-1]
    )
    nugget = max(min(means[0], 0.5 * sill), 0.0)
    return (sill, max(float(reach), 1.0), nugget)


def _krige_points(
    q_pts: np.ndarray,
    m_pts: np.ndarray,
    m_vals: np.ndarray,
    tree: cKDTree,
    k_neighbors: int,
    variogram: tuple,
) -> np.ndarray:
    """Local-OK estimates at ``q_pts`` from the global measured set.

    Each target point is solved independently from its ``k`` nearest
    measured neighbours, so any subset of query points yields the same
    per-point estimates as the full set — the property the row-band
    path relies on for bit-identity with the full-map path.
    """
    sill, range_m, nugget = variogram
    k = min(k_neighbors, len(m_pts))
    dist, idx = tree.query(q_pts, k=k)
    dist = np.atleast_2d(dist.T).T if dist.ndim == 1 else dist
    idx = np.atleast_2d(idx.T).T if idx.ndim == 1 else idx

    est = np.empty(len(q_pts))
    ones = np.ones(k)
    for i in range(len(q_pts)):
        nb = m_pts[idx[i]]
        # Semivariogram matrix among neighbours (+ Lagrange row/col).
        dd = np.hypot(
            nb[:, 0][:, None] - nb[:, 0][None, :],
            nb[:, 1][:, None] - nb[:, 1][None, :],
        )
        G = exponential_variogram(dd, sill, range_m, nugget)
        np.fill_diagonal(G, 0.0)
        A = np.empty((k + 1, k + 1))
        A[:k, :k] = G
        A[k, :k] = 1.0
        A[:k, k] = 1.0
        A[k, k] = 0.0
        b = np.empty(k + 1)
        b[:k] = exponential_variogram(dist[i], sill, range_m, nugget)
        b[k] = 1.0
        try:
            w = np.linalg.solve(A, b)[:k]
        except np.linalg.LinAlgError:
            w = ones / k
        est[i] = float(w @ m_vals[idx[i]])
    return est


def kriging_interpolate(
    grid: GridSpec,
    values: np.ndarray,
    k_neighbors: int = 12,
    variogram: Optional[tuple] = None,
    fallback: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Fill the NaN cells of a map by local ordinary kriging.

    Parameters
    ----------
    grid:
        Grid the map lies over.
    values:
        ``(ny, nx)`` array; NaN marks unmeasured cells.
    k_neighbors:
        Measured neighbours per target cell.
    variogram:
        Optional ``(sill, range_m, nugget)``; fitted from the data
        when omitted.
    fallback:
        Full prior map used when there are no measurements at all.

    Returns
    -------
    ``(ny, nx)`` interpolated map.
    """
    if k_neighbors < 1:
        raise ValueError(f"k_neighbors must be >= 1, got {k_neighbors}")
    values = np.asarray(values, dtype=float)
    if values.shape != grid.shape:
        raise ValueError(f"values shape {values.shape} != grid shape {grid.shape}")
    out = values.copy()
    measured = ~np.isnan(values)
    missing = ~measured
    if not missing.any():
        return out
    if not measured.any():
        if fallback is not None:
            return np.asarray(fallback, dtype=float).copy()
        return out

    centers = grid.centers_flat()
    m_flat = measured.ravel()
    m_pts = centers[m_flat]
    m_vals = values.ravel()[m_flat]
    if variogram is None:
        variogram = fit_variogram(m_pts, m_vals)

    tree = cKDTree(m_pts)
    q_pts = centers[missing.ravel()]
    out[missing] = _krige_points(q_pts, m_pts, m_vals, tree, k_neighbors, variogram)
    return out


def kriging_interpolate_rows(
    grid: GridSpec,
    values: np.ndarray,
    rows: slice,
    k_neighbors: int = 12,
    variogram: Optional[tuple] = None,
    fallback: Optional[np.ndarray] = None,
) -> np.ndarray:
    """One row-band of :func:`kriging_interpolate`, bit-identical per cell.

    Local OK solves one ``(k+1)``-system per target cell against the
    *global* measured set, and the variogram (given or fitted) depends
    only on that global set — so restricting the target cells to a band
    of rows changes nothing per cell while the work and output drop to
    O(band).  This is the kriging counterpart of
    :func:`repro.rem.idw.idw_interpolate_rows`, letting the streamed
    epoch pipeline keep kriging REMs tile-resident instead of silently
    rematerializing full maps.

    Returns the ``(n_rows, nx)`` interpolated block for ``rows``.
    """
    if k_neighbors < 1:
        raise ValueError(f"k_neighbors must be >= 1, got {k_neighbors}")
    values = np.asarray(values, dtype=float)
    if values.shape != grid.shape:
        raise ValueError(f"values shape {values.shape} != grid shape {grid.shape}")

    sub = values[rows]
    out = sub.copy()
    measured = ~np.isnan(values)
    missing_sub = np.isnan(sub)
    if not missing_sub.any():
        return out
    if not measured.any():
        if fallback is not None:
            return np.asarray(fallback, dtype=float)[rows].copy()
        return out

    centers = grid.centers_flat()
    m_flat = measured.ravel()
    m_pts = centers[m_flat]
    m_vals = values.ravel()[m_flat]
    if variogram is None:
        variogram = fit_variogram(m_pts, m_vals)

    tree = cKDTree(m_pts)
    band = centers.reshape(grid.ny, grid.nx, 2)[rows].reshape(-1, 2)
    q_pts = band[missing_sub.ravel()]
    out[missing_sub] = _krige_points(
        q_pts, m_pts, m_vals, tree, k_neighbors, variogram
    )
    return out

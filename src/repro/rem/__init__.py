"""Radio Environment Maps (paper Sections 3.3-3.4).

A REM is a per-UE 2D grid of SNR at the operating altitude.  SkyRAN
builds REMs from sparse flight measurements: samples are averaged into
the 1 m grid cells they fall in (Step 7), unvisited cells are filled by
inverse-distance-weighted interpolation (the paper's deliberate choice
over Kriging/GPR, footnote 3), and the per-UE maps combine into the
aggregate map (for trajectory planning, Step 6.1) and the min-SNR map
(for max-min placement, Section 3.4).
"""

from repro.rem.map import REM
from repro.rem.idw import idw_interpolate
from repro.rem.kriging import kriging_interpolate
from repro.rem.interpolate import (
    IDWInterpolator,
    Interpolator,
    KrigingInterpolator,
    available_interpolators,
    make_interpolator,
    register_interpolator,
)
from repro.rem.gradient import gradient_map, high_gradient_cells
from repro.rem.aggregate import aggregate_rem, min_snr_map
from repro.rem.accuracy import median_abs_error_db, rem_error_map

__all__ = [
    "REM",
    "idw_interpolate",
    "kriging_interpolate",
    "Interpolator",
    "IDWInterpolator",
    "KrigingInterpolator",
    "make_interpolator",
    "register_interpolator",
    "available_interpolators",
    "gradient_map",
    "high_gradient_cells",
    "aggregate_rem",
    "min_snr_map",
    "median_abs_error_db",
    "rem_error_map",
]

"""Combining per-UE REMs.

Two reductions matter in SkyRAN: the cell-wise *sum* of per-UE maps
(the aggregate REM that trajectory planning takes gradients of, Step
6.1) and the cell-wise *minimum* (the min-SNR map whose argmax is the
max-min placement, Section 3.4).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def _stack(maps: Sequence[np.ndarray]) -> np.ndarray:
    arrs = [np.asarray(m, dtype=float) for m in maps]
    if not arrs:
        raise ValueError("need at least one map")
    shape = arrs[0].shape
    for a in arrs:
        if a.shape != shape:
            raise ValueError(f"map shapes differ: {a.shape} vs {shape}")
    return np.stack(arrs)


def aggregate_rem(maps: Sequence[np.ndarray]) -> np.ndarray:
    """Cell-wise sum of per-UE SNR maps (paper Step 6.1).

    NaN cells are treated as missing (ignored in the sum); a cell that
    is NaN in *every* map stays NaN.
    """
    stack = _stack(maps)
    all_nan = np.isnan(stack).all(axis=0)
    with np.errstate(invalid="ignore"):
        out = np.nansum(stack, axis=0)
    out[all_nan] = np.nan
    return out


def min_snr_map(maps: Sequence[np.ndarray]) -> np.ndarray:
    """Cell-wise minimum over per-UE SNR maps (paper Section 3.4).

    NaN in any constituent map makes the cell NaN — placement must not
    pick a cell whose SNR to some UE is unknown.
    """
    stack = _stack(maps)
    return np.min(stack, axis=0)


def argmax_cell(snr_map: np.ndarray):
    """Index ``(iy, ix)`` of the maximum finite cell of a map.

    Raises
    ------
    ValueError
        If the map has no finite cells.
    """
    m = np.asarray(snr_map, dtype=float)
    if not np.isfinite(m).any():
        raise ValueError("map has no finite cells")
    flat = np.where(np.isfinite(m), m, -np.inf)
    iy, ix = np.unravel_index(int(np.argmax(flat)), m.shape)
    return iy, ix

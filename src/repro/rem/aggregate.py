"""Combining per-UE REMs.

Two reductions matter in SkyRAN: the cell-wise *sum* of per-UE maps
(the aggregate REM that trajectory planning takes gradients of, Step
6.1) and the cell-wise *minimum* (the min-SNR map whose argmax is the
max-min placement, Section 3.4).
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

import numpy as np


def _stack(maps: Sequence[np.ndarray]) -> np.ndarray:
    arrs = [np.asarray(m, dtype=float) for m in maps]
    if not arrs:
        raise ValueError("need at least one map")
    shape = arrs[0].shape
    for a in arrs:
        if a.shape != shape:
            raise ValueError(f"map shapes differ: {a.shape} vs {shape}")
    return np.stack(arrs)


def aggregate_rem(maps: Sequence[np.ndarray]) -> np.ndarray:
    """Cell-wise sum of per-UE SNR maps (paper Step 6.1).

    NaN cells are treated as missing (ignored in the sum); a cell that
    is NaN in *every* map stays NaN.
    """
    stack = _stack(maps)
    all_nan = np.isnan(stack).all(axis=0)
    with np.errstate(invalid="ignore"):
        out = np.nansum(stack, axis=0)
    out[all_nan] = np.nan
    return out


def aggregate_rem_running(
    maps: Iterable[np.ndarray], shape: Tuple[int, int]
) -> np.ndarray:
    """Streaming counterpart of :func:`aggregate_rem` — O(grid) state.

    Consumes the maps one at a time instead of stacking them, so a
    city-scale epoch can aggregate 10⁵ per-UE maps (shared references
    under REM-key dedup) without an ``(n_ue, ny, nx)`` stack.
    Bit-identical to :func:`aggregate_rem` over the same maps in the
    same order: numpy's axis-0 nansum reduces the (strided) UE axis
    sequentially in index order, which is exactly this running fold.

    Raises :class:`ValueError` on an empty iterable, like the stacked
    path.
    """
    out = np.zeros(shape, dtype=float)
    all_nan = np.ones(shape, dtype=bool)
    seen = False
    for m in maps:
        m = np.asarray(m, dtype=float)
        if m.shape != shape:
            raise ValueError(f"map shapes differ: {m.shape} vs {shape}")
        seen = True
        nan = np.isnan(m)
        all_nan &= nan
        out += np.where(nan, 0.0, m)
    if not seen:
        raise ValueError("need at least one map")
    out[all_nan] = np.nan
    return out


def min_snr_map(maps: Sequence[np.ndarray]) -> np.ndarray:
    """Cell-wise minimum over per-UE SNR maps (paper Section 3.4).

    NaN in any constituent map makes the cell NaN — placement must not
    pick a cell whose SNR to some UE is unknown.
    """
    stack = _stack(maps)
    return np.min(stack, axis=0)


def argmax_cell(snr_map: np.ndarray):
    """Index ``(iy, ix)`` of the maximum finite cell of a map.

    Raises
    ------
    ValueError
        If the map has no finite cells.
    """
    m = np.asarray(snr_map, dtype=float)
    if not np.isfinite(m).any():
        raise ValueError("map has no finite cells")
    flat = np.where(np.isfinite(m), m, -np.inf)
    iy, ix = np.unravel_index(int(np.argmax(flat)), m.shape)
    return iy, ix

"""The unified interpolation API.

Every REM interpolation scheme — the paper's IDW, the footnote-3
ordinary kriging, and anything a future PR adds — implements one
protocol::

    interpolate(grid, values, measured_mask=None, fallback=None) -> map

where ``values`` is a ``(ny, nx)`` array with NaN marking unmeasured
cells (or ``measured_mask`` marking measured ones explicitly) and
``fallback`` is an optional full prior map used when there is nothing
to interpolate from.

Schemes register under a string name (``"idw"``, ``"kriging"``) so the
choice threads through :class:`~repro.core.config.SkyRANConfig` and the
interpolation ablation as configuration instead of call-site branching.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Protocol, Tuple, runtime_checkable

import numpy as np

from repro.geo.grid import GridSpec
from repro.rem.idw import idw_interpolate, idw_interpolate_rows
from repro.rem.kriging import kriging_interpolate, kriging_interpolate_rows


@runtime_checkable
class Interpolator(Protocol):
    """Anything that can fill the unmeasured cells of a radio map."""

    def interpolate(
        self,
        grid: GridSpec,
        values: np.ndarray,
        measured_mask: Optional[np.ndarray] = None,
        fallback: Optional[np.ndarray] = None,
    ) -> np.ndarray: ...


def _masked_values(values: np.ndarray, measured_mask: Optional[np.ndarray]) -> np.ndarray:
    """NaN-mark the unmeasured cells if an explicit mask is given."""
    values = np.asarray(values, dtype=float)
    if measured_mask is None:
        return values
    mask = np.asarray(measured_mask, dtype=bool)
    if mask.shape != values.shape:
        raise ValueError(f"mask shape {mask.shape} != values shape {values.shape}")
    out = values.copy()
    out[~mask] = np.nan
    return out


@dataclass(frozen=True, kw_only=True)
class IDWInterpolator:
    """Inverse-distance weighting (the paper's Section 3.3.3 choice)."""

    power: float = 2.0
    k_neighbors: int = 12
    max_distance_m: Optional[float] = None

    def interpolate(
        self,
        grid: GridSpec,
        values: np.ndarray,
        measured_mask: Optional[np.ndarray] = None,
        fallback: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        return idw_interpolate(
            grid,
            _masked_values(values, measured_mask),
            power=self.power,
            k_neighbors=self.k_neighbors,
            max_distance_m=self.max_distance_m,
            fallback=fallback,
        )

    def interpolate_tile(
        self,
        grid: GridSpec,
        values: np.ndarray,
        rows: slice,
        measured_mask: Optional[np.ndarray] = None,
        fallback: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """One row-band of the interpolated map (O(band) work/output).

        Optional protocol extension consumed by
        :func:`repro.rem.streaming.interpolate_tile`; bit-identical to
        slicing :meth:`interpolate`'s result because IDW estimates are
        independent per-cell k-NN queries.
        """
        return idw_interpolate_rows(
            grid,
            _masked_values(values, measured_mask),
            rows,
            power=self.power,
            k_neighbors=self.k_neighbors,
            max_distance_m=self.max_distance_m,
            fallback=fallback,
        )


@dataclass(frozen=True, kw_only=True)
class KrigingInterpolator:
    """Local ordinary kriging (the footnote-3 alternative)."""

    k_neighbors: int = 12
    variogram: Optional[Tuple[float, float, float]] = None

    def interpolate(
        self,
        grid: GridSpec,
        values: np.ndarray,
        measured_mask: Optional[np.ndarray] = None,
        fallback: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        return kriging_interpolate(
            grid,
            _masked_values(values, measured_mask),
            k_neighbors=self.k_neighbors,
            variogram=self.variogram,
            fallback=fallback,
        )

    def interpolate_tile(
        self,
        grid: GridSpec,
        values: np.ndarray,
        rows: slice,
        measured_mask: Optional[np.ndarray] = None,
        fallback: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """One row-band of the interpolated map (O(band) solves/output).

        Optional protocol extension consumed by
        :func:`repro.rem.streaming.interpolate_tile`; bit-identical to
        slicing :meth:`interpolate`'s result because local-OK solves
        are independent per target cell and the variogram fit sees only
        the global measured set.
        """
        return kriging_interpolate_rows(
            grid,
            _masked_values(values, measured_mask),
            rows,
            k_neighbors=self.k_neighbors,
            variogram=self.variogram,
            fallback=fallback,
        )


_REGISTRY: Dict[str, Callable[..., Interpolator]] = {}


def register_interpolator(
    name: str, factory: Callable[..., Interpolator], *, override: bool = False
) -> None:
    """Register an interpolator factory under a string name.

    Registering a name that already exists raises unless
    ``override=True`` — a silently clobbered registration is a config
    that quietly runs the wrong scheme.
    """
    if not name:
        raise ValueError("interpolator name must be non-empty")
    if name in _REGISTRY and not override:
        raise ValueError(
            f"interpolator {name!r} is already registered "
            "(pass override=True to replace it)"
        )
    _REGISTRY[name] = factory


def available_interpolators() -> Tuple[str, ...]:
    """Registered names, sorted."""
    return tuple(sorted(_REGISTRY))


def make_interpolator(name: str, **params) -> Interpolator:
    """Instantiate a registered interpolator by name.

    Unknown keyword parameters are ignored for dataclass factories (so
    one config can carry the union of every scheme's knobs — e.g.
    ``idw_power`` is meaningless to kriging and silently unused by it).
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(available_interpolators())
        raise ValueError(f"unknown interpolator {name!r} (known: {known})") from None
    accepted = getattr(factory, "__dataclass_fields__", None)
    if accepted is not None:
        params = {k: v for k, v in params.items() if k in accepted}
    return factory(**params)


register_interpolator("idw", IDWInterpolator)
register_interpolator("kriging", KrigingInterpolator)

"""Streaming folds over map tiles.

City-scale populations make the ``(n_ue, ny, nx)`` stack the memory
bottleneck of every map consumer, but the aggregations the system
actually needs — the min-SNR surface behind max–min placement, coverage
counts, the aggregate REM — are all folds: they can consume the tiles
of :meth:`~repro.channel.model.ChannelModel.iter_snr_map_tiles` as they
arrive and keep only O(grid) state.

Exactness
---------

Tiles carry a ``(ue_slice, row_slice, block)`` triple and each cell
value is bit-identical to the materialized stack (the tile generator's
contract), so the only question is whether the *fold* commutes with
chunking:

* ``min`` and integer counting are exact under any chunking — the
  minimum of minima is the minimum, and both numpy's axis-0 reduce and
  the chunked fold visit UEs in ascending index order;
* float **sums** are exact only when each tile spans the full UE axis
  (reassociating a float sum changes rounding), which is why
  :func:`streamed_aggregate_rem` documents that caveat explicitly.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.placement import PlacementResult, uncertainty_penalty_db
from repro.geo.grid import GridSpec
from repro.geo.points import Point3D
from repro.perf import perf
from repro.rem.aggregate import argmax_cell

#: A streamed map tile: which UEs, which grid rows, and the
#: ``(n_ue_chunk, n_rows, nx)`` block of values.
Tile = Tuple[slice, slice, np.ndarray]


def streamed_min_snr_map(tiles: Iterable[Tile], shape: Tuple[int, int]) -> np.ndarray:
    """Cell-wise minimum over streamed per-UE map tiles.

    Bit-identical to ``np.min(stack, axis=0)`` over the materialized
    stack: min folds exactly under chunking, NaN poisons a cell in both
    paths, and rows no tile covers stay ``+inf`` (a coverage bug the
    caller's tile source should make impossible).
    """
    out = np.full(shape, np.inf)
    seen = False
    for _ue_sl, row_sl, block in tiles:
        seen = True
        np.minimum(out[row_sl], block.min(axis=0), out=out[row_sl])
    if not seen:
        raise ValueError("need at least one tile (empty UE population?)")
    return out


def streamed_coverage_counts(
    tiles: Iterable[Tile], shape: Tuple[int, int], threshold_db: float
) -> np.ndarray:
    """Per-cell count of UEs whose map meets ``threshold_db``.

    Integer accumulation, exact under any tiling; equals
    ``(stack >= threshold_db).sum(axis=0)`` on the materialized stack.
    """
    out = np.zeros(shape, dtype=np.int64)
    for _ue_sl, row_sl, block in tiles:
        out[row_sl] += (block >= threshold_db).sum(axis=0)
    return out


def streamed_aggregate_rem(tiles: Iterable[Tile], shape: Tuple[int, int]) -> np.ndarray:
    """Cell-wise NaN-ignoring sum over streamed per-UE map tiles.

    Matches :func:`repro.rem.aggregate.aggregate_rem` bit-for-bit when
    each tile spans the **full UE axis** (``ue_chunk >= n_ue``); with a
    smaller UE chunk the float sum is reassociated, so agreement is
    only up to rounding — prefer full-UE tiles when exactness matters.
    """
    out = np.zeros(shape, dtype=float)
    all_nan = np.ones(shape, dtype=bool)
    seen = False
    for _ue_sl, row_sl, block in tiles:
        seen = True
        nan = np.isnan(block)
        all_nan[row_sl] &= nan.all(axis=0)
        with np.errstate(invalid="ignore"):
            out[row_sl] += np.nansum(block, axis=0)
    if not seen:
        raise ValueError("need at least one tile (empty UE population?)")
    out[all_nan] = np.nan
    return out


def streamed_max_min_placement(
    grid: GridSpec,
    tiles: Iterable[Tile],
    altitude: float,
) -> PlacementResult:
    """Max–min placement folded from streamed tiles (Section 3.4).

    The streamed counterpart of
    :func:`repro.core.placement.max_min_placement`: the min-SNR surface
    is folded tile-by-tile (O(grid) peak memory, never O(n_ue * grid))
    and its argmax — same first-max row-major tie-break — is the
    chosen cell.
    """
    mm = streamed_min_snr_map(tiles, grid.shape)
    iy, ix = argmax_cell(mm)
    x, y = grid.center_of(ix, iy)
    return PlacementResult(
        position=Point3D(x, y, float(altitude)),
        min_snr_db=float(mm[iy, ix]),
        cell=(iy, ix),
    )


def streamed_interference_max_min_placement(
    grid: GridSpec,
    tiles: Iterable[Tile],
    altitude: float,
    penalty_db: np.ndarray,
) -> PlacementResult:
    """Interference-aware max–min placement folded from SNR tiles.

    Joint fleet placement re-scores a cell's candidate SNR map by each
    UE's rise-over-thermal from the *other* cells of the fleet
    (:func:`repro.channel.interference.interference_penalty_db`):
    ``SINR ≈ SNR - penalty``, a per-UE constant over the candidate
    axis.  Because the penalty is constant per UE, subtracting it
    inside the fold commutes with any tiling — the result is
    bit-identical to materializing ``stack - penalty[:, None, None]``
    and reducing, so the PR 6 tile machinery (O(grid) peak memory) is
    reused unchanged.  ``penalty_db`` must align with the tile
    source's UE axis; all-zero penalties recover
    :func:`streamed_max_min_placement` exactly.
    """
    penalty_db = np.asarray(penalty_db, dtype=float)

    def penalized() -> Iterable[Tile]:
        for ue_sl, row_sl, block in tiles:
            yield ue_sl, row_sl, block - penalty_db[ue_sl, None, None]

    mm = streamed_min_snr_map(penalized(), grid.shape)
    iy, ix = argmax_cell(mm)
    x, y = grid.center_of(ix, iy)
    return PlacementResult(
        position=Point3D(x, y, float(altitude)),
        min_snr_db=float(mm[iy, ix]),
        cell=(iy, ix),
    )


def interpolate_tile(
    interpolator,
    grid: GridSpec,
    values: np.ndarray,
    rows: slice,
    measured_mask: Optional[np.ndarray] = None,
    fallback: Optional[np.ndarray] = None,
) -> np.ndarray:
    """One row-band of an interpolated map, via the cheapest exact path.

    Interpolators that implement ``interpolate_tile`` (IDW and kriging
    do — their estimates are per-cell queries/solves, so a band costs
    O(band)) are asked for just the band; anything else falls back to
    interpolating the full map and slicing, which is exact by
    construction but silently rematerializes — the fallback bumps the
    ``rem.tile_fallback`` perf counter so a streamed pipeline that is
    secretly O(grid)-per-band shows up in BENCH artifacts.
    """
    tile = getattr(interpolator, "interpolate_tile", None)
    if tile is not None:
        return tile(grid, values, rows, measured_mask=measured_mask, fallback=fallback)
    perf.count("rem.tile_fallback")
    full = interpolator.interpolate(
        grid, values, measured_mask=measured_mask, fallback=fallback
    )
    return full[rows].copy()


def row_bands(ny: int, tile_rows: int) -> List[slice]:
    """Contiguous row slices covering ``range(ny)`` in bands."""
    if tile_rows < 1:
        raise ValueError(f"tile_rows must be >= 1, got {tile_rows}")
    return [slice(r, min(r + tile_rows, ny)) for r in range(0, ny, tile_rows)]


def streamed_discounted_min_map(
    grid: GridSpec,
    rems: Sequence,
    interpolator,
    *,
    tile_rows: int = 64,
    penalty_rate_db_per_m: float = 0.0,
    penalty_cap_db: float = float("inf"),
    row_slices: Optional[Sequence[slice]] = None,
    collect_maps: bool = False,
) -> Tuple[np.ndarray, Optional[List[np.ndarray]]]:
    """Uncertainty-discounted min-SNR surface folded REM-by-REM.

    The streamed heart of the controller's Step 8: for each REM the
    interpolated map is produced one row-band at a time
    (:func:`interpolate_tile`), discounted by the band of its
    distance-to-nearest-measurement penalty
    (:func:`repro.core.placement.uncertainty_penalty_db`), and folded
    into the running cell-wise minimum — the per-UE map *stack* is
    never materialized, so peak state is O(grid) + O(band) regardless
    of how many REMs stream through.

    Bit-identical to the materialized path (interpolate each REM
    fully, discount, ``np.min`` over the stack) for **every** tiling:
    interpolation and penalty are independent per cell against each
    REM's global measured set, and a min-fold commutes with chunking
    (NaN poisons a cell in both paths).  A non-positive penalty rate
    or a measurement-free REM skips the discount, exactly like the
    materialized `_uncertainty_discounted`.

    ``rems`` are :class:`repro.rem.map.REM`-shaped objects
    (``measured_values()``, ``measured_mask``, ``prior``).
    ``row_slices`` overrides the default ``tile_rows`` banding (the
    property tests feed ragged tilings).  With ``collect_maps`` the
    *undiscounted* full map of each REM is also assembled band-by-band
    and returned (O(n_rems × grid) — the dedup-bounded epoch result,
    not a per-UE stack).
    """
    bands = list(row_slices) if row_slices is not None else row_bands(grid.ny, tile_rows)
    out = np.full(grid.shape, np.inf)
    maps: Optional[List[np.ndarray]] = [] if collect_maps else None
    seen = False
    for rem in rems:
        seen = True
        values = rem.measured_values()
        full = np.empty(grid.shape) if collect_maps else None
        for rows in bands:
            block = interpolate_tile(
                interpolator, grid, values, rows, fallback=rem.prior
            )
            if collect_maps:
                full[rows] = block
            penalty = uncertainty_penalty_db(
                grid,
                rem.measured_mask,
                penalty_rate_db_per_m,
                penalty_cap_db,
                rows=rows,
            )
            if penalty is not None:
                block = block - penalty
            np.minimum(out[rows], block, out=out[rows])
        if collect_maps:
            maps.append(full)
    if not seen:
        raise ValueError("need at least one REM")
    return out, maps


def streamed_discounted_max_min_placement(
    grid: GridSpec,
    rems: Sequence,
    interpolator,
    altitude: float,
    *,
    tile_rows: int = 64,
    penalty_rate_db_per_m: float = 0.0,
    penalty_cap_db: float = float("inf"),
    row_slices: Optional[Sequence[slice]] = None,
    collect_maps: bool = False,
) -> Tuple[PlacementResult, Optional[List[np.ndarray]]]:
    """Max–min placement over streamed, uncertainty-discounted REMs.

    Folds :func:`streamed_discounted_min_map` and takes its argmax —
    the streamed counterpart of the controller's materialized
    ``interpolate → discount → max_min_placement`` sequence, with the
    same first-max row-major tie-break.  Returns
    ``(placement, maps)``; ``maps`` is None unless ``collect_maps``.
    """
    mm, maps = streamed_discounted_min_map(
        grid,
        rems,
        interpolator,
        tile_rows=tile_rows,
        penalty_rate_db_per_m=penalty_rate_db_per_m,
        penalty_cap_db=penalty_cap_db,
        row_slices=row_slices,
        collect_maps=collect_maps,
    )
    iy, ix = argmax_cell(mm)
    x, y = grid.center_of(ix, iy)
    placement = PlacementResult(
        position=Point3D(x, y, float(altitude)),
        min_snr_db=float(mm[iy, ix]),
        cell=(iy, ix),
    )
    return placement, maps

"""Streaming folds over map tiles.

City-scale populations make the ``(n_ue, ny, nx)`` stack the memory
bottleneck of every map consumer, but the aggregations the system
actually needs — the min-SNR surface behind max–min placement, coverage
counts, the aggregate REM — are all folds: they can consume the tiles
of :meth:`~repro.channel.model.ChannelModel.iter_snr_map_tiles` as they
arrive and keep only O(grid) state.

Exactness
---------

Tiles carry a ``(ue_slice, row_slice, block)`` triple and each cell
value is bit-identical to the materialized stack (the tile generator's
contract), so the only question is whether the *fold* commutes with
chunking:

* ``min`` and integer counting are exact under any chunking — the
  minimum of minima is the minimum, and both numpy's axis-0 reduce and
  the chunked fold visit UEs in ascending index order;
* float **sums** are exact only when each tile spans the full UE axis
  (reassociating a float sum changes rounding), which is why
  :func:`streamed_aggregate_rem` documents that caveat explicitly.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import numpy as np

from repro.core.placement import PlacementResult
from repro.geo.grid import GridSpec
from repro.geo.points import Point3D
from repro.rem.aggregate import argmax_cell

#: A streamed map tile: which UEs, which grid rows, and the
#: ``(n_ue_chunk, n_rows, nx)`` block of values.
Tile = Tuple[slice, slice, np.ndarray]


def streamed_min_snr_map(tiles: Iterable[Tile], shape: Tuple[int, int]) -> np.ndarray:
    """Cell-wise minimum over streamed per-UE map tiles.

    Bit-identical to ``np.min(stack, axis=0)`` over the materialized
    stack: min folds exactly under chunking, NaN poisons a cell in both
    paths, and rows no tile covers stay ``+inf`` (a coverage bug the
    caller's tile source should make impossible).
    """
    out = np.full(shape, np.inf)
    seen = False
    for _ue_sl, row_sl, block in tiles:
        seen = True
        np.minimum(out[row_sl], block.min(axis=0), out=out[row_sl])
    if not seen:
        raise ValueError("need at least one tile (empty UE population?)")
    return out


def streamed_coverage_counts(
    tiles: Iterable[Tile], shape: Tuple[int, int], threshold_db: float
) -> np.ndarray:
    """Per-cell count of UEs whose map meets ``threshold_db``.

    Integer accumulation, exact under any tiling; equals
    ``(stack >= threshold_db).sum(axis=0)`` on the materialized stack.
    """
    out = np.zeros(shape, dtype=np.int64)
    for _ue_sl, row_sl, block in tiles:
        out[row_sl] += (block >= threshold_db).sum(axis=0)
    return out


def streamed_aggregate_rem(tiles: Iterable[Tile], shape: Tuple[int, int]) -> np.ndarray:
    """Cell-wise NaN-ignoring sum over streamed per-UE map tiles.

    Matches :func:`repro.rem.aggregate.aggregate_rem` bit-for-bit when
    each tile spans the **full UE axis** (``ue_chunk >= n_ue``); with a
    smaller UE chunk the float sum is reassociated, so agreement is
    only up to rounding — prefer full-UE tiles when exactness matters.
    """
    out = np.zeros(shape, dtype=float)
    all_nan = np.ones(shape, dtype=bool)
    seen = False
    for _ue_sl, row_sl, block in tiles:
        seen = True
        nan = np.isnan(block)
        all_nan[row_sl] &= nan.all(axis=0)
        with np.errstate(invalid="ignore"):
            out[row_sl] += np.nansum(block, axis=0)
    if not seen:
        raise ValueError("need at least one tile (empty UE population?)")
    out[all_nan] = np.nan
    return out


def streamed_max_min_placement(
    grid: GridSpec,
    tiles: Iterable[Tile],
    altitude: float,
) -> PlacementResult:
    """Max–min placement folded from streamed tiles (Section 3.4).

    The streamed counterpart of
    :func:`repro.core.placement.max_min_placement`: the min-SNR surface
    is folded tile-by-tile (O(grid) peak memory, never O(n_ue * grid))
    and its argmax — same first-max row-major tie-break — is the
    chosen cell.
    """
    mm = streamed_min_snr_map(tiles, grid.shape)
    iy, ix = argmax_cell(mm)
    x, y = grid.center_of(ix, iy)
    return PlacementResult(
        position=Point3D(x, y, float(altitude)),
        min_snr_db=float(mm[iy, ix]),
        cell=(iy, ix),
    )


def streamed_interference_max_min_placement(
    grid: GridSpec,
    tiles: Iterable[Tile],
    altitude: float,
    penalty_db: np.ndarray,
) -> PlacementResult:
    """Interference-aware max–min placement folded from SNR tiles.

    Joint fleet placement re-scores a cell's candidate SNR map by each
    UE's rise-over-thermal from the *other* cells of the fleet
    (:func:`repro.channel.interference.interference_penalty_db`):
    ``SINR ≈ SNR - penalty``, a per-UE constant over the candidate
    axis.  Because the penalty is constant per UE, subtracting it
    inside the fold commutes with any tiling — the result is
    bit-identical to materializing ``stack - penalty[:, None, None]``
    and reducing, so the PR 6 tile machinery (O(grid) peak memory) is
    reused unchanged.  ``penalty_db`` must align with the tile
    source's UE axis; all-zero penalties recover
    :func:`streamed_max_min_placement` exactly.
    """
    penalty_db = np.asarray(penalty_db, dtype=float)

    def penalized() -> Iterable[Tile]:
        for ue_sl, row_sl, block in tiles:
            yield ue_sl, row_sl, block - penalty_db[ue_sl, None, None]

    mm = streamed_min_snr_map(penalized(), grid.shape)
    iy, ix = argmax_cell(mm)
    x, y = grid.center_of(ix, iy)
    return PlacementResult(
        position=Point3D(x, y, float(altitude)),
        min_snr_db=float(mm[iy, ix]),
        cell=(iy, ix),
    )


def interpolate_tile(
    interpolator,
    grid: GridSpec,
    values: np.ndarray,
    rows: slice,
    measured_mask: Optional[np.ndarray] = None,
    fallback: Optional[np.ndarray] = None,
) -> np.ndarray:
    """One row-band of an interpolated map, via the cheapest exact path.

    Interpolators that implement ``interpolate_tile`` (IDW does —
    k-NN estimates are per-cell, so a band costs O(band)) are asked
    for just the band; anything else falls back to interpolating the
    full map and slicing, which is exact by construction.
    """
    tile = getattr(interpolator, "interpolate_tile", None)
    if tile is not None:
        return tile(grid, values, rows, measured_mask=measured_mask, fallback=fallback)
    full = interpolator.interpolate(
        grid, values, measured_mask=measured_mask, fallback=fallback
    )
    return full[rows].copy()

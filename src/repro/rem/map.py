"""The REM data structure.

One :class:`REM` holds everything SkyRAN knows about the channel from
the airspace (at the operating altitude) to one UE *position*: running
per-cell measurement averages, an optional model-based prior (the FSPL
seed of Section 3.5), and the interpolated full map.  REMs are keyed by
UE position, not UE identity — that is what makes temporal reuse work
when a UE returns to a previously-mapped spot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.geo.grid import GridSpec
from repro.rem.interpolate import Interpolator, make_interpolator


@dataclass
class REM:
    """Radio Environment Map for one UE position at one altitude.

    Attributes
    ----------
    grid:
        Grid of the operating area.
    ue_xyz:
        UE position this map is keyed to.
    altitude:
        Operating altitude the map is valid for.
    prior:
        Optional model-based map (FSPL seed) used before/beyond
        measurements.
    """

    grid: GridSpec
    ue_xyz: np.ndarray
    altitude: float
    prior: Optional[np.ndarray] = None
    _sums: np.ndarray = field(init=False, repr=False)
    _counts: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.ue_xyz = np.asarray(self.ue_xyz, dtype=float).reshape(3)
        if self.prior is not None:
            self.prior = np.asarray(self.prior, dtype=float)
            if self.prior.shape != self.grid.shape:
                raise ValueError(
                    f"prior shape {self.prior.shape} != grid shape {self.grid.shape}"
                )
        self._sums = np.zeros(self.grid.shape)
        self._counts = np.zeros(self.grid.shape, dtype=int)

    # -- measurement ingestion ---------------------------------------------------

    def add_measurements(self, xy: np.ndarray, snr_db: np.ndarray) -> None:
        """Fold per-sample SNR readings into their grid cells.

        The SNR of a cell is the average of all readings taken within
        it (paper Step 7, "Measurement Update").
        """
        xy = np.asarray(xy, dtype=float).reshape(-1, 2)
        snr = np.asarray(snr_db, dtype=float).reshape(-1)
        if len(xy) != len(snr):
            raise ValueError(f"{len(xy)} positions vs {len(snr)} SNR values")
        ix, iy = self.grid.cells_of(xy)
        np.add.at(self._sums, (iy, ix), snr)
        np.add.at(self._counts, (iy, ix), 1)

    @property
    def measured_mask(self) -> np.ndarray:
        """Boolean map of cells with at least one measurement."""
        return self._counts > 0

    @property
    def n_measured_cells(self) -> int:
        return int(np.count_nonzero(self._counts))

    def measured_values(self) -> np.ndarray:
        """Per-cell measurement averages; NaN where unmeasured."""
        with np.errstate(invalid="ignore", divide="ignore"):
            vals = self._sums / self._counts
        vals[self._counts == 0] = np.nan
        return vals

    # -- full-map estimation ----------------------------------------------------

    def interpolated(
        self,
        power: float = 2.0,
        k_neighbors: int = 12,
        max_distance_m: Optional[float] = None,
        method: "str | Interpolator" = "idw",
    ) -> np.ndarray:
        """Full SNR map: measured cells + interpolation (+ prior fallback).

        ``method`` is either a registered interpolator name
        (``"idw"`` — the paper's choice — or ``"kriging"``, the
        footnote-3 alternative) or an :class:`~repro.rem.interpolate.
        Interpolator` instance; names are resolved through the registry
        with this call's ``power``/``k_neighbors``/``max_distance_m``
        as construction parameters.
        """
        if isinstance(method, str):
            method = make_interpolator(
                method,
                power=power,
                k_neighbors=k_neighbors,
                max_distance_m=max_distance_m,
            )
        return method.interpolate(
            self.grid, self.measured_values(), fallback=self.prior
        )

    def interpolated_tile(
        self,
        rows: slice,
        method: "str | Interpolator" = "idw",
        **params,
    ) -> np.ndarray:
        """One row-band of :meth:`interpolated` (O(band) work/output).

        Delegates to :func:`repro.rem.streaming.interpolate_tile`, so
        interpolators exposing the tile protocol produce just the band
        (bit-identical to slicing the full map) and anything else falls
        back to full-map interpolation behind the ``rem.tile_fallback``
        perf counter.  ``params`` resolve registry names exactly like
        :meth:`interpolated`'s keyword arguments.
        """
        from repro.rem.streaming import interpolate_tile

        if isinstance(method, str):
            method = make_interpolator(method, **params)
        return interpolate_tile(
            method, self.grid, self.measured_values(), rows, fallback=self.prior
        )

    # -- lifecycle ---------------------------------------------------------------

    def rekeyed(self, new_ue_xyz: np.ndarray) -> "REM":
        """A copy keyed to a nearby UE position (reuse, Section 3.5).

        Measurement state is shared-by-copy: the new map starts from
        everything learned for the old position.
        """
        clone = REM(self.grid, np.asarray(new_ue_xyz, dtype=float), self.altitude, self.prior)
        clone._sums = self._sums.copy()
        clone._counts = self._counts.copy()
        return clone

    def distance_to_position(self, xyz: np.ndarray) -> float:
        """Ground-plane distance from this map's key position to ``xyz``."""
        p = np.asarray(xyz, dtype=float)
        return float(np.hypot(p[0] - self.ue_xyz[0], p[1] - self.ue_xyz[1]))

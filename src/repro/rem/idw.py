"""Inverse Distance Weighting interpolation.

The paper picks IDW over Gaussian-process regression / Kriging because
it is lightweight and the accuracy difference on radio maps is marginal
(footnote 3, citing Molinari et al.).  Weights are the *square* of the
inverse distance between cell centers, per Section 3.3.3.

Implementation: a KD-tree query for the ``k`` nearest measured cells of
every unmeasured cell, then the weighted mean.  Exact-hit cells keep
their measured value.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.spatial import cKDTree

from repro.geo.grid import GridSpec


def idw_interpolate(
    grid: GridSpec,
    values: np.ndarray,
    power: float = 2.0,
    k_neighbors: int = 12,
    max_distance_m: Optional[float] = None,
    fallback: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Fill the NaN cells of a map by IDW from its measured cells.

    Parameters
    ----------
    grid:
        Grid the map lies over.
    values:
        ``(ny, nx)`` array; NaN marks unmeasured cells.
    power:
        Distance exponent (2 = paper's inverse-square weights).
    k_neighbors:
        Number of nearest measured cells contributing to each estimate.
    max_distance_m:
        If set, cells farther than this from every measurement are not
        extrapolated; they take ``fallback`` (or stay NaN).
    fallback:
        Optional full map of prior values (e.g. an FSPL seed) used
        where IDW declines to extrapolate or no measurements exist.

    Returns
    -------
    ``(ny, nx)`` interpolated map.
    """
    if power <= 0:
        raise ValueError(f"power must be positive, got {power}")
    if k_neighbors < 1:
        raise ValueError(f"k_neighbors must be >= 1, got {k_neighbors}")
    values = np.asarray(values, dtype=float)
    if values.shape != grid.shape:
        raise ValueError(f"values shape {values.shape} != grid shape {grid.shape}")

    out = values.copy()
    measured = ~np.isnan(values)
    missing = ~measured
    if not missing.any():
        return out
    if not measured.any():
        if fallback is not None:
            return np.asarray(fallback, dtype=float).copy()
        return out

    centers = grid.centers_flat()  # row-major (iy, ix) order
    measured_flat = measured.ravel()
    tree = cKDTree(centers[measured_flat])
    measured_vals = values.ravel()[measured_flat]

    query_pts = centers[missing.ravel()]
    k = min(k_neighbors, int(measured_flat.sum()))
    dist, idx = tree.query(query_pts, k=k)
    dist = np.atleast_2d(dist.T).T if dist.ndim == 1 else dist
    idx = np.atleast_2d(idx.T).T if idx.ndim == 1 else idx

    # Guard exact hits (shouldn't happen for NaN cells, but cheap).
    dist = np.maximum(dist, 1e-9)
    weights = 1.0 / dist**power
    est = np.sum(weights * measured_vals[idx], axis=1) / np.sum(weights, axis=1)

    if max_distance_m is not None:
        too_far = dist[:, 0] > max_distance_m
        if fallback is not None:
            fb = np.asarray(fallback, dtype=float).ravel()[missing.ravel()]
            est[too_far] = fb[too_far]
        else:
            est[too_far] = np.nan

    out[missing] = est
    return out


def idw_interpolate_rows(
    grid: GridSpec,
    values: np.ndarray,
    rows: slice,
    power: float = 2.0,
    k_neighbors: int = 12,
    max_distance_m: Optional[float] = None,
    fallback: Optional[np.ndarray] = None,
) -> np.ndarray:
    """One row-band of :func:`idw_interpolate`, bit-identical per cell.

    IDW estimates are per-cell k-NN queries against the *global* set of
    measured cells, so restricting the query points to a band of rows
    changes nothing per cell while the work and output drop to
    O(band).  This is what lets city-scale REM consumers stream
    interpolated maps tile-by-tile instead of materializing them.

    Returns the ``(n_rows, nx)`` interpolated block for ``rows``.
    """
    if power <= 0:
        raise ValueError(f"power must be positive, got {power}")
    if k_neighbors < 1:
        raise ValueError(f"k_neighbors must be >= 1, got {k_neighbors}")
    values = np.asarray(values, dtype=float)
    if values.shape != grid.shape:
        raise ValueError(f"values shape {values.shape} != grid shape {grid.shape}")

    sub = values[rows]
    out = sub.copy()
    measured = ~np.isnan(values)
    missing_sub = np.isnan(sub)
    if not missing_sub.any():
        return out
    if not measured.any():
        if fallback is not None:
            return np.asarray(fallback, dtype=float)[rows].copy()
        return out

    centers = grid.centers_flat()  # row-major (iy, ix) order
    measured_flat = measured.ravel()
    tree = cKDTree(centers[measured_flat])
    measured_vals = values.ravel()[measured_flat]

    band = centers.reshape(grid.ny, grid.nx, 2)[rows].reshape(-1, 2)
    query_pts = band[missing_sub.ravel()]
    k = min(k_neighbors, int(measured_flat.sum()))
    dist, idx = tree.query(query_pts, k=k)
    dist = np.atleast_2d(dist.T).T if dist.ndim == 1 else dist
    idx = np.atleast_2d(idx.T).T if idx.ndim == 1 else idx

    dist = np.maximum(dist, 1e-9)
    weights = 1.0 / dist**power
    est = np.sum(weights * measured_vals[idx], axis=1) / np.sum(weights, axis=1)

    if max_distance_m is not None:
        too_far = dist[:, 0] > max_distance_m
        if fallback is not None:
            fb = np.asarray(fallback, dtype=float)[rows].ravel()[missing_sub.ravel()]
            est[too_far] = fb[too_far]
        else:
            est[too_far] = np.nan

    out[missing_sub] = est
    return out

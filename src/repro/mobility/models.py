"""Mobility model implementations."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.geo.grid import GridSpec
from repro.lte.ue import UE
from repro.perf import perf

#: Pedestrian walking speed, m/s (the paper's Fig. 12 routes are
#: "scripted to closely mimic human mobility").
WALK_SPEED_MPS = 1.4


class MobilityModel(ABC):
    """Advances UE positions through simulated time."""

    @abstractmethod
    def step(self, ue: UE, dt_s: float, rng: np.random.Generator) -> None:
        """Move one UE forward by ``dt_s`` seconds."""

    def forget(self, ue_id: int) -> None:
        """Drop any per-UE state held for ``ue_id``.

        Mirrors ``OLLA.forget``: deregistration calls this so detached
        or churned UEs do not pin waypoint/route/dwell state forever,
        and a re-attached UE id starts its motion fresh.  The base
        implementation is a no-op for stateless models.
        """


class Static(MobilityModel):
    """UEs that never move (the testbed setting, Section 4.2)."""

    def step(self, ue: UE, dt_s: float, rng: np.random.Generator) -> None:
        del ue, dt_s, rng  # nothing to do


@dataclass
class RandomWaypoint(MobilityModel):
    """Classic random-waypoint motion inside the operating area.

    Pick a uniform destination, walk to it at ``speed_mps``, pause,
    repeat.  Per-UE state is kept internally, keyed by UE id.
    """

    grid: GridSpec
    speed_mps: float = WALK_SPEED_MPS
    pause_s: float = 30.0
    _targets: dict = field(default_factory=dict)
    _pauses: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.speed_mps <= 0:
            raise ValueError(f"speed_mps must be positive, got {self.speed_mps}")
        if self.pause_s < 0:
            raise ValueError(f"pause_s must be >= 0, got {self.pause_s}")

    def forget(self, ue_id: int) -> None:
        self._targets.pop(ue_id, None)
        self._pauses.pop(ue_id, None)

    def step(self, ue: UE, dt_s: float, rng: np.random.Generator) -> None:
        if dt_s < 0:
            raise ValueError(f"dt_s must be >= 0, got {dt_s}")
        remaining = dt_s
        while remaining > 0:
            pause_left = self._pauses.get(ue.ue_id, 0.0)
            if pause_left > 0:
                wait = min(pause_left, remaining)
                self._pauses[ue.ue_id] = pause_left - wait
                remaining -= wait
                continue
            target = self._targets.get(ue.ue_id)
            if target is None:
                target = np.array(
                    [
                        rng.uniform(self.grid.origin_x, self.grid.max_x),
                        rng.uniform(self.grid.origin_y, self.grid.max_y),
                    ]
                )
                self._targets[ue.ue_id] = target
            pos = np.array([ue.position.x, ue.position.y])
            to_go = float(np.hypot(*(target - pos)))
            reachable = self.speed_mps * remaining
            if reachable >= to_go:
                ue.move_to(float(target[0]), float(target[1]))
                remaining -= to_go / self.speed_mps
                del self._targets[ue.ue_id]
                self._pauses[ue.ue_id] = self.pause_s
            else:
                direction = (target - pos) / max(to_go, 1e-9)
                new = pos + direction * reachable
                ue.move_to(float(new[0]), float(new[1]))
                remaining = 0.0


@dataclass
class ScriptedRoute(MobilityModel):
    """Walk back and forth along a fixed polyline route.

    Mimics the Fig. 12 setup where UEs "move along certain predefined
    routes (scripted to closely mimic human mobility)".
    """

    route: np.ndarray
    speed_mps: float = WALK_SPEED_MPS
    _progress: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.speed_mps <= 0:
            raise ValueError(f"speed_mps must be positive, got {self.speed_mps}")
        self.route = np.asarray(self.route, dtype=float).reshape(-1, 2)
        if len(self.route) < 2:
            raise ValueError("route needs at least two vertices")
        seg = np.diff(self.route, axis=0)
        self._seg_len = np.hypot(seg[:, 0], seg[:, 1])
        self._cum = np.concatenate([[0.0], np.cumsum(self._seg_len)])
        self._total = float(self._cum[-1])
        if self._total <= 0:
            raise ValueError("route has zero length")

    def _position_at(self, arc: float) -> np.ndarray:
        # Reflect the arc coordinate to ping-pong along the route.
        period = 2.0 * self._total
        a = arc % period
        if a > self._total:
            a = period - a
        x = np.interp(a, self._cum, self.route[:, 0])
        y = np.interp(a, self._cum, self.route[:, 1])
        return np.array([x, y])

    def step(self, ue: UE, dt_s: float, rng: np.random.Generator) -> None:
        del rng
        if dt_s < 0:
            raise ValueError(f"dt_s must be >= 0, got {dt_s}")
        arc = self._progress.get(ue.ue_id, 0.0) + self.speed_mps * dt_s
        self._progress[ue.ue_id] = arc
        pos = self._position_at(arc)
        ue.move_to(float(pos[0]), float(pos[1]))

    def forget(self, ue_id: int) -> None:
        self._progress.pop(ue_id, None)


@dataclass
class ClusterMobility(MobilityModel):
    """UEs hop between a fixed set of gathering spots.

    Models crowd dynamics (stadium gates, concert stages): a UE stays
    at a spot for an exponential dwell time, then relocates near a
    (possibly different) spot.
    """

    spots: np.ndarray
    dwell_mean_s: float = 600.0
    jitter_m: float = 8.0
    _until: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.spots = np.asarray(self.spots, dtype=float).reshape(-1, 2)
        if len(self.spots) == 0:
            raise ValueError("need at least one spot")

    def step(self, ue: UE, dt_s: float, rng: np.random.Generator) -> None:
        if dt_s < 0:
            raise ValueError(f"dt_s must be >= 0, got {dt_s}")
        left = self._until.get(ue.ue_id, 0.0) - dt_s
        if left <= 0:
            spot = self.spots[rng.integers(len(self.spots))]
            offset = rng.normal(0.0, self.jitter_m, 2)
            ue.move_to(float(spot[0] + offset[0]), float(spot[1] + offset[1]))
            left = rng.exponential(self.dwell_mean_s)
        self._until[ue.ue_id] = left

    def forget(self, ue_id: int) -> None:
        self._until.pop(ue_id, None)


def relocate_fraction(
    ues: Sequence[UE],
    fraction: float,
    grid: GridSpec,
    rng: np.random.Generator,
    clearance_check=None,
) -> List[int]:
    """Teleport a random fraction of UEs to fresh uniform positions.

    This is the Section 5.2 dynamics model ("in each epoch, half of
    the UEs are randomly moved to different positions").  Returns the
    ids of the moved UEs.

    ``clearance_check(x, y) -> bool`` can veto positions (e.g. inside
    buildings); up to 100 draws per UE.  A UE whose every draw is
    vetoed stays where it is (``mobility.clearance_giveup`` counts the
    give-ups) rather than being teleported to a vetoed position.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    ues = list(ues)
    n_move = int(round(fraction * len(ues)))
    if n_move == 0:
        return []
    picked = rng.choice(len(ues), size=n_move, replace=False)
    moved = []
    for i in picked:
        for _ in range(100):
            x = rng.uniform(grid.origin_x, grid.max_x)
            y = rng.uniform(grid.origin_y, grid.max_y)
            if clearance_check is None or clearance_check(x, y):
                break
        else:
            perf.count("mobility.clearance_giveup")
            continue
        ues[i].move_to(x, y)
        moved.append(ues[i].ue_id)
    return moved

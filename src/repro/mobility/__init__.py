"""UE mobility models.

The paper exercises three kinds of UE dynamics: static testbed UEs
(Section 4), scripted pedestrian-like routes for the epoch-length study
(Fig. 12), and per-epoch random relocation of a fraction of UEs in the
scale-up simulations (Section 5.2).  All models share one interface:
``step(ue, dt_s, rng)`` advances a UE's position in simulated time.
"""

from repro.mobility.models import (
    ClusterMobility,
    MobilityModel,
    RandomWaypoint,
    ScriptedRoute,
    Static,
    relocate_fraction,
)

__all__ = [
    "MobilityModel",
    "Static",
    "RandomWaypoint",
    "ScriptedRoute",
    "ClusterMobility",
    "relocate_fraction",
]

"""Small-scale fading for individual measurement samples.

The per-sample SNR the eNodeB PHY reports at 100 Hz fluctuates around
the local mean because of multipath.  We draw per-sample fading in dB
from a Rician envelope whose K-factor depends on LOS state: strong
direct path (high K, small fluctuation) when the ray is clear, Rayleigh
-like (K ~ 0) when it is obstructed.  This is what makes the 50 m
flight segment of Fig. 7 swing by ~20 dB rather than varying smoothly.
"""

from __future__ import annotations

import numpy as np

#: Rician K-factor (linear) for clear line-of-sight air-to-ground links.
K_LOS = 12.0

#: Rician K-factor for obstructed links (approximately Rayleigh).
K_NLOS = 1.0


def rician_envelope_power(
    k_factor: float, size, rng: np.random.Generator
) -> np.ndarray:
    """Sample normalized Rician envelope power (mean 1, linear scale)."""
    if k_factor < 0:
        raise ValueError(f"k_factor must be >= 0, got {k_factor}")
    # Rician fading: dominant + diffuse complex Gaussian components.
    sigma = np.sqrt(1.0 / (2.0 * (k_factor + 1.0)))
    mean = np.sqrt(k_factor / (k_factor + 1.0))
    re = rng.normal(mean, sigma, size)
    im = rng.normal(0.0, sigma, size)
    return re * re + im * im


def sample_fading_db(
    los: np.ndarray,
    rng: np.random.Generator,
    k_los: float = K_LOS,
    k_nlos: float = K_NLOS,
) -> np.ndarray:
    """Per-sample fading in dB given per-sample LOS state.

    Parameters
    ----------
    los:
        Boolean array; True where the direct ray is unobstructed.
    rng:
        Random generator.
    k_los, k_nlos:
        Rician K-factors for the two states.

    Returns
    -------
    Array of fading gains in dB (mean power 0 dB per state).
    """
    los = np.asarray(los, dtype=bool)
    out = np.empty(los.shape, dtype=float)
    n_los = int(los.sum())
    n_nlos = los.size - n_los
    if n_los:
        p = rician_envelope_power(k_los, n_los, rng)
        out[los] = 10.0 * np.log10(np.maximum(p, 1e-12))
    if n_nlos:
        p = rician_envelope_power(k_nlos, n_nlos, rng)
        out[~los] = 10.0 * np.log10(np.maximum(p, 1e-12))
    return out

"""Inter-cell interference for multi-UAV deployments.

A single SkyRAN UAV owns its carrier; a fleet sharing one LTE channel
does not.  This module computes per-UE SINR given every UAV's
position: the serving cell's signal over (noise + the sum of the
co-channel cells' received powers, scaled by their activity).  The
fleet controller uses it to score associations and sectorizations
honestly — two UAVs parked next to each other *hurt* each other,
which pure-SNR scoring cannot see.

Two implementations exist side by side, per the repo-wide contract:

* :func:`sinr_db` / :func:`fleet_sinr_db_reference` — scalar Python
  loops, one path-loss query per (UAV, UE) pair.  Slow, obviously
  correct, kept forever as the test reference.
* :func:`fleet_rx_power_dbm` / :func:`fleet_sinr_db_stack` — one
  vectorized ray batch per UAV via
  :meth:`ChannelModel.path_loss_to_many`, interference accumulated
  over UAV index in ascending order so every UE's arithmetic matches
  the scalar reference term for term.  **Bit-identical** to the
  references, and what the fleet hot paths call.

Frequency reuse: each cell carries an integer carrier index
(:func:`reuse_carriers` maps cell ``i`` to ``i % reuse_factor``); only
cells sharing the serving cell's carrier contribute interference.
``reuse_factor=1`` is the worst case (all co-channel);
``reuse_factor >= n_cells`` recovers pure-SNR operation.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.channel.linkbudget import LinkBudget
from repro.channel.model import ChannelModel


def reuse_carriers(n_cells: int, reuse_factor: int) -> np.ndarray:
    """Carrier index per cell under a simple modular reuse plan.

    Cell ``i`` transmits on carrier ``i % reuse_factor``.  With
    ``reuse_factor=1`` every cell shares one carrier (full
    interference); with ``reuse_factor >= n_cells`` every cell gets a
    private carrier and SINR degenerates to SNR.
    """
    if n_cells < 1:
        raise ValueError(f"n_cells must be >= 1, got {n_cells}")
    if reuse_factor < 1:
        raise ValueError(f"reuse_factor must be >= 1, got {reuse_factor}")
    return np.arange(n_cells) % reuse_factor


def _activity(n: int, activity: Optional[Sequence[float]]) -> np.ndarray:
    if activity is None:
        return np.ones(n)
    act = np.asarray(list(activity), dtype=float)
    if act.shape != (n,):
        raise ValueError(f"activity must have length {n}")
    if np.any((act < 0) | (act > 1)):
        raise ValueError("activity factors must be in [0, 1]")
    return act


def _carriers(n: int, carriers: Optional[Sequence[int]]) -> np.ndarray:
    if carriers is None:
        return np.zeros(n, dtype=int)
    carr = np.asarray(list(carriers), dtype=int)
    if carr.shape != (n,):
        raise ValueError(f"carriers must have length {n}")
    return carr


def sinr_db(
    channel: ChannelModel,
    uav_positions: Sequence[np.ndarray],
    ue_xyz: np.ndarray,
    serving_index: int,
    activity: Optional[Sequence[float]] = None,
    carriers: Optional[Sequence[int]] = None,
) -> float:
    """SINR of a UE served by one UAV amid the rest of the fleet.

    Parameters
    ----------
    channel:
        The shared radio environment (every UAV sees the same world).
    uav_positions:
        One ``(3,)`` position per UAV.
    ue_xyz:
        The UE being scored.
    serving_index:
        Index of the serving UAV within ``uav_positions``.
    activity:
        Per-UAV downlink activity factors in [0, 1] (fraction of PRBs
        loaded).  Defaults to fully loaded interferers — the
        conservative, busy-hour assumption.
    carriers:
        Per-UAV carrier indices; only UAVs sharing the serving cell's
        carrier interfere.  Defaults to all co-channel.

    Returns
    -------
    SINR in dB.
    """
    n = len(uav_positions)
    if not 0 <= serving_index < n:
        raise ValueError(f"serving_index {serving_index} out of range for {n} UAVs")
    act = _activity(n, activity)
    carr = _carriers(n, carriers)

    link = channel.link
    rx_dbm = np.array(
        [
            link.rx_power_dbm(float(channel.path_loss_db(np.asarray(p, dtype=float), ue_xyz)))
            for p in uav_positions
        ]
    )
    # dBm -> mW via the array kernel: numpy's scalar ``**`` can differ
    # from the array ufunc by one ulp, and the batched stack path must
    # stay bit-identical to this reference.
    rx_mw = 10.0 ** (rx_dbm / 10.0)
    signal_mw = rx_mw[serving_index]
    noise_mw = 10.0 ** (link.noise_floor_dbm / 10.0)
    interf_mw = 0.0
    for j in range(n):
        if j == serving_index or carr[j] != carr[serving_index]:
            continue
        interf_mw += act[j] * rx_mw[j]
    return float(10.0 * np.log10(signal_mw / (noise_mw + interf_mw)))


def fleet_rx_power_dbm(
    channel: ChannelModel,
    uav_positions: Sequence[np.ndarray],
    ue_positions: Sequence,
) -> np.ndarray:
    """Received power stack, ``(n_uav, n_ue)`` in dBm.

    One vectorized ray batch per UAV.  Row ``j`` is bit-identical to
    querying :meth:`ChannelModel.path_loss_db` per UE (the
    :meth:`path_loss_to_many` contract), so anything derived from this
    stack with matching arithmetic matches the scalar references.
    """
    ues = np.atleast_2d(np.asarray(ue_positions, dtype=float))
    n_uav = len(uav_positions)
    out = np.empty((n_uav, ues.shape[0]), dtype=float)
    for j, pos in enumerate(uav_positions):
        out[j] = channel.link.rx_power_dbm(channel.path_loss_to_many(pos, ues))
    return out


def sinr_db_from_rx_stack(
    link: LinkBudget,
    rx_dbm: np.ndarray,
    serving: np.ndarray,
    activity: Optional[Sequence[float]] = None,
    carriers: Optional[Sequence[int]] = None,
) -> np.ndarray:
    """Per-UE SINR (dB) from a precomputed ``(n_uav, n_ue)`` rx stack.

    ``serving[k]`` is the serving UAV index of UE ``k``.  Interference
    is accumulated over UAV index ``j`` in ascending order — the same
    term order as the scalar :func:`sinr_db` loop — with excluded
    terms (serving cell, off-carrier cells) contributed as an exact
    ``0.0``, so every UE's result is bit-identical to the reference.
    """
    rx_dbm = np.asarray(rx_dbm, dtype=float)
    n_uav, n_ue = rx_dbm.shape
    serving = np.asarray(serving, dtype=int)
    if serving.shape != (n_ue,):
        raise ValueError(f"serving must have shape ({n_ue},), got {serving.shape}")
    if n_ue and (serving.min() < 0 or serving.max() >= n_uav):
        raise ValueError("serving indices out of range")
    act = _activity(n_uav, activity)
    carr = _carriers(n_uav, carriers)

    rx_mw = 10.0 ** (rx_dbm / 10.0)
    signal_mw = rx_mw[serving, np.arange(n_ue)]
    noise_mw = 10.0 ** (link.noise_floor_dbm / 10.0)
    serving_carrier = carr[serving]
    interf_mw = np.zeros(n_ue, dtype=float)
    for j in range(n_uav):
        excluded = (serving == j) | (serving_carrier != carr[j])
        interf_mw += np.where(excluded, 0.0, act[j] * rx_mw[j])
    return 10.0 * np.log10(signal_mw / (noise_mw + interf_mw))


def fleet_sinr_db_stack(
    channel: ChannelModel,
    uav_positions: Sequence[np.ndarray],
    ue_positions: Sequence,
    serving: Sequence[int],
    activity: Optional[Sequence[float]] = None,
    carriers: Optional[Sequence[int]] = None,
) -> np.ndarray:
    """Per-UE SINR (dB), batched — bit-identical to the scalar loop.

    The fleet hot path: one ray batch per UAV instead of one per
    (UAV, UE) pair.
    """
    rx_dbm = fleet_rx_power_dbm(channel, uav_positions, ue_positions)
    return sinr_db_from_rx_stack(
        channel.link, rx_dbm, np.asarray(serving, dtype=int), activity, carriers
    )


def fleet_sinr_db(
    channel: ChannelModel,
    uav_positions: Sequence[np.ndarray],
    ue_positions: Dict[int, np.ndarray],
    serving: Dict[int, int],
    activity: Optional[Sequence[float]] = None,
    carriers: Optional[Sequence[int]] = None,
) -> Dict[int, float]:
    """Per-UE SINR for a whole fleet assignment (dict API).

    ``serving[ue_id]`` is the index of the UAV that serves the UE.
    Routed through the batched stack; bit-identical to
    :func:`fleet_sinr_db_reference`.
    """
    ue_ids = list(ue_positions.keys())
    if not ue_ids:
        return {}
    xyz = np.array([ue_positions[u] for u in ue_ids], dtype=float)
    srv = np.array([serving[u] for u in ue_ids], dtype=int)
    out = fleet_sinr_db_stack(channel, uav_positions, xyz, srv, activity, carriers)
    return {u: float(s) for u, s in zip(ue_ids, out)}


def fleet_sinr_db_reference(
    channel: ChannelModel,
    uav_positions: Sequence[np.ndarray],
    ue_positions: Dict[int, np.ndarray],
    serving: Dict[int, int],
    activity: Optional[Sequence[float]] = None,
    carriers: Optional[Sequence[int]] = None,
) -> Dict[int, float]:
    """Loop reference for :func:`fleet_sinr_db` — kept for tests."""
    return {
        ue_id: sinr_db(channel, uav_positions, ue_xyz, serving[ue_id], activity, carriers)
        for ue_id, ue_xyz in ue_positions.items()
    }


def interference_penalty_db(
    channel: ChannelModel,
    ue_positions: Sequence,
    interferer_positions: Sequence,
    activity: Optional[Sequence[float]] = None,
) -> np.ndarray:
    """Per-UE dB penalty converting an SNR map into an SINR map.

    ``SINR = SNR - penalty`` where
    ``penalty = 10·log10((noise + interference) / noise)`` — the rise
    over thermal from the fixed interferers.  Equal to the exact SINR
    up to one floating-point subtraction (``(rx - noise) - penalty``
    vs. ``rx - 10·log10(noise + interf)``), which is why the streamed
    placement fold uses it but bit-exactness claims stay at the
    channel layer.  Empty ``interferer_positions`` → exact zeros.
    """
    ues = np.atleast_2d(np.asarray(ue_positions, dtype=float))
    if len(interferer_positions) == 0:
        return np.zeros(ues.shape[0], dtype=float)
    noise_mw = 10.0 ** (channel.link.noise_floor_dbm / 10.0)
    interf_mw = channel.interference_mw(ues, interferer_positions, activity)
    return 10.0 * np.log10((noise_mw + interf_mw) / noise_mw)

"""Inter-cell interference for multi-UAV deployments.

A single SkyRAN UAV owns its carrier; a fleet sharing one LTE channel
does not.  This module computes per-UE SINR given every UAV's
position: the serving cell's signal over (noise + the sum of the other
cells' received powers, scaled by their activity).  The fleet
coordinator uses it to score sectorizations honestly — two UAVs
parked next to each other *hurt* each other, which pure-SNR scoring
cannot see.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.channel.model import ChannelModel


def sinr_db(
    channel: ChannelModel,
    uav_positions: Sequence[np.ndarray],
    ue_xyz: np.ndarray,
    serving_index: int,
    activity: Optional[Sequence[float]] = None,
) -> float:
    """SINR of a UE served by one UAV amid the rest of the fleet.

    Parameters
    ----------
    channel:
        The shared radio environment (every UAV sees the same world).
    uav_positions:
        One ``(3,)`` position per UAV.
    ue_xyz:
        The UE being scored.
    serving_index:
        Index of the serving UAV within ``uav_positions``.
    activity:
        Per-UAV downlink activity factors in [0, 1] (fraction of PRBs
        loaded).  Defaults to fully loaded interferers — the
        conservative, busy-hour assumption.

    Returns
    -------
    SINR in dB.
    """
    n = len(uav_positions)
    if not 0 <= serving_index < n:
        raise ValueError(f"serving_index {serving_index} out of range for {n} UAVs")
    if activity is None:
        act = np.ones(n)
    else:
        act = np.asarray(list(activity), dtype=float)
        if act.shape != (n,):
            raise ValueError(f"activity must have length {n}")
        if np.any((act < 0) | (act > 1)):
            raise ValueError("activity factors must be in [0, 1]")

    link = channel.link
    rx_dbm = np.array(
        [
            link.rx_power_dbm(float(channel.path_loss_db(np.asarray(p, dtype=float), ue_xyz)))
            for p in uav_positions
        ]
    )
    signal_mw = 10.0 ** (rx_dbm[serving_index] / 10.0)
    noise_mw = 10.0 ** (link.noise_floor_dbm / 10.0)
    interf_mw = 0.0
    for j in range(n):
        if j == serving_index:
            continue
        interf_mw += act[j] * 10.0 ** (rx_dbm[j] / 10.0)
    return float(10.0 * np.log10(signal_mw / (noise_mw + interf_mw)))


def fleet_sinr_db(
    channel: ChannelModel,
    uav_positions: Sequence[np.ndarray],
    ue_positions: Dict[int, np.ndarray],
    serving: Dict[int, int],
    activity: Optional[Sequence[float]] = None,
) -> Dict[int, float]:
    """Per-UE SINR for a whole fleet assignment.

    ``serving[ue_id]`` is the index of the UAV that serves the UE.
    """
    return {
        ue_id: sinr_db(channel, uav_positions, ue_xyz, serving[ue_id], activity)
        for ue_id, ue_xyz in ue_positions.items()
    }

"""Ground-truth REM construction.

The paper scores every scheme against an oracle REM obtained from an
exhaustive measurement flight (testbed, Fig. 15) or full ray tracing
(scale-up study).  Here the oracle is the channel model's mean SNR on
every grid cell — no fading, no measurement noise — which is what an
infinitely long averaging flight would converge to.

The stack builder rides the batched map oracle
(:meth:`~repro.channel.model.ChannelModel.snr_maps`): all UEs are
traced in chunked vectorized batches, per-UE maps are memoized across
calls, and ``workers``/``REPRO_NUM_WORKERS`` can fan the work out over
a process pool — the serial, batched and parallel paths all produce
identical stacks.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.channel.model import ChannelModel
from repro.geo.grid import GridSpec
from repro.perf import perf


def ground_truth_rem(
    model: ChannelModel,
    ue_xyz: np.ndarray,
    altitude: float,
    grid: Optional[GridSpec] = None,
) -> np.ndarray:
    """Oracle SNR map for one UE at the given operating altitude.

    Returns a ``(ny, nx)`` array of mean SNR in dB.
    """
    return model.snr_map(ue_xyz, altitude, grid)


def ground_truth_stack(
    model: ChannelModel,
    ue_positions: Sequence,
    altitude: float,
    grid: Optional[GridSpec] = None,
    *,
    workers: Optional[int] = None,
    use_cache: bool = True,
) -> np.ndarray:
    """Oracle SNR maps for all UEs, stacked ``(n_ue, ny, nx)``."""
    if len(ue_positions) == 0:
        g = grid or model.terrain.grid
        # Pin the dtype: an empty np.empty would default to float64 by
        # accident, not by contract with snr_maps' output.
        return np.empty((0,) + g.shape, dtype=float)
    with perf.span("groundtruth.stack"):
        return model.snr_maps(
            ue_positions, altitude, grid, workers=workers, use_cache=use_cache
        )


def iter_ground_truth_tiles(
    model: ChannelModel,
    ue_positions: Sequence,
    altitude: float,
    grid: Optional[GridSpec] = None,
    *,
    tile_rows: int = 64,
    ue_chunk: Optional[int] = None,
):
    """Stream the oracle stack as ``(ue_slice, row_slice, block)`` tiles.

    The memory-bounded counterpart of :func:`ground_truth_stack`: cell
    values are bit-identical, but no ``(n_ue, ny, nx)`` array is ever
    materialized — consumers fold tiles as they arrive (see
    :mod:`repro.rem.streaming`).
    """
    yield from model.iter_snr_map_tiles(
        ue_positions, altitude, grid, tile_rows=tile_rows, ue_chunk=ue_chunk
    )

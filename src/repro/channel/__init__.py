"""Radio propagation substrate.

The paper's scale-up study models the UAV-to-UE channel with
terrain-aware ray tracing over LiDAR data (Section 5.1): each direct
ray is decomposed into a free-space portion and a portion obstructed by
terrain features, the latter attenuating more strongly.  This package
implements that model plus the statistical layers around it:

* :mod:`repro.channel.fspl` - free-space path loss (also the model
  SkyRAN uses to *seed* REMs for never-measured UE positions).
* :mod:`repro.channel.raytrace` - vectorized ray/terrain intersection
  producing per-ray obstructed lengths.
* :mod:`repro.channel.shadowing` - spatially correlated log-normal
  shadowing fields.
* :mod:`repro.channel.fading` - small-scale Rician/Rayleigh fading for
  individual measurement samples.
* :mod:`repro.channel.linkbudget` - Tx power / gains / noise floor and
  the path-loss -> SNR conversion.
* :mod:`repro.channel.model` - :class:`ChannelModel` tying it together.
* :mod:`repro.channel.groundtruth` - exhaustive ("ground truth") REM
  construction used as the oracle all schemes are scored against.
"""

from repro.channel.fspl import fspl_db, fspl_map
from repro.channel.raytrace import (
    LinkState,
    is_los,
    link_state,
    obstructed_lengths,
    ray_profile_batch,
    trace_profile,
)
from repro.channel.shadowing import ShadowingField
from repro.channel.fading import sample_fading_db
from repro.channel.linkbudget import LinkBudget
from repro.channel.model import ChannelModel
from repro.channel.groundtruth import ground_truth_rem, ground_truth_stack
from repro.channel.interference import fleet_sinr_db, sinr_db

__all__ = [
    "fleet_sinr_db",
    "sinr_db",
    "fspl_db",
    "fspl_map",
    "LinkState",
    "is_los",
    "link_state",
    "obstructed_lengths",
    "ray_profile_batch",
    "trace_profile",
    "ShadowingField",
    "sample_fading_db",
    "LinkBudget",
    "ChannelModel",
    "ground_truth_rem",
    "ground_truth_stack",
]

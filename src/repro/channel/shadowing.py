"""Spatially correlated log-normal shadowing.

Real UAV-UE links fluctuate by several dB around the ray-traced mean
because of clutter the heightmap does not resolve (cars, fences, wall
materials).  We model this as a zero-mean Gaussian field in dB with an
exponential-like spatial correlation, realised once per (terrain, UE)
pair so that ground truth and measurements of the *same* environment
see the *same* shadowing — exactly the property that makes data-driven
REMs beat model-based ones in Fig. 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy import ndimage

from repro.geo.grid import GridSpec


#: Stand-in hashed for ``seed=None`` so that an explicit ``seed=0``
#: and "no seed" yield *different* realisations (they used to collapse
#: via ``seed or 0``).  Any value no caller would pass works; keeping
#: 0 -> 0.0 preserves every seeded realisation bit-for-bit.
_NONE_SEED_SENTINEL = -9_221_120_237_041_090_560.0


def _hash_seed(*parts: float) -> int:
    """Deterministic 63-bit seed from a tuple of floats/ints (FNV-1a)."""
    h = 1469598103934665603
    for p in parts:
        for byte in np.float64(p).tobytes():
            h ^= byte
            h = (h * 1099511628211) & 0xFFFFFFFFFFFFFFFF
    return h & 0x7FFFFFFFFFFFFFFF


@dataclass(frozen=True)
class ShadowingField:
    """A frozen shadowing realisation over a grid for one UE.

    Attributes
    ----------
    grid:
        Grid the field is defined over.
    values_db:
        ``(ny, nx)`` zero-mean field in dB.
    sigma_db:
        Marginal standard deviation.
    correlation_m:
        Decorrelation length scale in meters.
    """

    grid: GridSpec
    values_db: np.ndarray
    sigma_db: float
    correlation_m: float

    @classmethod
    def generate(
        cls,
        grid: GridSpec,
        sigma_db: float = 3.0,
        correlation_m: float = 20.0,
        seed: Optional[int] = None,
        ue_xyz: Optional[np.ndarray] = None,
    ) -> "ShadowingField":
        """Generate a correlated field.

        When ``ue_xyz`` is given, the seed is derived from it so that
        the same UE position always sees the same shadowing realisation
        (and nearby positions see different but statistically identical
        ones), independent of how many times the map is evaluated.
        """
        if sigma_db < 0:
            raise ValueError(f"sigma_db must be >= 0, got {sigma_db}")
        if correlation_m <= 0:
            raise ValueError(f"correlation_m must be positive, got {correlation_m}")
        if ue_xyz is not None:
            ue = np.asarray(ue_xyz, dtype=float)
            seed_part = _NONE_SEED_SENTINEL if seed is None else float(seed)
            seed = _hash_seed(seed_part, ue[0], ue[1], ue[2] if len(ue) > 2 else 0.0)
        rng = np.random.default_rng(seed)
        if sigma_db == 0:
            return cls(grid, np.zeros(grid.shape), 0.0, correlation_m)
        noise = rng.standard_normal(grid.shape)
        sigma_cells = max(correlation_m / grid.cell_size / 2.0, 0.5)
        field = ndimage.gaussian_filter(noise, sigma=sigma_cells)
        std = field.std()
        if std > 0:
            field = field * (sigma_db / std)
        return cls(grid, field, sigma_db, correlation_m)

    def at(self, x: float, y: float) -> float:
        """Shadowing value (dB) at a world point."""
        ix, iy = self.grid.cell_of(x, y)
        return float(self.values_db[iy, ix])

    def at_many(self, xy: np.ndarray) -> np.ndarray:
        """Vectorized lookup for an ``(n, 2)`` array of world points."""
        ix, iy = self.grid.cells_of(np.asarray(xy, dtype=float).reshape(-1, 2))
        return self.values_db[iy, ix]

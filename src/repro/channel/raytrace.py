"""Vectorized ray/terrain intersection.

For each direct ray from a transmitter to a receiver we sample points
along the ray and compare the ray height against the terrain surface.
The total length of the obstructed portion drives the excess (beyond
free-space) attenuation, mirroring the paper's LiDAR-driven model:
"We use the LiDAR data to determine the portion of each ray that is
obstructed by terrain features, and the portion that experiences only
free space attenuation" (Section 5.1).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.terrain.heightmap import Terrain

#: Default arc-length between ray samples, in meters.  Half the 1 m
#: grid pitch comfortably catches single-cell obstacles.
DEFAULT_STEP_M = 1.0

#: Endpoints are excluded from the obstruction test by this margin so a
#: ray never counts the terrain cell the UE itself stands on.
_ENDPOINT_MARGIN = 0.02


def obstructed_lengths(
    terrain: Terrain,
    tx_xyz: np.ndarray,
    rx_xyz: np.ndarray,
    step: float = DEFAULT_STEP_M,
) -> np.ndarray:
    """Obstructed path length for each Tx->Rx ray, in meters.

    The returned length is the *horizontally projected* run of the ray
    below the terrain surface.  This captures the elevation-angle
    dependence every air-to-ground measurement campaign reports
    (Al-Hourani et al.): a steep ray from a UAV overhead clips only
    the crowns/eaves around the UE and suffers little excess loss,
    while a grazing ray ploughs through long stretches of clutter.
    Using the 3D obstructed length instead would charge a vertical ray
    through a tree canopy the full canopy height — making a UE under a
    tree unservable even from straight above, which contradicts both
    the physics and the paper's testbed (its forest UE was served).

    Parameters
    ----------
    terrain:
        The surface to test against.
    tx_xyz:
        ``(n, 3)`` array (or a single ``(3,)`` point broadcast to n) of
        transmitter positions - typically candidate UAV cells.
    rx_xyz:
        ``(n, 3)`` array or single ``(3,)`` receiver position(s) -
        typically the UE.
    step:
        Sampling interval along the ray.

    Returns
    -------
    ``(n,)`` array: horizontally-projected meters of each ray that
    pass below the terrain surface.
    """
    if step <= 0:
        raise ValueError(f"step must be positive, got {step}")
    tx = np.atleast_2d(np.asarray(tx_xyz, dtype=float))
    rx = np.atleast_2d(np.asarray(rx_xyz, dtype=float))
    if tx.shape[0] == 1 and rx.shape[0] > 1:
        tx = np.broadcast_to(tx, rx.shape)
    if rx.shape[0] == 1 and tx.shape[0] > 1:
        rx = np.broadcast_to(rx, tx.shape)
    if tx.shape != rx.shape:
        raise ValueError(f"tx shape {tx.shape} incompatible with rx shape {rx.shape}")

    n = tx.shape[0]
    dist = np.linalg.norm(rx - tx, axis=1)
    horiz = np.linalg.norm((rx - tx)[:, :2], axis=1)
    max_dist = float(dist.max()) if n else 0.0
    if max_dist == 0.0:
        return np.zeros(n)
    # One shared set of parametric sample fractions for all rays keeps
    # the computation a single broadcastable expression.  The margin
    # keeps both endpoints (antenna positions) out of the test.
    n_steps = max(2, int(np.ceil(max_dist / step)))
    t = np.linspace(_ENDPOINT_MARGIN, 1.0 - _ENDPOINT_MARGIN, n_steps)

    # Chunk over rays so peak memory stays bounded (~8M floats/array)
    # even for full 1 km x 1 km maps.
    chunk = max(1, int(8_000_000 // n_steps))
    out = np.empty(n, dtype=float)
    for lo in range(0, n, chunk):
        hi = min(n, lo + chunk)
        txc, rxc = tx[lo:hi], rx[lo:hi]
        xs = txc[:, None, 0] + t[None, :] * (rxc[:, 0] - txc[:, 0])[:, None]
        ys = txc[:, None, 1] + t[None, :] * (rxc[:, 1] - txc[:, 1])[:, None]
        zs = txc[:, None, 2] + t[None, :] * (rxc[:, 2] - txc[:, 2])[:, None]
        surface = terrain.heights_at_xy(xs, ys)
        blocked = zs < surface
        out[lo:hi] = blocked.mean(axis=1)
    # Near-vertical rays keep a floor of 15% of the slant length so a
    # blocked overhead ray (directly through a crown or roof) still
    # pays a realistic one-obstacle penetration loss instead of zero.
    effective = np.maximum(horiz, 0.15 * dist)
    return out * effective * (1.0 - 2 * _ENDPOINT_MARGIN)


def trace_profile(
    terrain: Terrain,
    tx_xyz: np.ndarray,
    rx_xyz: np.ndarray,
    step: float = DEFAULT_STEP_M,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sampled ray profile for a single Tx->Rx pair (debug/plot helper).

    Returns
    -------
    (arc, ray_z, surface_z):
        ``arc`` - distance along the ray at each sample (m);
        ``ray_z`` - ray height at each sample;
        ``surface_z`` - terrain surface height under each sample.
    """
    tx = np.asarray(tx_xyz, dtype=float).reshape(3)
    rx = np.asarray(rx_xyz, dtype=float).reshape(3)
    dist = float(np.linalg.norm(rx - tx))
    n_steps = max(2, int(np.ceil(dist / step)))
    t = np.linspace(0.0, 1.0, n_steps)
    xs = tx[0] + t * (rx[0] - tx[0])
    ys = tx[1] + t * (rx[1] - tx[1])
    zs = tx[2] + t * (rx[2] - tx[2])
    surface = terrain.heights_at_xy(xs, ys)
    return t * dist, zs, surface


def is_los(
    terrain: Terrain,
    tx_xyz: np.ndarray,
    rx_xyz: np.ndarray,
    step: float = DEFAULT_STEP_M,
) -> np.ndarray:
    """Boolean line-of-sight test for each Tx->Rx ray."""
    return obstructed_lengths(terrain, tx_xyz, rx_xyz, step) <= 0.0

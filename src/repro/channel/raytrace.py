"""Vectorized ray/terrain intersection.

For each direct ray from a transmitter to a receiver we sample points
along the ray and compare the ray height against the terrain surface.
The total length of the obstructed portion drives the excess (beyond
free-space) attenuation, mirroring the paper's LiDAR-driven model:
"We use the LiDAR data to determine the portion of each ray that is
obstructed by terrain features, and the portion that experiences only
free space attenuation" (Section 5.1).

The kernel is the single hottest code path of the reproduction (every
ground-truth map, every measurement sample and every placement
evaluation funnels through it), so it is written batch-first with two
structural optimizations that keep results independent of how rays are
batched together:

* **per-ray sampling density** — each ray is sampled at ``step``
  meters of its *own* arc length (bucketed to a few canonical sample
  counts so the work stays vectorized), instead of oversampling every
  short ray at the density the longest ray in the batch needs;
* **ceiling pruning** — sample columns whose ray height is everywhere
  above the terrain's global maximum height cannot be obstructed and
  are skipped before any surface lookup.  For a UAV well above the
  clutter this drops the majority of samples, and it is exact: a
  skipped sample can never satisfy ``z < surface``.
"""

from __future__ import annotations

from typing import NamedTuple, Tuple

import numpy as np

from repro.backend import get_backend
from repro.perf import perf
from repro.terrain.heightmap import Terrain

#: Default arc-length between ray samples, in meters.  Half the 1 m
#: grid pitch comfortably catches single-cell obstacles.
DEFAULT_STEP_M = 1.0

#: Endpoints are excluded from the obstruction test by this margin so a
#: ray never counts the terrain cell the UE itself stands on.
_ENDPOINT_MARGIN = 0.02

#: Peak sample-point budget per vectorized chunk.  Small enough that
#: the working set (ray coords, surface gather, comparison masks) stays
#: cache-resident — empirically ~2x faster than multi-megabyte chunks —
#: while large enough to amortize the Python-level loop.
_CHUNK_SAMPLES = 262_144

#: Sample counts are rounded up to a multiple of this (above 32) so
#: rays group into a handful of equal-width batches.
_BUCKET_QUANTUM = 32


class LinkState(NamedTuple):
    """Per-ray link state from a single trace.

    Attributes
    ----------
    obstructed_m:
        Horizontally-projected meters of each ray below the surface.
    los:
        Boolean line-of-sight flag per ray (``obstructed_m <= 0``).
    """

    obstructed_m: np.ndarray
    los: np.ndarray


def _bucket_steps(n_steps: np.ndarray) -> np.ndarray:
    """Round per-ray sample counts up to a canonical bucket size.

    Small counts go to the next power of two, larger ones to the next
    multiple of :data:`_BUCKET_QUANTUM`.  The bucket of a ray depends
    only on that ray's own length, so results never depend on which
    other rays happen to share the batch.
    """
    n = np.maximum(np.asarray(n_steps, dtype=np.int64), 2)
    small = n <= _BUCKET_QUANTUM
    out = np.empty_like(n)
    out[small] = 2 ** np.ceil(np.log2(n[small])).astype(np.int64)
    big = ~small
    q = _BUCKET_QUANTUM
    out[big] = ((n[big] + q - 1) // q) * q
    return out


def _as_ray_batch(tx_xyz: np.ndarray, rx_xyz: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Validate/broadcast endpoints into matching ``(n, 3)`` arrays."""
    tx = np.atleast_2d(np.asarray(tx_xyz, dtype=float))
    rx = np.atleast_2d(np.asarray(rx_xyz, dtype=float))
    if tx.shape[0] == 1 and rx.shape[0] > 1:
        tx = np.broadcast_to(tx, rx.shape)
    if rx.shape[0] == 1 and tx.shape[0] > 1:
        rx = np.broadcast_to(rx, tx.shape)
    if tx.shape != rx.shape:
        raise ValueError(f"tx shape {tx.shape} incompatible with rx shape {rx.shape}")
    return tx, rx


def obstructed_lengths(
    terrain: Terrain,
    tx_xyz: np.ndarray,
    rx_xyz: np.ndarray,
    step: float = DEFAULT_STEP_M,
) -> np.ndarray:
    """Obstructed path length for each Tx->Rx ray, in meters.

    The returned length is the *horizontally projected* run of the ray
    below the terrain surface.  This captures the elevation-angle
    dependence every air-to-ground measurement campaign reports
    (Al-Hourani et al.): a steep ray from a UAV overhead clips only
    the crowns/eaves around the UE and suffers little excess loss,
    while a grazing ray ploughs through long stretches of clutter.
    Using the 3D obstructed length instead would charge a vertical ray
    through a tree canopy the full canopy height — making a UE under a
    tree unservable even from straight above, which contradicts both
    the physics and the paper's testbed (its forest UE was served).

    Parameters
    ----------
    terrain:
        The surface to test against.
    tx_xyz:
        ``(n, 3)`` array (or a single ``(3,)`` point broadcast to n) of
        transmitter positions - typically candidate UAV cells.
    rx_xyz:
        ``(n, 3)`` array or single ``(3,)`` receiver position(s) -
        typically the UE.
    step:
        Sampling interval along the ray.

    Returns
    -------
    ``(n,)`` array: horizontally-projected meters of each ray that
    pass below the terrain surface.
    """
    if step <= 0:
        raise ValueError(f"step must be positive, got {step}")
    tx, rx = _as_ray_batch(tx_xyz, rx_xyz)

    n = tx.shape[0]
    dist = np.linalg.norm(rx - tx, axis=1)
    horiz = np.linalg.norm((rx - tx)[:, :2], axis=1)
    if n == 0 or float(dist.max()) == 0.0:
        return np.zeros(n)

    perf.count("raytrace.calls")
    perf.count("raytrace.rays", n)
    with perf.span("raytrace"):
        frac = _blocked_fractions(terrain, tx, rx, dist, step)
    # Near-vertical rays keep a floor of 15% of the slant length so a
    # blocked overhead ray (directly through a crown or roof) still
    # pays a realistic one-obstacle penetration loss instead of zero.
    effective = np.maximum(horiz, 0.15 * dist)
    return frac * effective * (1.0 - 2 * _ENDPOINT_MARGIN)


def _blocked_fractions(
    terrain: Terrain,
    tx: np.ndarray,
    rx: np.ndarray,
    dist: np.ndarray,
    step: float,
) -> np.ndarray:
    """Fraction of each ray's samples that fall below the surface.

    Rays are grouped into equal-sample-count buckets (per-ray density,
    see :func:`_bucket_steps`) and each bucket is processed in
    memory-bounded chunks with one ``heights_at_xy`` gather per chunk.
    """
    n = tx.shape[0]
    hmax = terrain.max_height
    buckets = _bucket_steps(np.ceil(dist / step))
    out = np.zeros(n, dtype=float)
    for b in np.unique(buckets):
        idx = np.flatnonzero(buckets == b)
        n_steps = int(b)
        t = np.linspace(_ENDPOINT_MARGIN, 1.0 - _ENDPOINT_MARGIN, n_steps)
        chunk = max(1, _CHUNK_SAMPLES // n_steps)
        for lo in range(0, len(idx), chunk):
            sel = idx[lo : lo + chunk]
            txc, rxc = tx[sel], rx[sel]
            zs = txc[:, None, 2] + t[None, :] * (rxc[:, 2] - txc[:, 2])[:, None]
            # Ceiling pruning: a sample above the terrain's global max
            # height can never be below the surface.
            cols = np.flatnonzero((zs < hmax).any(axis=0))
            perf.count("raytrace.samples", len(sel) * n_steps)
            if cols.size == 0:
                continue
            tc = t[cols]
            xs = txc[:, None, 0] + tc[None, :] * (rxc[:, 0] - txc[:, 0])[:, None]
            ys = txc[:, None, 1] + tc[None, :] * (rxc[:, 1] - txc[:, 1])[:, None]
            surface = terrain.heights_at_xy(xs, ys)
            zsel = zs[:, cols]
            perf.count("raytrace.samples_traced", zsel.size)
            out[sel] = get_backend().count_below(zsel, surface) / n_steps
    return out


def ray_profile_batch(
    terrain: Terrain,
    tx_xyz: np.ndarray,
    rx_xyz: np.ndarray,
    step: float = DEFAULT_STEP_M,
) -> LinkState:
    """Obstructed length *and* LOS state for each ray in one pass.

    This is the API the channel model's measurement path uses: SNR
    sampling needs both the mean path loss (driven by the obstructed
    length) and the LOS state (selecting the fading distribution), and
    both come from the same trace — tracing twice, as separate
    ``path_loss`` / ``is_los`` calls would, doubles the cost of the
    hottest loop in the system for no information.
    """
    obstructed = obstructed_lengths(terrain, tx_xyz, rx_xyz, step)
    return LinkState(obstructed_m=obstructed, los=obstructed <= 0.0)


def link_state(
    terrain: Terrain,
    tx_xyz: np.ndarray,
    rx_xyz: np.ndarray,
    step: float = DEFAULT_STEP_M,
) -> LinkState:
    """Alias of :func:`ray_profile_batch` (single-pass length + LOS)."""
    return ray_profile_batch(terrain, tx_xyz, rx_xyz, step)


def trace_profile(
    terrain: Terrain,
    tx_xyz: np.ndarray,
    rx_xyz: np.ndarray,
    step: float = DEFAULT_STEP_M,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sampled ray profile for a single Tx->Rx pair (debug/plot helper).

    Returns
    -------
    (arc, ray_z, surface_z):
        ``arc`` - distance along the ray at each sample (m);
        ``ray_z`` - ray height at each sample;
        ``surface_z`` - terrain surface height under each sample.
    """
    tx = np.asarray(tx_xyz, dtype=float).reshape(3)
    rx = np.asarray(rx_xyz, dtype=float).reshape(3)
    dist = float(np.linalg.norm(rx - tx))
    n_steps = max(2, int(np.ceil(dist / step)))
    t = np.linspace(0.0, 1.0, n_steps)
    xs = tx[0] + t * (rx[0] - tx[0])
    ys = tx[1] + t * (rx[1] - tx[1])
    zs = tx[2] + t * (rx[2] - tx[2])
    surface = terrain.heights_at_xy(xs, ys)
    return t * dist, zs, surface


def is_los(
    terrain: Terrain,
    tx_xyz: np.ndarray,
    rx_xyz: np.ndarray,
    step: float = DEFAULT_STEP_M,
) -> np.ndarray:
    """Boolean line-of-sight test for each Tx->Rx ray."""
    return obstructed_lengths(terrain, tx_xyz, rx_xyz, step) <= 0.0

"""The composite terrain-aware channel model.

:class:`ChannelModel` is the single oracle for "what does the radio
environment actually look like" in this reproduction.  It produces:

* **mean path loss / SNR** between any UAV position and UE position —
  free-space loss plus an obstruction excess loss proportional to the
  ray length below the terrain surface, a diffraction entry penalty,
  and a frozen correlated shadowing field per UE position;
* **measurement samples** — mean SNR plus small-scale Rician/Rayleigh
  fading and instrument noise, which is what the eNodeB PHY "reports"
  at 100 Hz during flights;
* **full-grid maps** at an altitude — the ground truth REMs of the
  evaluation.

The same object generates both the ground truth and every measurement,
so estimated REMs can in principle converge to the truth — exactly the
premise of a measurement-driven system like SkyRAN.

Because every figure funnels through this oracle, the map path is
batch-first: :meth:`path_loss_maps` computes whole ``(n_ue, ny, nx)``
stacks in chunked vectorized batches over the UE axis, memoizes per-UE
maps in an LRU cache keyed on (altitude, grid, UE position) — so UE
mobility only invalidates the maps of UEs that actually moved — and
can optionally fan the per-UE work out over a process pool
(``REPRO_NUM_WORKERS``; serial by default so results stay reproducible
run-to-run on any machine).
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.channel.fading import sample_fading_db
from repro.channel.fspl import DEFAULT_FREQ_HZ, fspl_db, fspl_map
from repro.channel.linkbudget import LinkBudget
from repro.channel.raytrace import LinkState, obstructed_lengths, ray_profile_batch
from repro.channel.shadowing import ShadowingField
from repro.geo.grid import GridSpec
from repro.perf import perf
from repro.terrain.heightmap import Terrain

#: Environment knob for the default process-pool width of the map
#: oracle.  1 (or unset) keeps everything serial.
NUM_WORKERS_ENV = "REPRO_NUM_WORKERS"

#: Peak ray budget per UE-axis chunk of the batched map kernel (the
#: ray tracer further chunks by sample count internally).
_MAP_CHUNK_RAYS = 2_000_000


def default_num_workers() -> int:
    """Worker count from ``REPRO_NUM_WORKERS`` (serial when unset)."""
    try:
        return max(1, int(os.environ.get(NUM_WORKERS_ENV, "1")))
    except ValueError:
        return 1


# -- process-pool plumbing (module level so it pickles) -------------------------

_WORKER_MODEL: Optional["ChannelModel"] = None


def _map_worker_init(model: "ChannelModel") -> None:
    global _WORKER_MODEL
    _WORKER_MODEL = model


def _map_worker(args: tuple) -> np.ndarray:
    ue, altitude, grid = args
    assert _WORKER_MODEL is not None
    return _WORKER_MODEL._compute_path_loss_maps([ue], altitude, grid)[0]


@dataclass
class ChannelModel:
    """Terrain-aware UAV-to-UE channel.

    Parameters
    ----------
    terrain:
        Surface used for ray obstruction tests.
    freq_hz:
        Carrier frequency (2.6 GHz default).
    excess_db_per_m:
        Extra attenuation per meter of obstructed ray (vegetation and
        building interiors average; 1.2 dB/m is in the range reported
        for 2-3 GHz foliage/through-building measurements).
    diffraction_db:
        One-time penalty as soon as a ray is obstructed at all
        (knife-edge diffraction around the obstacle).
    excess_cap_db:
        Upper bound on obstruction excess loss; beyond this, energy
        arrives via reflections that the direct-ray model cannot see,
        so loss stops growing.
    shadowing_sigma_db / shadowing_correlation_m:
        Per-UE log-normal shadowing field parameters.
    common_sigma_db:
        Std of the *common* shadowing field shared by every UE.  Real
        air-to-ground links have a strong UAV-position-dependent
        component (antenna-pattern ripple against the airframe,
        ground clutter under the UAV) that hits all links from that
        position alike — it is why the paper's Fig. 1a average map
        over 20 UEs still shows one sharp sweet-spot region instead
        of averaging flat.  This common structure is exactly what
        measurement-driven REMs can exploit and location-only
        heuristics (Centroid) cannot.
    ray_step_m:
        Sampling interval for the ray tracer.
    link:
        Link budget for path-loss -> SNR conversion.
    seed:
        Base seed for the per-UE shadowing fields.
    map_cache_size:
        Maximum number of per-UE full-grid maps (and FSPL priors) kept
        in the LRU oracle cache.  The cache is keyed on (altitude,
        grid, UE position), so a moved UE simply stops hitting its old
        entry — the maps of unmoved UEs stay warm across epochs.
    """

    terrain: Terrain
    freq_hz: float = DEFAULT_FREQ_HZ
    excess_db_per_m: float = 1.2
    diffraction_db: float = 8.0
    excess_cap_db: float = 40.0
    shadowing_sigma_db: float = 3.0
    shadowing_correlation_m: float = 20.0
    common_sigma_db: float = 4.5
    ray_step_m: float = 1.0
    link: LinkBudget = field(default_factory=LinkBudget)
    seed: int = 0
    map_cache_size: int = 128
    _shadow_cache: Dict[Tuple[float, float, float], ShadowingField] = field(
        default_factory=dict, repr=False
    )
    _map_cache: "OrderedDict[tuple, np.ndarray]" = field(
        default_factory=OrderedDict, repr=False
    )

    # -- shadowing --------------------------------------------------------------

    def _shadowing_for(self, ue_xyz: np.ndarray) -> ShadowingField:
        ue = np.asarray(ue_xyz, dtype=float).reshape(3)
        key = (round(ue[0], 3), round(ue[1], 3), round(ue[2], 3))
        cached = self._shadow_cache.get(key)
        if cached is None:
            cached = ShadowingField.generate(
                self.terrain.grid,
                sigma_db=self.shadowing_sigma_db,
                correlation_m=self.shadowing_correlation_m,
                seed=self.seed,
                ue_xyz=ue,
            )
            self._shadow_cache[key] = cached
        return cached

    def _common_shadowing(self) -> ShadowingField:
        """The UAV-position-dependent field shared by every link."""
        key = ("__common__", 0.0, 0.0)
        cached = self._shadow_cache.get(key)
        if cached is None:
            cached = ShadowingField.generate(
                self.terrain.grid,
                sigma_db=self.common_sigma_db,
                correlation_m=self.shadowing_correlation_m,
                seed=self.seed + 7_777_777,
            )
            self._shadow_cache[key] = cached
        return cached

    # -- mean path loss ----------------------------------------------------------

    def _excess_db(self, obstructed: np.ndarray) -> np.ndarray:
        """Obstruction excess loss (diffraction entry + per-meter, capped)."""
        return np.where(
            obstructed > 0.0,
            np.minimum(
                self.diffraction_db + self.excess_db_per_m * obstructed,
                self.excess_cap_db,
            ),
            0.0,
        )

    def _loss_from_obstructed(
        self, uav: np.ndarray, ue: np.ndarray, obstructed: np.ndarray
    ) -> np.ndarray:
        """Mean path loss given pre-traced obstructed lengths."""
        dist = np.linalg.norm(uav - ue[None, :], axis=1)
        loss = fspl_db(dist, self.freq_hz)
        loss = loss + self._excess_db(obstructed)
        if self.shadowing_sigma_db > 0:
            shadow = self._shadowing_for(ue)
            loss = loss + shadow.at_many(uav[:, :2])
        if self.common_sigma_db > 0:
            loss = loss + self._common_shadowing().at_many(uav[:, :2])
        return loss

    def path_loss_db(self, uav_xyz: np.ndarray, ue_xyz: np.ndarray) -> np.ndarray:
        """Mean path loss from UAV position(s) to one UE, in dB.

        ``uav_xyz`` may be a single ``(3,)`` point or an ``(n, 3)``
        array; the result matches (scalar float for a single point).
        """
        single = np.asarray(uav_xyz, dtype=float).ndim == 1
        uav = np.atleast_2d(np.asarray(uav_xyz, dtype=float))
        ue = np.asarray(ue_xyz, dtype=float).reshape(3)
        obstructed = obstructed_lengths(self.terrain, uav, ue, self.ray_step_m)
        loss = self._loss_from_obstructed(uav, ue, obstructed)
        if single:
            return float(loss[0])
        return loss

    def path_loss_and_los(
        self, uav_xyz: np.ndarray, ue_xyz: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Mean path loss *and* LOS state from a single shared trace.

        The measurement paths need both (loss for the mean SNR, LOS for
        the fading/jitter statistics); calling :meth:`path_loss_db` and
        :meth:`is_los` separately would trace the same rays twice.
        """
        uav = np.atleast_2d(np.asarray(uav_xyz, dtype=float))
        ue = np.asarray(ue_xyz, dtype=float).reshape(3)
        state: LinkState = ray_profile_batch(self.terrain, uav, ue, self.ray_step_m)
        loss = self._loss_from_obstructed(uav, ue, state.obstructed_m)
        return loss, state.los

    def snr_db(self, uav_xyz: np.ndarray, ue_xyz: np.ndarray) -> np.ndarray:
        """Mean SNR (dB) from UAV position(s) to one UE."""
        return self.link.snr_db(self.path_loss_db(uav_xyz, ue_xyz))

    def is_los(self, uav_xyz: np.ndarray, ue_xyz: np.ndarray) -> np.ndarray:
        """LOS state per UAV position."""
        uav = np.atleast_2d(np.asarray(uav_xyz, dtype=float))
        ue = np.asarray(ue_xyz, dtype=float).reshape(3)
        return obstructed_lengths(self.terrain, uav, ue, self.ray_step_m) <= 0.0

    # -- full-grid maps ----------------------------------------------------------

    def path_loss_map(
        self,
        ue_xyz: np.ndarray,
        altitude: float,
        grid: Optional[GridSpec] = None,
    ) -> np.ndarray:
        """Mean path loss from every grid cell (at ``altitude``) to a UE.

        ``grid`` defaults to the terrain grid; pass a coarsened grid to
        trade resolution for speed in large scale-up runs.  This is the
        direct serial reference path — it does not touch the map cache
        (see :meth:`path_loss_maps` for the batched/cached oracle).
        """
        g = grid or self.terrain.grid
        centers = g.centers_flat()
        uav = np.column_stack([centers, np.full(len(centers), float(altitude))])
        loss = self.path_loss_db(uav, ue_xyz)
        return loss.reshape(g.shape)

    def snr_map(
        self,
        ue_xyz: np.ndarray,
        altitude: float,
        grid: Optional[GridSpec] = None,
    ) -> np.ndarray:
        """Mean SNR map over the grid at ``altitude`` for one UE."""
        return self.link.snr_db(self.path_loss_map(ue_xyz, altitude, grid))

    # -- batched / cached / parallel map oracle -----------------------------------

    def _map_key(self, kind: str, ue: np.ndarray, altitude: float, g: GridSpec) -> tuple:
        return (
            kind,
            g,
            round(float(altitude), 6),
            (round(float(ue[0]), 6), round(float(ue[1]), 6), round(float(ue[2]), 6)),
        )

    def _map_cache_get(self, key: tuple) -> Optional[np.ndarray]:
        hit = self._map_cache.get(key)
        if hit is None:
            perf.count("oracle.map_cache.miss")
            return None
        self._map_cache.move_to_end(key)
        perf.count("oracle.map_cache.hit")
        return hit

    def _map_cache_put(self, key: tuple, value: np.ndarray) -> None:
        self._map_cache[key] = value
        self._map_cache.move_to_end(key)
        while len(self._map_cache) > self.map_cache_size:
            self._map_cache.popitem(last=False)
            perf.count("oracle.map_cache.evict")

    def path_loss_maps(
        self,
        ue_positions: Sequence,
        altitude: float,
        grid: Optional[GridSpec] = None,
        *,
        workers: Optional[int] = None,
        use_cache: bool = True,
    ) -> np.ndarray:
        """Mean path loss maps for many UEs, stacked ``(n_ue, ny, nx)``.

        The multi-UE kernel: rays for whole groups of UEs are traced in
        chunked vectorized batches over the UE axis (one terrain gather
        per chunk) instead of one Python-level map loop per UE, per-UE
        results are memoized in the LRU oracle cache, and cache misses
        can optionally be computed by a process pool (``workers`` /
        ``REPRO_NUM_WORKERS``; the default 1 keeps everything in
        process).  Serial, parallel and cached paths all produce
        identical maps.
        """
        g = grid or self.terrain.grid
        ues = [np.asarray(u, dtype=float).reshape(3) for u in ue_positions]
        out = np.empty((len(ues),) + g.shape, dtype=float)
        if not ues:
            return out
        missing: List[int] = []
        for i, ue in enumerate(ues):
            cached = (
                self._map_cache_get(self._map_key("pl", ue, altitude, g))
                if use_cache
                else None
            )
            if cached is not None:
                out[i] = cached
            else:
                missing.append(i)
        if missing:
            n_workers = default_num_workers() if workers is None else max(1, workers)
            missing_ues = [ues[i] for i in missing]
            with perf.span("oracle.path_loss_maps"):
                if n_workers > 1 and len(missing_ues) > 1:
                    maps = self._parallel_path_loss_maps(
                        missing_ues, altitude, g, n_workers
                    )
                else:
                    maps = self._compute_path_loss_maps(missing_ues, altitude, g)
            for i, m in zip(missing, maps):
                out[i] = m
                if use_cache:
                    self._map_cache_put(self._map_key("pl", ues[i], altitude, g), m)
        return out

    def snr_maps(
        self,
        ue_positions: Sequence,
        altitude: float,
        grid: Optional[GridSpec] = None,
        *,
        workers: Optional[int] = None,
        use_cache: bool = True,
    ) -> np.ndarray:
        """Mean SNR maps for many UEs, stacked ``(n_ue, ny, nx)``."""
        return self.link.snr_db(
            self.path_loss_maps(
                ue_positions, altitude, grid, workers=workers, use_cache=use_cache
            )
        )

    # -- tile-streamed map oracle --------------------------------------------------

    def iter_path_loss_map_tiles(
        self,
        ue_positions: Sequence,
        altitude: float,
        grid: Optional[GridSpec] = None,
        *,
        tile_rows: int = 64,
        ue_chunk: Optional[int] = None,
    ):
        """Stream path-loss maps as ``(ue_slice, row_slice, block)`` tiles.

        Yields blocks of shape ``(k, rows, nx)`` covering ``tile_rows``
        grid rows for ``k`` UEs at a time, so a consumer folding tiles
        as they arrive holds O(tile) memory instead of the full
        ``(n_ue, ny, nx)`` stack.  Every cell value is **bit-identical**
        to the materialized :meth:`path_loss_maps` path: the ray
        tracer's per-ray sampling does not depend on batch composition,
        and the shadowing/FSPL terms are per-point lookups, so
        restricting the computation to a band of rows changes nothing
        per cell.

        ``ue_chunk`` defaults to the same ray budget the materialized
        kernel uses, applied per band.  Tiles are yielded band-major
        (all UE chunks of one band before the next band) so row-wise
        folds touch each output row over a contiguous stretch.
        """
        if tile_rows < 1:
            raise ValueError(f"tile_rows must be >= 1, got {tile_rows}")
        if ue_chunk is not None and ue_chunk < 1:
            raise ValueError(f"ue_chunk must be >= 1, got {ue_chunk}")
        g = grid or self.terrain.grid
        ues = [np.asarray(u, dtype=float).reshape(3) for u in ue_positions]
        if not ues:
            return
        ny, nx = g.shape
        centers = g.centers_flat()
        alt = float(altitude)
        for r0 in range(0, ny, tile_rows):
            r1 = min(r0 + tile_rows, ny)
            band = centers[r0 * nx : r1 * nx]
            n_cells = len(band)
            uav = np.column_stack([band, np.full(n_cells, alt)])
            chunk = ue_chunk or max(1, _MAP_CHUNK_RAYS // n_cells)
            for lo in range(0, len(ues), chunk):
                batch = ues[lo : lo + chunk]
                k = len(batch)
                with perf.span("oracle.map_tiles"):
                    tx = np.tile(uav, (k, 1))
                    rx = np.repeat(np.stack(batch), n_cells, axis=0)
                    obstructed = obstructed_lengths(
                        self.terrain, tx, rx, self.ray_step_m
                    )
                    block = np.empty((k, r1 - r0, nx), dtype=float)
                    for j, ue in enumerate(batch):
                        obs = obstructed[j * n_cells : (j + 1) * n_cells]
                        block[j] = self._loss_from_obstructed(uav, ue, obs).reshape(
                            r1 - r0, nx
                        )
                perf.count("oracle.map_tiles_yielded")
                yield slice(lo, lo + k), slice(r0, r1), block

    def iter_snr_map_tiles(
        self,
        ue_positions: Sequence,
        altitude: float,
        grid: Optional[GridSpec] = None,
        *,
        tile_rows: int = 64,
        ue_chunk: Optional[int] = None,
    ):
        """Stream SNR maps as ``(ue_slice, row_slice, block)`` tiles.

        The streamed counterpart of :meth:`snr_maps`; see
        :meth:`iter_path_loss_map_tiles` for the tiling and exactness
        contract.
        """
        for ue_sl, row_sl, block in self.iter_path_loss_map_tiles(
            ue_positions, altitude, grid, tile_rows=tile_rows, ue_chunk=ue_chunk
        ):
            yield ue_sl, row_sl, self.link.snr_db(block)

    def path_loss_to_many(
        self, uav_xyz: np.ndarray, ue_positions: Sequence
    ) -> np.ndarray:
        """Mean path loss (dB) from one UAV position to many UEs.

        The one-Tx-many-Rx kernel under :meth:`snr_to_many` and the
        fleet SINR stacks: bit-identical to calling
        :meth:`path_loss_db` once per UE.  With per-UE shadowing
        enabled each UE's frozen field must be sampled separately, so
        the method degrades to exactly that per-UE loop; with it
        disabled (the city configuration) the whole population runs
        through one vectorized ray batch.
        """
        uav = np.asarray(uav_xyz, dtype=float).reshape(3)
        ues = np.atleast_2d(np.asarray(ue_positions, dtype=float))
        if ues.shape[0] == 0:
            return np.empty(0, dtype=float)
        if self.shadowing_sigma_db > 0:
            perf.count("oracle.to_many_ue_loop", len(ues))
            return np.array(
                [float(self.path_loss_db(uav, ue)) for ue in ues], dtype=float
            )
        perf.count("oracle.to_many_batched", len(ues))
        obstructed = obstructed_lengths(
            self.terrain, uav[None, :], ues, self.ray_step_m
        )
        dist = np.linalg.norm(uav[None, :] - ues, axis=1)
        loss = fspl_db(dist, self.freq_hz)
        loss = loss + self._excess_db(obstructed)
        if self.common_sigma_db > 0:
            loss = loss + self._common_shadowing().at_many(uav[None, :2])
        return loss

    def snr_to_many(self, uav_xyz: np.ndarray, ue_positions: Sequence) -> np.ndarray:
        """Mean SNR (dB) from one UAV position to many UEs.

        The transpose of :meth:`snr_db` (one UE, many UAV positions),
        and the shape the city-scale MAC needs: the serving SNR of a
        whole population at the chosen placement.  Bit-identical to
        calling :meth:`snr_db` once per UE (see
        :meth:`path_loss_to_many` for the shadowing caveat).
        """
        loss = self.path_loss_to_many(uav_xyz, ue_positions)
        if loss.shape[0] == 0:
            return loss
        return self.link.snr_db(loss)

    # -- fleet SINR oracle ---------------------------------------------------------

    def interference_mw(
        self,
        ue_positions: Sequence,
        interferer_positions: Sequence,
        activity: Optional[Sequence[float]] = None,
    ) -> np.ndarray:
        """Aggregate co-channel downlink interference per UE, in mW.

        Sums the received power from every interfering transmitter at
        every UE, scaled by per-interferer activity factors (fraction
        of PRBs loaded; defaults to fully loaded — the conservative
        busy-hour assumption).  The accumulation visits interferers in
        ascending index order, matching the scalar reference in
        :mod:`repro.channel.interference` term for term, so the batched
        and loop paths agree bit for bit.
        """
        ues = np.atleast_2d(np.asarray(ue_positions, dtype=float))
        interferers = [
            np.asarray(p, dtype=float).reshape(3) for p in interferer_positions
        ]
        if activity is None:
            act = np.ones(len(interferers))
        else:
            act = np.asarray(list(activity), dtype=float)
            if act.shape != (len(interferers),):
                raise ValueError(
                    f"activity must have length {len(interferers)}, got {act.shape}"
                )
            if np.any((act < 0) | (act > 1)):
                raise ValueError("activity factors must be in [0, 1]")
        out = np.zeros(ues.shape[0], dtype=float)
        for j, pos in enumerate(interferers):
            rx_dbm = self.link.rx_power_dbm(self.path_loss_to_many(pos, ues))
            out += act[j] * 10.0 ** (rx_dbm / 10.0)
        return out

    def sinr_maps(
        self,
        ue_positions: Sequence,
        altitude: float,
        grid: Optional[GridSpec] = None,
        *,
        interferer_positions: Sequence = (),
        activity: Optional[Sequence[float]] = None,
        workers: Optional[int] = None,
        use_cache: bool = True,
    ) -> np.ndarray:
        """Per-UE SINR maps under fixed co-channel interferers, stacked.

        For each grid cell the *serving* transmitter is hypothetically
        placed at that cell (at ``altitude``); the ``interferer_positions``
        are fixed 3D points (the rest of the fleet), so each UE's
        interference-plus-noise denominator is a per-UE constant over
        the candidate axis.  With no interferers this is **exactly**
        :meth:`snr_maps` (same arithmetic, no round trip through mW),
        which is what makes the 1-UAV fleet degenerate cleanly.
        """
        pl = self.path_loss_maps(
            ue_positions, altitude, grid, workers=workers, use_cache=use_cache
        )
        if len(interferer_positions) == 0:
            return self.link.snr_db(pl)
        denom_db = self._sinr_denominator_db(
            ue_positions, interferer_positions, activity
        )
        return self.link.rx_power_dbm(pl) - denom_db[:, None, None]

    def iter_sinr_map_tiles(
        self,
        ue_positions: Sequence,
        altitude: float,
        grid: Optional[GridSpec] = None,
        *,
        interferer_positions: Sequence = (),
        activity: Optional[Sequence[float]] = None,
        tile_rows: int = 64,
        ue_chunk: Optional[int] = None,
    ):
        """Stream SINR maps as ``(ue_slice, row_slice, block)`` tiles.

        The streamed counterpart of :meth:`sinr_maps`, bit-identical to
        it for every tiling: path-loss tiles carry exactly the
        materialized values (the PR 6 contract), and the SINR
        conversion — received power minus a per-UE
        interference-plus-noise constant — is elementwise, so
        restricting the computation to a band of rows changes nothing
        per cell.  With no interferers it degrades to exactly
        :meth:`iter_snr_map_tiles`.
        """
        if len(interferer_positions) == 0:
            yield from self.iter_snr_map_tiles(
                ue_positions, altitude, grid, tile_rows=tile_rows, ue_chunk=ue_chunk
            )
            return
        denom_db = self._sinr_denominator_db(
            ue_positions, interferer_positions, activity
        )
        for ue_sl, row_sl, block in self.iter_path_loss_map_tiles(
            ue_positions, altitude, grid, tile_rows=tile_rows, ue_chunk=ue_chunk
        ):
            sinr = self.link.rx_power_dbm(block) - denom_db[ue_sl, None, None]
            yield ue_sl, row_sl, sinr

    def _sinr_denominator_db(
        self,
        ue_positions: Sequence,
        interferer_positions: Sequence,
        activity: Optional[Sequence[float]],
    ) -> np.ndarray:
        """Per-UE ``10·log10(noise + interference)`` in dBm."""
        noise_mw = 10.0 ** (self.link.noise_floor_dbm / 10.0)
        interf = self.interference_mw(ue_positions, interferer_positions, activity)
        return 10.0 * np.log10(noise_mw + interf)

    def _compute_path_loss_maps(
        self, ues: Sequence[np.ndarray], altitude: float, g: GridSpec
    ) -> np.ndarray:
        """The vectorized multi-UE map kernel (no cache, no pool).

        UEs are processed in chunks along the UE axis sized so each ray
        batch stays within :data:`_MAP_CHUNK_RAYS`; within a chunk one
        ray-trace call covers every (cell, UE) pair.
        """
        centers = g.centers_flat()
        n_cells = len(centers)
        alt = float(altitude)
        uav = np.column_stack([centers, np.full(n_cells, alt)])
        out = np.empty((len(ues),) + g.shape, dtype=float)
        chunk = max(1, _MAP_CHUNK_RAYS // n_cells)
        for lo in range(0, len(ues), chunk):
            batch = ues[lo : lo + chunk]
            k = len(batch)
            tx = np.tile(uav, (k, 1))
            rx = np.repeat(np.stack(batch), n_cells, axis=0)
            obstructed = obstructed_lengths(self.terrain, tx, rx, self.ray_step_m)
            for j, ue in enumerate(batch):
                obs = obstructed[j * n_cells : (j + 1) * n_cells]
                out[lo + j] = self._loss_from_obstructed(uav, ue, obs).reshape(g.shape)
        return out

    def _parallel_path_loss_maps(
        self,
        ues: Sequence[np.ndarray],
        altitude: float,
        g: GridSpec,
        n_workers: int,
    ) -> np.ndarray:
        """Fan per-UE map computation out over a process pool.

        Workers receive a cache-stripped copy of the model once (pool
        initializer) and compute whole per-UE maps; results are
        identical to the serial kernel because the per-ray sampling of
        the tracer does not depend on batch composition.
        """
        from concurrent.futures import ProcessPoolExecutor

        bare = replace(self, _shadow_cache={}, _map_cache=OrderedDict())
        tasks = [(ue, float(altitude), g) for ue in ues]
        perf.count("oracle.parallel_batches")
        with ProcessPoolExecutor(
            max_workers=min(n_workers, len(tasks)),
            initializer=_map_worker_init,
            initargs=(bare,),
        ) as pool:
            maps = list(pool.map(_map_worker, tasks))
        return np.stack(maps)

    # -- FSPL priors --------------------------------------------------------------

    def fspl_prior_map(
        self,
        ue_xyz: np.ndarray,
        altitude: float,
        grid: Optional[GridSpec] = None,
    ) -> np.ndarray:
        """FSPL-only path loss map (the Section 3.5 REM seed), cached.

        Same LRU cache and key structure as the truth maps, so priors
        survive across epochs and only positions that actually changed
        are recomputed.
        """
        g = grid or self.terrain.grid
        ue = np.asarray(ue_xyz, dtype=float).reshape(3)
        key = self._map_key("fspl", ue, altitude, g)
        cached = self._map_cache_get(key)
        if cached is not None:
            return cached.copy()
        with perf.span("oracle.fspl_prior_map"):
            pl = fspl_map(g, ue, float(altitude), self.freq_hz)
        self._map_cache_put(key, pl)
        return pl.copy()

    # -- measurement samples -------------------------------------------------------

    def sample_snr_db(
        self,
        uav_xyz: np.ndarray,
        ue_xyz: np.ndarray,
        rng: np.random.Generator,
        measurement_noise_db: float = 0.5,
    ) -> np.ndarray:
        """Noisy per-sample SNR as the eNodeB PHY would report it.

        Mean SNR + Rician/Rayleigh small-scale fading (K keyed on the
        LOS state of each sample position) + Gaussian instrument noise.
        One ray trace serves both the mean and the LOS state.
        """
        uav = np.atleast_2d(np.asarray(uav_xyz, dtype=float))
        loss, los = self.path_loss_and_los(uav, ue_xyz)
        mean = np.atleast_1d(self.link.snr_db(loss))
        fading = sample_fading_db(los, rng)
        noise = rng.normal(0.0, measurement_noise_db, size=mean.shape)
        out = mean + fading + noise
        if np.asarray(uav_xyz).ndim == 1:
            return float(out[0])
        return out

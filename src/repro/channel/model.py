"""The composite terrain-aware channel model.

:class:`ChannelModel` is the single oracle for "what does the radio
environment actually look like" in this reproduction.  It produces:

* **mean path loss / SNR** between any UAV position and UE position —
  free-space loss plus an obstruction excess loss proportional to the
  ray length below the terrain surface, a diffraction entry penalty,
  and a frozen correlated shadowing field per UE position;
* **measurement samples** — mean SNR plus small-scale Rician/Rayleigh
  fading and instrument noise, which is what the eNodeB PHY "reports"
  at 100 Hz during flights;
* **full-grid maps** at an altitude — the ground truth REMs of the
  evaluation.

The same object generates both the ground truth and every measurement,
so estimated REMs can in principle converge to the truth — exactly the
premise of a measurement-driven system like SkyRAN.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.channel.fading import sample_fading_db
from repro.channel.fspl import DEFAULT_FREQ_HZ, fspl_db
from repro.channel.linkbudget import LinkBudget
from repro.channel.raytrace import obstructed_lengths
from repro.channel.shadowing import ShadowingField
from repro.geo.grid import GridSpec
from repro.terrain.heightmap import Terrain


@dataclass
class ChannelModel:
    """Terrain-aware UAV-to-UE channel.

    Parameters
    ----------
    terrain:
        Surface used for ray obstruction tests.
    freq_hz:
        Carrier frequency (2.6 GHz default).
    excess_db_per_m:
        Extra attenuation per meter of obstructed ray (vegetation and
        building interiors average; 1.2 dB/m is in the range reported
        for 2-3 GHz foliage/through-building measurements).
    diffraction_db:
        One-time penalty as soon as a ray is obstructed at all
        (knife-edge diffraction around the obstacle).
    excess_cap_db:
        Upper bound on obstruction excess loss; beyond this, energy
        arrives via reflections that the direct-ray model cannot see,
        so loss stops growing.
    shadowing_sigma_db / shadowing_correlation_m:
        Per-UE log-normal shadowing field parameters.
    common_sigma_db:
        Std of the *common* shadowing field shared by every UE.  Real
        air-to-ground links have a strong UAV-position-dependent
        component (antenna-pattern ripple against the airframe,
        ground clutter under the UAV) that hits all links from that
        position alike — it is why the paper's Fig. 1a average map
        over 20 UEs still shows one sharp sweet-spot region instead
        of averaging flat.  This common structure is exactly what
        measurement-driven REMs can exploit and location-only
        heuristics (Centroid) cannot.
    ray_step_m:
        Sampling interval for the ray tracer.
    link:
        Link budget for path-loss -> SNR conversion.
    seed:
        Base seed for the per-UE shadowing fields.
    """

    terrain: Terrain
    freq_hz: float = DEFAULT_FREQ_HZ
    excess_db_per_m: float = 1.2
    diffraction_db: float = 8.0
    excess_cap_db: float = 40.0
    shadowing_sigma_db: float = 3.0
    shadowing_correlation_m: float = 20.0
    common_sigma_db: float = 4.5
    ray_step_m: float = 1.0
    link: LinkBudget = field(default_factory=LinkBudget)
    seed: int = 0
    _shadow_cache: Dict[Tuple[float, float, float], ShadowingField] = field(
        default_factory=dict, repr=False
    )

    # -- shadowing --------------------------------------------------------------

    def _shadowing_for(self, ue_xyz: np.ndarray) -> ShadowingField:
        ue = np.asarray(ue_xyz, dtype=float).reshape(3)
        key = (round(ue[0], 3), round(ue[1], 3), round(ue[2], 3))
        cached = self._shadow_cache.get(key)
        if cached is None:
            cached = ShadowingField.generate(
                self.terrain.grid,
                sigma_db=self.shadowing_sigma_db,
                correlation_m=self.shadowing_correlation_m,
                seed=self.seed,
                ue_xyz=ue,
            )
            self._shadow_cache[key] = cached
        return cached

    def _common_shadowing(self) -> ShadowingField:
        """The UAV-position-dependent field shared by every link."""
        key = ("__common__", 0.0, 0.0)
        cached = self._shadow_cache.get(key)
        if cached is None:
            cached = ShadowingField.generate(
                self.terrain.grid,
                sigma_db=self.common_sigma_db,
                correlation_m=self.shadowing_correlation_m,
                seed=self.seed + 7_777_777,
            )
            self._shadow_cache[key] = cached
        return cached

    # -- mean path loss ----------------------------------------------------------

    def path_loss_db(self, uav_xyz: np.ndarray, ue_xyz: np.ndarray) -> np.ndarray:
        """Mean path loss from UAV position(s) to one UE, in dB.

        ``uav_xyz`` may be a single ``(3,)`` point or an ``(n, 3)``
        array; the result matches (scalar float for a single point).
        """
        single = np.asarray(uav_xyz, dtype=float).ndim == 1
        uav = np.atleast_2d(np.asarray(uav_xyz, dtype=float))
        ue = np.asarray(ue_xyz, dtype=float).reshape(3)
        dist = np.linalg.norm(uav - ue[None, :], axis=1)
        loss = fspl_db(dist, self.freq_hz)
        obstructed = obstructed_lengths(self.terrain, uav, ue, self.ray_step_m)
        excess = np.where(
            obstructed > 0.0,
            np.minimum(
                self.diffraction_db + self.excess_db_per_m * obstructed,
                self.excess_cap_db,
            ),
            0.0,
        )
        loss = loss + excess
        if self.shadowing_sigma_db > 0:
            shadow = self._shadowing_for(ue)
            loss = loss + shadow.at_many(uav[:, :2])
        if self.common_sigma_db > 0:
            loss = loss + self._common_shadowing().at_many(uav[:, :2])
        if single:
            return float(loss[0])
        return loss

    def snr_db(self, uav_xyz: np.ndarray, ue_xyz: np.ndarray) -> np.ndarray:
        """Mean SNR (dB) from UAV position(s) to one UE."""
        return self.link.snr_db(self.path_loss_db(uav_xyz, ue_xyz))

    def is_los(self, uav_xyz: np.ndarray, ue_xyz: np.ndarray) -> np.ndarray:
        """LOS state per UAV position."""
        uav = np.atleast_2d(np.asarray(uav_xyz, dtype=float))
        ue = np.asarray(ue_xyz, dtype=float).reshape(3)
        return obstructed_lengths(self.terrain, uav, ue, self.ray_step_m) <= 0.0

    # -- full-grid maps ----------------------------------------------------------

    def path_loss_map(
        self,
        ue_xyz: np.ndarray,
        altitude: float,
        grid: Optional[GridSpec] = None,
    ) -> np.ndarray:
        """Mean path loss from every grid cell (at ``altitude``) to a UE.

        ``grid`` defaults to the terrain grid; pass a coarsened grid to
        trade resolution for speed in large scale-up runs.
        """
        g = grid or self.terrain.grid
        centers = g.centers_flat()
        uav = np.column_stack([centers, np.full(len(centers), float(altitude))])
        loss = self.path_loss_db(uav, ue_xyz)
        return loss.reshape(g.shape)

    def snr_map(
        self,
        ue_xyz: np.ndarray,
        altitude: float,
        grid: Optional[GridSpec] = None,
    ) -> np.ndarray:
        """Mean SNR map over the grid at ``altitude`` for one UE."""
        return self.link.snr_db(self.path_loss_map(ue_xyz, altitude, grid))

    # -- measurement samples -------------------------------------------------------

    def sample_snr_db(
        self,
        uav_xyz: np.ndarray,
        ue_xyz: np.ndarray,
        rng: np.random.Generator,
        measurement_noise_db: float = 0.5,
    ) -> np.ndarray:
        """Noisy per-sample SNR as the eNodeB PHY would report it.

        Mean SNR + Rician/Rayleigh small-scale fading (K keyed on the
        LOS state of each sample position) + Gaussian instrument noise.
        """
        uav = np.atleast_2d(np.asarray(uav_xyz, dtype=float))
        mean = self.snr_db(uav, ue_xyz)
        mean = np.atleast_1d(mean)
        los = self.is_los(uav, ue_xyz)
        fading = sample_fading_db(los, rng)
        noise = rng.normal(0.0, measurement_noise_db, size=mean.shape)
        out = mean + fading + noise
        if np.asarray(uav_xyz).ndim == 1:
            return float(out[0])
        return out

"""Link budget: powers, gains, noise floor and path loss -> SNR.

Matches the paper's hardware (Section 4.1): USRP B210 front end with
an 18 dB PA/LNA chain and a 5 dBi antenna over a 10 MHz LTE carrier.
All conversions between path loss and SNR in the code base go through
:class:`LinkBudget` so the assumptions live in one place.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

BOLTZMANN_DBM = -173.975  # thermal noise density, dBm/Hz at 290 K


@dataclass(frozen=True)
class LinkBudget:
    """RF link budget for the SkyRAN eNodeB <-> UE link.

    Attributes
    ----------
    tx_power_dbm:
        Transmit power at the PA output.  The default (-2 dBm) is a
    *calibration* choice, not the hardware's capability: it places
    a LOS link at the paper's typical 100-250 m ranges in the
    middle of the CQI ladder (SNR ~13-20 dB), so that only the
    best few positions saturate the top MCS — reproducing the
    throughput texture of Fig. 1 (optimal ~30 Mb/s, median ~17,
    poor ~4) instead of a flat saturated map.  Real link margins
    are eaten by interference, fading margins and body losses the
    synthetic channel does not model; folding them into Tx power
    keeps the calibration in one number.
    tx_gain_dbi / rx_gain_dbi:
        Antenna gains (5 dBi LTE antenna on the UAV, 0 dBi UE).
    bandwidth_hz:
        LTE channel bandwidth (10 MHz in all paper experiments).
    noise_figure_db:
        Receiver noise figure.
    """

    tx_power_dbm: float = -2.0
    tx_gain_dbi: float = 5.0
    rx_gain_dbi: float = 0.0
    bandwidth_hz: float = 10e6
    noise_figure_db: float = 7.0

    def __post_init__(self) -> None:
        if self.bandwidth_hz <= 0:
            raise ValueError(f"bandwidth_hz must be positive, got {self.bandwidth_hz}")

    @property
    def noise_floor_dbm(self) -> float:
        """Receiver noise floor: kTB + noise figure."""
        return BOLTZMANN_DBM + 10.0 * np.log10(self.bandwidth_hz) + self.noise_figure_db

    @property
    def eirp_dbm(self) -> float:
        return self.tx_power_dbm + self.tx_gain_dbi

    def snr_db(self, path_loss_db):
        """SNR in dB for a given path loss (scalar or array)."""
        pl = np.asarray(path_loss_db, dtype=float)
        snr = self.eirp_dbm + self.rx_gain_dbi - pl - self.noise_floor_dbm
        if np.isscalar(path_loss_db):
            return float(snr)
        return snr

    def path_loss_db(self, snr_db):
        """Inverse of :meth:`snr_db` (useful in tests)."""
        snr = np.asarray(snr_db, dtype=float)
        pl = self.eirp_dbm + self.rx_gain_dbi - snr - self.noise_floor_dbm
        if np.isscalar(snr_db):
            return float(pl)
        return pl

    def rx_power_dbm(self, path_loss_db):
        """Received signal power for a given path loss."""
        pl = np.asarray(path_loss_db, dtype=float)
        rx = self.eirp_dbm + self.rx_gain_dbi - pl
        if np.isscalar(path_loss_db):
            return float(rx)
        return rx

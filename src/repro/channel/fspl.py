"""Free-space path loss.

FSPL is both (a) the LOS component of the ray-traced channel model and
(b) the fallback model SkyRAN uses to initialise a REM for a UE
position that has never been measured (paper Section 3.5), and the
strawman "propagation model based" REM of Fig. 4.
"""

from __future__ import annotations

import numpy as np

SPEED_OF_LIGHT = 299_792_458.0  # m/s

#: Default LTE carrier frequency (band 7 downlink center), Hz.
DEFAULT_FREQ_HZ = 2.6e9

#: Distances below this are clamped to avoid the log singularity at 0.
MIN_DISTANCE_M = 1.0


def fspl_db(distance_m, freq_hz: float = DEFAULT_FREQ_HZ):
    """Free-space path loss in dB for a distance in meters.

    ``FSPL = 20 log10(4 pi d f / c)``.  Accepts scalars or arrays;
    distances are clamped to :data:`MIN_DISTANCE_M`.
    """
    if freq_hz <= 0:
        raise ValueError(f"freq_hz must be positive, got {freq_hz}")
    d = np.maximum(np.asarray(distance_m, dtype=float), MIN_DISTANCE_M)
    loss = 20.0 * np.log10(4.0 * np.pi * d * freq_hz / SPEED_OF_LIGHT)
    if np.isscalar(distance_m):
        return float(loss)
    return loss


def fspl_map(
    grid,
    ue_xyz,
    altitude: float,
    freq_hz: float = DEFAULT_FREQ_HZ,
) -> np.ndarray:
    """FSPL from every cell center (at ``altitude``) to a UE position.

    Parameters
    ----------
    grid:
        :class:`~repro.geo.grid.GridSpec` of the operating area.
    ue_xyz:
        UE position ``(x, y, z)`` in meters.
    altitude:
        UAV operating altitude (the z of every map cell).
    freq_hz:
        Carrier frequency.

    Returns
    -------
    ``(ny, nx)`` array of path loss in dB.
    """
    ue = np.asarray(ue_xyz, dtype=float)
    gx, gy = grid.centers()
    dx = gx - ue[0]
    dy = gy - ue[1]
    dz = altitude - ue[2]
    dist = np.sqrt(dx * dx + dy * dy + dz * dz)
    return fspl_db(dist, freq_hz)

"""RLC-style per-UE downlink queues.

One :class:`QueueBank` holds the backlog state for every attached UE
as flat float64 arrays (UE order = sorted UE ids), which is what lets
the TTI kernel in :mod:`repro.traffic.simulate` evolve all queues with
elementwise numpy.  The bank persists across TTI batches — backlog
carries over, cumulative counters accumulate — so an epoch's serving
time can be simulated in chunks.

Full-buffer UEs are represented with an **infinite** backlog, which
makes every queue update degenerate correctly without special-casing:
``inf + arrivals = inf``, ``min(inf, capacity) = capacity`` (served),
``inf - served = inf`` (backlog), and a finite buffer admits nothing
on top of an infinite backlog (nothing is offered either).

A finite ``limit_bytes`` models a bounded RLC buffer with tail drop:
arrivals beyond the free room are discarded and counted, per UE.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np


@dataclass
class QueueBank:
    """Backlog and byte accounting for a fixed set of UEs.

    Attributes
    ----------
    ue_ids:
        UE identities, ascending; index ``i`` everywhere in the
        traffic subsystem means ``ue_ids[i]``.
    limit_bytes:
        Tail-drop buffer bound per UE; ``0`` means unbounded.
    full_buffer:
        Seed queues with an infinite backlog (the legacy assumption)
        instead of empty.  Either one bool for the whole bank or a
        per-UE bool array, so one bank can mix full-buffer UEs with
        finite-traffic UEs.  After construction the attribute is the
        scalar ``bool`` "every UE is full-buffer" (preserving the
        truthiness the all-or-nothing callers test) and the per-UE
        view lives in ``full_buffer_mask``.
    """

    ue_ids: Tuple[int, ...]
    limit_bytes: float = 0.0
    full_buffer: bool = False
    full_buffer_mask: np.ndarray = field(init=False)
    backlog_bytes: np.ndarray = field(init=False)
    arrived_bytes: np.ndarray = field(init=False)
    dropped_bytes: np.ndarray = field(init=False)
    served_bytes: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        ids = tuple(int(u) for u in self.ue_ids)
        if len(ids) == 0:
            raise ValueError("QueueBank needs at least one UE")
        if list(ids) != sorted(set(ids)):
            raise ValueError(f"ue_ids must be strictly ascending, got {ids}")
        if self.limit_bytes < 0:
            raise ValueError(f"limit_bytes must be >= 0, got {self.limit_bytes}")
        self.ue_ids = ids
        n = len(ids)
        mask = np.broadcast_to(
            np.asarray(self.full_buffer, dtype=bool), (n,)
        ).copy()
        self.full_buffer_mask = mask
        self.full_buffer = bool(mask.all())
        self.backlog_bytes = np.where(mask, np.inf, 0.0)
        self.arrived_bytes = np.zeros(n, dtype=float)
        self.dropped_bytes = np.zeros(n, dtype=float)
        self.served_bytes = np.zeros(n, dtype=float)

    @property
    def n_ues(self) -> int:
        return len(self.ue_ids)

    def index_of(self, ue_id: int) -> int:
        """Array index of a UE id (ValueError if unknown)."""
        return self.ue_ids.index(int(ue_id))

    def admit(self, offered_bytes_tti: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Tail-drop admission for one TTI's offered bytes.

        Returns ``(accepted, dropped)`` per UE.  Pure function of the
        current backlog — it does **not** mutate state; the TTI kernel
        owns the update order (admit, grant, drain, account).
        """
        offered = np.asarray(offered_bytes_tti, dtype=float)
        if self.limit_bytes <= 0:
            return offered, np.zeros_like(offered)
        room = np.maximum(self.limit_bytes - self.backlog_bytes, 0.0)
        accepted = np.minimum(offered, room)
        return accepted, offered - accepted

    def account_batch(
        self,
        arrived: np.ndarray,
        dropped: np.ndarray,
        served: np.ndarray,
        backlog: np.ndarray,
    ) -> None:
        """Fold one TTI batch's (n_ues, n_tti) matrices into the totals."""
        self.arrived_bytes += arrived.sum(axis=1)
        self.dropped_bytes += dropped.sum(axis=1)
        self.served_bytes += served.sum(axis=1)
        self.backlog_bytes = np.asarray(backlog, dtype=float).copy()

    def total_backlog_bytes(self) -> float:
        """Aggregate backlog right now (inf under full buffer)."""
        return float(self.backlog_bytes.sum())

"""Pluggable TTI schedulers behind a string-keyed registry.

Each scheduler answers one question per TTI: how are the carrier's
``n_prb`` PRBs split across the UEs that currently have data and a
usable link?  Three classic disciplines are provided:

``round_robin``
    Equal PRB split over schedulable UEs; the remainder PRBs rotate
    with the TTI index so long-run shares are exactly fair (the seed's
    one-shot scheduler always gave the remainder to the lowest ids).
``proportional_fair``
    Per-PRB greedy argmax of ``rate / average_served`` with the
    average updated *within* the TTI as PRBs are granted (virtual
    pending bytes) and across TTIs by an EWMA.  The within-TTI update
    makes the discipline degenerate **exactly** to round-robin —
    including the rotated remainder — when every UE has the same rate
    and backlog, which is the identity the property tests pin.
``max_min``
    Per-PRB greedy argmin of bytes granted so far this TTI: equalizes
    granted capacity in bytes, so low-rate UEs get more PRBs.

Every scheduler implements the vectorized path (numpy over UEs, used
by the TTI-batch kernel) **and** a pure-Python reference path
(``grants_reference``) performing the identical float operations in
the identical order, so the two are bit-exact — the equivalence the
traffic smoke gate asserts.  Ties in the greedy argmax/argmin resolve
to the first UE in *rotated* schedulable order (rotation = ``tti mod
n_active``), which is what aligns all three disciplines on the same
grant under full symmetry.

Stateless disciplines additionally expose ``grants_slab`` — a whole
(UEs x TTIs) grant matrix in one shot — which the kernel uses when the
schedulable set cannot change within a batch (full-buffer runs).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

import numpy as np

#: Denominator floor for the PF metric when a UE's EWMA average is
#: still zero (never served, zero-rate history).  Applied identically
#: in the vectorized and reference paths so they stay bit-exact.
TINY_BYTES = 1e-12


def rotated_schedulable(schedulable: np.ndarray, tti: int) -> np.ndarray:
    """Schedulable UE indices, ascending, rotated by ``tti``.

    The rotation is the tie-break order every discipline shares: UE at
    rotated position 0 wins ties, gets the first remainder PRB, etc.
    """
    idx = np.flatnonzero(np.asarray(schedulable, dtype=bool))
    n_a = len(idx)
    if n_a == 0:
        return idx
    rho = int(tti) % n_a
    if rho == 0:
        return idx
    return np.concatenate([idx[rho:], idx[:rho]])


@dataclass
class RoundRobinScheduler:
    """Equal split with TTI-rotated remainder PRBs."""

    name: str = field(default="round_robin", init=False)

    def reset(self, n_ues: int) -> None:
        pass

    def grants(
        self,
        schedulable: np.ndarray,
        bytes_per_prb: np.ndarray,
        n_prb: int,
        tti: int,
    ) -> np.ndarray:
        n = len(schedulable)
        out = np.zeros(n, dtype=np.int64)
        idx = np.flatnonzero(np.asarray(schedulable, dtype=bool))
        n_a = len(idx)
        if n_a == 0:
            return out
        base, rem = divmod(int(n_prb), n_a)
        out[idx] = base
        if rem:
            rho = int(tti) % n_a
            pos = np.arange(n_a)
            out[idx[((pos - rho) % n_a) < rem]] += 1
        return out

    def grants_reference(
        self,
        schedulable,
        bytes_per_prb,
        n_prb: int,
        tti: int,
    ) -> list:
        n = len(schedulable)
        out = [0] * n
        idx = [i for i in range(n) if schedulable[i]]
        n_a = len(idx)
        if n_a == 0:
            return out
        base, rem = divmod(int(n_prb), n_a)
        rho = int(tti) % n_a
        for pos, i in enumerate(idx):
            out[i] = base + (1 if (pos - rho) % n_a < rem else 0)
        return out

    def grants_slab(
        self,
        schedulable: np.ndarray,
        bytes_per_prb: np.ndarray,
        n_prb: int,
        tti0: int,
        n_tti: int,
    ) -> Optional[np.ndarray]:
        """All TTIs of a constant-schedulable-set batch at once."""
        n = len(schedulable)
        out = np.zeros((n, n_tti), dtype=np.int64)
        idx = np.flatnonzero(np.asarray(schedulable, dtype=bool))
        n_a = len(idx)
        if n_a == 0:
            return out
        base, rem = divmod(int(n_prb), n_a)
        out[idx, :] = base
        if rem:
            rho = (int(tti0) + np.arange(n_tti)) % n_a
            pos = np.arange(n_a)[:, None]
            out[idx[:, None], np.arange(n_tti)[None, :]] += (
                ((pos - rho[None, :]) % n_a) < rem
            ).astype(np.int64)
        return out

    def update(self, served_bytes: np.ndarray) -> None:
        pass

    def update_reference(self, served_bytes) -> None:
        pass


@dataclass(kw_only=True)
class ProportionalFairScheduler:
    """Per-PRB greedy PF with an EWMA served-rate average.

    Attributes
    ----------
    time_constant_tti:
        EWMA horizon of the per-UE average served rate (TTIs); the
        canonical PF ``T`` of the metric ``r / T``.
    """

    time_constant_tti: int = 100
    name: str = field(default="proportional_fair", init=False)
    _avg_bytes: Optional[np.ndarray] = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.time_constant_tti < 1:
            raise ValueError(
                f"time_constant_tti must be >= 1, got {self.time_constant_tti}"
            )

    def reset(self, n_ues: int) -> None:
        self._avg_bytes = None

    def _ensure_avg(self, bytes_per_prb: np.ndarray) -> None:
        # Lazy init to one PRB's worth of rate: nonzero for any UE
        # that can be scheduled, and symmetric when the rates are.
        if self._avg_bytes is None:
            self._avg_bytes = np.asarray(bytes_per_prb, dtype=float).copy()

    def grants(
        self,
        schedulable: np.ndarray,
        bytes_per_prb: np.ndarray,
        n_prb: int,
        tti: int,
    ) -> np.ndarray:
        rates = np.asarray(bytes_per_prb, dtype=float)
        self._ensure_avg(rates)
        n = len(schedulable)
        out = np.zeros(n, dtype=np.int64)
        order = rotated_schedulable(schedulable, tti)
        n_a = len(order)
        if n_a == 0:
            return out
        r = rates[order]
        avg = self._avg_bytes[order]
        pending = np.zeros(n_a, dtype=float)
        counts = np.zeros(n_a, dtype=np.int64)
        for _ in range(int(n_prb)):
            denom = avg + pending
            denom = np.where(denom > 0.0, denom, TINY_BYTES)
            k = int(np.argmax(r / denom))
            pending[k] += r[k]
            counts[k] += 1
        out[order] = counts
        return out

    def grants_reference(
        self,
        schedulable,
        bytes_per_prb,
        n_prb: int,
        tti: int,
    ) -> list:
        rates = np.asarray(bytes_per_prb, dtype=float)
        self._ensure_avg(rates)
        n = len(schedulable)
        out = [0] * n
        order = [int(i) for i in rotated_schedulable(schedulable, tti)]
        n_a = len(order)
        if n_a == 0:
            return out
        r = [float(rates[i]) for i in order]
        avg = [float(self._avg_bytes[i]) for i in order]
        pending = [0.0] * n_a
        counts = [0] * n_a
        for _ in range(int(n_prb)):
            best_k = 0
            best_m = -1.0
            for k in range(n_a):
                denom = avg[k] + pending[k]
                if not denom > 0.0:
                    denom = TINY_BYTES
                m = r[k] / denom
                if m > best_m:
                    best_m = m
                    best_k = k
            pending[best_k] += r[best_k]
            counts[best_k] += 1
        for k, i in enumerate(order):
            out[i] = counts[k]
        return out

    def grants_slab(self, schedulable, bytes_per_prb, n_prb, tti0, n_tti):
        return None  # EWMA state couples TTIs

    def update(self, served_bytes: np.ndarray) -> None:
        served = np.asarray(served_bytes, dtype=float)
        self._ensure_avg(np.zeros_like(served))
        alpha = 1.0 / float(self.time_constant_tti)
        self._avg_bytes = (1.0 - alpha) * self._avg_bytes + alpha * served

    def update_reference(self, served_bytes) -> None:
        served = np.asarray(served_bytes, dtype=float)
        self._ensure_avg(np.zeros_like(served))
        alpha = 1.0 / float(self.time_constant_tti)
        for i in range(len(served)):
            self._avg_bytes[i] = (1.0 - alpha) * float(self._avg_bytes[i]) + alpha * float(
                served[i]
            )


@dataclass
class MaxMinScheduler:
    """Equalize granted bytes within each TTI (max-min in capacity)."""

    name: str = field(default="max_min", init=False)

    def reset(self, n_ues: int) -> None:
        pass

    def grants(
        self,
        schedulable: np.ndarray,
        bytes_per_prb: np.ndarray,
        n_prb: int,
        tti: int,
    ) -> np.ndarray:
        rates = np.asarray(bytes_per_prb, dtype=float)
        n = len(schedulable)
        out = np.zeros(n, dtype=np.int64)
        order = rotated_schedulable(schedulable, tti)
        n_a = len(order)
        if n_a == 0:
            return out
        r = rates[order]
        pending = np.zeros(n_a, dtype=float)
        counts = np.zeros(n_a, dtype=np.int64)
        for _ in range(int(n_prb)):
            k = int(np.argmin(pending))
            pending[k] += r[k]
            counts[k] += 1
        out[order] = counts
        return out

    def grants_reference(
        self,
        schedulable,
        bytes_per_prb,
        n_prb: int,
        tti: int,
    ) -> list:
        rates = np.asarray(bytes_per_prb, dtype=float)
        n = len(schedulable)
        out = [0] * n
        order = [int(i) for i in rotated_schedulable(schedulable, tti)]
        n_a = len(order)
        if n_a == 0:
            return out
        r = [float(rates[i]) for i in order]
        pending = [0.0] * n_a
        counts = [0] * n_a
        for _ in range(int(n_prb)):
            best_k = 0
            best_p = pending[0]
            for k in range(1, n_a):
                if pending[k] < best_p:
                    best_p = pending[k]
                    best_k = k
            pending[best_k] += r[best_k]
            counts[best_k] += 1
        for k, i in enumerate(order):
            out[i] = counts[k]
        return out

    def grants_slab(
        self,
        schedulable: np.ndarray,
        bytes_per_prb: np.ndarray,
        n_prb: int,
        tti0: int,
        n_tti: int,
    ) -> Optional[np.ndarray]:
        """Stateless across TTIs: only ``tti mod n_active`` matters, so
        a batch is ``n_active`` distinct per-TTI allocations, tiled."""
        idx = np.flatnonzero(np.asarray(schedulable, dtype=bool))
        n_a = len(idx)
        n = len(schedulable)
        if n_a == 0:
            return np.zeros((n, n_tti), dtype=np.int64)
        patterns = np.stack(
            [self.grants(schedulable, bytes_per_prb, n_prb, rho) for rho in range(n_a)],
            axis=1,
        )
        return patterns[:, (int(tti0) + np.arange(n_tti)) % n_a]

    def update(self, served_bytes: np.ndarray) -> None:
        pass

    def update_reference(self, served_bytes) -> None:
        pass


_REGISTRY: Dict[str, Callable[..., object]] = {}


def register_scheduler(
    name: str, factory: Callable[..., object], *, override: bool = False
) -> None:
    """Register a scheduler factory under a string name.

    Registering a name that already exists raises unless
    ``override=True`` — a silently clobbered registration is a config
    that quietly runs the wrong discipline.
    """
    if not name:
        raise ValueError("scheduler name must be non-empty")
    if name in _REGISTRY and not override:
        raise ValueError(
            f"scheduler {name!r} is already registered "
            "(pass override=True to replace it)"
        )
    _REGISTRY[name] = factory


def available_schedulers() -> Tuple[str, ...]:
    """Registered scheduler names, sorted."""
    return tuple(sorted(_REGISTRY))


def make_scheduler(name: str, **params):
    """Instantiate a registered scheduler by name.

    Unknown keyword parameters are ignored for dataclass factories so
    one config can carry the union of every discipline's knobs
    (``time_constant_tti`` means nothing to round-robin).
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(available_schedulers())
        raise ValueError(f"unknown scheduler {name!r} (known: {known})") from None
    accepted = getattr(factory, "__dataclass_fields__", None)
    if accepted is not None:
        params = {
            k: v
            for k, v in params.items()
            if k in accepted and accepted[k].init
        }
    return factory(**params)


register_scheduler("round_robin", RoundRobinScheduler)
register_scheduler("proportional_fair", ProportionalFairScheduler)
register_scheduler("max_min", MaxMinScheduler)

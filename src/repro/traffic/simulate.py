"""The TTI-batch MAC kernel: offered bytes -> grants -> served bytes.

:func:`run_tti_batch` evolves every UE's RLC queue through a batch of
TTIs under a pluggable scheduler, producing full (n_ues, n_tti)
matrices of offered / dropped / granted / served bytes.  Two
implementations share the exact same update recurrence:

* the **kernel** path (default) does each TTI's admit/grant/drain as
  elementwise numpy over UEs, and — when the schedulable set cannot
  change within the batch (full-buffer traffic) — asks the scheduler
  for a whole-batch grant *slab* so thousands of TTIs collapse into a
  handful of array ops;
* the **reference** path replays the identical recurrence in pure
  Python floats, one UE at a time.

Because both paths perform the same IEEE-754 operations in the same
order (``avail = backlog + accepted``, ``served = min(avail, cap)``,
``backlog = avail - served``; no cumsum/prefix tricks anywhere), their
outputs are **bit-identical**, which is what the equivalence tests and
``scripts/traffic_smoke.py`` assert.

:class:`MACSimulation` wraps sources + queues + scheduler into the
stateful per-epoch object the controller and the experiments drive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.backend import get_backend
from repro.lte.throughput import PRB_PER_10MHZ, throughput_mbps
from repro.perf import perf
from repro.traffic.generators import (
    BYTES_PER_TTI_PER_MBPS,
    TrafficSource,
    make_traffic_model,
)
from repro.traffic.queueing import QueueBank
from repro.traffic.schedulers import make_scheduler


def rate_per_prb_bytes(snr_db: Sequence[float]) -> np.ndarray:
    """Per-UE deliverable bytes per PRB per TTI at the given SNRs."""
    snr = np.asarray(list(snr_db), dtype=float)
    mbps = np.array([throughput_mbps(s, n_prb=1) for s in snr], dtype=float)
    return mbps * BYTES_PER_TTI_PER_MBPS


@dataclass(frozen=True)
class MACBatchResult:
    """Everything one TTI batch did, per UE and per TTI.

    All byte matrices are (n_ues, n_tti) float64 with rows in
    ``ue_ids`` order; ``grants`` is the PRB allocation (int64).
    """

    ue_ids: Tuple[int, ...]
    tti0: int
    n_tti: int
    n_prb: int
    grants: np.ndarray
    offered_bytes: np.ndarray
    dropped_bytes: np.ndarray
    served_bytes: np.ndarray
    backlog_end_bytes: np.ndarray

    def offered_mbps(self) -> np.ndarray:
        """Per-UE offered rate over the batch (inf-safe: full buffer offers 0)."""
        return self.offered_bytes.sum(axis=1) / (self.n_tti * BYTES_PER_TTI_PER_MBPS)

    def served_mbps(self) -> np.ndarray:
        """Per-UE served rate over the batch."""
        return self.served_bytes.sum(axis=1) / (self.n_tti * BYTES_PER_TTI_PER_MBPS)

    def aggregate_offered_mbps(self) -> float:
        return float(self.offered_mbps().sum())

    def aggregate_served_mbps(self) -> float:
        return float(self.served_mbps().sum())

    def total_dropped_bytes(self) -> float:
        return float(self.dropped_bytes.sum())

    def total_backlog_bytes(self) -> float:
        """End-of-batch aggregate backlog (inf under full buffer)."""
        return float(self.backlog_end_bytes.sum())

    def fairness(self) -> float:
        """Jain's index over per-UE served rates."""
        from repro.sim.metrics import jain_fairness

        return jain_fairness(self.served_mbps())


def draw_offered_bytes(
    sources: Sequence[TrafficSource],
    n_tti: int,
    faults=None,
) -> np.ndarray:
    """Stack each source's next ``n_tti`` offered bytes into (n_ues, n_tti).

    ``faults`` (a :class:`repro.faults.injector.FaultInjector`) may
    amplify the result through its traffic-burst channel; with no
    injector or a zero burst rate the matrix passes through untouched
    and no RNG is drawn.
    """
    if n_tti < 0:
        raise ValueError(f"n_tti must be >= 0, got {n_tti}")
    with perf.span("traffic.generate"):
        offered = np.stack([s.offered_bytes(n_tti) for s in sources], axis=0)
    if faults is not None:
        offered = faults.traffic_bursts(offered)
    perf.count("traffic.offered_tti", int(n_tti))
    return offered


def run_tti_batch(
    *,
    bytes_per_prb: np.ndarray,
    offered_bytes: np.ndarray,
    scheduler,
    queues: QueueBank,
    n_prb: int = PRB_PER_10MHZ,
    tti0: int = 0,
    reference: bool = False,
) -> MACBatchResult:
    """Run one TTI batch and fold the result into ``queues``.

    The per-TTI recurrence, identical in every path:

    1. admit: tail-drop ``offered`` against the queue limit;
    2. schedulable = (backlog + accepted > 0) and (rate > 0);
    3. grant: scheduler splits ``n_prb`` PRBs over schedulable UEs;
    4. drain: ``served = min(avail, grants * bytes_per_prb)``;
    5. ``backlog = avail - served``; scheduler observes ``served``.
    """
    rates = np.asarray(bytes_per_prb, dtype=float)
    offered = np.asarray(offered_bytes, dtype=float)
    n = queues.n_ues
    if rates.shape != (n,):
        raise ValueError(f"bytes_per_prb shape {rates.shape} != ({n},)")
    if offered.ndim != 2 or offered.shape[0] != n:
        raise ValueError(f"offered_bytes shape {offered.shape} != ({n}, n_tti)")
    if n_prb < 1:
        raise ValueError(f"n_prb must be >= 1, got {n_prb}")
    n_tti = offered.shape[1]

    span = "sched.reference" if reference else "sched.kernel"
    with perf.span(span):
        if reference:
            grants, dropped, served, backlog = _run_reference(
                rates, offered, scheduler, queues, int(n_prb), int(tti0)
            )
        else:
            grants, dropped, served, backlog = _run_kernel(
                rates, offered, scheduler, queues, int(n_prb), int(tti0)
            )

    queues.account_batch(offered, dropped, served, backlog)
    perf.count("sched.tti", int(n_tti))
    perf.count("traffic.dropped_bytes", int(dropped.sum()))
    served_total = served.sum()
    if np.isfinite(served_total):
        perf.count("traffic.served_bytes", int(served_total))
    return MACBatchResult(
        ue_ids=queues.ue_ids,
        tti0=int(tti0),
        n_tti=int(n_tti),
        n_prb=int(n_prb),
        grants=grants,
        offered_bytes=offered,
        dropped_bytes=dropped,
        served_bytes=served,
        backlog_end_bytes=backlog,
    )


def _constant_schedulable(
    rate_ok: np.ndarray, offered: np.ndarray, queues: QueueBank
) -> Optional[np.ndarray]:
    """The schedulable set, iff it provably cannot change in-batch.

    A UE is schedulable at TTI ``t`` when ``avail > 0`` and its rate is
    positive.  That predicate is time-invariant when every UE falls in
    one of three classes: full buffer (``avail`` stays infinite),
    offering bytes *every* TTI (``avail >= backlog >= 0`` plus a
    positive arrival, or a backlog pinned at a positive limit), or
    never schedulable (zero rate, or nothing offered over an empty
    queue).  Any UE outside these classes — e.g. a finite backlog
    draining with no arrivals — couples the set to the queue dynamics,
    and the caller must fall back to the per-TTI scheduler loop.
    """
    fb = queues.full_buffer_mask
    positive = offered > 0.0
    always = positive.all(axis=1)
    never = ~positive.any(axis=1) & (queues.backlog_bytes == 0.0) & ~fb
    if not bool(np.all(fb | always | never | ~rate_ok)):
        return None
    return rate_ok & (fb | always)


def _run_kernel(
    rates: np.ndarray,
    offered: np.ndarray,
    scheduler,
    queues: QueueBank,
    n_prb: int,
    tti0: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    n, n_tti = offered.shape
    rate_ok = rates > 0.0
    limit = float(queues.limit_bytes)

    schedulable = _constant_schedulable(rate_ok, offered, queues)
    if schedulable is not None:
        # The schedulable set is frozen, so a stateless scheduler can
        # emit the whole batch in one grant slab.
        slab = scheduler.grants_slab(schedulable, rates, n_prb, tti0, n_tti)
    else:
        slab = None

    if slab is not None and queues.full_buffer:
        grants = slab
        # room over an infinite backlog is 0, so a finite limit
        # drops every offered byte; unbounded queues accept all.
        if limit > 0:
            dropped = offered.copy()
        else:
            dropped = np.zeros_like(offered)
        served, backlog = get_backend().mac_slab_serve(
            grants, rates, queues.backlog_bytes, offered - dropped
        )
        perf.count("sched.slab_tti", int(n_tti))
        return grants, dropped, served, backlog

    if slab is not None:
        # Mixed full-buffer/always-offering population: grants are
        # hoisted out of the loop, but finite backlogs couple one TTI
        # to the next (a Lindley recurrence), so the admit/drain walk
        # stays per-TTI — elementwise numpy, no scheduler calls.
        grants = slab
        caps = grants * rates[:, None]
        dropped = np.zeros((n, n_tti), dtype=float)
        served = np.zeros((n, n_tti), dtype=float)
        backlog = queues.backlog_bytes.copy()
        for t in range(n_tti):
            off_t = offered[:, t]
            if limit > 0:
                room = np.maximum(limit - backlog, 0.0)
                accepted = np.minimum(off_t, room)
                dropped[:, t] = off_t - accepted
            else:
                accepted = off_t
            avail = backlog + accepted
            served_t = np.minimum(avail, caps[:, t])
            backlog = avail - served_t
            served[:, t] = served_t
        perf.count("sched.slab_tti", int(n_tti))
        return grants, dropped, served, backlog

    grants = np.zeros((n, n_tti), dtype=np.int64)
    dropped = np.zeros((n, n_tti), dtype=float)
    served = np.zeros((n, n_tti), dtype=float)
    backlog = queues.backlog_bytes.copy()
    for t in range(n_tti):
        off_t = offered[:, t]
        if limit > 0:
            room = np.maximum(limit - backlog, 0.0)
            accepted = np.minimum(off_t, room)
            drop_t = off_t - accepted
        else:
            accepted = off_t
            drop_t = np.zeros(n, dtype=float)
        avail = backlog + accepted
        schedulable = (avail > 0.0) & rate_ok
        g = scheduler.grants(schedulable, rates, n_prb, tti0 + t)
        cap = g * rates
        served_t = np.minimum(avail, cap)
        backlog = avail - served_t
        scheduler.update(served_t)
        grants[:, t] = g
        dropped[:, t] = drop_t
        served[:, t] = served_t
    return grants, dropped, served, backlog


def _run_reference(
    rates: np.ndarray,
    offered: np.ndarray,
    scheduler,
    queues: QueueBank,
    n_prb: int,
    tti0: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Pure-Python per-TTI replay of the exact kernel recurrence."""
    n, n_tti = offered.shape
    rate_list = [float(r) for r in rates]
    limit = float(queues.limit_bytes)
    grants = np.zeros((n, n_tti), dtype=np.int64)
    dropped = np.zeros((n, n_tti), dtype=float)
    served = np.zeros((n, n_tti), dtype=float)
    backlog = [float(b) for b in queues.backlog_bytes]
    for t in range(n_tti):
        avail = [0.0] * n
        schedulable = [False] * n
        for i in range(n):
            off = float(offered[i, t])
            if limit > 0:
                room = max(limit - backlog[i], 0.0)
                accepted = min(off, room)
                dropped[i, t] = off - accepted
            else:
                accepted = off
            avail[i] = backlog[i] + accepted
            schedulable[i] = avail[i] > 0.0 and rate_list[i] > 0.0
        g = scheduler.grants_reference(schedulable, rate_list, n_prb, tti0 + t)
        served_t = [0.0] * n
        for i in range(n):
            cap = g[i] * rate_list[i]
            served_t[i] = min(avail[i], cap)
            backlog[i] = avail[i] - served_t[i]
            grants[i, t] = g[i]
            served[i, t] = served_t[i]
        scheduler.update_reference(served_t)
    return grants, dropped, served, np.array(backlog, dtype=float)


class MACSimulation:
    """Sources + queues + scheduler for one epoch's serving time.

    Built once per epoch for a fixed UE set; :meth:`run` advances the
    MAC by a batch of TTIs against the epoch's per-UE SNRs.  The TTI
    clock, queue backlogs, generator streams and scheduler state all
    persist across calls, so chunked runs match one long run exactly.
    """

    def __init__(
        self,
        ue_ids: Sequence[int],
        *,
        traffic_model: str | object = "full_buffer",
        scheduler: str | object = "round_robin",
        seed: int = 0,
        n_prb: int = PRB_PER_10MHZ,
        buffer_bytes: float = 0.0,
        traffic_params: Optional[Mapping[str, object]] = None,
        scheduler_params: Optional[Mapping[str, object]] = None,
    ) -> None:
        ids = tuple(sorted(int(u) for u in ue_ids))
        if isinstance(traffic_model, str):
            traffic_model = make_traffic_model(
                traffic_model, **dict(traffic_params or {})
            )
        if isinstance(scheduler, str):
            scheduler = make_scheduler(scheduler, **dict(scheduler_params or {}))
        self.sources: List[TrafficSource] = [
            traffic_model.source(u, seed=seed) for u in ids
        ]
        full_buffer = bool(self.sources and self.sources[0].full_buffer)
        self.queues = QueueBank(ids, limit_bytes=buffer_bytes, full_buffer=full_buffer)
        self.scheduler = scheduler
        self.scheduler.reset(len(ids))
        self.n_prb = int(n_prb)
        self.tti = 0

    @property
    def ue_ids(self) -> Tuple[int, ...]:
        return self.queues.ue_ids

    def run(
        self,
        snr_db_per_ue: Mapping[int, float],
        n_tti: int,
        *,
        faults=None,
        reference: bool = False,
    ) -> MACBatchResult:
        """Advance the MAC by ``n_tti`` TTIs at the given per-UE SNRs."""
        try:
            snr = [float(snr_db_per_ue[u]) for u in self.queues.ue_ids]
        except KeyError as exc:
            raise KeyError(f"missing SNR for UE {exc.args[0]}") from None
        rates = rate_per_prb_bytes(snr)
        offered = draw_offered_bytes(self.sources, n_tti, faults=faults)
        result = run_tti_batch(
            bytes_per_prb=rates,
            offered_bytes=offered,
            scheduler=self.scheduler,
            queues=self.queues,
            n_prb=self.n_prb,
            tti0=self.tti,
            reference=reference,
        )
        self.tti += int(n_tti)
        return result

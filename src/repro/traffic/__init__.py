"""Traffic workloads, RLC queues and TTI scheduling (see DESIGN.md §10)."""

from repro.traffic.generators import (
    BYTES_PER_TTI_PER_MBPS,
    CBRTraffic,
    FullBufferTraffic,
    OnOffVideoTraffic,
    PoissonTraffic,
    TRAFFIC_SPAWN_KEY,
    TrafficSource,
    available_traffic_models,
    make_traffic_model,
    register_traffic_model,
)
from repro.traffic.queueing import QueueBank
from repro.traffic.schedulers import (
    MaxMinScheduler,
    ProportionalFairScheduler,
    RoundRobinScheduler,
    available_schedulers,
    make_scheduler,
    register_scheduler,
)
from repro.traffic.simulate import (
    MACBatchResult,
    MACSimulation,
    draw_offered_bytes,
    rate_per_prb_bytes,
    run_tti_batch,
)

__all__ = [
    "BYTES_PER_TTI_PER_MBPS",
    "CBRTraffic",
    "FullBufferTraffic",
    "MACBatchResult",
    "MACSimulation",
    "MaxMinScheduler",
    "OnOffVideoTraffic",
    "PoissonTraffic",
    "ProportionalFairScheduler",
    "QueueBank",
    "RoundRobinScheduler",
    "TRAFFIC_SPAWN_KEY",
    "TrafficSource",
    "available_schedulers",
    "available_traffic_models",
    "draw_offered_bytes",
    "make_scheduler",
    "make_traffic_model",
    "rate_per_prb_bytes",
    "register_scheduler",
    "register_traffic_model",
    "run_tti_batch",
]

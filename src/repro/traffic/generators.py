"""Per-UE traffic workload generators.

The paper's adaptation loop is driven by *served* traffic, which only
diverges from cell capacity when the users actually offer load.  Each
generator models one downlink workload and produces **offered bytes
per TTI** (1 TTI = 1 ms, the LTE subframe) for one UE; the RLC queue
model (:mod:`repro.traffic.queueing`) and the TTI schedulers
(:mod:`repro.traffic.schedulers`) turn offered bytes into served
bytes.

RNG contract
------------

Every stochastic source owns a private generator seeded from
``SeedSequence(seed, spawn_key=(TRAFFIC_SPAWN_KEY, ue_id))``:

* the stream depends only on ``(seed, ue_id)`` — never on UE
  registration order or on how many other UEs exist, so adding a UE
  does not reshuffle anyone else's traffic;
* consecutive :meth:`~TrafficSource.offered_bytes` calls continue the
  same stream, so a run chopped into TTI batches is bit-identical to
  one long batch;
* deterministic sources (``full_buffer``, ``cbr``) create **no**
  generator and consume no entropy at all.

Workload models register under a string name — mirroring the REM
interpolator registry — so :class:`~repro.core.config.SkyRANConfig`
carries the choice as configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Protocol, Tuple, runtime_checkable

import numpy as np

#: Spawn-key tag isolating traffic streams from every other consumer
#: of the run seed (controller RNG, fault channels, UE placement).
TRAFFIC_SPAWN_KEY = 0x7452

#: Bytes offered per TTI by a 1 Mb/s flow (1e6 / 8 bits / 1000 TTIs).
BYTES_PER_TTI_PER_MBPS = 125.0


def _ue_rng(seed: int, ue_id: int) -> np.random.Generator:
    """The per-UE traffic generator stream (see the module RNG contract)."""
    return np.random.default_rng(
        np.random.SeedSequence(seed, spawn_key=(TRAFFIC_SPAWN_KEY, int(ue_id)))
    )


@runtime_checkable
class TrafficSource(Protocol):
    """One UE's offered-load stream.

    ``full_buffer`` marks the infinitely-backlogged idealization: the
    queue model seeds such a UE with an infinite backlog and the
    offered-bytes stream is all zeros (arrivals are meaningless).
    """

    full_buffer: bool

    def offered_bytes(self, n_tti: int) -> np.ndarray: ...


class _FullBufferSource:
    """Infinite backlog: the legacy assumption, as a degenerate source."""

    full_buffer = True

    def offered_bytes(self, n_tti: int) -> np.ndarray:
        if n_tti < 0:
            raise ValueError(f"n_tti must be >= 0, got {n_tti}")
        return np.zeros(n_tti, dtype=float)


class _CBRSource:
    """Constant bit rate: the same byte count every TTI, no randomness."""

    full_buffer = False

    def __init__(self, rate_mbps: float) -> None:
        self._bytes_per_tti = float(rate_mbps) * BYTES_PER_TTI_PER_MBPS

    def offered_bytes(self, n_tti: int) -> np.ndarray:
        if n_tti < 0:
            raise ValueError(f"n_tti must be >= 0, got {n_tti}")
        return np.full(n_tti, self._bytes_per_tti, dtype=float)


class _PoissonSource:
    """Poisson packet arrivals at a mean rate, fixed packet size."""

    full_buffer = False

    def __init__(self, rate_mbps: float, packet_bytes: float, seed: int, ue_id: int) -> None:
        self._packet_bytes = float(packet_bytes)
        self._lam = float(rate_mbps) * BYTES_PER_TTI_PER_MBPS / self._packet_bytes
        self._rng = _ue_rng(seed, ue_id)

    def offered_bytes(self, n_tti: int) -> np.ndarray:
        if n_tti < 0:
            raise ValueError(f"n_tti must be >= 0, got {n_tti}")
        return self._rng.poisson(self._lam, n_tti).astype(float) * self._packet_bytes


class _OnOffSource:
    """ON-OFF video-style bursts: CBR at the peak rate during ON spells.

    ON and OFF spell lengths are exponential (means in seconds); the
    initial state is drawn with the stationary ON probability so a
    fresh source is statistically mid-stream rather than always
    starting silent.  Spell boundaries carry float TTI precision across
    batch calls, so batching never quantizes the duty cycle.
    """

    full_buffer = False

    def __init__(
        self,
        rate_mbps: float,
        mean_on_s: float,
        mean_off_s: float,
        seed: int,
        ue_id: int,
    ) -> None:
        self._bytes_per_tti = float(rate_mbps) * BYTES_PER_TTI_PER_MBPS
        self._mean_on_tti = float(mean_on_s) * 1000.0
        self._mean_off_tti = float(mean_off_s) * 1000.0
        self._rng = _ue_rng(seed, ue_id)
        p_on = self._mean_on_tti / (self._mean_on_tti + self._mean_off_tti)
        self._on = bool(self._rng.random() < p_on)
        self._remaining_tti = self._draw_spell()

    def _draw_spell(self) -> float:
        mean = self._mean_on_tti if self._on else self._mean_off_tti
        return float(self._rng.exponential(mean))

    def offered_bytes(self, n_tti: int) -> np.ndarray:
        if n_tti < 0:
            raise ValueError(f"n_tti must be >= 0, got {n_tti}")
        out = np.zeros(n_tti, dtype=float)
        t = 0
        while t < n_tti:
            span = min(n_tti - t, int(np.ceil(self._remaining_tti)))
            span = max(span, 1)
            if self._on:
                out[t : t + span] = self._bytes_per_tti
            self._remaining_tti -= span
            t += span
            if self._remaining_tti <= 0:
                self._on = not self._on
                self._remaining_tti += self._draw_spell()
        return out


# -- factories (the registry's values) -----------------------------------------


@dataclass(frozen=True, kw_only=True)
class FullBufferTraffic:
    """The legacy infinitely-backlogged workload."""

    def source(self, ue_id: int, seed: int = 0) -> TrafficSource:
        return _FullBufferSource()


@dataclass(frozen=True, kw_only=True)
class CBRTraffic:
    """Constant bit rate at ``rate_mbps`` per UE."""

    rate_mbps: float = 2.0

    def __post_init__(self) -> None:
        if self.rate_mbps <= 0:
            raise ValueError(f"rate_mbps must be positive, got {self.rate_mbps}")

    def source(self, ue_id: int, seed: int = 0) -> TrafficSource:
        return _CBRSource(self.rate_mbps)


@dataclass(frozen=True, kw_only=True)
class PoissonTraffic:
    """Poisson packet arrivals averaging ``rate_mbps`` per UE."""

    rate_mbps: float = 2.0
    packet_bytes: float = 1500.0

    def __post_init__(self) -> None:
        if self.rate_mbps <= 0:
            raise ValueError(f"rate_mbps must be positive, got {self.rate_mbps}")
        if self.packet_bytes <= 0:
            raise ValueError(f"packet_bytes must be positive, got {self.packet_bytes}")

    def source(self, ue_id: int, seed: int = 0) -> TrafficSource:
        return _PoissonSource(self.rate_mbps, self.packet_bytes, seed, ue_id)


@dataclass(frozen=True, kw_only=True)
class OnOffVideoTraffic:
    """Bursty video: ``rate_mbps`` peak during exponential ON spells."""

    rate_mbps: float = 4.0
    mean_on_s: float = 4.0
    mean_off_s: float = 2.0

    def __post_init__(self) -> None:
        if self.rate_mbps <= 0:
            raise ValueError(f"rate_mbps must be positive, got {self.rate_mbps}")
        if self.mean_on_s <= 0 or self.mean_off_s <= 0:
            raise ValueError("mean_on_s and mean_off_s must be positive")

    def source(self, ue_id: int, seed: int = 0) -> TrafficSource:
        return _OnOffSource(self.rate_mbps, self.mean_on_s, self.mean_off_s, seed, ue_id)


_REGISTRY: Dict[str, Callable[..., object]] = {}


def register_traffic_model(name: str, factory: Callable[..., object]) -> None:
    """Register a traffic-model factory under a string name."""
    if not name:
        raise ValueError("traffic model name must be non-empty")
    _REGISTRY[name] = factory


def available_traffic_models() -> Tuple[str, ...]:
    """Registered workload names, sorted."""
    return tuple(sorted(_REGISTRY))


def make_traffic_model(name: str, **params):
    """Instantiate a registered traffic model by name.

    As with the interpolator registry, unknown keyword parameters are
    ignored for dataclass factories so one config can carry the union
    of every model's knobs (``packet_bytes`` means nothing to CBR and
    is silently unused by it).
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(available_traffic_models())
        raise ValueError(f"unknown traffic model {name!r} (known: {known})") from None
    accepted = getattr(factory, "__dataclass_fields__", None)
    if accepted is not None:
        params = {k: v for k, v in params.items() if k in accepted}
    return factory(**params)


register_traffic_model("full_buffer", FullBufferTraffic)
register_traffic_model("cbr", CBRTraffic)
register_traffic_model("poisson", PoissonTraffic)
register_traffic_model("onoff_video", OnOffVideoTraffic)

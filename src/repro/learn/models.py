"""The model zoo: pure-numpy regressors with a pinned RNG contract.

Two model kinds, both with ``fit``/``predict`` and byte-deterministic
serialization:

``ridge``
    Closed-form ridge regression over standardized features.  No RNG
    at all — training is a single ``np.linalg.solve``.
``mlp``
    One-hidden-layer tanh network trained by full-batch gradient
    descent with a fixed iteration count.  The *only* RNG draws in its
    life are the weight init, taken from
    ``SeedSequence(seed, spawn_key=(LEARN_SPAWN_KEY, 3))``; training
    and inference draw nothing, so ``fit`` on the same data is
    bit-reproducible and ``predict`` is a pure function.

Serialized artifacts pair a deterministic ``.npz`` of weights with a
JSON sidecar carrying the feature schema (names + version), the model
kind and hyperparameters, and the fingerprints of the code that
produced them; :func:`load_model` refuses schema mismatches loudly
instead of predicting through a stale feature order.

The zero model — every output weight exactly 0.0 — is the degeneration
anchor: adapters holding one are contractually bit-identical to their
baseline (``learned`` interpolation collapses to plain IDW).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.learn import io as lio
from repro.learn.constants import (
    FEATURE_SCHEMA_VERSION,
    LEARN_SPAWN_KEY,
    MODEL_DEFAULTS,
    MODEL_SCHEMA,
)

#: Numerical floor for feature/target standard deviations.
_STD_FLOOR = 1e-9


def _standardize_stats(X: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    mean = X.mean(axis=0)
    std = np.maximum(X.std(axis=0), _STD_FLOOR)
    return mean, std


@dataclass
class RidgeModel:
    """Closed-form ridge regression on standardized features."""

    kind: str = field(default="ridge", init=False)
    l2: float = MODEL_DEFAULTS["ridge"]["l2"]
    coef: Optional[np.ndarray] = None
    intercept: float = 0.0
    x_mean: Optional[np.ndarray] = None
    x_std: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RidgeModel":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if len(X) != len(y):
            raise ValueError(f"{len(X)} rows vs {len(y)} targets")
        if len(X) == 0:
            raise ValueError("cannot fit on an empty dataset")
        self.x_mean, self.x_std = _standardize_stats(X)
        Z = (X - self.x_mean) / self.x_std
        A = Z.T @ Z + self.l2 * np.eye(Z.shape[1])
        b = Z.T @ y
        self.coef = np.linalg.solve(A, b)
        self.intercept = float(y.mean() - (Z.mean(axis=0) @ self.coef))
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.coef is None:
            raise RuntimeError("model is not fitted")
        Z = (np.asarray(X, dtype=float) - self.x_mean) / self.x_std
        return Z @ self.coef + self.intercept

    @property
    def is_zero(self) -> bool:
        """True when ``predict`` is identically 0.0."""
        return (
            self.coef is not None
            and not np.any(self.coef)
            and self.intercept == 0.0
        )

    def _arrays(self) -> Dict[str, np.ndarray]:
        return {
            "coef": self.coef,
            "intercept": np.float64(self.intercept),
            "x_mean": self.x_mean,
            "x_std": self.x_std,
        }

    def _hyperparams(self) -> Dict:
        return {"l2": self.l2}

    @classmethod
    def _from_arrays(cls, arrays: Dict, hyper: Dict) -> "RidgeModel":
        m = cls(l2=float(hyper["l2"]))
        m.coef = arrays["coef"]
        m.intercept = float(arrays["intercept"])
        m.x_mean = arrays["x_mean"]
        m.x_std = arrays["x_std"]
        return m


@dataclass
class TinyMLP:
    """One-hidden-layer tanh regressor, full-batch GD, fixed seed."""

    kind: str = field(default="mlp", init=False)
    hidden: int = MODEL_DEFAULTS["mlp"]["hidden"]
    lr: float = MODEL_DEFAULTS["mlp"]["lr"]
    n_iter: int = MODEL_DEFAULTS["mlp"]["n_iter"]
    seed: int = MODEL_DEFAULTS["mlp"]["seed"]
    W1: Optional[np.ndarray] = None
    b1: Optional[np.ndarray] = None
    W2: Optional[np.ndarray] = None
    b2: float = 0.0
    x_mean: Optional[np.ndarray] = None
    x_std: Optional[np.ndarray] = None
    y_mean: float = 0.0
    y_std: float = 1.0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "TinyMLP":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if len(X) != len(y):
            raise ValueError(f"{len(X)} rows vs {len(y)} targets")
        if len(X) == 0:
            raise ValueError("cannot fit on an empty dataset")
        d = X.shape[1]
        # The pinned init draw schedule: W1 then W2, nothing else, ever.
        rng = np.random.default_rng(
            np.random.SeedSequence(self.seed, spawn_key=(LEARN_SPAWN_KEY, 3))
        )
        self.W1 = rng.normal(0.0, 1.0 / np.sqrt(d), (d, self.hidden))
        self.b1 = np.zeros(self.hidden)
        self.W2 = rng.normal(0.0, 1.0 / np.sqrt(self.hidden), self.hidden)
        self.b2 = 0.0
        self.x_mean, self.x_std = _standardize_stats(X)
        self.y_mean = float(y.mean())
        self.y_std = float(max(y.std(), _STD_FLOOR))
        Z = (X - self.x_mean) / self.x_std
        t = (y - self.y_mean) / self.y_std
        n = len(Z)
        for _ in range(self.n_iter):
            H = np.tanh(Z @ self.W1 + self.b1)
            pred = H @ self.W2 + self.b2
            err = pred - t
            gW2 = H.T @ err / n
            gb2 = float(err.mean())
            dH = np.outer(err, self.W2) * (1.0 - H * H)
            gW1 = Z.T @ dH / n
            gb1 = dH.mean(axis=0)
            self.W2 = self.W2 - self.lr * gW2
            self.b2 = self.b2 - self.lr * gb2
            self.W1 = self.W1 - self.lr * gW1
            self.b1 = self.b1 - self.lr * gb1
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.W1 is None:
            raise RuntimeError("model is not fitted")
        Z = (np.asarray(X, dtype=float) - self.x_mean) / self.x_std
        H = np.tanh(Z @ self.W1 + self.b1)
        return (H @ self.W2 + self.b2) * self.y_std + self.y_mean

    @property
    def is_zero(self) -> bool:
        """True when ``predict`` is identically 0.0."""
        return (
            self.W2 is not None
            and not np.any(self.W2)
            and self.b2 == 0.0
            and self.y_mean == 0.0
        )

    def _arrays(self) -> Dict[str, np.ndarray]:
        return {
            "W1": self.W1,
            "b1": self.b1,
            "W2": self.W2,
            "b2": np.float64(self.b2),
            "x_mean": self.x_mean,
            "x_std": self.x_std,
            "y_mean": np.float64(self.y_mean),
            "y_std": np.float64(self.y_std),
        }

    def _hyperparams(self) -> Dict:
        return {
            "hidden": self.hidden,
            "lr": self.lr,
            "n_iter": self.n_iter,
            "seed": self.seed,
        }

    @classmethod
    def _from_arrays(cls, arrays: Dict, hyper: Dict) -> "TinyMLP":
        m = cls(
            hidden=int(hyper["hidden"]),
            lr=float(hyper["lr"]),
            n_iter=int(hyper["n_iter"]),
            seed=int(hyper["seed"]),
        )
        m.W1 = arrays["W1"]
        m.b1 = arrays["b1"]
        m.W2 = arrays["W2"]
        m.b2 = float(arrays["b2"])
        m.x_mean = arrays["x_mean"]
        m.x_std = arrays["x_std"]
        m.y_mean = float(arrays["y_mean"])
        m.y_std = float(arrays["y_std"])
        return m


MODEL_KINDS = {"ridge": RidgeModel, "mlp": TinyMLP}


def make_model(kind: str, **hyper):
    """Instantiate an unfitted model of a registered kind."""
    try:
        cls = MODEL_KINDS[kind]
    except KeyError:
        known = ", ".join(sorted(MODEL_KINDS))
        raise ValueError(f"unknown model kind {kind!r} (known: {known})") from None
    return cls(**hyper)


def zero_model(n_features: int) -> RidgeModel:
    """A model whose ``predict`` is identically 0.0 (the degeneration anchor)."""
    m = RidgeModel()
    m.coef = np.zeros(n_features)
    m.intercept = 0.0
    m.x_mean = np.zeros(n_features)
    m.x_std = np.ones(n_features)
    return m


class ModelSchemaError(ValueError):
    """A serialized model's schema does not match this build."""


def save_model(
    model,
    path: "Path | str",
    feature_names: Sequence[str],
    target_name: str,
    fingerprint: str = "",
) -> Path:
    """Serialize a fitted model (weights ``.npz`` + JSON sidecar).

    ``path`` is the ``.npz`` path; the sidecar lands next to it with a
    ``.json`` suffix.  Both files are byte-deterministic functions of
    the model and metadata.
    """
    path = Path(path)
    lio.save_arrays(path, model._arrays())
    lio.save_json(
        path.with_suffix(".json"),
        {
            "schema": MODEL_SCHEMA,
            "kind": model.kind,
            "feature_schema_version": FEATURE_SCHEMA_VERSION,
            "feature_names": list(feature_names),
            "target_name": target_name,
            "hyperparams": model._hyperparams(),
            "fingerprint": fingerprint,
        },
    )
    return path


def load_model(path: "Path | str"):
    """Load a serialized model, validating its schema.

    Raises :class:`ModelSchemaError` on a schema-tag or
    feature-schema-version mismatch — an incompatible model must fail
    loudly, never predict through the wrong feature order.
    """
    path = Path(path)
    meta = lio.load_json(path.with_suffix(".json"))
    if meta.get("schema") != MODEL_SCHEMA:
        raise ModelSchemaError(
            f"{path}: schema {meta.get('schema')!r} != {MODEL_SCHEMA!r}"
        )
    if meta.get("feature_schema_version") != FEATURE_SCHEMA_VERSION:
        raise ModelSchemaError(
            f"{path}: feature schema v{meta.get('feature_schema_version')} "
            f"!= this build's v{FEATURE_SCHEMA_VERSION}"
        )
    kind = meta.get("kind")
    if kind not in MODEL_KINDS:
        raise ModelSchemaError(f"{path}: unknown model kind {kind!r}")
    arrays = lio.load_arrays(path)
    model = MODEL_KINDS[kind]._from_arrays(arrays, meta["hyperparams"])
    model.feature_names = tuple(meta["feature_names"])
    model.target_name = meta["target_name"]
    return model

"""Byte-deterministic artifact I/O for the learned-control subsystem.

``np.savez`` stamps zip entries with the current wall clock, so two
identical exports differ on disk.  The writers here produce ``.npz``
files that are byte-for-byte functions of their contents alone: entries
are written uncompressed in sorted order with a pinned DOS timestamp,
each holding a standard ``.npy`` serialization — ``np.load`` reads them
like any other ``.npz``.  JSON sidecars go through one
``sort_keys=True`` dump.  All writes are atomic (temp + ``os.replace``),
matching :mod:`repro.experiments.artifacts`.
"""

from __future__ import annotations

import io
import json
import os
import tempfile
import zipfile
from pathlib import Path
from typing import Dict

import numpy as np

#: Pinned zip-entry timestamp (the DOS epoch).
_FIXED_DATE = (1980, 1, 1, 0, 0, 0)


def _atomic_write_bytes(path: Path, payload: bytes) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(payload)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def save_arrays(path: "Path | str", arrays: Dict[str, np.ndarray]) -> Path:
    """Write a deterministic ``.npz`` of named arrays.

    Entry order, compression, and timestamps are pinned, so the output
    bytes depend only on the array names and contents.
    """
    path = Path(path)
    buf = io.BytesIO()
    with zipfile.ZipFile(buf, "w", zipfile.ZIP_STORED) as zf:
        for name in sorted(arrays):
            arr = np.asarray(arrays[name])
            if not arr.flags["C_CONTIGUOUS"]:
                # NB: not ascontiguousarray — that would promote 0-d
                # scalars (model intercepts) to shape (1,).
                arr = np.ascontiguousarray(arr)
            entry = io.BytesIO()
            np.lib.format.write_array(entry, arr, allow_pickle=False)
            info = zipfile.ZipInfo(name + ".npy", date_time=_FIXED_DATE)
            zf.writestr(info, entry.getvalue())
    _atomic_write_bytes(path, buf.getvalue())
    return path


def load_arrays(path: "Path | str") -> Dict[str, np.ndarray]:
    """Read every array of a ``.npz`` written by :func:`save_arrays`."""
    with np.load(Path(path), allow_pickle=False) as npz:
        return {name: npz[name] for name in npz.files}


def save_json(path: "Path | str", payload: Dict) -> Path:
    """Write a byte-stable JSON sidecar (sorted keys, trailing newline)."""
    path = Path(path)
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    _atomic_write_bytes(path, text.encode())
    return path


def load_json(path: "Path | str") -> Dict:
    with open(Path(path)) as fh:
        return json.load(fh)

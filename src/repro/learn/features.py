"""Feature extraction shared by the dataset factory and the adapters.

The one rule of this module: every feature must be computable at
inference time from controller-visible state alone (REM contents, KPI
history) with **zero RNG draws** — the dataset factory and the
inference adapters call the *same* functions, so train and serve can
never skew.  Feature column orders are pinned in
:mod:`repro.learn.constants` and versioned by
``FEATURE_SCHEMA_VERSION``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from scipy.spatial import cKDTree

from repro.geo.grid import GridSpec
from repro.learn.constants import (
    FEATURE_K,
    REM_FEATURE_NAMES,
    TRIGGER_FEATURE_NAMES,
    TRIGGER_HORIZON,
    TRIGGER_WINDOW,
)


def rem_features(
    grid: GridSpec,
    values: np.ndarray,
    base: np.ndarray,
    prior: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-cell features for the REM-residual model.

    Parameters
    ----------
    grid:
        The REM grid.
    values:
        ``(ny, nx)`` measured map with NaN marking unmeasured cells
        (the interpolation protocol's input).
    base:
        The full IDW-interpolated map the residual rides on.
    prior:
        Optional FSPL-seed prior map (the interpolation ``fallback``).

    Returns
    -------
    ``(X, missing)`` — ``X`` is ``(n_missing, len(REM_FEATURE_NAMES))``
    in row-major cell order over the unmeasured cells; ``missing`` is
    the boolean ``(ny, nx)`` mask selecting them.  Requires at least
    one measured cell (callers fall back to plain IDW otherwise).
    """
    values = np.asarray(values, dtype=float)
    base = np.asarray(base, dtype=float)
    measured = ~np.isnan(values)
    missing = ~measured
    n_measured = int(measured.sum())
    if n_measured == 0:
        raise ValueError("rem_features needs at least one measured cell")
    n_missing = int(missing.sum())
    if n_missing == 0:
        return np.zeros((0, len(REM_FEATURE_NAMES))), missing

    centers = grid.centers_flat()  # row-major (iy, ix) order
    measured_flat = measured.ravel()
    tree = cKDTree(centers[measured_flat])
    measured_vals = values.ravel()[measured_flat]

    query_pts = centers[missing.ravel()]
    k = min(FEATURE_K, n_measured)
    dist, idx = tree.query(query_pts, k=k)
    dist = np.atleast_2d(dist.T).T if dist.ndim == 1 else dist
    idx = np.atleast_2d(idx.T).T if idx.ndim == 1 else idx

    neigh_vals = measured_vals[idx]
    idw_db = base[missing]
    d_nearest = dist[:, 0]
    d_mean = dist.mean(axis=1)
    spread = neigh_vals.std(axis=1)
    if prior is not None:
        prior_gap = np.asarray(prior, dtype=float)[missing] - idw_db
    else:
        prior_gap = np.zeros_like(idw_db)
    measured_frac = np.full_like(idw_db, n_measured / values.size)

    X = np.column_stack(
        [idw_db, d_nearest, d_mean, spread, prior_gap, measured_frac]
    )
    return X, missing


def trigger_features(ratios: np.ndarray) -> np.ndarray:
    """Features of one or many KPI windows.

    ``ratios`` is ``(TRIGGER_WINDOW,)`` or ``(n, TRIGGER_WINDOW)``,
    oldest sample first, each a KPI value divided by the epoch
    reference.  Returns ``(n, len(TRIGGER_FEATURE_NAMES))``.
    """
    r = np.atleast_2d(np.asarray(ratios, dtype=float))
    if r.shape[1] != TRIGGER_WINDOW:
        raise ValueError(
            f"expected windows of {TRIGGER_WINDOW} samples, got {r.shape[1]}"
        )
    t = np.arange(TRIGGER_WINDOW, dtype=float)
    t_c = t - t.mean()
    slope = (r - r.mean(axis=1, keepdims=True)) @ t_c / (t_c @ t_c)
    return np.column_stack(
        [r[:, -1], r.mean(axis=1), r.min(axis=1), slope, r[:, -1] - r[:, 0]]
    )


def trace_to_windows(ratios: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Slice a KPI-ratio trace into (window features, lookahead targets).

    Each row pairs the features of one ``TRIGGER_WINDOW``-sample window
    with the *minimum* ratio over the following ``TRIGGER_HORIZON``
    samples — the quantity the learned trigger predicts.  Traces too
    short for one full window + horizon yield zero rows.
    """
    r = np.asarray(ratios, dtype=float).ravel()
    n = len(r) - TRIGGER_WINDOW - TRIGGER_HORIZON + 1
    if n <= 0:
        return np.zeros((0, len(TRIGGER_FEATURE_NAMES))), np.zeros(0)
    windows = np.lib.stride_tricks.sliding_window_view(r, TRIGGER_WINDOW)[:n]
    ahead = np.lib.stride_tricks.sliding_window_view(r, TRIGGER_HORIZON)[
        TRIGGER_WINDOW : TRIGGER_WINDOW + n
    ]
    return trigger_features(windows), ahead.min(axis=1)

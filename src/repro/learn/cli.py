"""``python -m repro.learn`` — export, train, eval.

Three subcommands covering the subsystem's lifecycle::

    python -m repro.learn export --table rem_residual --out runs/learn
    python -m repro.learn train --dataset runs/learn/rem_residual_<key>.npz \
        --kind ridge --out runs/learn/rem_model.npz
    python -m repro.learn eval

``export`` writes byte-deterministic training tables; ``train`` fits a
model-zoo model on one and serializes it with provenance; ``eval``
runs the ``learned-control`` experiment (train-on-train-seeds,
measure-on-held-out-seed) and prints its rows.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.learn.dataset import BUILDERS, export_dataset

    tables = list(BUILDERS) if args.table == "all" else [args.table]
    for table in tables:
        kwargs = {}
        if args.seeds is not None:
            kwargs["seeds"] = tuple(args.seeds)
        if args.terrains is not None and table != "sched_state":
            kwargs["terrains"] = tuple(args.terrains)
        dataset = BUILDERS[table](**kwargs)
        path = export_dataset(dataset, args.out)
        print(f"{table}: {len(dataset.y)} rows -> {path}")
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.learn.dataset import load_dataset
    from repro.learn.evaluate import save_trained, train_on

    dataset = load_dataset(args.dataset)
    model = train_on(dataset, args.kind)
    path = save_trained(model, dataset, args.out)
    import numpy as np

    mse = float(np.mean((model.predict(dataset.X) - dataset.y) ** 2))
    print(
        f"{args.kind} on {dataset.table} ({len(dataset.y)} rows): "
        f"train MSE {mse:.4f} -> {path}"
    )
    return 0


def _cmd_eval(args: argparse.Namespace) -> int:
    from repro.experiments.common import print_rows
    from repro.experiments.learned_control import EXPERIMENT

    result = EXPERIMENT.run(
        quick=not args.full,
        seeds=tuple(args.seeds) if args.seeds is not None else (2,),
    )
    print_rows(EXPERIMENT.title, result["rows"], result.get("paper"))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.learn",
        description="Learned RAN control: dataset export, training, evaluation.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_export = sub.add_parser("export", help="write deterministic training tables")
    p_export.add_argument(
        "--table",
        default="all",
        choices=["all", "rem_residual", "epoch_kpi", "sched_state"],
    )
    p_export.add_argument("--out", default="runs/learn")
    p_export.add_argument("--seeds", type=int, nargs="+", default=None)
    p_export.add_argument("--terrains", nargs="+", default=None)
    p_export.set_defaults(func=_cmd_export)

    p_train = sub.add_parser("train", help="fit a model on an exported table")
    p_train.add_argument("--dataset", required=True, help="exported .npz path")
    p_train.add_argument("--kind", default="ridge", choices=["ridge", "mlp"])
    p_train.add_argument("--out", required=True, help="model .npz output path")
    p_train.set_defaults(func=_cmd_train)

    p_eval = sub.add_parser("eval", help="run the learned-control ablation")
    p_eval.add_argument("--seeds", type=int, nargs="+", default=None)
    p_eval.add_argument("--full", action="store_true")
    p_eval.set_defaults(func=_cmd_eval)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

"""Pinned constants of the learned-control subsystem.

Everything that determines the *meaning* of a training table or a
serialized model lives here — feature schemas, the RNG spawn key, model
hyperparameter defaults — so that
:func:`repro.experiments.artifacts.code_fingerprint` can fold it into
the experiment cache key (stale cached points invalidate when learned
components change) and so that model/dataset artifacts can refuse to
load across incompatible schema versions instead of silently predicting
garbage.

This module must stay import-light (stdlib only): the experiment
artifact store imports it on every run, and nothing here may register
anything or touch numpy state.
"""

from __future__ import annotations

#: Version of the feature schemas below.  Bump whenever a feature's
#: definition (not just its name) changes; serialized models and
#: exported datasets carry it and refuse to mix versions.
FEATURE_SCHEMA_VERSION = 1

#: SeedSequence spawn key under which ALL learn-side randomness lives
#: (dataset synthesis streams, model weight init).  The RNG contract:
#: streams are ``SeedSequence(seed, spawn_key=(LEARN_SPAWN_KEY, lane,
#: ...))`` with lane 0 = REM-residual masks, lane 1 = scheduler-state
#: traces, lane 2 = epoch-KPI mobility, lane 3 = model init; *zero*
#: draws happen at inference time.
LEARN_SPAWN_KEY = 0x4C52  # "LR"

#: Features of the REM-residual table (one row per unmeasured REM
#: cell), in column order.  All are computable from REM state alone at
#: inference time — no ground truth, no RNG:
#:
#: ``idw_db``         the IDW estimate at the cell
#: ``d_nearest_m``    distance to the nearest measured cell
#: ``d_mean_k_m``     mean distance of the FEATURE_K nearest measured cells
#: ``spread_k_db``    std-dev of the FEATURE_K nearest measured values
#: ``prior_gap_db``   prior (FSPL seed) minus IDW estimate; 0 with no prior
#: ``measured_frac``  fraction of the grid with at least one measurement
REM_FEATURE_NAMES = (
    "idw_db",
    "d_nearest_m",
    "d_mean_k_m",
    "spread_k_db",
    "prior_gap_db",
    "measured_frac",
)

#: Regression target of the REM-residual table: truth minus IDW, in dB.
REM_TARGET_NAME = "residual_db"

#: Neighbour count the REM feature extractor queries (independent of
#: the interpolator's own ``k_neighbors`` so feature meaning is stable
#: across interpolator configs).
FEATURE_K = 8

#: Cap on the residual correction a learned interpolator may apply per
#: cell, in dB.  Bounds the damage of a bad model: learned REM error is
#: at most IDW error plus this.
RESIDUAL_CAP_DB = 12.0

#: Soft-threshold (dead-band) on residual corrections, in dB: the
#: applied correction is ``sign(p) * max(0, |p| - deadband)``.  Small
#: predictions are mostly the model's learned bias plus noise —
#: applying them degrades maps IDW already handles well — while large
#: predictions (deep-shadow cells flagged by a big prior gap) carry
#: real signal.  The dead-band keeps the wins and drops the noise.
RESIDUAL_DEADBAND_DB = 2.0

#: KPI-trigger feature window: the predictor sees the last
#: TRIGGER_WINDOW KPI samples (as ratios to the epoch reference).
TRIGGER_WINDOW = 8

#: Prediction horizon: the trigger model predicts the *minimum* KPI
#: ratio over the next TRIGGER_HORIZON samples.
TRIGGER_HORIZON = 4

#: Features of the epoch-KPI table (one row per sliding window over a
#: serving-time KPI trace), in column order.  ``r`` = KPI / reference:
#:
#: ``r_last``      most recent ratio
#: ``r_mean``      window mean
#: ``r_min``       window minimum
#: ``r_slope``     least-squares slope per sample over the window
#: ``r_drop``      newest minus oldest ratio
TRIGGER_FEATURE_NAMES = ("r_last", "r_mean", "r_min", "r_slope", "r_drop")

#: Regression target of the epoch-KPI table.
TRIGGER_TARGET_NAME = "min_ratio_ahead"

#: Ratio band outside which a KPI window is considered corrupted (the
#: quality flag of the trigger's trust gate): any sample ratio above
#: this, below zero, or non-finite falls back to the reactive rule.
TRIGGER_TRUST_RATIO = 4.0

#: Features of the scheduler-state table (one row per TTI batch of a
#: MAC simulation), in column order — the seed data for a future
#: learned TTI scheduler:
#:
#: ``offered_mbps``  aggregate offered rate this batch
#: ``backlog_mb``    end-of-batch aggregate RLC backlog (MB, clipped finite)
#: ``fairness``      Jain fairness of served rates
#: ``n_ues``         population size
#: ``mean_snr_db``   mean per-UE SNR this batch
SCHED_FEATURE_NAMES = (
    "offered_mbps",
    "backlog_mb",
    "fairness",
    "n_ues",
    "mean_snr_db",
)

#: Regression target of the scheduler-state table.
SCHED_TARGET_NAME = "served_mbps"

#: Model-zoo hyperparameter defaults; part of the fingerprint because
#: a trained-with-different-defaults model is a different model.
MODEL_DEFAULTS = {
    "ridge": {"l2": 1e-3},
    "mlp": {"hidden": 16, "lr": 0.05, "n_iter": 300, "seed": 0},
}

#: Schema tags of the on-disk artifacts.
DATASET_SCHEMA = "repro.learn.dataset/v1"
MODEL_SCHEMA = "repro.learn.model/v1"


def fingerprint_payload() -> dict:
    """The JSON-able constants block folded into ``code_fingerprint``.

    Changing anything here invalidates every cached experiment point —
    which is exactly right: learned components feed experiment records.
    """
    return {
        "feature_schema_version": FEATURE_SCHEMA_VERSION,
        "spawn_key": LEARN_SPAWN_KEY,
        "rem_features": list(REM_FEATURE_NAMES),
        "feature_k": FEATURE_K,
        "residual_cap_db": RESIDUAL_CAP_DB,
        "residual_deadband_db": RESIDUAL_DEADBAND_DB,
        "trigger_features": list(TRIGGER_FEATURE_NAMES),
        "trigger_window": TRIGGER_WINDOW,
        "trigger_horizon": TRIGGER_HORIZON,
        "trigger_trust_ratio": TRIGGER_TRUST_RATIO,
        "sched_features": list(SCHED_FEATURE_NAMES),
        "model_defaults": MODEL_DEFAULTS,
    }

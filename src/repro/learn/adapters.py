"""The ``learned`` interpolator: a model residual riding on plain IDW.

Registered (by :mod:`repro.learn`) under the name ``"learned"`` in the
same registry as ``"idw"`` and ``"kriging"``, so it threads through
:class:`~repro.core.config.SkyRANConfig` and the interpolation ablation
exactly like the analytic schemes.

The degeneration contract, which the property tests pin bitwise: with
no model (``model_path=None``), a model that fails to load, a zero
model, or nothing to correct, :meth:`LearnedInterpolator.interpolate`
returns **the object produced by the same** :func:`idw_interpolate`
**call an** :class:`~repro.rem.interpolate.IDWInterpolator` **with the
same knobs would make** — not a recomputation, not a copy — so the
learned scheme at rest is bit-identical to the paper baseline and the
default configuration cannot drift by existing.

When a real model is loaded, its predicted residual is added only at
unmeasured cells, soft-thresholded by ``RESIDUAL_DEADBAND_DB`` (small
predictions are bias + noise; only confident ones act) and clipped to
``±RESIDUAL_CAP_DB`` (bounding worst-case damage to IDW error + cap),
with non-finite predictions zeroed and counted.  Every refusal path
bumps a ``learn.fallback.*`` perf counter so runs can prove how often
the model actually spoke.

There is deliberately **no** ``interpolate_tile``: per-tile matmuls can
differ from the full-map matmul by an ulp across BLAS batch shapes,
which would break the tile==slice contract the streaming path asserts.
Streaming REM queries on a ``learned`` REM therefore take the existing
``rem.tile_fallback`` full-map path.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.geo.grid import GridSpec
from repro.learn.constants import (
    REM_FEATURE_NAMES,
    RESIDUAL_CAP_DB,
    RESIDUAL_DEADBAND_DB,
)
from repro.learn.features import rem_features
from repro.perf import perf
from repro.rem.idw import idw_interpolate
from repro.rem.interpolate import _masked_values

#: Memoized model loads, keyed by path.  ``None`` marks a load that
#: failed (we warn once, count every use, and never retry the path).
_MODEL_CACHE: Dict[str, Optional[object]] = {}


def _load_model_cached(path: str) -> Optional[object]:
    if path in _MODEL_CACHE:
        return _MODEL_CACHE[path]
    from repro.learn.models import load_model

    try:
        model = load_model(path)
    except Exception as exc:  # noqa: BLE001 - any load failure degrades
        warnings.warn(
            f"learned interpolator: cannot load model {path!r} ({exc}); "
            "degrading to plain IDW",
            RuntimeWarning,
            stacklevel=3,
        )
        model = None
    _MODEL_CACHE[path] = model
    return model


def clear_model_cache() -> None:
    """Drop memoized model loads (tests re-point paths at new files)."""
    _MODEL_CACHE.clear()


@dataclass(frozen=True, kw_only=True)
class LearnedInterpolator:
    """Residual-correction interpolation: IDW plus a learned term.

    Carries the IDW knobs (same names as
    :class:`~repro.rem.interpolate.IDWInterpolator`, so one config
    serves both) plus ``model_path`` pointing at a serialized
    REM-residual model from :mod:`repro.learn.models`.
    """

    power: float = 2.0
    k_neighbors: int = 12
    max_distance_m: Optional[float] = None
    model_path: Optional[str] = None

    def interpolate(
        self,
        grid: GridSpec,
        values: np.ndarray,
        measured_mask: Optional[np.ndarray] = None,
        fallback: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        masked = _masked_values(values, measured_mask)
        base = idw_interpolate(
            grid,
            masked,
            power=self.power,
            k_neighbors=self.k_neighbors,
            max_distance_m=self.max_distance_m,
            fallback=fallback,
        )
        if self.model_path is None:
            perf.count("learn.fallback.no_model")
            return base
        model = _load_model_cached(str(self.model_path))
        if model is None:
            perf.count("learn.fallback.model_load")
            return base
        names = getattr(model, "feature_names", None)
        if names is not None and tuple(names) != REM_FEATURE_NAMES:
            perf.count("learn.fallback.feature_mismatch")
            return base
        if getattr(model, "is_zero", False):
            perf.count("learn.fallback.zero_model")
            return base
        measured = ~np.isnan(masked)
        if not measured.any():
            perf.count("learn.fallback.no_measurements")
            return base
        if measured.all():
            return base
        X, missing = rem_features(grid, masked, base, fallback)
        resid = np.asarray(model.predict(X), dtype=float)
        bad = ~np.isfinite(resid)
        if bad.any():
            perf.count("learn.rem.nonfinite_pred", int(bad.sum()))
            resid = np.where(bad, 0.0, resid)
        resid = np.sign(resid) * np.maximum(
            0.0, np.abs(resid) - RESIDUAL_DEADBAND_DB
        )
        resid = np.clip(resid, -RESIDUAL_CAP_DB, RESIDUAL_CAP_DB)
        out = base.copy()
        out[missing] = base[missing] + resid
        perf.count("learn.rem.applied")
        return out

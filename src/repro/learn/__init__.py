"""Learned RAN control: training, inference, and evaluation.

Importing this package is the opt-in switch: it registers the
``"learned"`` interpolator in the REM registry (nothing else touches
global state).  The default simulation path never imports
``repro.learn``, so default-config runs are byte-identical with or
without this subsystem installed — the experiment harness and the CLI
import it; ``repro.sim`` does not.

Layers:

- :mod:`repro.learn.dataset` — deterministic training-table exports
- :mod:`repro.learn.models` — the pure-numpy model zoo
- :mod:`repro.learn.adapters` / :mod:`repro.learn.trigger` — inference
  adapters behind the existing registries
- :mod:`repro.learn.evaluate` — the ablation/eval harness behind
  ``python -m repro.learn``
"""

from __future__ import annotations

from repro.learn.adapters import LearnedInterpolator, clear_model_cache
from repro.learn.constants import FEATURE_SCHEMA_VERSION, LEARN_SPAWN_KEY
from repro.learn.models import load_model, make_model, save_model, zero_model
from repro.learn.trigger import CollapsePredictor, make_predictor
from repro.rem.interpolate import available_interpolators, register_interpolator

if "learned" not in available_interpolators():
    register_interpolator("learned", LearnedInterpolator)

__all__ = [
    "CollapsePredictor",
    "FEATURE_SCHEMA_VERSION",
    "LEARN_SPAWN_KEY",
    "LearnedInterpolator",
    "clear_model_cache",
    "load_model",
    "make_model",
    "make_predictor",
    "save_model",
    "zero_model",
]

"""The dataset factory: deterministic training tables from the simulator.

Three tables, each a ``(X, y)`` regression problem whose features the
inference adapters can recompute from controller-visible state:

``rem_residual``
    One row per unmeasured REM cell across synthetic measurement
    campaigns: ground-truth SNR maps from the channel oracle, masked by
    seeded random measurement patterns, interpolated by IDW — features
    from :func:`repro.learn.features.rem_features`, target
    ``truth - IDW`` in dB.  This is what the ``learned`` interpolator
    trains on.
``epoch_kpi``
    One row per sliding window over serving-time KPI traces: UEs churn
    position under a seeded mobility stream while the UAV holds its
    placement, and the aggregate-throughput ratio decays — features
    from :func:`repro.learn.features.trigger_features`, target the
    minimum ratio over the next ``TRIGGER_HORIZON`` samples.  This is
    what the ``learned`` epoch trigger trains on.
``sched_state``
    One row per TTI batch of a MAC simulation under varying load and
    SNR — the seed data for a future learned TTI scheduler.

Exports are versioned and deterministic: arrays go through the
byte-stable writer of :mod:`repro.learn.io`, the JSON sidecar carries
the feature schema and both fingerprints (``code_fingerprint`` of the
experiment harness and the learn-constants payload), and the file stem
embeds a content key over the generating spec — re-exporting the same
spec from the same code reproduces every byte; changing either misses
cleanly, exactly like the experiment point cache.

RNG contract: each table draws from its own lane of
``SeedSequence(seed, spawn_key=(LEARN_SPAWN_KEY, lane))`` (lane 0 =
REM masks, lane 1 = scheduler traces, lane 2 = KPI mobility); nothing
here touches global RNG state.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.learn import io as lio
from repro.learn.constants import (
    DATASET_SCHEMA,
    FEATURE_SCHEMA_VERSION,
    LEARN_SPAWN_KEY,
    REM_FEATURE_NAMES,
    REM_TARGET_NAME,
    SCHED_FEATURE_NAMES,
    SCHED_TARGET_NAME,
    TRIGGER_FEATURE_NAMES,
    TRIGGER_TARGET_NAME,
)
from repro.learn.features import rem_features, trace_to_windows
from repro.rem.idw import idw_interpolate
from repro.sim.scenario import Scenario

#: Default terrain/seed grid of the quick export.
QUICK_TERRAINS = ("campus",)
QUICK_SEEDS = (0, 1)

#: Coarse raster/REM pitches keeping the quick export under a minute.
QUICK_CELL_M = 8.0
QUICK_REM_FACTOR = 2

#: Fixed serving altitude of the synthetic campaigns.
DATASET_ALTITUDE_M = 60.0


@dataclass(frozen=True)
class Dataset:
    """One in-memory training table plus its provenance metadata."""

    table: str
    X: np.ndarray
    y: np.ndarray
    feature_names: Tuple[str, ...]
    target_name: str
    spec: Dict

    @property
    def meta(self) -> Dict:
        """The JSON-able sidecar payload (fingerprints added on export)."""
        return {
            "schema": DATASET_SCHEMA,
            "table": self.table,
            "feature_schema_version": FEATURE_SCHEMA_VERSION,
            "feature_names": list(self.feature_names),
            "target_name": self.target_name,
            "n_rows": int(len(self.y)),
            "spec": self.spec,
        }


def _walkable(terrain):
    def check(x: float, y: float) -> bool:
        return terrain.height_at(x, y) < 2.0

    return check


def build_rem_residual(
    terrains: Sequence[str] = QUICK_TERRAINS,
    seeds: Sequence[int] = QUICK_SEEDS,
    n_ues: int = 4,
    cell_size_m: float = QUICK_CELL_M,
    campaigns_per_ue: int = 3,
) -> Dataset:
    """The REM-residual table: truth − IDW over masked truth maps.

    For every (terrain, seed, UE, campaign) a measured fraction is
    drawn from the lane-0 stream, truth cells are revealed at that
    rate, IDW fills the rest from the FSPL prior, and each unmeasured
    cell contributes one (features, residual) row.
    """
    rows_X, rows_y = [], []
    for terrain_name in terrains:
        for seed in seeds:
            scenario = Scenario.create(
                terrain_name, n_ues=n_ues, cell_size=cell_size_m, seed=seed
            )
            grid = scenario.channel.terrain.grid.coarsen(QUICK_REM_FACTOR)
            truth = scenario.truth_maps(DATASET_ALTITUDE_M, grid)
            rng = np.random.default_rng(
                np.random.SeedSequence(seed, spawn_key=(LEARN_SPAWN_KEY, 0))
            )
            for ue_idx, ue in enumerate(scenario.ues):
                prior_pl = scenario.channel.fspl_prior_map(
                    ue.xyz, DATASET_ALTITUDE_M, grid
                )
                prior = scenario.channel.link.snr_db(prior_pl)
                for _ in range(campaigns_per_ue):
                    frac = rng.uniform(0.03, 0.25)
                    mask = rng.random(grid.shape) < frac
                    if not mask.any() or mask.all():
                        continue
                    values = np.where(mask, truth[ue_idx], np.nan)
                    base = idw_interpolate(grid, values, fallback=prior)
                    X, missing = rem_features(grid, values, base, prior)
                    resid = truth[ue_idx][missing] - base[missing]
                    keep = np.isfinite(resid) & np.isfinite(X).all(axis=1)
                    rows_X.append(X[keep])
                    rows_y.append(resid[keep])
    X = np.concatenate(rows_X) if rows_X else np.zeros((0, len(REM_FEATURE_NAMES)))
    y = np.concatenate(rows_y) if rows_y else np.zeros(0)
    spec = {
        "terrains": list(terrains),
        "seeds": [int(s) for s in seeds],
        "n_ues": int(n_ues),
        "cell_size_m": float(cell_size_m),
        "campaigns_per_ue": int(campaigns_per_ue),
        "altitude_m": DATASET_ALTITUDE_M,
    }
    return Dataset(
        "rem_residual", X, y, REM_FEATURE_NAMES, REM_TARGET_NAME, spec
    )


def kpi_trace(
    scenario: Scenario,
    seed: int,
    n_steps: int = 64,
    move_fraction: float = 0.25,
    altitude_m: float = DATASET_ALTITUDE_M,
) -> np.ndarray:
    """One serving-time KPI-ratio trace for a scenario.

    The UAV parks over the initial UE centroid at ``altitude_m``;
    every step, ``move_fraction`` of the UEs relocate under the lane-2
    mobility stream and the aggregate mean throughput is re-measured at
    the held position.  Returns the trace normalized by its first
    sample (the epoch reference) — the unit the trigger thinks in.

    Mutates the scenario's UE positions (callers pass throwaway
    scenarios).
    """
    from repro.lte.throughput import throughput_mbps
    from repro.mobility.models import relocate_fraction

    terrain = scenario.terrain
    rng = np.random.default_rng(
        np.random.SeedSequence(seed, spawn_key=(LEARN_SPAWN_KEY, 2))
    )
    centroid = np.mean([ue.xyz[:2] for ue in scenario.ues], axis=0)
    pos = np.array([centroid[0], centroid[1], altitude_m])

    def kpi() -> float:
        snrs = scenario.channel.snr_to_many(
            pos, np.array([ue.xyz for ue in scenario.ues])
        )
        return float(np.mean(throughput_mbps(snrs)))

    walkable = _walkable(terrain)
    trace = [kpi()]
    for _ in range(n_steps):
        moved = relocate_fraction(
            scenario.ues, move_fraction, terrain.grid, rng, walkable
        )
        for ue in scenario.ues:
            if ue.ue_id in moved:
                ue.move_to(
                    ue.position.x,
                    ue.position.y,
                    terrain.height_at(ue.position.x, ue.position.y) + 1.5,
                )
        trace.append(kpi())
    ref = trace[0]
    if ref <= 0:
        return np.ones(len(trace))
    return np.asarray(trace) / ref


def build_epoch_kpi(
    terrains: Sequence[str] = QUICK_TERRAINS,
    seeds: Sequence[int] = QUICK_SEEDS,
    n_ues: int = 6,
    cell_size_m: float = QUICK_CELL_M,
    n_steps: int = 64,
    move_fraction: float = 0.25,
) -> Dataset:
    """The epoch-KPI table: window features → min ratio ahead."""
    rows_X, rows_y = [], []
    for terrain_name in terrains:
        for seed in seeds:
            scenario = Scenario.create(
                terrain_name, n_ues=n_ues, cell_size=cell_size_m, seed=seed
            )
            ratios = kpi_trace(
                scenario, seed, n_steps=n_steps, move_fraction=move_fraction
            )
            X, y = trace_to_windows(ratios)
            rows_X.append(X)
            rows_y.append(y)
    X = (
        np.concatenate(rows_X)
        if rows_X
        else np.zeros((0, len(TRIGGER_FEATURE_NAMES)))
    )
    y = np.concatenate(rows_y) if rows_y else np.zeros(0)
    spec = {
        "terrains": list(terrains),
        "seeds": [int(s) for s in seeds],
        "n_ues": int(n_ues),
        "cell_size_m": float(cell_size_m),
        "n_steps": int(n_steps),
        "move_fraction": float(move_fraction),
    }
    return Dataset(
        "epoch_kpi", X, y, TRIGGER_FEATURE_NAMES, TRIGGER_TARGET_NAME, spec
    )


def build_sched_state(
    seeds: Sequence[int] = QUICK_SEEDS,
    n_ues: int = 8,
    n_batches: int = 16,
    tti_batch: int = 200,
) -> Dataset:
    """The scheduler-state table: MAC batch summaries under load sweeps."""
    from repro.traffic.simulate import MACSimulation

    rows_X, rows_y = [], []
    for seed in seeds:
        rng = np.random.default_rng(
            np.random.SeedSequence(seed, spawn_key=(LEARN_SPAWN_KEY, 1))
        )
        for scheduler in ("round_robin", "proportional_fair"):
            sim = MACSimulation(
                range(1, n_ues + 1),
                traffic_model="poisson",
                scheduler=scheduler,
                seed=seed,
                traffic_params={"rate_mbps": 2.0},
            )
            for _ in range(n_batches):
                snrs = {
                    u: float(rng.uniform(-2.0, 22.0)) for u in sim.ue_ids
                }
                batch = sim.run(snrs, tti_batch)
                backlog = batch.total_backlog_bytes()
                backlog_mb = (
                    float(backlog) / 1e6 if np.isfinite(backlog) else 1e3
                )
                rows_X.append(
                    [
                        batch.aggregate_offered_mbps(),
                        backlog_mb,
                        batch.fairness(),
                        float(n_ues),
                        float(np.mean(list(snrs.values()))),
                    ]
                )
                rows_y.append(batch.aggregate_served_mbps())
    X = (
        np.asarray(rows_X, dtype=float)
        if rows_X
        else np.zeros((0, len(SCHED_FEATURE_NAMES)))
    )
    y = np.asarray(rows_y, dtype=float)
    spec = {
        "seeds": [int(s) for s in seeds],
        "n_ues": int(n_ues),
        "n_batches": int(n_batches),
        "tti_batch": int(tti_batch),
    }
    return Dataset(
        "sched_state", X, y, SCHED_FEATURE_NAMES, SCHED_TARGET_NAME, spec
    )


BUILDERS = {
    "rem_residual": build_rem_residual,
    "epoch_kpi": build_epoch_kpi,
    "sched_state": build_sched_state,
}


def dataset_key(table: str, spec: Dict, fingerprint: str) -> str:
    """Content key of one export: table + spec + code fingerprint."""
    from repro.experiments.artifacts import canonical_json

    payload = {
        "table": table,
        "spec": spec,
        "feature_schema_version": FEATURE_SCHEMA_VERSION,
        "fingerprint": fingerprint,
    }
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()[:16]


def export_dataset(
    dataset: Dataset, out_dir: "Path | str", fingerprint: Optional[str] = None
) -> Path:
    """Write a dataset to ``<out_dir>/<table>_<key>.npz`` (+ sidecar).

    ``fingerprint`` defaults to the experiment harness's
    ``code_fingerprint()`` (which already folds in the learn
    constants), so exports invalidate exactly when cached experiment
    points do.  Returns the ``.npz`` path; both files are
    byte-deterministic.
    """
    if fingerprint is None:
        from repro.experiments.artifacts import code_fingerprint

        fingerprint = code_fingerprint()
    key = dataset_key(dataset.table, dataset.spec, fingerprint)
    out_dir = Path(out_dir)
    path = out_dir / f"{dataset.table}_{key}.npz"
    lio.save_arrays(path, {"X": dataset.X, "y": dataset.y})
    meta = dataset.meta
    meta["key"] = key
    meta["fingerprint"] = fingerprint
    lio.save_json(path.with_suffix(".json"), meta)
    return path


def load_dataset(path: "Path | str") -> Dataset:
    """Load an exported dataset (``.npz`` path) back into memory."""
    path = Path(path)
    arrays = lio.load_arrays(path)
    meta = lio.load_json(path.with_suffix(".json"))
    if meta.get("schema") != DATASET_SCHEMA:
        raise ValueError(f"{path}: not a learn dataset ({meta.get('schema')!r})")
    if meta.get("feature_schema_version") != FEATURE_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: feature schema v{meta.get('feature_schema_version')} "
            f"!= this build's v{FEATURE_SCHEMA_VERSION}"
        )
    return Dataset(
        meta["table"],
        arrays["X"],
        arrays["y"],
        tuple(meta["feature_names"]),
        meta["target_name"],
        meta["spec"],
    )

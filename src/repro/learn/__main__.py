"""Entry point for ``python -m repro.learn``."""

import sys

from repro.learn.cli import main

sys.exit(main())

"""Training and evaluation harnesses for the learned components.

Thin, deterministic glue between the dataset factory and the adapters:
fit a model on exported (or freshly built) tables, then measure it the
way the paper measures things — REM accuracy in median |error| dB
against held-out truth maps, and trigger quality as (fire step, minimum
KPI ratio endured) on held-out KPI traces.  The ``learned_control``
experiment and the ``python -m repro.learn`` CLI both call these.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.learn.constants import MODEL_DEFAULTS
from repro.learn.dataset import (
    DATASET_ALTITUDE_M,
    QUICK_CELL_M,
    QUICK_REM_FACTOR,
    Dataset,
    kpi_trace,
)
from repro.learn.models import make_model


def train_on(dataset: Dataset, kind: str = "ridge", **hyper):
    """Fit a model of ``kind`` on a dataset; returns the fitted model.

    Hyperparameters default to ``MODEL_DEFAULTS[kind]``; training is
    deterministic (see :mod:`repro.learn.models`).
    """
    params = dict(MODEL_DEFAULTS.get(kind, {}))
    params.update(hyper)
    model = make_model(kind, **params)
    model.fit(dataset.X, dataset.y)
    return model


def save_trained(model, dataset: Dataset, path: "Path | str") -> Path:
    """Serialize a model trained on ``dataset`` with full provenance."""
    from repro.experiments.artifacts import code_fingerprint
    from repro.learn.models import save_model

    return save_model(
        model,
        path,
        feature_names=dataset.feature_names,
        target_name=dataset.target_name,
        fingerprint=code_fingerprint(),
    )


def rem_error_rows(
    terrain: str,
    seed: int,
    model_path: Optional[str],
    n_ues: int = 3,
    cell_size_m: float = QUICK_CELL_M,
    measured_frac: float = 0.06,
) -> List[Dict]:
    """Median REM |error| of idw / learned / zero-learned on held-out truth.

    Builds one held-out scenario (a seed the model never trained on),
    reveals ``measured_frac`` of each truth map, and interpolates the
    rest with plain IDW, the learned interpolator pointed at
    ``model_path``, and the learned interpolator with no model (the
    degeneration anchor — its row must equal IDW's exactly).  Every
    variant gets the FSPL prior as ``fallback``, matching how
    :meth:`repro.rem.map.REM.interpolated` calls interpolators in the
    controller (and how the training tables were built — the
    ``prior_gap_db`` feature must mean the same thing at train and
    serve time).
    """
    from repro.learn.adapters import clear_model_cache
    from repro.rem.accuracy import median_abs_error_db
    from repro.rem.interpolate import make_interpolator
    from repro.sim.scenario import Scenario

    import repro.learn  # noqa: F401  (registers the "learned" interpolator)

    scenario = Scenario.create(
        terrain, n_ues=n_ues, cell_size=cell_size_m, seed=seed
    )
    grid = scenario.terrain.grid.coarsen(QUICK_REM_FACTOR)
    truth = scenario.truth_maps(DATASET_ALTITUDE_M, grid)
    rng = np.random.default_rng(seed)
    variants = [
        ("idw", make_interpolator("idw")),
        ("learned", make_interpolator("learned", model_path=model_path)),
        ("learned-zero", make_interpolator("learned")),
    ]
    errs: Dict[str, List[float]] = {label: [] for label, _ in variants}
    clear_model_cache()
    for ue_idx, ue in enumerate(scenario.ues):
        prior = scenario.channel.link.snr_db(
            scenario.channel.fspl_prior_map(ue.xyz, DATASET_ALTITUDE_M, grid)
        )
        values = np.full(grid.shape, np.nan)
        idx = rng.choice(
            grid.num_cells,
            size=max(4, int(grid.num_cells * measured_frac)),
            replace=False,
        )
        values.flat[idx] = truth[ue_idx].flat[idx]
        for label, interp in variants:
            est = interp.interpolate(grid, values, fallback=prior)
            errs[label].append(median_abs_error_db(est, truth[ue_idx]))
    clear_model_cache()
    return [
        {"interp": label, "median_err_db": float(np.median(errs[label]))}
        for label, _ in variants
    ]


def trigger_trace_metrics(
    ratios: np.ndarray,
    margin: float = 0.1,
    debounce: int = 1,
    predictor=None,
) -> Tuple[Optional[int], float]:
    """Feed one normalized KPI trace through an epoch trigger.

    Returns ``(fire_step, min_ratio_endured)`` — the step index at
    which the trigger fired (None if it never did) and the lowest
    ratio served through up to and including that step.  A learned
    trigger that fires earlier endures a higher (or equal) minimum
    than the reactive rule on the same trace; it can never endure a
    lower one, because the predictor is only consulted on samples the
    reactive rule declined.
    """
    from repro.core.epoch import EpochTrigger

    trig = EpochTrigger(
        margin,
        debounce=debounce,
        metric="learned" if predictor is not None else "capacity",
    )
    trig.predictor = predictor
    trig.reset(1.0)
    ratios = np.asarray(ratios, dtype=float)
    for i, r in enumerate(ratios):
        if trig.update(float(r), t_s=float(i)):
            return i, float(ratios[: i + 1].min())
    return None, float(ratios.min()) if len(ratios) else 1.0


def trigger_eval(
    terrain: str,
    eval_seed: int,
    model,
    margin: float = 0.1,
    n_ues: int = 6,
    n_steps: int = 64,
    faults=None,
) -> Dict:
    """Reactive vs learned trigger on one held-out KPI trace.

    Returns a row with both fire steps and both endured minima, plus
    the ``learn.*`` counter deltas the learned pass produced (so
    callers can assert fallbacks actually fired under chaos).
    """
    from repro.learn.trigger import CollapsePredictor
    from repro.perf import perf
    from repro.sim.scenario import Scenario

    scenario = Scenario.create(
        terrain, n_ues=n_ues, cell_size=QUICK_CELL_M, seed=eval_seed
    )
    ratios = kpi_trace(scenario, eval_seed, n_steps=n_steps)
    reactive_fire, reactive_min = trigger_trace_metrics(ratios, margin=margin)
    predictor = CollapsePredictor(
        model=model, threshold=1.0 - margin, faults=faults
    )
    before = perf.counters()
    learned_fire, learned_min = trigger_trace_metrics(
        ratios, margin=margin, predictor=predictor
    )
    deltas = perf.counters_since(before)
    return {
        "terrain": terrain,
        "eval_seed": int(eval_seed),
        "reactive_fire": reactive_fire,
        "reactive_min": reactive_min,
        "learned_fire": learned_fire,
        "learned_min": learned_min,
        "learn_counters": {
            k: v for k, v in deltas.items() if k.startswith("learn.")
        },
    }

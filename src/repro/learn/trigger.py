"""The learned epoch trigger: predict the collapse before it happens.

The reactive Section 3.5 rule re-plans only *after* aggregate
performance has already fallen 10% below the epoch reference.  The
:class:`CollapsePredictor` watches the same KPI-ratio history the
trigger keeps and fires early when a trained model projects the
*minimum* ratio over the next ``TRIGGER_HORIZON`` samples below the
reactive threshold — trading a slightly earlier (never later) re-plan
for the throughput trough the reactive rule would have served through.

Trust gates — the predictor refuses (and the reactive rule stands
alone) whenever its input cannot be trusted, each refusal counted under
``learn.fallback.*``:

``fault_gate``     a fault injector is active: corrupted KPI samples in,
                   garbage predictions out, so chaos runs degrade to
                   exactly the reactive baseline (bit-identical — the
                   predictor touches nothing on this path)
``no_model``       no model configured or it failed to load
``cold_start``     fewer than ``TRIGGER_WINDOW`` samples this epoch
``untrusted``      a window ratio is non-finite, negative, or above
                   ``TRIGGER_TRUST_RATIO``
``nonfinite_pred`` the model returned a non-finite projection

A consulted-and-declined window counts ``learn.trigger.quiet``; a fire
counts ``learn.trigger.predictive_fire``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.learn.constants import (
    TRIGGER_FEATURE_NAMES,
    TRIGGER_TRUST_RATIO,
    TRIGGER_WINDOW,
)
from repro.learn.features import trigger_features
from repro.perf import perf


@dataclass
class CollapsePredictor:
    """Consulted by :class:`~repro.core.epoch.EpochTrigger` each sample
    the reactive rule declines; ``True`` from :meth:`should_fire` means
    re-plan now.

    Attributes
    ----------
    model:
        A fitted epoch-KPI model (``predict`` over
        ``TRIGGER_FEATURE_NAMES`` rows), or None (always refuses).
    threshold:
        Fire when the projected minimum ratio falls below this —
        wired to the trigger's own ``1 - margin`` so the learned and
        reactive rules share one definition of "collapsed".
    faults:
        The run's fault injector (or None).  Checked live on every
        call: the predictor refuses while ``faults.active`` is true.
    """

    model: Optional[object] = None
    threshold: float = 0.9
    faults: Optional[object] = field(default=None, repr=False)

    def should_fire(self, ratios: Sequence[float]) -> bool:
        """Project the KPI window; True to trigger a new epoch early.

        ``ratios`` is the trigger's recent history divided by the epoch
        reference, oldest first (any length; only the last
        ``TRIGGER_WINDOW`` samples are read).
        """
        if self.faults is not None and getattr(self.faults, "active", False):
            perf.count("learn.fallback.fault_gate")
            return False
        if self.model is None:
            perf.count("learn.fallback.no_model")
            return False
        if len(ratios) < TRIGGER_WINDOW:
            perf.count("learn.fallback.cold_start")
            return False
        window = np.asarray(ratios[-TRIGGER_WINDOW:], dtype=float)
        if (
            not np.isfinite(window).all()
            or (window < 0.0).any()
            or (window > TRIGGER_TRUST_RATIO).any()
        ):
            perf.count("learn.fallback.untrusted")
            return False
        pred = float(np.asarray(self.model.predict(trigger_features(window))).ravel()[0])
        if not np.isfinite(pred):
            perf.count("learn.fallback.nonfinite_pred")
            return False
        if pred < self.threshold:
            perf.count("learn.trigger.predictive_fire")
            return True
        perf.count("learn.trigger.quiet")
        return False


def make_predictor(
    model_path: Optional[str], margin: float, faults: Optional[object]
) -> CollapsePredictor:
    """Build the predictor for a run (the controller's wiring point).

    A missing/broken/mismatched model yields a predictor that always
    refuses (``learn.fallback.no_model``) — the run proceeds on the
    reactive rule alone rather than failing.
    """
    model = None
    if model_path is not None:
        from repro.learn.models import load_model

        try:
            model = load_model(model_path)
        except Exception as exc:  # noqa: BLE001 - degrade, never crash a run
            warnings.warn(
                f"learned trigger: cannot load model {model_path!r} ({exc}); "
                "running on the reactive rule alone",
                RuntimeWarning,
                stacklevel=2,
            )
            model = None
        else:
            names = getattr(model, "feature_names", None)
            if names is not None and tuple(names) != TRIGGER_FEATURE_NAMES:
                warnings.warn(
                    f"learned trigger: model {model_path!r} has feature names "
                    f"{tuple(names)!r}, expected {TRIGGER_FEATURE_NAMES!r}; "
                    "running on the reactive rule alone",
                    RuntimeWarning,
                    stacklevel=2,
                )
                model = None
    return CollapsePredictor(model=model, threshold=1.0 - margin, faults=faults)

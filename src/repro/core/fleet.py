"""The fleet control plane (paper Sections 7-8, SkyLiTE).

The paper argues SkyRAN "directly supports multi-UAV deployments: the
REM are cooperatively constructed and shared amongst multiple SkyRAN
UAVs"; SkyLiTE (PAPERS.md) works out what that actually requires —
co-channel UAV cells *interfere*, so UE association and placement must
be optimized jointly over SINR, not per-cell SNR.
:class:`FleetController` is that control plane, promoted to the
first-class abstraction:

* it owns N :class:`~repro.core.controller.SkyRANController` cells,
  each with its own eNodeB, all sharing one radio world, one
  :class:`~repro.core.rem_store.REMStore` and one
  :class:`~repro.trajectory.information.TrajectoryHistory` (a UE
  wandering between sectors keeps its map; no UAV re-probes airspace
  another has covered);
* every epoch it runs a UE → cell **association** step over the
  candidate-SINR matrix through the policy registry of
  :mod:`repro.core.association` (``best_sinr`` / ``sticky`` /
  ``load_aware``), counting sky-cell handovers under ``perf``
  (``fleet.handover`` / ``fleet.attach``);
* each cell then runs the standard single-UAV epoch inside its
  sector, followed by an interference-aware **joint placement**
  refinement that re-scores each cell's estimated REM stack by the
  rise-over-thermal from the rest of the fleet (the
  :func:`~repro.rem.streaming.streamed_interference_max_min_placement`
  fold, reusing the PR 6 tile machinery);
* frequency planning is a modular reuse factor
  (:func:`~repro.channel.interference.reuse_carriers`): cell ``i``
  transmits on carrier ``i % reuse_factor``, so ``reuse_factor=1`` is
  the fully co-channel worst case and ``reuse_factor >= n_uavs``
  recovers independent, interference-free cells.

``n_uavs=1`` is the degenerate fleet: one cell, no co-channel
interferers, no refinement pass — the wrapped
:class:`SkyRANController` draws exactly the RNG stream it draws when
run standalone, so single-UAV runs are bit-identical through this
abstraction.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.channel.interference import (
    fleet_sinr_db,
    fleet_sinr_db_reference,
    fleet_rx_power_dbm,
    interference_penalty_db,
    reuse_carriers,
    sinr_db_from_rx_stack,
)
from repro.channel.model import ChannelModel
from repro.core.association import UNATTACHED, available_associations, make_association
from repro.core.config import SkyRANConfig
from repro.core.controller import EpochResult, SkyRANController
from repro.faults.injector import FaultInjector
from repro.geo.grid import GridSpec
from repro.geo.kmeans import kmeans
from repro.lte.enodeb import ENodeB
from repro.lte.throughput import throughput_mbps
from repro.lte.ue import UE
from repro.perf import perf
from repro.rem.streaming import streamed_interference_max_min_placement


@dataclass(frozen=True)
class SectorAssignment:
    """Which UEs each UAV serves this epoch.

    Attributes
    ----------
    ue_ids_by_uav:
        UE ids per UAV index.
    centers:
        Sector centers — K-means centroids on the bootstrap epoch,
        member centroids (or the cell's UAV position for an empty
        cell) on association epochs.
    """

    ue_ids_by_uav: Dict[int, List[int]]
    centers: np.ndarray

    def serving(self) -> Dict[int, int]:
        """The ``ue_id -> cell index`` map this assignment encodes."""
        return {
            ue_id: cell
            for cell, ue_ids in self.ue_ids_by_uav.items()
            for ue_id in ue_ids
        }


class _FleetKPIMixin:
    """Shared SINR-derived KPIs for fleet results and evaluations.

    Expects ``serving: Dict[int, int]`` and ``sinr_db: Dict[int, float]``
    attributes on the concrete class.
    """

    @property
    def ue_throughput_mbps(self) -> Dict[int, float]:
        """Full-cell throughput per UE from its SINR (paper's metric)."""
        return {u: float(throughput_mbps(s)) for u, s in self.sinr_db.items()}

    @property
    def aggregate_throughput_mbps(self) -> float:
        """Mean per-UE throughput across the whole fleet (0.0 if empty)."""
        tput = self.ue_throughput_mbps
        return float(np.mean(list(tput.values()))) if tput else 0.0

    @property
    def min_throughput_mbps(self) -> float:
        """Worst-UE throughput across the whole fleet (0.0 if empty)."""
        tput = self.ue_throughput_mbps
        return float(min(tput.values())) if tput else 0.0

    @property
    def ue_counts(self) -> Dict[int, int]:
        """UEs served per cell index."""
        counts: Dict[int, int] = {}
        for cell in self.serving.values():
            counts[cell] = counts.get(cell, 0) + 1
        return counts

    @property
    def per_cell_aggregate_throughput_mbps(self) -> Dict[int, float]:
        """Mean per-UE throughput per cell (cells with UEs only)."""
        tput = self.ue_throughput_mbps
        out: Dict[int, List[float]] = {}
        for u, cell in self.serving.items():
            out.setdefault(cell, []).append(tput[u])
        return {c: float(np.mean(v)) for c, v in sorted(out.items())}

    @property
    def per_cell_min_throughput_mbps(self) -> Dict[int, float]:
        """Worst-UE throughput per cell (cells with UEs only)."""
        tput = self.ue_throughput_mbps
        out: Dict[int, float] = {}
        for u, cell in self.serving.items():
            val = tput[u]
            out[cell] = val if cell not in out else min(out[cell], val)
        return dict(sorted(out.items()))


@dataclass(frozen=True)
class FleetEvaluation(_FleetKPIMixin):
    """SINR KPIs of a *fixed* deployment under one frequency plan.

    Produced by :meth:`FleetController.evaluate` — no flights, no RNG,
    no state change — so reuse factors can be swept evaluation-only
    over one deployment (the monotonic reuse sweep of the
    ``fleet_scale`` experiment).
    """

    serving: Dict[int, int]
    sinr_db: Dict[int, float]
    reuse_factor: int


@dataclass(frozen=True)
class FleetEpochResult(_FleetKPIMixin):
    """Per-UAV epoch results plus the fleet-level outcome.

    Attributes
    ----------
    assignment:
        The sectorization this epoch ran under.
    per_uav:
        Each cell's :class:`EpochResult` (cells with no UEs skip their
        epoch and are absent).
    serving:
        ``ue_id -> cell index`` after association.
    sinr_db:
        Per-UE SINR (dB) at the true UE positions under the epoch's
        final fleet deployment and frequency plan.
    handovers / attaches:
        Sky-cell handovers (serving cell changed) and first-time
        attaches this epoch.
    reuse_factor:
        The frequency plan the SINRs were computed under.
    """

    assignment: SectorAssignment
    per_uav: Dict[int, EpochResult]
    serving: Dict[int, int] = field(default_factory=dict)
    sinr_db: Dict[int, float] = field(default_factory=dict)
    handovers: int = 0
    attaches: int = 0
    reuse_factor: int = 1

    @property
    def total_flight_distance_m(self) -> float:
        return float(sum(r.flight_distance_m for r in self.per_uav.values()))

    @property
    def total_flight_time_s(self) -> float:
        return float(sum(r.flight_time_s for r in self.per_uav.values()))


@dataclass(kw_only=True)
class FleetController:
    """Runs ``n_uavs`` SkyRAN cells as one SINR-aware control plane.

    Parameters
    ----------
    channel:
        The shared radio environment.
    ues:
        All UEs in the operating area.  The controller owns their cell
        attachment; they must not be registered on another eNodeB.
    n_uavs:
        Fleet size (1 is the degenerate single-UAV fleet).
    config:
        Per-cell SkyRAN configuration.
    seed:
        Base seed; cell ``i`` runs with ``seed + i``.
    association:
        Association-policy name from the
        :mod:`repro.core.association` registry.
    handover_hysteresis_db:
        Hysteresis passed to policies that take it — a UE hands over
        only when another cell beats its serving cell by more than
        this.
    load_penalty_db:
        Load discount passed to the ``load_aware`` policy.
    reuse_factor:
        Frequency reuse factor; cell ``i`` transmits on carrier
        ``i % reuse_factor``.
    activity:
        Per-cell downlink activity factors in [0, 1]; defaults to
        fully loaded (the conservative busy-hour assumption).
    faults:
        Optional fault injector shared by every cell.
    """

    channel: ChannelModel
    ues: List[UE]
    n_uavs: int = 1
    config: SkyRANConfig = field(default_factory=SkyRANConfig)
    seed: int = 0
    association: str = "best_sinr"
    handover_hysteresis_db: float = 3.0
    load_penalty_db: float = 3.0
    reuse_factor: int = 1
    activity: Optional[Sequence[float]] = None
    faults: Optional[FaultInjector] = None

    def __post_init__(self) -> None:
        if self.n_uavs < 1:
            raise ValueError(f"need at least one UAV, got {self.n_uavs}")
        if len(self.ues) < self.n_uavs:
            raise ValueError(
                f"{self.n_uavs} UAVs need at least as many UEs, got {len(self.ues)}"
            )
        if self.reuse_factor < 1:
            raise ValueError(f"reuse_factor must be >= 1, got {self.reuse_factor}")
        if self.handover_hysteresis_db < 0:
            raise ValueError(
                f"handover_hysteresis_db must be >= 0, got {self.handover_hysteresis_db}"
            )
        if self.association not in available_associations():
            known = ", ".join(available_associations())
            raise ValueError(
                f"unknown association policy {self.association!r} (known: {known})"
            )
        if self.activity is not None and len(list(self.activity)) != self.n_uavs:
            raise ValueError(
                f"activity must have length {self.n_uavs}, got {len(list(self.activity))}"
            )
        seen = set()
        for ue in self.ues:
            if ue.ue_id in seen:
                raise ValueError(f"duplicate UE id {ue.ue_id}")
            seen.add(ue.ue_id)
        self.policy = make_association(
            self.association,
            hysteresis_db=self.handover_hysteresis_db,
            load_penalty_db=self.load_penalty_db,
        )
        terrain_grid = self.channel.terrain.grid
        factor = max(
            1, int(round(self.config.rem_cell_size_m / terrain_grid.cell_size))
        )
        self.rem_grid: GridSpec = terrain_grid.coarsen(factor)
        self.controllers: List[SkyRANController] = []
        self._enodebs: List[ENodeB] = []
        for i in range(self.n_uavs):
            enodeb = ENodeB()
            ctrl = SkyRANController(
                self.channel,
                enodeb,
                self.config,
                rem_grid=self.rem_grid,
                seed=self.seed + i,
                faults=self.faults,
            )
            self.controllers.append(ctrl)
            self._enodebs.append(enodeb)
        # Cooperative state: one store, one history, shared by all.
        shared_store = self.controllers[0].rem_store
        shared_history = self.controllers[0].history
        for ctrl in self.controllers[1:]:
            ctrl.rem_store = shared_store
            ctrl.history = shared_history
        self.rem_store = shared_store
        self._ue_ids: List[int] = sorted(ue.ue_id for ue in self.ues)
        self._serving = np.full(len(self._ue_ids), UNATTACHED, dtype=int)
        self.epoch_index = 0
        self.total_handovers = 0
        self.total_attaches = 0

    # -- frequency plan ------------------------------------------------------------

    def carriers(self, reuse_factor: Optional[int] = None) -> np.ndarray:
        """Per-cell carrier indices under the (given) reuse factor."""
        return reuse_carriers(
            self.n_uavs, self.reuse_factor if reuse_factor is None else reuse_factor
        )

    def uav_positions(self) -> List[np.ndarray]:
        """Current fleet positions, cell order."""
        return [ctrl.uav.position for ctrl in self.controllers]

    @property
    def _co_channel(self) -> bool:
        """True when any two cells share a carrier (interference exists)."""
        return self.n_uavs > 1 and self.reuse_factor < self.n_uavs

    def serving_dict(self) -> Dict[int, int]:
        """Current ``ue_id -> cell index`` assignment (attached UEs only)."""
        return {
            ue_id: int(cell)
            for ue_id, cell in zip(self._ue_ids, self._serving)
            if cell != UNATTACHED
        }

    # -- sectorization / association -----------------------------------------------

    def assign_sectors(
        self, positions: Optional[Dict[int, np.ndarray]] = None
    ) -> SectorAssignment:
        """Bootstrap partition of UEs into sectors by balanced K-means.

        ``positions`` defaults to the true UE positions for the first
        epoch (in a deployment, the previous epoch's estimates).  Later
        epochs re-associate over candidate SINR instead — this is the
        cold-start path only, kept public for the sectorization tests.
        """
        if positions is None:
            positions = {ue.ue_id: ue.xyz for ue in self.ues}
        ids = sorted(positions)
        pts = np.array([positions[i][:2] for i in ids])
        km = kmeans(pts, self.n_uavs, seed=self.seed)
        by_uav: Dict[int, List[int]] = {i: [] for i in range(self.n_uavs)}
        for ue_id, label in zip(ids, km.labels):
            by_uav[int(label)].append(ue_id)
        # A sector can come out empty when clusters collapse; steal the
        # nearest UE from the largest sector so every UAV has work.
        for uav_idx in range(self.n_uavs):
            if not by_uav[uav_idx]:
                donor = max(by_uav, key=lambda k: len(by_uav[k]))
                if len(by_uav[donor]) > 1:
                    center = km.centers[uav_idx]
                    best = min(
                        by_uav[donor],
                        key=lambda uid: float(
                            np.hypot(*(positions[uid][:2] - center))
                        ),
                    )
                    by_uav[donor].remove(best)
                    by_uav[uav_idx].append(best)
        return SectorAssignment(ue_ids_by_uav=by_uav, centers=km.centers)

    def candidate_sinr_db(
        self, positions: Dict[int, np.ndarray]
    ) -> np.ndarray:
        """The ``(n_cell, n_ue)`` candidate-SINR matrix for association.

        Entry ``[c, k]`` is UE ``k``'s SINR *if cell c served it*, with
        every other co-channel cell interfering from its current
        position — one received-power stack (one ray batch per cell),
        then one serving hypothesis per row.  UE axis follows sorted
        ``positions`` keys.
        """
        ids = sorted(positions)
        xyz = np.array([positions[i] for i in ids])
        rx = fleet_rx_power_dbm(self.channel, self.uav_positions(), xyz)
        carr = self.carriers()
        out = np.empty((self.n_uavs, len(ids)), dtype=float)
        for c in range(self.n_uavs):
            out[c] = sinr_db_from_rx_stack(
                self.channel.link,
                rx,
                np.full(len(ids), c, dtype=int),
                self.activity,
                carr,
            )
        return out

    def _associate(self, positions: Dict[int, np.ndarray]) -> SectorAssignment:
        """One association step over the candidate-SINR matrix.

        Applies the configured policy with per-cell load fractions from
        the previous assignment, rescues empty cells (stealing the
        best-candidate UE from the largest cell so every UAV has work,
        matching the K-means bootstrap's behaviour), counts handovers
        and attaches under ``perf``, and updates the serving state.
        """
        ids = sorted(positions)
        if ids != self._ue_ids:
            raise ValueError("association positions must cover exactly the fleet's UEs")
        candidate = self.candidate_sinr_db(positions)
        loads = np.zeros(self.n_uavs, dtype=float)
        attached = self._serving != UNATTACHED
        if np.any(attached):
            counts = np.bincount(self._serving[attached], minlength=self.n_uavs)
            loads = counts / len(self._ue_ids)
        new = self.policy.associate(candidate, self._serving, loads=loads)
        # Empty-cell rescue: a parked cell serves nobody forever under
        # hysteresis, so give it the UE it would serve best.
        for c in range(self.n_uavs):
            if np.any(new == c):
                continue
            donor_counts = np.bincount(new, minlength=self.n_uavs)
            donor = int(np.argmax(donor_counts))
            if donor_counts[donor] <= 1:
                continue
            members = np.flatnonzero(new == donor)
            steal = members[int(np.argmax(candidate[c, members]))]
            new[steal] = c

        was_attached = self._serving != UNATTACHED
        handovers = int(np.sum(was_attached & (new != self._serving)))
        attaches = int(np.sum(~was_attached))
        if handovers:
            perf.count("fleet.handover", handovers)
        if attaches:
            perf.count("fleet.attach", attaches)
        self.total_handovers += handovers
        self.total_attaches += attaches
        self._serving = new

        by_uav: Dict[int, List[int]] = {i: [] for i in range(self.n_uavs)}
        for ue_id, cell in zip(self._ue_ids, new):
            by_uav[int(cell)].append(ue_id)
        centers = np.array(
            [
                np.mean([positions[u][:2] for u in by_uav[c]], axis=0)
                if by_uav[c]
                else self.controllers[c].uav.position[:2]
                for c in range(self.n_uavs)
            ]
        )
        return SectorAssignment(ue_ids_by_uav=by_uav, centers=centers)

    def _bootstrap(self) -> SectorAssignment:
        """First-epoch sectorization (no estimates yet): balanced K-means."""
        assignment = self.assign_sectors()
        serving = assignment.serving()
        new = np.array([serving[u] for u in self._ue_ids], dtype=int)
        attaches = len(self._ue_ids)
        perf.count("fleet.attach", attaches)
        self.total_attaches += attaches
        self._serving = new
        return assignment

    def _rehome_ues(self, assignment: SectorAssignment) -> None:
        """Move every UE onto its cell's eNodeB (idempotent)."""
        ue_by_id = {ue.ue_id: ue for ue in self.ues}
        for enodeb in self._enodebs:
            for ue in list(enodeb.ues):
                enodeb.deregister_ue(ue.ue_id)
        for uav_idx, ue_ids in assignment.ue_ids_by_uav.items():
            for ue_id in ue_ids:
                self._enodebs[uav_idx].register_ue(ue_by_id[ue_id])

    # -- joint placement -----------------------------------------------------------

    def _refine_placements(
        self, results: Dict[int, EpochResult]
    ) -> Dict[int, EpochResult]:
        """Interference-aware joint placement over the estimated REMs.

        Sequential best-response: each cell re-solves max–min placement
        over its own estimated SNR stack with every co-channel cell's
        rise-over-thermal subtracted
        (:func:`streamed_interference_max_min_placement`), then flies
        there.  Earlier cells' refined positions feed later cells'
        penalties — one pass of the usual coordinate-descent heuristic.
        Skipped entirely when no two cells share a carrier, so the
        degenerate 1-UAV fleet flies exactly the standalone
        controller's path.
        """
        if not self._co_channel:
            return results
        carr = self.carriers()
        refined = dict(results)
        for c, ctrl in enumerate(self.controllers):
            res = refined.get(c)
            if res is None:
                continue
            co = [j for j in range(self.n_uavs) if j != c and carr[j] == carr[c]]
            if not co:
                continue
            ue_ids = sorted(res.rem_maps)
            est = np.array([res.ue_estimates[u] for u in ue_ids])
            act = None
            if self.activity is not None:
                act = [list(self.activity)[j] for j in co]
            penalty = interference_penalty_db(
                self.channel,
                est,
                [self.controllers[j].uav.position for j in co],
                act,
            )
            stack = np.stack([res.rem_maps[u] for u in ue_ids])
            tiles = [(slice(0, len(ue_ids)), slice(0, stack.shape[1]), stack)]
            placement = streamed_interference_max_min_placement(
                self.rem_grid, tiles, res.altitude_m, penalty
            )
            move = ctrl.uav.goto(
                placement.position.as_array(), ctrl.rng, faults=ctrl.faults
            )
            perf.count("fleet.joint_refine")
            refined[c] = replace(
                res,
                placement=placement,
                flight_distance_m=res.flight_distance_m + move.distance_m,
                flight_time_s=res.flight_time_s + move.duration_s,
            )
        return refined

    # -- the fleet epoch -----------------------------------------------------------

    def run_epoch(
        self, budget_per_uav_m: Optional[float] = None
    ) -> FleetEpochResult:
        """One cooperative epoch: associate, per-cell SkyRAN, joint placement.

        Cells run sequentially in simulation; each flies its own
        localization/measurement flights inside its sector, then the
        fleet jointly refines placements against each other's
        interference.  The returned result carries the honest fleet
        KPI: per-UE SINR at the true positions under the final
        deployment and frequency plan.
        """
        with perf.span("fleet.epoch"):
            h0, a0 = self.total_handovers, self.total_attaches
            estimates = self._last_estimates()
            if self.epoch_index == 0 or not estimates:
                assignment = self._bootstrap()
            else:
                # UEs can relocate between epochs; fall back to the
                # blindest thing we know (last estimate) per UE.
                positions = {
                    u: estimates.get(u, ue_xyz)
                    for u, ue_xyz in ((ue.ue_id, ue.xyz) for ue in self.ues)
                }
                assignment = self._associate(positions)
            self._rehome_ues(assignment)
            results: Dict[int, EpochResult] = {}
            for uav_idx, ctrl in enumerate(self.controllers):
                if not assignment.ue_ids_by_uav[uav_idx]:
                    continue
                results[uav_idx] = ctrl.run_epoch(budget_per_uav_m)
            results = self._refine_placements(results)
            serving = self.serving_dict()
            sinr = self.per_ue_sinr_db(serving)
            result = FleetEpochResult(
                assignment=assignment,
                per_uav=results,
                serving=serving,
                sinr_db=sinr,
                handovers=self.total_handovers - h0,
                attaches=self.total_attaches - a0,
                reuse_factor=self.reuse_factor,
            )
            self.epoch_index += 1
            return result

    def _last_estimates(self) -> Dict[int, np.ndarray]:
        merged: Dict[int, np.ndarray] = {}
        for ctrl in self.controllers:
            merged.update(ctrl._last_estimates)
        return merged

    # -- fleet-level KPIs ----------------------------------------------------------

    def per_ue_snr_db(self) -> Dict[int, float]:
        """Best-serving-cell SNR per UE at the current fleet positions.

        Batched: one :meth:`~ChannelModel.snr_to_many` ray batch per
        cell, max over the cell axis.  Bit-identical to
        :meth:`per_ue_snr_db_reference` (and exactly invariant to cell
        order — max commutes).
        """
        if not self.ues:
            return {}
        ues = sorted(self.ues, key=lambda u: u.ue_id)
        xyz = np.array([ue.xyz for ue in ues])
        stack = np.stack(
            [self.channel.snr_to_many(ctrl.uav.position, xyz) for ctrl in self.controllers]
        )
        best = stack.max(axis=0)
        return {ue.ue_id: float(s) for ue, s in zip(ues, best)}

    def per_ue_snr_db_reference(self) -> Dict[int, float]:
        """Loop reference for :meth:`per_ue_snr_db` — kept for tests."""
        out: Dict[int, float] = {}
        for ue in self.ues:
            best = -np.inf
            for ctrl in self.controllers:
                best = max(best, float(self.channel.snr_db(ctrl.uav.position, ue.xyz)))
            out[ue.ue_id] = best
        return out

    def per_ue_sinr_db(
        self,
        serving: Optional[Dict[int, int]] = None,
        activity: Optional[Sequence[float]] = None,
        reuse_factor: Optional[int] = None,
    ) -> Dict[int, float]:
        """Per-UE SINR under co-channel operation of the whole fleet.

        Unlike :meth:`per_ue_snr_db`, this charges each link with the
        co-channel cells' downlink as interference — the honest fleet
        KPI.  Batched via the SINR stack; bit-identical to
        :meth:`per_ue_sinr_db_reference`.
        """
        serving = self.serving_dict() if serving is None else serving
        ue_positions = {ue.ue_id: ue.xyz for ue in self.ues if ue.ue_id in serving}
        return fleet_sinr_db(
            self.channel,
            self.uav_positions(),
            ue_positions,
            serving,
            self.activity if activity is None else activity,
            self.carriers(reuse_factor),
        )

    def per_ue_sinr_db_reference(
        self,
        serving: Optional[Dict[int, int]] = None,
        activity: Optional[Sequence[float]] = None,
        reuse_factor: Optional[int] = None,
    ) -> Dict[int, float]:
        """Loop reference for :meth:`per_ue_sinr_db` — kept for tests."""
        serving = self.serving_dict() if serving is None else serving
        ue_positions = {ue.ue_id: ue.xyz for ue in self.ues if ue.ue_id in serving}
        return fleet_sinr_db_reference(
            self.channel,
            self.uav_positions(),
            ue_positions,
            serving,
            self.activity if activity is None else activity,
            self.carriers(reuse_factor),
        )

    def evaluate(
        self,
        reuse_factor: Optional[int] = None,
        activity: Optional[Sequence[float]] = None,
    ) -> FleetEvaluation:
        """Score the *current* deployment under a frequency plan.

        Pure evaluation — no flights, no RNG, no state change — so a
        reuse-factor sweep over one fixed deployment is
        apples-to-apples: dropping the reuse factor only ever adds
        interference terms, so min/aggregate throughput degrade
        monotonically as reuse approaches 1.
        """
        rf = self.reuse_factor if reuse_factor is None else reuse_factor
        serving = self.serving_dict()
        return FleetEvaluation(
            serving=serving,
            sinr_db=self.per_ue_sinr_db(serving, activity, rf),
            reuse_factor=rf,
        )

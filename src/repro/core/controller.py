"""The SkyRAN epoch controller (paper Fig. 10).

:class:`SkyRANController` owns the UAV, the eNodeB/EPC, the REM store
and the trajectory history, and executes epochs against a
:class:`~repro.channel.model.ChannelModel` standing in for the real
radio environment.  Everything the controller *knows* comes from
simulated measurements (SRS symbols, PHY SNR reports, noisy GPS); the
true UE positions are only used to report localization error.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.channel.model import ChannelModel
from repro.core.config import SkyRANConfig
from repro.core.epoch import EpochTrigger
from repro.core.placement import (
    PlacementResult,
    find_optimal_altitude,
    max_min_placement,
    uncertainty_penalty_db,
)
from repro.core.rem_store import REMStore
from repro.faults.injector import FaultInjector, as_injector
from repro.flight.energy import EnergyBudget
from repro.flight.sampler import collect_snr_samples, localize_all_ues
from repro.flight.uav import UAV
from repro.geo.grid import GridSpec
from repro.lte.enodeb import ENodeB
from repro.lte.throughput import throughput_mbps
from repro.localization.calibration import OffsetCalibrator
from repro.lte.tof import ToFEstimator
from repro.lte.ue import UE
from repro.perf import perf
from repro.rem.aggregate import aggregate_rem_running
from repro.rem.interpolate import make_interpolator
from repro.rem.streaming import streamed_discounted_max_min_placement
from repro.traffic.simulate import MACBatchResult, MACSimulation
from repro.trajectory.information import TrajectoryHistory
from repro.trajectory.random_flight import random_flight
from repro.trajectory.skyran import PlanResult, SkyRANPlanner


@dataclass(frozen=True)
class EpochResult:
    """Everything one epoch produced.

    Attributes
    ----------
    epoch_index:
        0-based epoch counter.
    ue_estimates:
        Estimated UE positions by UE id.
    localization_errors_m:
        True horizontal localization error per UE id.
    altitude_m:
        Operating altitude used this epoch.
    plan:
        Trajectory-planner diagnostics (None if no measurement flight
        was flown).
    placement:
        Chosen operating position and predicted worst-UE SNR.
    rem_maps:
        Interpolated per-UE SNR maps after the measurement flight.  On
        the streamed path, UEs sharing a REM-key dedup group share one
        map *object* — the dict stays per-UE-keyed but holds only
        ``n_rem_groups`` distinct arrays.
    flight_distance_m / flight_time_s:
        Total overhead (localization + altitude search + measurement
        + reposition) of the epoch.
    streamed:
        True when the epoch ran the streamed, REM-key-deduplicated
        pipeline instead of the materialized per-UE one.
    n_rem_groups:
        Distinct REM-key dedup groups this epoch (streamed path only;
        None on the materialized path).
    """

    epoch_index: int
    ue_estimates: Dict[int, np.ndarray]
    localization_errors_m: Dict[int, float]
    altitude_m: float
    plan: Optional[PlanResult]
    placement: PlacementResult
    rem_maps: Dict[int, np.ndarray]
    flight_distance_m: float
    flight_time_s: float
    streamed: bool = False
    n_rem_groups: Optional[int] = None


@dataclass
class SkyRANController:
    """Runs the SkyRAN algorithm against a simulated radio environment.

    Parameters
    ----------
    channel:
        The "real world": generates all measurements.
    enodeb:
        Airborne LTE stack; UEs must already be registered.
    config:
        Operational knobs (paper defaults).
    rem_grid:
        Grid for estimated REMs; defaults to the terrain grid
        coarsened to ``config.rem_cell_size_m``.
    uav:
        Flight platform; defaults to one parked at the area center at
        the FAA ceiling.
    seed:
        Seed for all controller-side randomness.
    faults:
        Optional fault injector (a :class:`~repro.faults.plan.FaultPlan`
        is accepted and wrapped).  When wired in, measurements pass
        through its injection points and the degraded-mode fallbacks
        (localization retry, last-good reuse, blind seeding) arm; when
        None the controller behaves bit-identically to a fault-free
        build.
    known_positions:
        Optional externally-supplied UE positions by UE id (e.g. a
        city generator's ground truth, or an operator database).  UEs
        present here are never flown for: the localization flight
        covers only the *unknown* UEs — and is skipped entirely when
        there are none — while known positions enter the epoch as
        zero-cost estimates.  ``None`` (the default) leaves every run
        byte-identical to a build without this field.
    """

    channel: ChannelModel
    enodeb: ENodeB
    config: SkyRANConfig = field(default_factory=SkyRANConfig)
    rem_grid: Optional[GridSpec] = None
    uav: Optional[UAV] = None
    seed: int = 0
    faults: Optional[FaultInjector] = None
    known_positions: Optional[Dict[int, np.ndarray]] = None

    def __post_init__(self) -> None:
        terrain_grid = self.channel.terrain.grid
        if self.rem_grid is None:
            factor = max(1, int(round(self.config.rem_cell_size_m / terrain_grid.cell_size)))
            self.rem_grid = terrain_grid.coarsen(factor)
        if self.uav is None:
            cx = terrain_grid.origin_x + terrain_grid.width / 2
            cy = terrain_grid.origin_y + terrain_grid.height / 2
            self.uav = UAV(position=np.array([cx, cy, self.config.max_altitude_m]))
        self.faults = as_injector(self.faults)
        self.rng = np.random.default_rng(self.seed)
        self.estimator = ToFEstimator(self.enodeb.srs_config, self.config.tof_upsampling)
        self.planner = SkyRANPlanner(
            k_min=self.config.k_min,
            k_max=self.config.k_max,
            gradient_quantile=self.config.gradient_quantile,
            seed=self.seed,
        )
        self.history = TrajectoryHistory(reuse_radius_m=self.config.reuse_radius_m)
        self.rem_store = REMStore(self.rem_grid, self.config.reuse_radius_m)
        self.trigger = EpochTrigger(
            self.config.epoch_margin,
            debounce=self.config.epoch_debounce,
            metric=self.config.epoch_trigger_metric,
        )
        if self.config.epoch_trigger_metric == "learned":
            # Import inside the branch: the default path must never
            # import repro.learn (byte-identity of default runs).
            from repro.learn.trigger import make_predictor

            self.trigger.predictor = make_predictor(
                self.config.learn_trigger_model_path,
                self.config.epoch_margin,
                self.faults,
            )
        self.interpolator = make_interpolator(
            self.config.interpolator,
            power=self.config.idw_power,
            k_neighbors=self.config.idw_neighbors,
            model_path=self.config.learn_model_path,
        )
        self.altitude: Optional[float] = None
        self.epoch_index = 0
        self._last_estimates: Dict[int, np.ndarray] = {}
        self.offset_calibrator = OffsetCalibrator()
        self._mac: Optional[MACSimulation] = None
        self.last_mac_summary: Optional[Dict[str, float]] = None

    @property
    def _chaos(self) -> bool:
        """True when an *active* fault injector is wired in.

        Every degraded-mode behaviour change gates on this, so
        fault-free runs stay bit-identical to a build without the
        fault subsystem.
        """
        return self.faults is not None and self.faults.active

    @property
    def _traffic_enabled(self) -> bool:
        """True when the config departs from the legacy MAC idealization.

        With the defaults (``full_buffer`` + ``round_robin`` +
        capacity trigger) no traffic state is ever constructed and no
        traffic RNG is drawn, so default runs stay byte-identical to
        builds without the traffic subsystem.
        """
        return (
            self.config.traffic_model != "full_buffer"
            or self.config.scheduler != "round_robin"
            or self.config.epoch_trigger_metric == "served"
        )

    # -- building blocks -----------------------------------------------------------

    def _ues_to_localize(self) -> List[UE]:
        """Connected UEs whose position the controller must measure.

        Everything when ``known_positions`` is unset; otherwise only
        the UEs absent from it.
        """
        ues = self.enodeb.connected_ues()
        if not self.known_positions:
            return ues
        return [u for u in ues if u.ue_id not in self.known_positions]

    def _merge_known_positions(
        self, estimates: Dict[int, np.ndarray], errors: Dict[int, float]
    ) -> None:
        """Fold externally-known UE positions into the epoch estimates.

        Errors are still reported against ground truth so the KPI
        surface stays uniform; a no-op when ``known_positions`` is
        unset.
        """
        if not self.known_positions:
            return
        for ue in self.enodeb.connected_ues():
            kp = self.known_positions.get(ue.ue_id)
            if kp is None:
                continue
            p = np.asarray(kp, dtype=float)
            estimates[ue.ue_id] = p
            errors[ue.ue_id] = float(
                np.hypot(p[0] - ue.position.x, p[1] - ue.position.y)
            )

    def _fly_localization_leg(self) -> tuple:
        """One localization flight + joint solve.

        Flown at the (lower) localization altitude for better ranging
        geometry; the descent is part of the epoch's overhead.  Returns
        ``(estimates, errors, trusted_ids, distance, duration)`` —
        ``trusted_ids`` is the set of UEs whose fresh solve passed the
        degraded-mode quality gates (all of them in fault-free runs).
        """
        extra_distance = 0.0
        loc_alt = self.config.localization_altitude_m
        # Fly from above the last-known UE centroid: ranging geometry
        # degrades sharply when all UEs sit far to one side, and after
        # the first epoch the controller knows roughly where they are.
        if self._last_estimates:
            cx, cy = np.mean(
                [p[:2] for p in self._last_estimates.values()], axis=0
            )
        else:
            cx, cy = self.uav.position[0], self.uav.position[1]
        target = np.array([cx, cy, loc_alt])
        if np.linalg.norm(self.uav.position - target) > 1.0:
            move = self.uav.goto(target, self.rng, faults=self.faults)
            extra_distance += move.distance_m
        traj = random_flight(
            self.rem_grid,
            self.uav.position[:2],
            self.config.localization_flight_m,
            altitude=float(self.uav.position[2]),
            rng=self.rng,
        )
        cruise = self.uav.speed_mps
        self.uav.speed_mps = self.config.localization_speed_mps
        try:
            log = self.uav.fly(traj, self.rng, faults=self.faults)
        finally:
            self.uav.speed_mps = cruise
        ues = self._ues_to_localize()
        margin = 20.0  # UEs just outside the nominal box are still real
        bounds = (
            (self.rem_grid.origin_x - margin, self.rem_grid.max_x + margin),
            (self.rem_grid.origin_y - margin, self.rem_grid.max_y + margin),
        )
        min_quality = None
        if self._chaos and self.config.tof_quality_floor > 0:
            min_quality = self.config.tof_quality_floor
        joint = localize_all_ues(
            log,
            ues,
            self.channel,
            self.enodeb,
            self.estimator,
            self.rng,
            bounds_xy=bounds,
            offset_prior=self.offset_calibrator.prior(),
            faults=self.faults,
            min_quality=min_quality,
        )
        # The offset is a chain constant: feed this epoch's estimate
        # back into the running calibration for the next epoch — but a
        # starved chaos solve has no offset information to feed.
        if joint.per_ue or not self._chaos:
            self.offset_calibrator.update(joint.offset_m)
        estimates: Dict[int, np.ndarray] = {}
        errors: Dict[int, float] = {}
        trusted: set = set()
        for ue in ues:
            result = joint.per_ue.get(ue.ue_id)
            if result is None:
                continue  # starved under faults; wrapper falls back
            estimates[ue.ue_id] = result.position
            errors[ue.ue_id] = float(
                np.hypot(
                    result.position[0] - ue.position.x,
                    result.position[1] - ue.position.y,
                )
            )
            if not self._chaos:
                trusted.add(ue.ue_id)
            elif (
                result.residual_rms_m <= self.config.localization_residual_limit_m
                and result.inlier_fraction >= self.config.min_inlier_fraction
            ):
                trusted.add(ue.ue_id)
        return estimates, errors, trusted, extra_distance + log.distance_m, log.duration_s

    def _blind_estimate(self) -> np.ndarray:
        """Positionless fallback: the operating-area center at UE height.

        Only used when a UE has never been localized and the current
        flight produced nothing for it either.
        """
        cx = self.rem_grid.origin_x + self.rem_grid.width / 2
        cy = self.rem_grid.origin_y + self.rem_grid.height / 2
        return np.array([cx, cy, 1.5])

    def _localization_flight(self) -> tuple:
        """Steps 1-4 with degraded-mode hardening (chaos runs only).

        Fault-free, this is exactly one leg.  Under an active injector:
        if a leg leaves any UE without a *trusted* fresh estimate, the
        leg is re-flown up to ``config.localization_max_retries`` times
        (``fallback.localization_retry``); whatever is still missing or
        untrusted after that falls back to the last-good estimate
        (``fallback.reuse_last_estimate``) or, with no history, a blind
        area-center seed (``fallback.blind_estimate``).

        With ``known_positions`` covering every connected UE there is
        nothing to measure, so no flight happens at all; the caller
        merges the known positions afterwards.
        """
        if self.known_positions and not self._ues_to_localize():
            return {}, {}, 0.0, 0.0
        estimates, errors, trusted, distance, duration = self._fly_localization_leg()
        if not self._chaos:
            return estimates, errors, distance, duration
        ues = self._ues_to_localize()
        retries = 0
        while (
            len(trusted) < len(ues)
            and retries < self.config.localization_max_retries
        ):
            retries += 1
            perf.count("fallback.localization_retry")
            est2, err2, trusted2, d2, t2 = self._fly_localization_leg()
            distance += d2
            duration += t2
            # A fresh trusted solve beats anything; a fresh untrusted
            # one only fills holes.
            for ue_id, pos in est2.items():
                if ue_id in trusted2 or ue_id not in estimates:
                    estimates[ue_id] = pos
                    errors[ue_id] = err2[ue_id]
            trusted |= trusted2
        for ue in ues:
            if ue.ue_id in trusted:
                continue
            if ue.ue_id in estimates and ue.ue_id not in self._last_estimates:
                continue  # untrusted but fresh, and nothing better exists
            if ue.ue_id in self._last_estimates:
                perf.count("fallback.reuse_last_estimate")
                estimates[ue.ue_id] = self._last_estimates[ue.ue_id]
            else:
                perf.count("fallback.blind_estimate")
                estimates[ue.ue_id] = self._blind_estimate()
            errors[ue.ue_id] = float(
                np.hypot(
                    estimates[ue.ue_id][0] - ue.position.x,
                    estimates[ue.ue_id][1] - ue.position.y,
                )
            )
        return estimates, errors, distance, duration

    def _search_altitude(self, centroid_xy: np.ndarray) -> tuple:
        """First-epoch altitude search above the estimated UE centroid.

        The UAV flies to the ceiling over the centroid and descends
        step by step, *measuring* mean path loss to its attached UEs at
        each stop — the measurement is of the real world (true UE
        positions), as it would be on hardware.  Every probe actually
        moves the UAV (descending during the search, then climbing back
        to the best altitude found), so the charged distance equals the
        flown path — no analytic descent term double-counting the
        ceiling-to-optimum leg on top of the repositioning flight.
        """
        ues = self.enodeb.connected_ues()
        ue_xyz = np.array([ue.xyz for ue in ues])
        start_clock_s = self.uav.clock_s

        top = np.array([centroid_xy[0], centroid_xy[1], self.config.max_altitude_m])
        distance = self.uav.goto(top, self.rng, faults=self.faults).distance_m

        # Each probe averages ~1 s of 100 Hz PHY reports, so the
        # residual probe noise is small.
        probe_noise = 0.2

        def path_loss_at(alt: float) -> float:
            pos = np.array([centroid_xy[0], centroid_xy[1], alt])
            nonlocal distance
            if abs(float(self.uav.position[2]) - alt) > 1e-9:
                distance += self.uav.goto(pos, self.rng, faults=self.faults).distance_m
            # One batched one-Tx-many-Rx probe; bit-identical to the
            # per-UE path_loss_db loop by the to_many contract.
            losses = self.channel.path_loss_to_many(pos, ue_xyz)
            return float(np.mean(losses) + self.rng.normal(0.0, probe_noise))

        altitude = find_optimal_altitude(
            path_loss_at,
            self.config.max_altitude_m,
            self.config.min_altitude_m,
            self.config.altitude_step_m,
        )
        # Climb back from wherever the search stopped to the optimum.
        log2 = self.uav.goto(
            np.array([centroid_xy[0], centroid_xy[1], altitude]),
            self.rng,
            faults=self.faults,
        )
        distance += log2.distance_m
        duration = self.uav.clock_s - start_clock_s
        return altitude, distance, duration

    def _uncertainty_discounted(self, snr_map: np.ndarray, rem) -> np.ndarray:
        """Discount a map by distance-to-nearest-measurement.

        An argmax over estimated maps selects for optimistic
        estimation errors; unmeasured cells carry the largest ones.
        The discount (rate/cap in the config) makes placement prefer
        cells whose SNR has actually been observed.  Delegates to the
        shared :func:`repro.core.placement.uncertainty_penalty_db`
        that the streamed placement fold applies band-by-band.
        """
        penalty = uncertainty_penalty_db(
            self.rem_grid,
            rem.measured_mask,
            self.config.uncertainty_penalty_db_per_m,
            self.config.uncertainty_penalty_cap_db,
        )
        if penalty is None:
            return snr_map
        return snr_map - penalty

    def _prior_for(self, ue_xyz: np.ndarray) -> np.ndarray:
        """FSPL-seed SNR map for a never-measured UE position.

        Served from the channel's LRU prior cache, so re-seeding the
        same (or a returning) UE position across epochs is free.
        """
        pl = self.channel.fspl_prior_map(ue_xyz, self.altitude, self.rem_grid)
        return self.channel.link.snr_db(pl)

    # -- the epoch --------------------------------------------------------------------

    def _stream_epoch(self, n_ues: int) -> bool:
        """Pick the epoch pipeline for a population of ``n_ues``.

        ``REPRO_STREAM_EPOCH=1`` forces the streamed path, ``=0`` the
        materialized one; otherwise the streamed path engages at
        ``config.stream_epoch_threshold`` connected UEs.  The default
        threshold keeps every paper-scale scenario on the materialized
        path, byte-identical to builds without the streamed pipeline.
        """
        env = os.environ.get("REPRO_STREAM_EPOCH")
        if env == "1":
            return True
        if env == "0":
            return False
        return n_ues >= self.config.stream_epoch_threshold

    def _rem_groups(
        self, estimates: Dict[int, np.ndarray]
    ) -> Tuple[Dict[int, List[int]], Dict[int, int]]:
        """REM-key dedup groups over the epoch's estimates.

        UEs whose estimates fall in the same ``config.rem_key_pitch_m``
        cell (anchored at the REM grid origin) share one REM and one
        interpolated map; the group representative is its smallest UE
        id.  Returns ``(members by rep id, rep id by UE id)``; reps
        ascend with ``sorted(members)``.  At the city generator's key
        pitch this grouping is exact — same-cell UEs already share
        position-keyed REMs.
        """
        pitch = self.config.rem_key_pitch_m
        x0, y0 = self.rem_grid.origin_x, self.rem_grid.origin_y
        by_cell: Dict[Tuple[int, int], List[int]] = {}
        for ue_id in sorted(estimates):
            p = estimates[ue_id]
            cell = (
                int(np.floor((float(p[0]) - x0) / pitch)),
                int(np.floor((float(p[1]) - y0) / pitch)),
            )
            by_cell.setdefault(cell, []).append(ue_id)
        members: Dict[int, List[int]] = {}
        rep_of: Dict[int, int] = {}
        for ids in by_cell.values():
            rep = ids[0]
            members[rep] = ids
            for ue_id in ids:
                rep_of[ue_id] = rep
        return members, rep_of

    def run_epoch(
        self,
        budget_m: Optional[float] = None,
        energy_budget: Optional["EnergyBudget"] = None,
    ) -> EpochResult:
        """Execute one full SkyRAN epoch (Fig. 10, steps 1-8).

        ``energy_budget`` (a :class:`~repro.flight.energy.EnergyBudget`)
        caps the measurement budget by what the battery can fund while
        still reserving service time — the Section 2.5 trade made
        operational.

        Population-size-aware: small scenarios run the materialized
        per-UE pipeline (byte-identical to previous builds); above
        ``config.stream_epoch_threshold`` connected UEs (or under
        ``REPRO_STREAM_EPOCH=1``) the streamed, REM-key-deduplicated
        pipeline runs the same eight steps with O(groups) REM state
        and O(grid) map state instead of O(n_ue) of each.
        """
        if not self.enodeb.connected_ues():
            raise RuntimeError("no connected UEs to serve")
        budget = budget_m if budget_m is not None else self.config.measurement_budget_m
        if energy_budget is not None:
            budget = max(energy_budget.clamp(budget, self.uav.battery), 1.0)
        if self._stream_epoch(len(self.enodeb.connected_ues())):
            return self._run_epoch_streamed(budget)
        return self._run_epoch_materialized(budget)

    def _run_epoch_materialized(self, budget: float) -> EpochResult:
        """The per-UE epoch: one REM and one full map per connected UE."""
        total_distance = 0.0
        t_start = self.uav.clock_s

        # Steps 1-4: localization flight and multilateration.
        estimates, errors, dist, _ = self._localization_flight()
        total_distance += dist
        self._merge_known_positions(estimates, errors)
        if not estimates:
            raise RuntimeError("no connected UEs to serve")
        self._last_estimates = dict(estimates)
        est_positions = [estimates[k] for k in sorted(estimates)]

        # Step 5: optimal altitude (first epoch only, Section 3.3.1).
        if self.altitude is None:
            centroid = np.mean([p[:2] for p in est_positions], axis=0)
            self.altitude, dist, _ = self._search_altitude(centroid)
            total_distance += dist

        # REM lookup / seeding (Section 3.5).
        rems = {
            ue_id: self.rem_store.get_or_create(
                estimates[ue_id], self.altitude, self._prior_for
            )
            for ue_id in sorted(estimates)
        }

        # Step 6: plan the measurement trajectory.
        current_maps = [
            rems[k].interpolated(method=self.interpolator) for k in sorted(rems)
        ]
        plan = self.planner.plan(
            self.rem_grid,
            current_maps,
            est_positions,
            self.uav.position[:2],
            self.altitude,
            budget,
            self.history,
        )

        # Step 7: fly it, measure, update each UE's REM.
        log = self.uav.fly(plan.trajectory, self.rng, faults=self.faults)
        total_distance += log.distance_m
        for ue in self.enodeb.connected_ues():
            if ue.ue_id not in rems:
                continue
            before = rems[ue.ue_id].n_measured_cells
            xy, snr = collect_snr_samples(
                log, ue, self.channel, self.rng, faults=self.faults
            )
            if len(snr):
                rems[ue.ue_id].add_measurements(xy, snr)
            if self._chaos and rems[ue.ue_id].n_measured_cells == before:
                # The flight fed this map nothing (all samples dropped
                # or unbinnable); serve from whatever it already holds
                # — reused/prior cells — instead of failing the epoch.
                perf.count("fallback.rem_starved")
        for ue_id in sorted(rems):
            self.history.record(estimates[ue_id], plan.trajectory)
            self.rem_store.commit(rems[ue_id])

        # Step 8: max-min placement and reposition.
        final_maps = {
            ue_id: rems[ue_id].interpolated(method=self.interpolator)
            for ue_id in sorted(rems)
        }
        placement_maps = [
            self._uncertainty_discounted(final_maps[ue_id], rems[ue_id])
            for ue_id in sorted(rems)
        ]
        placement = max_min_placement(self.rem_grid, placement_maps, self.altitude)
        return self._finish_epoch(
            estimates, errors, plan, placement, final_maps, total_distance, t_start
        )

    def _run_epoch_streamed(self, budget: float) -> EpochResult:
        """The streamed epoch: REM-key dedup + tile-resident placement.

        Same eight steps, restructured for city-scale populations:

        * UEs are grouped by REM-key quantization of their estimates
          (:meth:`_rem_groups`); one REM is looked up / seeded /
          measured *per group* — work and REM state saturate at the
          key-grid size instead of growing with the population.
        * Planning consumes a running aggregate
          (:func:`repro.rem.aggregate.aggregate_rem_running`) of the
          per-UE map references (group maps, repeated per member, in
          sorted-UE order — bit-identical to the materialized stack
          even under collapse) instead of a per-UE map list.
        * Placement streams row-bands through
          :func:`repro.rem.streaming.streamed_discounted_max_min_placement`
          — the per-UE map stack is never materialized.

        With every group a singleton (e.g. a tiny key pitch) the whole
        epoch — RNG draw schedule included — is bit-identical to
        :meth:`_run_epoch_materialized`.
        """
        total_distance = 0.0
        t_start = self.uav.clock_s

        # Steps 1-4: localization flight and multilateration.
        estimates, errors, dist, _ = self._localization_flight()
        total_distance += dist
        self._merge_known_positions(estimates, errors)
        if not estimates:
            raise RuntimeError("no connected UEs to serve")
        self._last_estimates = dict(estimates)

        # Step 5: optimal altitude (first epoch only, Section 3.3.1).
        if self.altitude is None:
            centroid = np.mean([estimates[k][:2] for k in sorted(estimates)], axis=0)
            self.altitude, dist, _ = self._search_altitude(centroid)
            total_distance += dist

        # REM-key dedup + lookup/seeding (Section 3.5), one per group.
        groups, rep_of = self._rem_groups(estimates)
        perf.count("epoch.rem_groups", len(groups))
        rems = {
            rep: self.rem_store.get_or_create(
                estimates[rep], self.altitude, self._prior_for
            )
            for rep in sorted(groups)
        }

        # Step 6: plan over the running per-UE aggregate (group maps
        # broadcast to members) and the dedup waypoints.
        with perf.span("epoch.stream.plan", track_memory=True):
            group_maps = {
                rep: rems[rep].interpolated(method=self.interpolator)
                for rep in sorted(rems)
            }
            agg = aggregate_rem_running(
                (group_maps[rep_of[ue_id]] for ue_id in sorted(estimates)),
                self.rem_grid.shape,
            )
            del group_maps
            rep_positions = [estimates[rep] for rep in sorted(groups)]
            plan = self.planner.plan(
                self.rem_grid,
                [],
                rep_positions,
                self.uav.position[:2],
                self.altitude,
                budget,
                self.history,
                aggregate=agg,
            )

        # Step 7: fly it, measure, update each *group's* REM (through
        # its representative — same RNG schedule as the materialized
        # path when every group is a singleton).
        log = self.uav.fly(plan.trajectory, self.rng, faults=self.faults)
        total_distance += log.distance_m
        for ue in self.enodeb.connected_ues():
            if ue.ue_id not in rems:
                continue
            before = rems[ue.ue_id].n_measured_cells
            xy, snr = collect_snr_samples(
                log, ue, self.channel, self.rng, faults=self.faults
            )
            if len(snr):
                rems[ue.ue_id].add_measurements(xy, snr)
            if self._chaos and rems[ue.ue_id].n_measured_cells == before:
                perf.count("fallback.rem_starved")
        for rep in sorted(rems):
            self.history.record(estimates[rep], plan.trajectory)
            self.rem_store.commit(rems[rep])

        # Step 8: streamed uncertainty-discounted max-min placement.
        with perf.span("epoch.stream.place", track_memory=True):
            placement, group_final = streamed_discounted_max_min_placement(
                self.rem_grid,
                [rems[rep] for rep in sorted(rems)],
                self.interpolator,
                self.altitude,
                penalty_rate_db_per_m=self.config.uncertainty_penalty_db_per_m,
                penalty_cap_db=self.config.uncertainty_penalty_cap_db,
                collect_maps=True,
            )
        by_rep = dict(zip(sorted(rems), group_final))
        final_maps = {
            ue_id: by_rep[rep_of[ue_id]] for ue_id in sorted(estimates)
        }
        return self._finish_epoch(
            estimates,
            errors,
            plan,
            placement,
            final_maps,
            total_distance,
            t_start,
            streamed=True,
            n_rem_groups=len(groups),
        )

    def _finish_epoch(
        self,
        estimates: Dict[int, np.ndarray],
        errors: Dict[int, float],
        plan: Optional[PlanResult],
        placement: PlacementResult,
        final_maps: Dict[int, np.ndarray],
        total_distance: float,
        t_start: float,
        streamed: bool = False,
        n_rem_groups: Optional[int] = None,
    ) -> EpochResult:
        """Shared epoch tail: reposition, arm the trigger, record.

        Under a traffic-aware config a fresh MAC simulation is built
        for this epoch's UE set (queue backlogs and generator streams
        do not survive a re-plan; per-UE streams restart
        deterministically from (seed, ue_id)).
        """
        move_log = self.uav.goto(placement.position.as_array(), self.rng, faults=self.faults)
        total_distance += move_log.distance_m

        self.last_mac_summary = None
        if self._traffic_enabled:
            self._mac = self._make_mac(
                [u.ue_id for u in self.enodeb.connected_ues()]
            )
            batch = self._serve_tti_batch()
            self.last_mac_summary = self._summarize_batch(batch)
        if self.trigger.metric == "served":
            self.trigger.reset(self.last_mac_summary["served_mbps"])
        else:
            self.trigger.reset(self.aggregate_throughput_mbps())

        result = EpochResult(
            epoch_index=self.epoch_index,
            ue_estimates=estimates,
            localization_errors_m=errors,
            altitude_m=self.altitude,
            plan=plan,
            placement=placement,
            rem_maps=final_maps,
            flight_distance_m=total_distance,
            flight_time_s=self.uav.clock_s - t_start,
            streamed=streamed,
            n_rem_groups=n_rem_groups,
        )
        self.epoch_index += 1
        return result

    # -- serving-time monitoring ---------------------------------------------------------

    def _make_mac(self, ue_ids: List[int]) -> MACSimulation:
        """A fresh MAC simulation for the given UE population.

        Per-UE generator streams restart deterministically from
        ``(seed, ue_id)``, so rebuilding for the same population is
        bit-identical to the original build.
        """
        return MACSimulation(
            ue_ids,
            traffic_model=self.config.traffic_model,
            scheduler=self.config.scheduler,
            seed=self.seed,
            n_prb=self.enodeb.n_prb,
            buffer_bytes=self.config.traffic_buffer_bytes,
            traffic_params={"rate_mbps": self.config.traffic_rate_mbps},
            scheduler_params={
                "time_constant_tti": self.config.pf_time_constant_tti
            },
        )

    def refresh_population(self) -> None:
        """Rebuild serving-time state after the attached set changed.

        The event layer calls this on every attach/detach/storm
        knock-off: queue backlogs belong to UEs that may be gone and
        the scheduler's fairness history is for the old population, so
        under a traffic-aware config the MAC simulation is rebuilt for
        the current connected set (``None`` while the cell is empty —
        :meth:`served_throughput_mbps` would have nothing to serve).
        With the default full-buffer config this is a no-op, keeping
        non-event runs untouched.
        """
        if not self._traffic_enabled:
            return
        ids = [u.ue_id for u in self.enodeb.connected_ues()]
        self._mac = self._make_mac(ids) if ids else None
        perf.count("events.mac_rebuild")

    def aggregate_throughput_mbps(self) -> float:
        """Mean full-cell throughput over UEs at the current position.

        This is the live KPI the epoch trigger watches while serving.
        Computed through one batched one-Tx-many-Rx ray pass
        (:meth:`~repro.channel.model.ChannelModel.snr_to_many`) —
        bit-identical to the historical per-UE ``snr_db`` loop by the
        to_many contract and the elementwise CQI mapping.
        """
        ues = self.enodeb.connected_ues()
        if not ues:
            return 0.0
        snrs = self.channel.snr_to_many(
            self.uav.position, np.array([ue.xyz for ue in ues])
        )
        return float(np.mean(throughput_mbps(snrs)))

    def _serve_tti_batch(self) -> MACBatchResult:
        """Advance the epoch's MAC simulation by one TTI batch.

        SNRs are sampled at the current position per batch, so UE
        mobility between checks shows up in the served rate.  Offered
        traffic passes through the fault injector's traffic-burst
        channel (inert when the plan's burst rate is zero).
        """
        snrs = {
            ue.ue_id: float(self.channel.snr_db(self.uav.position, ue.xyz))
            for ue in self.enodeb.connected_ues()
            if ue.ue_id in self._mac.ue_ids
        }
        return self._mac.run(snrs, self.config.tti_batch, faults=self.faults)

    @staticmethod
    def _summarize_batch(batch: MACBatchResult) -> Dict[str, float]:
        backlog = batch.total_backlog_bytes()
        return {
            "offered_mbps": batch.aggregate_offered_mbps(),
            "served_mbps": batch.aggregate_served_mbps(),
            "backlog_bytes": backlog if np.isfinite(backlog) else float("inf"),
            "dropped_bytes": batch.total_dropped_bytes(),
            "fairness": batch.fairness(),
        }

    def served_throughput_mbps(self) -> float:
        """Aggregate served rate over one fresh TTI batch.

        Requires a traffic-aware config (an epoch must have armed the
        MAC simulation); this is the live KPI of the ``"served"``
        trigger metric.
        """
        if self._mac is None:
            raise RuntimeError(
                "no MAC simulation armed (run an epoch with a traffic-aware config)"
            )
        batch = self._serve_tti_batch()
        self.last_mac_summary = self._summarize_batch(batch)
        return self.last_mac_summary["served_mbps"]

    def needs_new_epoch(self, t_s: float = 0.0) -> bool:
        """Check the trigger against the current aggregate KPI."""
        if self.trigger.metric == "served":
            return self.trigger.update(self.served_throughput_mbps(), t_s)
        return self.trigger.update(self.aggregate_throughput_mbps(), t_s)

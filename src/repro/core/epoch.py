"""Dynamic epoch triggering (paper Section 3.5).

SkyRAN does not chase individual UE movements.  A new epoch — with its
localization + measurement overhead — is triggered only when the
*aggregate* performance at the current UAV position drops below a
configured fraction of what it was when the position was chosen.
Fig. 12 shows a 10% margin buys ~10-minute epochs under pedestrian
mobility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.perf import perf


@dataclass
class EpochTrigger:
    """Monitors aggregate performance and decides when to re-plan.

    Attributes
    ----------
    margin:
        Tolerated fractional drop (0.1 = re-plan on a 10% drop).
    debounce:
        Consecutive breaching samples required before the trigger
        fires.  1 reproduces the paper's instant trigger; higher values
        are the degraded-mode defence against transiently corrupted
        KPI samples re-triggering (and re-paying for) epochs.
    reference:
        Aggregate performance recorded right after placement.
    history:
        (time, value) samples seen since the last reset, for benches
        that plot the decay.  Bounded: only the most recent
        ``history_maxlen`` samples are retained, so long event-driven
        serving phases (hours of KPI ticks between re-plans) cannot
        grow memory without bound.
    history_maxlen:
        Cap on retained history samples; older samples are dropped
        (and counted in ``history_dropped``) as new ones arrive.
    history_dropped:
        Samples evicted from ``history`` since the last reset.
    metric:
        What the samples *are*: ``"capacity"`` (full-cell mean
        throughput at the current position — the legacy KPI, blind to
        load), ``"served"`` (aggregate served rate from the traffic
        MAC simulation, which only drops when users actually lose
        throughput), or ``"learned"`` (the capacity KPI, with a
        collapse predictor consulted on top of the reactive rule).
        The reactive arithmetic is identical; the field exists so
        records and logs can say which signal armed it and so the
        controller knows which KPI to feed in.
    predictor:
        Optional :class:`repro.learn.trigger.CollapsePredictor` (duck
        typed: anything with ``should_fire(ratios) -> bool``).
        Consulted only on samples where the reactive rule declines —
        so with ``predictor=None`` (the default) behaviour is exactly
        the reactive Section 3.5 trigger, sample for sample.
    """

    margin: float = 0.1
    debounce: int = 1
    reference: Optional[float] = None
    history: List[tuple] = field(default_factory=list)
    metric: str = "capacity"
    history_maxlen: int = 512
    history_dropped: int = 0
    predictor: Optional[object] = field(default=None, repr=False)
    _breach_streak: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.margin < 1.0:
            raise ValueError(f"margin must be in (0, 1), got {self.margin}")
        if self.debounce < 1:
            raise ValueError(f"debounce must be >= 1, got {self.debounce}")
        if self.metric not in ("capacity", "served", "learned"):
            raise ValueError(
                f"metric must be 'capacity', 'served', or 'learned', "
                f"got {self.metric!r}"
            )
        if self.history_maxlen < 1:
            raise ValueError(
                f"history_maxlen must be >= 1, got {self.history_maxlen}"
            )

    def reset(self, reference: float) -> None:
        """Start a new epoch with a fresh performance reference."""
        if reference < 0:
            raise ValueError(f"reference must be >= 0, got {reference}")
        self.reference = reference
        self.history = []
        self.history_dropped = 0
        self._breach_streak = 0

    def update(self, value: float, t_s: float = 0.0) -> bool:
        """Record a performance sample; True means trigger a new epoch.

        With no reference yet (cold start), any sample triggers.  A
        breach only fires after ``debounce`` consecutive breaching
        samples; suppressed breaches bump ``fallback.epoch_debounced``.
        A fire clears the streak, so a caller that keeps sampling
        without an intervening :meth:`reset` (the event-driven serving
        loop caps its re-plans) must accumulate ``debounce`` fresh
        breaches before the trigger fires again.

        When a ``predictor`` is wired in, it is consulted exactly on
        the samples where the reactive rule declines; a predictive
        fire also clears the streak.
        """
        self.history.append((t_s, value))
        if len(self.history) > self.history_maxlen:
            del self.history[0]
            self.history_dropped += 1
        if self.reference is None:
            self._breach_streak = 0
            return True
        if self.reference <= 0:
            # A dead reference epoch can only improve: re-plan.
            self._breach_streak = 0
            return True
        breach = value < (1.0 - self.margin) * self.reference
        if not breach:
            self._breach_streak = 0
            return self._consult_predictor()
        self._breach_streak += 1
        if self._breach_streak < self.debounce:
            perf.count("fallback.epoch_debounced")
            return self._consult_predictor()
        self._breach_streak = 0
        return True

    def _consult_predictor(self) -> bool:
        """Ask the collapse predictor (if any) on a reactive decline."""
        if self.predictor is None:
            return False
        ratios = [v / self.reference for _, v in self.history]
        if not self.predictor.should_fire(ratios):
            return False
        self._breach_streak = 0
        return True

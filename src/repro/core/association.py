"""UE → sky-cell association policies.

Every epoch the fleet must decide which UAV cell serves each UE.  A
policy consumes the candidate-SINR matrix — ``candidate_db[c, k]`` is
UE ``k``'s SINR *if cell c served it* (interference from the rest of
the fleet included) — plus the current serving assignment, and returns
the new assignment.  Policies register under a string name so the
choice threads through :class:`~repro.core.fleet.FleetController` as
configuration, mirroring the interpolator / traffic / scheduler
registries.

Built-in policies
-----------------

``best_sinr``
    Hysteresis-gated argmax — the LTE A3 event in miniature.  A UE
    hands over only when some cell beats its serving cell by more than
    ``hysteresis_db``; this is what keeps boundary UEs from
    ping-ponging under SINR jitter.
``sticky``
    Never hands over while the serving cell is valid; unattached UEs
    take the best cell.  The degenerate lower bound for handover-count
    comparisons.
``load_aware``
    ``best_sinr`` on a load-discounted score: each cell's candidate
    SINR is reduced by ``load_penalty_db`` × its load fraction, so a
    congested cell must win by more.  Ties into the MAC's per-cell UE
    counts.

Handover *counting* lives in the fleet controller (``perf`` counters
``fleet.handover`` / ``fleet.attach``), not here: a policy is a pure
function of its inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Protocol, Tuple, runtime_checkable

import numpy as np

#: Marker for a UE with no serving cell yet.
UNATTACHED = -1


@runtime_checkable
class AssociationPolicy(Protocol):
    """Anything that can map candidate SINRs to a serving assignment."""

    def associate(
        self,
        candidate_db: np.ndarray,
        serving: np.ndarray,
        loads: Optional[np.ndarray] = None,
    ) -> np.ndarray: ...


def _validated(
    candidate_db: np.ndarray, serving: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    candidate_db = np.asarray(candidate_db, dtype=float)
    if candidate_db.ndim != 2:
        raise ValueError(f"candidate_db must be (n_cell, n_ue), got {candidate_db.shape}")
    serving = np.asarray(serving, dtype=int)
    n_cell, n_ue = candidate_db.shape
    if serving.shape != (n_ue,):
        raise ValueError(f"serving must have shape ({n_ue},), got {serving.shape}")
    if n_ue and (serving.min() < UNATTACHED or serving.max() >= n_cell):
        raise ValueError("serving indices out of range")
    return candidate_db, serving


def _hysteresis_pick(
    score_db: np.ndarray, serving: np.ndarray, hysteresis_db: float
) -> np.ndarray:
    """Argmax gated by hysteresis against the current serving cell.

    Unattached UEs take the argmax unconditionally; attached UEs move
    only when the best candidate beats the serving cell's score by
    *strictly more* than ``hysteresis_db`` (ties keep the serving
    cell, so a zero-hysteresis policy is still ping-pong-free under
    exactly equal scores).
    """
    n_ue = serving.shape[0]
    best = np.argmax(score_db, axis=0)
    attached = serving != UNATTACHED
    out = best.copy()
    if np.any(attached):
        idx = np.flatnonzero(attached)
        current = score_db[serving[idx], idx]
        gain = score_db[best[idx], idx] - current
        keep = gain <= hysteresis_db
        out[idx[keep]] = serving[idx[keep]]
    return out.astype(int)


@dataclass(frozen=True, kw_only=True)
class BestSinrAssociation:
    """Hysteresis-gated strongest-cell association (LTE A3 analogue)."""

    hysteresis_db: float = 3.0

    def __post_init__(self) -> None:
        if self.hysteresis_db < 0:
            raise ValueError(f"hysteresis_db must be >= 0, got {self.hysteresis_db}")

    def associate(
        self,
        candidate_db: np.ndarray,
        serving: np.ndarray,
        loads: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        candidate_db, serving = _validated(candidate_db, serving)
        return _hysteresis_pick(candidate_db, serving, self.hysteresis_db)


@dataclass(frozen=True, kw_only=True)
class StickyAssociation:
    """Keep the serving cell forever; only unattached UEs associate."""

    def associate(
        self,
        candidate_db: np.ndarray,
        serving: np.ndarray,
        loads: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        candidate_db, serving = _validated(candidate_db, serving)
        best = np.argmax(candidate_db, axis=0)
        return np.where(serving == UNATTACHED, best, serving).astype(int)


@dataclass(frozen=True, kw_only=True)
class LoadAwareAssociation:
    """Strongest-cell association discounted by per-cell load.

    ``score[c] = candidate_db[c] - load_penalty_db * loads[c]`` where
    ``loads[c]`` is the cell's load fraction (UEs served / total UEs
    when driven by the fleet controller).  With no load information
    the policy is exactly :class:`BestSinrAssociation`.
    """

    hysteresis_db: float = 3.0
    load_penalty_db: float = 3.0

    def __post_init__(self) -> None:
        if self.hysteresis_db < 0:
            raise ValueError(f"hysteresis_db must be >= 0, got {self.hysteresis_db}")
        if self.load_penalty_db < 0:
            raise ValueError(
                f"load_penalty_db must be >= 0, got {self.load_penalty_db}"
            )

    def associate(
        self,
        candidate_db: np.ndarray,
        serving: np.ndarray,
        loads: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        candidate_db, serving = _validated(candidate_db, serving)
        score = candidate_db
        if loads is not None:
            loads = np.asarray(loads, dtype=float)
            if loads.shape != (candidate_db.shape[0],):
                raise ValueError(
                    f"loads must have shape ({candidate_db.shape[0]},), got {loads.shape}"
                )
            score = candidate_db - self.load_penalty_db * loads[:, None]
        return _hysteresis_pick(score, serving, self.hysteresis_db)


_REGISTRY: Dict[str, Callable[..., AssociationPolicy]] = {}


def register_association(name: str, factory: Callable[..., AssociationPolicy]) -> None:
    """Register an association-policy factory under a string name."""
    if not name:
        raise ValueError("association policy name must be non-empty")
    _REGISTRY[name] = factory


def available_associations() -> Tuple[str, ...]:
    """Registered names, sorted."""
    return tuple(sorted(_REGISTRY))


def make_association(name: str, **params) -> AssociationPolicy:
    """Instantiate a registered association policy by name.

    Unknown keyword parameters are ignored for dataclass factories, so
    one config can carry the union of every policy's knobs.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(available_associations())
        raise ValueError(f"unknown association policy {name!r} (known: {known})") from None
    accepted = getattr(factory, "__dataclass_fields__", None)
    if accepted is not None:
        params = {k: v for k, v in params.items() if k in accepted}
    return factory(**params)


register_association("best_sinr", BestSinrAssociation)
register_association("sticky", StickyAssociation)
register_association("load_aware", LoadAwareAssociation)

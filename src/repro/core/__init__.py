"""SkyRAN core: the paper's primary contribution.

Ties the substrates together into the epoch loop of Fig. 10:
localization flight -> UE localization -> (first epoch) optimal
-altitude search -> REM lookup/seed -> measurement-trajectory planning
-> measurement flight -> REM update -> max-min placement -> serve, and
re-trigger on aggregate performance drop.
"""

from repro.core.config import SkyRANConfig
from repro.core.placement import (
    PlacementResult,
    find_optimal_altitude,
    max_min_placement,
)
from repro.core.rem_store import REMStore
from repro.core.epoch import EpochTrigger
from repro.core.controller import EpochResult, SkyRANController
from repro.core.association import (
    AssociationPolicy,
    available_associations,
    make_association,
)
from repro.core.fleet import (
    FleetController,
    FleetEpochResult,
    FleetEvaluation,
    SectorAssignment,
)

__all__ = [
    "AssociationPolicy",
    "available_associations",
    "make_association",
    "FleetController",
    "FleetEpochResult",
    "FleetEvaluation",
    "SectorAssignment",
    "SkyRANConfig",
    "PlacementResult",
    "find_optimal_altitude",
    "max_min_placement",
    "REMStore",
    "EpochTrigger",
    "EpochResult",
    "SkyRANController",
]

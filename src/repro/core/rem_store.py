"""Temporal REM aggregation and reuse (paper Section 3.5).

REMs are keyed by UE *position*.  When a UE (re)appears within the
reuse radius ``R`` of a stored key, it inherits that REM — including
all its measurements — instead of starting from scratch; only truly
novel positions get a fresh FSPL-seeded map.  This is what makes
SkyRAN's probing overhead shrink across epochs under mobility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.geo.grid import GridSpec
from repro.perf import perf
from repro.rem.map import REM


def _key_of(xyz: np.ndarray) -> Tuple[float, float]:
    p = np.asarray(xyz, dtype=float)
    return (round(float(p[0]), 1), round(float(p[1]), 1))


@dataclass
class REMStore:
    """Position-keyed REM storage with radius-R reuse.

    Lookup is served from a uniform bucket grid over the stored keys
    (bucket width ``reuse_radius_m`` plus the 0.1 m key-rounding slack)
    so a radius-R query scans only the 3x3 bucket neighbourhood instead
    of every stored REM — O(1) expected per lookup where the linear
    scan made city-scale epochs O(n_store) per UE.  Candidates are
    visited in first-insertion order with the same ``d <= best_d``
    rule, so results (including equal-distance tie-breaks, which go to
    the latest-inserted key) are exactly those of a full linear scan.

    Attributes
    ----------
    grid:
        Grid all stored REMs share.
    reuse_radius_m:
        ``R``: maximum key distance for reuse (10 m default).
    """

    grid: GridSpec
    reuse_radius_m: float = 10.0
    _store: Dict[Tuple[float, float], REM] = field(default_factory=dict)
    #: Reuse/seed counters for overhead accounting in benches.
    hits: int = 0
    misses: int = 0
    _buckets: Dict[Tuple[int, int], List[Tuple[float, float]]] = field(
        default_factory=dict, repr=False
    )
    _order: Dict[Tuple[float, float], int] = field(default_factory=dict, repr=False)
    _seq: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        for key in self._store:
            self._index(key)

    # -- bucket index ------------------------------------------------------------

    @property
    def _bucket_width(self) -> float:
        # Keys are 0.1 m roundings of positions (<= ~0.071 m off), so a
        # REM within R of the query has its key within R + 0.2 per axis.
        return self.reuse_radius_m + 0.2

    def _bucket_of(self, x: float, y: float) -> Tuple[int, int]:
        w = self._bucket_width
        return (int(np.floor(x / w)), int(np.floor(y / w)))

    def _index(self, key: Tuple[float, float]) -> None:
        # First insertion fixes both bucket membership and scan order;
        # re-committing an existing key keeps its position, exactly
        # like dict insertion order under reassignment.
        if key not in self._order:
            self._order[key] = self._seq
            self._seq += 1
            self._buckets.setdefault(self._bucket_of(*key), []).append(key)

    def _put(self, key: Tuple[float, float], rem: REM) -> None:
        self._store[key] = rem
        self._index(key)

    def lookup(self, ue_xyz: np.ndarray) -> Optional[REM]:
        """Closest stored REM within the reuse radius, or None."""
        p = np.asarray(ue_xyz, dtype=float)
        bx, by = self._bucket_of(float(p[0]), float(p[1]))
        candidates: List[Tuple[float, float]] = []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                candidates.extend(self._buckets.get((bx + dx, by + dy), ()))
        candidates.sort(key=self._order.__getitem__)
        perf.count("rem_store.lookup_candidates", len(candidates))
        best, best_d = None, self.reuse_radius_m
        for key in candidates:
            rem = self._store[key]
            d = rem.distance_to_position(p)
            if d <= best_d:
                best, best_d = rem, d
        return best

    def get_or_create(
        self,
        ue_xyz: np.ndarray,
        altitude: float,
        prior_fn: Callable[[np.ndarray], np.ndarray],
    ) -> REM:
        """REM for a UE position: reuse within R, else FSPL-seed.

        ``prior_fn(ue_xyz)`` builds the model-based seed map for a
        novel position (Section 3.5: "SkyRAN initializes a new REM
        using a free-space path-loss model").
        """
        found = self.lookup(ue_xyz)
        if found is not None:
            self.hits += 1
            if not np.allclose(found.ue_xyz, ue_xyz):
                rem = found.rekeyed(ue_xyz)
                self._put(_key_of(ue_xyz), rem)
                return rem
            return found
        self.misses += 1
        rem = REM(
            self.grid,
            np.asarray(ue_xyz, dtype=float),
            altitude,
            prior=prior_fn(np.asarray(ue_xyz, dtype=float)),
        )
        self._put(_key_of(ue_xyz), rem)
        return rem

    def commit(self, rem: REM) -> None:
        """(Re)store a REM under its key position."""
        self._put(_key_of(rem.ue_xyz), rem)

    def all_rems(self) -> List[REM]:
        return list(self._store.values())

    def __len__(self) -> int:
        return len(self._store)

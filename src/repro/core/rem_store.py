"""Temporal REM aggregation and reuse (paper Section 3.5).

REMs are keyed by UE *position*.  When a UE (re)appears within the
reuse radius ``R`` of a stored key, it inherits that REM — including
all its measurements — instead of starting from scratch; only truly
novel positions get a fresh FSPL-seeded map.  This is what makes
SkyRAN's probing overhead shrink across epochs under mobility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.geo.grid import GridSpec
from repro.rem.map import REM


def _key_of(xyz: np.ndarray) -> Tuple[float, float]:
    p = np.asarray(xyz, dtype=float)
    return (round(float(p[0]), 1), round(float(p[1]), 1))


@dataclass
class REMStore:
    """Position-keyed REM storage with radius-R reuse.

    Attributes
    ----------
    grid:
        Grid all stored REMs share.
    reuse_radius_m:
        ``R``: maximum key distance for reuse (10 m default).
    """

    grid: GridSpec
    reuse_radius_m: float = 10.0
    _store: Dict[Tuple[float, float], REM] = field(default_factory=dict)
    #: Reuse/seed counters for overhead accounting in benches.
    hits: int = 0
    misses: int = 0

    def lookup(self, ue_xyz: np.ndarray) -> Optional[REM]:
        """Closest stored REM within the reuse radius, or None."""
        p = np.asarray(ue_xyz, dtype=float)
        best, best_d = None, self.reuse_radius_m
        for rem in self._store.values():
            d = rem.distance_to_position(p)
            if d <= best_d:
                best, best_d = rem, d
        return best

    def get_or_create(
        self,
        ue_xyz: np.ndarray,
        altitude: float,
        prior_fn: Callable[[np.ndarray], np.ndarray],
    ) -> REM:
        """REM for a UE position: reuse within R, else FSPL-seed.

        ``prior_fn(ue_xyz)`` builds the model-based seed map for a
        novel position (Section 3.5: "SkyRAN initializes a new REM
        using a free-space path-loss model").
        """
        found = self.lookup(ue_xyz)
        if found is not None:
            self.hits += 1
            if not np.allclose(found.ue_xyz, ue_xyz):
                rem = found.rekeyed(ue_xyz)
                self._store[_key_of(ue_xyz)] = rem
                return rem
            return found
        self.misses += 1
        rem = REM(
            self.grid,
            np.asarray(ue_xyz, dtype=float),
            altitude,
            prior=prior_fn(np.asarray(ue_xyz, dtype=float)),
        )
        self._store[_key_of(ue_xyz)] = rem
        return rem

    def commit(self, rem: REM) -> None:
        """(Re)store a REM under its key position."""
        self._store[_key_of(rem.ue_xyz)] = rem

    def all_rems(self) -> List[REM]:
        return list(self._store.values())

    def __len__(self) -> int:
        return len(self._store)

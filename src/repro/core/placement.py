"""UAV placement (paper Sections 3.3.1 and 3.4).

Two decisions: the operating *altitude* (first epoch: descend from the
FAA ceiling above the UE centroid while path loss keeps dropping) and
the horizontal *position* (argmax of the min-SNR map across per-UE
REMs — the max-min placement).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.geo.grid import GridSpec
from repro.geo.points import Point3D
from repro.rem.aggregate import argmax_cell, min_snr_map


@dataclass(frozen=True)
class PlacementResult:
    """Chosen operating position and its predicted worst-UE SNR.

    Attributes
    ----------
    position:
        Chosen 3D operating position.
    min_snr_db:
        Value of the min-SNR map at the chosen cell (the predicted
        SNR of the worst-served UE).
    cell:
        Grid index ``(iy, ix)`` of the chosen cell.
    """

    position: Point3D
    min_snr_db: float
    cell: tuple


def max_min_placement(
    grid: GridSpec,
    rem_maps: Sequence[np.ndarray],
    altitude: float,
) -> PlacementResult:
    """Max-min SNR placement over per-UE REMs (Section 3.4).

    Builds the min-SNR map (cell-wise minimum across UEs) and places
    the UAV at its maximum — guaranteeing the best possible worst-case
    QoS given the current REM estimates.
    """
    if len(rem_maps) == 0:
        raise ValueError("need at least one REM map")
    mm = min_snr_map(rem_maps)
    iy, ix = argmax_cell(mm)
    x, y = grid.center_of(ix, iy)
    return PlacementResult(
        position=Point3D(x, y, altitude),
        min_snr_db=float(mm[iy, ix]),
        cell=(iy, ix),
    )


def uncertainty_penalty_db(
    grid: GridSpec,
    measured_mask: np.ndarray,
    rate_db_per_m: float,
    cap_db: float,
    rows: Optional[slice] = None,
) -> Optional[np.ndarray]:
    """Distance-to-nearest-measurement placement discount (capped).

    An argmax over estimated maps selects for optimistic estimation
    errors, and unmeasured cells carry the largest ones; discounting
    each cell by ``rate * distance to the nearest measured cell``
    (capped) keeps max-min placement honest.  Returns None when the
    rate is non-positive or nothing is measured — the caller serves
    the map undiscounted, exactly as before the discount existed.

    ``rows`` restricts the output to one row-band of the grid.  The
    nearest-measured-cell query is independent per cell against the
    global measured set, so a band is bit-identical to slicing the
    full penalty — the property the streamed placement fold relies on.
    """
    if rate_db_per_m <= 0:
        return None
    mask = np.asarray(measured_mask, dtype=bool).ravel()
    if not mask.any():
        return None
    from scipy.spatial import cKDTree

    centers = grid.centers_flat()
    tree = cKDTree(centers[mask])
    if rows is None:
        query = centers
        shape = grid.shape
    else:
        band = centers.reshape(grid.ny, grid.nx, 2)[rows]
        shape = band.shape[:2]
        query = band.reshape(-1, 2)
    d, _ = tree.query(query)
    return np.minimum(rate_db_per_m * d, cap_db).reshape(shape)


def find_optimal_altitude(
    path_loss_at: Callable[[float], float],
    max_altitude_m: float = 120.0,
    min_altitude_m: float = 20.0,
    step_m: float = 10.0,
    patience: int = 3,
) -> float:
    """Descend from the ceiling while path loss keeps decreasing.

    ``path_loss_at(altitude)`` is a probe callback (in the real system,
    the UAV measures mean path loss to the UEs while descending above
    their centroid).  There is an interior optimum (Fig. 8): going up
    costs free-space loss, going too low magnifies terrain shadowing.
    The descent tracks the running minimum and stops only after
    ``patience`` consecutive non-improving steps, so a single noisy
    probe cannot end the search prematurely; it returns the altitude
    of the best loss seen.
    """
    if not 0 < min_altitude_m <= max_altitude_m:
        raise ValueError("need 0 < min_altitude_m <= max_altitude_m")
    if step_m <= 0:
        raise ValueError("step_m must be positive")
    if patience < 1:
        raise ValueError(f"patience must be >= 1, got {patience}")
    best_alt = max_altitude_m
    best_loss = path_loss_at(max_altitude_m)
    misses = 0
    alt = max_altitude_m - step_m
    while alt >= min_altitude_m - 1e-9:
        loss = path_loss_at(alt)
        if loss < best_loss:
            best_loss = loss
            best_alt = alt
            misses = 0
        else:
            misses += 1
            if misses >= patience:
                break  # loss has been rising: the minimum is behind us
        alt -= step_m
    return best_alt

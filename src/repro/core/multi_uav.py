"""Deprecated multi-UAV coordinator — use :mod:`repro.core.fleet`.

The paper-sketch coordinator of PRs past (independent per-sector
epochs, no interference) grew into the SINR-aware
:class:`~repro.core.fleet.FleetController`: inter-UAV interference is
now **in scope** — co-channel sky cells interfere, association and
joint placement run over SINR, and handovers are counted.  This
module keeps the old import path alive: :class:`MultiUAVCoordinator`
is a thin shim over :class:`FleetController` (same kw-only API, same
``__post_init__`` validation) that warns once on first construction.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from repro.core.fleet import (  # noqa: F401  (re-exported for old imports)
    FleetController,
    FleetEpochResult,
    SectorAssignment,
)

_warned = False


@dataclass(kw_only=True)
class MultiUAVCoordinator(FleetController):
    """Deprecated alias for :class:`~repro.core.fleet.FleetController`.

    Identical behaviour and (kw-only) signature; emits one
    :class:`DeprecationWarning` per process on first construction.
    """

    def __post_init__(self) -> None:
        global _warned
        if not _warned:
            _warned = True
            warnings.warn(
                "MultiUAVCoordinator is deprecated; use repro.core.fleet."
                "FleetController (same API, kw-only)",
                DeprecationWarning,
                stacklevel=3,
            )
        super().__post_init__()

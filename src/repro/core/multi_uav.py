"""Multi-UAV extension (paper Sections 7-8).

The paper argues SkyRAN "directly supports multi-UAV deployments: the
REM are cooperatively constructed and shared amongst multiple SkyRAN
UAVs".  This module implements that extension at the level the paper
sketches it:

* the operating area is partitioned into per-UAV sectors (balanced
  K-means over the UE estimates, so sectors track where users are);
* every UAV contributes its measurements to one **shared**
  :class:`~repro.core.rem_store.REMStore` and one shared
  :class:`~repro.trajectory.information.TrajectoryHistory`, so a UE
  wandering between sectors keeps its map and no UAV re-probes
  airspace another has covered;
* each UAV then runs the standard single-UAV epoch inside its sector.

Inter-UAV interference and the backhaul mesh are out of scope, as in
the paper (SkyHAUL/SkyCORE territory).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.channel.model import ChannelModel
from repro.core.config import SkyRANConfig
from repro.core.controller import EpochResult, SkyRANController
from repro.geo.grid import GridSpec
from repro.geo.kmeans import kmeans
from repro.lte.enodeb import ENodeB
from repro.lte.ue import UE


@dataclass(frozen=True)
class SectorAssignment:
    """Which UEs each UAV serves this epoch.

    Attributes
    ----------
    ue_ids_by_uav:
        UE ids per UAV index.
    centers:
        Sector centers (the K-means centroids of the UE estimates).
    """

    ue_ids_by_uav: Dict[int, List[int]]
    centers: np.ndarray


@dataclass(frozen=True)
class FleetEpochResult:
    """Per-UAV epoch results plus the fleet-level assignment."""

    assignment: SectorAssignment
    per_uav: Dict[int, EpochResult]

    @property
    def total_flight_distance_m(self) -> float:
        return float(sum(r.flight_distance_m for r in self.per_uav.values()))


@dataclass
class MultiUAVCoordinator:
    """Runs ``n_uavs`` SkyRAN controllers over one operating area.

    All controllers share the radio world (``channel``), the REM store
    and the trajectory history; each gets its own eNodeB serving the
    UEs assigned to its sector.

    Parameters
    ----------
    channel:
        The shared radio environment.
    ues:
        All UEs in the operating area.
    n_uavs:
        Fleet size.
    config:
        Per-UAV SkyRAN configuration.
    seed:
        Base seed; UAV ``i`` runs with ``seed + i``.
    """

    channel: ChannelModel
    ues: List[UE]
    n_uavs: int = 2
    config: SkyRANConfig = field(default_factory=SkyRANConfig)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_uavs < 1:
            raise ValueError(f"need at least one UAV, got {self.n_uavs}")
        if len(self.ues) < self.n_uavs:
            raise ValueError(
                f"{self.n_uavs} UAVs need at least as many UEs, got {len(self.ues)}"
            )
        terrain_grid = self.channel.terrain.grid
        factor = max(
            1, int(round(self.config.rem_cell_size_m / terrain_grid.cell_size))
        )
        self.rem_grid: GridSpec = terrain_grid.coarsen(factor)
        self.controllers: List[SkyRANController] = []
        self._enodebs: List[ENodeB] = []
        for i in range(self.n_uavs):
            enodeb = ENodeB()
            ctrl = SkyRANController(
                self.channel,
                enodeb,
                self.config,
                rem_grid=self.rem_grid,
                seed=self.seed + i,
            )
            self.controllers.append(ctrl)
            self._enodebs.append(enodeb)
        # Cooperative state: one store, one history, shared by all.
        shared_store = self.controllers[0].rem_store
        shared_history = self.controllers[0].history
        for ctrl in self.controllers[1:]:
            ctrl.rem_store = shared_store
            ctrl.history = shared_history
        self.rem_store = shared_store

    # -- sectorization -------------------------------------------------------------

    def assign_sectors(self, positions: Optional[Dict[int, np.ndarray]] = None) -> SectorAssignment:
        """Partition UEs into per-UAV sectors by K-means.

        ``positions`` defaults to the true UE positions for the first
        epoch (in a deployment, the previous epoch's estimates).
        """
        if positions is None:
            positions = {ue.ue_id: ue.xyz for ue in self.ues}
        ids = sorted(positions)
        pts = np.array([positions[i][:2] for i in ids])
        km = kmeans(pts, self.n_uavs, seed=self.seed)
        by_uav: Dict[int, List[int]] = {i: [] for i in range(self.n_uavs)}
        for ue_id, label in zip(ids, km.labels):
            by_uav[int(label)].append(ue_id)
        # A sector can come out empty when clusters collapse; steal the
        # nearest UE from the largest sector so every UAV has work.
        for uav_idx in range(self.n_uavs):
            if not by_uav[uav_idx]:
                donor = max(by_uav, key=lambda k: len(by_uav[k]))
                if len(by_uav[donor]) > 1:
                    center = km.centers[uav_idx]
                    best = min(
                        by_uav[donor],
                        key=lambda uid: float(
                            np.hypot(*(positions[uid][:2] - center))
                        ),
                    )
                    by_uav[donor].remove(best)
                    by_uav[uav_idx].append(best)
        return SectorAssignment(ue_ids_by_uav=by_uav, centers=km.centers)

    def _rehome_ues(self, assignment: SectorAssignment) -> None:
        """Move every UE onto its sector's eNodeB (idempotent)."""
        ue_by_id = {ue.ue_id: ue for ue in self.ues}
        for enodeb in self._enodebs:
            for ue in list(enodeb.ues):
                enodeb.deregister_ue(ue.ue_id)
        for uav_idx, ue_ids in assignment.ue_ids_by_uav.items():
            for ue_id in ue_ids:
                self._enodebs[uav_idx].register_ue(ue_by_id[ue_id])

    # -- the fleet epoch -----------------------------------------------------------------

    def run_epoch(self, budget_per_uav_m: Optional[float] = None) -> FleetEpochResult:
        """One cooperative epoch: sectorize, then each UAV runs SkyRAN.

        UAVs run sequentially in simulation; their flights are
        independent in the model (no interference), so wall-clock
        overhead per UAV is each controller's own flight time.
        """
        assignment = self.assign_sectors(self._last_estimates() or None)
        self._rehome_ues(assignment)
        results: Dict[int, EpochResult] = {}
        for uav_idx, ctrl in enumerate(self.controllers):
            if not assignment.ue_ids_by_uav[uav_idx]:
                continue
            results[uav_idx] = ctrl.run_epoch(budget_per_uav_m)
        return FleetEpochResult(assignment=assignment, per_uav=results)

    def _last_estimates(self) -> Dict[int, np.ndarray]:
        merged: Dict[int, np.ndarray] = {}
        for ctrl in self.controllers:
            merged.update(ctrl._last_estimates)
        return merged

    # -- fleet-level KPIs --------------------------------------------------------------

    def per_ue_snr_db(self) -> Dict[int, float]:
        """Best-serving-UAV SNR per UE at the current fleet positions."""
        out: Dict[int, float] = {}
        for ue in self.ues:
            best = -np.inf
            for ctrl in self.controllers:
                best = max(best, float(self.channel.snr_db(ctrl.uav.position, ue.xyz)))
            out[ue.ue_id] = best
        return out

    def per_ue_sinr_db(
        self, assignment: SectorAssignment, activity: Optional[Sequence[float]] = None
    ) -> Dict[int, float]:
        """Per-UE SINR under co-channel operation of the whole fleet.

        Unlike :meth:`per_ue_snr_db`, this charges each link with the
        other UAVs' downlink as interference — the honest fleet KPI
        when all UAVs share one carrier.
        """
        from repro.channel.interference import fleet_sinr_db

        positions = [ctrl.uav.position for ctrl in self.controllers]
        serving = {
            ue_id: uav_idx
            for uav_idx, ue_ids in assignment.ue_ids_by_uav.items()
            for ue_id in ue_ids
        }
        ue_positions = {ue.ue_id: ue.xyz for ue in self.ues if ue.ue_id in serving}
        return fleet_sinr_db(self.channel, positions, ue_positions, serving, activity)

"""SkyRAN configuration.

One dataclass holding every operational knob the paper exposes, with
the paper's values as defaults (Sections 3-4).  Construction is
keyword-only and validated: a misconfigured run — negative rates,
inverted altitude bounds, an interpolator name nothing registered —
fails at config time with a clear message, not hours into a sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rem.interpolate import available_interpolators
from repro.traffic.generators import available_traffic_models
from repro.traffic.schedulers import available_schedulers


@dataclass(kw_only=True)
class SkyRANConfig:
    """Operational parameters of a SkyRAN UAV.

    Attributes
    ----------
    localization_flight_m:
        Length of the random localization flight.  The paper uses
        20 m; our synthetic noise structure saturates at ~30 m
        (reproduction Fig. 19), so the default is 30 m.
    localization_speed_mps:
        Ground speed of the localization flight.  Flown much slower
        than measurement cruise so the 50 Hz GPS / 100 Hz SRS streams
        yield enough fused observations per meter for the
        offset-augmented solve.
    localization_altitude_m:
        Altitude the localization flight is flown at.  Two opposing
        effects: lower improves the ranging geometry (stronger
        horizontal range gradient), but flying near obstruction tops
        puts grazing NLOS multipath bias into the ranges — and bias
        hurts the offset-augmented solve far more than geometry.
        Flying well above the clutter wins.
    max_altitude_m:
        FAA ceiling the altitude search starts from (120 m).
    min_altitude_m:
        Floor for the altitude search.
    altitude_step_m:
        Descent step while tracking path loss.
    measurement_budget_m:
        Default per-epoch measurement trajectory budget.
    rem_cell_size_m:
        Cell size of estimated REMs (1 m in the paper; coarser speeds
        up large scale-up simulations).
    reuse_radius_m:
        ``R`` of Section 3.5: a UE within R of a stored REM's key
        position inherits that REM (10 m, from Fig. 9).
    epoch_margin:
        Aggregate-throughput drop fraction that triggers a new epoch
        (0.1 in the paper's example).
    k_min, k_max:
        Cluster-count range for the trajectory planner.
    gradient_quantile:
        Gradient threshold quantile (0.5 = paper's median).
    tof_upsampling:
        SRS correlation upsampling ``K`` (4 in the paper).
    interpolator:
        Registered REM interpolation scheme (``"idw"`` — the paper's
        choice — or ``"kriging"``); validated against
        :func:`repro.rem.interpolate.available_interpolators`.
    idw_power:
        IDW distance exponent (2 = paper's squared inverse distance).
    idw_neighbors:
        Measured cells contributing to each interpolated cell (any
        interpolation scheme).
    sample_spacing_m:
        Probe-point spacing when sampling trajectories.
    uncertainty_penalty_db_per_m / uncertainty_penalty_cap_db:
        Robust-placement extension (not in the paper): before the
        max-min argmax, each cell's estimated SNR is discounted by
        ``penalty * distance to the nearest measured cell`` (capped).
        Interpolated/FSPL-seeded values far from any measurement are
        optimistic on average, and an argmax *selects for* optimistic
        errors; the discount keeps placement honest.  Set the rate to
        0 to recover the paper's plain max-min placement.
    epoch_debounce:
        Consecutive below-margin throughput samples required before the
        epoch trigger fires (1 = the paper's instant trigger).  Under
        fault injection a single corrupted KPI sample can look like a
        real degradation; debouncing keeps transient faults from
        thrashing epochs.
    localization_max_retries:
        Degraded-mode fallback: how many times the controller may
        re-fly the localization leg when the joint solve comes back
        starved or with blown-up residuals (only engaged when a fault
        injector is wired in).
    localization_residual_limit_m:
        Per-UE residual RMS above which an estimate is considered
        untrustworthy and the last-good estimate is preferred.
    min_inlier_fraction:
        Per-UE inlier fraction below which an estimate is considered
        untrustworthy.
    tof_quality_floor:
        Correlation peak-to-background ratio below which an SRS
        reception is discarded during chaos runs (0 disables the gate;
        it is never applied in fault-free runs).
    traffic_model:
        Registered per-UE workload (``"full_buffer"`` — the legacy
        idealization — ``"cbr"``, ``"poisson"``, ``"onoff_video"``);
        validated against
        :func:`repro.traffic.generators.available_traffic_models`.
    scheduler:
        Registered TTI scheduler (``"round_robin"``,
        ``"proportional_fair"``, ``"max_min"``); validated against
        :func:`repro.traffic.schedulers.available_schedulers`.
    traffic_rate_mbps:
        Mean offered rate per UE for the rate-driven workloads.
    traffic_buffer_bytes:
        Per-UE RLC buffer bound with tail drop; 0 = unbounded.
    epoch_trigger_metric:
        What the epoch trigger watches while serving: ``"capacity"``
        (the legacy full-cell mean throughput, load-independent),
        ``"served"`` (aggregate *served* rate from the MAC simulation,
        which diverges from capacity exactly when the offered load
        does not saturate the cell — the paper's Section 3.5 signal
        computed on real traffic), or ``"learned"`` (the capacity KPI
        plus a :mod:`repro.learn` collapse predictor that can fire the
        epoch trigger *before* the reactive 10% rule; falls back to
        the reactive rule whenever the model or its input cannot be
        trusted).
    learn_model_path:
        Path to a serialized REM-residual model for the ``"learned"``
        interpolator (ignored by the analytic schemes).  None — the
        default — leaves the learned interpolator bit-identical to
        plain IDW.
    learn_trigger_model_path:
        Path to a serialized epoch-KPI model for the ``"learned"``
        trigger metric.  None leaves the trigger purely reactive.
    tti_batch:
        TTIs simulated per serving-time MAC batch (1000 = 1 s).
    pf_time_constant_tti:
        EWMA horizon of the proportional-fair average (TTIs).
    stream_epoch_threshold:
        Connected-UE count at which :meth:`~repro.core.controller.
        SkyRANController.run_epoch` switches from the materialized
        per-UE epoch (one REM + full map per UE) to the streamed,
        REM-key-deduplicated pipeline.  The default keeps every paper
        scenario (tens of UEs) on the byte-identical materialized
        path; ``REPRO_STREAM_EPOCH=1``/``0`` overrides the threshold
        either way.
    rem_key_pitch_m:
        Quantization pitch of the streamed path's REM-key dedup: UE
        estimates in the same pitch cell share one REM and one
        interpolated map.  At the city generator's REM key pitch
        (32 m) dedup is exact — city UEs sharing a key cell already
        share position-keyed REMs.
    """

    localization_flight_m: float = 30.0
    localization_speed_mps: float = 3.0
    localization_altitude_m: float = 100.0
    max_altitude_m: float = 120.0
    min_altitude_m: float = 20.0
    altitude_step_m: float = 10.0
    measurement_budget_m: float = 600.0
    rem_cell_size_m: float = 1.0
    reuse_radius_m: float = 10.0
    epoch_margin: float = 0.1
    k_min: int = 3
    k_max: int = 10
    gradient_quantile: float = 0.5
    tof_upsampling: int = 4
    interpolator: str = "idw"
    idw_power: float = 2.0
    idw_neighbors: int = 12
    sample_spacing_m: float = 1.0
    uncertainty_penalty_db_per_m: float = 0.1
    uncertainty_penalty_cap_db: float = 6.0
    epoch_debounce: int = 1
    localization_max_retries: int = 1
    localization_residual_limit_m: float = 60.0
    min_inlier_fraction: float = 0.35
    tof_quality_floor: float = 2.0
    traffic_model: str = "full_buffer"
    scheduler: str = "round_robin"
    traffic_rate_mbps: float = 2.0
    traffic_buffer_bytes: float = 0.0
    epoch_trigger_metric: str = "capacity"
    learn_model_path: "str | None" = None
    learn_trigger_model_path: "str | None" = None
    tti_batch: int = 1000
    pf_time_constant_tti: int = 100
    stream_epoch_threshold: int = 512
    rem_key_pitch_m: float = 32.0

    def __post_init__(self) -> None:
        if self.localization_flight_m <= 0:
            raise ValueError("localization_flight_m must be positive")
        if self.localization_speed_mps <= 0:
            raise ValueError("localization_speed_mps must be positive")
        if not 0 < self.min_altitude_m <= self.max_altitude_m:
            raise ValueError("need 0 < min_altitude_m <= max_altitude_m")
        if self.altitude_step_m <= 0:
            raise ValueError("altitude_step_m must be positive")
        if self.measurement_budget_m <= 0:
            raise ValueError("measurement_budget_m must be positive")
        if self.rem_cell_size_m <= 0:
            raise ValueError("rem_cell_size_m must be positive")
        if not 0.0 < self.epoch_margin < 1.0:
            raise ValueError("epoch_margin must be in (0, 1)")
        if self.reuse_radius_m < 0:
            raise ValueError("reuse_radius_m must be >= 0")
        if self.interpolator not in available_interpolators():
            known = ", ".join(available_interpolators())
            raise ValueError(
                f"unknown interpolator {self.interpolator!r} (known: {known})"
            )
        if self.idw_power <= 0:
            raise ValueError("idw_power must be positive")
        if self.idw_neighbors < 1:
            raise ValueError("idw_neighbors must be >= 1")
        if self.epoch_debounce < 1:
            raise ValueError("epoch_debounce must be >= 1")
        if self.localization_max_retries < 0:
            raise ValueError("localization_max_retries must be >= 0")
        if self.localization_residual_limit_m <= 0:
            raise ValueError("localization_residual_limit_m must be positive")
        if not 0.0 <= self.min_inlier_fraction <= 1.0:
            raise ValueError("min_inlier_fraction must be in [0, 1]")
        if self.tof_quality_floor < 0:
            raise ValueError("tof_quality_floor must be >= 0")
        if self.traffic_model not in available_traffic_models():
            known = ", ".join(available_traffic_models())
            raise ValueError(
                f"unknown traffic model {self.traffic_model!r} (known: {known})"
            )
        if self.scheduler not in available_schedulers():
            known = ", ".join(available_schedulers())
            raise ValueError(f"unknown scheduler {self.scheduler!r} (known: {known})")
        if self.traffic_rate_mbps <= 0:
            raise ValueError("traffic_rate_mbps must be positive")
        if self.traffic_buffer_bytes < 0:
            raise ValueError("traffic_buffer_bytes must be >= 0")
        if self.epoch_trigger_metric not in ("capacity", "served", "learned"):
            raise ValueError(
                "epoch_trigger_metric must be 'capacity', 'served', or "
                f"'learned', got {self.epoch_trigger_metric!r}"
            )
        if self.tti_batch < 1:
            raise ValueError("tti_batch must be >= 1")
        if self.pf_time_constant_tti < 1:
            raise ValueError("pf_time_constant_tti must be >= 1")
        if self.stream_epoch_threshold < 1:
            raise ValueError("stream_epoch_threshold must be >= 1")
        if self.rem_key_pitch_m <= 0:
            raise ValueError("rem_key_pitch_m must be positive")

"""repro — a full reproduction of *SkyRAN: A Self-Organizing LTE RAN
in the Sky* (Chakraborty et al., CoNEXT 2018).

The public API re-exports the pieces a downstream user composes:

>>> from repro import Scenario, SkyRANController
>>> scenario = Scenario.create("campus", n_ues=7, cell_size=2.0)
>>> ctrl = SkyRANController(scenario.channel, scenario.enodeb)
>>> result = ctrl.run_epoch(budget_m=600.0)
>>> scenario.relative_throughput(result.placement.position)  # ~0.9+

See DESIGN.md for the subsystem inventory and EXPERIMENTS.md for the
per-figure reproduction index.
"""

from repro.channel import ChannelModel, LinkBudget
from repro.core import (
    EpochResult,
    EpochTrigger,
    SkyRANConfig,
    SkyRANController,
    find_optimal_altitude,
    max_min_placement,
)
from repro.baselines import (
    CentroidController,
    RandomPlacementController,
    UniformController,
)
from repro.geo import GridSpec, Point2D, Point3D
from repro.lte import ENodeB, EPC, SRSConfig, ToFEstimator, UE, throughput_mbps
from repro.rem import REM, idw_interpolate, median_abs_error_db
from repro.sim import Scenario, overhead_to_target, run_epochs
from repro.terrain import Terrain, make_terrain
from repro.trajectory import SkyRANPlanner, Trajectory

__version__ = "1.0.0"

__all__ = [
    "ChannelModel",
    "LinkBudget",
    "EpochResult",
    "EpochTrigger",
    "SkyRANConfig",
    "SkyRANController",
    "find_optimal_altitude",
    "max_min_placement",
    "CentroidController",
    "RandomPlacementController",
    "UniformController",
    "GridSpec",
    "Point2D",
    "Point3D",
    "ENodeB",
    "EPC",
    "SRSConfig",
    "ToFEstimator",
    "UE",
    "throughput_mbps",
    "REM",
    "idw_interpolate",
    "median_abs_error_db",
    "Scenario",
    "overhead_to_target",
    "run_epochs",
    "Terrain",
    "make_terrain",
    "SkyRANPlanner",
    "Trajectory",
]

"""SkyRAN's measurement-trajectory planner (paper Steps 6.1-6.4).

Pipeline per candidate ``K``:

1. **Aggregate** the current per-UE REM estimates (cell-wise sum).
2. **Gradient map**: per-cell max difference to adjacent cells.
3. **Threshold** at the median gradient; keep high-gradient cells.
4. **K-means** the high-gradient cells into ``K`` spatial clusters.
5. **TSP** over the ``K`` cluster heads (open tour from the head
   nearest the UAV), truncated to the measurement budget.
6. Score by **information gain / cost** using the per-UE trajectory
   history; the best-ratio candidate wins.

Because early-epoch REMs are FSPL-seeded around the *localized* UE
positions, the gradient concentrates near UEs and terrain features —
this is precisely how UE location-awareness steers the probing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.geo.grid import GridSpec
from repro.geo.kmeans import kmeans
from repro.geo.tsp import solve_tsp
from repro.rem.aggregate import aggregate_rem
from repro.rem.gradient import gradient_map, high_gradient_cells
from repro.trajectory.base import Trajectory
from repro.trajectory.information import TrajectoryHistory


@dataclass(frozen=True)
class PlanResult:
    """A planned measurement trajectory plus its planning diagnostics.

    Attributes
    ----------
    trajectory:
        The winning (budget-truncated) flight path.
    k:
        Number of clusters behind the winning path.
    info_gain:
        Mean per-UE information gain of the winning path.
    ratio:
        Information-to-cost ratio that won.
    candidates:
        ``(k, length, gain, ratio)`` rows for every evaluated K.
    """

    trajectory: Trajectory
    k: int
    info_gain: float
    ratio: float
    candidates: List[tuple]


@dataclass
class SkyRANPlanner:
    """The Step-6 planner.

    Attributes
    ----------
    k_min, k_max:
        Range of cluster counts to evaluate (paper: K in
        {Kmin..Kmax}).
    gradient_quantile:
        Gradient threshold quantile (0.5 = the paper's median).
    max_cluster_cells:
        Upper bound on high-gradient cells fed to K-means; beyond it
        cells are subsampled by gradient-weighted probability (pure
        speed knob, keeps planning O(10k) points).
    seed:
        RNG seed for K-means and subsampling.
    """

    k_min: int = 3
    k_max: int = 24
    k_window: int = 8
    gradient_quantile: float = 0.5
    max_cluster_cells: int = 4000
    seed: int = 0

    def __post_init__(self) -> None:
        if not 1 <= self.k_min <= self.k_max:
            raise ValueError(
                f"need 1 <= k_min <= k_max, got {self.k_min}..{self.k_max}"
            )
        if self.k_window < 1:
            raise ValueError(f"k_window must be >= 1, got {self.k_window}")

    def plan(
        self,
        grid: GridSpec,
        rem_maps: Sequence[np.ndarray],
        ue_positions: Sequence[np.ndarray],
        uav_xy: np.ndarray,
        altitude: float,
        budget_m: float,
        history: Optional[TrajectoryHistory] = None,
        aggregate: Optional[np.ndarray] = None,
    ) -> PlanResult:
        """Compute the epoch's measurement trajectory.

        Parameters
        ----------
        grid:
            Operating-area grid.
        rem_maps:
            Current full-map estimates (interpolated or FSPL-seeded),
            one per UE.
        ue_positions:
            Localized UE positions (keys for the trajectory history).
        uav_xy:
            UAV position at planning time; the tour starts near it.
        altitude:
            Operating altitude the trajectory will be flown at.
        budget_m:
            Measurement budget (trajectory length cap).
        history:
            Per-UE trajectory history for information gain; a fresh
            empty history (everything maximally informative) if
            omitted.
        aggregate:
            Precomputed aggregate REM (Step 6.1's cell-wise sum).  The
            streamed epoch pipeline folds it incrementally
            (:func:`repro.rem.aggregate.aggregate_rem_running`) instead
            of materializing the per-UE stack; passing it here skips
            the internal :func:`aggregate_rem` and lets ``rem_maps`` be
            empty.  Identical planning when it equals
            ``aggregate_rem(rem_maps)``.
        """
        if aggregate is None and len(rem_maps) == 0:
            raise ValueError("need at least one REM map")
        if budget_m <= 0:
            raise ValueError(f"budget_m must be positive, got {budget_m}")
        history = history or TrajectoryHistory()
        uav_xy = np.asarray(uav_xy, dtype=float).reshape(2)

        agg = aggregate_rem(rem_maps) if aggregate is None else np.asarray(aggregate, dtype=float)
        grad = gradient_map(agg)
        iy, ix = high_gradient_cells(grad, self.gradient_quantile)
        if len(iy) == 0:
            # Perfectly flat aggregate (e.g. all-NaN): fall back to the
            # whole grid so planning still returns a usable path.
            iy, ix = np.where(np.ones(grid.shape, dtype=bool))
        xs = grid.origin_x + (ix + 0.5) * grid.cell_size
        ys = grid.origin_y + (iy + 0.5) * grid.cell_size
        cells = np.column_stack([xs, ys])
        weights = grad[iy, ix]
        weights = np.where(np.isfinite(weights), weights, 0.0) + 1e-9

        rng = np.random.default_rng(self.seed)
        if len(cells) > self.max_cluster_cells:
            probs = weights / weights.sum()
            pick = rng.choice(len(cells), self.max_cluster_cells, replace=False, p=probs)
            cells = cells[pick]
            weights = weights[pick]

        # Build tours for growing K until they no longer fit the
        # measurement budget: the candidate set is the K-window of the
        # *richest* tours the budget affords.  (With an empty history
        # every gain is Imax, so a fixed K range would degenerate to
        # "always fly the shortest tour" and leave the budget unused;
        # anchoring the window at the budget keeps the paper's
        # ratio rule meaningful at every budget.)
        tours: List[tuple] = []  # (k, trajectory, length)
        for k in range(self.k_min, min(self.k_max, len(cells)) + 1):
            km = kmeans(cells, k, seed=self.seed + k, weights=weights)
            heads = km.centers
            start = int(np.argmin(np.hypot(*(heads - uav_xy).T)))
            order = solve_tsp(heads, start=start)
            path = np.vstack([uav_xy[None, :], heads[order]])
            traj = Trajectory(path, altitude, "skyran")
            tours.append((k, traj, traj.length_m))
            if traj.length_m > budget_m and k >= self.k_min + 1:
                break
        feasible = [t for t in tours if t[2] <= budget_m]
        if feasible:
            window = feasible[-self.k_window :]
        else:
            # Even the smallest tour exceeds the budget: truncate it.
            k0, traj0, _ = tours[0]
            window = [(k0, traj0.truncated(budget_m), budget_m)]

        candidates: List[tuple] = []
        best: Optional[tuple] = None
        for k, traj, length in window:
            length = max(length, 1e-6)
            gain = history.mean_gain(traj, ue_positions)
            ratio = gain / length
            candidates.append((k, length, gain, ratio))
            if best is None or ratio > best[0]:
                best = (ratio, k, gain, traj)

        ratio, k, gain, traj = best
        return PlanResult(
            trajectory=traj, k=k, info_gain=gain, ratio=ratio, candidates=candidates
        )

"""The Uniform baseline's zigzag (lawnmower) trajectory.

Uniform "does not use UE location information and REMs, and instead
adopts a zigzag trajectory across the test area, starting from one
corner of the test area boundary, to measure the channel state
uniformly" (paper Section 4.2).  The same shape, flown exhaustively at
tight row spacing, is also how ground-truth REMs are collected
(Fig. 15).
"""

from __future__ import annotations

import numpy as np

from repro.geo.grid import GridSpec
from repro.trajectory.base import Trajectory


def zigzag_trajectory(
    grid: GridSpec,
    row_spacing_m: float,
    altitude: float,
    margin_m: float = 0.0,
    label: str = "uniform",
    row_offset_m: float = 0.0,
) -> Trajectory:
    """Corner-to-corner lawnmower sweep with a fixed row spacing.

    Rows run east-west, stepping north by ``row_spacing_m`` between
    passes, starting at the south-west corner.  ``row_offset_m``
    shifts all rows north (mod the spacing) so successive sweeps can
    interleave rather than retrace each other.
    """
    if row_spacing_m <= 0:
        raise ValueError(f"row_spacing_m must be positive, got {row_spacing_m}")
    x0 = grid.origin_x + margin_m
    x1 = grid.max_x - margin_m
    y0 = grid.origin_y + margin_m
    y1 = grid.max_y - margin_m
    if x1 <= x0 or y1 <= y0:
        raise ValueError("margin leaves no sweepable area")
    ys = np.arange(y0 + (row_offset_m % row_spacing_m), y1 + 1e-9, row_spacing_m)
    if len(ys) == 0:
        ys = np.array([y0])
    if ys[-1] < y1 - 1e-9:
        ys = np.append(ys, y1)
    waypoints = []
    for i, y in enumerate(ys):
        if i % 2 == 0:
            waypoints.append((x0, y))
            waypoints.append((x1, y))
        else:
            waypoints.append((x1, y))
            waypoints.append((x0, y))
    return Trajectory(np.asarray(waypoints), altitude, label)


def zigzag_for_budget(
    grid: GridSpec,
    budget_m: float,
    altitude: float,
    margin_m: float = 0.0,
    label: str = "uniform",
    row_offset_m: float = 0.0,
) -> Trajectory:
    """A zigzag whose *total* length approximately equals the budget.

    Uniform spends its whole measurement budget sweeping the area at
    the densest row spacing the budget affords: a budget of ``L``
    over a ``W x H`` area buys roughly ``(L - H) / W`` rows.  The
    result is then truncated to exactly the budget.
    """
    if budget_m <= 0:
        raise ValueError(f"budget_m must be positive, got {budget_m}")
    width = grid.width - 2 * margin_m
    height = grid.height - 2 * margin_m
    if width <= 0 or height <= 0:
        raise ValueError("margin leaves no sweepable area")
    n_rows = max(2, int((budget_m - height) / width) + 1)
    spacing = height / (n_rows - 1)
    traj = zigzag_trajectory(grid, spacing, altitude, margin_m, label, row_offset_m)
    return traj.truncated(budget_m)

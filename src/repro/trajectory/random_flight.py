"""The short random localization flight that opens each epoch.

SkyRAN "executes a short random flight trajectory during which it
records LTE's PHY-layer Synchronization Reference Signals" (paper
Section 1).  The flight needs spatial diversity — turns, not a straight
line — because multilateration geometry degrades when all anchors are
collinear.  We draw random waypoints inside a box around the start
point until the requested length is reached.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.geo.grid import GridSpec
from repro.trajectory.base import Trajectory


def random_flight(
    grid: GridSpec,
    start_xy: Sequence[float],
    length_m: float,
    altitude: float,
    rng: Optional[np.random.Generator] = None,
    leg_m: float = 5.0,
    box_m: float = 40.0,
    label: str = "localization",
) -> Trajectory:
    """A random multi-leg flight of approximately ``length_m`` meters.

    Parameters
    ----------
    grid:
        Operating area; waypoints are clamped inside it.
    start_xy:
        Take-off point of the flight (usually the UAV's current hover).
    length_m:
        Target flight length (the paper uses ~20 m; Fig. 19 shows
        accuracy saturates there).
    altitude:
        Flight altitude.
    rng:
        Random generator (a fresh default if omitted).
    leg_m:
        Mean leg length between direction changes.
    box_m:
        Half-width of the box around the start the flight stays in —
        localization flights are deliberately local so they are cheap.
    """
    if length_m <= 0:
        raise ValueError(f"length_m must be positive, got {length_m}")
    if leg_m <= 0:
        raise ValueError(f"leg_m must be positive, got {leg_m}")
    rng = rng or np.random.default_rng()
    start = np.asarray(start_xy, dtype=float).reshape(2)
    lo = np.array(
        [max(grid.origin_x, start[0] - box_m), max(grid.origin_y, start[1] - box_m)]
    )
    hi = np.array(
        [min(grid.max_x, start[0] + box_m), min(grid.max_y, start[1] + box_m)]
    )
    waypoints = [grid.clamp(*start)]
    total = 0.0
    current = np.asarray(waypoints[0])
    heading = rng.uniform(0.0, 2 * np.pi)
    while total < length_m:
        # Correlated random walk: turn up to +/- 120 degrees per leg.
        heading += rng.uniform(-2 * np.pi / 3, 2 * np.pi / 3)
        step = rng.uniform(0.5 * leg_m, 1.5 * leg_m)
        nxt = current + step * np.array([np.cos(heading), np.sin(heading)])
        nxt = np.clip(nxt, lo, hi)
        moved = float(np.hypot(*(nxt - current)))
        if moved < 1e-6:
            # Bounced off the box corner; pick a fresh heading.
            heading = rng.uniform(0.0, 2 * np.pi)
            continue
        waypoints.append((float(nxt[0]), float(nxt[1])))
        total += moved
        current = nxt
    traj = Trajectory(np.asarray(waypoints), altitude, label)
    return traj.truncated(length_m)

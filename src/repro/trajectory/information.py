"""Trajectory information gain (paper Step 6.4).

Each UE carries the set of measurement trajectories flown for it in
previous epochs.  The information a *candidate* trajectory offers a UE
is "the shortest distance between the new trajectory and all the
historical trajectories in the set assigned to the UE" — i.e. how far
the candidate strays from everything already explored for that UE.  A
UE with no history gets a large fixed gain ``i_max``.  The planner
then maximizes mean-gain / length over candidates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.geo.paths import polyline_to_polyline_distance
from repro.trajectory.base import Trajectory

#: Default gain assigned to a UE with no trajectory history.  The
#: paper only requires it to be "a large fixed value"; 1000 m is an
#: order of magnitude beyond typical trajectory separations.
DEFAULT_I_MAX = 1000.0


def information_gain(
    candidate: Trajectory,
    history: Sequence[Trajectory],
    i_max: float = DEFAULT_I_MAX,
    spacing_m: float = 10.0,
) -> float:
    """Gain a candidate trajectory offers one UE.

    ``min`` over historical trajectories of the polyline distance:
    a candidate that retraces *any* previous flight is worthless, no
    matter how far it is from the others.
    """
    if i_max <= 0:
        raise ValueError(f"i_max must be positive, got {i_max}")
    if not history:
        return i_max
    gain = min(
        polyline_to_polyline_distance(candidate.waypoints, h.waypoints, spacing_m)
        for h in history
    )
    return float(min(gain, i_max))


def _pos_key(ue_xyz: np.ndarray, quantum_m: float = 1.0):
    p = np.asarray(ue_xyz, dtype=float)
    return (round(p[0] / quantum_m), round(p[1] / quantum_m))


@dataclass
class TrajectoryHistory:
    """Per-UE-position sets of flown measurement trajectories.

    Keyed by quantized UE position (like REMs, Section 3.5), so a UE
    returning to a known spot inherits the exploration history of that
    spot and the planner does not re-probe it from scratch.

    ``quantum_m`` is the key quantization pitch; stored keys are in
    key-index units and must be scaled back to meters before any
    comparison against a raw position.
    """

    i_max: float = DEFAULT_I_MAX
    reuse_radius_m: float = 10.0
    quantum_m: float = 1.0
    _store: Dict[tuple, List[Trajectory]] = field(default_factory=dict)

    def record(self, ue_xyz: np.ndarray, trajectory: Trajectory) -> None:
        """Log a flown trajectory against a UE position."""
        key = _pos_key(ue_xyz, self.quantum_m)
        self._store.setdefault(key, []).append(trajectory)

    def trajectories_for(self, ue_xyz: np.ndarray) -> List[Trajectory]:
        """History for a UE position, including nearby (within R) keys."""
        p = np.asarray(ue_xyz, dtype=float)
        out: List[Trajectory] = []
        for (kx, ky), trajs in self._store.items():
            dist_m = np.hypot(
                p[0] - kx * self.quantum_m, p[1] - ky * self.quantum_m
            )
            if dist_m <= self.reuse_radius_m:
                out.extend(trajs)
        return out

    def gain_for(self, candidate: Trajectory, ue_xyz: np.ndarray) -> float:
        """Information gain of a candidate for one UE position."""
        return information_gain(
            candidate, self.trajectories_for(ue_xyz), self.i_max
        )

    def mean_gain(
        self, candidate: Trajectory, ue_positions: Sequence[np.ndarray]
    ) -> float:
        """Average gain over the epoch's UEs (the paper's numerator)."""
        if len(ue_positions) == 0:
            raise ValueError("need at least one UE position")
        return float(
            np.mean([self.gain_for(candidate, p) for p in ue_positions])
        )

    def __len__(self) -> int:
        return sum(len(v) for v in self._store.values())

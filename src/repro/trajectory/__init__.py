"""Flight trajectories (paper Step 6).

A trajectory is a polyline in the horizontal plane at the operating
altitude.  Four families matter:

* :class:`~repro.trajectory.base.Trajectory` - the shared polyline
  container with length/resample/truncate operations;
* :func:`~repro.trajectory.uniform.zigzag_trajectory` - the Uniform
  baseline's corner-to-corner lawnmower sweep;
* :func:`~repro.trajectory.random_flight.random_flight` - the short
  random localization flight that opens every epoch;
* :class:`~repro.trajectory.skyran.SkyRANPlanner` - the paper's
  gradient -> threshold -> K-means -> TSP -> information/cost pipeline.
"""

from repro.trajectory.base import Trajectory
from repro.trajectory.uniform import zigzag_trajectory, zigzag_for_budget
from repro.trajectory.random_flight import random_flight
from repro.trajectory.information import TrajectoryHistory, information_gain
from repro.trajectory.skyran import PlanResult, SkyRANPlanner

__all__ = [
    "Trajectory",
    "zigzag_trajectory",
    "zigzag_for_budget",
    "random_flight",
    "TrajectoryHistory",
    "information_gain",
    "PlanResult",
    "SkyRANPlanner",
]

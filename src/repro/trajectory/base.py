"""The Trajectory container.

Wraps a 2D waypoint polyline plus the altitude it is flown at, with
the arc-length operations every consumer needs (length for cost,
resampling for probe points, truncation for measurement budgets).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.geo.paths import resample_polyline, truncate_polyline
from repro.geo.points import polyline_length


@dataclass(frozen=True)
class Trajectory:
    """A flight path at constant altitude.

    Attributes
    ----------
    waypoints:
        ``(n, 2)`` polyline vertices in the ground plane (meters).
    altitude:
        Flight altitude in meters.
    label:
        Scheme tag for logs/plots (``"skyran"``, ``"uniform"``, ...).
    """

    waypoints: np.ndarray
    altitude: float
    label: str = ""

    def __post_init__(self) -> None:
        wp = np.asarray(self.waypoints, dtype=float).reshape(-1, 2)
        if len(wp) == 0:
            raise ValueError("a trajectory needs at least one waypoint")
        object.__setattr__(self, "waypoints", wp)
        if self.altitude < 0:
            raise ValueError(f"altitude must be >= 0, got {self.altitude}")

    @property
    def length_m(self) -> float:
        """Total arc length (the paper's trajectory *cost*)."""
        return polyline_length(self.waypoints)

    def duration_s(self, speed_mps: float) -> float:
        """Flight time at a constant ground speed."""
        if speed_mps <= 0:
            raise ValueError(f"speed must be positive, got {speed_mps}")
        return self.length_m / speed_mps

    def sample(self, spacing_m: float) -> np.ndarray:
        """Evenly spaced probe points along the path, ``(m, 2)``."""
        return resample_polyline(self.waypoints, spacing_m)

    def sample_xyz(self, spacing_m: float) -> np.ndarray:
        """Probe points lifted to the flight altitude, ``(m, 3)``."""
        xy = self.sample(spacing_m)
        return np.column_stack([xy, np.full(len(xy), self.altitude)])

    def truncated(self, budget_m: float) -> "Trajectory":
        """The prefix of this path with at most ``budget_m`` length."""
        wp = truncate_polyline(self.waypoints, budget_m)
        return Trajectory(wp, self.altitude, self.label)

    def start(self) -> np.ndarray:
        return self.waypoints[0].copy()

    def end(self) -> np.ndarray:
        return self.waypoints[-1].copy()

    def with_prefix(self, point: Sequence[float]) -> "Trajectory":
        """Prepend a waypoint (e.g. the UAV's current position)."""
        p = np.asarray(point, dtype=float).reshape(1, 2)
        return Trajectory(np.vstack([p, self.waypoints]), self.altitude, self.label)

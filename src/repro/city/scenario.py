"""City-scale scenario: placement, link adaptation and MAC at 10⁵ UEs.

Ties the three city layers together into one steady-state epoch:

* **Placement** streams map tiles for the population's *unique REM
  cells* (not all UEs) through the max–min fold, so the placement
  surface costs O(unique cells × grid-band), and unique cells saturate
  at the key-grid size as the population grows.
* **Serving SNR** for the whole population comes from one vectorized
  one-Tx-many-Rx ray batch
  (:meth:`~repro.channel.model.ChannelModel.snr_to_many`).
* **OLLA + MAC** run on the flat population blocks, shard by shard.

The city channel disables per-UE shadowing fields (each frozen field
is O(grid) — 10⁵ of them cannot exist) and keeps the common
UAV-position field, which is the component placement can exploit
anyway; the ray step defaults to the terrain cell size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.channel.interference import (
    fleet_rx_power_dbm,
    interference_penalty_db,
    sinr_db_from_rx_stack,
)
from repro.channel.model import ChannelModel
from repro.city.mac import CityMACResult, run_city_mac
from repro.city.population import UEPopulation
from repro.core.placement import PlacementResult
from repro.geo.grid import GridSpec
from repro.lte.linkadapt import OLLABank
from repro.lte.throughput import PRB_PER_10MHZ, _THRESHOLDS, cqi_from_snr, throughput_mbps
from repro.perf import perf
from repro.rem.streaming import (
    streamed_interference_max_min_placement,
    streamed_max_min_placement,
)
from repro.terrain.generators import make_terrain
from repro.traffic.generators import BYTES_PER_TTI_PER_MBPS


@dataclass
class CityScenario:
    """A terrain, a channel tuned for scale, and a flat UE population."""

    terrain: object
    channel: ChannelModel
    population: UEPopulation
    altitude_m: float
    eval_grid: GridSpec
    olla: OLLABank = field(init=False)

    def __post_init__(self) -> None:
        self.olla = OLLABank(n_ues=self.population.n_ues)
        self._controllers: Dict[Tuple, object] = {}

    @classmethod
    def create(
        cls,
        *,
        terrain_name: str = "large",
        cell_size_m: float = 4.0,
        n_ues: int = 1000,
        seed: int = 0,
        altitude_m: float = 60.0,
        eval_cell_m: float = 16.0,
        rem_cell_m: float = 32.0,
        full_buffer_fraction: float = 0.5,
        cbr_rate_mbps: float = 2.0,
    ) -> "CityScenario":
        """Build a city scenario on a named terrain.

        ``eval_cell_m`` sets the placement-surface resolution and
        ``rem_cell_m`` the population's REM key pitch (coarser keys →
        fewer unique map cells → cheaper placement).
        """
        terrain = make_terrain(terrain_name, cell_size=cell_size_m, seed=seed)
        channel = ChannelModel(
            terrain=terrain,
            shadowing_sigma_db=0.0,
            ray_step_m=cell_size_m,
            seed=seed,
        )
        population = UEPopulation.sample(
            terrain,
            n_ues,
            seed=seed,
            full_buffer_fraction=full_buffer_fraction,
            cbr_rate_mbps=cbr_rate_mbps,
            rem_cell_m=rem_cell_m,
        )
        factor = max(1, int(round(eval_cell_m / cell_size_m)))
        eval_grid = terrain.grid.coarsen(factor)
        return cls(
            terrain=terrain,
            channel=channel,
            population=population,
            altitude_m=float(altitude_m),
            eval_grid=eval_grid,
        )

    # -- placement ---------------------------------------------------------------

    def place(
        self,
        *,
        tile_rows: int = 16,
        interferer_positions=(),
        activity=None,
    ) -> PlacementResult:
        """Max–min placement over the population's unique REM cells.

        Streams SNR-map tiles for one representative UE per occupied
        REM key cell and folds them into the placement surface — peak
        memory O(unique cells × band), never O(population × grid).

        With ``interferer_positions`` (other fleet UAVs, fixed for the
        fold) each representative's rows are debited by its
        interference penalty before the max–min fold, so the argmax is
        SINR-aware; an empty list takes the exact SNR path.
        """
        interferers = [np.asarray(p, dtype=float) for p in interferer_positions]
        _keys, reps, _inverse = self.population.unique_rem_cells()
        perf.count("city.placement_rem_cells", len(reps))
        with perf.span("city.place"):
            tiles = self.channel.iter_snr_map_tiles(
                list(reps), self.altitude_m, self.eval_grid, tile_rows=tile_rows
            )
            if not interferers:
                return streamed_max_min_placement(
                    self.eval_grid, tiles, self.altitude_m
                )
            penalty = interference_penalty_db(
                self.channel, list(reps), interferers, activity
            )
            return streamed_interference_max_min_placement(
                self.eval_grid, tiles, self.altitude_m, penalty
            )

    # -- link adaptation ---------------------------------------------------------

    def serving_snr_db(self, uav_xyz: np.ndarray) -> np.ndarray:
        """Mean serving SNR of every UE from the given UAV position."""
        with perf.span("city.serving_snr"):
            return self.channel.snr_to_many(uav_xyz, self.population.xyz)

    def fleet_sinr_db(
        self,
        uav_positions,
        serving: np.ndarray,
        *,
        activity=None,
        carriers=None,
    ) -> np.ndarray:
        """Per-UE SINR under a fleet of co-channel sky cells.

        Ray-traces the (n_uav, n_rep) rx-power stack only at one
        representative per occupied REM key cell, broadcasts it onto
        the full population through the inverse index, and runs the
        exact batched SINR kernel with the per-UE ``serving`` array.
        Links are evaluated at REM-key resolution — the same
        approximation the placement surface already makes — so at a
        fine key pitch (one UE per cell) this is bit-identical to
        tracing every UE.
        """
        uavs = [np.asarray(p, dtype=float) for p in uav_positions]
        serving = np.asarray(serving, dtype=np.int64)
        if serving.shape != (self.population.n_ues,):
            raise ValueError(
                f"serving must have one entry per UE "
                f"({self.population.n_ues}), got shape {serving.shape}"
            )
        if len(uavs) and (serving.min() < 0 or serving.max() >= len(uavs)):
            raise ValueError("serving indices out of range for the fleet")
        _keys, reps, inverse = self.population.unique_rem_cells()
        perf.count("city.fleet_rem_cells", len(reps))
        with perf.span("city.fleet_sinr"):
            rx = fleet_rx_power_dbm(self.channel, uavs, list(reps))
            return sinr_db_from_rx_stack(
                self.channel.link,
                rx[:, inverse],
                serving,
                activity=activity,
                carriers=carriers,
            )

    def olla_round(
        self, snr_db: np.ndarray, *, fading_margin_db: float = 0.0
    ) -> np.ndarray:
        """One deterministic HARQ feedback round through the OLLA bank.

        The eNodeB schedules at the OLLA-corrected SNR; the block
        decodes iff the true mean SNR covers the scheduled CQI's
        switching threshold minus ``fading_margin_db``.  UEs scheduled
        at CQI 0 get no transport block and report nothing — matching
        the scalar :func:`~repro.lte.linkadapt.simulate_link` loop.
        Returns the effective (corrected) SNR used this round.
        """
        effective = self.olla.effective_snr_db(snr_db)
        cqi = cqi_from_snr(effective)
        sel = np.flatnonzero(cqi > 0)
        if len(sel):
            needed = _THRESHOLDS[cqi[sel] - 1] - fading_margin_db
            self.olla.report_batch(np.asarray(snr_db)[sel] >= needed, sel=sel)
        self.population.olla_offset_db[:] = self.olla.offsets_db
        return effective

    # -- one epoch ---------------------------------------------------------------

    def run_epoch(
        self,
        *,
        n_tti: int = 200,
        n_prb: int = PRB_PER_10MHZ,
        olla_rounds: int = 4,
        shard_ues: Optional[int] = None,
    ) -> dict:
        """Place, adapt and serve one epoch; returns summary metrics."""
        placement = self.place()
        snr = self.serving_snr_db(placement.position.as_array())
        effective = snr
        for _ in range(int(olla_rounds)):
            effective = self.olla_round(snr)
        rates = throughput_mbps(effective, n_prb=1) * BYTES_PER_TTI_PER_MBPS
        mac = run_city_mac(
            self.population, rates, n_tti, n_prb=n_prb, shard_ues=shard_ues
        )
        return {
            "placement": placement,
            "min_snr_db": placement.min_snr_db,
            "mean_snr_db": float(snr.mean()),
            "aggregate_served_mbps": mac.aggregate_served_mbps(),
            "mac": mac,
        }

    # -- the full controller epoch ------------------------------------------------

    def _controller_for(self, *, per_ue: bool, loc_sample: int, seed: int):
        """Build (and cache) a SkyRAN controller over this population.

        ``per_ue=False`` registers one representative UE per occupied
        REM key cell and configures the controller to always stream
        (``stream_epoch_threshold=1``) — the city path, whose work
        saturates at the key-grid size.  ``per_ue=True`` registers the
        *whole* population and pins the materialized pipeline — the
        per-UE reference the epoch bench measures speedups against.

        Representative positions are ground truth (the generator knows
        them), so they enter through ``known_positions`` except for a
        deterministic ``loc_sample``-sized subset that is actually
        flown for and localized, keeping the localization subsystem in
        the measured loop without making it O(population).
        """
        from repro.core.config import SkyRANConfig
        from repro.core.controller import SkyRANController
        from repro.lte.enodeb import ENodeB
        from repro.lte.ue import UE

        key = (per_ue, int(loc_sample), int(seed))
        cached = self._controllers.get(key)
        if cached is not None:
            return cached

        if per_ue:
            ids = self.population.ue_ids
            xyz = self.population.xyz
        else:
            _keys, first, _inverse = np.unique(
                self.population.rem_key, return_index=True, return_inverse=True
            )
            ids = self.population.ue_ids[first]
            xyz = self.population.xyz[first]

        enodeb = ENodeB()
        for i, ue_id in enumerate(ids):
            ue = UE(ue_id=int(ue_id), srs_root=(25 + int(ue_id)) % 100 or 25)
            ue.move_to(float(xyz[i, 0]), float(xyz[i, 1]), float(xyz[i, 2]))
            enodeb.register_ue(ue)

        n_sample = max(0, min(int(loc_sample), len(ids)))
        if n_sample:
            sample = set(
                int(ids[j])
                for j in np.unique(
                    np.round(np.linspace(0, len(ids) - 1, n_sample)).astype(int)
                )
            )
        else:
            sample = set()
        known = {
            int(ue_id): xyz[i].copy()
            for i, ue_id in enumerate(ids)
            if int(ue_id) not in sample
        }

        cfg = SkyRANConfig(
            stream_epoch_threshold=1 if not per_ue else 10**9,
            rem_key_pitch_m=float(self.population.rem_key_grid.cell_size),
        )
        controller = SkyRANController(
            self.channel,
            enodeb,
            cfg,
            rem_grid=self.eval_grid,
            seed=seed,
            known_positions=known or None,
        )
        self._controllers[key] = controller
        return controller

    def run_controller_epoch(
        self,
        *,
        budget_m: float = 240.0,
        n_tti: int = 200,
        n_prb: int = PRB_PER_10MHZ,
        olla_rounds: int = 4,
        shard_ues: Optional[int] = None,
        loc_sample: int = 8,
        per_ue: bool = False,
        seed: int = 0,
    ) -> dict:
        """One *full* SkyRAN controller epoch over the city population.

        Unlike :meth:`run_epoch` (steady-state placement + MAC only),
        this drives the real :class:`~repro.core.controller.
        SkyRANController` end to end — localization on a deduped
        sample, first-epoch altitude search, REM seeding/measurement,
        trajectory planning over dedup waypoints, streamed
        uncertainty-discounted placement — then serves the whole
        population through OLLA and the city MAC at the chosen
        position.  ``per_ue=True`` runs the materialized per-UE
        reference instead (bench baseline; O(population) REM state).
        """
        controller = self._controller_for(
            per_ue=per_ue, loc_sample=loc_sample, seed=seed
        )
        with perf.span("city.controller_epoch", track_memory=True):
            result = controller.run_epoch(budget_m)
            snr = self.serving_snr_db(result.placement.position.as_array())
            effective = snr
            for _ in range(int(olla_rounds)):
                effective = self.olla_round(snr)
            rates = throughput_mbps(effective, n_prb=1) * BYTES_PER_TTI_PER_MBPS
            mac = run_city_mac(
                self.population, rates, n_tti, n_prb=n_prb, shard_ues=shard_ues
            )
        return {
            "placement": result.placement,
            "epoch": result,
            "streamed": result.streamed,
            "n_rem_groups": result.n_rem_groups,
            "altitude_m": result.altitude_m,
            "min_snr_db": result.placement.min_snr_db,
            "mean_snr_db": float(snr.mean()),
            "aggregate_served_mbps": mac.aggregate_served_mbps(),
            "mac": mac,
        }

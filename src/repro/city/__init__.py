"""City-scale UE kernels.

The paper's scale-up study stops at tens of UEs; this package pushes a
single sky-cell to 10⁵–10⁶ by keeping population state in flat
struct-of-array blocks (:mod:`repro.city.population`), running the MAC
and OLLA shard-by-shard with peak memory O(shard)
(:mod:`repro.city.mac`), and driving placement through the
tile-streamed map oracle over deduplicated REM cells
(:mod:`repro.city.scenario`).  Every sharded/streamed path is
bit-identical to the small-scale reference kernels it decomposes.
"""

from repro.city.mac import CityMACResult, ShardRoundRobin, run_city_mac
from repro.city.population import DEFAULT_SHARD_UES, SHARD_ENV, UEPopulation, shard_size
from repro.city.scenario import CityScenario

__all__ = [
    "CityMACResult",
    "CityScenario",
    "DEFAULT_SHARD_UES",
    "SHARD_ENV",
    "ShardRoundRobin",
    "UEPopulation",
    "run_city_mac",
    "shard_size",
]

"""Shard-by-shard MAC over a city population.

The TTI kernel in :mod:`repro.traffic.simulate` materializes
(UEs × TTIs) matrices, so running 10⁵ UEs through one
:class:`~repro.traffic.queueing.QueueBank` would peak at
O(population × TTI) memory.  :func:`run_city_mac` instead runs the
*identical* kernel once per population shard and keeps only per-UE
totals, so peak memory is O(shard × TTI).

The catch is the scheduler: round-robin grants depend on a UE's rank
within the **global** schedulable set and on the global active count,
neither of which a shard can see.  With the city workload mix —
full-buffer plus every-TTI CBR — the schedulable set is provably
time-invariant (the condition :func:`repro.traffic.simulate` exploits
for grant slabs), so both quantities can be precomputed once and
handed to :class:`ShardRoundRobin`, a rank-parameterized scheduler
whose per-shard grants are bit-identical to the global
``RoundRobinScheduler`` restricted to the shard's rows.  Everything
downstream of the grants is elementwise per UE, so the whole sharded
run matches the unsharded kernel bit-for-bit, for any shard size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.lte.throughput import PRB_PER_10MHZ
from repro.perf import perf
from repro.traffic.generators import BYTES_PER_TTI_PER_MBPS
from repro.traffic.queueing import QueueBank
from repro.traffic.simulate import run_tti_batch
from repro.city.population import UEPopulation, shard_size


@dataclass
class ShardRoundRobin:
    """Global round-robin grants, computed for one shard's rows.

    ``ranks`` holds each shard UE's rank in the global schedulable set
    (ascending UE order; ``-1`` for never-schedulable UEs) and
    ``n_active_global`` the global active count.  The global scheduler
    grants ``base = n_prb // n_active`` to every active UE plus one
    remainder PRB to the UEs whose ``(rank - tti) mod n_active`` falls
    below the remainder — a pure function of (rank, n_active, tti), so
    a shard that knows its global ranks reproduces its rows of the
    global grant matrix exactly.
    """

    ranks: np.ndarray
    n_active_global: int
    name: str = field(default="shard_round_robin", init=False)

    def __post_init__(self) -> None:
        self.ranks = np.asarray(self.ranks, dtype=np.int64)
        if self.n_active_global < 0:
            raise ValueError(f"n_active_global must be >= 0, got {self.n_active_global}")

    def reset(self, n_ues: int) -> None:
        pass

    def _check(self, schedulable: np.ndarray) -> np.ndarray:
        sched = np.asarray(schedulable, dtype=bool)
        if not np.array_equal(sched, self.ranks >= 0):
            raise ValueError(
                "shard schedulable set diverged from the precomputed global "
                "ranks — the population is not slab-eligible"
            )
        return sched

    def grants(
        self,
        schedulable: np.ndarray,
        bytes_per_prb: np.ndarray,
        n_prb: int,
        tti: int,
    ) -> np.ndarray:
        sched = self._check(schedulable)
        out = np.zeros(len(sched), dtype=np.int64)
        n_a = self.n_active_global
        if n_a == 0:
            return out
        base, rem = divmod(int(n_prb), n_a)
        idx = np.flatnonzero(sched)
        out[idx] = base
        if rem:
            rho = int(tti) % n_a
            out[idx[((self.ranks[idx] - rho) % n_a) < rem]] += 1
        return out

    def grants_reference(self, schedulable, bytes_per_prb, n_prb: int, tti: int) -> list:
        return [int(g) for g in self.grants(schedulable, bytes_per_prb, n_prb, tti)]

    def grants_slab(
        self,
        schedulable: np.ndarray,
        bytes_per_prb: np.ndarray,
        n_prb: int,
        tti0: int,
        n_tti: int,
    ) -> Optional[np.ndarray]:
        sched = self._check(schedulable)
        n = len(sched)
        out = np.zeros((n, n_tti), dtype=np.int64)
        n_a = self.n_active_global
        if n_a == 0:
            return out
        base, rem = divmod(int(n_prb), n_a)
        idx = np.flatnonzero(sched)
        out[idx, :] = base
        if rem:
            rho = (int(tti0) + np.arange(n_tti)) % n_a
            pos = self.ranks[idx][:, None]
            out[idx[:, None], np.arange(n_tti)[None, :]] += (
                ((pos - rho[None, :]) % n_a) < rem
            ).astype(np.int64)
        return out

    def update(self, served_bytes: np.ndarray) -> None:
        pass

    def update_reference(self, served_bytes) -> None:
        pass


@dataclass(frozen=True)
class CityMACResult:
    """Per-UE totals of one sharded MAC run (never O(population x TTI))."""

    n_ues: int
    n_tti: int
    n_prb: int
    served_bytes: np.ndarray
    offered_bytes: np.ndarray
    dropped_bytes: np.ndarray
    grants: np.ndarray
    backlog_end_bytes: np.ndarray

    def aggregate_served_mbps(self) -> float:
        return float(self.served_bytes.sum()) / (self.n_tti * BYTES_PER_TTI_PER_MBPS)

    def served_mbps(self) -> np.ndarray:
        return self.served_bytes / (self.n_tti * BYTES_PER_TTI_PER_MBPS)


def city_schedulable(pop: UEPopulation, rates: np.ndarray) -> np.ndarray:
    """The (time-invariant) schedulable set of a city population.

    Full-buffer UEs and every-TTI CBR UEs with a usable link are
    schedulable at every TTI; zero-rate UEs and idle UEs (no traffic,
    empty queue) never are.  Any UE outside those classes — a finite
    backlog draining with no arrivals — makes the set time-varying and
    the sharded decomposition unsound, so it is rejected.
    """
    rate_ok = rates > 0.0
    offers = pop.cbr_rate_mbps > 0.0
    finite_backlog = np.where(pop.full_buffer, 0.0, pop.backlog_bytes)
    never = ~pop.full_buffer & ~offers & (finite_backlog == 0.0)
    covered = pop.full_buffer | offers | never | ~rate_ok
    if not bool(covered.all()):
        bad = np.flatnonzero(~covered)[:5]
        raise ValueError(
            "population is not slab-eligible: UEs with a draining backlog "
            f"and no arrivals (first indices: {bad.tolist()})"
        )
    return rate_ok & (pop.full_buffer | offers)


def run_city_mac(
    pop: UEPopulation,
    rates: np.ndarray,
    n_tti: int,
    *,
    n_prb: int = PRB_PER_10MHZ,
    shard_ues: int | None = None,
    tti0: int = 0,
    limit_bytes: float = 0.0,
) -> CityMACResult:
    """Run the TTI-batch MAC over a sharded city population.

    ``rates`` is the per-UE deliverable bytes/PRB/TTI (from the serving
    SNR).  Each shard gets its own :class:`QueueBank` (full-buffer mask
    and carried-over backlogs from the population blocks) and a
    :class:`ShardRoundRobin` carrying the precomputed global ranks;
    the per-shard batches are folded into per-UE totals and the
    population backlog state, then discarded.  Bit-identical to one
    unsharded :func:`~repro.traffic.simulate.run_tti_batch` over the
    whole population, for any shard size.
    """
    rates = np.asarray(rates, dtype=float)
    n = pop.n_ues
    if rates.shape != (n,):
        raise ValueError(f"rates shape {rates.shape} != ({n},)")
    if n_tti < 0:
        raise ValueError(f"n_tti must be >= 0, got {n_tti}")

    schedulable = city_schedulable(pop, rates)
    n_active = int(np.count_nonzero(schedulable))
    ranks = np.where(schedulable, np.cumsum(schedulable) - 1, -1).astype(np.int64)
    bytes_per_tti = pop.cbr_rate_mbps * BYTES_PER_TTI_PER_MBPS

    served = np.zeros(n, dtype=float)
    offered_total = np.zeros(n, dtype=float)
    dropped = np.zeros(n, dtype=float)
    grants = np.zeros(n, dtype=np.int64)
    backlog_end = np.empty(n, dtype=float)

    width = shard_size(shard_ues)
    perf.count("city.mac_shards", (n + width - 1) // width)
    with perf.span("city.mac"):
        for sl in pop.iter_shards(width):
            ids = tuple(int(u) for u in pop.ue_ids[sl])
            queues = QueueBank(
                ids, limit_bytes=limit_bytes, full_buffer=pop.full_buffer[sl]
            )
            # Carry finite backlogs across batches (full-buffer rows
            # are already seeded with inf by the bank).
            carry = ~pop.full_buffer[sl]
            queues.backlog_bytes[carry] = pop.backlog_bytes[sl][carry]
            offered = np.broadcast_to(
                bytes_per_tti[sl][:, None], (len(ids), int(n_tti))
            )
            scheduler = ShardRoundRobin(ranks=ranks[sl], n_active_global=n_active)
            res = run_tti_batch(
                bytes_per_prb=rates[sl],
                offered_bytes=offered,
                scheduler=scheduler,
                queues=queues,
                n_prb=n_prb,
                tti0=tti0,
            )
            served[sl] = res.served_bytes.sum(axis=1)
            offered_total[sl] = res.offered_bytes.sum(axis=1)
            dropped[sl] = res.dropped_bytes.sum(axis=1)
            grants[sl] = res.grants.sum(axis=1)
            backlog_end[sl] = res.backlog_end_bytes
            pop.backlog_bytes[sl] = res.backlog_end_bytes

    return CityMACResult(
        n_ues=n,
        n_tti=int(n_tti),
        n_prb=int(n_prb),
        served_bytes=served,
        offered_bytes=offered_total,
        dropped_bytes=dropped,
        grants=grants,
        backlog_end_bytes=backlog_end,
    )

"""Struct-of-array UE population state.

At city scale, per-UE Python objects (``repro.lte.ue.UE``, dict-keyed
OLLA state, one ``TrafficSource`` per UE) dominate memory and kill
vectorization.  :class:`UEPopulation` replaces them on the hot paths
with flat float64/int64 blocks — positions, REM keys, OLLA offsets,
queue backlogs, traffic parameters, RNG spawn keys — indexed by
population position (UE id == index), processed shard-by-shard so no
kernel ever holds O(population × TTI) state.

The REM key quantizes each UE's position to a coarse REM cell.  UEs in
the same cell are indistinguishable to the map oracle (maps are
evaluated at cell centers), so placement work scales with the number
of *unique occupied cells* — which saturates at the key-grid size —
rather than with the population.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from repro.geo.grid import GridSpec
from repro.lte.ue import UE_ANTENNA_HEIGHT_M
from repro.terrain.heightmap import Terrain

#: Spawn-key tag isolating population placement draws from the traffic
#: and fault streams that share the run seed.
CITY_SPAWN_KEY = 0x51EE

#: Environment knob for the shard width of the city kernels.
SHARD_ENV = "REPRO_SHARD_UES"

#: Default UEs per shard: big enough to amortize per-shard Python
#: overhead, small enough that a shard's (UEs x TTIs) MAC slabs stay
#: tens of megabytes.
DEFAULT_SHARD_UES = 2048


def shard_size(override: int | None = None) -> int:
    """Shard width from ``override``, else ``REPRO_SHARD_UES``, else default."""
    if override is not None:
        if override < 1:
            raise ValueError(f"shard size must be >= 1, got {override}")
        return int(override)
    try:
        return max(1, int(os.environ.get(SHARD_ENV, str(DEFAULT_SHARD_UES))))
    except ValueError:
        return DEFAULT_SHARD_UES


@dataclass
class UEPopulation:
    """Flat per-UE state blocks, index-aligned across all arrays.

    Attributes
    ----------
    ue_ids:
        ``(n,)`` int64, strictly ascending; doubles as each UE's
        traffic-RNG spawn key so streams never depend on shard layout.
    xyz:
        ``(n, 3)`` float64 antenna positions.
    rem_key:
        ``(n,)`` int64 flat index into the REM key grid (see
        :meth:`sample`); UEs sharing a key share a map-oracle cell.
    olla_offset_db:
        ``(n,)`` float64 learned OLLA corrections.
    backlog_bytes:
        ``(n,)`` float64 RLC backlog carried across MAC batches
        (``inf`` for full-buffer UEs).
    full_buffer:
        ``(n,)`` bool, the infinite-backlog idealization per UE.
    cbr_rate_mbps:
        ``(n,)`` float64 CBR rate for finite-traffic UEs (0 where
        ``full_buffer``).
    """

    ue_ids: np.ndarray
    xyz: np.ndarray
    rem_key: np.ndarray
    olla_offset_db: np.ndarray
    backlog_bytes: np.ndarray
    full_buffer: np.ndarray
    cbr_rate_mbps: np.ndarray
    rem_key_grid: GridSpec

    def __post_init__(self) -> None:
        n = len(self.ue_ids)
        if n == 0:
            raise ValueError("UEPopulation needs at least one UE")
        for name in (
            "ue_ids",
            "rem_key",
            "olla_offset_db",
            "backlog_bytes",
            "full_buffer",
            "cbr_rate_mbps",
        ):
            arr = getattr(self, name)
            if arr.shape != (n,):
                raise ValueError(f"{name} shape {arr.shape} != ({n},)")
        if self.xyz.shape != (n, 3):
            raise ValueError(f"xyz shape {self.xyz.shape} != ({n}, 3)")
        if np.any(np.diff(self.ue_ids) <= 0):
            raise ValueError("ue_ids must be strictly ascending")

    @property
    def n_ues(self) -> int:
        return len(self.ue_ids)

    @property
    def spawn_keys(self) -> np.ndarray:
        """Traffic-RNG spawn keys (the UE ids, by the RNG contract)."""
        return self.ue_ids

    @classmethod
    def sample(
        cls,
        terrain: Terrain,
        n: int,
        seed: int = 0,
        *,
        full_buffer_fraction: float = 0.5,
        cbr_rate_mbps: float = 2.0,
        clearance_m: float = 1.0,
        rem_cell_m: float = 32.0,
    ) -> "UEPopulation":
        """Drop ``n`` UEs on walkable terrain cells (with replacement).

        Positions land on cell centers of the terrain grid, at local
        ground height plus the standard antenna height.  A
        ``full_buffer_fraction`` share of the population (chosen by an
        independent per-run draw, not by index order) is the
        infinitely-backlogged idealization; the rest offer CBR traffic
        at ``cbr_rate_mbps``.  ``rem_cell_m`` sets the REM key grid
        pitch — coarser keys mean fewer unique map cells.
        """
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        if not 0.0 <= full_buffer_fraction <= 1.0:
            raise ValueError(
                f"full_buffer_fraction must be in [0, 1], got {full_buffer_fraction}"
            )
        if rem_cell_m <= 0:
            raise ValueError(f"rem_cell_m must be positive, got {rem_cell_m}")
        g = terrain.grid
        free_iy, free_ix = terrain.free_cells(clearance_m)
        if len(free_iy) == 0:
            raise ValueError("terrain has no free cells at the given clearance")
        rng = np.random.default_rng(
            np.random.SeedSequence(seed, spawn_key=(CITY_SPAWN_KEY,))
        )
        pick = rng.integers(0, len(free_iy), size=n)
        iy = free_iy[pick]
        ix = free_ix[pick]
        x = g.origin_x + (ix + 0.5) * g.cell_size
        y = g.origin_y + (iy + 0.5) * g.cell_size
        z = terrain.heights_at_xy(x, y) + UE_ANTENNA_HEIGHT_M
        xyz = np.column_stack([x, y, z])

        key_grid = GridSpec.from_extent(
            g.width, g.height, rem_cell_m, g.origin_x, g.origin_y
        )
        kx, ky = key_grid.cells_of(xyz[:, :2])
        rem_key = (ky.astype(np.int64) * key_grid.nx + kx).astype(np.int64)

        fb = rng.random(n) < full_buffer_fraction
        return cls(
            ue_ids=np.arange(n, dtype=np.int64),
            xyz=xyz,
            rem_key=rem_key,
            olla_offset_db=np.zeros(n, dtype=float),
            backlog_bytes=np.where(fb, np.inf, 0.0),
            full_buffer=fb,
            cbr_rate_mbps=np.where(fb, 0.0, float(cbr_rate_mbps)),
            rem_key_grid=key_grid,
        )

    def iter_shards(self, shard_ues: int | None = None) -> Iterator[slice]:
        """Yield contiguous population slices of at most ``shard_ues``."""
        width = shard_size(shard_ues)
        for lo in range(0, self.n_ues, width):
            yield slice(lo, min(lo + width, self.n_ues))

    def unique_rem_cells(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Deduplicate the population to its occupied REM key cells.

        Returns ``(keys, representatives, inverse)``: the sorted unique
        key values, one representative UE position per key (the first
        population member holding it), and the per-UE index into
        ``keys``.  Placement over the representatives covers every UE
        in map-oracle resolution while the work saturates at the key
        grid size instead of growing with the population.
        """
        keys, first, inverse = np.unique(
            self.rem_key, return_index=True, return_inverse=True
        )
        return keys, self.xyz[first], inverse

"""The reference numpy backend.

Every op is a verbatim transcription of the inline numpy the host
kernel used before the backend seam existed — the op *is* the
reference semantics an accelerated backend must reproduce bit-for-bit.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


class NumpyBackend:
    """Reference implementations of the seamed hot-kernel ops."""

    name = "numpy"

    def count_below(self, zs: np.ndarray, surface: np.ndarray) -> np.ndarray:
        """Per-row count of ray samples strictly below the surface.

        ``zs`` and ``surface`` are ``(n_rays, n_samples)``; the result
        is int64.  Integer counting of an elementwise comparison, so
        any backend evaluating the same comparisons is exact.
        """
        return np.count_nonzero(zs < surface, axis=1)

    def cis(self, theta: np.ndarray, out: np.ndarray) -> np.ndarray:
        """``out = exp(1j * theta)`` written into a preallocated array.

        ``out`` may be a view (the SRS kernel passes the leading half
        of its ramp buffer).  cos/sin stay on numpy in every backend:
        their results are the bit-exactness contract of the SRS chain.
        """
        out.real = np.cos(theta)
        out.imag = np.sin(theta)
        return out

    def mac_slab_serve(
        self,
        grants: np.ndarray,
        rates: np.ndarray,
        backlog0: np.ndarray,
        accepted: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Drain a whole full-buffer TTI slab in one shot.

        ``grants`` is ``(n_ues, n_tti)`` int64, ``rates``/``backlog0``
        are per-UE, ``accepted`` is the admitted arrivals matrix.
        Returns ``(served, backlog_end)`` with the exact recurrence of
        the scalar kernel: ``avail = backlog + accepted``,
        ``served = min(avail, grants * rates)`` — independent per TTI
        because an infinite backlog never changes.
        """
        cap = grants * rates[:, None]
        avail = backlog0[:, None] + accepted
        served = np.minimum(avail, cap)
        if accepted.shape[1]:
            backlog_end = (avail - served)[:, -1]
        else:
            backlog_end = backlog0.copy()
        return served, backlog_end

"""Optional numba-JIT backend.

Importing this module requires numba; :func:`repro.backend.get_backend`
guards the import and falls back to numpy when it is missing, so the
rest of the codebase never imports this file directly.

Only ops whose bit-exactness is *structural* are compiled: integer
counting of comparisons and the mul/add/min slab recurrence, where
every elementwise IEEE-754 operation is written out separately (no
``a*b+c`` expressions a compiler could contract into an FMA).  The
phase-ramp op delegates to numpy cos/sin — transcendental libm
variants across compilers are not guaranteed bit-equal, and the SRS
chain's reproducibility contract is non-negotiable.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from numba import njit, prange  # noqa: F401  (ImportError => numpy fallback)

from repro.backend.numpy_backend import NumpyBackend


@njit(cache=True)
def _count_below(zs: np.ndarray, surface: np.ndarray) -> np.ndarray:
    n, m = zs.shape
    out = np.zeros(n, dtype=np.int64)
    for i in range(n):
        c = 0
        for j in range(m):
            if zs[i, j] < surface[i, j]:
                c += 1
        out[i] = c
    return out


@njit(cache=True)
def _mac_slab_serve(
    grants: np.ndarray,
    rates: np.ndarray,
    backlog0: np.ndarray,
    accepted: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    n, n_tti = accepted.shape
    served = np.empty((n, n_tti), dtype=np.float64)
    backlog_end = np.empty(n, dtype=np.float64)
    for i in range(n):
        b0 = backlog0[i]
        r = rates[i]
        avail_last = b0
        served_last = 0.0
        for t in range(n_tti):
            avail = b0 + accepted[i, t]
            cap = grants[i, t] * r
            s = avail if avail < cap else cap
            served[i, t] = s
            avail_last = avail
            served_last = s
        if n_tti:
            backlog_end[i] = avail_last - served_last
        else:
            backlog_end[i] = b0
    return served, backlog_end


class NumbaBackend(NumpyBackend):
    """JIT-compiled integer/min-max kernels; numpy for everything else."""

    name = "numba"

    def count_below(self, zs: np.ndarray, surface: np.ndarray) -> np.ndarray:
        return _count_below(
            np.ascontiguousarray(zs), np.ascontiguousarray(surface)
        )

    def mac_slab_serve(
        self,
        grants: np.ndarray,
        rates: np.ndarray,
        backlog0: np.ndarray,
        accepted: np.ndarray,
    ) -> Tuple[np.ndarray, np.ndarray]:
        return _mac_slab_serve(
            np.ascontiguousarray(grants, dtype=np.int64),
            np.ascontiguousarray(rates, dtype=np.float64),
            np.ascontiguousarray(backlog0, dtype=np.float64),
            np.ascontiguousarray(accepted, dtype=np.float64),
        )

"""Pluggable array backend for the hot kernels.

Three inner loops dominate the profile at city scale — the ray
tracer's sample-below-surface count, the SRS batch kernel's phase-ramp
synthesis, and the MAC full-buffer slab drain.  Each is funneled
through one small op on a backend object so an accelerated
implementation can be swapped in *under* the kernels without touching
their logic:

``numpy`` (default)
    The reference backend.  Its ops are verbatim transcriptions of the
    inline numpy the kernels used before the seam existed, so routing
    through it is bit-identical to the pre-seam code by construction.
``numba``
    JIT-compiled loops for the integer/min-max ops (exact under any
    evaluation order, so bit-identity is structural).  Selected with
    ``REPRO_BACKEND=numba``; if numba is not installed the registry
    falls back to numpy with a one-time warning and a
    ``backend.fallback`` perf counter, so the env knob is always safe
    to set.

The seam deliberately carries only ops whose results cannot depend on
the backend: elementwise transcendentals stay on numpy even inside the
numba backend (SIMD libm variants are not guaranteed bit-equal across
compilers), and no op performs a float *reduction* whose order an
implementation could legally change.
"""

from __future__ import annotations

import os
import warnings
from typing import Dict, Tuple

from repro.backend.numpy_backend import NumpyBackend
from repro.perf import perf

#: Environment variable selecting the process-wide default backend.
BACKEND_ENV = "REPRO_BACKEND"

_instances: Dict[str, object] = {}
_warned: set = set()


def available_backends() -> Tuple[str, ...]:
    """Names :func:`get_backend` accepts."""
    return ("numpy", "numba")


def get_backend(name: str | None = None):
    """Resolve a backend by name (default: the ``REPRO_BACKEND`` env var).

    Resolution is cached per requested name, so hot paths can call this
    on every kernel invocation; the env var is still re-read each call,
    so tests and benches can flip backends mid-process (after a flip the
    first resolution of a new name pays the construction cost once).
    """
    if name is None:
        name = os.environ.get(BACKEND_ENV, "numpy") or "numpy"
    key = name.strip().lower()
    inst = _instances.get(key)
    if inst is not None:
        return inst
    if key == "numpy":
        inst = NumpyBackend()
    elif key == "numba":
        try:
            from repro.backend.numba_backend import NumbaBackend

            inst = NumbaBackend()
        except ImportError:
            perf.count("backend.fallback")
            if key not in _warned:
                _warned.add(key)
                warnings.warn(
                    "REPRO_BACKEND=numba requested but numba is not "
                    "installed; falling back to the numpy backend",
                    RuntimeWarning,
                    stacklevel=2,
                )
            inst = NumpyBackend()
    else:
        known = ", ".join(available_backends())
        raise ValueError(f"unknown backend {name!r} (known: {known})")
    _instances[key] = inst
    return inst


def reset_backend_cache() -> None:
    """Drop cached backend instances (test helper)."""
    _instances.clear()
    _warned.clear()

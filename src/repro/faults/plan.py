"""Declarative fault plans for chaos runs.

A :class:`FaultPlan` describes *what* can go wrong during a run — SRS
bursts lost or late, GPS blackouts, ToF multipath spikes, wind pushing
the UAV off its commanded track, SNR reports dropped or corrupted —
and with what intensity.  It is pure data: seeded, validated,
hashable-by-value, and completely inert until handed to a
:class:`~repro.faults.injector.FaultInjector`.

Design rules that make chaos runs reproducible:

* The plan carries its own ``seed``; fault randomness never touches
  the simulation's RNGs.  The same plan against the same scenario and
  controller seed reproduces the same run bit-for-bit.
* A rate of zero disables a fault channel entirely — the injector
  consumes **no** random numbers for disabled channels, so an all-zero
  plan is bit-identical to running with no plan at all.
"""

from __future__ import annotations

from dataclasses import dataclass, fields


def _check_rate(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")


def _check_nonneg(name: str, value: float) -> None:
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")


@dataclass(frozen=True, kw_only=True)
class FaultPlan:
    """Seeded description of every fault a chaos run may fire.

    All parameters are keyword-only and validated at construction so a
    misconfigured chaos run fails fast with a clear message instead of
    silently simulating the wrong failure mode.

    Attributes
    ----------
    seed:
        Seed for all fault randomness.  Independent per-channel RNG
        streams are derived from it, so e.g. raising the SNR corruption
        rate does not change which SRS bursts get dropped.
    srs_drop_rate:
        Probability that an individual SRS burst is lost (deep uplink
        fade, scheduling collision).
    srs_delay_rate / srs_delay_max_s:
        Probability that a surviving SRS burst is delivered late, and
        the maximum lateness; late bursts get fused with the wrong GPS
        fix window, exactly the timestamp skew real eNodeB report
        pipelines exhibit.
    gps_blackout_rate_per_s / gps_blackout_duration_s:
        Expected blackout onsets per second of flight, and how long
        each blackout lasts.  During a blackout the flight controller
        holds the last valid fix (GNSS+IMU freeze), and fixes are
        flagged invalid so measurement consumers can reject them.
    tof_outlier_rate / tof_outlier_bias_m:
        Probability that a ToF range estimate is replaced by a late
        multipath spike, and the mean size of the (always positive)
        spike — the NLOS failure mode of Section 4.3 pushed past what
        the jitter model produces.
    wind_speed_mps / wind_direction_deg:
        Steady wind drift applied to every flight's *true* track.  The
        UAV still believes it followed the commanded path (plus GPS
        noise); the world disagrees.  ``wind_direction_deg=None`` draws
        a fresh direction per flight.
    snr_drop_rate:
        Probability that a PHY SNR report is lost.
    snr_corrupt_rate / snr_corrupt_sigma_db:
        Probability that a surviving SNR report is corrupted, and the
        std-dev of the corruption added to it.
    traffic_burst_rate / traffic_burst_factor:
        Probability that one UE-TTI's offered traffic is amplified by
        ``traffic_burst_factor`` (a flash-crowd/retransmission-storm
        burst on the *offered* load, before RLC admission).  Zero rate
        draws no RNG, so existing runs stay bit-identical.
    storm_rate_per_s / storm_burst_ues:
        Expected attach-storm onsets per second of event-driven
        serving time, and how many attached UEs each onset knocks into
        a simultaneous re-attach (a cell-wide radio-link-failure /
        flash-crowd storm hitting the RACH control plane at once).
        Only the event layer (:mod:`repro.events`) consumes this
        channel; zero rate draws no RNG.
    """

    seed: int = 0
    srs_drop_rate: float = 0.0
    srs_delay_rate: float = 0.0
    srs_delay_max_s: float = 0.1
    gps_blackout_rate_per_s: float = 0.0
    gps_blackout_duration_s: float = 3.0
    tof_outlier_rate: float = 0.0
    tof_outlier_bias_m: float = 150.0
    wind_speed_mps: float = 0.0
    wind_direction_deg: "float | None" = None
    snr_drop_rate: float = 0.0
    snr_corrupt_rate: float = 0.0
    snr_corrupt_sigma_db: float = 10.0
    traffic_burst_rate: float = 0.0
    traffic_burst_factor: float = 5.0
    storm_rate_per_s: float = 0.0
    storm_burst_ues: int = 25

    def __post_init__(self) -> None:
        for name in (
            "srs_drop_rate",
            "srs_delay_rate",
            "tof_outlier_rate",
            "snr_drop_rate",
            "snr_corrupt_rate",
            "traffic_burst_rate",
        ):
            _check_rate(name, getattr(self, name))
        for name in (
            "srs_delay_max_s",
            "gps_blackout_rate_per_s",
            "gps_blackout_duration_s",
            "tof_outlier_bias_m",
            "wind_speed_mps",
            "snr_corrupt_sigma_db",
            "traffic_burst_factor",
            "storm_rate_per_s",
        ):
            _check_nonneg(name, getattr(self, name))
        if self.storm_burst_ues < 1:
            raise ValueError(
                f"storm_burst_ues must be >= 1, got {self.storm_burst_ues}"
            )

    # -- channel activity ---------------------------------------------------------

    @property
    def srs_active(self) -> bool:
        return self.srs_drop_rate > 0 or self.srs_delay_rate > 0

    @property
    def gps_active(self) -> bool:
        return self.gps_blackout_rate_per_s > 0 and self.gps_blackout_duration_s > 0

    @property
    def tof_active(self) -> bool:
        return self.tof_outlier_rate > 0

    @property
    def wind_active(self) -> bool:
        return self.wind_speed_mps > 0

    @property
    def snr_active(self) -> bool:
        return self.snr_drop_rate > 0 or self.snr_corrupt_rate > 0

    @property
    def traffic_active(self) -> bool:
        return self.traffic_burst_rate > 0

    @property
    def storm_active(self) -> bool:
        return self.storm_rate_per_s > 0

    @property
    def active(self) -> bool:
        """True if any fault channel can fire."""
        return (
            self.srs_active
            or self.gps_active
            or self.tof_active
            or self.wind_active
            or self.snr_active
            or self.traffic_active
            or self.storm_active
        )

    @classmethod
    def none(cls, seed: int = 0) -> "FaultPlan":
        """An inert plan (every channel disabled)."""
        return cls(seed=seed)

    def describe(self) -> str:
        """One-line summary of the non-default channels, for logs."""
        parts = []
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name != "seed" and value != f.default:
                parts.append(f"{f.name}={value}")
        return "FaultPlan(" + ", ".join([f"seed={self.seed}"] + parts) + ")"

"""Runtime fault injection.

A :class:`FaultInjector` turns a :class:`~repro.faults.plan.FaultPlan`
into concrete per-sample decisions at the measurement-pipeline
injection points (:mod:`repro.flight.uav`, :mod:`repro.flight.sampler`).
Each fault channel owns an independent RNG stream spawned from the
plan's seed, so

* the same plan reproduces the same faults bit-for-bit, and
* turning one channel up or down never changes what another fires.

Every fault that fires bumps a ``faults.*`` counter in
:data:`repro.perf.perf`, so a chaos run's injected failures are
observable next to the ``fallback.*`` counters of the mitigations they
triggered.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.faults.plan import FaultPlan
from repro.perf import perf

#: Spawn order of the per-channel RNG streams (stable across versions:
#: appending a new channel must not reshuffle existing streams).
_CHANNELS = ("srs", "gps", "tof", "wind", "snr", "traffic", "storm")


class FaultInjector:
    """Executes a :class:`FaultPlan` at the injection points.

    One injector should live for exactly one run; its RNG streams
    advance as the run consumes faults, which is what makes a rerun
    with a fresh injector (same plan) bit-identical.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        streams = np.random.SeedSequence(plan.seed).spawn(len(_CHANNELS))
        self._rng = {
            name: np.random.default_rng(stream)
            for name, stream in zip(_CHANNELS, streams)
        }

    @property
    def active(self) -> bool:
        return self.plan.active

    # -- SRS bursts (localization flights) ---------------------------------------

    def srs_faults(self, times_s: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Drop/delay SRS bursts scheduled at ``times_s``.

        Returns ``(keep_mask, times)`` — the boolean mask of surviving
        bursts and their (possibly delayed) delivery timestamps.
        """
        times = np.asarray(times_s, dtype=float)
        keep = np.ones(len(times), dtype=bool)
        if not self.plan.srs_active:
            return keep, times
        rng = self._rng["srs"]
        out = times.copy()
        if self.plan.srs_drop_rate > 0:
            keep = rng.random(len(times)) >= self.plan.srs_drop_rate
            dropped = int(len(times) - keep.sum())
            if dropped:
                perf.count("faults.srs_dropped", dropped)
        if self.plan.srs_delay_rate > 0:
            late = rng.random(len(times)) < self.plan.srs_delay_rate
            delays = rng.uniform(0.0, self.plan.srs_delay_max_s, len(times))
            late &= keep
            out = out + np.where(late, delays, 0.0)
            if late.any():
                perf.count("faults.srs_delayed", int(late.sum()))
        return keep, out

    # -- GPS fixes ----------------------------------------------------------------

    def gps_blackout_mask(self, times_s: np.ndarray) -> np.ndarray:
        """True where a GPS fix falls inside a blackout window.

        Windows are drawn per flight: onset count is Poisson in the
        flight duration, onsets uniform over it.
        """
        times = np.asarray(times_s, dtype=float)
        mask = np.zeros(len(times), dtype=bool)
        if not self.plan.gps_active or len(times) == 0:
            return mask
        rng = self._rng["gps"]
        duration = float(times[-1] - times[0])
        n_windows = int(rng.poisson(self.plan.gps_blackout_rate_per_s * max(duration, 0.0)))
        for _ in range(n_windows):
            start = times[0] + rng.uniform(0.0, max(duration, 1e-9))
            mask |= (times >= start) & (times < start + self.plan.gps_blackout_duration_s)
        if n_windows:
            perf.count("faults.gps_blackout_window", n_windows)
        if mask.any():
            perf.count("faults.gps_blackout_fix", int(mask.sum()))
        return mask

    # -- ToF ranges ---------------------------------------------------------------

    def tof_outliers(self, ranges_m: np.ndarray) -> np.ndarray:
        """Replace a random subset of ranges with late multipath spikes."""
        ranges = np.asarray(ranges_m, dtype=float)
        if not self.plan.tof_active or len(ranges) == 0:
            return ranges
        rng = self._rng["tof"]
        hit = rng.random(len(ranges)) < self.plan.tof_outlier_rate
        if not hit.any():
            return ranges
        # Multipath only ever *adds* delay: exponential positive spikes.
        spikes = rng.exponential(self.plan.tof_outlier_bias_m, len(ranges))
        perf.count("faults.tof_outlier", int(hit.sum()))
        return ranges + np.where(hit, spikes, 0.0)

    # -- wind drift ---------------------------------------------------------------

    def wind_offsets(self, times_s: np.ndarray) -> Optional[np.ndarray]:
        """``(n, 3)`` drift of the true track over one flight, or None.

        A steady push: offset grows linearly with time into the
        flight.  Direction is the plan's, or drawn fresh per flight.
        """
        if not self.plan.wind_active:
            return None
        times = np.asarray(times_s, dtype=float)
        rng = self._rng["wind"]
        if self.plan.wind_direction_deg is None:
            theta = rng.uniform(0.0, 2.0 * np.pi)
        else:
            theta = np.deg2rad(self.plan.wind_direction_deg)
        dt = times - times[0]
        drift = self.plan.wind_speed_mps * dt
        perf.count("faults.wind_flight")
        return np.column_stack(
            [drift * np.cos(theta), drift * np.sin(theta), np.zeros(len(times))]
        )

    # -- SNR reports (measurement flights) ---------------------------------------

    def snr_faults(self, snr_db: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Drop/corrupt PHY SNR reports.

        Returns ``(keep_mask, snr)`` — survivors and their (possibly
        corrupted) values.
        """
        snr = np.asarray(snr_db, dtype=float)
        keep = np.ones(len(snr), dtype=bool)
        if not self.plan.snr_active:
            return keep, snr
        rng = self._rng["snr"]
        out = snr.copy()
        if self.plan.snr_drop_rate > 0:
            keep = rng.random(len(snr)) >= self.plan.snr_drop_rate
            dropped = int(len(snr) - keep.sum())
            if dropped:
                perf.count("faults.snr_dropped", dropped)
        if self.plan.snr_corrupt_rate > 0:
            bad = rng.random(len(snr)) < self.plan.snr_corrupt_rate
            noise = rng.normal(0.0, self.plan.snr_corrupt_sigma_db, len(snr))
            bad &= keep
            out = out + np.where(bad, noise, 0.0)
            if bad.any():
                perf.count("faults.snr_corrupted", int(bad.sum()))
        return keep, out


    # -- offered traffic (serving-time MAC batches) -------------------------------

    def traffic_bursts(self, offered_bytes: np.ndarray) -> np.ndarray:
        """Amplify a random subset of UE-TTI offered-byte cells.

        Models flash crowds / retransmission storms hitting the
        *offered* load before RLC admission.  With a zero burst rate
        the matrix passes through untouched and no RNG is drawn.
        """
        offered = np.asarray(offered_bytes, dtype=float)
        if not self.plan.traffic_active or offered.size == 0:
            return offered
        rng = self._rng["traffic"]
        hit = rng.random(offered.shape) < self.plan.traffic_burst_rate
        if not hit.any():
            return offered
        perf.count("faults.traffic_burst", int(hit.sum()))
        return offered * np.where(hit, self.plan.traffic_burst_factor, 1.0)

    # -- attach storms (event-driven serving phases) ------------------------------

    def storm_onsets(self, duration_s: float) -> np.ndarray:
        """Attach-storm onset times over one serving phase, sorted.

        Onset count is Poisson in the phase duration at the plan's
        rate; onsets are uniform over the phase.  Each onset knocks
        ``plan.storm_burst_ues`` attached UEs into a simultaneous
        re-attach (the event layer executes the knock-off).  Zero rate
        draws no RNG.
        """
        if not self.plan.storm_active or duration_s <= 0:
            return np.empty(0, dtype=float)
        rng = self._rng["storm"]
        n = int(rng.poisson(self.plan.storm_rate_per_s * float(duration_s)))
        if n == 0:
            return np.empty(0, dtype=float)
        onsets = np.sort(rng.uniform(0.0, float(duration_s), n))
        perf.count("faults.storm_onset", n)
        return onsets


def as_injector(faults: "FaultPlan | FaultInjector | None") -> Optional[FaultInjector]:
    """Coerce a plan (or pass through an injector / None)."""
    if faults is None:
        return None
    if isinstance(faults, FaultInjector):
        return faults
    if isinstance(faults, FaultPlan):
        return FaultInjector(faults)
    raise TypeError(
        f"faults must be a FaultPlan, FaultInjector or None, got {type(faults).__name__}"
    )

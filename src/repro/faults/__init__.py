"""Fault injection for chaos runs.

The paper's premise is self-organization under imperfect measurements;
this package makes the imperfections first-class.  A seeded
:class:`FaultPlan` declares which failure modes fire (SRS drops/delays,
GPS blackouts, ToF outliers, wind drift, SNR corruption) and a
:class:`FaultInjector` executes it deterministically at the
measurement-pipeline injection points.  Pass a plan to
:func:`repro.sim.runner.run_simulation` to turn any scenario into a
chaos run; ``faults.*`` / ``fallback.*`` perf counters record what
fired and how the controller coped.
"""

from repro.faults.injector import FaultInjector, as_injector
from repro.faults.plan import FaultPlan

__all__ = ["FaultPlan", "FaultInjector", "as_injector"]

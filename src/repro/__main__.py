"""Command-line interface: regenerate any paper figure by id.

A thin back-compat shim over the unified experiment runner::

    python -m repro list                 # show available experiments
    python -m repro run fig20            # regenerate Fig. 20's rows
    python -m repro run headline --full  # paper-scale fidelity

Prefer ``python -m repro.experiments`` — same commands plus
``--workers``, ``--force``, ``--no-cache`` and ``summary``.
"""

from __future__ import annotations

from repro.experiments.cli import main

if __name__ == "__main__":
    raise SystemExit(main())

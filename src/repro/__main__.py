"""Command-line interface: regenerate any paper figure by id.

Usage::

    python -m repro list                 # show available experiments
    python -m repro run fig20            # regenerate Fig. 20's rows
    python -m repro run headline --full  # paper-scale fidelity
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import REGISTRY
from repro.experiments.common import print_rows


def _cmd_list() -> int:
    print("Available experiments:")
    for exp_id in REGISTRY:
        print(f"  {exp_id}")
    return 0


def _cmd_run(exp_id: str, full: bool) -> int:
    run_fn = REGISTRY.get(exp_id)
    if run_fn is None:
        print(f"unknown experiment {exp_id!r}; try 'python -m repro list'", file=sys.stderr)
        return 2
    result = run_fn(quick=not full)
    print_rows(exp_id, result.get("rows", []), result.get("paper"))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro", description="SkyRAN reproduction experiment runner"
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list experiment ids")
    run_p = sub.add_parser("run", help="run one experiment")
    run_p.add_argument("experiment", help="experiment id (e.g. fig20, headline)")
    run_p.add_argument(
        "--full",
        action="store_true",
        help="paper-scale fidelity (1 m grids; slow)",
    )
    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    return _cmd_run(args.experiment, args.full)


if __name__ == "__main__":
    raise SystemExit(main())

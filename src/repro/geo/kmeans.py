"""Lloyd's K-means with k-means++ seeding.

SkyRAN spatially groups high-gradient grid cells into ``K`` clusters
whose heads become the waypoints of the measurement trajectory (paper
Step 6.3).  A small, dependency-free implementation is sufficient: the
inputs are a few thousand 2D cell centers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class KMeansResult:
    """Outcome of a K-means run.

    Attributes
    ----------
    centers:
        ``(k, d)`` array of cluster centroids.
    labels:
        ``(n,)`` array assigning each input point to a centroid.
    inertia:
        Sum of squared distances of points to their assigned centroid.
    n_iter:
        Number of Lloyd iterations executed.
    """

    centers: np.ndarray
    labels: np.ndarray
    inertia: float
    n_iter: int


def _plus_plus_init(
    points: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread initial centers proportionally to D^2."""
    n = len(points)
    centers = np.empty((k, points.shape[1]), dtype=float)
    first = rng.integers(n)
    centers[0] = points[first]
    closest_sq = np.sum((points - centers[0]) ** 2, axis=1)
    for j in range(1, k):
        total = closest_sq.sum()
        if total <= 0:
            # All remaining points coincide with an existing center.
            centers[j:] = points[rng.integers(n, size=k - j)]
            break
        probs = closest_sq / total
        idx = rng.choice(n, p=probs)
        centers[j] = points[idx]
        dist_sq = np.sum((points - centers[j]) ** 2, axis=1)
        np.minimum(closest_sq, dist_sq, out=closest_sq)
    return centers


def kmeans(
    points: np.ndarray,
    k: int,
    max_iter: int = 100,
    tol: float = 1e-6,
    seed: Optional[int] = None,
    weights: Optional[np.ndarray] = None,
) -> KMeansResult:
    """Cluster ``points`` into ``k`` groups.

    Parameters
    ----------
    points:
        ``(n, d)`` array of samples.
    k:
        Number of clusters; must satisfy ``1 <= k <= n``.
    max_iter:
        Upper bound on Lloyd iterations.
    tol:
        Convergence threshold on total centroid movement (meters for
        our 2D use).
    seed:
        Seed for the k-means++ initialisation.
    weights:
        Optional per-point weights (e.g. gradient magnitudes) so that
        hot cells pull centroids harder.

    Returns
    -------
    KMeansResult
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2:
        raise ValueError(f"points must be 2D, got shape {points.shape}")
    n = len(points)
    if not 1 <= k <= n:
        raise ValueError(f"need 1 <= k <= n (k={k}, n={n})")
    if weights is None:
        w = np.ones(n, dtype=float)
    else:
        w = np.asarray(weights, dtype=float)
        if w.shape != (n,):
            raise ValueError(f"weights must have shape ({n},), got {w.shape}")
        if np.any(w < 0):
            raise ValueError("weights must be non-negative")

    rng = np.random.default_rng(seed)
    centers = _plus_plus_init(points, k, rng)
    labels = np.zeros(n, dtype=int)
    n_iter = 0
    for n_iter in range(1, max_iter + 1):
        # Assignment step.
        diff = points[:, None, :] - centers[None, :, :]
        dist_sq = np.sum(diff * diff, axis=-1)
        labels = np.argmin(dist_sq, axis=1)
        # Update step.
        new_centers = centers.copy()
        for j in range(k):
            mask = labels == j
            mass = w[mask].sum()
            if mass > 0:
                new_centers[j] = np.average(points[mask], axis=0, weights=w[mask])
            else:
                # Re-seed an empty cluster at the farthest point.
                far = int(np.argmax(dist_sq[np.arange(n), labels]))
                new_centers[j] = points[far]
        shift = float(np.sum(np.hypot(*(new_centers - centers).T)))
        centers = new_centers
        if shift <= tol:
            break

    diff = points[:, None, :] - centers[None, :, :]
    dist_sq = np.sum(diff * diff, axis=-1)
    labels = np.argmin(dist_sq, axis=1)
    inertia = float(np.sum(w * dist_sq[np.arange(n), labels]))
    return KMeansResult(centers=centers, labels=labels, inertia=inertia, n_iter=n_iter)

"""Point types and small vector helpers.

SkyRAN works in a local east-north-up (ENU) frame: ``x`` grows east,
``y`` grows north and ``z`` is the height above the terrain datum, all
in meters.  The UAV GPS fixes and UE positions are expressed in this
frame throughout the code base.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np


@dataclass(frozen=True)
class Point2D:
    """A ground-plane position in meters (east, north)."""

    x: float
    y: float

    def distance_to(self, other: "Point2D") -> float:
        """Euclidean distance to ``other`` in meters."""
        return float(np.hypot(self.x - other.x, self.y - other.y))

    def as_array(self) -> np.ndarray:
        return np.array([self.x, self.y], dtype=float)


@dataclass(frozen=True)
class Point3D:
    """A 3D position in meters (east, north, up)."""

    x: float
    y: float
    z: float

    def distance_to(self, other: "Point3D") -> float:
        """Euclidean distance to ``other`` in meters."""
        dx, dy, dz = self.x - other.x, self.y - other.y, self.z - other.z
        return float(np.sqrt(dx * dx + dy * dy + dz * dz))

    def ground(self) -> Point2D:
        """Projection onto the ground plane."""
        return Point2D(self.x, self.y)

    def as_array(self) -> np.ndarray:
        return np.array([self.x, self.y, self.z], dtype=float)


def as_xy_array(points: Iterable) -> np.ndarray:
    """Convert an iterable of 2D/3D points into an ``(n, 2)`` float array.

    Accepts :class:`Point2D`, :class:`Point3D`, tuples or array rows;
    only the first two coordinates are kept.
    """
    rows = []
    for p in points:
        if isinstance(p, (Point2D, Point3D)):
            rows.append((p.x, p.y))
        else:
            seq = tuple(p)
            rows.append((float(seq[0]), float(seq[1])))
    if not rows:
        return np.empty((0, 2), dtype=float)
    return np.asarray(rows, dtype=float)


def as_xyz_array(points: Iterable) -> np.ndarray:
    """Convert an iterable of 3D points into an ``(n, 3)`` float array.

    2D inputs are lifted to ``z = 0``.
    """
    rows = []
    for p in points:
        if isinstance(p, Point3D):
            rows.append((p.x, p.y, p.z))
        elif isinstance(p, Point2D):
            rows.append((p.x, p.y, 0.0))
        else:
            seq = tuple(p)
            if len(seq) == 2:
                rows.append((float(seq[0]), float(seq[1]), 0.0))
            else:
                rows.append((float(seq[0]), float(seq[1]), float(seq[2])))
    if not rows:
        return np.empty((0, 3), dtype=float)
    return np.asarray(rows, dtype=float)


def pairwise_distances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix of Euclidean distances between rows of ``a`` and ``b``.

    Both inputs are ``(n, d)`` / ``(m, d)`` arrays; the result is
    ``(n, m)``.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    diff = a[:, None, :] - b[None, :, :]
    return np.sqrt(np.sum(diff * diff, axis=-1))


def polyline_length(points: Sequence) -> float:
    """Total length of a polyline given as a sequence of points (meters)."""
    arr = as_xy_array(points)
    if len(arr) < 2:
        return 0.0
    seg = np.diff(arr, axis=0)
    return float(np.sum(np.hypot(seg[:, 0], seg[:, 1])))

"""Quantized 2D grid over the operating area.

SkyRAN quantizes its operating area into 1 m x 1 m grid cells because
the UAV GPS is only accurate to 1-5 m (paper, Section 3.3 "Quantizing
Space").  :class:`GridSpec` is the single source of truth for the
world <-> cell-index mapping; every map-like structure (terrain
heightmaps, REMs, gradient maps, min-SNR maps) is a 2D array indexed
``[iy, ix]`` against one :class:`GridSpec`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np


@dataclass(frozen=True)
class GridSpec:
    """A regular grid of square cells covering a rectangular area.

    Parameters
    ----------
    origin_x, origin_y:
        World coordinates (meters) of the south-west corner of cell
        ``(ix=0, iy=0)``.
    cell_size:
        Edge length of each square cell in meters (1.0 in the paper).
    nx, ny:
        Number of cells east-west and north-south.
    """

    origin_x: float
    origin_y: float
    cell_size: float
    nx: int
    ny: int

    def __post_init__(self) -> None:
        if self.cell_size <= 0:
            raise ValueError(f"cell_size must be positive, got {self.cell_size}")
        if self.nx <= 0 or self.ny <= 0:
            raise ValueError(f"grid must be non-empty, got nx={self.nx} ny={self.ny}")

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_extent(
        cls,
        width: float,
        height: float,
        cell_size: float = 1.0,
        origin_x: float = 0.0,
        origin_y: float = 0.0,
    ) -> "GridSpec":
        """Build a grid covering ``width x height`` meters."""
        nx = max(1, int(round(width / cell_size)))
        ny = max(1, int(round(height / cell_size)))
        return cls(origin_x, origin_y, cell_size, nx, ny)

    # -- basic geometry --------------------------------------------------------

    @property
    def width(self) -> float:
        """East-west extent in meters."""
        return self.nx * self.cell_size

    @property
    def height(self) -> float:
        """North-south extent in meters."""
        return self.ny * self.cell_size

    @property
    def shape(self) -> Tuple[int, int]:
        """Array shape ``(ny, nx)`` for maps laid over this grid."""
        return (self.ny, self.nx)

    @property
    def num_cells(self) -> int:
        return self.nx * self.ny

    @property
    def max_x(self) -> float:
        return self.origin_x + self.width

    @property
    def max_y(self) -> float:
        return self.origin_y + self.height

    def contains(self, x: float, y: float) -> bool:
        """Whether world point ``(x, y)`` falls inside the grid extent."""
        return (
            self.origin_x <= x < self.max_x and self.origin_y <= y < self.max_y
        )

    # -- world <-> index mapping ----------------------------------------------

    def cell_of(self, x: float, y: float) -> Tuple[int, int]:
        """Cell index ``(ix, iy)`` containing world point ``(x, y)``.

        Points outside the extent are clamped to the border cell so
        that slightly-out-of-bounds GPS fixes still land in a cell.
        """
        ix = int(np.floor((x - self.origin_x) / self.cell_size))
        iy = int(np.floor((y - self.origin_y) / self.cell_size))
        ix = min(max(ix, 0), self.nx - 1)
        iy = min(max(iy, 0), self.ny - 1)
        return ix, iy

    def cells_of(self, xy: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`cell_of` for an ``(n, 2)`` array of points."""
        xy = np.asarray(xy, dtype=float)
        ix = np.floor((xy[:, 0] - self.origin_x) / self.cell_size).astype(int)
        iy = np.floor((xy[:, 1] - self.origin_y) / self.cell_size).astype(int)
        np.clip(ix, 0, self.nx - 1, out=ix)
        np.clip(iy, 0, self.ny - 1, out=iy)
        return ix, iy

    def center_of(self, ix: int, iy: int) -> Tuple[float, float]:
        """World coordinates of the center of cell ``(ix, iy)``."""
        x = self.origin_x + (ix + 0.5) * self.cell_size
        y = self.origin_y + (iy + 0.5) * self.cell_size
        return x, y

    def centers(self) -> Tuple[np.ndarray, np.ndarray]:
        """Meshgrid of all cell-center coordinates, each shaped ``(ny, nx)``."""
        xs = self.origin_x + (np.arange(self.nx) + 0.5) * self.cell_size
        ys = self.origin_y + (np.arange(self.ny) + 0.5) * self.cell_size
        return np.meshgrid(xs, ys)

    def centers_flat(self) -> np.ndarray:
        """All cell centers as an ``(nx * ny, 2)`` array, row-major ``[iy, ix]``."""
        gx, gy = self.centers()
        return np.column_stack([gx.ravel(), gy.ravel()])

    def iter_cells(self) -> Iterator[Tuple[int, int]]:
        """Iterate all cell indices ``(ix, iy)`` row by row."""
        for iy in range(self.ny):
            for ix in range(self.nx):
                yield ix, iy

    # -- resampling -------------------------------------------------------------

    def coarsen(self, factor: int) -> "GridSpec":
        """A grid over the same extent with cells ``factor`` times larger."""
        if factor < 1:
            raise ValueError(f"factor must be >= 1, got {factor}")
        return GridSpec(
            self.origin_x,
            self.origin_y,
            self.cell_size * factor,
            max(1, self.nx // factor),
            max(1, self.ny // factor),
        )

    def clamp(self, x: float, y: float) -> Tuple[float, float]:
        """Clamp a world point into the grid extent (half-open on the far edge)."""
        eps = 1e-9
        cx = min(max(x, self.origin_x), self.max_x - eps)
        cy = min(max(y, self.origin_y), self.max_y - eps)
        return cx, cy

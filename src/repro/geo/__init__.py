"""Geometric primitives and algorithms used across SkyRAN.

This package is a dependency-light substrate: a quantized 2D grid (the
paper quantizes the operating area into 1 m x 1 m cells, Section 3.3),
point helpers, Lloyd's K-means with k-means++ seeding (trajectory
clustering, Step 6.3), a travelling-salesman heuristic (Step 6.4) and
polyline utilities used by every flight trajectory.
"""

from repro.geo.grid import GridSpec
from repro.geo.points import (
    Point2D,
    Point3D,
    as_xy_array,
    as_xyz_array,
    pairwise_distances,
    polyline_length,
)
from repro.geo.kmeans import KMeansResult, kmeans
from repro.geo.tsp import solve_tsp, tour_length
from repro.geo.paths import (
    point_to_polyline_distance,
    polyline_to_polyline_distance,
    resample_polyline,
    truncate_polyline,
)

__all__ = [
    "GridSpec",
    "Point2D",
    "Point3D",
    "as_xy_array",
    "as_xyz_array",
    "pairwise_distances",
    "polyline_length",
    "KMeansResult",
    "kmeans",
    "solve_tsp",
    "tour_length",
    "point_to_polyline_distance",
    "polyline_to_polyline_distance",
    "resample_polyline",
    "truncate_polyline",
]

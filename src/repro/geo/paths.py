"""Polyline utilities shared by trajectory planning and information gain.

Trajectories in SkyRAN are polylines in the horizontal plane at the
operating altitude.  The planner needs three operations: resampling a
polyline into evenly spaced probe points (GPS/SRS sampling along the
flight), truncating it to a measurement budget, and measuring the
distance between a candidate trajectory and the historical trajectories
of a UE (the paper's *information gain*, Step 6.4).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.geo.points import as_xy_array


def resample_polyline(points: Sequence, spacing: float) -> np.ndarray:
    """Resample a polyline at (approximately) uniform arc-length spacing.

    Parameters
    ----------
    points:
        Polyline vertices (any 2D point representation).
    spacing:
        Target distance between consecutive samples in meters.

    Returns
    -------
    ``(m, 2)`` array of samples including both endpoints.
    """
    if spacing <= 0:
        raise ValueError(f"spacing must be positive, got {spacing}")
    arr = as_xy_array(points)
    if len(arr) == 0:
        return arr
    if len(arr) == 1:
        return arr.copy()
    seg = np.diff(arr, axis=0)
    seg_len = np.hypot(seg[:, 0], seg[:, 1])
    cum = np.concatenate([[0.0], np.cumsum(seg_len)])
    total = cum[-1]
    if total == 0.0:
        return arr[:1].copy()
    n_samples = max(2, int(np.floor(total / spacing)) + 1)
    targets = np.linspace(0.0, total, n_samples)
    xs = np.interp(targets, cum, arr[:, 0])
    ys = np.interp(targets, cum, arr[:, 1])
    return np.column_stack([xs, ys])


def truncate_polyline(points: Sequence, budget: float) -> np.ndarray:
    """Clip a polyline to at most ``budget`` meters of arc length.

    The final vertex is interpolated so the returned polyline has
    exactly ``min(budget, length)`` length.
    """
    if budget < 0:
        raise ValueError(f"budget must be non-negative, got {budget}")
    arr = as_xy_array(points)
    if len(arr) < 2 or budget == 0:
        return arr[:1].copy() if len(arr) else arr
    out = [arr[0]]
    remaining = budget
    for i in range(1, len(arr)):
        seg = arr[i] - arr[i - 1]
        seg_len = float(np.hypot(seg[0], seg[1]))
        if seg_len <= remaining:
            out.append(arr[i])
            remaining -= seg_len
            if remaining <= 0:
                break
        else:
            if seg_len > 0:
                out.append(arr[i - 1] + seg * (remaining / seg_len))
            break
    return np.asarray(out)


def point_to_polyline_distance(point: Sequence, polyline: Sequence) -> float:
    """Shortest distance from a point to any segment of a polyline."""
    arr = as_xy_array(polyline)
    p = np.asarray(as_xy_array([point])[0], dtype=float)
    if len(arr) == 0:
        return float("inf")
    if len(arr) == 1:
        return float(np.hypot(*(p - arr[0])))
    a = arr[:-1]
    b = arr[1:]
    ab = b - a
    ab_sq = np.sum(ab * ab, axis=1)
    ap = p[None, :] - a
    # Parametric foot of the perpendicular, clamped to the segment.
    with np.errstate(divide="ignore", invalid="ignore"):
        t = np.where(ab_sq > 0, np.sum(ap * ab, axis=1) / ab_sq, 0.0)
    t = np.clip(t, 0.0, 1.0)
    closest = a + t[:, None] * ab
    d = np.hypot(*(p[None, :] - closest).T)
    return float(np.min(d))


def polyline_to_polyline_distance(
    poly_a: Sequence, poly_b: Sequence, spacing: float = 5.0
) -> float:
    """Symmetric Hausdorff-style distance between two polylines.

    Used as the paper's *information gain*: the farther a candidate
    trajectory is from everything previously flown for a UE, the more
    new channel information it is expected to collect.  We take the
    maximum over directed distances of resampled points to the other
    polyline (Hausdorff), which rewards trajectories that reach into
    genuinely unexplored territory.
    """
    a = resample_polyline(poly_a, spacing)
    b = resample_polyline(poly_b, spacing)
    if len(a) == 0 or len(b) == 0:
        return float("inf")
    d_ab = max(point_to_polyline_distance(p, b) for p in a)
    d_ba = max(point_to_polyline_distance(p, a) for p in b)
    return float(max(d_ab, d_ba))

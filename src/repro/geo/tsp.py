"""Travelling-salesman heuristics for measurement trajectories.

SkyRAN turns the ``K`` cluster heads into a flight path by solving a
TSP with the heads as nodes (paper Step 6.4).  ``K`` is small (a few
to a few tens), so a nearest-neighbour construction refined by 2-opt
is fast and close to optimal.  The tour is *open* (the UAV does not
need to return to its start), matching how a measurement flight ends
at the optimal operating position rather than at its origin.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.geo.points import pairwise_distances


def tour_length(points: np.ndarray, order: Sequence[int], closed: bool = False) -> float:
    """Length of the tour visiting ``points`` in ``order``.

    Parameters
    ----------
    points:
        ``(n, d)`` array of node coordinates.
    order:
        Permutation of ``range(n)``.
    closed:
        If True, include the leg from the last node back to the first.
    """
    points = np.asarray(points, dtype=float)
    idx = np.asarray(list(order), dtype=int)
    if len(idx) < 2:
        return 0.0
    path = points[idx]
    seg = np.diff(path, axis=0)
    length = float(np.sum(np.sqrt(np.sum(seg * seg, axis=1))))
    if closed:
        length += float(np.linalg.norm(path[-1] - path[0]))
    return length


def _nearest_neighbour(dist: np.ndarray, start: int) -> List[int]:
    n = len(dist)
    unvisited = set(range(n))
    unvisited.remove(start)
    order = [start]
    current = start
    while unvisited:
        remaining = np.fromiter(unvisited, dtype=int)
        nxt = int(remaining[np.argmin(dist[current, remaining])])
        unvisited.remove(nxt)
        order.append(nxt)
        current = nxt
    return order


def _two_opt(order: List[int], dist: np.ndarray, max_rounds: int = 20) -> List[int]:
    """2-opt improvement on an open tour.

    For every anchor edge ``(a, b) = (order[i], order[i+1])`` two move
    families are tried: reversing an interior segment
    ``order[i+1:j+1]`` (replacing edges ``(a,b)`` and ``(c,d)`` with
    ``(a,c)`` and ``(b,d)``), and reversing the tail ``order[i+1:]``
    — on an *open* tour the tail flip only replaces ``(a,b)`` with
    ``(a, last)``, a move the closed-tour formulation never proposes.
    """
    n = len(order)
    if n < 3:
        return order
    improved = True
    rounds = 0
    while improved and rounds < max_rounds:
        improved = False
        rounds += 1
        for i in range(n - 2):
            a = order[i]
            b = order[i + 1]
            for j in range(i + 2, n - 1):
                c = order[j]
                d = order[j + 1]
                delta = (dist[a, c] + dist[b, d]) - (dist[a, b] + dist[c, d])
                if delta < -1e-12:
                    order[i + 1 : j + 1] = reversed(order[i + 1 : j + 1])
                    # The reversal moves c next to a: the anchor edge
                    # is now (a, c), and later deltas in this i pass
                    # must be scored against it, not the removed
                    # (a, b) edge.
                    b = order[i + 1]
                    improved = True
            last = order[-1]
            if dist[a, last] - dist[a, b] < -1e-12:
                order[i + 1 :] = reversed(order[i + 1 :])
                improved = True
    return order


def solve_tsp(
    points: np.ndarray,
    start: Optional[int] = None,
    two_opt: bool = True,
) -> List[int]:
    """Order the nodes of an open TSP tour.

    Parameters
    ----------
    points:
        ``(n, d)`` array of node coordinates (cluster heads).
    start:
        Index of the node the tour must begin at (e.g. the node closest
        to the UAV's current position).  If None, the best of all
        starting nodes (by final tour length) is used for small inputs,
        otherwise node 0.
    two_opt:
        Whether to refine the greedy tour with 2-opt.

    Returns
    -------
    list of int
        Visiting order (a permutation of ``range(n)``).
    """
    points = np.asarray(points, dtype=float)
    n = len(points)
    if n == 0:
        return []
    if n == 1:
        return [0]
    dist = pairwise_distances(points, points)

    if start is not None:
        if not 0 <= start < n:
            raise ValueError(f"start index {start} out of range for {n} nodes")
        candidates = [start]
    elif n <= 12:
        candidates = list(range(n))
    else:
        candidates = [0]

    best_order: List[int] = []
    best_len = np.inf
    for s in candidates:
        seeds = [_nearest_neighbour(dist, s)]
        if two_opt:
            # The nearest-neighbour tour can sit in a 2-opt local
            # optimum that is *worse* than simply visiting the nodes in
            # index order, so also refine the identity-from-start order
            # — 2-opt only improves its seed, which guarantees the
            # result is never longer than the input order.
            seeds.append([s] + [i for i in range(n) if i != s])
        for order in seeds:
            if two_opt:
                order = _two_opt(order, dist)
            length = tour_length(points, order)
            if length < best_len:
                best_len = length
                best_order = order
    return best_order

"""Dependency-free visualization.

The offline environment has no plotting stack, so this package renders
maps and trajectories as ASCII blocks (for terminals/logs) and as
binary PGM/PPM images (viewable anywhere, committable as artifacts).
Used by the examples and handy when debugging REMs interactively.
"""

from repro.viz.ascii_art import ascii_heatmap, ascii_overlay
from repro.viz.images import save_heatmap_ppm, save_pgm

__all__ = [
    "ascii_heatmap",
    "ascii_overlay",
    "save_heatmap_ppm",
    "save_pgm",
]

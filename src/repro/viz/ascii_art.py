"""ASCII rendering of maps and trajectories."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

#: Shade ramp from low to high.
SHADES = " .:-=+*#%@"


def _downsample(field: np.ndarray, width: int) -> tuple:
    """Block-average a field to at most ``width`` columns."""
    ny, nx = field.shape
    factor = max(1, int(np.ceil(nx / width)))
    out_ny = ny // factor or 1
    out_nx = nx // factor or 1
    trimmed = field[: out_ny * factor, : out_nx * factor]
    blocks = trimmed.reshape(out_ny, factor, out_nx, factor)
    counts = np.sum(np.isfinite(blocks), axis=(1, 3))
    sums = np.nansum(blocks, axis=(1, 3))
    coarse = np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)
    return coarse, factor


def ascii_heatmap(
    field: np.ndarray,
    width: int = 72,
    vmin: Optional[float] = None,
    vmax: Optional[float] = None,
    north_up: bool = True,
) -> str:
    """Render a 2D field as shaded ASCII.

    NaN cells render as ``?``.  ``north_up`` flips the row order so
    larger ``y`` (north) prints at the top, matching map convention.
    """
    field = np.asarray(field, dtype=float)
    if field.ndim != 2:
        raise ValueError(f"field must be 2D, got shape {field.shape}")
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    coarse, _ = _downsample(field, width)
    finite = coarse[np.isfinite(coarse)]
    lo = vmin if vmin is not None else (float(finite.min()) if finite.size else 0.0)
    hi = vmax if vmax is not None else (float(finite.max()) if finite.size else 1.0)
    span = max(hi - lo, 1e-12)
    rows = []
    row_iter = reversed(coarse) if north_up else coarse
    for row in row_iter:
        chars = []
        for v in row:
            if not np.isfinite(v):
                chars.append("?")
            else:
                level = int(np.clip((v - lo) / span, 0.0, 1.0) * (len(SHADES) - 1))
                chars.append(SHADES[level])
        rows.append("".join(chars))
    return "\n".join(rows)


def ascii_overlay(
    field: np.ndarray,
    grid,
    polylines: Sequence,
    width: int = 72,
    marks: str = "ABCDEFG",
    north_up: bool = True,
) -> str:
    """Heatmap with polylines (e.g. trajectories) overlaid as letters.

    ``polylines`` is a sequence of ``(n, 2)`` world-coordinate arrays;
    polyline ``i`` is drawn with ``marks[i]``.
    """
    field = np.asarray(field, dtype=float)
    coarse, factor = _downsample(field, width)
    base = ascii_heatmap(field, width=width, north_up=north_up).split("\n")
    canvas = [list(row) for row in base]
    out_ny = len(canvas)
    out_nx = len(canvas[0]) if canvas else 0
    for p_idx, poly in enumerate(polylines):
        mark = marks[p_idx % len(marks)]
        pts = np.asarray(poly, dtype=float).reshape(-1, 2)
        # Resample densely enough to paint continuous strokes.
        seg = np.diff(pts, axis=0)
        total = float(np.sum(np.hypot(seg[:, 0], seg[:, 1]))) if len(pts) > 1 else 0.0
        n_samples = max(len(pts), int(total / (grid.cell_size * factor)) + 1)
        if len(pts) > 1:
            t = np.linspace(0, 1, n_samples)
            cum = np.concatenate([[0], np.cumsum(np.hypot(seg[:, 0], seg[:, 1]))])
            cum = cum / max(cum[-1], 1e-12)
            xs = np.interp(t, cum, pts[:, 0])
            ys = np.interp(t, cum, pts[:, 1])
        else:
            xs, ys = pts[:, 0], pts[:, 1]
        for x, y in zip(xs, ys):
            ix, iy = grid.cell_of(x, y)
            cx, cy = ix // factor, iy // factor
            if north_up:
                cy = out_ny - 1 - cy
            if 0 <= cy < out_ny and 0 <= cx < out_nx:
                canvas[cy][cx] = mark
    return "\n".join("".join(row) for row in canvas)

"""Binary PGM/PPM image export (no plotting stack required).

PGM (grayscale) and PPM (color) are the simplest raster formats there
are; every image viewer opens them.  ``save_heatmap_ppm`` maps a field
through a blue->yellow->red ramp, which is enough to eyeball REMs,
gradient maps and throughput maps produced by the experiments.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

import numpy as np


def _normalize(field: np.ndarray, vmin: Optional[float], vmax: Optional[float]) -> np.ndarray:
    field = np.asarray(field, dtype=float)
    finite = field[np.isfinite(field)]
    lo = vmin if vmin is not None else (float(finite.min()) if finite.size else 0.0)
    hi = vmax if vmax is not None else (float(finite.max()) if finite.size else 1.0)
    span = max(hi - lo, 1e-12)
    out = np.clip((field - lo) / span, 0.0, 1.0)
    out[~np.isfinite(field)] = 0.0
    return out


def save_pgm(
    path: "str | Path",
    field: np.ndarray,
    vmin: Optional[float] = None,
    vmax: Optional[float] = None,
    north_up: bool = True,
) -> None:
    """Write a 2D field as an 8-bit binary PGM (grayscale) image."""
    field = np.asarray(field, dtype=float)
    if field.ndim != 2:
        raise ValueError(f"field must be 2D, got shape {field.shape}")
    norm = _normalize(field, vmin, vmax)
    if north_up:
        norm = norm[::-1]
    pixels = (norm * 255).astype(np.uint8)
    ny, nx = pixels.shape
    header = f"P5\n{nx} {ny}\n255\n".encode("ascii")
    Path(path).write_bytes(header + pixels.tobytes())


def _colormap(norm: np.ndarray) -> np.ndarray:
    """Blue -> cyan -> yellow -> red ramp, ``(..., 3)`` uint8."""
    r = np.clip(2.0 * norm - 0.5, 0.0, 1.0)
    g = np.clip(1.5 - np.abs(2.0 * norm - 1.0) * 1.5, 0.0, 1.0)
    b = np.clip(1.0 - 2.0 * norm, 0.0, 1.0)
    rgb = np.stack([r, g, b], axis=-1)
    return (rgb * 255).astype(np.uint8)


def save_heatmap_ppm(
    path: "str | Path",
    field: np.ndarray,
    vmin: Optional[float] = None,
    vmax: Optional[float] = None,
    north_up: bool = True,
) -> None:
    """Write a 2D field as an 8-bit binary PPM (color heatmap)."""
    field = np.asarray(field, dtype=float)
    if field.ndim != 2:
        raise ValueError(f"field must be 2D, got shape {field.shape}")
    norm = _normalize(field, vmin, vmax)
    if north_up:
        norm = norm[::-1]
    pixels = _colormap(norm)
    ny, nx = pixels.shape[:2]
    header = f"P6\n{nx} {ny}\n255\n".encode("ascii")
    Path(path).write_bytes(header + pixels.tobytes())

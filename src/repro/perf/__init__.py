"""Performance instrumentation (timers, counters, bench artifacts).

See :mod:`repro.perf.registry` for the core registry.  Typical use::

    from repro.perf import perf

    with perf.span("raytrace"):
        ...
    perf.count("oracle.map_cache.hit")

    print("\\n".join(perf.report_lines()))
"""

from repro.perf.registry import PerfRegistry, SpanStat, peak_rss_bytes, perf

__all__ = ["PerfRegistry", "SpanStat", "peak_rss_bytes", "perf"]

"""Lightweight timer/counter registry for the hot paths.

Every performance-sensitive layer (ray tracer, map oracle, caches,
benchmark drivers) reports into one process-wide :data:`perf` registry:
``perf.span("raytrace")`` accumulates wall time per named section and
``perf.count("oracle.map_cache.hit")`` bumps named counters.  Benches
snapshot the registry into ``BENCH_*.json`` artifacts so every future
perf PR has a measured baseline to beat, and tests use the counters to
assert structural properties ("exactly one raytrace per sample batch")
that wall time alone cannot pin down.

The registry is deliberately tiny: a dict of counters, a dict of span
stats and a lock.  Disable it wholesale with ``REPRO_PERF=0`` when even
microseconds matter.
"""

from __future__ import annotations

import json
import os
import resource
import threading
import time
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List


def peak_rss_bytes() -> int:
    """Lifetime peak resident set size of this process, in bytes.

    ``ru_maxrss`` is kilobytes on Linux (bytes on macOS, where the
    kernel reports it that way); normalized here to bytes.  It is a
    high-water mark — it never decreases — which is exactly the bound
    the memory-scaling gates need.
    """
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if os.uname().sysname == "Darwin":
        return int(rss)
    return int(rss) * 1024


@dataclass
class SpanStat:
    """Accumulated statistics for one named span.

    ``peak_alloc_bytes`` / ``max_rss_bytes`` stay 0 unless the span was
    entered with ``track_memory=True``; they record the worst call
    (high-water marks, not accumulations).
    """

    calls: int = 0
    total_s: float = 0.0
    peak_alloc_bytes: int = 0
    max_rss_bytes: int = 0

    @property
    def mean_s(self) -> float:
        return self.total_s / self.calls if self.calls else 0.0


class PerfRegistry:
    """Process-wide named timers and counters.

    Thread-safe; cheap enough to leave enabled (one ``perf_counter``
    pair and a dict update per span).  All query methods return copies,
    so callers can snapshot-and-reset without racing the hot paths.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._spans: Dict[str, SpanStat] = {}
        self._counters: Dict[str, int] = {}
        self._lock = threading.Lock()

    # -- recording -----------------------------------------------------------

    @contextmanager
    def span(self, name: str, track_memory: bool = False) -> Iterator[None]:
        """Time a ``with`` block under ``name`` (accumulating).

        With ``track_memory=True`` the span additionally records the
        peak tracemalloc allocation size reached inside the block and
        the process peak RSS at exit — the numbers the city-scale
        memory gates assert.  Tracing is started on demand (and stopped
        again if this span started it), so untracked spans pay nothing;
        tracked spans pay tracemalloc's allocation-hook overhead, so
        reserve the flag for coarse, bench-level spans.
        """
        if not self.enabled:
            yield
            return
        started_tracing = False
        if track_memory:
            if not tracemalloc.is_tracing():
                tracemalloc.start()
                started_tracing = True
            tracemalloc.reset_peak()
        t0 = time.perf_counter()
        try:
            yield
        finally:
            dt = time.perf_counter() - t0
            peak_alloc = 0
            max_rss = 0
            if track_memory:
                _, peak_alloc = tracemalloc.get_traced_memory()
                if started_tracing:
                    tracemalloc.stop()
                max_rss = peak_rss_bytes()
            with self._lock:
                stat = self._spans.get(name)
                if stat is None:
                    stat = self._spans[name] = SpanStat()
                stat.calls += 1
                stat.total_s += dt
                if peak_alloc > stat.peak_alloc_bytes:
                    stat.peak_alloc_bytes = peak_alloc
                if max_rss > stat.max_rss_bytes:
                    stat.max_rss_bytes = max_rss

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to the named counter."""
        if not self.enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    # -- querying ------------------------------------------------------------

    def counter(self, name: str) -> int:
        """Current value of a counter (0 if never bumped)."""
        with self._lock:
            return self._counters.get(name, 0)

    def counters(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._counters)

    def spans(self) -> Dict[str, SpanStat]:
        with self._lock:
            return {
                k: SpanStat(v.calls, v.total_s, v.peak_alloc_bytes, v.max_rss_bytes)
                for k, v in self._spans.items()
            }

    def counters_since(self, before: Dict[str, int]) -> Dict[str, int]:
        """Positive counter deltas since a ``counters()`` snapshot.

        The canonical way to attribute counter activity to one region
        of code without resetting the registry under other readers.
        """
        return {
            name: count - before.get(name, 0)
            for name, count in sorted(self.counters().items())
            if count - before.get(name, 0) > 0
        }

    def snapshot_since(self, before: Dict) -> Dict:
        """Span/counter deltas since a ``snapshot()``, snapshot-shaped.

        Spans subtract calls and total time; counters subtract values.
        Entries that did not change are dropped.
        """
        now = self.snapshot()
        before_spans = before.get("spans", {})
        spans = {}
        for name, stat in now["spans"].items():
            prior = before_spans.get(name, {"calls": 0, "total_s": 0.0})
            calls = stat["calls"] - prior["calls"]
            total = stat["total_s"] - prior["total_s"]
            if calls > 0:
                spans[name] = {
                    "calls": calls,
                    "total_s": total,
                    "mean_s": total / calls,
                }
        before_counters = before.get("counters", {})
        counters = {
            name: value - before_counters.get(name, 0)
            for name, value in now["counters"].items()
            if value - before_counters.get(name, 0) > 0
        }
        return {"spans": spans, "counters": counters}

    def snapshot(self) -> Dict:
        """JSON-ready dict of every span and counter.

        Memory fields appear only on spans that actually tracked memory
        so artifacts from untracked runs keep their historical shape.
        """
        with self._lock:
            spans: Dict[str, Dict] = {}
            for name, stat in sorted(self._spans.items()):
                entry = {
                    "calls": stat.calls,
                    "total_s": stat.total_s,
                    "mean_s": stat.mean_s,
                }
                if stat.peak_alloc_bytes > 0:
                    entry["peak_alloc_bytes"] = stat.peak_alloc_bytes
                if stat.max_rss_bytes > 0:
                    entry["max_rss_bytes"] = stat.max_rss_bytes
                spans[name] = entry
            return {
                "spans": spans,
                "counters": dict(sorted(self._counters.items())),
            }

    def report_lines(self) -> List[str]:
        """Human-readable report, spans sorted by total time."""
        snap = self.snapshot()
        lines = ["perf spans:"]
        spans = sorted(
            snap["spans"].items(), key=lambda kv: kv[1]["total_s"], reverse=True
        )
        for name, stat in spans:
            lines.append(
                f"  {name:<32s} {stat['calls']:>8d} calls  "
                f"{stat['total_s']:>9.3f} s  {stat['mean_s'] * 1e3:>8.3f} ms/call"
            )
        lines.append("perf counters:")
        for name, value in snap["counters"].items():
            lines.append(f"  {name:<32s} {value:>12d}")
        return lines

    def dump(self, path: str) -> None:
        """Write the snapshot as JSON to ``path``."""
        with open(path, "w") as fh:
            json.dump(self.snapshot(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    def reset(self) -> None:
        """Drop every span and counter."""
        with self._lock:
            self._spans.clear()
            self._counters.clear()


#: The process-wide default registry every subsystem reports into.
perf = PerfRegistry(enabled=os.environ.get("REPRO_PERF", "1") != "0")

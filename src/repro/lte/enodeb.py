"""eNodeB with a round-robin PRB scheduler.

The airborne eNodeB does three things the reproduction needs:
(1) maintain the set of attached UEs, (2) turn per-UE SNR into per-UE
MAC throughput under cell sharing (round-robin over PRBs, the OAI
default), and (3) expose the SRS receive path the localization flight
consumes.  Full-cell (unshared) throughput — what the paper's
"average throughput per UE" figures report — comes straight from
:func:`repro.lte.throughput.throughput_mbps`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (mobility uses lte.ue)
    from repro.mobility.models import MobilityModel

from repro.lte.epc import EPC
from repro.lte.linkadapt import OuterLoopLinkAdaptation
from repro.lte.srs import SRSConfig, apply_channel, apply_channel_batch, make_srs_symbol
from repro.lte.throughput import PRB_PER_10MHZ, throughput_mbps
from repro.lte.ue import UE, UEState


@dataclass(frozen=True)
class SchedulerResult:
    """Outcome of scheduling one TTI-batch.

    Attributes
    ----------
    prb_share:
        PRBs granted per UE id.
    throughput_mbps:
        Resulting MAC throughput per UE id (under sharing).
    """

    prb_share: Dict[int, int]
    throughput_mbps: Dict[int, float]


@dataclass
class ENodeB:
    """The airborne LTE base station.

    Attributes
    ----------
    epc:
        Core network handling attach; the eNodeB forwards attach
        requests to it.
    srs_config:
        Numerology for the SRS receive path.
    n_prb:
        PRBs in the carrier (50 for 10 MHz).
    olla:
        Optional outer-loop link adaptation attached to this cell;
        when present its per-UE state is forgotten on detach so a
        re-attached UE id starts from a zero offset.
    mobility:
        Optional mobility model moving this cell's UEs; when present
        its per-UE state (waypoints, route progress, dwell timers) is
        forgotten on detach, exactly like the OLLA offsets — detached
        and churned UEs must not leak state.
    """

    epc: EPC = field(default_factory=EPC)
    srs_config: SRSConfig = field(default_factory=SRSConfig)
    n_prb: int = PRB_PER_10MHZ
    olla: Optional[OuterLoopLinkAdaptation] = None
    mobility: Optional["MobilityModel"] = None
    _ues: Dict[int, UE] = field(default_factory=dict)

    # -- attachment ---------------------------------------------------------------

    def register_ue(self, ue: UE, provision: bool = True, now_s: float = 0.0) -> None:
        """Attach a UE to this cell (provisioning it in the EPC first)."""
        if ue.ue_id in self._ues:
            raise ValueError(f"UE id {ue.ue_id} already registered")
        if provision:
            self.epc.provision(ue.imsi)
        self.epc.attach(ue, now_s)
        self._ues[ue.ue_id] = ue

    def deregister_ue(self, ue_id: int) -> None:
        ue = self._ues.pop(ue_id, None)
        if ue is not None:
            self.epc.detach(ue)
            if self.olla is not None:
                self.olla.forget(ue_id)
            if self.mobility is not None:
                self.mobility.forget(ue_id)

    @property
    def ues(self) -> List[UE]:
        """Attached UEs, ordered by id."""
        return [self._ues[k] for k in sorted(self._ues)]

    def connected_ues(self) -> List[UE]:
        return [u for u in self.ues if u.state is UEState.CONNECTED]

    # -- scheduling ----------------------------------------------------------------

    def schedule(
        self, snr_db_per_ue: Mapping[int, float], tti: Optional[int] = None
    ) -> SchedulerResult:
        """Round-robin PRB allocation over the connected UEs.

        Each UE with a known SNR gets an equal share of the carrier.
        With a ``tti`` index, the remainder PRBs rotate over the active
        UEs (``tti mod n_active`` positions) so long-run shares are
        exactly fair — the rotation a real RR scheduler performs.  The
        legacy one-shot call (``tti=None``) keeps the old biased
        tie-break — remainder to the lowest ids — so existing artifacts
        stay byte-identical; it equals ``tti=0``.
        """
        active = [u.ue_id for u in self.connected_ues() if u.ue_id in snr_db_per_ue]
        share: Dict[int, int] = {}
        rate: Dict[int, float] = {}
        if active:
            n_a = len(active)
            base, rem = divmod(self.n_prb, n_a)
            rho = 0 if tti is None else int(tti) % n_a
            for rank, ue_id in enumerate(sorted(active)):
                prb = base + (1 if (rank - rho) % n_a < rem else 0)
                share[ue_id] = prb
                rate[ue_id] = throughput_mbps(snr_db_per_ue[ue_id], n_prb=prb)
        return SchedulerResult(prb_share=share, throughput_mbps=rate)

    def full_cell_throughput(self, snr_db_per_ue: Mapping[int, float]) -> Dict[int, float]:
        """Per-UE throughput when granted the whole carrier (paper's metric)."""
        return {
            ue_id: throughput_mbps(snr, n_prb=self.n_prb)
            for ue_id, snr in snr_db_per_ue.items()
        }

    # -- SRS receive path --------------------------------------------------------------

    def receive_srs(
        self,
        ue: UE,
        true_delay_samples: float,
        snr_db: float,
        rng: np.random.Generator,
        multipath: Sequence = (),
    ) -> np.ndarray:
        """Receive one SRS symbol from a UE over a synthetic channel.

        The localization flight calls this once per 10 ms SRS report;
        the returned frequency-domain symbol feeds the ToF estimator.
        """
        tx = make_srs_symbol(self.srs_config, root=ue.srs_root)
        return apply_channel(
            tx, self.srs_config, true_delay_samples, snr_db, rng, multipath
        )

    def receive_srs_batch(
        self,
        ue: UE,
        delays_samples: np.ndarray,
        snrs_db: np.ndarray,
        rng: np.random.Generator,
        tap_excess: Optional[np.ndarray] = None,
        tap_power_db: Optional[np.ndarray] = None,
        tap_mask: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Receive a flight's worth of SRS symbols from one UE at once.

        Batched counterpart of :meth:`receive_srs`: one (cached) symbol
        synthesis and one :func:`repro.lte.srs.apply_channel_batch`
        call covering every kept reception, with per-symbol tap sets as
        masked arrays.  Bit-identical to per-symbol receives under the
        batch kernel's documented RNG draw schedule.
        """
        tx = make_srs_symbol(self.srs_config, root=ue.srs_root)
        return apply_channel_batch(
            tx,
            self.srs_config,
            delays_samples,
            snrs_db,
            rng,
            tap_excess,
            tap_power_db,
            tap_mask,
        )

    def known_srs_symbol(self, ue: UE) -> np.ndarray:
        """The reference symbol the correlator uses for a UE."""
        return make_srs_symbol(self.srs_config, root=ue.srs_root)

"""LTE substrate.

SkyRAN's localization runs entirely inside the LTE PHY: the eNodeB on
the UAV receives standard uplink Sounding Reference Signals (SRS) from
each UE and extracts signal time-of-flight via an upsampled IFFT
cross-correlation (paper Section 3.2, Eqs. 1-3).  This package
implements that PHY end to end on synthetic signals — Zadoff-Chu SRS
symbols, a delay + multipath + AWGN channel, the exact Eq. 1-3
estimator — plus the MAC-level pieces an LTE RAN needs: an SNR -> CQI
-> MCS -> throughput mapping, an eNodeB with a round-robin PRB
scheduler, and a minimal EPC (attach/bearer state machines).
"""

from repro.lte.srs import (
    SRSConfig,
    apply_channel,
    apply_channel_batch,
    make_srs_symbol,
    pack_taps,
    zadoff_chu,
)
from repro.lte.tof import (
    ToFEstimator,
    estimate_delay_samples,
    estimate_delays_batch,
    upsample_freq,
)
from repro.lte.throughput import (
    CQI_TABLE,
    cqi_from_snr,
    spectral_efficiency,
    throughput_mbps,
)
from repro.lte.linkadapt import OuterLoopLinkAdaptation, simulate_link
from repro.lte.ue import UE, UEState
from repro.lte.enodeb import ENodeB, SchedulerResult
from repro.lte.epc import EPC, BearerState, SessionRecord

__all__ = [
    "SRSConfig",
    "apply_channel",
    "apply_channel_batch",
    "make_srs_symbol",
    "pack_taps",
    "zadoff_chu",
    "ToFEstimator",
    "estimate_delay_samples",
    "estimate_delays_batch",
    "upsample_freq",
    "CQI_TABLE",
    "cqi_from_snr",
    "spectral_efficiency",
    "throughput_mbps",
    "UE",
    "UEState",
    "OuterLoopLinkAdaptation",
    "simulate_link",
    "ENodeB",
    "SchedulerResult",
    "EPC",
    "BearerState",
    "SessionRecord",
]

"""Uplink Sounding Reference Signal (SRS) synthesis and channel.

The SRS is a known PHY-layer signal the UE sends so the eNodeB can
sound the uplink channel; LTE builds it from Zadoff-Chu sequences,
whose constant amplitude and ideal cyclic autocorrelation are exactly
what a correlation-based ToF estimator wants.  We synthesize
frequency-domain SRS symbols on the 10 MHz LTE numerology the paper
uses (1024-point FFT, 15.36 MS/s) and push them through a delay +
multipath + AWGN channel, so the ToF estimator downstream faces the
same physics as the real system.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from math import gcd
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.backend import get_backend
from repro.channel.fspl import SPEED_OF_LIGHT
from repro.perf import perf


def zadoff_chu(root: int, length: int) -> np.ndarray:
    """Zadoff-Chu sequence of a given root and length.

    ``length`` should be coprime with ``root`` for the ideal constant
    -amplitude zero-autocorrelation property; LTE uses prime lengths.
    """
    if length <= 0:
        raise ValueError(f"length must be positive, got {length}")
    if not 0 < root < length:
        raise ValueError(f"root must satisfy 0 < root < length, got {root}")
    if gcd(root, length) != 1:
        raise ValueError(f"root {root} must be coprime with length {length}")
    n = np.arange(length)
    if length % 2 == 0:
        phase = -np.pi * root * n * n / length
    else:
        phase = -np.pi * root * n * (n + 1) / length
    return np.exp(1j * phase)


@dataclass(frozen=True)
class SRSConfig:
    """Numerology for SRS symbols.

    Defaults model the paper's setup: 10 MHz LTE carrier, 1024-point
    FFT sampled at 15.36 MS/s, SRS sounding 576 subcarriers (48 RBs).

    Attributes
    ----------
    n_fft:
        FFT size (number of OFDM samples per symbol).
    n_subcarriers:
        Number of subcarriers the SRS occupies (centered on DC).
    sample_rate_hz:
        Baseband sampling rate.
    zc_root:
        Zadoff-Chu root for the base sequence.
    """

    n_fft: int = 1024
    n_subcarriers: int = 576
    sample_rate_hz: float = 15.36e6
    zc_root: int = 25

    def __post_init__(self) -> None:
        if self.n_fft <= 0 or self.n_fft & (self.n_fft - 1):
            raise ValueError(f"n_fft must be a positive power of two, got {self.n_fft}")
        if not 0 < self.n_subcarriers <= self.n_fft:
            raise ValueError(
                f"n_subcarriers must be in (0, n_fft], got {self.n_subcarriers}"
            )
        if self.sample_rate_hz <= 0:
            raise ValueError(f"sample_rate_hz must be positive, got {self.sample_rate_hz}")

    @property
    def sample_period_s(self) -> float:
        return 1.0 / self.sample_rate_hz

    @property
    def meters_per_sample(self) -> float:
        """Real-world distance per time-domain sample (19.5 m at 10 MHz)."""
        return SPEED_OF_LIGHT / self.sample_rate_hz

    def subcarrier_bins(self) -> np.ndarray:
        """FFT bin indices the SRS occupies (centered on DC).

        Uses the standard FFT layout: positive frequencies in bins
        ``1 .. n/2``, negative frequencies at the top.  DC is skipped,
        as LTE leaves the DC subcarrier unused.
        """
        half = self.n_subcarriers // 2
        pos = np.arange(1, half + 1)
        neg = np.arange(self.n_fft - (self.n_subcarriers - half), self.n_fft)
        return np.concatenate([pos, neg])


def synthesize_srs_symbol(config: SRSConfig, root: int) -> np.ndarray:
    """Uncached SRS synthesis (ZC sequence + prime search + bin mapping).

    :func:`make_srs_symbol` memoizes this per ``(config, root)``; the
    per-symbol reference benchmark calls it directly to reproduce the
    seed cost of re-synthesizing the symbol for every reception.
    """
    # Largest prime <= n_subcarriers keeps the ZC property; repeat-pad
    # the tail as the LTE spec does for sequence length mismatches.
    length = _largest_prime_at_most(config.n_subcarriers)
    zc = zadoff_chu(root, length)
    seq = np.resize(zc, config.n_subcarriers)
    symbol = np.zeros(config.n_fft, dtype=complex)
    symbol[config.subcarrier_bins()] = seq
    return symbol


#: Memoized SRS symbols per (config, root).  The symbol depends only on
#: the numerology and the ZC root, so every SRS reception of a flight
#: (and the correlator's reference copy) shares one array.
_SRS_SYMBOL_CACHE: Dict[Tuple[SRSConfig, int], np.ndarray] = {}


def make_srs_symbol(config: SRSConfig, root: Optional[int] = None) -> np.ndarray:
    """Frequency-domain SRS symbol: a Zadoff-Chu sequence on the SRS bins.

    Returns a complex ``(n_fft,)`` vector; bins outside the sounding
    bandwidth are zero.  Memoized per ``(config, root)`` — the returned
    array is shared and marked read-only, so copy before mutating.
    Cache traffic is observable as ``srs.symbol_cache.hit/miss`` in
    :data:`repro.perf.perf`.
    """
    root = config.zc_root if root is None else root
    key = (config, root)
    symbol = _SRS_SYMBOL_CACHE.get(key)
    if symbol is not None:
        perf.count("srs.symbol_cache.hit")
        return symbol
    perf.count("srs.symbol_cache.miss")
    symbol = synthesize_srs_symbol(config, root)
    symbol.setflags(write=False)
    _SRS_SYMBOL_CACHE[key] = symbol
    return symbol


@lru_cache(maxsize=None)
def _largest_prime_at_most(n: int) -> int:
    """Largest prime <= n (n >= 2)."""
    if n < 2:
        raise ValueError(f"need n >= 2, got {n}")
    for candidate in range(n, 1, -1):
        if candidate < 4:
            return candidate
        if candidate % 2 == 0:
            continue
        is_prime = True
        for d in range(3, int(candidate**0.5) + 1, 2):
            if candidate % d == 0:
                is_prime = False
                break
        if is_prime:
            return candidate
    return 2


def _delay_phase(config: SRSConfig, delay_samples: float) -> np.ndarray:
    """Per-bin phase ramp implementing a (possibly fractional) delay.

    A time delay of ``d`` samples multiplies frequency bin ``f_k`` by
    ``exp(-j 2 pi f_k d / N)`` where ``f_k`` is the *signed* frequency
    of the bin (``fftfreq`` convention), which is the band-limited
    interpolation of the delay.
    """
    freqs = np.fft.fftfreq(config.n_fft) * config.n_fft
    return np.exp(-2j * np.pi * freqs * delay_samples / config.n_fft)


def apply_channel(
    symbol: np.ndarray,
    config: SRSConfig,
    delay_samples: float,
    snr_db: float,
    rng: np.random.Generator,
    multipath: Sequence[Tuple[float, float]] = (),
) -> np.ndarray:
    """Propagate a frequency-domain SRS symbol through the channel.

    Parameters
    ----------
    symbol:
        Transmitted frequency-domain SRS symbol, ``(n_fft,)``.
    config:
        Numerology (for the bin frequencies).
    delay_samples:
        Direct-path propagation delay in (fractional) samples.
    snr_db:
        Per-subcarrier SNR of the direct path at the receiver.
    rng:
        Noise generator.
    multipath:
        Extra taps as ``(excess_delay_samples, relative_power_db)``
        pairs; each adds a delayed, attenuated copy with random phase.
        NLOS links put most energy into positive-excess-delay taps,
        which is what biases ToF high in obstructed environments.

    Returns
    -------
    Received frequency-domain symbol ``(n_fft,)``.
    """
    symbol = np.asarray(symbol, dtype=complex)
    if symbol.shape != (config.n_fft,):
        raise ValueError(f"symbol must be ({config.n_fft},), got {symbol.shape}")
    rx = symbol * _delay_phase(config, delay_samples)
    for excess, power_db in multipath:
        if excess < 0:
            raise ValueError(f"multipath excess delay must be >= 0, got {excess}")
        amp = 10.0 ** (power_db / 20.0)
        phase = np.exp(2j * np.pi * rng.random())
        rx = rx + amp * phase * symbol * _delay_phase(config, delay_samples + excess)
    # AWGN scaled against the average active-subcarrier signal power.
    active = np.abs(symbol) > 0
    sig_power = float(np.mean(np.abs(symbol[active]) ** 2)) if active.any() else 1.0
    noise_power = sig_power / (10.0 ** (snr_db / 10.0))
    noise = rng.normal(0.0, np.sqrt(noise_power / 2.0), (config.n_fft, 2))
    rx = rx + noise[:, 0] + 1j * noise[:, 1]
    return rx


def _pow10(x: np.ndarray, div: float) -> np.ndarray:
    """Elementwise ``10.0 ** (x / div)`` via CPython float pow.

    NumPy's vectorized pow and CPython's libm pow disagree in the last
    ulp for a few percent of inputs; the per-symbol reference channel
    (:func:`apply_channel`) computes its noise sigma and tap amplitudes
    with Python-float pow, so the batch kernel must do the same for
    bit-exact parity.  Evaluated once per distinct value.
    """
    vals, inv = np.unique(np.asarray(x, dtype=float), return_inverse=True)
    table = np.array([10.0 ** (float(v) / div) for v in vals], dtype=float)
    return table[inv].reshape(np.shape(x))


def pack_taps(
    taps_per_symbol: Sequence[Sequence[Tuple[float, float]]],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Pack per-symbol multipath tap lists into masked arrays.

    Turns ``n`` variable-length ``[(excess_delay, power_db), ...]``
    tap lists into the left-packed ``(excess, power_db, mask)`` arrays
    :func:`apply_channel_batch` consumes, padding with inactive taps.
    """
    n = len(taps_per_symbol)
    width = max((len(t) for t in taps_per_symbol), default=0)
    excess = np.zeros((n, width), dtype=float)
    power = np.zeros((n, width), dtype=float)
    mask = np.zeros((n, width), dtype=bool)
    for i, taps in enumerate(taps_per_symbol):
        for j, (e, p) in enumerate(taps):
            excess[i, j] = e
            power[i, j] = p
            mask[i, j] = True
    return excess, power, mask


def apply_channel_batch(
    symbol: np.ndarray,
    config: SRSConfig,
    delays_samples: np.ndarray,
    snrs_db: np.ndarray,
    rng: np.random.Generator,
    tap_excess: Optional[np.ndarray] = None,
    tap_power_db: Optional[np.ndarray] = None,
    tap_mask: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Propagate many SRS symbols through per-symbol channels in one shot.

    Vectorized equivalent of calling :func:`apply_channel` once per
    symbol: row ``i`` of the result is the reception of ``symbol`` at
    direct-path delay ``delays_samples[i]``, SNR ``snrs_db[i]`` and the
    row-``i`` multipath tap set.  Tap sets are masked arrays — rows of
    ``(tap_excess, tap_power_db)`` with ``tap_mask`` marking the active
    taps, **left-packed** (active taps occupy the leading columns, in
    the order their random phases should be drawn).

    **RNG draw schedule (the reproducibility contract).**  Draws are
    consumed per symbol, in row (time) order; for each symbol, first
    the tap phases — one uniform per *active* tap, in tap-column
    order — then the ``(n_fft, 2)`` Gaussian noise block.  This is
    exactly the order a per-symbol :func:`apply_channel` loop consumes
    draws in, so for the same generator state the batch is
    bit-identical to the loop — and a symbol that is absent from the
    batch (e.g. dropped by fault injection before reaching the eNodeB)
    consumes no draws, leaving every later symbol's channel unchanged.

    Returns the received frequency-domain symbols, ``(n, n_fft)``.
    """
    symbol = np.asarray(symbol, dtype=complex)
    if symbol.shape != (config.n_fft,):
        raise ValueError(f"symbol must be ({config.n_fft},), got {symbol.shape}")
    delays = np.atleast_1d(np.asarray(delays_samples, dtype=float))
    snrs = np.atleast_1d(np.asarray(snrs_db, dtype=float))
    n = len(delays)
    if snrs.shape != (n,):
        raise ValueError(f"snrs_db must be ({n},), got {snrs.shape}")
    if tap_mask is None:
        tap_excess = np.zeros((n, 0))
        tap_power_db = np.zeros((n, 0))
        tap_mask = np.zeros((n, 0), dtype=bool)
    else:
        tap_excess = np.asarray(tap_excess, dtype=float)
        tap_power_db = np.asarray(tap_power_db, dtype=float)
        tap_mask = np.asarray(tap_mask, dtype=bool)
        if tap_excess.shape != (n, tap_mask.shape[1]) or tap_excess.shape != tap_mask.shape:
            raise ValueError("tap arrays must share one (n, n_taps) shape")
        if tap_power_db.shape != tap_mask.shape:
            raise ValueError("tap arrays must share one (n, n_taps) shape")
        if (tap_excess[tap_mask] < 0).any():
            raise ValueError("multipath excess delay must be >= 0")
        counts = tap_mask.sum(axis=1)
        if tap_mask.shape[1] and not np.array_equal(
            tap_mask, np.arange(tap_mask.shape[1])[None, :] < counts[:, None]
        ):
            raise ValueError("tap_mask must be left-packed (active taps first)")
    n_taps = tap_mask.shape[1]
    counts = tap_mask.sum(axis=1)
    n_fft = config.n_fft

    # -- RNG draws, per symbol in time order (see docstring contract) --
    # The noise normals are drawn straight into the output buffer (the
    # interleaved re/im float view of a complex row IS the (n_fft, 2)
    # block the per-symbol path draws) and scaled by sigma afterwards —
    # ``rng.normal(0, s, size)`` is bit-identical to
    # ``s * rng.standard_normal(size)`` and consumes the same stream.
    active = np.abs(symbol) > 0
    sig_power = float(np.mean(np.abs(symbol[active]) ** 2)) if active.any() else 1.0
    noise_power = sig_power / _pow10(snrs, 10.0)
    noise_sigma = np.sqrt(noise_power / 2.0)
    phase_u = np.zeros((n, n_taps), dtype=float)
    rx = np.empty((n, n_fft), dtype=complex)
    float_rows = rx.view(np.float64)
    for i in range(n):
        k = int(counts[i])
        if k:
            phase_u[i, :k] = rng.random(k)
        rng.standard_normal(out=float_rows[i])
    rx *= noise_sigma[:, None]

    # -- vectorized channel math (no draws below this line) ------------
    # Only the active subcarriers carry signal: inactive bins are zero
    # until the noise lands on them, and adding noise to a zero washes
    # out the +-0.0 sign the per-symbol path leaves there — so the
    # phase ramps (the bulk of the kernel) are evaluated on the active
    # bins only, each tap column only on the rows where that tap is
    # live, and the signal is added into the noise at the end over the
    # active bins alone (float addition commutes bit-for-bit).
    freqs = np.fft.fftfreq(n_fft) * n_fft
    bins = np.flatnonzero(active)
    f_act = freqs[bins]
    sym_act = symbol[bins]
    w = len(bins)
    # -2j*pi*f scalar-by-array products leave the imaginary component
    # exactly (-2.0*pi)*f, so the phase angle can be carried in a real
    # array and exponentiated via cos/sin, which numpy evaluates with
    # the same libm routines npy_cexp uses for a purely imaginary
    # argument (exp(+-0.0) == 1.0 exactly) — bit-identical to the
    # complex exp of the per-symbol path at a fraction of the cost.
    fa = (-2.0 * np.pi) * f_act
    # The SRS occupies symmetric +-f pairs (DC unused): cos is even and
    # sin is odd bit-for-bit, so the ramp on the negative-frequency
    # half is the conjugate mirror of the positive half.
    half = w // 2 if w % 2 == 0 and np.array_equal(
        f_act[w // 2 :], -f_act[: w // 2][::-1]
    ) else None

    def ramp_for(scaled_delays: np.ndarray) -> np.ndarray:
        """Phase ramp exp(-2j pi f d / N) over the active bins."""
        cols = half if half is not None else w
        theta = (fa[:cols][None, :] * scaled_delays[:, None]) / n_fft
        out = np.empty((len(scaled_delays), w), dtype=complex)
        front = out[:, :cols]
        get_backend().cis(theta, front)
        if half is not None:
            out[:, half:] = np.conj(front[:, ::-1])
        return out

    # symbol * ramp, in the per-symbol operand order (complex multiply
    # is not bitwise commutative under FMA contraction).
    work = ramp_for(delays)
    np.multiply(sym_act[None, :], work, out=work)
    for j in range(n_taps):
        live = np.flatnonzero(tap_mask[:, j])
        if not len(live):
            continue
        amp = _pow10(tap_power_db[live, j], 20.0)
        phase = np.exp(2j * np.pi * phase_u[live, j])
        contrib = (amp * phase)[:, None] * sym_act[None, :]
        contrib *= ramp_for(delays[live] + tap_excess[live, j])
        if len(live) == n:
            work += contrib
        else:
            work[live] += contrib
    # Scatter signal into the noise.  The sounded bins form a few
    # contiguous runs (two for the standard DC-straddling layout), so
    # the scatter is sliced adds rather than fancy indexing.
    if w:
        splits = np.flatnonzero(np.diff(bins) != 1) + 1
        start = 0
        for stop in list(splits) + [w]:
            lo, hi = bins[start], bins[stop - 1] + 1
            rx[:, lo:hi] += work[:, start:stop]
            start = stop
    return rx

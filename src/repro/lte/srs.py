"""Uplink Sounding Reference Signal (SRS) synthesis and channel.

The SRS is a known PHY-layer signal the UE sends so the eNodeB can
sound the uplink channel; LTE builds it from Zadoff-Chu sequences,
whose constant amplitude and ideal cyclic autocorrelation are exactly
what a correlation-based ToF estimator wants.  We synthesize
frequency-domain SRS symbols on the 10 MHz LTE numerology the paper
uses (1024-point FFT, 15.36 MS/s) and push them through a delay +
multipath + AWGN channel, so the ToF estimator downstream faces the
same physics as the real system.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gcd
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.channel.fspl import SPEED_OF_LIGHT


def zadoff_chu(root: int, length: int) -> np.ndarray:
    """Zadoff-Chu sequence of a given root and length.

    ``length`` should be coprime with ``root`` for the ideal constant
    -amplitude zero-autocorrelation property; LTE uses prime lengths.
    """
    if length <= 0:
        raise ValueError(f"length must be positive, got {length}")
    if not 0 < root < length:
        raise ValueError(f"root must satisfy 0 < root < length, got {root}")
    if gcd(root, length) != 1:
        raise ValueError(f"root {root} must be coprime with length {length}")
    n = np.arange(length)
    if length % 2 == 0:
        phase = -np.pi * root * n * n / length
    else:
        phase = -np.pi * root * n * (n + 1) / length
    return np.exp(1j * phase)


@dataclass(frozen=True)
class SRSConfig:
    """Numerology for SRS symbols.

    Defaults model the paper's setup: 10 MHz LTE carrier, 1024-point
    FFT sampled at 15.36 MS/s, SRS sounding 576 subcarriers (48 RBs).

    Attributes
    ----------
    n_fft:
        FFT size (number of OFDM samples per symbol).
    n_subcarriers:
        Number of subcarriers the SRS occupies (centered on DC).
    sample_rate_hz:
        Baseband sampling rate.
    zc_root:
        Zadoff-Chu root for the base sequence.
    """

    n_fft: int = 1024
    n_subcarriers: int = 576
    sample_rate_hz: float = 15.36e6
    zc_root: int = 25

    def __post_init__(self) -> None:
        if self.n_fft <= 0 or self.n_fft & (self.n_fft - 1):
            raise ValueError(f"n_fft must be a positive power of two, got {self.n_fft}")
        if not 0 < self.n_subcarriers <= self.n_fft:
            raise ValueError(
                f"n_subcarriers must be in (0, n_fft], got {self.n_subcarriers}"
            )
        if self.sample_rate_hz <= 0:
            raise ValueError(f"sample_rate_hz must be positive, got {self.sample_rate_hz}")

    @property
    def sample_period_s(self) -> float:
        return 1.0 / self.sample_rate_hz

    @property
    def meters_per_sample(self) -> float:
        """Real-world distance per time-domain sample (19.5 m at 10 MHz)."""
        return SPEED_OF_LIGHT / self.sample_rate_hz

    def subcarrier_bins(self) -> np.ndarray:
        """FFT bin indices the SRS occupies (centered on DC).

        Uses the standard FFT layout: positive frequencies in bins
        ``1 .. n/2``, negative frequencies at the top.  DC is skipped,
        as LTE leaves the DC subcarrier unused.
        """
        half = self.n_subcarriers // 2
        pos = np.arange(1, half + 1)
        neg = np.arange(self.n_fft - (self.n_subcarriers - half), self.n_fft)
        return np.concatenate([pos, neg])


def make_srs_symbol(config: SRSConfig, root: Optional[int] = None) -> np.ndarray:
    """Frequency-domain SRS symbol: a Zadoff-Chu sequence on the SRS bins.

    Returns a complex ``(n_fft,)`` vector; bins outside the sounding
    bandwidth are zero.
    """
    root = config.zc_root if root is None else root
    # Largest prime <= n_subcarriers keeps the ZC property; repeat-pad
    # the tail as the LTE spec does for sequence length mismatches.
    length = _largest_prime_at_most(config.n_subcarriers)
    zc = zadoff_chu(root, length)
    seq = np.resize(zc, config.n_subcarriers)
    symbol = np.zeros(config.n_fft, dtype=complex)
    symbol[config.subcarrier_bins()] = seq
    return symbol


def _largest_prime_at_most(n: int) -> int:
    """Largest prime <= n (n >= 2)."""
    if n < 2:
        raise ValueError(f"need n >= 2, got {n}")
    for candidate in range(n, 1, -1):
        if candidate < 4:
            return candidate
        if candidate % 2 == 0:
            continue
        is_prime = True
        for d in range(3, int(candidate**0.5) + 1, 2):
            if candidate % d == 0:
                is_prime = False
                break
        if is_prime:
            return candidate
    return 2


def _delay_phase(config: SRSConfig, delay_samples: float) -> np.ndarray:
    """Per-bin phase ramp implementing a (possibly fractional) delay.

    A time delay of ``d`` samples multiplies frequency bin ``f_k`` by
    ``exp(-j 2 pi f_k d / N)`` where ``f_k`` is the *signed* frequency
    of the bin (``fftfreq`` convention), which is the band-limited
    interpolation of the delay.
    """
    freqs = np.fft.fftfreq(config.n_fft) * config.n_fft
    return np.exp(-2j * np.pi * freqs * delay_samples / config.n_fft)


def apply_channel(
    symbol: np.ndarray,
    config: SRSConfig,
    delay_samples: float,
    snr_db: float,
    rng: np.random.Generator,
    multipath: Sequence[Tuple[float, float]] = (),
) -> np.ndarray:
    """Propagate a frequency-domain SRS symbol through the channel.

    Parameters
    ----------
    symbol:
        Transmitted frequency-domain SRS symbol, ``(n_fft,)``.
    config:
        Numerology (for the bin frequencies).
    delay_samples:
        Direct-path propagation delay in (fractional) samples.
    snr_db:
        Per-subcarrier SNR of the direct path at the receiver.
    rng:
        Noise generator.
    multipath:
        Extra taps as ``(excess_delay_samples, relative_power_db)``
        pairs; each adds a delayed, attenuated copy with random phase.
        NLOS links put most energy into positive-excess-delay taps,
        which is what biases ToF high in obstructed environments.

    Returns
    -------
    Received frequency-domain symbol ``(n_fft,)``.
    """
    symbol = np.asarray(symbol, dtype=complex)
    if symbol.shape != (config.n_fft,):
        raise ValueError(f"symbol must be ({config.n_fft},), got {symbol.shape}")
    rx = symbol * _delay_phase(config, delay_samples)
    for excess, power_db in multipath:
        if excess < 0:
            raise ValueError(f"multipath excess delay must be >= 0, got {excess}")
        amp = 10.0 ** (power_db / 20.0)
        phase = np.exp(2j * np.pi * rng.random())
        rx = rx + amp * phase * symbol * _delay_phase(config, delay_samples + excess)
    # AWGN scaled against the average active-subcarrier signal power.
    active = np.abs(symbol) > 0
    sig_power = float(np.mean(np.abs(symbol[active]) ** 2)) if active.any() else 1.0
    noise_power = sig_power / (10.0 ** (snr_db / 10.0))
    noise = rng.normal(0.0, np.sqrt(noise_power / 2.0), (config.n_fft, 2))
    rx = rx + noise[:, 0] + 1j * noise[:, 1]
    return rx

"""SNR -> CQI -> MCS -> throughput mapping.

The paper reports LTE throughput; our oracle is SNR maps.  The bridge
is the standard LTE link adaptation pipeline: the UE reports a CQI
index chosen so the corresponding MCS would decode at ~10% BLER, and
the eNodeB schedules at the CQI's spectral efficiency.  We use the
36.213 Table 7.2.3-1 efficiencies with the commonly used SNR switching
thresholds, which saturates a 10 MHz carrier near 38 Mb/s — the same
scale as the paper's Fig. 1 (peak ~30 Mb/s average).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

#: (min SNR dB, CQI index, spectral efficiency bits/s/Hz) per 36.213
#: Table 7.2.3-1 with conventional AWGN switching thresholds.
CQI_TABLE: List[Tuple[float, int, float]] = [
    (-6.7, 1, 0.1523),
    (-4.7, 2, 0.2344),
    (-2.3, 3, 0.3770),
    (0.2, 4, 0.6016),
    (2.4, 5, 0.8770),
    (4.3, 6, 1.1758),
    (5.9, 7, 1.4766),
    (8.1, 8, 1.9141),
    (10.3, 9, 2.4063),
    (11.7, 10, 2.7305),
    (14.1, 11, 3.3223),
    (16.3, 12, 3.9023),
    (18.7, 13, 4.5234),
    (21.0, 14, 5.1152),
    (22.7, 15, 5.5547),
]

_THRESHOLDS = np.array([row[0] for row in CQI_TABLE])
_EFFICIENCIES = np.array([row[2] for row in CQI_TABLE])

#: Bandwidth of one LTE physical resource block.
PRB_BANDWIDTH_HZ = 180e3

#: PRBs in a 10 MHz LTE carrier.
PRB_PER_10MHZ = 50

#: Fraction of resource elements consumed by reference signals,
#: control channels and sync — not available for user data.
DEFAULT_OVERHEAD = 0.25


def cqi_from_snr(snr_db):
    """CQI index (0 = out of range, 1-15 otherwise) for SNR in dB."""
    snr = np.asarray(snr_db, dtype=float)
    idx = np.searchsorted(_THRESHOLDS, snr, side="right")
    if np.isscalar(snr_db):
        return int(idx)
    return idx.astype(int)


def spectral_efficiency(snr_db):
    """Scheduled spectral efficiency in bits/s/Hz (0 below CQI 1)."""
    snr = np.asarray(snr_db, dtype=float)
    idx = np.searchsorted(_THRESHOLDS, snr, side="right")
    eff = np.where(idx > 0, _EFFICIENCIES[np.maximum(idx - 1, 0)], 0.0)
    if np.isscalar(snr_db):
        return float(eff)
    return eff


def throughput_mbps(
    snr_db,
    n_prb: int = PRB_PER_10MHZ,
    overhead: float = DEFAULT_OVERHEAD,
):
    """Achievable MAC throughput in Mb/s when scheduled on ``n_prb`` PRBs.

    This is the *full-cell* per-UE throughput: what one UE gets when it
    is granted all PRBs, which is how the paper reports "average
    throughput per UE".  Cell sharing among concurrent UEs is handled
    by the eNodeB scheduler (:mod:`repro.lte.enodeb`).
    """
    if n_prb <= 0:
        raise ValueError(f"n_prb must be positive, got {n_prb}")
    if not 0.0 <= overhead < 1.0:
        raise ValueError(f"overhead must be in [0, 1), got {overhead}")
    eff = spectral_efficiency(snr_db)
    rate = eff * n_prb * PRB_BANDWIDTH_HZ * (1.0 - overhead) / 1e6
    if np.isscalar(snr_db):
        return float(rate)
    return rate

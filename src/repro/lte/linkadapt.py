"""Outer-loop link adaptation (OLLA).

Real eNodeBs do not trust reported CQI blindly: fading, feedback delay
and UE-vendor calibration make raw CQI optimistic or pessimistic.  The
outer loop nudges a per-UE SNR offset after every HARQ ACK/NACK so the
realized block error rate converges to a target (canonically 10%).
This matters to SkyRAN because the PHY's *effective* throughput during
flights — when the channel whips around (Fig. 7) — is what the epoch
trigger watches.

The implementation is the textbook additive-increase scheme: on NACK
the offset drops by ``step_db``; on ACK it rises by
``step_db * target / (1 - target)``, which makes the equilibrium NACK
rate equal the target.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.lte.throughput import cqi_from_snr, throughput_mbps


@dataclass
class OuterLoopLinkAdaptation:
    """Per-UE SNR-offset controller targeting a BLER.

    Attributes
    ----------
    target_bler:
        The block-error-rate setpoint (LTE convention: 0.1).
    step_db:
        Offset decrement on a NACK.
    min_offset_db / max_offset_db:
        Clamp on the accumulated offset.
    """

    target_bler: float = 0.1
    step_db: float = 0.5
    min_offset_db: float = -10.0
    max_offset_db: float = 10.0
    _offsets: Dict[int, float] = field(default_factory=dict)
    _acks: Dict[int, int] = field(default_factory=dict)
    _nacks: Dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 < self.target_bler < 1.0:
            raise ValueError(f"target_bler must be in (0, 1), got {self.target_bler}")
        if self.step_db <= 0:
            raise ValueError(f"step_db must be positive, got {self.step_db}")

    def offset_db(self, ue_id: int) -> float:
        """Current SNR correction for a UE (0 until feedback arrives)."""
        return self._offsets.get(ue_id, 0.0)

    def effective_snr_db(self, ue_id: int, reported_snr_db: float) -> float:
        """Reported SNR plus the learned correction."""
        return reported_snr_db + self.offset_db(ue_id)

    def forget(self, ue_id: int) -> None:
        """Drop all learned state for a UE (called on detach).

        Without this, a UE id that detaches and later re-attaches —
        possibly a different physical device — would inherit the old
        device's offset and ACK/NACK history instead of starting from
        a zero offset.
        """
        self._offsets.pop(ue_id, None)
        self._acks.pop(ue_id, None)
        self._nacks.pop(ue_id, None)

    def report(self, ue_id: int, ack: bool) -> float:
        """Fold one HARQ outcome in; returns the new offset."""
        up = self.step_db * self.target_bler / (1.0 - self.target_bler)
        offset = self._offsets.get(ue_id, 0.0)
        if ack:
            offset += up
            self._acks[ue_id] = self._acks.get(ue_id, 0) + 1
        else:
            offset -= self.step_db
            self._nacks[ue_id] = self._nacks.get(ue_id, 0) + 1
        offset = float(np.clip(offset, self.min_offset_db, self.max_offset_db))
        self._offsets[ue_id] = offset
        return offset

    def realized_bler(self, ue_id: int) -> Optional[float]:
        """Observed BLER so far for a UE (None before any feedback)."""
        acks = self._acks.get(ue_id, 0)
        nacks = self._nacks.get(ue_id, 0)
        total = acks + nacks
        if total == 0:
            return None
        return nacks / total


@dataclass
class OLLABank:
    """Vectorized OLLA state for a flat UE population.

    The struct-of-array counterpart of
    :class:`OuterLoopLinkAdaptation`: offsets and ACK/NACK tallies live
    in flat arrays indexed by population position, and one
    :meth:`report_batch` call folds a whole population's (or shard's)
    HARQ outcomes in at once.  The update is elementwise —
    ``offset + up`` on ACK, ``offset - step_db`` on NACK, then the same
    ``np.clip`` — so it is bit-identical to driving the scalar
    controller once per UE, and trivially shardable (any partition of
    the population folds to the same state).
    """

    n_ues: int
    target_bler: float = 0.1
    step_db: float = 0.5
    min_offset_db: float = -10.0
    max_offset_db: float = 10.0
    offsets_db: np.ndarray = field(init=False)
    acks: np.ndarray = field(init=False)
    nacks: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        if self.n_ues < 1:
            raise ValueError(f"n_ues must be >= 1, got {self.n_ues}")
        if not 0.0 < self.target_bler < 1.0:
            raise ValueError(f"target_bler must be in (0, 1), got {self.target_bler}")
        if self.step_db <= 0:
            raise ValueError(f"step_db must be positive, got {self.step_db}")
        self.offsets_db = np.zeros(self.n_ues, dtype=float)
        self.acks = np.zeros(self.n_ues, dtype=np.int64)
        self.nacks = np.zeros(self.n_ues, dtype=np.int64)

    def effective_snr_db(self, reported_snr_db: np.ndarray) -> np.ndarray:
        """Reported SNRs plus the learned per-UE corrections."""
        return np.asarray(reported_snr_db, dtype=float) + self.offsets_db

    def report_batch(self, ack: np.ndarray, sel: Optional[np.ndarray] = None) -> None:
        """Fold one HARQ outcome per UE (or per selected UE) in.

        ``sel`` restricts the update to a subset of population indices
        (UEs that were actually scheduled this round, or one shard);
        ``ack`` then aligns with ``sel``.
        """
        a = np.asarray(ack, dtype=bool)
        up = self.step_db * self.target_bler / (1.0 - self.target_bler)
        if sel is None:
            off = self.offsets_db
            self.offsets_db = np.clip(
                np.where(a, off + up, off - self.step_db),
                self.min_offset_db,
                self.max_offset_db,
            )
            self.acks += a
            self.nacks += ~a
        else:
            off = self.offsets_db[sel]
            self.offsets_db[sel] = np.clip(
                np.where(a, off + up, off - self.step_db),
                self.min_offset_db,
                self.max_offset_db,
            )
            self.acks[sel] += a
            self.nacks[sel] += ~a

    def realized_bler(self) -> np.ndarray:
        """Observed per-UE BLER so far (NaN before any feedback)."""
        total = self.acks + self.nacks
        with np.errstate(invalid="ignore"):
            return np.where(total > 0, self.nacks / np.maximum(total, 1), np.nan)


def simulate_link(
    olla: OuterLoopLinkAdaptation,
    ue_id: int,
    mean_snr_db: float,
    n_tti: int,
    rng: np.random.Generator,
    fading_std_db: float = 3.0,
    decode_margin_db: float = 1.0,
) -> Dict[str, float]:
    """Drive a fading link through the outer loop for ``n_tti`` TTIs.

    Per TTI: the UE reports a (stale, noisy) SNR; the eNodeB schedules
    at the OLLA-corrected CQI; the transport block decodes iff the
    *actual* SNR covers the scheduled CQI's threshold minus a margin.
    Returns realized BLER and mean goodput.
    """
    if n_tti < 1:
        raise ValueError(f"n_tti must be >= 1, got {n_tti}")
    from repro.lte.throughput import _THRESHOLDS  # threshold table

    goodput = 0.0
    for _ in range(n_tti):
        actual = mean_snr_db + rng.normal(0.0, fading_std_db)
        reported = mean_snr_db + rng.normal(0.0, fading_std_db)  # stale sample
        scheduled_snr = olla.effective_snr_db(ue_id, reported)
        cqi = cqi_from_snr(scheduled_snr)
        if cqi == 0:
            continue  # nothing scheduled this TTI
        needed = _THRESHOLDS[cqi - 1] - decode_margin_db
        ack = actual >= needed
        olla.report(ue_id, ack)
        if ack:
            goodput += throughput_mbps(scheduled_snr)
    return {
        "bler": olla.realized_bler(ue_id) or 0.0,
        "mean_goodput_mbps": goodput / n_tti,
        "final_offset_db": olla.offset_db(ue_id),
    }

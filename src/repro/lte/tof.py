"""Time-of-flight estimation from SRS symbols (paper Eqs. 1-3).

The estimator is a faithful implementation of Section 3.2.2:

1. Cross-correlate the received and known SRS symbols in the frequency
   domain: ``y = ifft(s * conj(h))`` (Eq. 1).  The magnitude peak of
   ``y`` sits at the delay in time-domain samples.
2. To beat the 19.5 m per-sample resolution of a 10 MHz LTE carrier,
   zero-pad the middle of the frequency-domain product by a factor
   ``K`` before the IFFT (Eq. 2), which interpolates the correlation
   by ``K``x.
3. The delay is ``argmax(|y|) / K`` samples (Eq. 3).  Larger ``K``
   costs correlation-peak SNR (the IFFT magnitude scales as 1/(KN)
   while noise does not), which is why the paper settles on K = 4.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.lte.srs import SRSConfig


def upsample_freq(x: np.ndarray, factor: int) -> np.ndarray:
    """Zero-pad the middle of a frequency-domain vector (paper Eq. 2).

    With the standard FFT layout (positive frequencies first, negative
    at the top), inserting ``N (K - 1)`` zeros between the two halves
    interpolates the time-domain signal by ``K``.
    """
    if factor < 1:
        raise ValueError(f"factor must be >= 1, got {factor}")
    x = np.asarray(x)
    if factor == 1:
        return x.copy()
    n = len(x)
    half = n // 2
    zeros = np.zeros(n * (factor - 1), dtype=x.dtype)
    return np.concatenate([x[:half], zeros, x[half:]])


def correlation_quality(mag: np.ndarray, peak: int) -> float:
    """Peak-to-background ratio of a correlation magnitude profile.

    The ratio of the peak magnitude to the median magnitude away from
    the peak.  A clean SRS reception correlates to a sharp spike (high
    ratio); a burst buried in noise or shredded by interference yields
    a flat profile (ratio near 1).  Degraded-mode localization uses
    this to discard receptions whose "delay" is really an argmax over
    noise.
    """
    background = float(np.median(mag))
    if background <= 1e-30:
        return float("inf")
    return float(mag[peak] / background)


def estimate_delay_samples(
    received: np.ndarray,
    known: np.ndarray,
    upsampling: int = 4,
    refine: bool = True,
) -> float:
    """Delay of ``received`` w.r.t. ``known``, in (fractional) samples.

    Implements Eqs. 1-3.  Delays beyond half the symbol wrap negative
    (circular correlation); SkyRAN's operating ranges (< 1 km, i.e.
    < ~52 samples) are far from the wrap point.

    With ``refine`` (default), the integer-bin argmax of Eq. 3 is
    followed by a three-point parabolic fit over the peak's
    neighbours — the standard sub-bin refinement every practical ToF
    correlator applies.  Without it, ranges quantize to
    ``meters_per_sample / K`` (4.88 m at 10 MHz, K=4), which is too
    coarse for the multilateration to separate the range curvature
    from the constant offset over a short 20 m flight.  Set
    ``refine=False`` to reproduce the raw-argmax ablation.
    """
    delay, _ = estimate_delay_and_quality(received, known, upsampling, refine)
    return delay


def estimate_delay_and_quality(
    received: np.ndarray,
    known: np.ndarray,
    upsampling: int = 4,
    refine: bool = True,
) -> tuple:
    """Eq. 1-3 delay plus the correlation peak quality.

    Same estimator as :func:`estimate_delay_samples`, additionally
    returning :func:`correlation_quality` of the profile so callers can
    reject garbage receptions without re-correlating.
    """
    received = np.asarray(received, dtype=complex)
    known = np.asarray(known, dtype=complex)
    if received.shape != known.shape:
        raise ValueError(
            f"received {received.shape} and known {known.shape} must match"
        )
    product = received * np.conj(known)  # Eq. 1
    padded = upsample_freq(product, upsampling)  # Eq. 2
    mag = np.abs(np.fft.ifft(padded))
    total = len(mag)
    peak = int(np.argmax(mag))  # Eq. 3
    delta = 0.0
    if refine:
        # Parabolic vertex through (peak-1, peak, peak+1), circular.
        y0 = mag[(peak - 1) % total]
        y1 = mag[peak]
        y2 = mag[(peak + 1) % total]
        denom = y0 - 2.0 * y1 + y2
        if abs(denom) > 1e-12:
            delta = float(np.clip(0.5 * (y0 - y2) / denom, -0.5, 0.5))
    pos = peak + delta
    if pos > total / 2:
        pos -= total
    return pos / upsampling, correlation_quality(mag, peak)


@dataclass(frozen=True)
class ToFEstimator:
    """SRS-based ranging front end.

    Wraps :func:`estimate_delay_samples` with the numerology needed to
    convert sample delays into meters.

    Attributes
    ----------
    config:
        SRS numerology (sample rate sets meters-per-sample).
    upsampling:
        The ``K`` of Eqs. 2-3 (paper default 4).
    """

    config: SRSConfig
    upsampling: int = 4

    def __post_init__(self) -> None:
        if self.upsampling < 1:
            raise ValueError(f"upsampling must be >= 1, got {self.upsampling}")

    @property
    def range_resolution_m(self) -> float:
        """Smallest representable range step: meters/sample divided by K."""
        return self.config.meters_per_sample / self.upsampling

    def delay_samples(self, received: np.ndarray, known: np.ndarray) -> float:
        """Estimated delay in samples."""
        return estimate_delay_samples(received, known, self.upsampling)

    def range_m(self, received: np.ndarray, known: np.ndarray) -> float:
        """Estimated one-way range in meters.

        Includes whatever constant processing offset the transmit
        chain added; the multilateration solver estimates and removes
        that offset jointly with the position (Section 3.2.3).
        """
        return self.delay_samples(received, known) * self.config.meters_per_sample

    def range_and_quality_m(self, received: np.ndarray, known: np.ndarray) -> tuple:
        """``(range_m, quality)``: the range plus the correlation quality.

        The quality (peak-to-background ratio of the correlation
        profile) lets degraded-mode consumers discard receptions that
        are noise-only — e.g. SRS bursts shredded by interference in a
        chaos run — before they poison the multilateration.
        """
        delay, quality = estimate_delay_and_quality(received, known, self.upsampling)
        return delay * self.config.meters_per_sample, quality

"""Time-of-flight estimation from SRS symbols (paper Eqs. 1-3).

The estimator is a faithful implementation of Section 3.2.2:

1. Cross-correlate the received and known SRS symbols in the frequency
   domain: ``y = ifft(s * conj(h))`` (Eq. 1).  The magnitude peak of
   ``y`` sits at the delay in time-domain samples.
2. To beat the 19.5 m per-sample resolution of a 10 MHz LTE carrier,
   zero-pad the middle of the frequency-domain product by a factor
   ``K`` before the IFFT (Eq. 2), which interpolates the correlation
   by ``K``x.
3. The delay is ``argmax(|y|) / K`` samples (Eq. 3).  Larger ``K``
   costs correlation-peak SNR (the IFFT magnitude scales as 1/(KN)
   while noise does not), which is why the paper settles on K = 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.lte.srs import SRSConfig


def upsample_freq(x: np.ndarray, factor: int) -> np.ndarray:
    """Zero-pad the middle of a frequency-domain vector (paper Eq. 2).

    With the standard FFT layout (positive frequencies first, negative
    at the top), inserting ``N (K - 1)`` zeros between the two halves
    interpolates the time-domain signal by ``K``.  Accepts a batch of
    rows (``(n, m)``) and pads every row along the last axis.
    """
    if factor < 1:
        raise ValueError(f"factor must be >= 1, got {factor}")
    x = np.asarray(x)
    if factor == 1:
        return x.copy()
    n = x.shape[-1]
    half = n // 2
    pad = n * (factor - 1)
    out = np.empty(x.shape[:-1] + (n * factor,), dtype=x.dtype)
    out[..., :half] = x[..., :half]
    out[..., half : half + pad] = 0
    out[..., half + pad :] = x[..., half:]
    return out


def _background_guard(total: int, guard: Optional[int]) -> int:
    """Half-width of the excluded window around the correlation peak."""
    if guard is None:
        # Wide enough to cover the upsampled main lobe (width
        # ~ K * n_fft / n_active bins) at every practical numerology,
        # narrow enough to keep the background median representative.
        guard = max(1, total // 128)
    if guard < 0:
        raise ValueError(f"guard must be >= 0, got {guard}")
    return int(guard)


def correlation_quality(
    mag: np.ndarray, peak: int, guard: Optional[int] = None
) -> float:
    """Peak-to-background ratio of a correlation magnitude profile.

    The ratio of the peak magnitude to the median magnitude away from
    the peak: a circular guard window of ``guard`` bins on each side of
    the (upsampled) peak is excluded from the median, so the peak's own
    main lobe cannot inflate the background estimate (``guard``
    defaults to ``len(mag) // 128``, at least 1).  A clean SRS
    reception correlates to a sharp spike (high ratio); a burst buried
    in noise or shredded by interference yields a flat profile (ratio
    near 1).  Degraded-mode localization uses this to discard
    receptions whose "delay" is really an argmax over noise.
    """
    mag = np.asarray(mag)
    total = len(mag)
    guard = _background_guard(total, guard)
    if 2 * guard + 1 >= total:
        return float("inf")
    kept = mag[(peak + np.arange(guard + 1, total - guard)) % total]
    background = float(np.median(kept))
    if background <= 1e-30:
        return float("inf")
    return float(mag[peak] / background)


def correlation_quality_batch(
    mag: np.ndarray, peaks: np.ndarray, guard: Optional[int] = None
) -> np.ndarray:
    """Row-wise :func:`correlation_quality` of ``(n, total)`` profiles."""
    mag = np.asarray(mag)
    peaks = np.asarray(peaks, dtype=int)
    n, total = mag.shape
    guard = _background_guard(total, guard)
    if 2 * guard + 1 >= total or n == 0:
        return np.full(n, np.inf)
    # Gather each row's background span — the same circular
    # [peak + guard + 1, peak + total - guard) window the scalar path
    # takes its median over, so the two agree bit-for-bit.
    idx = (peaks[:, None] + np.arange(guard + 1, total - guard)[None, :]) % total
    background = np.median(mag[np.arange(n)[:, None], idx], axis=-1)
    peak_mag = mag[np.arange(n), peaks]
    out = np.empty(n, dtype=float)
    tiny = background <= 1e-30
    out[tiny] = np.inf
    out[~tiny] = peak_mag[~tiny] / background[~tiny]
    return out


def estimate_delay_samples(
    received: np.ndarray,
    known: np.ndarray,
    upsampling: int = 4,
    refine: bool = True,
) -> float:
    """Delay of ``received`` w.r.t. ``known``, in (fractional) samples.

    Implements Eqs. 1-3.  Delays beyond half the symbol wrap negative
    (circular correlation); SkyRAN's operating ranges (< 1 km, i.e.
    < ~52 samples) are far from the wrap point.

    With ``refine`` (default), the integer-bin argmax of Eq. 3 is
    followed by a three-point parabolic fit over the peak's
    neighbours — the standard sub-bin refinement every practical ToF
    correlator applies.  Without it, ranges quantize to
    ``meters_per_sample / K`` (4.88 m at 10 MHz, K=4), which is too
    coarse for the multilateration to separate the range curvature
    from the constant offset over a short 20 m flight.  Set
    ``refine=False`` to reproduce the raw-argmax ablation.
    """
    delay, _ = estimate_delay_and_quality(received, known, upsampling, refine)
    return delay


def estimate_delay_and_quality(
    received: np.ndarray,
    known: np.ndarray,
    upsampling: int = 4,
    refine: bool = True,
) -> tuple:
    """Eq. 1-3 delay plus the correlation peak quality.

    Same estimator as :func:`estimate_delay_samples`, additionally
    returning :func:`correlation_quality` of the profile so callers can
    reject garbage receptions without re-correlating.
    """
    received = np.asarray(received, dtype=complex)
    known = np.asarray(known, dtype=complex)
    if received.shape != known.shape:
        raise ValueError(
            f"received {received.shape} and known {known.shape} must match"
        )
    product = received * np.conj(known)  # Eq. 1
    padded = upsample_freq(product, upsampling)  # Eq. 2
    mag = np.abs(np.fft.ifft(padded))
    total = len(mag)
    peak = int(np.argmax(mag))  # Eq. 3
    delta = 0.0
    if refine:
        # Parabolic vertex through (peak-1, peak, peak+1), circular.
        y0 = mag[(peak - 1) % total]
        y1 = mag[peak]
        y2 = mag[(peak + 1) % total]
        denom = y0 - 2.0 * y1 + y2
        if abs(denom) > 1e-12:
            delta = float(np.clip(0.5 * (y0 - y2) / denom, -0.5, 0.5))
    pos = peak + delta
    if pos > total / 2:
        pos -= total
    return pos / upsampling, correlation_quality(mag, peak)


def estimate_delays_batch(
    received_2d: np.ndarray,
    known: np.ndarray,
    upsampling: int = 4,
    refine: bool = True,
    quality: bool = True,
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Eq. 1-3 delays (and qualities) for a whole batch of receptions.

    Vectorized equivalent of calling
    :func:`estimate_delay_and_quality` on every row of ``received_2d``
    (``(n, n_fft)``) against the same ``known`` symbol: one row-wise
    frequency-domain product (Eq. 1), one middle zero-pad (Eq. 2), one
    batched IFFT, then vectorized argmax + three-point parabolic
    refinement (Eq. 3) and peak-to-background quality.  Bit-identical
    to the per-symbol loop.

    Returns ``(delays_samples, qualities)``; ``qualities`` is None when
    ``quality=False`` (skipping the background medians, the most
    expensive part, for callers that do not gate on quality).
    """
    received = np.asarray(received_2d, dtype=complex)
    known = np.asarray(known, dtype=complex)
    if received.ndim != 2 or known.ndim != 1 or received.shape[1] != known.shape[0]:
        raise ValueError(
            f"received must be (n, {known.shape[0] if known.ndim == 1 else '?'}), "
            f"got {received.shape} against known {known.shape}"
        )
    n = received.shape[0]
    if n == 0:
        empty = np.zeros(0)
        return empty, (empty.copy() if quality else None)
    if upsampling < 1:
        raise ValueError(f"factor must be >= 1, got {upsampling}")
    # Eqs. 1-2 fused: the row-wise frequency-domain product is written
    # straight into the two halves of the middle-zero-padded buffer,
    # skipping the intermediate product array (same elementwise
    # multiplies, so still bit-identical to the per-symbol path).
    known_conj = np.conj(known)
    m = known.shape[0]
    half = m // 2
    pad = m * (upsampling - 1)
    padded = np.empty((n, m * upsampling), dtype=complex)
    np.multiply(received[:, :half], known_conj[None, :half], out=padded[:, :half])
    padded[:, half : half + pad] = 0
    np.multiply(received[:, half:], known_conj[None, half:], out=padded[:, half + pad :])
    mag = np.abs(np.fft.ifft(padded, axis=-1))
    total = mag.shape[1]
    rows = np.arange(n)
    peaks = np.argmax(mag, axis=-1)  # Eq. 3
    delta = np.zeros(n)
    if refine:
        # Parabolic vertex through (peak-1, peak, peak+1), circular.
        y0 = mag[rows, (peaks - 1) % total]
        y1 = mag[rows, peaks]
        y2 = mag[rows, (peaks + 1) % total]
        denom = y0 - 2.0 * y1 + y2
        ok = np.abs(denom) > 1e-12
        delta[ok] = np.clip(0.5 * (y0[ok] - y2[ok]) / denom[ok], -0.5, 0.5)
    pos = peaks + delta
    pos = np.where(pos > total / 2, pos - total, pos)
    qualities = correlation_quality_batch(mag, peaks) if quality else None
    return pos / upsampling, qualities


@dataclass(frozen=True)
class ToFEstimator:
    """SRS-based ranging front end.

    Wraps :func:`estimate_delay_samples` with the numerology needed to
    convert sample delays into meters.

    Attributes
    ----------
    config:
        SRS numerology (sample rate sets meters-per-sample).
    upsampling:
        The ``K`` of Eqs. 2-3 (paper default 4).
    """

    config: SRSConfig
    upsampling: int = 4

    def __post_init__(self) -> None:
        if self.upsampling < 1:
            raise ValueError(f"upsampling must be >= 1, got {self.upsampling}")

    @property
    def range_resolution_m(self) -> float:
        """Smallest representable range step: meters/sample divided by K."""
        return self.config.meters_per_sample / self.upsampling

    def delay_samples(self, received: np.ndarray, known: np.ndarray) -> float:
        """Estimated delay in samples."""
        return estimate_delay_samples(received, known, self.upsampling)

    def range_m(self, received: np.ndarray, known: np.ndarray) -> float:
        """Estimated one-way range in meters.

        Includes whatever constant processing offset the transmit
        chain added; the multilateration solver estimates and removes
        that offset jointly with the position (Section 3.2.3).
        """
        return self.delay_samples(received, known) * self.config.meters_per_sample

    def range_and_quality_m(self, received: np.ndarray, known: np.ndarray) -> tuple:
        """``(range_m, quality)``: the range plus the correlation quality.

        The quality (peak-to-background ratio of the correlation
        profile) lets degraded-mode consumers discard receptions that
        are noise-only — e.g. SRS bursts shredded by interference in a
        chaos run — before they poison the multilateration.
        """
        delay, quality = estimate_delay_and_quality(received, known, self.upsampling)
        return delay * self.config.meters_per_sample, quality

    def ranges_batch_m(
        self, received_2d: np.ndarray, known: np.ndarray, quality: bool = True
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """``(ranges_m, qualities)`` for a whole batch of receptions.

        The batched counterpart of :meth:`range_and_quality_m` (one
        vectorized Eq. 1-3 pass over ``(n, n_fft)`` rows); pass
        ``quality=False`` to skip the background medians when no
        quality gate will consume them.
        """
        delays, qualities = estimate_delays_batch(
            received_2d, known, self.upsampling, quality=quality
        )
        return delays * self.config.meters_per_sample, qualities

"""User equipment model.

A :class:`UE` is a ground device attached to the SkyRAN eNodeB.  It
carries an identity (IMSI), a true position the simulator knows (and
the UAV must *estimate*), and an RRC-ish state machine driven by the
EPC attach procedure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

import numpy as np

from repro.geo.points import Point3D

#: Default UE antenna height above local ground, meters.
UE_ANTENNA_HEIGHT_M = 1.5


class UEState(Enum):
    """RRC/EMM composite state of a UE, simplified."""

    DETACHED = "detached"
    ATTACHING = "attaching"
    CONNECTED = "connected"
    IDLE = "idle"


@dataclass
class UE:
    """A ground UE.

    Attributes
    ----------
    ue_id:
        Small integer identity used throughout the simulator.
    imsi:
        Subscriber identity (used by the EPC attach procedure).
    position:
        True position in the ENU frame (z = antenna height above
        datum, i.e. local ground height + ~1.5 m).
    state:
        Attach state; measurement flights only see CONNECTED UEs.
    srs_root:
        Zadoff-Chu root assigned to this UE's SRS so concurrent UEs
        are separable at the eNodeB.
    """

    ue_id: int
    imsi: str = ""
    position: Point3D = field(default_factory=lambda: Point3D(0.0, 0.0, UE_ANTENNA_HEIGHT_M))
    state: UEState = UEState.DETACHED
    srs_root: int = 25

    def __post_init__(self) -> None:
        if not self.imsi:
            self.imsi = f"00101{self.ue_id:010d}"

    @property
    def xyz(self) -> np.ndarray:
        """Position as a ``(3,)`` array."""
        return self.position.as_array()

    def move_to(self, x: float, y: float, z: Optional[float] = None) -> None:
        """Teleport the UE (mobility models call this per step)."""
        self.position = Point3D(x, y, self.position.z if z is None else z)

    def is_served(self) -> bool:
        return self.state in (UEState.CONNECTED, UEState.IDLE)

"""Minimal Evolved Packet Core.

The SkyRAN payload runs a full software EPC on a second SBC (paper
Section 4.1); its role in the system is UE authentication/registration,
bearer management and session accounting.  This module provides those
functions at the fidelity the RAN simulation needs: a subscriber
database, an attach procedure that moves UEs through the EMM states,
default-bearer setup, and per-session byte counters the throughput
harness feeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

from repro.lte.ue import UE, UEState


class BearerState(Enum):
    """EPS bearer lifecycle."""

    PENDING = "pending"
    ACTIVE = "active"
    RELEASED = "released"


@dataclass
class SessionRecord:
    """Accounting record for one UE's PDN session.

    Attributes
    ----------
    imsi:
        Subscriber the session belongs to.
    bearer_id:
        EPS bearer identity (5 is the LTE default-bearer id).
    state:
        Bearer state.
    bytes_down / bytes_up:
        Cumulative traffic counters, maintained by the harness.
    attach_time_s:
        Simulation time at attach.
    """

    imsi: str
    bearer_id: int = 5
    state: BearerState = BearerState.PENDING
    bytes_down: int = 0
    bytes_up: int = 0
    attach_time_s: float = 0.0


class EPC:
    """A single-box core network co-located with the eNodeB.

    The subscriber database is provisioned up front (as with real SIM
    provisioning); attach requests from unknown IMSIs are rejected,
    which tests exercise.
    """

    def __init__(self) -> None:
        self._subscribers: Dict[str, bool] = {}
        self._sessions: Dict[str, SessionRecord] = {}

    # -- provisioning --------------------------------------------------------

    def provision(self, imsi: str) -> None:
        """Add a subscriber to the HSS database."""
        if not imsi:
            raise ValueError("imsi must be non-empty")
        self._subscribers[imsi] = True

    def is_provisioned(self, imsi: str) -> bool:
        return imsi in self._subscribers

    # -- attach / detach --------------------------------------------------------

    def attach(self, ue: UE, now_s: float = 0.0) -> SessionRecord:
        """Run the attach procedure for a UE.

        Raises
        ------
        PermissionError
            If the IMSI is not provisioned (authentication failure).
        """
        if not self.is_provisioned(ue.imsi):
            ue.state = UEState.DETACHED
            raise PermissionError(f"IMSI {ue.imsi} not provisioned")
        ue.state = UEState.ATTACHING
        record = SessionRecord(imsi=ue.imsi, attach_time_s=now_s)
        record.state = BearerState.ACTIVE
        self._sessions[ue.imsi] = record
        ue.state = UEState.CONNECTED
        return record

    def detach(self, ue: UE) -> None:
        """Detach a UE and release its bearer."""
        record = self._sessions.get(ue.imsi)
        if record is not None:
            record.state = BearerState.RELEASED
        ue.state = UEState.DETACHED

    # -- session queries --------------------------------------------------------

    def session_of(self, imsi: str) -> Optional[SessionRecord]:
        return self._sessions.get(imsi)

    def active_sessions(self) -> List[SessionRecord]:
        return [s for s in self._sessions.values() if s.state is BearerState.ACTIVE]

    def account_traffic(self, imsi: str, down_bytes: int = 0, up_bytes: int = 0) -> None:
        """Add traffic to a session's counters."""
        record = self._sessions.get(imsi)
        if record is None or record.state is not BearerState.ACTIVE:
            raise KeyError(f"no active session for IMSI {imsi}")
        if down_bytes < 0 or up_bytes < 0:
            raise ValueError("traffic increments must be non-negative")
        record.bytes_down += down_bytes
        record.bytes_up += up_bytes
